open Sio_sim
open Sio_net

let test_latency_only () =
  let engine = Engine.create () in
  let link =
    Link.create ~engine ~bandwidth_bits_per_sec:100_000_000 ~latency:(Time.us 100)
  in
  let arrived = ref None in
  Link.transmit link ~bytes_len:0 (fun () -> arrived := Some (Engine.now engine));
  Engine.run engine;
  Alcotest.(check (option int)) "pure latency" (Some (Time.us 100)) !arrived

let test_serialization_time () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~bandwidth_bits_per_sec:100_000_000 ~latency:Time.zero in
  (* 6144 bytes at 100 Mbit/s = 491.52 us *)
  let t = Link.serialization_time link ~bytes_len:6144 in
  Alcotest.(check bool) "about 491us" true (abs (t - 491_520) < 100)

let test_fifo_queueing () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~bandwidth_bits_per_sec:8_000 ~latency:Time.zero in
  (* 8 kbit/s: 1000 bytes take exactly 1 s. *)
  let t1 = ref None and t2 = ref None in
  Link.transmit link ~bytes_len:1000 (fun () -> t1 := Some (Engine.now engine));
  Link.transmit link ~bytes_len:1000 (fun () -> t2 := Some (Engine.now engine));
  Engine.run engine;
  Alcotest.(check (option int)) "first at 1s" (Some (Time.s 1)) !t1;
  Alcotest.(check (option int)) "second queues behind" (Some (Time.s 2)) !t2

let test_extra_latency () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~bandwidth_bits_per_sec:100_000_000 ~latency:(Time.ms 1) in
  let at = ref None in
  Link.transmit link ~extra_latency:(Time.ms 120) ~bytes_len:0 (fun () ->
      at := Some (Engine.now engine));
  Engine.run engine;
  Alcotest.(check (option int)) "base+extra" (Some (Time.ms 121)) !at

let test_utilization_and_bytes () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~bandwidth_bits_per_sec:8_000 ~latency:Time.zero in
  Link.transmit link ~bytes_len:500 (fun () -> ());
  Engine.run engine;
  Alcotest.(check int) "bytes" 500 (Link.bytes_sent link);
  Alcotest.(check (float 1e-6)) "utilization 100% while sending" 1.0
    (Link.utilization link ~now:(Engine.now engine))

let test_validation () =
  let engine = Engine.create () in
  Alcotest.check_raises "bandwidth 0"
    (Invalid_argument "Link.create: bandwidth must be positive") (fun () ->
      ignore (Link.create ~engine ~bandwidth_bits_per_sec:0 ~latency:Time.zero));
  let link = Link.create ~engine ~bandwidth_bits_per_sec:1 ~latency:Time.zero in
  Alcotest.check_raises "negative length"
    (Invalid_argument "Link.transmit: negative length") (fun () ->
      Link.transmit link ~bytes_len:(-1) (fun () -> ()))

let test_network_directions_independent () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~bandwidth_bits_per_sec:8_000 ~latency:Time.zero () in
  let up = ref None and down = ref None in
  Network.send_to_server net ~bytes_len:1000 (fun () -> up := Some (Engine.now engine));
  Network.send_to_client net ~bytes_len:1000 (fun () -> down := Some (Engine.now engine));
  Engine.run engine;
  (* Full duplex: both finish at 1s, no cross-queueing. *)
  Alcotest.(check (option int)) "up" (Some (Time.s 1)) !up;
  Alcotest.(check (option int)) "down" (Some (Time.s 1)) !down

let test_latency_profiles () =
  let rng = Rng.create ~seed:5 in
  Alcotest.(check int) "lan free" Time.zero (Latency_profile.draw Latency_profile.Lan rng);
  let wan = Latency_profile.Wan { base = Time.ms 30; jitter = Time.ms 10 } in
  for _ = 1 to 100 do
    let d = Latency_profile.draw wan rng in
    Alcotest.(check bool) "wan in range" true (d >= Time.ms 30 && d < Time.ms 40)
  done;
  for _ = 1 to 100 do
    let d = Latency_profile.draw Latency_profile.default_modem rng in
    Alcotest.(check bool) "modem at least min" true (d >= Time.ms 120);
    Alcotest.(check bool) "modem capped" true (d <= Time.s 10)
  done

let suite =
  [
    Alcotest.test_case "latency only" `Quick test_latency_only;
    Alcotest.test_case "serialization time" `Quick test_serialization_time;
    Alcotest.test_case "FIFO queueing" `Quick test_fifo_queueing;
    Alcotest.test_case "extra latency" `Quick test_extra_latency;
    Alcotest.test_case "utilization and byte counts" `Quick test_utilization_and_bytes;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "network directions independent" `Quick
      test_network_directions_independent;
    Alcotest.test_case "latency profiles" `Quick test_latency_profiles;
  ]
