open Sio_httpd

let test_build_request () =
  let r = Http.build_request ~path:"/index.html" in
  Alcotest.(check bool) "starts with GET" true (String.length r > 4 && String.sub r 0 4 = "GET ");
  Alcotest.(check bool) "CRLFCRLF terminated" true
    (String.sub r (String.length r - 4) 4 = "\r\n\r\n");
  Alcotest.(check int) "request_bytes consistent" (String.length r)
    (Http.request_bytes ~path:"/index.html")

let test_is_complete () =
  let r = Http.build_request ~path:"/" in
  Alcotest.(check bool) "full request complete" true (Http.is_complete r);
  Alcotest.(check bool) "prefix incomplete" false
    (Http.is_complete (String.sub r 0 (String.length r / 2)));
  Alcotest.(check bool) "empty incomplete" false (Http.is_complete "")

let test_parse_request () =
  let r = Http.build_request ~path:"/doc.html" in
  match Http.parse_request r with
  | Ok { meth; path } ->
      Alcotest.(check string) "method" "GET" meth;
      Alcotest.(check string) "path" "/doc.html" path
  | Error _ -> Alcotest.fail "parse failed"

let test_parse_incomplete () =
  match Http.parse_request "GET / HT" with
  | Error `Incomplete -> ()
  | Ok _ | Error `Malformed -> Alcotest.fail "expected Incomplete"

let test_parse_malformed () =
  match Http.parse_request "NONSENSE\r\n\r\n" with
  | Error `Malformed -> ()
  | Ok _ | Error `Incomplete -> Alcotest.fail "expected Malformed"

let test_response_sizes () =
  let body = 6144 in
  let head = Http.response_head_bytes ~body_bytes:body in
  Alcotest.(check bool) "plausible header size" true (head > 50 && head < 200);
  Alcotest.(check int) "total" (head + body) (Http.response_bytes ~body_bytes:body);
  Alcotest.(check int) "paper document" 6144 Http.default_document_bytes

let prop_roundtrip =
  QCheck.Test.make ~name:"build/parse roundtrip on sane paths" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 1 30) (Gen.char_range 'a' 'z'))
    (fun name ->
      let path = "/" ^ name in
      match Http.parse_request (Http.build_request ~path) with
      | Ok { meth; path = p } -> meth = "GET" && p = path
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "build_request" `Quick test_build_request;
    Alcotest.test_case "is_complete" `Quick test_is_complete;
    Alcotest.test_case "parse_request" `Quick test_parse_request;
    Alcotest.test_case "parse incomplete" `Quick test_parse_incomplete;
    Alcotest.test_case "parse malformed" `Quick test_parse_malformed;
    Alcotest.test_case "response sizes" `Quick test_response_sizes;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
