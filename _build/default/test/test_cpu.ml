open Sio_sim
open Sio_kernel

let test_serializes_work () =
  let engine = Engine.create () in
  let cpu = Cpu.create ~engine in
  let t1 = Cpu.consume cpu (Time.ms 10) in
  let t2 = Cpu.consume cpu (Time.ms 5) in
  Alcotest.(check int) "first burst" (Time.ms 10) t1;
  Alcotest.(check int) "second queues behind" (Time.ms 15) t2;
  Alcotest.(check int) "busy_until" (Time.ms 15) (Cpu.busy_until cpu);
  Alcotest.(check int) "total_busy" (Time.ms 15) (Cpu.total_busy cpu)

let test_idle_gap () =
  let engine = Engine.create () in
  let cpu = Cpu.create ~engine in
  ignore (Engine.at engine (Time.ms 100) (fun () -> ()));
  Engine.run engine;
  (* CPU idle until t=100ms; new work starts at now, not at zero. *)
  let t = Cpu.consume cpu (Time.ms 1) in
  Alcotest.(check int) "starts at now" (Time.ms 101) t

let test_run_schedules_completion () =
  let engine = Engine.create () in
  let cpu = Cpu.create ~engine in
  let fired_at = ref Time.zero in
  Cpu.run cpu ~cost:(Time.ms 3) (fun () -> fired_at := Engine.now engine);
  Cpu.run cpu ~cost:(Time.ms 4) (fun () -> ());
  Engine.run engine;
  Alcotest.(check int) "k at completion" (Time.ms 3) !fired_at

let test_infinitely_fast () =
  let engine = Engine.create () in
  let cpu = Cpu.infinitely_fast ~engine in
  let t = Cpu.consume cpu (Time.s 100) in
  Alcotest.(check int) "instant" Time.zero t;
  Alcotest.(check int) "no busy accumulation" Time.zero (Cpu.total_busy cpu)

let test_negative_cost_rejected () =
  let engine = Engine.create () in
  let cpu = Cpu.create ~engine in
  Alcotest.check_raises "negative" (Invalid_argument "Cpu.consume: negative cost")
    (fun () -> ignore (Cpu.consume cpu (-1)))

let test_utilization () =
  let engine = Engine.create () in
  let cpu = Cpu.create ~engine in
  ignore (Cpu.consume cpu (Time.ms 500));
  ignore (Engine.at engine (Time.s 1) (fun () -> ()));
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Cpu.utilization cpu ~now:(Engine.now engine))

let prop_fifo_order =
  QCheck.Test.make ~name:"completion times are nondecreasing in submission order"
    ~count:200
    QCheck.(list (int_range 0 1_000_000))
    (fun costs ->
      let engine = Engine.create () in
      let cpu = Cpu.create ~engine in
      let times = List.map (fun c -> Cpu.consume cpu c) costs in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | [ _ ] | [] -> true
      in
      nondecreasing times)

let suite =
  [
    Alcotest.test_case "serializes work" `Quick test_serializes_work;
    Alcotest.test_case "idle gap" `Quick test_idle_gap;
    Alcotest.test_case "run schedules continuation" `Quick test_run_schedules_completion;
    Alcotest.test_case "infinitely fast CPU" `Quick test_infinitely_fast;
    Alcotest.test_case "negative cost rejected" `Quick test_negative_cost_rejected;
    Alcotest.test_case "utilization" `Quick test_utilization;
    QCheck_alcotest.to_alcotest prop_fifo_order;
  ]
