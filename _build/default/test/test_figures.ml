(* Smoke tests of the figure harness itself: definitions are complete
   and a tiny run produces sane series. *)

let test_catalog_complete () =
  let ids = Scalanio.Figures.ids () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n ids))
    [ "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12";
      "fig13"; "fig14"; "hybrid"; "hybrid-latency"; "lineage" ];
  Alcotest.(check bool) "find works" true (Scalanio.Figures.find "fig10" <> None);
  Alcotest.(check bool) "unknown misses" true (Scalanio.Figures.find "fig99" = None)

let test_every_figure_has_expectation () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f.Scalanio.Figures.id ^ " has expectation")
        true
        (String.length f.Scalanio.Figures.paper_expectation > 20);
      Alcotest.(check bool)
        (f.Scalanio.Figures.id ^ " has series")
        true
        (f.Scalanio.Figures.series <> []);
      Alcotest.(check bool)
        (f.Scalanio.Figures.id ^ " has rates")
        true
        (f.Scalanio.Figures.rates <> []))
    Scalanio.Figures.all

let test_tiny_run_produces_series () =
  match Scalanio.Figures.find "fig5" with
  | None -> Alcotest.fail "fig5 missing"
  | Some fig -> (
      let series = Scalanio.Figures.run ~scale:0.01 ~rates:[ 600 ] fig in
      match series with
      | [ s ] -> (
          Alcotest.(check string) "label kept" "thttpd+devpoll i=1" s.Sio_loadgen.Report.label;
          match s.Sio_loadgen.Report.points with
          | [ p ] ->
              Alcotest.(check int) "rate" 600 p.Sio_loadgen.Sweep.rate;
              Alcotest.(check bool) "replies happened" true
                (p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
                   .Sio_loadgen.Metrics.completed > 0)
          | _ -> Alcotest.fail "expected one point")
      | _ -> Alcotest.fail "expected one series")

let test_render_does_not_raise () =
  match Scalanio.Figures.find "fig14" with
  | None -> Alcotest.fail "fig14 missing"
  | Some fig ->
      let series = Scalanio.Figures.run ~scale:0.01 ~rates:[ 500 ] fig in
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Scalanio.Figures.render ppf fig series;
      Format.pp_print_flush ppf ();
      Alcotest.(check bool) "rendered something" true (Buffer.length buf > 100)

let suite =
  [
    Alcotest.test_case "catalog complete" `Quick test_catalog_complete;
    Alcotest.test_case "expectations recorded" `Quick test_every_figure_has_expectation;
    Alcotest.test_case "tiny run produces series" `Slow test_tiny_run_produces_series;
    Alcotest.test_case "render" `Slow test_render_does_not_raise;
  ]
