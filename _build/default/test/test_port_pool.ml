open Sio_sim
open Sio_loadgen

let mk () =
  let engine = Engine.create () in
  (engine, Port_pool.create ~engine ~ports:3 ~time_wait:(Time.s 60))

let test_acquire_release_cycle () =
  let engine, p = mk () in
  Alcotest.(check bool) "a1" true (Port_pool.acquire p);
  Alcotest.(check bool) "a2" true (Port_pool.acquire p);
  Alcotest.(check bool) "a3" true (Port_pool.acquire p);
  Alcotest.(check bool) "exhausted" false (Port_pool.acquire p);
  Alcotest.(check int) "in_use" 3 (Port_pool.in_use p);
  Port_pool.release p;
  (* TIME_WAIT: still quarantined. *)
  Alcotest.(check bool) "still exhausted" false (Port_pool.acquire p);
  Engine.run ~until:(Time.s 61) engine;
  Alcotest.(check int) "released after quarantine" 2 (Port_pool.in_use p);
  Alcotest.(check bool) "usable again" true (Port_pool.acquire p)

let test_rst_skips_time_wait () =
  let _, p = mk () in
  ignore (Port_pool.acquire p);
  Port_pool.release_immediately p;
  Alcotest.(check int) "freed at once" 0 (Port_pool.in_use p)

let test_validation () =
  let engine = Engine.create () in
  let raised =
    try
      ignore (Port_pool.create ~engine ~ports:0 ~time_wait:Time.zero);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "ports 0 rejected" true raised

let prop_in_use_bounded =
  QCheck.Test.make ~name:"in_use stays within [0, capacity]" ~count:200
    QCheck.(list (int_bound 2))
    (fun ops ->
      let engine = Engine.create () in
      let p = Port_pool.create ~engine ~ports:5 ~time_wait:(Time.ms 10) in
      let held = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 -> if Port_pool.acquire p then incr held
          | 1 ->
              if !held > 0 then begin
                Port_pool.release p;
                decr held
              end
          | _ ->
              if !held > 0 then begin
                Port_pool.release_immediately p;
                decr held
              end)
        ops;
      Engine.run engine;
      Port_pool.in_use p >= 0 && Port_pool.in_use p <= Port_pool.capacity p)

let suite =
  [
    Alcotest.test_case "acquire/release with TIME_WAIT" `Quick test_acquire_release_cycle;
    Alcotest.test_case "RST skips TIME_WAIT" `Quick test_rst_skips_time_wait;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_in_use_bounded;
  ]
