open Sio_kernel

let test_basic_ops () =
  let s = Fd_set.create () in
  Alcotest.(check bool) "empty" true (Fd_set.is_empty s);
  Fd_set.set s 5;
  Fd_set.set s 100;
  Alcotest.(check bool) "mem 5" true (Fd_set.mem s 5);
  Alcotest.(check bool) "mem 6" false (Fd_set.mem s 6);
  Alcotest.(check int) "cardinal" 2 (Fd_set.cardinal s);
  Alcotest.(check int) "max_fd" 100 (Fd_set.max_fd s);
  Fd_set.clear s 100;
  Alcotest.(check int) "max recomputed" 5 (Fd_set.max_fd s);
  Fd_set.clear s 5;
  Alcotest.(check int) "empty max" (-1) (Fd_set.max_fd s)

let test_idempotent () =
  let s = Fd_set.create () in
  Fd_set.set s 7;
  Fd_set.set s 7;
  Alcotest.(check int) "set twice counts once" 1 (Fd_set.cardinal s);
  Fd_set.clear s 7;
  Fd_set.clear s 7;
  Alcotest.(check int) "clear twice" 0 (Fd_set.cardinal s)

let test_fd_setsize_wall () =
  let s = Fd_set.create () in
  Fd_set.set s (Fd_set.fd_setsize - 1);
  Alcotest.(check bool) "1023 fits" true (Fd_set.mem s (Fd_set.fd_setsize - 1));
  let raised = try Fd_set.set s Fd_set.fd_setsize; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "1024 rejected: the paper's wall" true raised;
  let raised = try Fd_set.set s (-1); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative rejected" true raised

let test_iter_ascending () =
  let s = Fd_set.create () in
  List.iter (Fd_set.set s) [ 63; 0; 64; 512; 62 ];
  let seen = ref [] in
  Fd_set.iter s (fun fd -> seen := fd :: !seen);
  Alcotest.(check (list int)) "ascending" [ 0; 62; 63; 64; 512 ] (List.rev !seen)

let test_copy_independent () =
  let s = Fd_set.create () in
  Fd_set.set s 3;
  let c = Fd_set.copy s in
  Fd_set.clear s 3;
  Alcotest.(check bool) "copy unaffected" true (Fd_set.mem c 3)

let test_clear_all () =
  let s = Fd_set.create () in
  List.iter (Fd_set.set s) [ 1; 2; 3 ];
  Fd_set.clear_all s;
  Alcotest.(check bool) "cleared" true (Fd_set.is_empty s)

let prop_matches_model =
  QCheck.Test.make ~name:"fd_set behaves like a set of ints" ~count:300
    QCheck.(list (pair bool (int_bound 1023)))
    (fun ops ->
      let s = Fd_set.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, fd) ->
          if add then begin
            Fd_set.set s fd;
            Hashtbl.replace model fd ()
          end
          else begin
            Fd_set.clear s fd;
            Hashtbl.remove model fd
          end)
        ops;
      Fd_set.cardinal s = Hashtbl.length model
      && Hashtbl.fold (fun fd () acc -> acc && Fd_set.mem s fd) model true
      && Fd_set.max_fd s = Hashtbl.fold (fun fd () m -> Stdlib.max fd m) model (-1))

let suite =
  [
    Alcotest.test_case "basic operations" `Quick test_basic_ops;
    Alcotest.test_case "idempotent set/clear" `Quick test_idempotent;
    Alcotest.test_case "FD_SETSIZE wall" `Quick test_fd_setsize_wall;
    Alcotest.test_case "iter ascending" `Quick test_iter_ascending;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "clear_all" `Quick test_clear_all;
    QCheck_alcotest.to_alcotest prop_matches_model;
  ]
