open Sio_sim

let test_runs_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.at e (Time.ms 30) (note "c"));
  ignore (Engine.at e (Time.ms 10) (note "a"));
  ignore (Engine.at e (Time.ms 20) (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" (Time.ms 30) (Engine.now e)

let test_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.at e (Time.ms 5) (note "first"));
  ignore (Engine.at e (Time.ms 5) (note "second"));
  ignore (Engine.at e (Time.ms 5) (note "third"));
  Engine.run e;
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] (List.rev !log)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.at e (Time.ms 1) (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_schedule_from_event () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.at e (Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore (Engine.after e (Time.ms 2) (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "chained" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "final clock" (Time.ms 3) (Engine.now e)

let test_past_scheduling_rejected () =
  let e = Engine.create () in
  ignore (Engine.at e (Time.ms 10) (fun () -> ()));
  Engine.run e;
  let raised =
    try
      ignore (Engine.at e (Time.ms 5) (fun () -> ()));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "scheduling in the past raises" true raised

let test_run_until_horizon () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.at e (Time.ms 10) (fun () -> fired := 10 :: !fired));
  ignore (Engine.at e (Time.ms 20) (fun () -> fired := 20 :: !fired));
  ignore (Engine.at e (Time.ms 30) (fun () -> fired := 30 :: !fired));
  Engine.run ~until:(Time.ms 20) e;
  Alcotest.(check (list int)) "only events <= horizon" [ 10; 20 ] (List.rev !fired);
  Alcotest.(check int) "pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "rest run later" [ 10; 20; 30 ] (List.rev !fired)

let test_step () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.at e (Time.ms 1) (fun () -> incr count));
  ignore (Engine.at e (Time.ms 2) (fun () -> incr count));
  Alcotest.(check bool) "step 1" true (Engine.step e);
  Alcotest.(check int) "one ran" 1 !count;
  Alcotest.(check bool) "step 2" true (Engine.step e);
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  Alcotest.(check int) "executed counter" 2 (Engine.events_executed e)

let test_after_relative () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore
    (Engine.at e (Time.ms 10) (fun () ->
         ignore (Engine.after e (Time.ms 5) (fun () -> seen := Engine.now e))));
  Engine.run e;
  Alcotest.(check int) "after is relative to now" (Time.ms 15) !seen

let prop_events_execute_sorted =
  QCheck.Test.make ~name:"all scheduled events run in nondecreasing time order"
    ~count:100
    QCheck.(list (int_range 0 1_000_000))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter (fun t -> ignore (Engine.at e t (fun () -> seen := t :: !seen))) times;
      Engine.run e;
      let seen = List.rev !seen in
      List.length seen = List.length times && seen = List.sort compare times)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_runs_in_time_order;
    Alcotest.test_case "FIFO at equal times" `Quick test_fifo_at_same_time;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "schedule from within event" `Quick test_schedule_from_event;
    Alcotest.test_case "cannot schedule in the past" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "run ~until horizon" `Quick test_run_until_horizon;
    Alcotest.test_case "single stepping" `Quick test_step;
    Alcotest.test_case "after is relative" `Quick test_after_relative;
    QCheck_alcotest.to_alcotest prop_events_execute_sorted;
  ]
