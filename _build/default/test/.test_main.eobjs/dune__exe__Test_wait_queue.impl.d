test/test_wait_queue.ml: Alcotest List Sio_kernel Wait_queue
