test/test_select.ml: Alcotest Cpu Engine Fd_set Fun Gen Hashtbl Helpers Host List Poll Pollmask QCheck QCheck_alcotest Select Sio_kernel Sio_sim Socket Time
