test/test_sock_buf.ml: Alcotest List QCheck QCheck_alcotest Sio_kernel Sock_buf
