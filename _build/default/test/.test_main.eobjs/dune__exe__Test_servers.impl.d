test/test_servers.ml: Alcotest Backend Cost_model Engine Host Http Hybrid List Phhttpd Printf Process Rng Server_stats Sio_httpd Sio_kernel Sio_loadgen Sio_net Sio_sim String Tcp Thttpd Time
