test/test_poll.ml: Alcotest Cost_model Cpu Engine Hashtbl Helpers Host List Poll Pollmask Sio_kernel Sio_sim Socket Time
