test/test_rt_signal.ml: Alcotest Engine Gen Helpers Host List Pollmask QCheck QCheck_alcotest Rt_signal Sio_kernel Sio_sim Socket Time
