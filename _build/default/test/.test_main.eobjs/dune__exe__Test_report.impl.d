test/test_report.ml: Alcotest Buffer Experiment Format Histogram Metrics Report Sio_httpd Sio_kernel Sio_loadgen Sio_sim String Sweep Time
