test/test_histogram.ml: Alcotest Gen Histogram List QCheck QCheck_alcotest Sio_sim Stdlib Time
