test/test_fd_table.ml: Alcotest Fd_table Hashtbl Helpers List QCheck QCheck_alcotest Sio_kernel
