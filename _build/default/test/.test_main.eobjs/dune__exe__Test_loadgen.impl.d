test/test_loadgen.ml: Alcotest Cost_model Engine Experiment Histogram Host Httperf Inactive Metrics Process Rng Sio_httpd Sio_kernel Sio_loadgen Sio_net Sio_sim Sweep Time Workload
