test/test_tcp_ordering.ml: Alcotest Engine Helpers Kernel List QCheck QCheck_alcotest Sio_kernel Sio_sim Tcp Time
