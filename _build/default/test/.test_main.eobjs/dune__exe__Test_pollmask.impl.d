test/test_pollmask.ml: Alcotest Helpers List Pollmask Sio_kernel
