test/test_figures.ml: Alcotest Buffer Format List Scalanio Sio_loadgen String
