test/test_integration.ml: Alcotest Experiment List Metrics Printf Sio_kernel Sio_loadgen Workload
