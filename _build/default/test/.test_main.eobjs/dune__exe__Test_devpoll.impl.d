test/test_devpoll.ml: Alcotest Cost_model Cpu Devpoll Engine Gen Hashtbl Helpers Host List Poll Pollmask QCheck QCheck_alcotest Sio_kernel Sio_sim Socket Time
