test/helpers.ml: Alcotest Cost_model Engine Host Kernel Pollmask Process Sio_kernel Sio_net Sio_sim Socket Wait_queue
