test/test_net.ml: Alcotest Engine Latency_profile Link Network Rng Sio_net Sio_sim Time
