test/test_kernel_tcp.ml: Alcotest Cost_model Cpu Engine Helpers Host Kernel List Poll Pollmask Rt_signal Sio_kernel Sio_net Sio_sim Socket Tcp Time
