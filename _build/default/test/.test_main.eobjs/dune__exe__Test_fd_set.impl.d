test/test_fd_set.ml: Alcotest Fd_set Hashtbl List QCheck QCheck_alcotest Sio_kernel Stdlib
