test/test_port_pool.ml: Alcotest Engine List Port_pool QCheck QCheck_alcotest Sio_loadgen Sio_sim Time
