test/test_heap.ml: Alcotest Heap List Printf QCheck QCheck_alcotest Sio_sim
