test/test_sampler.ml: Alcotest Float Gen List QCheck QCheck_alcotest Sampler Sio_sim Time
