test/test_event_loop.ml: Alcotest Cost_model Engine Hashtbl Host List Pollmask Process Rt_signal Scalanio Sio_kernel Sio_sim Socket Time
