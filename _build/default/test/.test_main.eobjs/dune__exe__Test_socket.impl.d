test/test_socket.ml: Alcotest Helpers Host List Pollmask Sio_kernel Socket
