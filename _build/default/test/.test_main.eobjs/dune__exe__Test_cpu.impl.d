test/test_cpu.ml: Alcotest Cpu Engine List QCheck QCheck_alcotest Sio_kernel Sio_sim Time
