test/test_http.ml: Alcotest Gen Http QCheck QCheck_alcotest Sio_httpd String
