test/test_trace.ml: Alcotest List Sio_sim Time Trace
