test/test_fs.ml: Alcotest Cpu Fs Gen Helpers Host Kernel List Page_cache Printf QCheck QCheck_alcotest Sio_kernel Sio_sim Time
