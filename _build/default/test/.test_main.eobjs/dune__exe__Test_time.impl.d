test/test_time.ml: Alcotest Float Sio_sim Time
