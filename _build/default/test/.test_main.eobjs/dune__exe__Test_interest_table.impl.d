test/test_interest_table.ml: Alcotest Array Hashtbl Helpers Interest_table List Pollmask QCheck QCheck_alcotest Sio_kernel
