test/test_mechanism_equivalence.ml: Devpoll Engine Epoll Fd_set Hashtbl Helpers List Poll Pollmask Printf QCheck QCheck_alcotest Select Sio_kernel Sio_sim Socket String Time
