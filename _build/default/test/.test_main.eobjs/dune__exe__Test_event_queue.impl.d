test/test_event_queue.ml: Alcotest Event_queue Fun Hashtbl List QCheck QCheck_alcotest Sio_sim Time
