test/test_epoll.ml: Alcotest Cost_model Cpu Engine Epoll Gen Hashtbl Helpers Host List Poll Pollmask QCheck QCheck_alcotest Sio_kernel Sio_sim Socket Time
