(* End-to-end server tests: each server implementation faces real
   clients through the simulated network. Zero-cost kernel: these
   check semantics (who replied, who timed out, which mode), not
   performance. *)

open Sio_sim
open Sio_kernel
open Sio_httpd

type world = {
  engine : Engine.t;
  host : Host.t;
  net : Sio_net.Network.t;
  proc : Process.t;
}

let mk_world ?(costs = Cost_model.zero) () =
  let engine = Engine.create ~seed:5 () in
  let host = Host.create ~engine ~costs () in
  let net = Sio_net.Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:2048 ~name:"server" () in
  { engine; host; net; proc }

let quick_conn w listener =
  (* One client fetching the default document; returns a getter for
     the bytes received. *)
  let received = ref 0 in
  let expected = Http.response_bytes ~body_bytes:Http.default_document_bytes in
  let request = Http.build_request ~path:"/index.html" in
  let handlers =
    {
      Tcp.null_handlers with
      Tcp.on_established =
        (fun c ->
          Tcp.client_send c ~bytes_len:(String.length request) ~payload:request);
      on_bytes =
        (fun c n ->
          received := !received + n;
          if !received >= expected then Tcp.client_close c);
    }
  in
  ignore (Tcp.connect ~net:w.net ~listener ~handlers ());
  fun () -> !received

let expected_bytes = Http.response_bytes ~body_bytes:Http.default_document_bytes

(* --- thttpd --- *)

let thttpd_with backend_of w =
  match Thttpd.start ~proc:w.proc ~backend:(backend_of w.proc) () with
  | Ok t -> t
  | Error `Emfile -> Alcotest.fail "thttpd start failed"

let poll_backend proc = Backend.poll proc
let select_backend proc = Backend.select proc
let epoll_backend proc = Backend.epoll proc

let devpoll_backend proc =
  match Backend.devpoll proc with
  | Ok b -> b
  | Error `Emfile -> Alcotest.fail "devpoll open failed"

let test_thttpd_serves backend_of () =
  let w = mk_world () in
  let t = thttpd_with backend_of w in
  let got = quick_conn w (Thttpd.listener t) in
  Engine.run ~until:(Time.s 1) w.engine;
  Alcotest.(check int) "full response" expected_bytes (got ());
  Alcotest.(check int) "one reply" 1 (Thttpd.stats t).Server_stats.replies;
  Alcotest.(check int) "conn table drained" 0 (Thttpd.connection_count t);
  Thttpd.stop t

(* A client that dribbles its request in arbitrary chunks: the server
   must accumulate until the terminator arrives, whatever the split. *)
let test_thttpd_chunked_requests () =
  let w = mk_world () in
  let t = thttpd_with devpoll_backend w in
  let request = Http.build_request ~path:"/index.html" in
  let rng = Rng.create ~seed:77 in
  let run_one () =
    let received = ref 0 in
    let expected = expected_bytes in
    let handlers =
      {
        Tcp.null_handlers with
        Tcp.on_established =
          (fun c ->
            (* Send in 1..5 random-sized chunks, spaced 1 ms apart. *)
            let n = String.length request in
            let rec cuts acc k =
              if k = 0 then List.sort_uniq compare (0 :: n :: acc)
              else cuts (Rng.int_in rng 1 (n - 1) :: acc) (k - 1)
            in
            let points = cuts [] (Rng.int_in rng 0 4) in
            let rec send_pieces i = function
              | a :: (b :: _ as rest) ->
                  ignore
                    (Engine.after w.engine (Time.ms i) (fun () ->
                         Tcp.client_send c ~bytes_len:(b - a)
                           ~payload:(String.sub request a (b - a))));
                  send_pieces (i + 1) rest
              | [ _ ] | [] -> ()
            in
            send_pieces 0 points);
        on_bytes =
          (fun c n ->
            received := !received + n;
            if !received >= expected then Tcp.client_close c);
      }
    in
    ignore (Tcp.connect ~net:w.net ~listener:(Thttpd.listener t) ~handlers ());
    fun () -> !received
  in
  let getters = List.init 20 (fun _ -> run_one ()) in
  Engine.run ~until:(Time.s 2) w.engine;
  List.iteri
    (fun i got ->
      Alcotest.(check int) (Printf.sprintf "chunked conn %d" i) expected_bytes (got ()))
    getters;
  Thttpd.stop t

let test_thttpd_many_conns () =
  let w = mk_world () in
  let t = thttpd_with devpoll_backend w in
  let getters = List.init 50 (fun _ -> quick_conn w (Thttpd.listener t)) in
  Engine.run ~until:(Time.s 2) w.engine;
  List.iteri
    (fun i got -> Alcotest.(check int) (Printf.sprintf "conn %d" i) expected_bytes (got ()))
    getters;
  Alcotest.(check int) "replies" 50 (Thttpd.stats t).Server_stats.replies;
  Thttpd.stop t

let test_thttpd_idle_sweep () =
  let w = mk_world () in
  let config =
    { Thttpd.default_config with Thttpd.idle_timeout = Time.s 2; sweep_period = Time.s 1 }
  in
  let t =
    match Thttpd.start ~proc:w.proc ~backend:(devpoll_backend w.proc) ~config () with
    | Ok t -> t
    | Error `Emfile -> Alcotest.fail "start failed"
  in
  (* A client that sends half a request and goes quiet. *)
  let fin = ref false in
  let handlers =
    {
      Tcp.null_handlers with
      Tcp.on_established = (fun c -> Tcp.client_send c ~bytes_len:10 ~payload:"GET /index");
      on_server_fin = (fun _ -> fin := true);
    }
  in
  ignore (Tcp.connect ~net:w.net ~listener:(Thttpd.listener t) ~handlers ());
  Engine.run ~until:(Time.s 6) w.engine;
  Alcotest.(check bool) "server timed the idle conn out" true !fin;
  Alcotest.(check int) "counted" 1 (Thttpd.stats t).Server_stats.timed_out_conns;
  Alcotest.(check int) "no reply" 0 (Thttpd.stats t).Server_stats.replies;
  Thttpd.stop t

let test_thttpd_client_abort () =
  let w = mk_world () in
  let t = thttpd_with devpoll_backend w in
  let conn = ref None in
  let handlers =
    { Tcp.null_handlers with Tcp.on_established = (fun c -> conn := Some c) }
  in
  ignore (Tcp.connect ~net:w.net ~listener:(Thttpd.listener t) ~handlers ());
  Engine.run ~until:(Time.ms 10) w.engine;
  (match !conn with Some c -> Tcp.client_abort c | None -> Alcotest.fail "no conn");
  Engine.run ~until:(Time.s 1) w.engine;
  Alcotest.(check int) "dropped" 1 (Thttpd.stats t).Server_stats.dropped_conns;
  Alcotest.(check int) "conn table drained" 0 (Thttpd.connection_count t);
  Thttpd.stop t

(* --- phhttpd --- *)

let test_phhttpd_serves () =
  let w = mk_world () in
  let t =
    match Phhttpd.start ~proc:w.proc () with
    | Ok t -> t
    | Error `Emfile -> Alcotest.fail "phhttpd start failed"
  in
  let got = quick_conn w (Phhttpd.listener t) in
  Engine.run ~until:(Time.s 1) w.engine;
  Alcotest.(check int) "full response" expected_bytes (got ());
  Alcotest.(check bool) "still in signal mode" true (Phhttpd.mode t = Phhttpd.Signals);
  (* The close of the served connection leaves one stale signal, which
     the server must absorb without confusion. *)
  Engine.run ~until:(Time.s 2) w.engine;
  Alcotest.(check int) "one reply" 1 (Phhttpd.stats t).Server_stats.replies;
  Phhttpd.stop t

let test_phhttpd_overflow_switches_to_polling () =
  let w = mk_world () in
  (* Tiny RT queue so a burst of connections overflows it. *)
  let proc = Process.create ~host:w.host ~rt_queue_limit:8 ~name:"ph" () in
  let t =
    match Phhttpd.start ~proc () with
    | Ok t -> t
    | Error `Emfile -> Alcotest.fail "start failed"
  in
  let getters = List.init 40 (fun _ -> quick_conn w (Phhttpd.listener t)) in
  Engine.run ~until:(Time.s 3) w.engine;
  Alcotest.(check bool) "switched to polling" true (Phhttpd.mode t = Phhttpd.Polling);
  Alcotest.(check bool) "overflow recovery counted" true
    ((Phhttpd.stats t).Server_stats.overflow_recoveries >= 1);
  (* Recovery must not lose connections: everyone is eventually served. *)
  List.iteri
    (fun i got ->
      Alcotest.(check int) (Printf.sprintf "conn %d served" i) expected_bytes (got ()))
    getters;
  (* And it never returns to signal mode (Brown never implemented it). *)
  let g = quick_conn w (Phhttpd.listener t) in
  Engine.run ~until:(Time.s 4) w.engine;
  Alcotest.(check int) "post-recovery service works" expected_bytes (g ());
  Alcotest.(check bool) "still polling" true (Phhttpd.mode t = Phhttpd.Polling);
  (* The descriptors physically moved: the signal worker's table is
     empty (it kept nothing) and the sibling owns the listener plus any
     remaining connections. *)
  Alcotest.(check bool) "handoff finished" false (Phhttpd.is_handing_off t);
  Alcotest.(check int) "signal worker's table empty" 0 (Process.open_fd_count proc);
  Alcotest.(check bool) "sibling owns the descriptors" true
    (Process.open_fd_count (Phhttpd.sibling t) >= 1);
  Phhttpd.stop t

let test_phhttpd_counts_stale_events () =
  let w = mk_world () in
  let t =
    match Phhttpd.start ~proc:w.proc () with
    | Ok t -> t
    | Error `Emfile -> Alcotest.fail "start failed"
  in
  let (_ : unit -> int) = quick_conn w (Phhttpd.listener t) in
  Engine.run ~until:(Time.s 2) w.engine;
  (* The POLLNVAL edge queued at close names a dead descriptor. *)
  Alcotest.(check bool) "stale events seen" true
    ((Phhttpd.stats t).Server_stats.stale_events >= 1);
  Phhttpd.stop t

(* --- hybrid --- *)

let test_hybrid_serves_in_signal_mode () =
  let w = mk_world () in
  let t =
    match Hybrid.start ~proc:w.proc () with
    | Ok t -> t
    | Error `Emfile -> Alcotest.fail "hybrid start failed"
  in
  let got = quick_conn w (Hybrid.listener t) in
  Engine.run ~until:(Time.s 1) w.engine;
  Alcotest.(check int) "served" expected_bytes (got ());
  Alcotest.(check bool) "signal mode at light load" true (Hybrid.mode t = Hybrid.Signals);
  Hybrid.stop t

let test_hybrid_overflow_recovers_and_returns () =
  (* Under a genuine overload (real cost model, offered rate beyond the
     host's capacity) the hybrid must shift to polling and come back
     once the storm passes. *)
  let w = mk_world ~costs:Cost_model.default () in
  let t =
    match Hybrid.start ~proc:w.proc () with
    | Ok t -> t
    | Error `Emfile -> Alcotest.fail "start failed"
  in
  let workload =
    {
      Sio_loadgen.Workload.default with
      Sio_loadgen.Workload.request_rate = 1400;
      total_connections = 4200;
      inactive_connections = 0;
    }
  in
  let _client =
    Sio_loadgen.Httperf.start ~engine:w.engine ~net:w.net ~listener:(Hybrid.listener t)
      ~workload ()
  in
  Engine.run ~until:(Time.s 12) w.engine;
  Alcotest.(check bool) "switched at least twice (to polling and back)" true
    ((Hybrid.stats t).Server_stats.mode_switches >= 2);
  Alcotest.(check bool) "returned to signal mode when load subsided" true
    (Hybrid.mode t = Hybrid.Signals);
  Alcotest.(check bool) "served the bulk of the storm" true
    ((Hybrid.stats t).Server_stats.replies > 3000);
  Hybrid.stop t

let suite =
  [
    Alcotest.test_case "thttpd+poll serves a request" `Quick
      (test_thttpd_serves poll_backend);
    Alcotest.test_case "thttpd+devpoll serves a request" `Quick
      (test_thttpd_serves devpoll_backend);
    Alcotest.test_case "thttpd+select serves a request" `Quick
      (test_thttpd_serves select_backend);
    Alcotest.test_case "thttpd+epoll serves a request" `Quick
      (test_thttpd_serves epoll_backend);
    Alcotest.test_case "thttpd handles chunked requests" `Quick
      test_thttpd_chunked_requests;
    Alcotest.test_case "thttpd serves 50 concurrent connections" `Quick
      test_thttpd_many_conns;
    Alcotest.test_case "thttpd idle sweep times out silent clients" `Quick
      test_thttpd_idle_sweep;
    Alcotest.test_case "thttpd client abort" `Quick test_thttpd_client_abort;
    Alcotest.test_case "phhttpd serves via RT signals" `Quick test_phhttpd_serves;
    Alcotest.test_case "phhttpd overflow switches to polling forever" `Quick
      test_phhttpd_overflow_switches_to_polling;
    Alcotest.test_case "phhttpd tolerates stale signals" `Quick
      test_phhttpd_counts_stale_events;
    Alcotest.test_case "hybrid serves in signal mode" `Quick
      test_hybrid_serves_in_signal_mode;
    Alcotest.test_case "hybrid recovers from overflow and switches back" `Quick
      test_hybrid_overflow_recovers_and_returns;
  ]
