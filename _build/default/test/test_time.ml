open Sio_sim

let test_units () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "s" 1_000_000_000 (Time.s 1);
  Alcotest.(check int) "ns" 17 (Time.ns 17)

let test_conversions () =
  Alcotest.(check (float 1e-9)) "to_sec" 1.5 (Time.to_sec_f (Time.ms 1500));
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Time.to_ms_f (Time.us 2500));
  Alcotest.(check (float 1e-9)) "to_us" 0.5 (Time.to_us_f (Time.ns 500));
  Alcotest.(check int) "of_sec_f" (Time.ms 250) (Time.of_sec_f 0.25)

let test_of_sec_f_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Time.of_sec_f: negative or NaN")
    (fun () -> ignore (Time.of_sec_f (-1.0)));
  Alcotest.check_raises "nan" (Invalid_argument "Time.of_sec_f: negative or NaN")
    (fun () -> ignore (Time.of_sec_f Float.nan))

let test_arith () =
  Alcotest.(check int) "add" (Time.ms 3) (Time.add (Time.ms 1) (Time.ms 2));
  Alcotest.(check int) "sub" (Time.ms 1) (Time.sub (Time.ms 3) (Time.ms 2));
  Alcotest.(check int) "mul" (Time.ms 6) (Time.mul (Time.ms 2) 3);
  Alcotest.(check int) "div" (Time.ms 2) (Time.div (Time.ms 6) 3);
  Alcotest.(check bool) "is_negative" true (Time.is_negative (Time.sub Time.zero (Time.ns 1)))

let test_pp () =
  Alcotest.(check string) "ns" "999ns" (Time.to_string (Time.ns 999));
  Alcotest.(check string) "us" "42.0us" (Time.to_string (Time.us 42));
  Alcotest.(check string) "ms" "1.50ms" (Time.to_string (Time.us 1500));
  Alcotest.(check string) "s" "2.000s" (Time.to_string (Time.s 2))

let suite =
  [
    Alcotest.test_case "unit constructors" `Quick test_units;
    Alcotest.test_case "float conversions" `Quick test_conversions;
    Alcotest.test_case "of_sec_f rejects bad input" `Quick test_of_sec_f_invalid;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
