open Sio_kernel

let test_wake_all () =
  let q = Wait_queue.create () in
  let a = ref 0 and b = ref 0 in
  Wait_queue.register q a;
  Wait_queue.register q b;
  let woken = Wait_queue.wake q ~policy:Wait_queue.Wake_all (fun r -> incr r) in
  Alcotest.(check int) "two woken" 2 woken;
  Alcotest.(check int) "a" 1 !a;
  Alcotest.(check int) "b" 1 !b;
  Alcotest.(check bool) "drained" true (Wait_queue.is_empty q)

let test_wake_one_fifo () =
  let q = Wait_queue.create () in
  let order = ref [] in
  let a = "a" and b = "b" in
  Wait_queue.register q a;
  Wait_queue.register q b;
  let _ = Wait_queue.wake q ~policy:Wait_queue.Wake_one (fun w -> order := w :: !order) in
  let _ = Wait_queue.wake q ~policy:Wait_queue.Wake_one (fun w -> order := w :: !order) in
  Alcotest.(check (list string)) "FIFO order" [ "a"; "b" ] (List.rev !order)

let test_wake_empty () =
  let q : unit ref Wait_queue.t = Wait_queue.create () in
  Alcotest.(check int) "none woken (all)" 0
    (Wait_queue.wake q ~policy:Wait_queue.Wake_all (fun _ -> ()));
  Alcotest.(check int) "none woken (one)" 0
    (Wait_queue.wake q ~policy:Wait_queue.Wake_one (fun _ -> ()))

let test_unregister () =
  let q = Wait_queue.create () in
  let a = ref 0 and b = ref 0 in
  Wait_queue.register q a;
  Wait_queue.register q b;
  Alcotest.(check bool) "removed" true (Wait_queue.unregister q a);
  Alcotest.(check bool) "already gone" false (Wait_queue.unregister q a);
  let _ = Wait_queue.wake q ~policy:Wait_queue.Wake_all (fun r -> incr r) in
  Alcotest.(check int) "a not woken" 0 !a;
  Alcotest.(check int) "b woken" 1 !b

let test_unregister_removes_one_entry () =
  let q = Wait_queue.create () in
  let a = ref 0 in
  Wait_queue.register q a;
  Wait_queue.register q a;
  Alcotest.(check bool) "first removal" true (Wait_queue.unregister q a);
  Alcotest.(check int) "one entry left" 1 (Wait_queue.length q)

let test_length () =
  let q = Wait_queue.create () in
  Alcotest.(check int) "empty" 0 (Wait_queue.length q);
  Wait_queue.register q (ref 0);
  Alcotest.(check int) "one" 1 (Wait_queue.length q)

let suite =
  [
    Alcotest.test_case "wake all" `Quick test_wake_all;
    Alcotest.test_case "wake one is FIFO" `Quick test_wake_one_fifo;
    Alcotest.test_case "wake on empty queue" `Quick test_wake_empty;
    Alcotest.test_case "unregister" `Quick test_unregister;
    Alcotest.test_case "unregister removes one entry" `Quick test_unregister_removes_one_entry;
    Alcotest.test_case "length" `Quick test_length;
  ]
