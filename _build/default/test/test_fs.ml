open Sio_sim
open Sio_kernel

(* --- Page_cache --- *)

let key file_id page = { Page_cache.file_id; page }

let test_cache_hit_miss () =
  let c = Page_cache.create ~capacity_pages:4 in
  Alcotest.(check bool) "first is miss" true (Page_cache.touch c (key 1 0) = `Miss);
  Alcotest.(check bool) "second is hit" true (Page_cache.touch c (key 1 0) = `Hit);
  Alcotest.(check int) "hits" 1 (Page_cache.hits c);
  Alcotest.(check int) "misses" 1 (Page_cache.misses c);
  Alcotest.(check int) "resident" 1 (Page_cache.resident c)

let test_lru_eviction () =
  let c = Page_cache.create ~capacity_pages:2 in
  ignore (Page_cache.touch c (key 1 0));
  ignore (Page_cache.touch c (key 1 1));
  ignore (Page_cache.touch c (key 1 0)) (* 0 now MRU, 1 is LRU *);
  ignore (Page_cache.touch c (key 1 2)) (* evicts page 1 *);
  Alcotest.(check bool) "page 0 kept" true (Page_cache.contains c (key 1 0));
  Alcotest.(check bool) "page 1 evicted" false (Page_cache.contains c (key 1 1));
  Alcotest.(check bool) "page 2 resident" true (Page_cache.contains c (key 1 2))

let test_invalidate_file () =
  let c = Page_cache.create ~capacity_pages:8 in
  ignore (Page_cache.touch c (key 1 0));
  ignore (Page_cache.touch c (key 1 1));
  ignore (Page_cache.touch c (key 2 0));
  Alcotest.(check int) "two dropped" 2 (Page_cache.invalidate_file c ~file_id:1);
  Alcotest.(check int) "one left" 1 (Page_cache.resident c);
  Alcotest.(check bool) "other file kept" true (Page_cache.contains c (key 2 0))

let prop_resident_bounded =
  QCheck.Test.make ~name:"resident pages never exceed capacity" ~count:200
    QCheck.(pair (int_range 1 16) (list (pair (int_bound 4) (int_bound 50))))
    (fun (cap, touches) ->
      let c = Page_cache.create ~capacity_pages:cap in
      List.iter (fun (f, p) -> ignore (Page_cache.touch c (key f p))) touches;
      Page_cache.resident c <= cap)

let prop_lru_recency =
  QCheck.Test.make ~name:"most recently touched page is always resident" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 60) (int_bound 40)))
    (fun (cap, pages) ->
      let c = Page_cache.create ~capacity_pages:cap in
      List.iter (fun p -> ignore (Page_cache.touch c (key 0 p))) pages;
      match List.rev pages with
      | last :: _ -> Page_cache.contains c (key 0 last)
      | [] -> true)

(* --- Fs --- *)

let mk_fs ?cache_pages () =
  let engine = Helpers.mk_engine () in
  let host = Helpers.mk_costed_host engine in
  let fs =
    match cache_pages with
    | Some n -> Fs.create ~host ~cache_pages:n ()
    | None -> Fs.create ~host ()
  in
  (engine, host, fs)

let test_stat () =
  let _, _, fs = mk_fs () in
  Fs.add_file fs ~path:"/index.html" ~bytes:6144;
  Alcotest.(check bool) "stat finds" true (Fs.stat fs "/index.html" = Ok 6144);
  Alcotest.(check bool) "missing" true (Fs.stat fs "/nope" = Error `Enoent);
  Alcotest.(check int) "file count" 1 (Fs.file_count fs)

let test_read_warms_cache () =
  let _, _, fs = mk_fs () in
  Fs.add_file fs ~path:"/doc" ~bytes:10_000 (* 3 pages *);
  Alcotest.(check bool) "read ok" true (Fs.read_file fs "/doc" = Ok 10_000);
  Alcotest.(check int) "3 cold misses" 3 (Fs.cache_misses fs);
  ignore (Fs.read_file fs "/doc");
  Alcotest.(check int) "second read all hits" 3 (Fs.cache_hits fs);
  Alcotest.(check int) "no new misses" 3 (Fs.cache_misses fs)

let test_cold_read_stalls_cpu () =
  let _, host, fs = mk_fs () in
  Fs.add_file fs ~path:"/doc" ~bytes:6144;
  let before = Cpu.total_busy host.Host.cpu in
  ignore (Fs.read_file fs "/doc");
  let cold = Time.sub (Cpu.total_busy host.Host.cpu) before in
  let before = Cpu.total_busy host.Host.cpu in
  ignore (Fs.read_file fs "/doc");
  let warm = Time.sub (Cpu.total_busy host.Host.cpu) before in
  (* Two pages at 9 ms disk each vs microseconds of probing. *)
  Alcotest.(check bool) "cold read stalls ~18ms" true (cold >= Time.ms 17);
  Alcotest.(check bool) "warm read nearly free" true (warm < Time.ms 1)

let test_replace_invalidates () =
  let _, _, fs = mk_fs () in
  Fs.add_file fs ~path:"/doc" ~bytes:6144;
  ignore (Fs.read_file fs "/doc");
  Fs.add_file fs ~path:"/doc" ~bytes:4096;
  Alcotest.(check int) "cache dropped" 0 (Fs.cache_resident_pages fs);
  Alcotest.(check bool) "new size" true (Fs.stat fs "/doc" = Ok 4096)

let test_working_set_larger_than_cache () =
  let _, _, fs = mk_fs ~cache_pages:4 () in
  for i = 0 to 7 do
    Fs.add_file fs ~path:(Printf.sprintf "/f%d" i) ~bytes:4096
  done;
  for i = 0 to 7 do
    ignore (Fs.read_file fs (Printf.sprintf "/f%d" i))
  done;
  (* Second pass still misses: the working set does not fit. *)
  let misses_before = Fs.cache_misses fs in
  for i = 0 to 7 do
    ignore (Fs.read_file fs (Printf.sprintf "/f%d" i))
  done;
  Alcotest.(check bool) "thrashing" true (Fs.cache_misses fs > misses_before);
  Alcotest.(check int) "bounded residency" 4 (Fs.cache_resident_pages fs)

(* --- sendfile --- *)

let test_sendfile_cheaper_than_write () =
  let rig = Helpers.mk_rig ~costs:Sio_kernel.Cost_model.default () in
  let handlers = Sio_kernel.Tcp.null_handlers in
  ignore (Sio_kernel.Tcp.connect ~net:rig.Helpers.net ~listener:rig.Helpers.listener ~handlers ());
  Sio_sim.Engine.run ~until:(Time.ms 10) rig.Helpers.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.Helpers.proc rig.Helpers.listen_fd) in
  let busy () = Cpu.total_busy rig.Helpers.host.Host.cpu in
  let b0 = busy () in
  ignore (Helpers.ok (Kernel.write rig.Helpers.proc fd ~bytes_len:6144));
  let write_cost = Time.sub (busy ()) b0 in
  let b1 = busy () in
  ignore (Helpers.ok (Kernel.sendfile rig.Helpers.proc fd ~bytes_len:6144));
  let sendfile_cost = Time.sub (busy ()) b1 in
  Alcotest.(check bool) "sendfile at least 1.5x cheaper" true
    (Time.to_us_f write_cost > 1.5 *. Time.to_us_f sendfile_cost)

let suite =
  [
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "invalidate file" `Quick test_invalidate_file;
    QCheck_alcotest.to_alcotest prop_resident_bounded;
    QCheck_alcotest.to_alcotest prop_lru_recency;
    Alcotest.test_case "stat" `Quick test_stat;
    Alcotest.test_case "read warms the cache" `Quick test_read_warms_cache;
    Alcotest.test_case "cold read stalls the CPU" `Quick test_cold_read_stalls_cpu;
    Alcotest.test_case "replace invalidates" `Quick test_replace_invalidates;
    Alcotest.test_case "working set larger than cache" `Quick
      test_working_set_larger_than_cache;
    Alcotest.test_case "sendfile cheaper than write" `Quick test_sendfile_cheaper_than_write;
  ]
