(* End-to-end tests of the syscall layer plus the TCP/network plumbing:
   a lightweight client talks to a server process through the simulated
   switch. *)

open Sio_sim
open Sio_kernel

let test_connect_accept_roundtrip () =
  let rig = Helpers.mk_rig () in
  let established = ref false in
  let handlers = { Tcp.null_handlers with on_established = (fun _ -> established := true) } in
  let _conn = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  Alcotest.(check bool) "client established" true !established;
  Alcotest.(check int) "accept queue" 1 (Socket.accept_queue_length rig.listener);
  match Kernel.accept rig.proc rig.listen_fd with
  | Ok (fd, sock) ->
      Alcotest.(check bool) "fresh fd" true (fd > rig.listen_fd);
      Alcotest.(check bool) "established sock" true (Socket.state sock = Socket.Established);
      Alcotest.(check int) "accept counted" 1 rig.host.Host.counters.Host.accepts
  | Error _ -> Alcotest.fail "accept failed"

let test_accept_empty_queue_eagain () =
  let rig = Helpers.mk_rig () in
  match Kernel.accept rig.proc rig.listen_fd with
  | Error `Eagain -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Eagain"

let test_request_reaches_server () =
  let rig = Helpers.mk_rig () in
  let conn = ref None in
  let handlers =
    { Tcp.null_handlers with on_established = (fun c -> conn := Some c) }
  in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  (match !conn with
  | Some c -> Tcp.client_send c ~bytes_len:18 ~payload:"GET / HTTP/1.0\r\n\r\n"
  | None -> Alcotest.fail "no connection");
  Engine.run rig.engine;
  let fd, _sock = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  match Kernel.read rig.proc fd with
  | Ok (Kernel.Data (text, bytes)) ->
      Alcotest.(check string) "payload" "GET / HTTP/1.0\r\n\r\n" text;
      Alcotest.(check int) "bytes" 18 bytes
  | Ok _ | Error _ -> Alcotest.fail "expected data"

let test_response_reaches_client () =
  let rig = Helpers.mk_rig () in
  let got_bytes = ref 0 in
  let conn = ref None in
  let handlers =
    {
      Tcp.null_handlers with
      on_established = (fun c -> conn := Some c);
      on_bytes = (fun _ n -> got_bytes := !got_bytes + n);
    }
  in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  let written = Helpers.ok (Kernel.write rig.proc fd ~bytes_len:6144) in
  Alcotest.(check int) "write accepted" 6144 written;
  Engine.run rig.engine;
  Alcotest.(check int) "client received all" 6144 !got_bytes

let test_server_close_fin () =
  let rig = Helpers.mk_rig () in
  let fin = ref false in
  let handlers = { Tcp.null_handlers with on_server_fin = (fun _ -> fin := true) } in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  ignore (Helpers.ok (Kernel.close rig.proc fd));
  Engine.run rig.engine;
  Alcotest.(check bool) "client saw FIN" true !fin;
  match Kernel.read rig.proc fd with
  | Error `Ebadf -> ()
  | Ok _ | Error _ -> Alcotest.fail "fd should be closed"

let test_client_close_eof () =
  let rig = Helpers.mk_rig () in
  let conn = ref None in
  let handlers = { Tcp.null_handlers with on_established = (fun c -> conn := Some c) } in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  (match !conn with Some c -> Tcp.client_close c | None -> Alcotest.fail "no conn");
  Engine.run rig.engine;
  match Kernel.read rig.proc fd with
  | Ok Kernel.Eof -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected EOF"

let test_client_abort_resets () =
  let rig = Helpers.mk_rig () in
  let conn = ref None in
  let handlers = { Tcp.null_handlers with on_established = (fun c -> conn := Some c) } in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  (match !conn with Some c -> Tcp.client_abort c | None -> Alcotest.fail "no conn");
  Engine.run rig.engine;
  match Kernel.read rig.proc fd with
  | Ok Kernel.Econnreset -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected ECONNRESET"

let test_backlog_overflow_refuses () =
  let rig = Helpers.mk_rig ~backlog:2 () in
  let refused = ref 0 and established = ref 0 in
  let handlers =
    {
      Tcp.null_handlers with
      on_refused = (fun _ -> incr refused);
      on_established = (fun _ -> incr established);
    }
  in
  for _ = 1 to 5 do
    ignore (Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers ())
  done;
  Engine.run rig.engine;
  Alcotest.(check int) "two fit the backlog" 2 !established;
  Alcotest.(check int) "three refused" 3 !refused;
  Alcotest.(check int) "refusals counted" 3 rig.host.Host.counters.Host.connections_refused

let test_fd_exhaustion_on_accept () =
  let rig = Helpers.mk_rig ~fd_limit:2 () in
  (* listener occupies fd 0; one accept fits, the next hits Emfile. *)
  let resets = ref 0 in
  let handlers = { Tcp.null_handlers with on_reset = (fun _ -> incr resets) } in
  ignore (Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers ());
  ignore (Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers ());
  Engine.run rig.engine;
  (match Kernel.accept rig.proc rig.listen_fd with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first accept should fit");
  (match Kernel.accept rig.proc rig.listen_fd with
  | Error `Emfile -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Emfile");
  Engine.run rig.engine;
  Alcotest.(check int) "dropped connection reset the client" 1 !resets

let test_handshake_takes_one_rtt () =
  let rig = Helpers.mk_rig () in
  let established_at = ref None in
  let handlers =
    {
      Tcp.null_handlers with
      on_established = (fun _ -> established_at := Some (Engine.now rig.engine));
    }
  in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  match !established_at with
  | Some t ->
      let rtt = Sio_net.Network.rtt rig.net in
      Alcotest.(check bool) "about one RTT" true (t >= rtt && t < Time.add rtt (Time.ms 1))
  | None -> Alcotest.fail "never established"

let test_extra_latency_slows_handshake () =
  let rig = Helpers.mk_rig () in
  let at = ref None in
  let handlers =
    { Tcp.null_handlers with on_established = (fun _ -> at := Some (Engine.now rig.engine)) }
  in
  let _ =
    Tcp.connect ~net:rig.net ~listener:rig.listener ~extra_latency:(Time.ms 100)
      ~handlers ()
  in
  Engine.run rig.engine;
  match !at with
  | Some t -> Alcotest.(check bool) "at least 200ms" true (t >= Time.ms 200)
  | None -> Alcotest.fail "never established"

let test_write_to_closed_fd () =
  let rig = Helpers.mk_rig () in
  match Kernel.write rig.proc 99 ~bytes_len:10 with
  | Error `Ebadf -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Ebadf"

let test_listen_invalid_backlog () =
  let rig = Helpers.mk_rig () in
  match Kernel.listen rig.proc ~backlog:0 with
  | Error `Einval -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Einval"

let test_devpoll_via_syscalls () =
  let rig = Helpers.mk_rig () in
  let conn = ref None in
  let handlers = { Tcp.null_handlers with on_established = (fun c -> conn := Some c) } in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  let dpfd = Helpers.ok (Kernel.devpoll_open rig.proc) in
  ignore (Helpers.ok (Kernel.devpoll_write rig.proc dpfd [ (fd, Pollmask.pollin) ]));
  let got = ref [] in
  (match
     Kernel.devpoll_wait rig.proc dpfd ~max_results:4 ~timeout:None ~k:(fun rs -> got := rs)
   with
  | Ok () -> ()
  | Error `Ebadf -> Alcotest.fail "devpoll_wait Ebadf");
  (match !conn with
  | Some c -> Tcp.client_send c ~bytes_len:10 ~payload:"0123456789"
  | None -> Alcotest.fail "no conn");
  Engine.run rig.engine;
  match !got with
  | [ r ] -> Alcotest.(check int) "fd reported" fd r.Poll.fd
  | rs -> Alcotest.failf "expected one result, got %d" (List.length rs)

let test_rt_signals_via_syscalls () =
  let rig = Helpers.mk_rig () in
  let conn = ref None in
  let handlers = { Tcp.null_handlers with on_established = (fun c -> conn := Some c) } in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  ignore (Helpers.ok (Kernel.fcntl_setsig rig.proc fd ~signo:Rt_signal.sigrtmin));
  let got = ref None in
  Kernel.sigwaitinfo rig.proc ~k:(fun d -> got := Some d);
  (match !conn with
  | Some c -> Tcp.client_send c ~bytes_len:4 ~payload:"ping"
  | None -> Alcotest.fail "no conn");
  Engine.run rig.engine;
  match !got with
  | Some (Rt_signal.Signal { fd = sfd; _ }) -> Alcotest.(check int) "fd in siginfo" fd sfd
  | Some Rt_signal.Overflow | None -> Alcotest.fail "expected signal"

let test_compute_charges_cpu () =
  let rig = Helpers.mk_rig ~costs:Cost_model.default () in
  let before = Cpu.total_busy rig.host.Host.cpu in
  Kernel.compute rig.proc (Time.ms 5);
  Alcotest.(check int) "charged" (Time.ms 5) (Time.sub (Cpu.total_busy rig.host.Host.cpu) before)

let suite =
  [
    Alcotest.test_case "connect/accept roundtrip" `Quick test_connect_accept_roundtrip;
    Alcotest.test_case "accept on empty queue" `Quick test_accept_empty_queue_eagain;
    Alcotest.test_case "request reaches server" `Quick test_request_reaches_server;
    Alcotest.test_case "response reaches client" `Quick test_response_reaches_client;
    Alcotest.test_case "server close sends FIN" `Quick test_server_close_fin;
    Alcotest.test_case "client close reads EOF" `Quick test_client_close_eof;
    Alcotest.test_case "client abort resets" `Quick test_client_abort_resets;
    Alcotest.test_case "backlog overflow refuses" `Quick test_backlog_overflow_refuses;
    Alcotest.test_case "fd exhaustion on accept" `Quick test_fd_exhaustion_on_accept;
    Alcotest.test_case "handshake takes one RTT" `Quick test_handshake_takes_one_rtt;
    Alcotest.test_case "extra latency slows handshake" `Quick test_extra_latency_slows_handshake;
    Alcotest.test_case "write to closed fd" `Quick test_write_to_closed_fd;
    Alcotest.test_case "listen validates backlog" `Quick test_listen_invalid_backlog;
    Alcotest.test_case "/dev/poll via syscalls" `Quick test_devpoll_via_syscalls;
    Alcotest.test_case "RT signals via syscalls" `Quick test_rt_signals_via_syscalls;
    Alcotest.test_case "compute charges CPU" `Quick test_compute_charges_cpu;
  ]
