open Sio_sim

let test_basic_recording () =
  let t = Trace.create () in
  Trace.record t ~at:(Time.ms 1) ~tag:"a" "one";
  Trace.record t ~at:(Time.ms 2) ~tag:"b" "two";
  match Trace.entries t with
  | [ e1; e2 ] ->
      Alcotest.(check string) "tag1" "a" e1.Trace.tag;
      Alcotest.(check string) "detail2" "two" e2.Trace.detail;
      Alcotest.(check int) "time order" (Time.ms 1) e1.Trace.at
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let test_ring_overwrites_oldest () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~at:(Time.ms i) ~tag:"t" (string_of_int i)
  done;
  let details = List.map (fun e -> e.Trace.detail) (Trace.entries t) in
  Alcotest.(check (list string)) "last three retained" [ "3"; "4"; "5" ] details;
  Alcotest.(check int) "total count" 5 (Trace.count t)

let test_find_all () =
  let t = Trace.create () in
  Trace.record t ~at:Time.zero ~tag:"x" "1";
  Trace.record t ~at:Time.zero ~tag:"y" "2";
  Trace.record t ~at:Time.zero ~tag:"x" "3";
  let xs = Trace.find_all t ~tag:"x" in
  Alcotest.(check int) "two x entries" 2 (List.length xs)

let test_recordf () =
  let t = Trace.create () in
  Trace.recordf t ~at:Time.zero ~tag:"fmt" "fd=%d events=%s" 7 "IN";
  match Trace.entries t with
  | [ e ] -> Alcotest.(check string) "formatted" "fd=7 events=IN" e.Trace.detail
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_clear () =
  let t = Trace.create () in
  Trace.record t ~at:Time.zero ~tag:"a" "x";
  Trace.clear t;
  Alcotest.(check int) "count reset" 0 (Trace.count t);
  Alcotest.(check int) "entries empty" 0 (List.length (Trace.entries t))

let test_capacity_validation () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let suite =
  [
    Alcotest.test_case "records entries" `Quick test_basic_recording;
    Alcotest.test_case "ring overwrite" `Quick test_ring_overwrites_oldest;
    Alcotest.test_case "find_all filters by tag" `Quick test_find_all;
    Alcotest.test_case "recordf formats" `Quick test_recordf;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "capacity validated" `Quick test_capacity_validation;
  ]
