(* Ordering and latency-profile properties of the TCP/network layer. *)

open Sio_sim
open Sio_kernel

let test_data_before_fin () =
  (* FIFO links: the response must fully arrive before the FIN that
     follows it, at any message size. *)
  let rig = Helpers.mk_rig () in
  let events = ref [] in
  let handlers =
    {
      Tcp.null_handlers with
      Tcp.on_bytes = (fun _ n -> events := `Bytes n :: !events);
      on_server_fin = (fun _ -> events := `Fin :: !events);
    }
  in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run ~until:(Time.ms 5) rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  ignore (Helpers.ok (Kernel.write rig.proc fd ~bytes_len:6144));
  ignore (Helpers.ok (Kernel.close rig.proc fd));
  Engine.run ~until:(Time.s 1) rig.engine;
  match List.rev !events with
  | [ `Bytes 6144; `Fin ] -> ()
  | other -> Alcotest.failf "unexpected order (%d events)" (List.length other)

let test_writes_arrive_in_order () =
  let rig = Helpers.mk_rig () in
  let chunks = ref [] in
  let handlers =
    { Tcp.null_handlers with Tcp.on_bytes = (fun _ n -> chunks := n :: !chunks) }
  in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run ~until:(Time.ms 5) rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  List.iter
    (fun n -> ignore (Helpers.ok (Kernel.write rig.proc fd ~bytes_len:n)))
    [ 100; 200; 300 ];
  Engine.run ~until:(Time.s 1) rig.engine;
  Alcotest.(check (list int)) "in order" [ 100; 200; 300 ] (List.rev !chunks)

let test_send_buffer_backpressure () =
  (* Writes beyond the 64 KB send buffer are truncated until the wire
     drains it. *)
  let rig = Helpers.mk_rig () in
  let handlers = Tcp.null_handlers in
  let _ = Tcp.connect ~net:rig.net ~listener:rig.listener ~handlers () in
  Engine.run ~until:(Time.ms 5) rig.engine;
  let fd, _ = Helpers.ok (Kernel.accept rig.proc rig.listen_fd) in
  let first = Helpers.ok (Kernel.write rig.proc fd ~bytes_len:60_000) in
  let second = Helpers.ok (Kernel.write rig.proc fd ~bytes_len:60_000) in
  Alcotest.(check int) "first fits" 60_000 first;
  Alcotest.(check bool) "second truncated" true (second < 60_000);
  (* After the wire drains, space reappears. *)
  Engine.run ~until:(Time.s 2) rig.engine;
  let third = Helpers.ok (Kernel.write rig.proc fd ~bytes_len:10_000) in
  Alcotest.(check int) "space recovered" 10_000 third

let prop_modem_latency_delays_established =
  QCheck.Test.make ~name:"extra latency delays establishment proportionally" ~count:50
    QCheck.(int_range 0 500)
    (fun extra_ms ->
      let rig = Helpers.mk_rig () in
      let at = ref None in
      let handlers =
        {
          Tcp.null_handlers with
          Tcp.on_established = (fun _ -> at := Some (Engine.now rig.engine));
        }
      in
      let _ =
        Tcp.connect ~net:rig.net ~listener:rig.listener
          ~extra_latency:(Time.ms extra_ms) ~handlers ()
      in
      Engine.run ~until:(Time.s 12) rig.engine;
      match !at with
      | Some t -> t >= Time.ms (2 * extra_ms)
      | None -> false)

let suite =
  [
    Alcotest.test_case "data before FIN" `Quick test_data_before_fin;
    Alcotest.test_case "writes arrive in order" `Quick test_writes_arrive_in_order;
    Alcotest.test_case "send-buffer backpressure" `Quick test_send_buffer_backpressure;
    QCheck_alcotest.to_alcotest prop_modem_latency_delays_established;
  ]
