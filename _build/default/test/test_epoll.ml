open Sio_sim
open Sio_kernel

type env = {
  engine : Engine.t;
  host : Host.t;
  sockets : (int, Socket.t) Hashtbl.t;
  ep : Epoll.t;
}

let mk ?costs () =
  let engine = Helpers.mk_engine () in
  let host =
    match costs with
    | Some c -> Helpers.mk_host ~costs:c engine
    | None -> Helpers.mk_host engine
  in
  let sockets = Hashtbl.create 8 in
  let ep = Epoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
  { engine; host; sockets; ep }

let add env fd =
  let s = Socket.create_established ~host:env.host in
  Hashtbl.replace env.sockets fd s;
  s

let as_pairs rs = List.map (fun r -> (r.Poll.fd, r.Poll.revents)) rs

let test_ctl_lifecycle () =
  let env = mk () in
  ignore (add env 1);
  Alcotest.(check bool) "add" true (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin () = Ok ());
  Alcotest.(check bool) "add again = Eexist" true
    (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin () = Error `Eexist);
  Alcotest.(check bool) "add bad fd" true
    (Epoll.ctl_add env.ep ~fd:9 ~events:Pollmask.pollin () = Error `Ebadf);
  Alcotest.(check bool) "mod" true (Epoll.ctl_mod env.ep ~fd:1 ~events:Pollmask.pollout = Ok ());
  Alcotest.(check bool) "del" true (Epoll.ctl_del env.ep ~fd:1 = Ok ());
  Alcotest.(check bool) "del again = Enoent" true (Epoll.ctl_del env.ep ~fd:1 = Error `Enoent);
  Alcotest.(check int) "empty" 0 (Epoll.interest_count env.ep)

let test_ready_event_delivered () =
  let env = mk () in
  let s = add env 3 in
  ignore (Epoll.ctl_add env.ep ~fd:3 ~events:Pollmask.pollin ());
  ignore (Socket.deliver s ~bytes_len:4 ~payload:"");
  let got = ref [] in
  Epoll.wait env.ep ~max_events:8 ~timeout:None ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check (list (pair int Helpers.mask))) "event" [ (3, Pollmask.pollin) ]
    (as_pairs !got)

let test_no_lost_startup_event () =
  (* The descriptor is already readable when registered. *)
  let env = mk () in
  let s = add env 1 in
  ignore (Socket.deliver s ~bytes_len:4 ~payload:"");
  ignore (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin ());
  let got = ref [] in
  Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check int) "found at first wait" 1 (List.length !got)

let test_level_triggered_requeues () =
  let env = mk () in
  let s = add env 1 in
  ignore (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin ());
  ignore (Socket.deliver s ~bytes_len:4 ~payload:"");
  let first = ref [] and second = ref [] in
  Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun rs -> first := rs);
  Engine.run env.engine;
  (* Data not consumed: a level-triggered wait must report it again. *)
  Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun rs -> second := rs);
  Engine.run env.engine;
  Alcotest.(check int) "first" 1 (List.length !first);
  Alcotest.(check int) "second (still ready)" 1 (List.length !second)

let test_edge_triggered_fires_once () =
  let env = mk () in
  let s = add env 1 in
  ignore (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin ~trigger:Epoll.Edge ());
  ignore (Socket.deliver s ~bytes_len:4 ~payload:"");
  let first = ref [] and second = ref [] in
  Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun rs -> first := rs);
  Engine.run env.engine;
  Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun rs -> second := rs);
  Engine.run env.engine;
  Alcotest.(check int) "first delivers" 1 (List.length !first);
  Alcotest.(check int) "second silent (no new edge)" 0 (List.length !second)

let test_stale_ready_entry_dropped () =
  let env = mk () in
  let s = add env 1 in
  ignore (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin ());
  ignore (Socket.deliver s ~bytes_len:4 ~payload:"");
  (* Readiness evaporates before the wait. *)
  ignore (Socket.read_all s);
  let got = ref [ { Poll.fd = -1; revents = Pollmask.empty } ] in
  Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check int) "stale entry dropped" 0 (List.length !got)

let test_blocks_until_event () =
  let env = mk () in
  let s = add env 1 in
  ignore (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin ());
  let at = ref None in
  Epoll.wait env.ep ~max_events:8 ~timeout:None ~k:(fun rs ->
      at := Some (Engine.now env.engine, List.length rs));
  ignore
    (Engine.at env.engine (Time.ms 9) (fun () ->
         ignore (Socket.deliver s ~bytes_len:1 ~payload:"")));
  Engine.run env.engine;
  Alcotest.(check (option (pair int int))) "woken" (Some (Time.ms 9, 1)) !at

let test_wait_cost_independent_of_interest_size () =
  (* The whole point of the ready list: 1000 idle interests cost the
     same as 10 at wait time. *)
  let cost n =
    let env = mk ~costs:Cost_model.default () in
    for fd = 0 to n - 1 do
      ignore (add env fd);
      ignore (Epoll.ctl_add env.ep ~fd ~events:Pollmask.pollin ())
    done;
    let before = Cpu.total_busy env.host.Host.cpu in
    Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run env.engine;
    Time.sub (Cpu.total_busy env.host.Host.cpu) before
  in
  let c10 = cost 10 and c1000 = cost 1000 in
  Alcotest.(check bool) "same wait cost" true (c1000 < 2 * c10)

let test_closed_fd_reports_nval_once () =
  let env = mk () in
  let s = add env 1 in
  ignore (Epoll.ctl_add env.ep ~fd:1 ~events:Pollmask.pollin ());
  ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
  Hashtbl.remove env.sockets 1;
  let got = ref [] in
  Epoll.wait env.ep ~max_events:8 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check (list (pair int Helpers.mask))) "NVAL" [ (1, Pollmask.pollnval) ]
    (as_pairs !got)

let test_max_events_caps () =
  let env = mk () in
  for fd = 0 to 9 do
    let s = add env fd in
    ignore (Epoll.ctl_add env.ep ~fd ~events:Pollmask.pollin ());
    ignore (Socket.deliver s ~bytes_len:1 ~payload:"")
  done;
  let got = ref [] in
  Epoll.wait env.ep ~max_events:4 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check int) "capped" 4 (List.length !got);
  (* The other six are still queued. *)
  Alcotest.(check bool) "rest queued" true (Epoll.ready_count env.ep >= 6)

let prop_epoll_agrees_with_poll =
  QCheck.Test.make ~name:"epoll (level) and poll agree on readiness" ~count:150
    QCheck.(list_of_size Gen.(1 -- 15) (int_bound 3))
    (fun script ->
      let env = mk () in
      List.iteri
        (fun fd action ->
          let s = add env fd in
          ignore (Epoll.ctl_add env.ep ~fd ~events:Pollmask.pollin ());
          match action with
          | 0 -> ()
          | 1 -> ignore (Socket.deliver s ~bytes_len:1 ~payload:"")
          | 2 -> Socket.peer_closed s
          | _ -> Socket.reset s)
        script;
      let n = List.length script in
      let ev = ref [] and pl = ref [] in
      Epoll.wait env.ep ~max_events:n ~timeout:(Some Time.zero) ~k:(fun rs -> ev := rs);
      Poll.wait ~host:env.host ~lookup:(Hashtbl.find_opt env.sockets)
        ~interests:(List.init n (fun fd -> (fd, Pollmask.pollin)))
        ~timeout:(Some Time.zero)
        ~k:(fun rs -> pl := rs);
      Engine.run env.engine;
      let norm rs = List.sort compare (as_pairs rs) in
      norm !ev = norm !pl)

let suite =
  [
    Alcotest.test_case "ctl lifecycle" `Quick test_ctl_lifecycle;
    Alcotest.test_case "ready event delivered" `Quick test_ready_event_delivered;
    Alcotest.test_case "no lost startup event" `Quick test_no_lost_startup_event;
    Alcotest.test_case "level-triggered requeues" `Quick test_level_triggered_requeues;
    Alcotest.test_case "edge-triggered fires once" `Quick test_edge_triggered_fires_once;
    Alcotest.test_case "stale ready entry dropped" `Quick test_stale_ready_entry_dropped;
    Alcotest.test_case "blocks until event" `Quick test_blocks_until_event;
    Alcotest.test_case "wait cost O(ready) not O(interests)" `Quick
      test_wait_cost_independent_of_interest_size;
    Alcotest.test_case "closed fd reports NVAL" `Quick test_closed_fd_reports_nval_once;
    Alcotest.test_case "max_events caps, rest stay queued" `Quick test_max_events_caps;
    QCheck_alcotest.to_alcotest prop_epoll_agrees_with_poll;
  ]
