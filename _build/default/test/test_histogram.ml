open Sio_sim

let test_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.check_raises "percentile raises" (Invalid_argument "Histogram.percentile: empty")
    (fun () -> ignore (Histogram.median h))

let test_single_value () =
  let h = Histogram.create () in
  Histogram.add h (Time.ms 5);
  Alcotest.(check int) "count" 1 (Histogram.count h);
  Alcotest.(check int) "min" (Time.ms 5) (Histogram.min_value h);
  Alcotest.(check int) "max" (Time.ms 5) (Histogram.max_value h);
  (* Median is the recorded value within relative resolution. *)
  let med = Histogram.median h in
  Alcotest.(check bool) "median close" true
    (abs (med - Time.ms 5) <= Time.ms 5 / 16)

let test_median_of_range () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (Time.us (i * 10))
  done;
  let med = Histogram.median h in
  let expected = Time.us 5000 in
  Alcotest.(check bool) "median near 5ms" true
    (abs (med - expected) < expected / 10)

let test_percentile_monotone () =
  let h = Histogram.create () in
  for i = 1 to 500 do
    Histogram.add h (Time.us (i * 37))
  done;
  let p50 = Histogram.percentile h 50. in
  let p90 = Histogram.percentile h 90. in
  let p99 = Histogram.percentile h 99. in
  Alcotest.(check bool) "p50<=p90" true (p50 <= p90);
  Alcotest.(check bool) "p90<=p99" true (p90 <= p99);
  Alcotest.(check bool) "p99<=max" true (p99 <= Histogram.max_value h)

let test_negative_clamped () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  Alcotest.(check int) "count" 1 (Histogram.count h);
  Alcotest.(check int) "min is 0" 0 (Histogram.min_value h)

let test_out_of_range_percentile () =
  let h = Histogram.create () in
  Histogram.add h (Time.ms 1);
  Alcotest.check_raises "p>100" (Invalid_argument "Histogram.percentile: p out of range")
    (fun () -> ignore (Histogram.percentile h 101.))

let test_mean () =
  let h = Histogram.create () in
  Histogram.add h (Time.ms 1);
  Histogram.add h (Time.ms 3);
  Alcotest.(check int) "mean" (Time.ms 2) (Histogram.mean h)

let test_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a (Time.ms 1);
  Histogram.add b (Time.ms 100);
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "count" 2 (Histogram.count a);
  Alcotest.(check int) "max" (Time.ms 100) (Histogram.max_value a);
  Alcotest.(check int) "min" (Time.ms 1) (Histogram.min_value a)

let test_large_values () =
  let h = Histogram.create () in
  Histogram.add h (Time.s 120);
  let med = Histogram.median h in
  Alcotest.(check bool) "2 minutes representable" true
    (abs (med - Time.s 120) < Time.s 120 / 10)

let prop_percentile_within_bounds =
  QCheck.Test.make ~name:"percentile within [0,max] and ~<=max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 200) (int_range 0 100_000_000)) (int_range 0 100))
    (fun (vs, p) ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) vs;
      let q = Histogram.percentile h (float_of_int p) in
      q >= 0 && q <= Histogram.max_value h)

let prop_median_relative_error =
  QCheck.Test.make ~name:"median of constant stream ~= the constant" ~count:200
    QCheck.(int_range 1 2_000_000_000)
    (fun v ->
      let h = Histogram.create () in
      for _ = 1 to 10 do
        Histogram.add h v
      done;
      let med = Histogram.median h in
      (* within 4% relative or absolute resolution floor *)
      abs (med - v) <= Stdlib.max (v / 25) 50_000)

let suite =
  [
    Alcotest.test_case "empty histogram" `Quick test_empty;
    Alcotest.test_case "single value" `Quick test_single_value;
    Alcotest.test_case "median of uniform range" `Quick test_median_of_range;
    Alcotest.test_case "percentiles monotone" `Quick test_percentile_monotone;
    Alcotest.test_case "negative values clamp" `Quick test_negative_clamped;
    Alcotest.test_case "percentile range check" `Quick test_out_of_range_percentile;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "large values" `Quick test_large_values;
    QCheck_alcotest.to_alcotest prop_percentile_within_bounds;
    QCheck_alcotest.to_alcotest prop_median_relative_error;
  ]
