open Sio_kernel

let m = Helpers.mask

let mk () =
  let engine = Helpers.mk_engine () in
  let host = Helpers.mk_host engine in
  (engine, host)

let test_established_initial_status () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  Alcotest.check m "writable only" Pollmask.pollout (Socket.status s);
  Alcotest.(check bool) "state" true (Socket.state s = Socket.Established)

let test_listening_status_tracks_accept_queue () =
  let _, host = mk () in
  let l = Socket.create_listening ~host ~backlog:2 in
  Alcotest.check m "idle listener" Pollmask.empty (Socket.status l);
  let peer = Socket.create_established ~host in
  Alcotest.(check bool) "accepted" true (Socket.enqueue_accept l peer);
  Alcotest.check m "readable" Pollmask.pollin (Socket.status l);
  (match Socket.accept_pop l with
  | Some popped -> Alcotest.(check bool) "pop" true (popped == peer)
  | None -> Alcotest.fail "accept queue empty");
  Alcotest.check m "idle again" Pollmask.empty (Socket.status l)

let test_backlog_refuses () =
  let _, host = mk () in
  let l = Socket.create_listening ~host ~backlog:1 in
  let p1 = Socket.create_established ~host in
  let p2 = Socket.create_established ~host in
  Alcotest.(check bool) "first fits" true (Socket.enqueue_accept l p1);
  Alcotest.(check bool) "second refused" false (Socket.enqueue_accept l p2);
  Alcotest.(check int) "refusal counted" 1 host.Host.counters.Host.connections_refused

let test_deliver_makes_readable () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  let n = Socket.deliver s ~bytes_len:100 ~payload:"GET /" in
  Alcotest.(check int) "accepted" 100 n;
  Alcotest.(check bool) "readable" true (Pollmask.mem Pollmask.pollin (Socket.status s));
  let bytes, text = Socket.read_all s in
  Alcotest.(check int) "read bytes" 100 bytes;
  Alcotest.(check string) "payload" "GET /" text;
  Alcotest.(check bool) "drained" false (Pollmask.mem Pollmask.pollin (Socket.status s))

let test_deliver_accumulates_payload () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  ignore (Socket.deliver s ~bytes_len:3 ~payload:"GET");
  ignore (Socket.deliver s ~bytes_len:2 ~payload:" /");
  let _, text = Socket.read_all s in
  Alcotest.(check string) "concatenated" "GET /" text

let test_peer_close_gives_eof () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  Socket.peer_closed s;
  Alcotest.(check bool) "peer_closed state" true (Socket.state s = Socket.Peer_closed);
  Alcotest.(check bool) "POLLIN set" true (Pollmask.mem Pollmask.pollin (Socket.status s));
  Alcotest.(check bool) "POLLHUP set" true (Pollmask.mem Pollmask.pollhup (Socket.status s));
  let bytes, _ = Socket.read_all s in
  Alcotest.(check int) "EOF read" 0 bytes

let test_reset_gives_pollerr () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  Socket.reset s;
  Alcotest.(check bool) "POLLERR" true (Pollmask.mem Pollmask.pollerr (Socket.status s))

let test_close_gives_pollnval () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  Socket.close s;
  Alcotest.check m "nval" Pollmask.pollnval (Socket.status s);
  (* idempotent *)
  Socket.close s;
  Alcotest.(check bool) "still closed" true (Socket.state s = Socket.Closed)

let test_waiter_woken_on_deliver () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  let woken = ref Pollmask.empty in
  let w = { Socket.wake = (fun mask -> woken := mask) } in
  Socket.register_waiter s w;
  ignore (Socket.deliver s ~bytes_len:10 ~payload:"");
  Alcotest.check m "woken with POLLIN" Pollmask.pollin !woken;
  Alcotest.(check int) "waiter consumed" 0 (Socket.waiter_count s)

let test_no_edge_on_second_deliver () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  ignore (Socket.deliver s ~bytes_len:10 ~payload:"");
  let woken = ref 0 in
  let w = { Socket.wake = (fun _ -> incr woken) } in
  Socket.register_waiter s w;
  (* Buffer already non-empty: no new edge. *)
  ignore (Socket.deliver s ~bytes_len:10 ~payload:"");
  Alcotest.(check int) "no spurious wake" 0 !woken

let test_observer_edges () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  let edges = ref [] in
  let token = Socket.subscribe s (fun mask -> edges := mask :: !edges) in
  ignore (Socket.deliver s ~bytes_len:5 ~payload:"");
  Socket.peer_closed s;
  Alcotest.(check int) "two edges" 2 (List.length !edges);
  Socket.unsubscribe s token;
  Socket.reset s;
  Alcotest.(check int) "unsubscribed: no more" 2 (List.length !edges)

let test_write_reserve_states () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  Alcotest.(check int) "accepts" 6144 (Socket.write_reserve s 6144);
  Socket.reset s;
  Alcotest.(check int) "reset socket rejects" 0 (Socket.write_reserve s 100)

let test_release_send_space_pollout_edge () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  let cap = 65536 in
  ignore (Socket.write_reserve s cap);
  Alcotest.(check bool) "not writable when full" false
    (Pollmask.mem Pollmask.pollout (Socket.status s));
  let woken = ref Pollmask.empty in
  Socket.register_waiter s { Socket.wake = (fun mask -> woken := mask) };
  Socket.release_send_space s 1000;
  Alcotest.check m "POLLOUT edge" Pollmask.pollout !woken;
  Alcotest.(check bool) "writable again" true
    (Pollmask.mem Pollmask.pollout (Socket.status s))

let test_transport_hooks () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  let sent = ref 0 and closed = ref false in
  Socket.set_transport s ~on_send:(fun n -> sent := n) ~on_close:(fun () -> closed := true);
  ignore (Socket.write_reserve s 50);
  Socket.transport_send s 50;
  Alcotest.(check int) "on_send" 50 !sent;
  Socket.close s;
  Alcotest.(check bool) "on_close" true !closed

let test_driver_poll_counts () =
  let _, host = mk () in
  let s = Socket.create_established ~host in
  ignore (Socket.driver_poll s);
  ignore (Socket.driver_poll s);
  Alcotest.(check int) "driver polls counted" 2 host.Host.counters.Host.driver_polls

let suite =
  [
    Alcotest.test_case "established initial status" `Quick test_established_initial_status;
    Alcotest.test_case "listener status tracks accept queue" `Quick
      test_listening_status_tracks_accept_queue;
    Alcotest.test_case "backlog refuses" `Quick test_backlog_refuses;
    Alcotest.test_case "deliver makes readable" `Quick test_deliver_makes_readable;
    Alcotest.test_case "payload accumulates" `Quick test_deliver_accumulates_payload;
    Alcotest.test_case "peer close gives EOF" `Quick test_peer_close_gives_eof;
    Alcotest.test_case "reset gives POLLERR" `Quick test_reset_gives_pollerr;
    Alcotest.test_case "close gives POLLNVAL" `Quick test_close_gives_pollnval;
    Alcotest.test_case "waiter woken on deliver" `Quick test_waiter_woken_on_deliver;
    Alcotest.test_case "level-triggered buffer, edge-posted wake" `Quick
      test_no_edge_on_second_deliver;
    Alcotest.test_case "observer edges" `Quick test_observer_edges;
    Alcotest.test_case "write_reserve respects state" `Quick test_write_reserve_states;
    Alcotest.test_case "POLLOUT edge on space release" `Quick
      test_release_send_space_pollout_edge;
    Alcotest.test_case "transport hooks" `Quick test_transport_hooks;
    Alcotest.test_case "driver_poll counts" `Quick test_driver_poll_counts;
  ]
