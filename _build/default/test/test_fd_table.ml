open Sio_kernel

let test_lowest_free () =
  let t = Fd_table.create () in
  Alcotest.(check int) "first" 0 (Helpers.ok (Fd_table.alloc t "a"));
  Alcotest.(check int) "second" 1 (Helpers.ok (Fd_table.alloc t "b"));
  Alcotest.(check int) "third" 2 (Helpers.ok (Fd_table.alloc t "c"));
  ignore (Fd_table.close t 1);
  Alcotest.(check int) "reuses lowest" 1 (Helpers.ok (Fd_table.alloc t "d"));
  Alcotest.(check int) "then next" 3 (Helpers.ok (Fd_table.alloc t "e"))

let test_limit () =
  let t = Fd_table.create ~limit:2 () in
  ignore (Fd_table.alloc t "a");
  ignore (Fd_table.alloc t "b");
  (match Fd_table.alloc t "c" with
  | Error `Emfile -> ()
  | Ok _ -> Alcotest.fail "expected Emfile");
  ignore (Fd_table.close t 0);
  Alcotest.(check int) "slot freed" 0 (Helpers.ok (Fd_table.alloc t "c"))

let test_find_set_close () =
  let t = Fd_table.create () in
  let fd = Helpers.ok (Fd_table.alloc t "x") in
  Alcotest.(check (option string)) "find" (Some "x") (Fd_table.find t fd);
  Fd_table.set t fd "y";
  Alcotest.(check (option string)) "set replaced" (Some "y") (Fd_table.find t fd);
  Alcotest.(check (option string)) "close returns" (Some "y") (Fd_table.close t fd);
  Alcotest.(check (option string)) "gone" None (Fd_table.find t fd);
  Alcotest.(check (option string)) "double close" None (Fd_table.close t fd)

let test_set_on_closed_raises () =
  let t = Fd_table.create () in
  let raised = try Fd_table.set t 5 "x"; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "set on closed raises" true raised

let test_find_exn () =
  let t = Fd_table.create () in
  let raised = try ignore (Fd_table.find_exn t 3); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "find_exn raises" true raised

let test_count_iter_fold () =
  let t = Fd_table.create () in
  List.iter (fun v -> ignore (Fd_table.alloc t v)) [ "a"; "b"; "c" ];
  Alcotest.(check int) "count" 3 (Fd_table.count t);
  let seen = ref 0 in
  Fd_table.iter t (fun _ _ -> incr seen);
  Alcotest.(check int) "iter" 3 !seen;
  let total = Fd_table.fold t ~init:0 ~f:(fun acc fd _ -> acc + fd) in
  Alcotest.(check int) "fold over fds" 3 total

let test_invalid_limit () =
  Alcotest.check_raises "limit 0"
    (Invalid_argument "Fd_table.create: limit must be positive") (fun () ->
      ignore (Fd_table.create ~limit:0 ()))

let prop_lowest_free_invariant =
  QCheck.Test.make ~name:"alloc always returns the lowest free fd" ~count:200
    QCheck.(list (option (int_bound 30)))
    (fun ops ->
      (* [None] allocates; [Some fd] closes fd. Model with a set. *)
      let t = Fd_table.create ~limit:64 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          match op with
          | None -> (
              match Fd_table.alloc t () with
              | Ok fd ->
                  let expected =
                    let rec lowest i = if Hashtbl.mem model i then lowest (i + 1) else i in
                    lowest 0
                  in
                  Hashtbl.replace model fd ();
                  fd = expected
              | Error `Emfile -> Hashtbl.length model >= 64)
          | Some fd ->
              let in_model = Hashtbl.mem model fd in
              let closed = Fd_table.close t fd <> None in
              Hashtbl.remove model fd;
              in_model = closed)
        ops
      && Fd_table.count t = Hashtbl.length model)

let suite =
  [
    Alcotest.test_case "lowest-free allocation" `Quick test_lowest_free;
    Alcotest.test_case "limit and Emfile" `Quick test_limit;
    Alcotest.test_case "find/set/close" `Quick test_find_set_close;
    Alcotest.test_case "set on closed fd raises" `Quick test_set_on_closed_raises;
    Alcotest.test_case "find_exn raises" `Quick test_find_exn;
    Alcotest.test_case "count/iter/fold" `Quick test_count_iter_fold;
    Alcotest.test_case "limit validated" `Quick test_invalid_limit;
    QCheck_alcotest.to_alcotest prop_lowest_free_invariant;
  ]
