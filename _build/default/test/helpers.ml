(* Shared scaffolding for kernel-level tests. *)

open Sio_sim
open Sio_kernel

let mk_engine ?(seed = 42) () = Engine.create ~seed ()

(* A host with zero costs: pure-semantics tests that should not depend
   on the cost model. *)
let mk_host ?(costs = Cost_model.zero) ?(wake_policy = Wait_queue.Wake_all) engine =
  Host.create ~engine ~costs ~wake_policy ()

let mk_costed_host engine = Host.create ~engine ()

let mask = Alcotest.testable Pollmask.pp Pollmask.equal

let run_until_quiet engine = Engine.run engine

(* Drive a fully wired client/server pair for TCP-level tests. *)
type rig = {
  engine : Engine.t;
  host : Host.t;
  net : Sio_net.Network.t;
  proc : Process.t;
  listen_fd : int;
  listener : Socket.t;
}

let mk_rig ?(costs = Cost_model.zero) ?(fd_limit = 1024) ?(backlog = 128) () =
  let engine = mk_engine () in
  let host = mk_host ~costs engine in
  let net = Sio_net.Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit ~name:"server" () in
  let listen_fd =
    match Kernel.listen proc ~backlog with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "listen failed"
  in
  let listener =
    match Process.lookup_socket proc listen_fd with
    | Some s -> s
    | None -> Alcotest.fail "listener not installed"
  in
  { engine; host; net; proc; listen_fd; listener }

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "expected Ok"
