open Sio_kernel

let test_set_and_find () =
  let t = Interest_table.create () in
  Alcotest.(check bool) "added" true (Interest_table.set t ~fd:5 ~events:Pollmask.pollin = `Added);
  (match Interest_table.find t 5 with
  | Some i -> Alcotest.check Helpers.mask "events" Pollmask.pollin i.Interest_table.events
  | None -> Alcotest.fail "missing interest");
  Alcotest.(check int) "length" 1 (Interest_table.length t)

let test_linux_replace_semantics () =
  let t = Interest_table.create () in
  ignore (Interest_table.set t ~fd:3 ~events:Pollmask.pollin);
  (* Linux semantics: events replace; Solaris would OR. *)
  Alcotest.(check bool) "modified" true
    (Interest_table.set t ~fd:3 ~events:Pollmask.pollout = `Modified);
  match Interest_table.find t 3 with
  | Some i -> Alcotest.check Helpers.mask "replaced" Pollmask.pollout i.Interest_table.events
  | None -> Alcotest.fail "missing"

let test_solaris_or_semantics () =
  let t = Interest_table.create () in
  ignore (Interest_table.set_solaris t ~fd:3 ~events:Pollmask.pollin);
  ignore (Interest_table.set_solaris t ~fd:3 ~events:Pollmask.pollout);
  match Interest_table.find t 3 with
  | Some i ->
      Alcotest.check Helpers.mask "ORed"
        (Pollmask.union Pollmask.pollin Pollmask.pollout)
        i.Interest_table.events
  | None -> Alcotest.fail "missing"

let test_modify_resets_hint_and_cache () =
  let t = Interest_table.create () in
  ignore (Interest_table.set t ~fd:1 ~events:Pollmask.pollin);
  (match Interest_table.find t 1 with
  | Some i ->
      i.Interest_table.hint <- Pollmask.pollin;
      i.Interest_table.cached <- Some Pollmask.pollin
  | None -> Alcotest.fail "missing");
  ignore (Interest_table.set t ~fd:1 ~events:Pollmask.pollin);
  match Interest_table.find t 1 with
  | Some i ->
      Alcotest.check Helpers.mask "hint cleared" Pollmask.empty i.Interest_table.hint;
      Alcotest.(check bool) "cache cleared" true (i.Interest_table.cached = None)
  | None -> Alcotest.fail "missing"

let test_remove () =
  let t = Interest_table.create () in
  ignore (Interest_table.set t ~fd:7 ~events:Pollmask.pollin);
  Alcotest.(check bool) "removed" true (Interest_table.remove t 7);
  Alcotest.(check bool) "already gone" false (Interest_table.remove t 7);
  Alcotest.(check int) "empty" 0 (Interest_table.length t);
  Alcotest.(check bool) "find misses" true (Interest_table.find t 7 = None)

let test_doubling_at_mean_two () =
  let t = Interest_table.create ~initial_buckets:4 () in
  (* Paper: double the bucket array when mean occupancy reaches 2;
     never shrink. 4 buckets double at 8 entries. *)
  for fd = 0 to 7 do
    ignore (Interest_table.set t ~fd ~events:Pollmask.pollin)
  done;
  Alcotest.(check int) "doubled once" 8 (Interest_table.bucket_count t);
  for fd = 8 to 15 do
    ignore (Interest_table.set t ~fd ~events:Pollmask.pollin)
  done;
  Alcotest.(check int) "doubled twice" 16 (Interest_table.bucket_count t);
  for fd = 0 to 15 do
    ignore (Interest_table.remove t fd)
  done;
  Alcotest.(check int) "never shrinks" 16 (Interest_table.bucket_count t);
  Alcotest.(check int) "empty again" 0 (Interest_table.length t)

let test_survives_resize () =
  let t = Interest_table.create ~initial_buckets:2 () in
  for fd = 0 to 99 do
    ignore (Interest_table.set t ~fd ~events:Pollmask.pollin)
  done;
  for fd = 0 to 99 do
    match Interest_table.find t fd with
    | Some i -> Alcotest.(check int) "fd kept" fd i.Interest_table.fd
    | None -> Alcotest.failf "fd %d lost in resize" fd
  done

let test_iter_fold () =
  let t = Interest_table.create () in
  List.iter (fun fd -> ignore (Interest_table.set t ~fd ~events:Pollmask.pollin)) [ 1; 2; 3 ];
  let sum = Interest_table.fold t ~init:0 ~f:(fun acc i -> acc + i.Interest_table.fd) in
  Alcotest.(check int) "fold" 6 sum;
  let n = ref 0 in
  Interest_table.iter t (fun _ -> incr n);
  Alcotest.(check int) "iter" 3 !n

let prop_matches_model_map =
  QCheck.Test.make ~name:"interest table behaves like a map" ~count:300
    QCheck.(list (pair (int_bound 50) (option (int_bound 3))))
    (fun ops ->
      (* (fd, None) removes; (fd, Some e) sets one of 4 event masks. *)
      let t = Interest_table.create ~initial_buckets:2 () in
      let model : (int, Pollmask.t) Hashtbl.t = Hashtbl.create 16 in
      let masks = [| Pollmask.pollin; Pollmask.pollout; Pollmask.readable; Pollmask.pollpri |] in
      List.iter
        (fun (fd, op) ->
          match op with
          | None ->
              ignore (Interest_table.remove t fd);
              Hashtbl.remove model fd
          | Some e ->
              ignore (Interest_table.set t ~fd ~events:masks.(e));
              Hashtbl.replace model fd masks.(e))
        ops;
      Interest_table.length t = Hashtbl.length model
      && Hashtbl.fold
           (fun fd events acc ->
             acc
             &&
             match Interest_table.find t fd with
             | Some i -> Pollmask.equal i.Interest_table.events events
             | None -> false)
           model true)

let suite =
  [
    Alcotest.test_case "set and find" `Quick test_set_and_find;
    Alcotest.test_case "Linux replace semantics" `Quick test_linux_replace_semantics;
    Alcotest.test_case "Solaris OR semantics" `Quick test_solaris_or_semantics;
    Alcotest.test_case "modify resets hint and cache" `Quick test_modify_resets_hint_and_cache;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "doubles at mean occupancy 2, never shrinks" `Quick
      test_doubling_at_mean_two;
    Alcotest.test_case "contents survive resize" `Quick test_survives_resize;
    Alcotest.test_case "iter and fold" `Quick test_iter_fold;
    QCheck_alcotest.to_alcotest prop_matches_model_map;
  ]
