open Sio_sim
open Sio_kernel

type env = { engine : Engine.t; host : Host.t; q : Rt_signal.queue }

let mk ?limit () =
  let engine = Helpers.mk_engine () in
  let host = Helpers.mk_host engine in
  let q =
    match limit with
    | Some l -> Rt_signal.create_queue ~host ~limit:l ()
    | None -> Rt_signal.create_queue ~host ()
  in
  { engine; host; q }

let sock env = Socket.create_established ~host:env.host

let test_signal_on_io_completion () =
  let env = mk () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:7 ~signo:Rt_signal.sigrtmin;
  ignore (Socket.deliver s ~bytes_len:10 ~payload:"");
  Alcotest.(check int) "queued" 1 (Rt_signal.pending env.q);
  let got = ref None in
  Rt_signal.sigwaitinfo env.q ~k:(fun d -> got := Some d);
  Engine.run env.engine;
  match !got with
  | Some (Rt_signal.Signal { signo; fd; band }) ->
      Alcotest.(check int) "signo" Rt_signal.sigrtmin signo;
      Alcotest.(check int) "fd payload" 7 fd;
      Alcotest.(check bool) "band has POLLIN" true (Pollmask.mem Pollmask.pollin band)
  | Some Rt_signal.Overflow -> Alcotest.fail "unexpected overflow"
  | None -> Alcotest.fail "no delivery"

let test_sigwaitinfo_blocks () =
  let env = mk () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:Rt_signal.sigrtmin;
  let got_at = ref None in
  Rt_signal.sigwaitinfo env.q ~k:(fun _ -> got_at := Some (Engine.now env.engine));
  ignore
    (Engine.at env.engine (Time.ms 40) (fun () ->
         ignore (Socket.deliver s ~bytes_len:1 ~payload:"")));
  Engine.run env.engine;
  Alcotest.(check (option int)) "woken at delivery" (Some (Time.ms 40)) !got_at

let test_fifo_within_signo () =
  let env = mk () in
  let s1 = sock env and s2 = sock env in
  Rt_signal.set_signal env.q ~socket:s1 ~fd:1 ~signo:Rt_signal.sigrtmin;
  Rt_signal.set_signal env.q ~socket:s2 ~fd:2 ~signo:Rt_signal.sigrtmin;
  ignore (Socket.deliver s1 ~bytes_len:1 ~payload:"");
  ignore (Socket.deliver s2 ~bytes_len:1 ~payload:"");
  let fds = ref [] in
  Rt_signal.sigtimedwait4 env.q ~max:10 ~timeout:(Some Time.zero) ~k:(fun ds ->
      fds :=
        List.filter_map
          (function Rt_signal.Signal i -> Some i.Rt_signal.fd | Rt_signal.Overflow -> None)
          ds);
  Engine.run env.engine;
  Alcotest.(check (list int)) "FIFO" [ 1; 2 ] !fds

let test_lower_signo_delivered_first () =
  (* "Signals dequeue in order of their assigned signal number, thus
     activity on lower-numbered connections can cause longer delays
     for higher-numbered connections." *)
  let env = mk () in
  let s1 = sock env and s2 = sock env in
  Rt_signal.set_signal env.q ~socket:s1 ~fd:1 ~signo:(Rt_signal.sigrtmin + 5);
  Rt_signal.set_signal env.q ~socket:s2 ~fd:2 ~signo:Rt_signal.sigrtmin;
  ignore (Socket.deliver s1 ~bytes_len:1 ~payload:"");
  ignore (Socket.deliver s2 ~bytes_len:1 ~payload:"");
  let fds = ref [] in
  Rt_signal.sigtimedwait4 env.q ~max:10 ~timeout:(Some Time.zero) ~k:(fun ds ->
      fds :=
        List.filter_map
          (function Rt_signal.Signal i -> Some i.Rt_signal.fd | Rt_signal.Overflow -> None)
          ds);
  Engine.run env.engine;
  Alcotest.(check (list int)) "lower signo first" [ 2; 1 ] !fds

let test_overflow_raises_sigio_once () =
  let env = mk ~limit:3 () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:Rt_signal.sigrtmin;
  (* Each deliver/drain cycle posts a fresh POLLIN edge. *)
  for _ = 1 to 5 do
    ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
    ignore (Socket.read_all s)
  done;
  Alcotest.(check int) "queue capped" 3 (Rt_signal.pending env.q);
  Alcotest.(check bool) "SIGIO pending" true (Rt_signal.sigio_pending env.q);
  Alcotest.(check int) "overflow counted once" 1 env.host.Host.counters.Host.rt_overflows;
  Alcotest.(check int) "drops counted" 2 env.host.Host.counters.Host.rt_dropped

let test_sigio_jumps_queue () =
  let env = mk ~limit:2 () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:Rt_signal.sigrtmin;
  for _ = 1 to 3 do
    ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
    ignore (Socket.read_all s)
  done;
  let first = ref None in
  Rt_signal.sigwaitinfo env.q ~k:(fun d -> first := Some d);
  Engine.run env.engine;
  (match !first with
  | Some Rt_signal.Overflow -> ()
  | Some (Rt_signal.Signal _) -> Alcotest.fail "SIGIO should be delivered first"
  | None -> Alcotest.fail "nothing delivered");
  Alcotest.(check bool) "SIGIO consumed" false (Rt_signal.sigio_pending env.q);
  Alcotest.(check int) "RT signals still queued" 2 (Rt_signal.pending env.q)

let test_stale_events_after_close () =
  (* Events queued before close remain on the queue and can name a
     since-reused fd — the hazard the paper documents. *)
  let env = mk () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:9 ~signo:Rt_signal.sigrtmin;
  ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
  Socket.close s;
  (* close posts POLLNVAL, also queued; both survive the close. *)
  Alcotest.(check bool) "signals survive close" true (Rt_signal.pending env.q >= 1);
  let got = ref [] in
  Rt_signal.sigtimedwait4 env.q ~max:10 ~timeout:(Some Time.zero) ~k:(fun ds -> got := ds);
  Engine.run env.engine;
  match !got with
  | Rt_signal.Signal { fd; _ } :: _ -> Alcotest.(check int) "stale fd" 9 fd
  | _ -> Alcotest.fail "expected stale signal"

let test_flush_discards () =
  let env = mk ~limit:2 () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:Rt_signal.sigrtmin;
  for _ = 1 to 4 do
    ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
    ignore (Socket.read_all s)
  done;
  let dropped = Rt_signal.flush env.q in
  Alcotest.(check int) "flushed both" 2 dropped;
  Alcotest.(check int) "empty" 0 (Rt_signal.pending env.q);
  Alcotest.(check bool) "SIGIO cleared" false (Rt_signal.sigio_pending env.q)

let test_clear_signal_stops_queueing () =
  let env = mk () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:Rt_signal.sigrtmin;
  Rt_signal.clear_signal env.q ~socket:s ~fd:1;
  ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
  Alcotest.(check int) "nothing queued" 0 (Rt_signal.pending env.q)

let test_rebind_replaces () =
  let env = mk () in
  let s = sock env in
  Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:Rt_signal.sigrtmin;
  Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:(Rt_signal.sigrtmin + 1);
  ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
  Alcotest.(check int) "single binding" 1 (Rt_signal.pending env.q);
  let got = ref None in
  Rt_signal.sigwaitinfo env.q ~k:(fun d -> got := Some d);
  Engine.run env.engine;
  match !got with
  | Some (Rt_signal.Signal { signo; _ }) ->
      Alcotest.(check int) "new signo used" (Rt_signal.sigrtmin + 1) signo
  | Some Rt_signal.Overflow | None -> Alcotest.fail "expected signal"

let test_signo_below_rtmin_rejected () =
  let env = mk () in
  let s = sock env in
  let raised =
    try
      Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:29;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rejected" true raised

let test_sigtimedwait4_batches () =
  let env = mk () in
  let sockets = List.init 6 (fun i -> (i, sock env)) in
  List.iter
    (fun (fd, s) ->
      Rt_signal.set_signal env.q ~socket:s ~fd ~signo:Rt_signal.sigrtmin;
      ignore (Socket.deliver s ~bytes_len:1 ~payload:""))
    sockets;
  let batch = ref [] in
  Rt_signal.sigtimedwait4 env.q ~max:4 ~timeout:(Some Time.zero) ~k:(fun ds -> batch := ds);
  Engine.run env.engine;
  Alcotest.(check int) "batch of 4" 4 (List.length !batch);
  Alcotest.(check int) "two remain" 2 (Rt_signal.pending env.q)

let test_sigtimedwait4_timeout () =
  let env = mk () in
  let got_at = ref None in
  Rt_signal.sigtimedwait4 env.q ~max:4 ~timeout:(Some (Time.ms 15)) ~k:(fun ds ->
      got_at := Some (Engine.now env.engine, List.length ds));
  Engine.run env.engine;
  Alcotest.(check (option (pair int int))) "empty at timeout" (Some (Time.ms 15, 0)) !got_at

let prop_queue_never_exceeds_limit =
  QCheck.Test.make ~name:"queue length never exceeds its limit" ~count:150
    QCheck.(pair (int_range 1 16) (list_of_size Gen.(0 -- 100) unit))
    (fun (limit, events) ->
      let env = mk ~limit () in
      let s = sock env in
      Rt_signal.set_signal env.q ~socket:s ~fd:1 ~signo:Rt_signal.sigrtmin;
      List.iter
        (fun () ->
          ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
          ignore (Socket.read_all s))
        events;
      Rt_signal.pending env.q <= limit)

let suite =
  [
    Alcotest.test_case "signal on I/O completion" `Quick test_signal_on_io_completion;
    Alcotest.test_case "sigwaitinfo blocks" `Quick test_sigwaitinfo_blocks;
    Alcotest.test_case "FIFO within a signo" `Quick test_fifo_within_signo;
    Alcotest.test_case "lower signo delivered first" `Quick test_lower_signo_delivered_first;
    Alcotest.test_case "overflow raises SIGIO once" `Quick test_overflow_raises_sigio_once;
    Alcotest.test_case "SIGIO jumps the queue" `Quick test_sigio_jumps_queue;
    Alcotest.test_case "stale events survive close" `Quick test_stale_events_after_close;
    Alcotest.test_case "flush discards" `Quick test_flush_discards;
    Alcotest.test_case "clear_signal stops queueing" `Quick test_clear_signal_stops_queueing;
    Alcotest.test_case "rebinding replaces" `Quick test_rebind_replaces;
    Alcotest.test_case "signo below SIGRTMIN rejected" `Quick test_signo_below_rtmin_rejected;
    Alcotest.test_case "sigtimedwait4 batches" `Quick test_sigtimedwait4_batches;
    Alcotest.test_case "sigtimedwait4 timeout" `Quick test_sigtimedwait4_timeout;
    QCheck_alcotest.to_alcotest prop_queue_never_exceeds_limit;
  ]
