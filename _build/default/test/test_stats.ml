open Sio_sim

let feps = Alcotest.float 1e-9

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.check feps "mean" 0. (Stats.mean s);
  Alcotest.check feps "variance" 0. (Stats.variance s);
  Alcotest.(check bool) "min" true (Stats.min s = infinity);
  Alcotest.(check bool) "max" true (Stats.max s = neg_infinity)

let test_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.check feps "mean" 5.0 (Stats.mean s);
  Alcotest.check (Alcotest.float 1e-6) "variance (sample)" (32. /. 7.) (Stats.variance s);
  Alcotest.check feps "min" 2. (Stats.min s);
  Alcotest.check feps "max" 9. (Stats.max s);
  Alcotest.check feps "sum" 40. (Stats.sum s)

let test_single_sample () =
  let s = Stats.create () in
  Stats.add s 3.5;
  Alcotest.check feps "mean" 3.5 (Stats.mean s);
  Alcotest.check feps "variance" 0. (Stats.variance s);
  Alcotest.check feps "stddev" 0. (Stats.stddev s)

let test_merge_matches_concat () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.; 2.; 3.; 10.; 20. ] and ys = [ 4.; 5.; 6.; 7. ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count m);
  Alcotest.check (Alcotest.float 1e-9) "mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.check (Alcotest.float 1e-9) "variance" (Stats.variance whole) (Stats.variance m);
  Alcotest.check feps "min" (Stats.min whole) (Stats.min m);
  Alcotest.check feps "max" (Stats.max whole) (Stats.max m)

let test_merge_with_empty () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.; 2. ];
  let m1 = Stats.merge a b and m2 = Stats.merge b a in
  Alcotest.(check int) "a+empty count" 2 (Stats.count m1);
  Alcotest.(check int) "empty+a count" 2 (Stats.count m2);
  Alcotest.check feps "mean preserved" 1.5 (Stats.mean m1)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let prop_merge_commutes =
  QCheck.Test.make ~name:"merge is symmetric in count/mean" ~count:200
    QCheck.(pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      let m1 = Stats.merge a b and m2 = Stats.merge b a in
      Stats.count m1 = Stats.count m2
      && abs_float (Stats.mean m1 -. Stats.mean m2) < 1e-6)

let suite =
  [
    Alcotest.test_case "empty stats" `Quick test_empty;
    Alcotest.test_case "known dataset" `Quick test_known_values;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "merge equals concat" `Quick test_merge_matches_concat;
    Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
    QCheck_alcotest.to_alcotest prop_mean_bounds;
    QCheck_alcotest.to_alcotest prop_merge_commutes;
  ]
