(* Whole-experiment integration tests: run the benchmark pipeline at
   reduced scale with the calibrated cost model and assert the
   *qualitative shapes* of the paper's figures — who wins, where the
   knees fall — plus determinism. These are the repository's
   acceptance tests for the reproduction. *)

open Sio_loadgen

let devpoll = Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 }

let run ~kind ~inactive ~rate ~conns =
  let workload =
    {
      Workload.default with
      Workload.request_rate = rate;
      total_connections = conns;
      inactive_connections = inactive;
    }
  in
  Experiment.run (Experiment.default_config ~kind ~workload)

let avg o = o.Experiment.metrics.Metrics.reply_rate_avg
let err o = o.Experiment.metrics.Metrics.error_percent
let med o = Metrics.median_latency_ms o.Experiment.metrics

(* Fig 5/7/9: devpoll tracks the offered rate at every idle load. *)
let test_devpoll_tracks_offered_rate () =
  List.iter
    (fun inactive ->
      let o = run ~kind:devpoll ~inactive ~rate:900 ~conns:2700 in
      Alcotest.(check bool)
        (Printf.sprintf "devpoll i=%d tracks 900" inactive)
        true
        (avg o > 880. && err o < 1.0))
    [ 1; 251; 501 ]

(* Fig 4 vs 8: stock poll is fine at load 1 and collapses at load 501. *)
let test_poll_collapses_with_idle_load () =
  let light = run ~kind:Experiment.Thttpd_poll ~inactive:1 ~rate:900 ~conns:2700 in
  let heavy = run ~kind:Experiment.Thttpd_poll ~inactive:501 ~rate:900 ~conns:2700 in
  Alcotest.(check bool) "load 1 keeps up" true (avg light > 880.);
  Alcotest.(check bool) "load 501 collapses" true (avg heavy < 500.);
  Alcotest.(check bool) "load 501 errors" true (err heavy > 20.)

(* Fig 10: the error-rate ordering. *)
let test_error_ordering () =
  let poll = run ~kind:Experiment.Thttpd_poll ~inactive:501 ~rate:1000 ~conns:3000 in
  let dp = run ~kind:devpoll ~inactive:501 ~rate:1000 ~conns:3000 in
  Alcotest.(check bool) "poll error rate high" true (err poll > 30.);
  Alcotest.(check bool) "devpoll nearly error free" true (err dp < 2.);
  Alcotest.(check bool) "ordering" true (err dp < err poll)

(* Fig 8's starvation signature: minimum reply rate far below average. *)
let test_poll_starves_under_overload () =
  let o = run ~kind:Experiment.Thttpd_poll ~inactive:501 ~rate:1000 ~conns:3000 in
  let m = o.Experiment.metrics in
  Alcotest.(check bool) "min well below avg" true
    (m.Metrics.reply_rate_min < 0.8 *. m.Metrics.reply_rate_avg);
  Alcotest.(check bool) "jumpy max" true
    (m.Metrics.reply_rate_max > 1.2 *. m.Metrics.reply_rate_avg)

(* Fig 13: idle connections hurt phhttpd at every rate; devpoll wins. *)
let test_phhttpd_idle_sensitivity () =
  let low = run ~kind:Experiment.Phhttpd ~inactive:501 ~rate:500 ~conns:2000 in
  let dp = run ~kind:devpoll ~inactive:501 ~rate:500 ~conns:2000 in
  Alcotest.(check bool) "phhttpd degraded even at 500/s" true (avg low < 480.);
  Alcotest.(check bool) "devpoll fine at 500/s" true (avg dp > 495.);
  let hi = run ~kind:Experiment.Phhttpd ~inactive:501 ~rate:1000 ~conns:3000 in
  Alcotest.(check bool) "phhttpd stays under ~550 at 1000/s" true (avg hi < 550.)

(* Fig 11: phhttpd matches devpoll at low rates with load 1. *)
let test_phhttpd_good_at_low_load () =
  let o = run ~kind:Experiment.Phhttpd ~inactive:1 ~rate:700 ~conns:2100 in
  Alcotest.(check bool) "tracks 700" true (avg o > 690. && err o < 1.0)

(* Fig 14: latency ordering at 251 idle connections. *)
let test_latency_crossover () =
  (* Before the knee: phhttpd at or below devpoll, poll well above. *)
  let ph = run ~kind:Experiment.Phhttpd ~inactive:251 ~rate:500 ~conns:2000 in
  let dp = run ~kind:devpoll ~inactive:251 ~rate:500 ~conns:2000 in
  let pl = run ~kind:Experiment.Thttpd_poll ~inactive:251 ~rate:500 ~conns:2000 in
  Alcotest.(check bool) "phhttpd fastest at low rate" true (med ph <= med dp);
  Alcotest.(check bool) "poll slowest" true (med pl > med dp);
  (* Past the knee: phhttpd's median leaps by more than an order of
     magnitude; devpoll stays steady. *)
  let ph_hot = run ~kind:Experiment.Phhttpd ~inactive:251 ~rate:1000 ~conns:3000 in
  let dp_hot = run ~kind:devpoll ~inactive:251 ~rate:1000 ~conns:3000 in
  Alcotest.(check bool) "phhttpd median leaps" true (med ph_hot > 10. *. med ph);
  Alcotest.(check bool) "devpoll stays steady" true (med dp_hot < 4. *. med dp)

(* Extension: the hybrid beats phhttpd under overload. *)
let test_hybrid_beats_phhttpd () =
  let hy = run ~kind:Experiment.Hybrid ~inactive:501 ~rate:1000 ~conns:3000 in
  let ph = run ~kind:Experiment.Phhttpd ~inactive:501 ~rate:1000 ~conns:3000 in
  Alcotest.(check bool) "hybrid wins" true (avg hy > 1.5 *. avg ph)

(* The ablation claims. *)
let test_hints_reduce_driver_polls () =
  let workload =
    {
      Workload.default with
      Workload.request_rate = 700;
      total_connections = 1400;
      inactive_connections = 251;
    }
  in
  let base = Experiment.default_config ~kind:devpoll ~workload in
  let with_hints = Experiment.run base in
  let without = Experiment.run { base with Experiment.hints = false } in
  let dp o = o.Experiment.host_counters.Sio_kernel.Host.driver_polls in
  Alcotest.(check bool) "hints cut driver polls by >5x" true
    (dp without > 5 * dp with_hints);
  Alcotest.(check bool) "hint skips recorded" true
    (with_hints.Experiment.host_counters.Sio_kernel.Host.hint_skips > 0)

(* Same seed, same numbers: the whole pipeline is deterministic. *)
let test_determinism () =
  let o1 = run ~kind:devpoll ~inactive:251 ~rate:800 ~conns:1600 in
  let o2 = run ~kind:devpoll ~inactive:251 ~rate:800 ~conns:1600 in
  Alcotest.(check (float 0.)) "avg identical" (avg o1) (avg o2);
  Alcotest.(check (float 0.)) "err identical" (err o1) (err o2);
  Alcotest.(check int) "replies identical" o1.Experiment.metrics.Metrics.completed
    o2.Experiment.metrics.Metrics.completed;
  Alcotest.(check int) "syscalls identical"
    o1.Experiment.host_counters.Sio_kernel.Host.syscalls
    o2.Experiment.host_counters.Sio_kernel.Host.syscalls

let test_seed_changes_results () =
  let workload =
    {
      Workload.default with
      Workload.request_rate = 800;
      total_connections = 1600;
      inactive_connections = 251;
    }
  in
  let base = Experiment.default_config ~kind:devpoll ~workload in
  let o1 = Experiment.run base in
  let o2 = Experiment.run { base with Experiment.seed = 1234 } in
  (* Different idle-client latencies at least perturb the counters. *)
  Alcotest.(check bool) "different seeds differ somewhere" true
    (o1.Experiment.host_counters.Sio_kernel.Host.syscalls
     <> o2.Experiment.host_counters.Sio_kernel.Host.syscalls
    || o1.Experiment.metrics.Metrics.completed <> o2.Experiment.metrics.Metrics.completed
    ||
    let m1 = Metrics.median_latency_ms o1.Experiment.metrics in
    let m2 = Metrics.median_latency_ms o2.Experiment.metrics in
    abs_float (m1 -. m2) > 1e-9)

let suite =
  [
    Alcotest.test_case "devpoll tracks offered rate (figs 5,7,9)" `Slow
      test_devpoll_tracks_offered_rate;
    Alcotest.test_case "poll collapses with idle load (figs 4,8)" `Slow
      test_poll_collapses_with_idle_load;
    Alcotest.test_case "error ordering (fig 10)" `Slow test_error_ordering;
    Alcotest.test_case "poll starves under overload (fig 8)" `Slow
      test_poll_starves_under_overload;
    Alcotest.test_case "phhttpd idle sensitivity (fig 13)" `Slow
      test_phhttpd_idle_sensitivity;
    Alcotest.test_case "phhttpd good at low load (fig 11)" `Slow
      test_phhttpd_good_at_low_load;
    Alcotest.test_case "latency crossover (fig 14)" `Slow test_latency_crossover;
    Alcotest.test_case "hybrid beats phhttpd (extension)" `Slow test_hybrid_beats_phhttpd;
    Alcotest.test_case "hints reduce driver polls (ablation)" `Slow
      test_hints_reduce_driver_polls;
    Alcotest.test_case "deterministic runs" `Slow test_determinism;
    Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_results;
  ]
