open Sio_sim
open Sio_kernel

type env = {
  engine : Engine.t;
  host : Host.t;
  sockets : (int, Socket.t) Hashtbl.t;
  dev : Devpoll.t;
}

let mk ?costs () =
  let engine = Helpers.mk_engine () in
  let host =
    match costs with
    | Some c -> Helpers.mk_host ~costs:c engine
    | None -> Helpers.mk_host engine
  in
  let sockets = Hashtbl.create 8 in
  let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
  { engine; host; sockets; dev }

let add env fd =
  let s = Socket.create_established ~host:env.host in
  Hashtbl.replace env.sockets fd s;
  s

let as_pairs rs = List.map (fun r -> (r.Poll.fd, r.Poll.revents)) rs
let results_testable = Alcotest.(list (pair int Helpers.mask))

let test_write_builds_interest_set () =
  let env = mk () in
  ignore (add env 1);
  ignore (add env 2);
  Devpoll.write env.dev [ (1, Pollmask.pollin); (2, Pollmask.pollin) ];
  Alcotest.(check int) "two interests" 2 (Devpoll.interest_count env.dev);
  Devpoll.write env.dev [ (1, Pollmask.pollremove) ];
  Alcotest.(check int) "removed" 1 (Devpoll.interest_count env.dev)

let test_poll_returns_ready () =
  let env = mk () in
  let s = add env 4 in
  Devpoll.write env.dev [ (4, Pollmask.pollin) ];
  ignore (Socket.deliver s ~bytes_len:10 ~payload:"");
  let got = ref None in
  Devpoll.dp_poll env.dev ~max_results:16 ~timeout:None ~k:(fun rs -> got := Some rs);
  Engine.run env.engine;
  match !got with
  | Some rs -> Alcotest.check results_testable "ready" [ (4, Pollmask.pollin) ] (as_pairs rs)
  | None -> Alcotest.fail "dp_poll never returned"

let test_blocks_until_hint () =
  let env = mk () in
  let s = add env 1 in
  Devpoll.write env.dev [ (1, Pollmask.pollin) ];
  let got_at = ref None in
  Devpoll.dp_poll env.dev ~max_results:16 ~timeout:None ~k:(fun rs ->
      got_at := Some (Engine.now env.engine, as_pairs rs));
  ignore
    (Engine.at env.engine (Time.ms 25) (fun () ->
         ignore (Socket.deliver s ~bytes_len:5 ~payload:"")));
  Engine.run env.engine;
  match !got_at with
  | Some (t, rs) ->
      Alcotest.(check int) "woke at delivery" (Time.ms 25) t;
      Alcotest.check results_testable "event" [ (1, Pollmask.pollin) ] rs
  | None -> Alcotest.fail "dp_poll never woke"

let test_max_results_caps () =
  let env = mk () in
  for fd = 0 to 9 do
    let s = add env fd in
    ignore (Socket.deliver s ~bytes_len:1 ~payload:"")
  done;
  Devpoll.write env.dev (List.init 10 (fun fd -> (fd, Pollmask.pollin)));
  let got = ref [] in
  Devpoll.dp_poll env.dev ~max_results:3 ~timeout:None ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check int) "capped at 3" 3 (List.length !got)

let test_timeout () =
  let env = mk () in
  ignore (add env 1);
  Devpoll.write env.dev [ (1, Pollmask.pollin) ];
  let got_at = ref None in
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some (Time.ms 10)) ~k:(fun rs ->
      got_at := Some (Engine.now env.engine, rs));
  Engine.run env.engine;
  match !got_at with
  | Some (t, []) -> Alcotest.(check int) "timed out" (Time.ms 10) t
  | Some (_, _ :: _) -> Alcotest.fail "unexpected events"
  | None -> Alcotest.fail "never returned"

let test_missing_fd_reports_nval () =
  let env = mk () in
  ignore (add env 1);
  Devpoll.write env.dev [ (1, Pollmask.pollin) ];
  Hashtbl.remove env.sockets 1;
  let got = ref None in
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun rs ->
      got := Some (as_pairs rs));
  Engine.run env.engine;
  Alcotest.(check bool) "NVAL" true (!got = Some [ (1, Pollmask.pollnval) ])

let test_hints_avoid_driver_callbacks () =
  (* The paper's measurement: with many idle connections, hints cut
     driver poll operations from O(interests) to O(changes). *)
  let env = mk () in
  let n = 100 in
  for fd = 0 to n - 1 do
    ignore (add env fd)
  done;
  Devpoll.write env.dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
  (* First scan: no caches, all drivers consulted. *)
  Devpoll.dp_poll env.dev ~max_results:16 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Engine.run env.engine;
  let first = env.host.Host.counters.Host.driver_polls in
  Alcotest.(check int) "first scan asks every driver" n first;
  (* Second scan: everything cached not-ready, no hints: zero driver calls. *)
  Devpoll.dp_poll env.dev ~max_results:16 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Engine.run env.engine;
  Alcotest.(check int) "second scan fully hinted" first
    env.host.Host.counters.Host.driver_polls;
  Alcotest.(check int) "skips counted" n env.host.Host.counters.Host.hint_skips

let test_hint_triggers_revalidation () =
  let env = mk () in
  let s = add env 7 in
  ignore (add env 8);
  Devpoll.write env.dev [ (7, Pollmask.pollin); (8, Pollmask.pollin) ];
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Engine.run env.engine;
  let base = env.host.Host.counters.Host.driver_polls in
  ignore (Socket.deliver s ~bytes_len:4 ~payload:"");
  let got = ref [] in
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.check results_testable "hinted fd found ready" [ (7, Pollmask.pollin) ]
    (as_pairs !got);
  (* Only fd 7 had a hint: exactly one driver callback. *)
  Alcotest.(check int) "one driver call" (base + 1)
    env.host.Host.counters.Host.driver_polls

let test_ready_cache_always_revalidated () =
  let env = mk () in
  let s = add env 3 in
  Devpoll.write env.dev [ (3, Pollmask.pollin) ];
  ignore (Socket.deliver s ~bytes_len:4 ~payload:"");
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Engine.run env.engine;
  let base = env.host.Host.counters.Host.driver_polls in
  (* Drain the socket without posting any hint-visible edge; a stale
     "ready" cache must not be trusted. *)
  let _ = Socket.read_all s in
  let got = ref [ { Poll.fd = -1; revents = Pollmask.empty } ] in
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check int) "no longer ready" 0 (List.length !got);
  Alcotest.(check int) "revalidation consulted driver" (base + 1)
    env.host.Host.counters.Host.driver_polls

let test_unhinted_driver_always_polled () =
  let env = mk () in
  let s = add env 1 in
  Socket.set_hints_supported s false;
  Devpoll.write env.dev [ (1, Pollmask.pollin) ];
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Engine.run env.engine;
  Alcotest.(check int) "driver consulted every scan" 2
    env.host.Host.counters.Host.driver_polls;
  Alcotest.(check int) "no hint skips" 0 env.host.Host.counters.Host.hint_skips

let test_fd_reuse_rebinds_backmap () =
  let env = mk () in
  let s1 = add env 5 in
  Devpoll.write env.dev [ (5, Pollmask.pollin) ];
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Engine.run env.engine;
  (* fd 5 is closed and reused by a different socket. *)
  Socket.close s1;
  let s2 = add env 5 in
  ignore (Socket.deliver s2 ~bytes_len:9 ~payload:"");
  let got = ref [] in
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.check results_testable "interest applies to new socket"
    [ (5, Pollmask.pollin) ] (as_pairs !got);
  (* And hints flow from the new socket now. *)
  Alcotest.(check int) "old socket observer dropped" 0 (Socket.observer_count s1);
  Alcotest.(check bool) "new socket observed" true (Socket.observer_count s2 > 0)

let test_mmap_removes_copyout_cost () =
  let scan_cost ~mmap =
    let env = mk ~costs:Cost_model.default () in
    let n = 50 in
    for fd = 0 to n - 1 do
      let s = add env fd in
      ignore (Socket.deliver s ~bytes_len:1 ~payload:"")
    done;
    Devpoll.write env.dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
    if mmap then Devpoll.alloc_result_map env.dev ~slots:n;
    let before = Cpu.total_busy env.host.Host.cpu in
    Devpoll.dp_poll env.dev ~max_results:n ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run env.engine;
    Time.sub (Cpu.total_busy env.host.Host.cpu) before
  in
  let plain = scan_cost ~mmap:false and mapped = scan_cost ~mmap:true in
  Alcotest.(check bool) "mmap poll cheaper" true (mapped < plain)

let test_result_map_slots_cap_results () =
  let env = mk () in
  for fd = 0 to 9 do
    let s = add env fd in
    ignore (Socket.deliver s ~bytes_len:1 ~payload:"")
  done;
  Devpoll.write env.dev (List.init 10 (fun fd -> (fd, Pollmask.pollin)));
  Devpoll.alloc_result_map env.dev ~slots:4;
  let got = ref [] in
  Devpoll.dp_poll env.dev ~max_results:100 ~timeout:None ~k:(fun rs -> got := rs);
  Engine.run env.engine;
  Alcotest.(check int) "capped by mapping size" 4 (List.length !got)

let test_alloc_map_twice_rejected () =
  let env = mk () in
  Devpoll.alloc_result_map env.dev ~slots:8;
  let raised =
    try
      Devpoll.alloc_result_map env.dev ~slots:8;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "second mapping rejected" true raised;
  Devpoll.release_result_map env.dev;
  Alcotest.(check bool) "released" false (Devpoll.has_result_map env.dev)

let test_close_releases_subscriptions () =
  let env = mk () in
  let s = add env 1 in
  Devpoll.write env.dev [ (1, Pollmask.pollin) ];
  Alcotest.(check bool) "subscribed" true (Socket.observer_count s > 0);
  Devpoll.close env.dev;
  Alcotest.(check int) "unsubscribed" 0 (Socket.observer_count s);
  Alcotest.(check bool) "closed" true (Devpoll.is_closed env.dev);
  let raised = try Devpoll.write env.dev []; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "write after close rejected" true raised

let test_independent_interest_sets () =
  (* A process may open /dev/poll several times. *)
  let env = mk () in
  let dev2 = Devpoll.create ~host:env.host ~lookup:(Hashtbl.find_opt env.sockets) in
  let s = add env 1 in
  ignore (add env 2);
  Devpoll.write env.dev [ (1, Pollmask.pollin) ];
  Devpoll.write dev2 [ (2, Pollmask.pollin) ];
  ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
  let got1 = ref [] and got2 = ref [] in
  Devpoll.dp_poll env.dev ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun rs -> got1 := rs);
  Devpoll.dp_poll dev2 ~max_results:4 ~timeout:(Some Time.zero) ~k:(fun rs -> got2 := rs);
  Engine.run env.engine;
  Alcotest.(check int) "set 1 sees its event" 1 (List.length !got1);
  Alcotest.(check int) "set 2 sees nothing" 0 (List.length !got2)

let prop_devpoll_agrees_with_poll =
  (* On any random script of socket states, a devpoll scan and a poll
     scan must report identical readiness. *)
  QCheck.Test.make ~name:"devpoll and poll agree on readiness" ~count:150
    QCheck.(list_of_size Gen.(1 -- 20) (int_bound 3))
    (fun script ->
      let env = mk () in
      let n = List.length script in
      List.iteri
        (fun fd action ->
          let s = add env fd in
          match action with
          | 0 -> () (* idle *)
          | 1 -> ignore (Socket.deliver s ~bytes_len:1 ~payload:"")
          | 2 -> Socket.peer_closed s
          | _ -> Socket.reset s)
        script;
      let interests = List.init n (fun fd -> (fd, Pollmask.pollin)) in
      Devpoll.write env.dev interests;
      let dp = ref [] and pl = ref [] in
      Devpoll.dp_poll env.dev ~max_results:n ~timeout:(Some Time.zero) ~k:(fun rs -> dp := rs);
      Poll.wait ~host:env.host ~lookup:(Hashtbl.find_opt env.sockets) ~interests
        ~timeout:(Some Time.zero) ~k:(fun rs -> pl := rs);
      Engine.run env.engine;
      let norm rs = List.sort compare (as_pairs rs) in
      norm !dp = norm !pl)

let suite =
  [
    Alcotest.test_case "write builds interest set" `Quick test_write_builds_interest_set;
    Alcotest.test_case "dp_poll returns ready" `Quick test_poll_returns_ready;
    Alcotest.test_case "blocks until hint" `Quick test_blocks_until_hint;
    Alcotest.test_case "max_results caps" `Quick test_max_results_caps;
    Alcotest.test_case "timeout" `Quick test_timeout;
    Alcotest.test_case "missing fd reports NVAL" `Quick test_missing_fd_reports_nval;
    Alcotest.test_case "hints avoid driver callbacks" `Quick test_hints_avoid_driver_callbacks;
    Alcotest.test_case "hint triggers revalidation" `Quick test_hint_triggers_revalidation;
    Alcotest.test_case "ready cache always revalidated" `Quick
      test_ready_cache_always_revalidated;
    Alcotest.test_case "unhinted driver always polled" `Quick test_unhinted_driver_always_polled;
    Alcotest.test_case "fd reuse rebinds backmap" `Quick test_fd_reuse_rebinds_backmap;
    Alcotest.test_case "mmap removes copy-out cost" `Quick test_mmap_removes_copyout_cost;
    Alcotest.test_case "result map slots cap results" `Quick test_result_map_slots_cap_results;
    Alcotest.test_case "double DP_ALLOC rejected" `Quick test_alloc_map_twice_rejected;
    Alcotest.test_case "close releases subscriptions" `Quick test_close_releases_subscriptions;
    Alcotest.test_case "independent interest sets" `Quick test_independent_interest_sets;
    QCheck_alcotest.to_alcotest prop_devpoll_agrees_with_poll;
  ]
