open Sio_kernel

let m = Helpers.mask

let test_constants_distinct () =
  let all =
    [
      Pollmask.pollin;
      Pollmask.pollpri;
      Pollmask.pollout;
      Pollmask.pollerr;
      Pollmask.pollhup;
      Pollmask.pollnval;
      Pollmask.pollremove;
    ]
  in
  let ints = List.map Pollmask.to_int all in
  let sorted = List.sort_uniq compare ints in
  Alcotest.(check int) "all distinct" (List.length all) (List.length sorted);
  List.iter
    (fun i -> Alcotest.(check bool) "single bit" true (i land (i - 1) = 0))
    ints

let test_union_inter () =
  let io = Pollmask.union Pollmask.pollin Pollmask.pollout in
  Alcotest.check m "inter in" Pollmask.pollin (Pollmask.inter io Pollmask.pollin);
  Alcotest.(check bool) "mem in" true (Pollmask.mem Pollmask.pollin io);
  Alcotest.(check bool) "mem err" false (Pollmask.mem Pollmask.pollerr io);
  Alcotest.(check bool) "intersects" true (Pollmask.intersects io Pollmask.pollout);
  Alcotest.(check bool) "no intersect" false (Pollmask.intersects io Pollmask.pollerr)

let test_diff () =
  let io = Pollmask.union Pollmask.pollin Pollmask.pollout in
  Alcotest.check m "diff removes" Pollmask.pollout (Pollmask.diff io Pollmask.pollin);
  Alcotest.check m "diff of absent is id" io (Pollmask.diff io Pollmask.pollerr)

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (Pollmask.is_empty Pollmask.empty);
  Alcotest.(check bool) "in not empty" false (Pollmask.is_empty Pollmask.pollin);
  Alcotest.(check bool) "mem on empty mask" false (Pollmask.mem Pollmask.pollin Pollmask.empty)

let test_of_int_roundtrip () =
  let io = Pollmask.union Pollmask.pollin Pollmask.pollhup in
  Alcotest.check m "roundtrip" io (Pollmask.of_int (Pollmask.to_int io))

let test_of_int_rejects_junk () =
  Alcotest.check_raises "junk bits" (Invalid_argument "Pollmask.of_int: unknown bits")
    (fun () -> ignore (Pollmask.of_int 0x4000))

let test_pp () =
  Alcotest.(check string) "empty prints 0" "0" (Pollmask.to_string Pollmask.empty);
  Alcotest.(check string) "in|out" "IN|OUT"
    (Pollmask.to_string (Pollmask.union Pollmask.pollin Pollmask.pollout));
  Alcotest.(check string) "remove" "REMOVE" (Pollmask.to_string Pollmask.pollremove)

let test_readable () =
  Alcotest.(check bool) "pollin is readable" true
    (Pollmask.intersects Pollmask.pollin Pollmask.readable);
  Alcotest.(check bool) "pollpri is readable" true
    (Pollmask.intersects Pollmask.pollpri Pollmask.readable);
  Alcotest.(check bool) "pollout is not" false
    (Pollmask.intersects Pollmask.pollout Pollmask.readable)

let suite =
  [
    Alcotest.test_case "constants are distinct single bits" `Quick test_constants_distinct;
    Alcotest.test_case "union/inter/mem" `Quick test_union_inter;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
    Alcotest.test_case "of_int rejects junk" `Quick test_of_int_rejects_junk;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "readable set" `Quick test_readable;
  ]
