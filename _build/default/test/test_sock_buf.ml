open Sio_kernel

let test_push_drain () =
  let b = Sock_buf.create ~capacity:100 in
  Alcotest.(check int) "accepts all" 60 (Sock_buf.push b 60);
  Alcotest.(check int) "level" 60 (Sock_buf.level b);
  Alcotest.(check int) "space" 40 (Sock_buf.space b);
  Alcotest.(check int) "partial accept" 40 (Sock_buf.push b 60);
  Alcotest.(check bool) "full" true (Sock_buf.is_full b);
  Alcotest.(check int) "drain partial" 30 (Sock_buf.drain b 30);
  Alcotest.(check int) "level after" 70 (Sock_buf.level b);
  Alcotest.(check int) "drain_all" 70 (Sock_buf.drain_all b);
  Alcotest.(check bool) "empty" true (Sock_buf.is_empty b)

let test_drain_more_than_level () =
  let b = Sock_buf.create ~capacity:10 in
  ignore (Sock_buf.push b 4);
  Alcotest.(check int) "drain clamps" 4 (Sock_buf.drain b 100)

let test_validation () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Sock_buf.create: capacity must be positive") (fun () ->
      ignore (Sock_buf.create ~capacity:0));
  let b = Sock_buf.create ~capacity:1 in
  Alcotest.check_raises "negative push" (Invalid_argument "Sock_buf.push: negative size")
    (fun () -> ignore (Sock_buf.push b (-1)));
  Alcotest.check_raises "negative drain" (Invalid_argument "Sock_buf.drain: negative size")
    (fun () -> ignore (Sock_buf.drain b (-1)))

let prop_level_bounded =
  QCheck.Test.make ~name:"buffer level stays within [0, capacity]" ~count:300
    QCheck.(pair (int_range 1 1000) (list (pair bool (int_bound 500))))
    (fun (cap, ops) ->
      let b = Sock_buf.create ~capacity:cap in
      List.for_all
        (fun (push, n) ->
          if push then ignore (Sock_buf.push b n) else ignore (Sock_buf.drain b n);
          Sock_buf.level b >= 0 && Sock_buf.level b <= cap)
        ops)

let prop_conservation =
  QCheck.Test.make ~name:"bytes in = bytes out + level" ~count:300
    QCheck.(list (pair bool (int_bound 200)))
    (fun ops ->
      let b = Sock_buf.create ~capacity:512 in
      let pushed = ref 0 and drained = ref 0 in
      List.iter
        (fun (push, n) ->
          if push then pushed := !pushed + Sock_buf.push b n
          else drained := !drained + Sock_buf.drain b n)
        ops;
      !pushed = !drained + Sock_buf.level b)

let suite =
  [
    Alcotest.test_case "push and drain" `Quick test_push_drain;
    Alcotest.test_case "drain clamps to level" `Quick test_drain_more_than_level;
    Alcotest.test_case "argument validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_level_bounded;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
