open Sio_sim
open Sio_kernel

type env = { engine : Engine.t; host : Host.t; sockets : (int, Socket.t) Hashtbl.t }

let mk () =
  let engine = Helpers.mk_engine () in
  let host = Helpers.mk_host engine in
  { engine; host; sockets = Hashtbl.create 8 }

let add env fd =
  let s = Socket.create_established ~host:env.host in
  Hashtbl.replace env.sockets fd s;
  s

let fd_set_of fds =
  let s = Fd_set.create () in
  List.iter (Fd_set.set s) fds;
  s

let run_select env ~read ~write ~timeout ~k =
  Select.select ~host:env.host ~lookup:(Hashtbl.find_opt env.sockets)
    ~read:(fd_set_of read) ~write:(fd_set_of write) ~except:(fd_set_of read)
    ~timeout ~k

let test_readable_reported () =
  let env = mk () in
  let s1 = add env 1 in
  ignore (add env 2);
  ignore (Socket.deliver s1 ~bytes_len:5 ~payload:"");
  let got = ref None in
  run_select env ~read:[ 1; 2 ] ~write:[] ~timeout:(Some Time.zero) ~k:(fun r ->
      got := Some r);
  Engine.run env.engine;
  match !got with
  | Some r ->
      Alcotest.(check bool) "fd 1 readable" true (Fd_set.mem r.Select.readable 1);
      Alcotest.(check bool) "fd 2 not" false (Fd_set.mem r.Select.readable 2)
  | None -> Alcotest.fail "select never returned"

let test_writable_reported () =
  let env = mk () in
  ignore (add env 3);
  let got = ref None in
  run_select env ~read:[] ~write:[ 3 ] ~timeout:(Some Time.zero) ~k:(fun r -> got := Some r);
  Engine.run env.engine;
  match !got with
  | Some r -> Alcotest.(check bool) "writable" true (Fd_set.mem r.Select.writable 3)
  | None -> Alcotest.fail "no return"

let test_blocks_until_ready () =
  let env = mk () in
  let s = add env 1 in
  let at = ref None in
  run_select env ~read:[ 1 ] ~write:[] ~timeout:None ~k:(fun r ->
      at := Some (Engine.now env.engine, Fd_set.mem r.Select.readable 1));
  ignore
    (Engine.at env.engine (Time.ms 7) (fun () ->
         ignore (Socket.deliver s ~bytes_len:1 ~payload:"")));
  Engine.run env.engine;
  Alcotest.(check (option (pair int bool))) "woke with data" (Some (Time.ms 7, true)) !at

let test_timeout_empty () =
  let env = mk () in
  ignore (add env 1);
  let at = ref None in
  run_select env ~read:[ 1 ] ~write:[] ~timeout:(Some (Time.ms 20)) ~k:(fun r ->
      at := Some (Engine.now env.engine, Fd_set.cardinal r.Select.readable));
  Engine.run env.engine;
  Alcotest.(check (option (pair int int))) "timed out empty" (Some (Time.ms 20, 0)) !at

let test_bad_fd_in_except () =
  let env = mk () in
  let got = ref None in
  run_select env ~read:[ 9 ] ~write:[] ~timeout:(Some Time.zero) ~k:(fun r -> got := Some r);
  Engine.run env.engine;
  match !got with
  | Some r -> Alcotest.(check bool) "bad fd excepted" true (Fd_set.mem r.Select.except 9)
  | None -> Alcotest.fail "no return"

let test_eof_is_readable () =
  let env = mk () in
  let s = add env 4 in
  Socket.peer_closed s;
  let got = ref None in
  run_select env ~read:[ 4 ] ~write:[] ~timeout:(Some Time.zero) ~k:(fun r -> got := Some r);
  Engine.run env.engine;
  match !got with
  | Some r -> Alcotest.(check bool) "EOF selects readable" true (Fd_set.mem r.Select.readable 4)
  | None -> Alcotest.fail "no return"

let test_scan_cost_scales_with_nfds () =
  (* select's cost goes with the highest descriptor, not the member
     count: one high fd is as expensive as a thousand low ones. *)
  let cost max_fd =
    let engine = Helpers.mk_engine () in
    let host = Helpers.mk_costed_host engine in
    let sockets = Hashtbl.create 4 in
    Hashtbl.replace sockets max_fd (Socket.create_established ~host);
    let read = Fd_set.create () in
    Fd_set.set read max_fd;
    let none = Fd_set.create () in
    Select.select ~host ~lookup:(Hashtbl.find_opt sockets) ~read ~write:none
      ~except:none ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run engine;
    Cpu.total_busy host.Host.cpu
  in
  Alcotest.(check bool) "fd 1000 costs ~40x fd 10" true (cost 1000 > 20 * cost 10)

let prop_select_agrees_with_poll_on_readability =
  QCheck.Test.make ~name:"select and poll agree on readability" ~count:150
    QCheck.(list_of_size Gen.(1 -- 15) (int_bound 2))
    (fun script ->
      let env = mk () in
      List.iteri
        (fun fd action ->
          let s = add env fd in
          match action with
          | 0 -> ()
          | 1 -> ignore (Socket.deliver s ~bytes_len:1 ~payload:"")
          | _ -> Socket.peer_closed s)
        script;
      let n = List.length script in
      let fds = List.init n Fun.id in
      let sel = ref None and pl = ref None in
      run_select env ~read:fds ~write:[] ~timeout:(Some Time.zero) ~k:(fun r ->
          sel := Some r);
      Poll.wait ~host:env.host ~lookup:(Hashtbl.find_opt env.sockets)
        ~interests:(List.map (fun fd -> (fd, Pollmask.pollin)) fds)
        ~timeout:(Some Time.zero)
        ~k:(fun rs -> pl := Some rs);
      Engine.run env.engine;
      match (!sel, !pl) with
      | Some sel, Some pl ->
          List.for_all
            (fun fd ->
              let select_says = Fd_set.mem sel.Select.readable fd in
              let poll_says =
                List.exists
                  (fun r ->
                    r.Poll.fd = fd && Pollmask.intersects r.Poll.revents Pollmask.pollin)
                  pl
              in
              select_says = poll_says)
            fds
      | _ -> false)

let suite =
  [
    Alcotest.test_case "readable reported" `Quick test_readable_reported;
    Alcotest.test_case "writable reported" `Quick test_writable_reported;
    Alcotest.test_case "blocks until ready" `Quick test_blocks_until_ready;
    Alcotest.test_case "timeout" `Quick test_timeout_empty;
    Alcotest.test_case "bad fd in except set" `Quick test_bad_fd_in_except;
    Alcotest.test_case "EOF is readable" `Quick test_eof_is_readable;
    Alcotest.test_case "cost scales with nfds" `Quick test_scan_cost_scales_with_nfds;
    QCheck_alcotest.to_alcotest prop_select_agrees_with_poll_on_readability;
  ]
