open Sio_sim

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_split_independence () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  (* After splitting, drawing from the child must not equal drawing the
     parent's next values. *)
  let xs = List.init 10 (fun _ -> Rng.bits64 c) in
  let ys = List.init 10 (fun _ -> Rng.bits64 a) in
  Alcotest.(check bool) "child differs from parent" true (xs <> ys)

let test_int_bound_invalid () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_int_in_invalid () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "hi<lo" (Invalid_argument "Rng.int_in: hi < lo") (fun () ->
      ignore (Rng.int_in r 5 4))

let test_mean_of_uniform () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_exponential_mean () =
  let r = Rng.create ~seed:13 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.15)

let test_shuffle_permutation () =
  let r = Rng.create ~seed:17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_int_in_inclusive =
  QCheck.Test.make ~name:"Rng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, width) ->
      let r = Rng.create ~seed in
      let v = Rng.int_in r lo (lo + width) in
      v >= lo && v <= lo + width)

let prop_pareto_at_least_scale =
  QCheck.Test.make ~name:"pareto >= scale" ~count:300
    QCheck.(pair small_int (float_range 0.5 5.0))
    (fun (seed, scale) ->
      let r = Rng.create ~seed in
      Rng.pareto r ~shape:1.5 ~scale >= scale -. 1e-9)

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_seed_sensitivity;
    Alcotest.test_case "split gives fresh stream" `Quick test_split_independence;
    Alcotest.test_case "int rejects bound 0" `Quick test_int_bound_invalid;
    Alcotest.test_case "int_in rejects hi<lo" `Quick test_int_in_invalid;
    Alcotest.test_case "uniform mean" `Slow test_mean_of_uniform;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_int_in_range;
    QCheck_alcotest.to_alcotest prop_int_in_inclusive;
    QCheck_alcotest.to_alcotest prop_pareto_at_least_scale;
  ]
