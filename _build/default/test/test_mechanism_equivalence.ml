(* The strongest invariant in the repository: under ANY interleaving of
   socket mutations and scans, the four notification mechanisms —
   select, poll, /dev/poll (with its hint cache) and epoll (with its
   ready list) — report exactly the same readiness at every
   observation point. This is what makes the servers' backends
   interchangeable, and it exercises the devpoll cache-revalidation
   rule and the epoll ready-list bookkeeping under adversarial
   schedules that the unit tests cannot reach. *)

open Sio_sim
open Sio_kernel

type op =
  | Deliver of int
  | Drain of int  (** read everything buffered *)
  | Peer_close of int
  | Reset of int
  | Observe  (** compare all four mechanisms *)

let op_gen nfds =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun fd -> Deliver fd) (int_bound (nfds - 1)));
        (3, map (fun fd -> Drain fd) (int_bound (nfds - 1)));
        (1, map (fun fd -> Peer_close fd) (int_bound (nfds - 1)));
        (1, map (fun fd -> Reset fd) (int_bound (nfds - 1)));
        (3, return Observe);
      ])

let pp_op = function
  | Deliver fd -> Printf.sprintf "deliver %d" fd
  | Drain fd -> Printf.sprintf "drain %d" fd
  | Peer_close fd -> Printf.sprintf "peer_close %d" fd
  | Reset fd -> Printf.sprintf "reset %d" fd
  | Observe -> "observe"

let arbitrary_script nfds =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (1 -- 40) (op_gen nfds))

(* Readable-according-to-poll for one fd, from a poll result list. *)
let readable_in results fd =
  List.exists
    (fun r ->
      r.Poll.fd = fd
      && Pollmask.intersects r.Poll.revents
           (Pollmask.union Pollmask.readable
              (Pollmask.union Pollmask.pollhup Pollmask.pollerr)))
    results

let run_script nfds ops =
  let engine = Helpers.mk_engine () in
  let host = Helpers.mk_host engine in
  let sockets = Hashtbl.create nfds in
  for fd = 0 to nfds - 1 do
    Hashtbl.replace sockets fd (Socket.create_established ~host)
  done;
  let lookup = Hashtbl.find_opt sockets in
  let interests = List.init nfds (fun fd -> (fd, Pollmask.pollin)) in
  let dev = Devpoll.create ~host ~lookup in
  Devpoll.write dev interests;
  let ep = Epoll.create ~host ~lookup in
  List.iter (fun (fd, events) -> ignore (Epoll.ctl_add ep ~fd ~events ())) interests;
  let read_set =
    let s = Fd_set.create () in
    List.iter (fun (fd, _) -> Fd_set.set s fd) interests;
    s
  in
  let none = Fd_set.create () in
  let ok = ref true in
  let observe () =
    let poll_r = ref [] and dev_r = ref [] and ep_r = ref [] and sel_r = ref None in
    Poll.wait ~host ~lookup ~interests ~timeout:(Some Time.zero) ~k:(fun rs ->
        poll_r := rs);
    Devpoll.dp_poll dev ~max_results:nfds ~timeout:(Some Time.zero) ~k:(fun rs ->
        dev_r := rs);
    Epoll.wait ep ~max_events:nfds ~timeout:(Some Time.zero) ~k:(fun rs -> ep_r := rs);
    Select.select ~host ~lookup ~read:read_set ~write:none ~except:none
      ~timeout:(Some Time.zero) ~k:(fun r -> sel_r := Some r);
    Engine.run engine;
    let sel = match !sel_r with Some r -> r | None -> assert false in
    for fd = 0 to nfds - 1 do
      let p = readable_in !poll_r fd in
      let d = readable_in !dev_r fd in
      let e = readable_in !ep_r fd in
      let s =
        Fd_set.mem sel.Select.readable fd || Fd_set.mem sel.Select.except fd
      in
      if not (p = d && d = e && e = s) then ok := false
    done
  in
  List.iter
    (fun op ->
      (match op with
      | Deliver fd -> (
          match lookup fd with
          | Some s -> ignore (Socket.deliver s ~bytes_len:8 ~payload:"")
          | None -> ())
      | Drain fd -> (
          match lookup fd with Some s -> ignore (Socket.read_all s) | None -> ())
      | Peer_close fd -> (
          match lookup fd with Some s -> Socket.peer_closed s | None -> ())
      | Reset fd -> (
          match lookup fd with Some s -> Socket.reset s | None -> ())
      | Observe -> observe ());
      Engine.run engine)
    ops;
  observe ();
  !ok

let prop_four_mechanisms_agree =
  QCheck.Test.make ~name:"select/poll/devpoll/epoll agree under any schedule"
    ~count:200 (arbitrary_script 6) (run_script 6)

let prop_four_mechanisms_agree_wide =
  QCheck.Test.make ~name:"agreement with a wider descriptor set" ~count:60
    (arbitrary_script 24) (run_script 24)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_four_mechanisms_agree;
    QCheck_alcotest.to_alcotest prop_four_mechanisms_agree_wide;
  ]
