(* Load generator tests: httperf's accounting (rates, errors, resource
   limits) and the inactive-connection pool. Server side uses a plain
   thttpd+devpoll on a zero-cost kernel. *)

open Sio_sim
open Sio_kernel
open Sio_loadgen

type world = {
  engine : Engine.t;
  host : Host.t;
  net : Sio_net.Network.t;
  proc : Process.t;
  server : Sio_httpd.Thttpd.t;
}

let mk_world ?(costs = Cost_model.zero) ?thttpd_config () =
  let engine = Engine.create ~seed:9 () in
  let host = Host.create ~engine ~costs () in
  let net = Sio_net.Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:2048 ~name:"server" () in
  let backend =
    match Sio_httpd.Backend.devpoll proc with
    | Ok b -> b
    | Error `Emfile -> Alcotest.fail "devpoll open failed"
  in
  let server =
    match Sio_httpd.Thttpd.start ~proc ~backend ?config:thttpd_config () with
    | Ok t -> t
    | Error `Emfile -> Alcotest.fail "server start failed"
  in
  { engine; host; net; proc; server }

let small_workload =
  {
    Workload.default with
    Workload.request_rate = 200;
    total_connections = 400;
    inactive_connections = 0;
  }

let listener w = Sio_httpd.Thttpd.listener w.server

let test_httperf_completes_all () =
  let w = mk_world () in
  let done_flag = ref false in
  let client =
    Httperf.start ~engine:w.engine ~net:w.net ~listener:(listener w)
      ~workload:small_workload
      ~on_done:(fun () -> done_flag := true)
      ()
  in
  Engine.run ~until:(Time.s 10) w.engine;
  Alcotest.(check bool) "done fired" true !done_flag;
  Alcotest.(check int) "attempted" 400 (Httperf.attempted client);
  Alcotest.(check int) "completed" 400 (Httperf.completed client);
  Alcotest.(check int) "no errors" 0 (Metrics.total_errors (Httperf.errors client));
  Alcotest.(check bool) "is_done" true (Httperf.is_done client);
  Alcotest.(check int) "fds returned" 0 (Httperf.fds_in_use client)

let test_httperf_rate_measured () =
  let w = mk_world () in
  let client =
    Httperf.start ~engine:w.engine ~net:w.net ~listener:(listener w)
      ~workload:small_workload ()
  in
  let t_end = Time.add (Engine.now w.engine) (Workload.generation_duration small_workload) in
  Engine.run ~until:(Time.s 10) w.engine;
  let m = Httperf.metrics client ~t_end in
  Alcotest.(check bool) "avg near target" true
    (abs_float (m.Metrics.reply_rate_avg -. 200.) < 10.);
  Alcotest.(check bool) "latency recorded" true (Histogram.count m.Metrics.latency = 400);
  Alcotest.(check bool) "median sane" true
    (Metrics.median_latency_ms m > 0.0 && Metrics.median_latency_ms m < 100.0)

let test_httperf_fd_limit () =
  (* With a 5-fd budget and a server that never answers, connections
     past the budget must fail client-side with fd_limited. *)
  let w =
    mk_world
      ~thttpd_config:
        {
          Sio_httpd.Thttpd.default_config with
          Sio_httpd.Thttpd.conn =
            {
              Sio_httpd.Conn.default_config with
              Sio_httpd.Conn.doc_bytes = Sio_httpd.Http.default_document_bytes;
            };
          idle_timeout = Time.s 300;
          sweep_period = Time.s 300;
        }
      ()
  in
  (* Stop the server so nothing is ever accepted or answered. *)
  Sio_httpd.Thttpd.stop w.server;
  let workload =
    {
      small_workload with
      Workload.total_connections = 20;
      request_rate = 1000;
      client_fd_limit = 5;
      client_timeout = Time.s 2;
    }
  in
  let client =
    Httperf.start ~engine:w.engine ~net:w.net ~listener:(listener w) ~workload ()
  in
  Engine.run ~until:(Time.s 8) w.engine;
  let errors = Httperf.errors client in
  Alcotest.(check int) "fd-limited failures" 15 errors.Metrics.fd_limited;
  Alcotest.(check int) "the 5 in-budget conns timed out" 5 errors.Metrics.timeouts

let test_httperf_port_time_wait () =
  (* Ports stay quarantined for TIME_WAIT after completion. *)
  let w = mk_world () in
  let workload =
    {
      small_workload with
      Workload.total_connections = 10;
      request_rate = 100;
      time_wait = Time.s 60;
    }
  in
  let client =
    Httperf.start ~engine:w.engine ~net:w.net ~listener:(listener w) ~workload ()
  in
  Engine.run ~until:(Time.s 30) w.engine;
  Alcotest.(check int) "all done" 10 (Httperf.completed client);
  Alcotest.(check int) "fds free" 0 (Httperf.fds_in_use client);
  Alcotest.(check int) "ports still in TIME_WAIT" 10 (Httperf.ports_in_use client);
  Engine.run ~until:(Time.s 70) w.engine;
  Alcotest.(check int) "ports released after TIME_WAIT" 0 (Httperf.ports_in_use client)

let test_httperf_port_exhaustion () =
  let w = mk_world () in
  let workload =
    {
      small_workload with
      Workload.total_connections = 10;
      request_rate = 100;
      ephemeral_ports = 4;
    }
  in
  let client =
    Httperf.start ~engine:w.engine ~net:w.net ~listener:(listener w) ~workload ()
  in
  Engine.run ~until:(Time.s 10) w.engine;
  let errors = Httperf.errors client in
  Alcotest.(check bool) "port-limited errors occur" true (errors.Metrics.port_limited > 0);
  Alcotest.(check int) "terminal accounting consistent" 10
    (Httperf.completed client + Metrics.total_errors errors)

let test_inactive_pool_establishes () =
  let w = mk_world () in
  let workload = { small_workload with Workload.inactive_connections = 20 } in
  let rng = Rng.split (Engine.rng w.engine) in
  let pool =
    Inactive.start ~engine:w.engine ~net:w.net ~listener:(listener w) ~workload ~rng ()
  in
  Engine.run ~until:(Time.s 3) w.engine;
  Alcotest.(check int) "all established" 20 (Inactive.established pool);
  Alcotest.(check int) "server holds them" 20
    (Sio_httpd.Thttpd.connection_count w.server);
  Alcotest.(check int) "no replies for partial requests" 0
    (Sio_httpd.Thttpd.stats w.server).Sio_httpd.Server_stats.replies;
  Inactive.stop pool

let test_inactive_reopen_after_timeout () =
  let config =
    {
      Sio_httpd.Thttpd.default_config with
      Sio_httpd.Thttpd.idle_timeout = Time.s 2;
      sweep_period = Time.s 1;
    }
  in
  let w = mk_world ~thttpd_config:config () in
  let workload =
    {
      small_workload with
      Workload.inactive_connections = 5;
      inactive_reopen_delay = Time.ms 100;
    }
  in
  let rng = Rng.split (Engine.rng w.engine) in
  let pool =
    Inactive.start ~engine:w.engine ~net:w.net ~listener:(listener w) ~workload ~rng ()
  in
  Engine.run ~until:(Time.s 12) w.engine;
  (* The sweep keeps closing them; the pool keeps coming back. *)
  Alcotest.(check bool) "reopened at least once per client" true
    (Inactive.reopens pool >= 5);
  Alcotest.(check bool) "population maintained" true (Inactive.established pool >= 4);
  Inactive.stop pool

let test_metrics_short_run_fallback () =
  let w = mk_world () in
  let workload =
    { small_workload with Workload.total_connections = 50; request_rate = 500 }
  in
  let client =
    Httperf.start ~engine:w.engine ~net:w.net ~listener:(listener w) ~workload ()
  in
  (* 50 conns at 500/s: only 100 ms of generation, under the 1 s
     sampling interval. *)
  let t_end = Time.add (Engine.now w.engine) (Workload.generation_duration workload) in
  Engine.run ~until:(Time.s 5) w.engine;
  let m = Httperf.metrics client ~t_end in
  Alcotest.(check bool) "fallback rate close to target" true
    (abs_float (m.Metrics.reply_rate_avg -. 500.) < 50.)

let test_sweep_min_duration () =
  let base =
    Experiment.default_config
      ~kind:(Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 })
      ~workload:{ small_workload with Workload.total_connections = 100 }
  in
  let points = Sweep.run ~min_duration_s:2 ~base ~rates:[ 400 ] () in
  match points with
  | [ p ] ->
      (* 100 conns at 400/s would be 0.25 s; min_duration raises it. *)
      Alcotest.(check bool) "at least 2s worth of conns" true
        (p.Sweep.outcome.Experiment.metrics.Metrics.attempted >= 800)
  | _ -> Alcotest.fail "expected one point"

let test_active_latency_profile () =
  let run profile =
    let w = mk_world () in
    let workload =
      { small_workload with Workload.total_connections = 100; active_latency = profile }
    in
    let rng = Rng.split (Engine.rng w.engine) in
    let client =
      Httperf.start ~engine:w.engine ~net:w.net ~listener:(listener w) ~workload ~rng ()
    in
    let t_end = Time.add (Engine.now w.engine) (Workload.generation_duration workload) in
    Engine.run ~until:(Time.s 10) w.engine;
    let m = Httperf.metrics client ~t_end in
    (Httperf.completed client, Metrics.median_latency_ms m)
  in
  let lan_done, lan_median = run Sio_net.Latency_profile.Lan in
  let wan_done, wan_median =
    run (Sio_net.Latency_profile.Wan { base = Time.ms 50; jitter = Time.ms 20 })
  in
  Alcotest.(check int) "lan all done" 100 lan_done;
  Alcotest.(check int) "wan all done" 100 wan_done;
  (* Two extra one-way trips of >=50ms each way: median at least 100ms
     above the LAN case. *)
  Alcotest.(check bool) "wan median >= lan + 100ms" true
    (wan_median >= lan_median +. 100.)

let test_workload_validation () =
  Alcotest.(check bool) "scaled clamps at 100" true
    ((Workload.scaled Workload.default 0.000001).Workload.total_connections = 100);
  let raised =
    try
      ignore (Workload.scaled Workload.default (-1.));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative factor rejected" true raised;
  Alcotest.(check int) "generation duration" (Time.s 50)
    (Workload.generation_duration
       { Workload.default with Workload.request_rate = 700; total_connections = 35_000 })

let suite =
  [
    Alcotest.test_case "httperf completes all connections" `Quick test_httperf_completes_all;
    Alcotest.test_case "httperf measures the reply rate" `Quick test_httperf_rate_measured;
    Alcotest.test_case "httperf client fd limit" `Quick test_httperf_fd_limit;
    Alcotest.test_case "ports quarantined in TIME_WAIT" `Quick test_httperf_port_time_wait;
    Alcotest.test_case "port exhaustion" `Quick test_httperf_port_exhaustion;
    Alcotest.test_case "inactive pool establishes" `Quick test_inactive_pool_establishes;
    Alcotest.test_case "inactive clients reopen after timeout" `Quick
      test_inactive_reopen_after_timeout;
    Alcotest.test_case "metrics fallback for short runs" `Quick
      test_metrics_short_run_fallback;
    Alcotest.test_case "sweep enforces a minimum duration" `Quick test_sweep_min_duration;
    Alcotest.test_case "active latency profile" `Quick test_active_latency_profile;
    Alcotest.test_case "workload validation" `Quick test_workload_validation;
  ]
