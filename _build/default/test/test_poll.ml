open Sio_sim
open Sio_kernel

(* A tiny fd-keyed socket environment for driving Poll directly. *)
type env = {
  engine : Engine.t;
  host : Host.t;
  sockets : (int, Socket.t) Hashtbl.t;
}

let mk ?costs () =
  let engine = Helpers.mk_engine () in
  let host =
    match costs with
    | Some c -> Helpers.mk_host ~costs:c engine
    | None -> Helpers.mk_host engine
  in
  { engine; host; sockets = Hashtbl.create 8 }

let add env fd =
  let s = Socket.create_established ~host:env.host in
  Hashtbl.replace env.sockets fd s;
  s

let lookup env fd = Hashtbl.find_opt env.sockets fd

let poll env ~interests ~timeout ~k =
  Poll.wait ~host:env.host ~lookup:(lookup env) ~interests ~timeout ~k

let results_testable =
  Alcotest.(list (pair int Helpers.mask))

let as_pairs rs = List.map (fun r -> (r.Poll.fd, r.Poll.revents)) rs

let test_immediate_ready () =
  let env = mk () in
  let s = add env 3 in
  ignore (Socket.deliver s ~bytes_len:10 ~payload:"");
  let got = ref None in
  poll env ~interests:[ (3, Pollmask.pollin) ] ~timeout:None ~k:(fun rs -> got := Some rs);
  Engine.run env.engine;
  match !got with
  | Some rs ->
      Alcotest.check results_testable "ready" [ (3, Pollmask.pollin) ] (as_pairs rs)
  | None -> Alcotest.fail "poll never returned"

let test_timeout_zero_returns_empty () =
  let env = mk () in
  ignore (add env 1);
  let got = ref None in
  poll env ~interests:[ (1, Pollmask.pollin) ] ~timeout:(Some Time.zero)
    ~k:(fun rs -> got := Some rs);
  Engine.run env.engine;
  Alcotest.(check bool) "returned empty" true (!got = Some [])

let test_blocks_until_event () =
  let env = mk () in
  let s = add env 1 in
  let got_at = ref None in
  poll env ~interests:[ (1, Pollmask.pollin) ] ~timeout:None ~k:(fun rs ->
      got_at := Some (Engine.now env.engine, as_pairs rs));
  ignore
    (Engine.at env.engine (Time.ms 50) (fun () ->
         ignore (Socket.deliver s ~bytes_len:5 ~payload:"")));
  Engine.run env.engine;
  match !got_at with
  | Some (t, rs) ->
      Alcotest.(check int) "woke at event time" (Time.ms 50) t;
      Alcotest.check results_testable "found event" [ (1, Pollmask.pollin) ] rs
  | None -> Alcotest.fail "poll never woke"

let test_timeout_fires () =
  let env = mk () in
  ignore (add env 1);
  let got_at = ref None in
  poll env ~interests:[ (1, Pollmask.pollin) ] ~timeout:(Some (Time.ms 30))
    ~k:(fun rs -> got_at := Some (Engine.now env.engine, rs));
  Engine.run env.engine;
  match !got_at with
  | Some (t, rs) ->
      Alcotest.(check int) "timed out at 30ms" (Time.ms 30) t;
      Alcotest.(check int) "empty result" 0 (List.length rs)
  | None -> Alcotest.fail "poll never returned"

let test_closed_fd_reports_nval () =
  let env = mk () in
  let got = ref None in
  poll env ~interests:[ (9, Pollmask.pollin) ] ~timeout:None ~k:(fun rs -> got := Some rs);
  Engine.run env.engine;
  match !got with
  | Some rs ->
      Alcotest.check results_testable "NVAL" [ (9, Pollmask.pollnval) ] (as_pairs rs)
  | None -> Alcotest.fail "poll never returned"

let test_err_hup_forced () =
  let env = mk () in
  let s = add env 2 in
  Socket.reset s;
  let got = ref None in
  (* Subscribe only to POLLOUT; POLLERR must be reported anyway. *)
  poll env ~interests:[ (2, Pollmask.pollout) ] ~timeout:None ~k:(fun rs -> got := Some rs);
  Engine.run env.engine;
  match !got with
  | Some [ r ] ->
      Alcotest.(check bool) "POLLERR forced" true (Pollmask.mem Pollmask.pollerr r.Poll.revents)
  | Some _ | None -> Alcotest.fail "expected one result"

let test_multiple_ready_in_interest_order () =
  let env = mk () in
  let s1 = add env 1 and s3 = add env 3 in
  ignore (add env 2);
  ignore (Socket.deliver s1 ~bytes_len:1 ~payload:"");
  ignore (Socket.deliver s3 ~bytes_len:1 ~payload:"");
  let got = ref None in
  poll env
    ~interests:[ (3, Pollmask.pollin); (1, Pollmask.pollin); (2, Pollmask.pollout) ]
    ~timeout:None
    ~k:(fun rs -> got := Some (as_pairs rs));
  Engine.run env.engine;
  match !got with
  | Some rs ->
      Alcotest.check results_testable "interest order, pollout of 2 also ready"
        [ (3, Pollmask.pollin); (1, Pollmask.pollin); (2, Pollmask.pollout) ]
        rs
  | None -> Alcotest.fail "poll never returned"

let test_scan_cost_scales_with_interest_size () =
  (* The heart of the paper's critique: poll() cost is O(interest set),
     even when nothing is ready. *)
  let run n =
    let env = mk ~costs:Cost_model.default () in
    for fd = 0 to n - 1 do
      ignore (add env fd)
    done;
    let interests = List.init n (fun fd -> (fd, Pollmask.pollin)) in
    poll env ~interests ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run env.engine;
    Cpu.total_busy env.host.Host.cpu
  in
  let c10 = run 10 and c1000 = run 1000 in
  Alcotest.(check bool) "1000 fds cost ~100x of 10 fds" true
    (c1000 > 50 * c10)

let test_driver_polled_per_interest () =
  let env = mk () in
  for fd = 0 to 9 do
    ignore (add env fd)
  done;
  let interests = List.init 10 (fun fd -> (fd, Pollmask.pollin)) in
  poll env ~interests ~timeout:(Some Time.zero) ~k:(fun _ -> ());
  Engine.run env.engine;
  Alcotest.(check int) "every driver asked" 10 env.host.Host.counters.Host.driver_polls

let test_wakeup_rescans_all () =
  let env = mk () in
  let sockets = List.init 10 (fun fd -> add env fd) in
  let interests = List.init 10 (fun fd -> (fd, Pollmask.pollin)) in
  poll env ~interests ~timeout:None ~k:(fun _ -> ());
  let before = env.host.Host.counters.Host.driver_polls in
  Alcotest.(check int) "initial scan polled all" 10 before;
  (match sockets with
  | s :: _ ->
      ignore
        (Engine.at env.engine (Time.ms 1) (fun () ->
             ignore (Socket.deliver s ~bytes_len:1 ~payload:"")))
  | [] -> assert false);
  Engine.run env.engine;
  Alcotest.(check int) "wakeup rescanned all 10" 20
    env.host.Host.counters.Host.driver_polls

let suite =
  [
    Alcotest.test_case "immediate ready" `Quick test_immediate_ready;
    Alcotest.test_case "timeout 0 returns empty" `Quick test_timeout_zero_returns_empty;
    Alcotest.test_case "blocks until event" `Quick test_blocks_until_event;
    Alcotest.test_case "timeout fires" `Quick test_timeout_fires;
    Alcotest.test_case "closed fd reports NVAL" `Quick test_closed_fd_reports_nval;
    Alcotest.test_case "ERR/HUP reported unsubscribed" `Quick test_err_hup_forced;
    Alcotest.test_case "results in interest order" `Quick test_multiple_ready_in_interest_order;
    Alcotest.test_case "scan cost is O(interests)" `Quick test_scan_cost_scales_with_interest_size;
    Alcotest.test_case "driver polled per interest" `Quick test_driver_polled_per_interest;
    Alcotest.test_case "wakeup rescans whole set" `Quick test_wakeup_rescans_all;
  ]
