open Sio_sim

let test_schedule_pop_due () =
  let q = Event_queue.create () in
  let fired = ref [] in
  ignore (Event_queue.schedule q ~at:(Time.ms 5) (fun () -> fired := 5 :: !fired));
  ignore (Event_queue.schedule q ~at:(Time.ms 2) (fun () -> fired := 2 :: !fired));
  Alcotest.(check (option int)) "next_time" (Some (Time.ms 2)) (Event_queue.next_time q);
  (match Event_queue.pop_due q ~now:(Time.ms 3) with
  | Some action -> action ()
  | None -> Alcotest.fail "expected due event");
  Alcotest.(check (list int)) "earliest popped" [ 2 ] !fired;
  Alcotest.(check bool) "later not due" true (Event_queue.pop_due q ~now:(Time.ms 3) = None)

let test_negative_time_rejected () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.schedule: negative time")
    (fun () -> ignore (Event_queue.schedule q ~at:(-1) (fun () -> ())))

let test_cancel_semantics () =
  let q = Event_queue.create () in
  let h1 = Event_queue.schedule q ~at:(Time.ms 1) (fun () -> ()) in
  let h2 = Event_queue.schedule q ~at:(Time.ms 2) (fun () -> ()) in
  Alcotest.(check int) "two live" 2 (Event_queue.length q);
  Event_queue.cancel q h1;
  Alcotest.(check int) "one live" 1 (Event_queue.length q);
  Alcotest.(check bool) "h1 not pending" false (Event_queue.is_pending q h1);
  Alcotest.(check bool) "h2 pending" true (Event_queue.is_pending q h2);
  (* Double cancel is a no-op; the count must not underflow. *)
  Event_queue.cancel q h1;
  Alcotest.(check int) "still one" 1 (Event_queue.length q);
  (* Cancelled head is skipped transparently. *)
  Alcotest.(check (option int)) "next skips cancelled" (Some (Time.ms 2))
    (Event_queue.next_time q)

let prop_fifo_among_equal_times =
  QCheck.Test.make ~name:"events at one instant pop in schedule order" ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let q = Event_queue.create () in
      let fired = ref [] in
      for i = 0 to n - 1 do
        ignore (Event_queue.schedule q ~at:(Time.ms 1) (fun () -> fired := i :: !fired))
      done;
      let rec drain () =
        match Event_queue.pop_due q ~now:(Time.ms 1) with
        | Some action ->
            action ();
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !fired = List.init n Fun.id)

let prop_cancel_never_fires =
  QCheck.Test.make ~name:"cancelled events never pop" ~count:200
    QCheck.(list (pair (int_bound 100) bool))
    (fun specs ->
      let q = Event_queue.create () in
      let fired = Hashtbl.create 16 in
      let handles =
        List.mapi
          (fun i (at, cancel) ->
            let h = Event_queue.schedule q ~at (fun () -> Hashtbl.replace fired i ()) in
            (h, cancel))
          specs
      in
      List.iter (fun (h, cancel) -> if cancel then Event_queue.cancel q h) handles;
      let rec drain () =
        match Event_queue.pop_due q ~now:1000 with
        | Some action ->
            action ();
            drain ()
        | None -> ()
      in
      drain ();
      List.for_all2
        (fun (_, cancelled) i -> if cancelled then not (Hashtbl.mem fired i) else Hashtbl.mem fired i)
        handles
        (List.init (List.length handles) Fun.id))

let suite =
  [
    Alcotest.test_case "schedule and pop_due" `Quick test_schedule_pop_due;
    Alcotest.test_case "negative time rejected" `Quick test_negative_time_rejected;
    Alcotest.test_case "cancel semantics" `Quick test_cancel_semantics;
    QCheck_alcotest.to_alcotest prop_fifo_among_equal_times;
    QCheck_alcotest.to_alcotest prop_cancel_never_fires;
  ]
