(* Document-size sensitivity: the paper's Section 5 observes that
   "larger documents cause sockets and their corresponding file
   descriptors to remain active over a longer time period. As a result
   the web server and kernel have to examine a larger set of
   descriptors, making the amortized cost of polling on a single file
   descriptor larger." This bench sweeps the document size at a fixed
   rate and idle load and shows exactly that: poll's per-request cost
   grows with size much faster than /dev/poll's. *)

open Sio_loadgen

let devpoll = Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 }

let run_one ~kind ~doc_bytes ~scale =
  let workload =
    Workload.scaled
      {
        Workload.default with
        Workload.request_rate = 500;
        inactive_connections = 251;
        doc_bytes;
      }
      scale
  in
  Experiment.run (Experiment.default_config ~kind ~workload)

let run ppf ~scale =
  Fmt.pf ppf "== Document size sensitivity (500 req/s, 251 idle connections) ==@.";
  Fmt.pf ppf "(paper section 5: bigger documents keep descriptors active longer,@.";
  Fmt.pf ppf " inflating the amortized cost of polling each one)@.";
  Fmt.pf ppf "%10s  %22s  %22s@." "doc bytes" "poll avg/s (med ms)" "devpoll avg/s (med ms)";
  List.iter
    (fun doc_bytes ->
      let p = run_one ~kind:Experiment.Thttpd_poll ~doc_bytes ~scale in
      let d = run_one ~kind:devpoll ~doc_bytes ~scale in
      let cell (o : Experiment.outcome) =
        Printf.sprintf "%7.1f (%7.2f)" o.Experiment.metrics.Metrics.reply_rate_avg
          (Metrics.median_latency_ms o.Experiment.metrics)
      in
      Fmt.pf ppf "%10d  %22s  %22s@." doc_bytes (cell p) (cell d))
    [ 1_024; 6_144; 16_384 ];
  Fmt.pf ppf "@."

(* An "Internet mix": the opening claim of the paper is that 32 fast
   LAN clients and 32,000 slow Internet clients are very different
   loads. Here the *active* clients get WAN/modem latency and the
   latency distribution shifts accordingly while throughput holds. *)
let internet_mix ppf ~scale =
  Fmt.pf ppf "== Internet mix: active-client latency profiles (devpoll, 700 req/s, 251 idle) ==@.";
  let run_profile label profile =
    let workload =
      Sio_loadgen.Workload.scaled
        {
          Workload.default with
          Workload.request_rate = 700;
          inactive_connections = 251;
          active_latency = profile;
        }
        scale
    in
    let o = Experiment.run (Experiment.default_config ~kind:devpoll ~workload) in
    Fmt.pf ppf "  %-28s avg=%7.1f/s err=%5.2f%% median=%8.2fms@." label
      o.Experiment.metrics.Metrics.reply_rate_avg
      o.Experiment.metrics.Metrics.error_percent
      (Metrics.median_latency_ms o.Experiment.metrics)
  in
  run_profile "LAN clients (the paper's)" Sio_net.Latency_profile.Lan;
  run_profile "WAN clients (80ms +- 60ms)"
    (Sio_net.Latency_profile.Wan
       { base = Sio_sim.Time.ms 80; jitter = Sio_sim.Time.ms 60 });
  run_profile "modem clients (Pareto 120ms+)" Sio_net.Latency_profile.default_modem;
  Fmt.pf ppf "@."
