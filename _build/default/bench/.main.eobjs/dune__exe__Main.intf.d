bench/main.mli:
