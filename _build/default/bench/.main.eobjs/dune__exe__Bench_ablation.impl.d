bench/bench_ablation.ml: Cpu Devpoll Engine Experiment Fmt Hashtbl Host List Metrics Pollmask Printf Sio_httpd Sio_kernel Sio_loadgen Sio_sim Socket Time Wait_queue Workload
