bench/bench_opcost.ml: Cpu Devpoll Engine Epoll Fd_set Fmt Hashtbl Host List Poll Pollmask Rt_signal Select Sio_kernel Sio_sim Socket Stdlib Time
