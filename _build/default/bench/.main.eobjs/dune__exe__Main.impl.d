bench/main.ml: Arg Bench_ablation Bench_docsize Bench_micro Bench_opcost Fmt List Scalanio Sio_loadgen
