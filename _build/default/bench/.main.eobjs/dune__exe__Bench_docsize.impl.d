bench/bench_docsize.ml: Experiment Fmt List Metrics Printf Sio_loadgen Sio_net Sio_sim Workload
