(** Byte-counted socket buffer.

    The simulation moves message *sizes*, not payload bytes, through
    socket buffers; actual request text rides alongside in the socket
    object. A buffer has a capacity and answers the two questions
    event notification cares about: is there anything to read, and is
    there room to write. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if capacity is not positive. *)

val capacity : t -> int
val level : t -> int
val space : t -> int

val push : t -> int -> int
(** [push b n] inserts as much of [n] bytes as fits; returns the
    number accepted. Raises [Invalid_argument] on negative [n]. *)

val drain : t -> int -> int
(** [drain b n] removes up to [n] bytes; returns the number removed. *)

val drain_all : t -> int

val is_empty : t -> bool
val is_full : t -> bool
