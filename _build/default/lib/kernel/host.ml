open Sio_sim

type counters = {
  mutable syscalls : int;
  mutable driver_polls : int;
  mutable hint_skips : int;
  mutable wait_queue_wakes : int;
  mutable rt_enqueued : int;
  mutable rt_dropped : int;
  mutable rt_overflows : int;
  mutable softirqs : int;
  mutable accepts : int;
  mutable connections_refused : int;
}

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  costs : Cost_model.t;
  wake_policy : Wait_queue.wake_policy;
  counters : counters;
  hints_by_default : bool;
}

let fresh_counters () =
  {
    syscalls = 0;
    driver_polls = 0;
    hint_skips = 0;
    wait_queue_wakes = 0;
    rt_enqueued = 0;
    rt_dropped = 0;
    rt_overflows = 0;
    softirqs = 0;
    accepts = 0;
    connections_refused = 0;
  }

let create ~engine ?(costs = Cost_model.default)
    ?(wake_policy = Wait_queue.Wake_all) ?(infinitely_fast = false)
    ?(hints_by_default = true) () =
  let cpu =
    if infinitely_fast then Cpu.infinitely_fast ~engine else Cpu.create ~engine
  in
  { engine; cpu; costs; wake_policy; counters = fresh_counters (); hints_by_default }

let now t = Engine.now t.engine
let charge t cost = Cpu.consume t.cpu cost
let charge_run t ~cost k = Cpu.run t.cpu ~cost k
