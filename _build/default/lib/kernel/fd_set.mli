(** select()-style descriptor sets.

    A bitmap over descriptors 0 .. FD_SETSIZE-1, with the hard 1024
    limit that the paper calls out as a practical scalability wall
    (httperf "assumes that the maximum is 1024" because of it). *)

type t

val fd_setsize : int
(** 1024, as in 2.2-era glibc. *)

val create : unit -> t
(** FD_ZERO. *)

val set : t -> int -> unit
(** FD_SET. Raises [Invalid_argument] if the fd is negative or at
    least {!fd_setsize} — the overflow that real programs hit. *)

val clear : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val cardinal : t -> int

val max_fd : t -> int
(** Highest set descriptor, or -1 when empty; select's [nfds - 1]. *)

val iter : t -> (int -> unit) -> unit
(** Ascending order. *)

val copy : t -> t
val clear_all : t -> unit
