open Sio_sim

type file = { id : int; mutable bytes : int }

type t = {
  host : Host.t;
  page_bytes : int;
  disk_access : Time.t;
  cache : Page_cache.t;
  files : (string, file) Hashtbl.t;
  mutable next_id : int;
}

(* Fixed CPU costs of the lookup paths (dentry cache hit; the paper's
   workload never walks cold directories). *)
let namei_cost = Time.ns 1_500
let page_probe_cost = Time.ns 150

let create ~host ?(cache_pages = 4096) ?(page_bytes = 4096) ?(disk_access = Time.ms 9) () =
  if cache_pages <= 0 then invalid_arg "Fs.create: cache_pages must be positive";
  if page_bytes <= 0 then invalid_arg "Fs.create: page_bytes must be positive";
  if Time.is_negative disk_access then invalid_arg "Fs.create: negative disk_access";
  {
    host;
    page_bytes;
    disk_access;
    cache = Page_cache.create ~capacity_pages:cache_pages;
    files = Hashtbl.create 64;
    next_id = 0;
  }

let add_file t ~path ~bytes =
  if bytes < 0 then invalid_arg "Fs.add_file: negative size";
  match Hashtbl.find_opt t.files path with
  | Some f ->
      ignore (Page_cache.invalidate_file t.cache ~file_id:f.id);
      f.bytes <- bytes
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.files path { id; bytes }

let file_count t = Hashtbl.length t.files

let stat t path =
  ignore (Host.charge t.host namei_cost);
  match Hashtbl.find_opt t.files path with
  | Some f -> Ok f.bytes
  | None -> Error `Enoent

let read_file t path =
  ignore (Host.charge t.host namei_cost);
  match Hashtbl.find_opt t.files path with
  | None -> Error `Enoent
  | Some f ->
      let pages = (f.bytes + t.page_bytes - 1) / t.page_bytes in
      for page = 0 to pages - 1 do
        ignore (Host.charge t.host page_probe_cost);
        match Page_cache.touch t.cache { Page_cache.file_id = f.id; page } with
        | `Hit -> ()
        | `Miss ->
            (* A synchronous disk read stalls the single-threaded
               server; charging it as busy time models that stall. *)
            ignore (Host.charge t.host t.disk_access)
      done;
      Ok f.bytes

let cache_hits t = Page_cache.hits t.cache
let cache_misses t = Page_cache.misses t.cache
let cache_resident_pages t = Page_cache.resident t.cache
