type resource = Sock of Socket.t | Dev of Devpoll.t

type t = {
  name : string;
  host : Host.t;
  fds : resource Fd_table.t;
  rt_queue : Rt_signal.queue;
}

let create ~host ?(fd_limit = 1024) ?(rt_queue_limit = 1024) ~name () =
  {
    name;
    host;
    fds = Fd_table.create ~limit:fd_limit ();
    rt_queue = Rt_signal.create_queue ~host ~limit:rt_queue_limit ();
  }

let name t = t.name
let host t = t.host
let fds t = t.fds
let rt_queue t = t.rt_queue

let lookup_socket t fd =
  match Fd_table.find t.fds fd with
  | Some (Sock s) -> Some s
  | Some (Dev _) | None -> None

let lookup_devpoll t fd =
  match Fd_table.find t.fds fd with
  | Some (Dev d) -> Some d
  | Some (Sock _) | None -> None

let install_socket t sock = Fd_table.alloc t.fds (Sock sock)
let open_fd_count t = Fd_table.count t.fds
