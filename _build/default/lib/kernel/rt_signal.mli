(** POSIX Real-Time signal event delivery.

    Models the Linux 2.3 mechanism the paper evaluates: an application
    binds a signal number to a descriptor with fcntl(F_SETSIG); the
    kernel then queues a siginfo carrying the fd and the poll band on
    every I/O completion. The queue is a limited resource (1024
    entries by default): on overflow the kernel drops the signal and
    raises SIGIO exactly once, and the application must recover with
    poll(). Delivery order is by signal number first (SIGIO, being a
    classic low-numbered signal, jumps ahead of all RT signals), FIFO
    within a number.

    Two warts of the real interface are preserved because the paper's
    discussion hinges on them: signals for a descriptor stay queued
    after the descriptor is closed (stale events), and dequeuing is
    one-event-per-syscall via {!sigwaitinfo} — {!sigtimedwait4}
    implements the paper's proposed batching extension. *)

open Sio_sim

type siginfo = { signo : int; fd : int; band : Pollmask.t }

type delivery =
  | Signal of siginfo
  | Overflow  (** SIGIO: the queue overflowed; poll() to recover *)

type queue

val sigrtmin : int
(** 32, as on Linux 2.2/2.3. *)

val create_queue : host:Host.t -> ?limit:int -> unit -> queue
(** Default limit 1024 (the kernel's default the paper quotes).
    Raises [Invalid_argument] if the limit is not positive. *)

val set_signal : queue -> socket:Socket.t -> fd:int -> signo:int -> unit
(** fcntl(fd, F_SETSIG, signo): subsequent status changes on [socket]
    enqueue a siginfo tagged with [fd]. Re-binding replaces the
    previous binding. Raises [Invalid_argument] if [signo] is below
    {!sigrtmin}. *)

val clear_signal : queue -> socket:Socket.t -> fd:int -> unit
(** fcntl(fd, F_SETSIG, 0): stop queueing for this descriptor. Queued
    signals remain (stale-event semantics). *)

val pending : queue -> int
(** Queued RT signals (not counting a pending SIGIO). *)

val sigio_pending : queue -> bool
val limit : queue -> int

val sigwaitinfo : queue -> k:(delivery -> unit) -> unit
(** Dequeue exactly one delivery, blocking until one is available.
    Charges one syscall plus one dequeue. *)

val sigtimedwait4 :
  queue -> max:int -> timeout:Time.t option -> k:(delivery list -> unit) -> unit
(** The paper's proposed batching syscall: dequeue up to [max]
    deliveries in one syscall. Blocks like {!sigwaitinfo} when the
    queue is empty; [Some 0] timeout polls. *)

val flush : queue -> int
(** Set the handler to SIG_DFL and back: discards everything queued
    (including a pending SIGIO), returning the number of RT signals
    dropped. This is the first step of the paper's overflow
    recovery. *)
