(** A page cache with LRU eviction.

    Keyed by (file id, page index). The static-content servers of the
    paper live or die by this cache: the benchmark's single 6 KB
    document stays resident, which is why the simulated disk never
    shows up in the figures — but the filesystem substrate supports
    larger-than-cache working sets for the document-size experiments. *)

type key = { file_id : int; page : int }

type t

val create : capacity_pages:int -> t
(** Raises [Invalid_argument] if the capacity is not positive. *)

val capacity : t -> int
val resident : t -> int

val touch : t -> key -> [ `Hit | `Miss ]
(** Looks the page up; on a miss it is brought in (evicting the least
    recently used page if full). Either way the page becomes most
    recently used. *)

val contains : t -> key -> bool
(** Pure lookup without promotion; for tests. *)

val hits : t -> int
val misses : t -> int

val invalidate_file : t -> file_id:int -> int
(** Drops every resident page of one file; returns how many. *)
