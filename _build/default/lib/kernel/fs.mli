(** The static-content filesystem: a name space of documents backed by
    a page cache and a simple disk model.

    Costs follow the paper's server path: a [stat]/open pays the name
    lookup (cheap when the dentry is cached); reading data pays a
    per-page cache probe plus, on a miss, a disk access — which on the
    paper's single 7200 RPM IDE disk stalls the (single-threaded)
    server outright, so misses are charged as blocking time on the
    host CPU. The benchmark's one 6 KB document always stays resident;
    larger-than-cache document sets exercise eviction for the
    document-size experiments. *)

open Sio_sim

type t

val create :
  host:Host.t ->
  ?cache_pages:int ->
  ?page_bytes:int ->
  ?disk_access:Time.t ->
  unit ->
  t
(** Defaults: 4096 pages of 4096 bytes (a 16 MB cache — a quarter of
    the paper's 64 MB server), 9 ms per disk access (seek + rotation
    on a 7200 RPM IDE disk). *)

val add_file : t -> path:string -> bytes:int -> unit
(** Creates or replaces a document. Replacement invalidates its cached
    pages. Raises [Invalid_argument] on negative size. *)

val file_count : t -> int

val stat : t -> string -> (int, [ `Enoent ]) result
(** Size lookup; charges the name-resolution cost. *)

val read_file : t -> string -> (int, [ `Enoent ]) result
(** Reads the whole document through the page cache, charging per-page
    probes and disk stalls for misses; returns the byte count. *)

val cache_hits : t -> int
val cache_misses : t -> int
val cache_resident_pages : t -> int
