open Sio_sim

type t = {
  engine : Engine.t;
  infinite : bool;
  mutable busy_until : Time.t;
  mutable total_busy : Time.t;
}

let create ~engine =
  { engine; infinite = false; busy_until = Time.zero; total_busy = Time.zero }

let infinitely_fast ~engine =
  { engine; infinite = true; busy_until = Time.zero; total_busy = Time.zero }

let consume t cost =
  if Time.is_negative cost then invalid_arg "Cpu.consume: negative cost";
  let now = Engine.now t.engine in
  if t.infinite then now
  else begin
    let start = Time.max now t.busy_until in
    let finish = Time.add start cost in
    t.busy_until <- finish;
    t.total_busy <- Time.add t.total_busy cost;
    finish
  end

let run t ~cost k =
  let finish = consume t cost in
  ignore (Engine.at t.engine finish k)

let busy_until t = t.busy_until
let total_busy t = t.total_busy

let utilization t ~now =
  if now <= 0 then 0.
  else Float.min 1.0 (Time.to_sec_f t.total_busy /. Time.to_sec_f now)
