(** Kernel wait queues.

    Each pollable object owns a wait queue. A sleeping task registers
    on the wait queues of everything it polls; a status change wakes
    the queue. The paper singles out wait-queue manipulation as the
    expensive part of poll() (Brown's hypothesis for why RT signals
    looked attractive), and discusses waking only one task instead of
    all — both policies are implemented so the ablation bench can
    compare them. *)

type 'waiter t

type wake_policy = Wake_all | Wake_one

val create : unit -> 'w t

val register : 'w t -> 'w -> unit
(** Adds a waiter; duplicates are allowed and woken once per entry. *)

val unregister : 'w t -> 'w -> bool
(** Removes one matching entry (physical equality); false when the
    waiter was not registered. *)

val wake : 'w t -> policy:wake_policy -> ('w -> unit) -> int
(** [wake q ~policy f] calls [f] on woken waiters — all of them, or
    just the head — removing them from the queue. Returns the number
    woken. *)

val length : 'w t -> int
val is_empty : 'w t -> bool
