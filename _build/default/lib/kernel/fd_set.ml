let fd_setsize = 1024
let words = fd_setsize / 63

type t = { bits : int array; mutable count : int; mutable max_fd : int }

let create () = { bits = Array.make (words + 1) 0; count = 0; max_fd = -1 }

let check fd =
  if fd < 0 || fd >= fd_setsize then
    invalid_arg (Printf.sprintf "Fd_set: fd %d outside [0, %d)" fd fd_setsize)

let set t fd =
  check fd;
  let w = fd / 63 and b = fd mod 63 in
  if t.bits.(w) land (1 lsl b) = 0 then begin
    t.bits.(w) <- t.bits.(w) lor (1 lsl b);
    t.count <- t.count + 1;
    if fd > t.max_fd then t.max_fd <- fd
  end

let mem t fd = fd >= 0 && fd < fd_setsize && t.bits.(fd / 63) land (1 lsl (fd mod 63)) <> 0

(* Recompute the maximum after clearing the old maximum. *)
let rescan_max t from =
  let rec go fd = if fd < 0 then -1 else if mem t fd then fd else go (fd - 1) in
  t.max_fd <- go from

let clear t fd =
  check fd;
  let w = fd / 63 and b = fd mod 63 in
  if t.bits.(w) land (1 lsl b) <> 0 then begin
    t.bits.(w) <- t.bits.(w) land lnot (1 lsl b);
    t.count <- t.count - 1;
    if fd = t.max_fd then rescan_max t (fd - 1)
  end

let is_empty t = t.count = 0
let cardinal t = t.count
let max_fd t = t.max_fd

let iter t f =
  for fd = 0 to t.max_fd do
    if mem t fd then f fd
  done

let copy t = { bits = Array.copy t.bits; count = t.count; max_fd = t.max_fd }

let clear_all t =
  Array.fill t.bits 0 (Array.length t.bits) 0;
  t.count <- 0;
  t.max_fd <- -1
