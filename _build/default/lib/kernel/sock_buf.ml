type t = { capacity : int; mutable level : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Sock_buf.create: capacity must be positive";
  { capacity; level = 0 }

let capacity t = t.capacity
let level t = t.level
let space t = t.capacity - t.level

let push t n =
  if n < 0 then invalid_arg "Sock_buf.push: negative size";
  let accepted = Stdlib.min n (space t) in
  t.level <- t.level + accepted;
  accepted

let drain t n =
  if n < 0 then invalid_arg "Sock_buf.drain: negative size";
  let removed = Stdlib.min n t.level in
  t.level <- t.level - removed;
  removed

let drain_all t =
  let n = t.level in
  t.level <- 0;
  n

let is_empty t = t.level = 0
let is_full t = t.level >= t.capacity
