(** A single simulated CPU.

    The server host in the paper deliberately has one slow CPU so it
    can be driven into overload. All work on a host — kernel paths,
    softirqs, and every server process/thread — serializes through one
    [Cpu.t]. Work is charged in submission order (FIFO), which is how
    a run queue behaves when every task runs to completion of its
    short burst.

    [consume] returns the completion time of the burst; callers
    schedule their continuation there. An [infinitely_fast] CPU (the
    benchmark client's 4-way Xeon, never the bottleneck) completes
    everything instantly. *)

open Sio_sim

type t

val create : engine:Engine.t -> t
val infinitely_fast : engine:Engine.t -> t

val consume : t -> Time.t -> Time.t
(** [consume cpu cost] appends [cost] to the CPU's work queue and
    returns the simulated time at which that burst completes. Raises
    [Invalid_argument] on negative cost. *)

val run : t -> cost:Time.t -> (unit -> unit) -> unit
(** [run cpu ~cost k] charges [cost] and schedules [k] at the burst's
    completion time. *)

val busy_until : t -> Time.t

val total_busy : t -> Time.t
(** Accumulated charged time; the basis for utilization reports. *)

val utilization : t -> now:Time.t -> float
(** [total_busy / now], clamped to [0, 1]. *)
