(** Connection plumbing between a (lightweight) client endpoint and a
    (fully simulated) server socket.

    The benchmark client runs on a machine that is never the
    bottleneck, so its endpoint is a set of callbacks rather than a
    simulated kernel object; the server endpoint is a real
    {!Socket.t} subject to the host's CPU and event machinery. The
    TCP three-way handshake is abridged to one round trip: SYN up,
    SYN-ACK down (or RST when the backlog is full), after which both
    ends consider the connection established — the level of detail
    the paper's benchmark depends on (connection setup latency,
    refusals under load) without per-segment bookkeeping.

    All latencies can be stretched per connection with
    [extra_latency], which is how inactive/modem clients are built. *)

open Sio_sim
open Sio_net

type t

type client_handlers = {
  on_established : t -> unit;
  on_refused : t -> unit;  (** backlog overflow: RST during handshake *)
  on_bytes : t -> int -> unit;  (** response bytes arriving at the client *)
  on_server_fin : t -> unit;  (** orderly close by the server *)
  on_reset : t -> unit;  (** RST after establishment *)
}

val null_handlers : client_handlers
(** All no-ops; tests override the fields they care about. *)

val connect :
  net:Network.t ->
  listener:Socket.t ->
  ?extra_latency:Time.t ->
  handlers:client_handlers ->
  unit ->
  t
(** Starts the handshake; [handlers.on_established] or
    [handlers.on_refused] fires one RTT later (plus [extra_latency]
    each way). *)

val id : t -> int

val server_socket : t -> Socket.t option
(** The server-side socket, once the SYN has arrived. *)

val client_send : t -> bytes_len:int -> payload:string -> unit
(** Client pushes request bytes toward the server. *)

val client_close : t -> unit
(** Client FIN; the server socket sees [Peer_closed] one way later. *)

val client_abort : t -> unit
(** Client RST (e.g. benchmark timeout): the server socket is reset. *)

val is_client_open : t -> bool
