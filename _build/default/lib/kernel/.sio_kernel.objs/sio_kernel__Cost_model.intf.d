lib/kernel/cost_model.mli: Sio_sim Time
