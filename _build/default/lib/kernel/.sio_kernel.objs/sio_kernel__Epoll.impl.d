lib/kernel/epoll.ml: Cost_model Engine Hashtbl Host List Poll Pollmask Queue Sio_sim Socket Time Wait_queue
