lib/kernel/page_cache.mli:
