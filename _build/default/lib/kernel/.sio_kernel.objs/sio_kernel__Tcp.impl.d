lib/kernel/tcp.ml: Cost_model Host Network Pollmask Sio_net Sio_sim Socket Time
