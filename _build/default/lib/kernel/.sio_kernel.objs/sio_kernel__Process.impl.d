lib/kernel/process.ml: Devpoll Fd_table Host Rt_signal Socket
