lib/kernel/socket.mli: Format Host Pollmask
