lib/kernel/sock_buf.mli:
