lib/kernel/poll.ml: Cost_model Engine Host List Pollmask Sio_sim Socket Time
