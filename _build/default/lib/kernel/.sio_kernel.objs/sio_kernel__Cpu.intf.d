lib/kernel/cpu.mli: Engine Sio_sim Time
