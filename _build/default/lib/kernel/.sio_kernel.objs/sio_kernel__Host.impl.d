lib/kernel/host.ml: Cost_model Cpu Engine Sio_sim Wait_queue
