lib/kernel/sock_buf.ml: Stdlib
