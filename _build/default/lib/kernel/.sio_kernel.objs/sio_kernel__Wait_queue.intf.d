lib/kernel/wait_queue.mli:
