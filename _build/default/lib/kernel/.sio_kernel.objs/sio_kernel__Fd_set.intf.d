lib/kernel/fd_set.mli:
