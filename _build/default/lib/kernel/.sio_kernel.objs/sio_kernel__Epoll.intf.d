lib/kernel/epoll.mli: Host Poll Pollmask Sio_sim Socket Time
