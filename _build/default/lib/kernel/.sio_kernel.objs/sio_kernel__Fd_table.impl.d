lib/kernel/fd_table.ml: Hashtbl Printf
