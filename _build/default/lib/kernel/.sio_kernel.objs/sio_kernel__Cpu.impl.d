lib/kernel/cpu.ml: Engine Float Sio_sim Time
