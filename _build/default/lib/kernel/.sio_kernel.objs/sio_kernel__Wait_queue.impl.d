lib/kernel/wait_queue.ml: List
