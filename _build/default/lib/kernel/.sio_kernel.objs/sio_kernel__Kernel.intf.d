lib/kernel/kernel.mli: Poll Pollmask Process Rt_signal Sio_sim Socket Time
