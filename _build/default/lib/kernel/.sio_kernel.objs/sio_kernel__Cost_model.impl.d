lib/kernel/cost_model.ml: Sio_sim Time
