lib/kernel/kernel.ml: Cost_model Devpoll Fd_table Host Poll Process Rt_signal Sio_sim Socket Time
