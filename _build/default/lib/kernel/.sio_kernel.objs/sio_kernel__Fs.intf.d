lib/kernel/fs.mli: Host Sio_sim Time
