lib/kernel/socket.ml: Buffer Cost_model Fmt Host List Pollmask Queue Sock_buf String Wait_queue
