lib/kernel/rt_signal.mli: Host Pollmask Sio_sim Socket Time
