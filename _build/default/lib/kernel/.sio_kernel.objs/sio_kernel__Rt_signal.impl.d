lib/kernel/rt_signal.ml: Cost_model Engine Hashtbl Heap Host List Pollmask Queue Sio_sim Socket Time
