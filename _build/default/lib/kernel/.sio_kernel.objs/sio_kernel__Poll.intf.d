lib/kernel/poll.mli: Host Pollmask Sio_sim Socket Time
