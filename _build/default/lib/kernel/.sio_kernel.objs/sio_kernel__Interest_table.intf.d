lib/kernel/interest_table.mli: Pollmask
