lib/kernel/host.mli: Cost_model Cpu Engine Sio_sim Time Wait_queue
