lib/kernel/process.mli: Devpoll Fd_table Host Rt_signal Socket
