lib/kernel/devpoll.ml: Cost_model Engine Hashtbl Host Interest_table List Poll Pollmask Sio_sim Socket Stdlib Time Wait_queue
