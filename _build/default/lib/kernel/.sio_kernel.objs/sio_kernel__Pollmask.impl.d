lib/kernel/pollmask.ml: Fmt Int List
