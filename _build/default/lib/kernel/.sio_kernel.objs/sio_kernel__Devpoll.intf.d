lib/kernel/devpoll.mli: Host Interest_table Poll Pollmask Sio_sim Socket Time
