lib/kernel/fs.ml: Hashtbl Host Page_cache Sio_sim Time
