lib/kernel/page_cache.ml: Hashtbl List
