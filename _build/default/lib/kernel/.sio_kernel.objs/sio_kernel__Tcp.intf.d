lib/kernel/tcp.mli: Network Sio_net Sio_sim Socket Time
