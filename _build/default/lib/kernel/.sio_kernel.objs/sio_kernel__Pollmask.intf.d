lib/kernel/pollmask.mli: Format
