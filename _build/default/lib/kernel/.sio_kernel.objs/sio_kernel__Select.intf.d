lib/kernel/select.mli: Fd_set Host Sio_sim Socket Time
