lib/kernel/fd_set.ml: Array Printf
