lib/kernel/interest_table.ml: Array List Pollmask
