lib/kernel/select.ml: Cost_model Engine Fd_set Host List Pollmask Sio_sim Socket Stdlib Time
