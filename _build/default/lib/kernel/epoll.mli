(** An epoll-style interface: where this line of work ended up.

    The paper's /dev/poll (with hints) still *scans* its interest set
    on every DP_POLL, paying a per-interest hash probe and hint check
    even for idle descriptors. The mechanism that shipped in Linux 2.6
    as epoll closes that gap with a {e ready list}: the driver hint
    path appends the descriptor to a queue, and a wait call pays only
    O(ready). This module implements that design over exactly the same
    socket/hint infrastructure as {!Devpoll}, so the benches can show
    the whole progression select → poll → /dev/poll → epoll.

    Both level-triggered (default, re-armed while the descriptor stays
    ready) and edge-triggered operation are supported. *)

open Sio_sim

type t

type trigger = Level | Edge

val create : host:Host.t -> lookup:(int -> Socket.t option) -> t

val ctl_add :
  t -> fd:int -> events:Pollmask.t -> ?trigger:trigger -> unit ->
  (unit, [ `Eexist | `Ebadf ]) result
(** EPOLL_CTL_ADD. [`Ebadf] when the descriptor does not resolve;
    [`Eexist] when already registered. An already-ready descriptor is
    queued immediately (no lost startup events). *)

val ctl_mod :
  t -> fd:int -> events:Pollmask.t -> (unit, [ `Enoent ]) result

val ctl_del : t -> fd:int -> (unit, [ `Enoent ]) result

val wait :
  t ->
  max_events:int ->
  timeout:Time.t option ->
  k:(Poll.result list -> unit) ->
  unit
(** Pops up to [max_events] entries off the ready list, validating
    each against the driver (a stale entry whose readiness evaporated
    is dropped, per real epoll). Level-triggered descriptors that
    remain ready are re-queued. Blocks when the list is empty. *)

val interest_count : t -> int
val ready_count : t -> int
val close : t -> unit
