(** poll()/pollfd event bitmasks.

    Mirrors the Linux 2.2 [<poll.h>] constants used throughout the
    paper, including the Solaris-style [POLLREMOVE] extension that the
    /dev/poll write interface uses to delete an interest. *)

type t = private int

val empty : t
val pollin : t
val pollpri : t
val pollout : t
val pollerr : t
val pollhup : t
val pollnval : t

val pollremove : t
(** Solaris /dev/poll extension: written in the [events] field to
    remove the descriptor from the interest set. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val mem : t -> t -> bool
(** [mem flag mask] is true when every bit of [flag] is set in
    [mask]. *)

val intersects : t -> t -> bool
(** [intersects a b] is true when the masks share at least one bit. *)

val is_empty : t -> bool
val equal : t -> t -> bool

val readable : t
(** [pollin] u [pollpri]: the bits a reader waits for. *)

val of_int : int -> t
(** Raises [Invalid_argument] if unknown bits are set. *)

val to_int : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
