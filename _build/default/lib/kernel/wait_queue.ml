type 'w t = { mutable waiters : 'w list (* newest first *) }

type wake_policy = Wake_all | Wake_one

let create () = { waiters = [] }

let register q w = q.waiters <- w :: q.waiters

let unregister q w =
  let rec remove = function
    | [] -> None
    | x :: rest when x == w -> Some rest
    | x :: rest -> ( match remove rest with None -> None | Some r -> Some (x :: r))
  in
  match remove q.waiters with
  | None -> false
  | Some rest ->
      q.waiters <- rest;
      true

let wake q ~policy f =
  match policy with
  | Wake_all ->
      let ws = List.rev q.waiters in
      q.waiters <- [];
      List.iter f ws;
      List.length ws
  | Wake_one -> (
      (* oldest waiter first: FIFO fairness *)
      match List.rev q.waiters with
      | [] -> 0
      | oldest :: rest ->
          q.waiters <- List.rev rest;
          f oldest;
          1)

let length q = List.length q.waiters
let is_empty q = q.waiters = []
