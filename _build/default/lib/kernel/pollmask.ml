type t = int

let empty = 0x000
let pollin = 0x001
let pollpri = 0x002
let pollout = 0x004
let pollerr = 0x008
let pollhup = 0x010
let pollnval = 0x020
let pollremove = 0x1000

let all_bits = pollin lor pollpri lor pollout lor pollerr lor pollhup lor pollnval lor pollremove

let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let mem flag mask = mask land flag = flag
let intersects a b = a land b <> 0
let is_empty m = m = 0
let equal = Int.equal
let readable = pollin lor pollpri

let of_int i =
  if i land lnot all_bits <> 0 then invalid_arg "Pollmask.of_int: unknown bits"
  else i

let to_int m = m

let pp ppf m =
  if m = 0 then Fmt.string ppf "0"
  else begin
    let names =
      [
        (pollin, "IN");
        (pollpri, "PRI");
        (pollout, "OUT");
        (pollerr, "ERR");
        (pollhup, "HUP");
        (pollnval, "NVAL");
        (pollremove, "REMOVE");
      ]
    in
    let present = List.filter (fun (bit, _) -> mem bit m) names in
    Fmt.(list ~sep:(any "|") string) ppf (List.map snd present)
  end

let to_string m = Fmt.str "%a" pp m
