(** A simulated process (or Linux thread — which is a process with its
    own pid, as the paper notes when discussing phhttpd's signal
    worker and its poll sibling).

    Owns a descriptor table and an RT-signal queue. All processes on
    one host share the host's CPU. *)

type resource = Sock of Socket.t | Dev of Devpoll.t

type t

val create :
  host:Host.t -> ?fd_limit:int -> ?rt_queue_limit:int -> name:string -> unit -> t
(** Defaults: 1024 descriptors, 1024 queued RT signals. *)

val name : t -> string
val host : t -> Host.t
val fds : t -> resource Fd_table.t
val rt_queue : t -> Rt_signal.queue

val lookup_socket : t -> int -> Socket.t option
(** Resolves an fd to a socket, [None] for closed descriptors and for
    /dev/poll descriptors. *)

val lookup_devpoll : t -> int -> Devpoll.t option

val install_socket : t -> Socket.t -> (int, [ `Emfile ]) result
(** Allocates a descriptor for the socket (used by accept and by the
    listener setup). *)

val open_fd_count : t -> int
