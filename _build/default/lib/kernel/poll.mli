(** Classic poll() semantics with the classic costs.

    Every invocation pays for what the paper's Section 3 criticizes:
    the whole interest set is copied into the kernel (per-fd copy-in
    cost), every descriptor's device driver is asked for its status
    (per-fd driver callback), the process registers on every wait
    queue before sleeping, and on wakeup the entire set is scanned
    again. Results are copied back per ready descriptor. *)

open Sio_sim

type result = { fd : int; revents : Pollmask.t }

val wait :
  host:Host.t ->
  lookup:(int -> Socket.t option) ->
  interests:(int * Pollmask.t) list ->
  timeout:Time.t option ->
  k:(result list -> unit) ->
  unit
(** [wait ~host ~lookup ~interests ~timeout ~k] performs one poll()
    call. [lookup] resolves an fd to its socket ([None] yields
    POLLNVAL in the results, like a closed descriptor). [timeout]:
    [Some 0] never sleeps; [None] sleeps forever. [k] receives the
    descriptors with non-empty [revents], in interest order, at the
    simulated time the syscall returns. Error and hangup conditions
    are always reported, whether or not subscribed, per POSIX. *)

val scan_cost : host:Host.t -> n_interests:int -> Time.t
(** The deterministic CPU cost of one scan pass over [n] interests
    (copy-in plus driver callbacks), exposed for the cost-model
    tests. *)
