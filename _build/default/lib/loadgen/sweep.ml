type point = { rate : int; outcome : Experiment.outcome }

let rates ~from ~until ~step =
  if step <= 0 then invalid_arg "Sweep.rates: step must be positive";
  let rec go r acc = if r > until then List.rev acc else go (r + step) (r :: acc) in
  go from []

let paper_rates = rates ~from:500 ~until:1100 ~step:50

let run ?(on_point = fun _ -> ()) ?(min_duration_s = 3) ~base ~rates () =
  List.map
    (fun rate ->
      let total =
        Stdlib.max base.Experiment.workload.Workload.total_connections
          (min_duration_s * rate)
      in
      let workload =
        {
          base.Experiment.workload with
          Workload.request_rate = rate;
          total_connections = total;
        }
      in
      let cfg = { base with Experiment.workload; seed = base.Experiment.seed + rate } in
      let outcome = Experiment.run cfg in
      let point = { rate; outcome } in
      on_point point;
      point)
    rates
