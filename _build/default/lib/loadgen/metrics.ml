open Sio_sim

type errors = {
  mutable timeouts : int;
  mutable refused : int;
  mutable resets : int;
  mutable fd_limited : int;
  mutable port_limited : int;
  mutable truncated : int;
}

let total_errors e =
  e.timeouts + e.refused + e.resets + e.fd_limited + e.port_limited + e.truncated

type t = {
  target_rate : int;
  attempted : int;
  completed : int;
  errors : errors;
  reply_rate_avg : float;
  reply_rate_sd : float;
  reply_rate_min : float;
  reply_rate_max : float;
  error_percent : float;
  latency : Histogram.t;
  duration : Time.t;
}

let median_latency_ms t =
  if Histogram.count t.latency = 0 then 0.
  else Time.to_ms_f (Histogram.median t.latency)

let pp_row_header ppf () =
  Fmt.pf ppf "%6s  %8s  %8s  %8s  %8s  %7s  %9s" "rate" "avg" "sd" "min" "max"
    "err%" "median_ms"

let pp_row ppf t =
  Fmt.pf ppf "%6d  %8.1f  %8.1f  %8.1f  %8.1f  %7.2f  %9.2f" t.target_rate
    t.reply_rate_avg t.reply_rate_sd t.reply_rate_min t.reply_rate_max
    t.error_percent (median_latency_ms t)
