lib/loadgen/httperf.ml: Engine Event_queue Histogram List Metrics Network Port_pool Rng Sampler Sio_httpd Sio_kernel Sio_net Sio_sim Socket Stats String Tcp Time Workload
