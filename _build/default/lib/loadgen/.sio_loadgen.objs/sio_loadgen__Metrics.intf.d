lib/loadgen/metrics.mli: Format Histogram Sio_sim Time
