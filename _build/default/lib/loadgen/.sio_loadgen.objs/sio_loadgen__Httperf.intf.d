lib/loadgen/httperf.mli: Engine Metrics Network Rng Sio_kernel Sio_net Sio_sim Socket Time Workload
