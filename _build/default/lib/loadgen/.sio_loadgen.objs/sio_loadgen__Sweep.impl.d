lib/loadgen/sweep.ml: Experiment List Stdlib Workload
