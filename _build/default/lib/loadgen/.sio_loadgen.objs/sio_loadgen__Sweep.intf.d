lib/loadgen/sweep.mli: Experiment
