lib/loadgen/report.mli: Format Sweep
