lib/loadgen/inactive.mli: Engine Network Rng Sio_kernel Sio_net Sio_sim Socket Workload
