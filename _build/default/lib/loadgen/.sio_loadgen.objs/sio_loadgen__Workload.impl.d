lib/loadgen/workload.ml: Fmt Latency_profile Sio_httpd Sio_net Sio_sim Stdlib Time
