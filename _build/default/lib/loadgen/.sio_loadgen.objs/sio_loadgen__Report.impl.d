lib/loadgen/report.ml: Array Buffer Experiment Float Fmt Host List Metrics Printf Sio_kernel Stdlib Sweep
