lib/loadgen/inactive.ml: Engine Latency_profile List Network Rng Sio_httpd Sio_kernel Sio_net Sio_sim Socket String Tcp Time Workload
