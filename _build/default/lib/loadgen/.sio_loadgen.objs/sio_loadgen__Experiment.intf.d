lib/loadgen/experiment.mli: Cost_model Format Host Hybrid Metrics Phhttpd Server_stats Sio_httpd Sio_kernel Sio_sim Thttpd Time Wait_queue Workload
