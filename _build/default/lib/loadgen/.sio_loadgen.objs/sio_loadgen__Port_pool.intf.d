lib/loadgen/port_pool.mli: Engine Sio_sim Time
