lib/loadgen/metrics.ml: Fmt Histogram Sio_sim Time
