lib/loadgen/port_pool.ml: Engine Sio_sim Time
