lib/loadgen/workload.mli: Format Latency_profile Sio_net Sio_sim Time
