(** The rate-driven benchmark client (httperf, as modified for the
    paper: dynamic descriptor handling, high-latency client support).

    Offers [total_connections] connections at the target rate with
    deterministic spacing, one GET per connection, and classifies
    every outcome. Client-side resource limits are enforced: a
    descriptor budget and an ephemeral-port pool with TIME_WAIT
    quarantine — the limits that shaped the paper's 35 000-connection
    benchmark procedure. *)

open Sio_sim
open Sio_net
open Sio_kernel

type t

val start :
  engine:Engine.t ->
  net:Network.t ->
  listener:Socket.t ->
  workload:Workload.t ->
  ?rng:Rng.t ->
  ?on_done:(unit -> unit) ->
  unit ->
  t
(** Begins offering connections immediately. [on_done] fires when
    every offered connection has reached a terminal state. [rng] is
    required only when the workload's [active_latency] profile is
    randomized (defaults to a fresh seed-0 stream). *)

val attempted : t -> int
val completed : t -> int
val errors : t -> Metrics.errors
val in_flight : t -> int
val is_done : t -> bool

val fds_in_use : t -> int
val ports_in_use : t -> int

val metrics : t -> t_end:Time.t -> Metrics.t
(** Summarises the run. [t_end] bounds the reply-rate sampling window
    (normally the end of connection generation). *)
