(** The inactive-connection generator.

    "We add client programs that do not complete an http request. To
    keep the number of high-latency clients constant, these clients
    reopen their connection if the server times them out."

    Each client connects over a high-latency path, sends a {e partial}
    request (so the server parses, finds it incomplete, and keeps the
    connection open), and then goes quiet. When the server's idle
    sweep closes or resets it, the client reconnects after a short
    delay, keeping the population constant for the whole run. *)

open Sio_sim
open Sio_net
open Sio_kernel

type t

val start :
  engine:Engine.t ->
  net:Network.t ->
  listener:Socket.t ->
  workload:Workload.t ->
  rng:Rng.t ->
  unit ->
  t
(** Opens [workload.inactive_connections] clients, their connects
    spread over the first 500 ms. *)

val target : t -> int
val established : t -> int
(** Currently-open inactive connections. *)

val reopens : t -> int
(** Times a timed-out client reconnected. *)

val stop : t -> unit
(** Closes every client and stops reopening. *)
