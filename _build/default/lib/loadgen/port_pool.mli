(** Ephemeral client ports with TIME_WAIT quarantine.

    The resource whose exhaustion dictated the paper's benchmark
    procedure: "we can have only about 60000 open sockets at a single
    point in time. When a socket closes it enters the TIME-WAIT state
    for sixty seconds … We therefore run each benchmark for 35,000
    connections" and wait for the quarantine to drain between runs. *)

open Sio_sim

type t

val create : engine:Engine.t -> ports:int -> time_wait:Time.t -> t
(** Raises [Invalid_argument] if [ports] is not positive or
    [time_wait] is negative. *)

val capacity : t -> int
val in_use : t -> int
(** Open plus quarantined ports. *)

val available : t -> int

val acquire : t -> bool
(** Takes one port; false when the pool is exhausted. *)

val release : t -> unit
(** Moves one acquired port into TIME_WAIT; it returns to the pool
    automatically after the quarantine. *)

val release_immediately : t -> unit
(** Returns a port with no quarantine (an RST-terminated connection
    skips TIME_WAIT). *)
