(** Request-rate sweeps: one figure = one sweep. *)

type point = { rate : int; outcome : Experiment.outcome }

val paper_rates : int list
(** 500, 550, ..., 1100 — the x axis of Figures 4-14. *)

val rates : from:int -> until:int -> step:int -> int list

val run :
  ?on_point:(point -> unit) ->
  ?min_duration_s:int ->
  base:Experiment.config ->
  rates:int list ->
  unit ->
  point list
(** Runs the base experiment once per rate (each run gets a fresh
    engine, deterministic from the shared seed plus the rate).
    [on_point] fires as each point completes, for progress output.
    [min_duration_s] (default 3) raises the per-point connection count
    when necessary so every point generates load for at least that
    many seconds — down-scaled workloads stay measurable at high
    rates. *)
