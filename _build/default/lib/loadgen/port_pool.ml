open Sio_sim

type t = {
  engine : Engine.t;
  capacity : int;
  time_wait : Time.t;
  mutable in_use : int;
}

let create ~engine ~ports ~time_wait =
  if ports <= 0 then invalid_arg "Port_pool.create: ports must be positive";
  if Time.is_negative time_wait then invalid_arg "Port_pool.create: negative time_wait";
  { engine; capacity = ports; time_wait; in_use = 0 }

let capacity t = t.capacity
let in_use t = t.in_use
let available t = t.capacity - t.in_use

let acquire t =
  if t.in_use >= t.capacity then false
  else begin
    t.in_use <- t.in_use + 1;
    true
  end

let release t =
  ignore (Engine.after t.engine t.time_wait (fun () -> t.in_use <- t.in_use - 1))

let release_immediately t = t.in_use <- t.in_use - 1
