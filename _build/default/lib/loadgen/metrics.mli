(** Results of one benchmark run: exactly the quantities the paper's
    figures plot. *)

open Sio_sim

type errors = {
  mutable timeouts : int;  (** no complete response within the timeout *)
  mutable refused : int;  (** RST during handshake *)
  mutable resets : int;  (** RST after establishment *)
  mutable fd_limited : int;  (** client ran out of descriptors *)
  mutable port_limited : int;  (** client ran out of ephemeral ports *)
  mutable truncated : int;  (** server closed before the full response *)
}

val total_errors : errors -> int

type t = {
  target_rate : int;
  attempted : int;
  completed : int;
  errors : errors;
  reply_rate_avg : float;
  reply_rate_sd : float;
  reply_rate_min : float;
  reply_rate_max : float;
  error_percent : float;  (** of attempted connections, as in Fig 10 *)
  latency : Histogram.t;  (** established-to-last-byte connection times *)
  duration : Time.t;  (** measurement window *)
}

val median_latency_ms : t -> float
(** Median connection time in milliseconds (Fig 14), 0 when no
    connection completed. *)

val pp_row_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> t -> unit
(** One fixed-width table row per run; header/format shared with
    {!Report}. *)
