(** Per-connection server state machine.

    Shared by every server in this library: accumulate request text
    until the headers are complete, spend the configured user-space
    CPU parsing and building the response, write it, and close
    (HTTP/1.0, no keep-alive — the paper's workload). *)

open Sio_sim
open Sio_kernel

type config = {
  doc_bytes : int;
      (** response body size when serving synthetically (paper: 6144) *)
  parse_cost : Time.t;  (** user CPU to parse a complete request *)
  respond_cost : Time.t;
      (** user CPU to locate the (cached) document and build headers *)
  read_spin_cost : Time.t;
      (** user CPU for an event that produced no complete request *)
  fs : Fs.t option;
      (** when set, documents come from the filesystem substrate: the
          requested path is stat'ed and read through the page cache,
          and unknown paths get a 404 *)
  use_sendfile : bool;
      (** respond through {!Kernel.sendfile} instead of write() *)
}

val not_found_body_bytes : int
(** Size of the 404 page served for unknown paths. *)

val default_config : config
(** Calibrated so one request costs ≈0.9 ms of CPU end to end on the
    default cost model (see DESIGN.md). *)

type t

val create : fd:int -> now:Time.t -> t

val with_fd : t -> fd:int -> t
(** The same connection state rebound to a new descriptor number —
    what happens when a connection is passed to another process over a
    UNIX-domain socket (phhttpd's overflow handoff). *)

val fd : t -> int
val last_activity : t -> Time.t
val touch : t -> now:Time.t -> unit

type outcome =
  | Replied of int  (** response bytes written; connection closed *)
  | Again  (** request not complete yet; keep waiting *)
  | Closed_by_peer  (** EOF or error before a full request *)

val handle_readable : Process.t -> config -> t -> now:Time.t -> outcome
(** Drive the state machine on a readable event. The caller closes the
    descriptor and drops the connection on [Replied] and
    [Closed_by_peer]; this function performs the reads, CPU charges,
    the response write, and the close itself. *)
