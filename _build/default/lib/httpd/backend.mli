(** The uniform event-notification interface the servers code against.

    The paper's thttpd modification swaps poll() for /dev/poll behind
    exactly this seam: declare / retract interest in descriptors, then
    wait for a batch of events. Classic poll() keeps the interest set
    in user space and rebuilds the pollfd array on every call; the
    /dev/poll backend maintains it in the kernel and optionally maps
    the result area. *)

open Sio_sim
open Sio_kernel

type event = { fd : int; mask : Pollmask.t }

type t

val name : t -> string

val add : t -> int -> Pollmask.t -> unit
(** Declare interest in a descriptor (replaces any previous mask). *)

val modify : t -> int -> Pollmask.t -> unit
val remove : t -> int -> unit

val wait : t -> timeout:Time.t option -> k:(event list -> unit) -> unit
(** Wait for the next batch of events (at most the backend's
    [max_events] per call). *)

val interest_count : t -> int

val poll : Process.t -> t
(** Classic poll(): user-space interest set, array rebuilt and copied
    per call. *)

val devpoll :
  ?use_mmap:bool -> ?max_events:int -> Process.t -> (t, [ `Emfile ]) result
(** The paper's /dev/poll: opens the device on creation. [use_mmap]
    (default true) allocates the shared result mapping. [max_events]
    (default 64) bounds one batch, and sizes the mapping. *)

val select : Process.t -> t
(** select(2): the pre-poll interface, with its FD_SETSIZE=1024 wall —
    {!add} raises [Invalid_argument] past it. Write interest is folded
    into the write set; everything else is treated as read interest. *)

val epoll : ?max_events:int -> Process.t -> t
(** The epoll-style ready-list interface (level-triggered): where the
    paper's line of work ended up. O(ready) waits regardless of the
    interest-set size. *)
