open Sio_sim
open Sio_kernel

type config = {
  doc_bytes : int;
  parse_cost : Time.t;
  respond_cost : Time.t;
  read_spin_cost : Time.t;
  fs : Fs.t option;
  use_sendfile : bool;
}

let not_found_body_bytes = 120

let default_config =
  {
    doc_bytes = Http.default_document_bytes;
    parse_cost = Time.us 240;
    respond_cost = Time.us 340;
    read_spin_cost = Time.us 15;
    fs = None;
    use_sendfile = false;
  }

type t = {
  fd : int;
  buf : Buffer.t;
  mutable last_activity : Sio_sim.Time.t;
}

let create ~fd ~now = { fd; buf = Buffer.create 128; last_activity = now }
let with_fd t ~fd = { t with fd }

let fd t = t.fd
let last_activity t = t.last_activity
let touch t ~now = t.last_activity <- now

type outcome = Replied of int | Again | Closed_by_peer

let respond proc config t =
  Kernel.compute proc config.parse_cost;
  match Http.parse_request (Buffer.contents t.buf) with
  | Error (`Incomplete | `Malformed) ->
      (* Junk request: drop the connection, as thttpd does. *)
      ignore (Kernel.close proc t.fd);
      Closed_by_peer
  | Ok req ->
      Kernel.compute proc config.respond_cost;
      let body_bytes =
        match config.fs with
        | None -> config.doc_bytes
        | Some fs -> (
            match Fs.read_file fs req.Http.path with
            | Ok bytes -> bytes
            | Error `Enoent -> not_found_body_bytes)
      in
      let total = Http.response_bytes ~body_bytes in
      let send =
        if config.use_sendfile then Kernel.sendfile else Kernel.write
      in
      let written = match send proc t.fd ~bytes_len:total with
        | Ok n -> n
        | Error (`Ebadf | `Emfile | `Eagain | `Einval) -> 0
      in
      ignore (Kernel.close proc t.fd);
      if written = total then Replied written else Closed_by_peer

let handle_readable proc config t ~now =
  t.last_activity <- now;
  match Kernel.read proc t.fd with
  | Ok (Kernel.Data (text, _bytes)) ->
      Buffer.add_string t.buf text;
      if Http.is_complete (Buffer.contents t.buf) then respond proc config t
      else begin
        Kernel.compute proc config.read_spin_cost;
        Again
      end
  | Ok Kernel.Eagain ->
      Kernel.compute proc config.read_spin_cost;
      Again
  | Ok Kernel.Eof | Ok Kernel.Econnreset ->
      ignore (Kernel.close proc t.fd);
      Closed_by_peer
  | Error (`Ebadf | `Emfile | `Eagain | `Einval) -> Closed_by_peer
