lib/httpd/server_stats.ml: Fmt Sampler Sio_sim Time
