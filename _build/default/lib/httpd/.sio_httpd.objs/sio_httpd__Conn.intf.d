lib/httpd/conn.mli: Fs Process Sio_kernel Sio_sim Time
