lib/httpd/thttpd.ml: Backend Conn Hashtbl Host Kernel List Pollmask Process Server_stats Sio_kernel Sio_sim Socket Time
