lib/httpd/phhttpd.mli: Conn Process Server_stats Sio_kernel Sio_sim Socket Time
