lib/httpd/backend.ml: Epoll Fd_set Hashtbl Kernel List Poll Pollmask Process Select Sio_kernel Sio_sim Time
