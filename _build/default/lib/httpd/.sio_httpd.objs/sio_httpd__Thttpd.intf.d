lib/httpd/thttpd.mli: Backend Conn Process Server_stats Sio_kernel Sio_sim Socket Time
