lib/httpd/server_stats.mli: Format Sampler Sio_sim Time
