lib/httpd/http.mli:
