lib/httpd/backend.mli: Pollmask Process Sio_kernel Sio_sim Time
