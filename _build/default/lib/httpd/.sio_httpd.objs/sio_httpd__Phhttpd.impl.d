lib/httpd/phhttpd.ml: Backend Conn Fd_table Hashtbl Host Kernel List Pollmask Process Rt_signal Server_stats Sio_kernel Sio_sim Socket Time
