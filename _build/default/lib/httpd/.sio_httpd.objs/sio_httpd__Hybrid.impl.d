lib/httpd/hybrid.ml: Backend Conn Hashtbl Host Kernel List Pollmask Process Rt_signal Server_stats Sio_kernel Sio_sim Socket Time
