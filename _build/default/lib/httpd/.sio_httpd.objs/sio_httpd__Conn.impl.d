lib/httpd/conn.ml: Buffer Fs Http Kernel Sio_kernel Sio_sim Time
