(** A phhttpd-style RT-signal-driven web server.

    Faithful to the behaviour the paper measured, including its warts:

    - every connection's I/O completions are routed to one RT signal
      picked up one-at-a-time with sigwaitinfo (modelled as
      sigtimedwait4 with max=1 so the idle sweep can share the wait);
    - each event pays a per-open-connection bookkeeping cost
      ([conn_table_cost_per_conn]) modelling the unfinished server's
      connection-table walks and cache pressure — the mechanism behind
      the paper's surprise that {e inactive} connections slow an
      event-driven server (Figures 12–13);
    - stale signals naming closed descriptors are tolerated and
      counted;
    - on RT-queue overflow (SIGIO) the server flushes pending signals
      and performs the recovery the paper describes with dismay: every
      connection is handed, {e one descriptor at a time}, over a
      UNIX-domain socket to an actual sibling process (a Linux thread
      has its own pid and descriptor table) that rebuilds its pollfd
      array from scratch. The transfers consume real CPU time during
      which nothing is served — the paper's predicted "server
      meltdown" — and the server {e never switches back} to signal
      mode (Brown never implemented that path). *)

open Sio_sim
open Sio_kernel

type config = {
  backlog : int;
  conn : Conn.config;
  idle_timeout : Time.t;
  sweep_period : Time.t;
  sweep_cost_per_conn : Time.t;
  sample_interval : Time.t;
  signo : int;  (** RT signal bound to every descriptor *)
  conn_table_cost_per_conn : Time.t;  (** per handled event, times open connections *)
  handoff_cost_per_conn : Time.t;
      (** overflow recovery: passing one fd to the poll sibling *)
  rebuild_cost_per_conn : Time.t;
      (** overflow recovery: rebuilding the pollfd array entry *)
  max_events_per_iter : int;
      (** bounded per-iteration work in polling mode, as in
          {!Thttpd.config} *)
}

val default_config : config

type mode = Signals | Polling

type t

val start : proc:Process.t -> ?config:config -> unit -> (t, [ `Emfile ]) result
val listener : t -> Socket.t
val stats : t -> Server_stats.t
val connection_count : t -> int
val mode : t -> mode

val is_handing_off : t -> bool
(** True while the one-descriptor-at-a-time transfer to the poll
    sibling is in flight. *)

val sibling : t -> Process.t
(** The poll sibling thread; owns every descriptor after recovery. *)

val stop : t -> unit
