(** The hybrid server the paper imagines but could not build.

    Section 4 sketches a server that processes requests with RT
    signals for their latency advantage while the load is light, and
    switches to polling — using the RT signal queue maximum as the
    crossover trigger — when the load is heavy. Section 6 explains
    what phhttpd would need for that to work: the poll interest set
    (here, /dev/poll kernel state) must be maintained {e concurrently}
    with signal-queue activity, so a switch costs almost nothing.

    This implementation does exactly that:
    - every accepted connection is registered both with F_SETSIG and
      in a /dev/poll interest set;
    - signal mode consumes one event per syscall (or a batch, when
      [sigtimedwait4_batch > 1], exercising the paper's proposed
      batching syscall);
    - on SIGIO (queue overflow) it flushes the queue and continues on
      /dev/poll with no per-connection handoff;
    - when a /dev/poll batch comes back smaller than [low_watermark]
      and the signal queue is idle, it drains once more and returns to
      signal mode — the path Brown never implemented. *)

open Sio_sim
open Sio_kernel

type config = {
  backlog : int;
  conn : Conn.config;
  idle_timeout : Time.t;
  sweep_period : Time.t;
  sweep_cost_per_conn : Time.t;
  sample_interval : Time.t;
  signo : int;
  sigtimedwait4_batch : int;  (** 1 = plain sigwaitinfo semantics *)
  switch_streak : int;
      (** consecutive full batches treated as "queue is backing up":
          the load signal that triggers the switch to polling (the
          paper notes the RT queue length tracks server workload) *)
  max_events : int;  (** /dev/poll batch size *)
  low_watermark : int;
      (** switch back to signals when a poll batch is smaller than this *)
}

val default_config : config

type mode = Signals | Polling

type t

val start : proc:Process.t -> ?config:config -> unit -> (t, [ `Emfile ]) result
val listener : t -> Socket.t
val stats : t -> Server_stats.t
val connection_count : t -> int
val mode : t -> mode
val stop : t -> unit
