open Sio_sim
open Sio_kernel

type event = { fd : int; mask : Pollmask.t }

type impl = {
  name : string;
  add : int -> Pollmask.t -> unit;
  modify : int -> Pollmask.t -> unit;
  remove : int -> unit;
  wait : timeout:Time.t option -> k:(event list -> unit) -> unit;
  interest_count : unit -> int;
}

type t = impl

let name t = t.name
let add t fd mask = t.add fd mask
let modify t fd mask = t.modify fd mask
let remove t fd = t.remove fd
let wait t ~timeout ~k = t.wait ~timeout ~k
let interest_count t = t.interest_count ()

let to_events results =
  List.map (fun r -> { fd = r.Poll.fd; mask = r.Poll.revents }) results

let poll proc =
  (* User-space interest set; insertion order preserved so the pollfd
     array looks like thttpd's (listener first, then connections). *)
  let interests : (int, Pollmask.t) Hashtbl.t = Hashtbl.create 64 in
  let order : int list ref = ref [] in
  let current () =
    List.rev
      (List.filter_map
         (fun fd ->
           match Hashtbl.find_opt interests fd with
           | Some mask -> Some (fd, mask)
           | None -> None)
         !order)
  in
  {
    name = "poll";
    add =
      (fun fd mask ->
        if not (Hashtbl.mem interests fd) then order := fd :: !order;
        Hashtbl.replace interests fd mask);
    modify = (fun fd mask -> if Hashtbl.mem interests fd then Hashtbl.replace interests fd mask);
    remove =
      (fun fd ->
        Hashtbl.remove interests fd;
        order := List.filter (fun x -> x <> fd) !order);
    wait =
      (fun ~timeout ~k ->
        Kernel.poll proc ~interests:(current ()) ~timeout ~k:(fun rs -> k (to_events rs)));
    interest_count = (fun () -> Hashtbl.length interests);
  }

let devpoll ?(use_mmap = true) ?(max_events = 64) proc =
  match Kernel.devpoll_open proc with
  | Error (`Emfile | `Ebadf | `Eagain | `Einval) -> Error `Emfile
  | Ok dpfd ->
      if use_mmap then
        ignore (Kernel.devpoll_alloc_map proc dpfd ~slots:max_events);
      let count = ref 0 in
      let write entries = ignore (Kernel.devpoll_write proc dpfd entries) in
      Ok
        {
          name = (if use_mmap then "devpoll" else "devpoll-nommap");
          add =
            (fun fd mask ->
              incr count;
              write [ (fd, mask) ]);
          modify = (fun fd mask -> write [ (fd, mask) ]);
          remove =
            (fun fd ->
              decr count;
              write [ (fd, Pollmask.pollremove) ]);
          wait =
            (fun ~timeout ~k ->
              ignore
                (Kernel.devpoll_wait proc dpfd ~max_results:max_events ~timeout
                   ~k:(fun rs -> k (to_events rs))));
          interest_count = (fun () -> !count);
        }

let select proc =
  let read = Fd_set.create () and write = Fd_set.create () in
  let host = Process.host proc in
  let to_events result =
    let events = ref [] in
    Fd_set.iter result.Select.except (fun fd ->
        events := { fd; mask = Pollmask.pollerr } :: !events);
    Fd_set.iter result.Select.writable (fun fd ->
        events := { fd; mask = Pollmask.pollout } :: !events);
    Fd_set.iter result.Select.readable (fun fd ->
        match !events with
        | { fd = fd'; mask } :: rest when fd' = fd ->
            events := { fd; mask = Pollmask.union mask Pollmask.pollin } :: rest
        | _ -> events := { fd; mask = Pollmask.pollin } :: !events);
    !events
  in
  let add fd mask =
    if Pollmask.intersects mask Pollmask.readable then Fd_set.set read fd
    else Fd_set.clear read fd;
    if Pollmask.intersects mask Pollmask.pollout then Fd_set.set write fd
    else Fd_set.clear write fd
  in
  {
    name = "select";
    add;
    modify = add;
    remove =
      (fun fd ->
        Fd_set.clear read fd;
        Fd_set.clear write fd);
    wait =
      (fun ~timeout ~k ->
        Select.select ~host
          ~lookup:(Process.lookup_socket proc)
          ~read ~write ~except:read ~timeout
          ~k:(fun result -> k (to_events result)));
    interest_count = (fun () -> Fd_set.cardinal read);
  }

let epoll ?(max_events = 64) proc =
  let ep = Epoll.create ~host:(Process.host proc) ~lookup:(Process.lookup_socket proc) in
  {
    name = "epoll";
    add =
      (fun fd mask ->
        match Epoll.ctl_add ep ~fd ~events:mask () with
        | Ok () -> ()
        | Error `Eexist -> ignore (Epoll.ctl_mod ep ~fd ~events:mask)
        | Error `Ebadf -> ());
    modify = (fun fd mask -> ignore (Epoll.ctl_mod ep ~fd ~events:mask));
    remove = (fun fd -> ignore (Epoll.ctl_del ep ~fd));
    wait =
      (fun ~timeout ~k ->
        Epoll.wait ep ~max_events ~timeout ~k:(fun rs -> k (to_events rs)));
    interest_count = (fun () -> Epoll.interest_count ep);
  }
