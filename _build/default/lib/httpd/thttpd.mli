(** A thttpd-style single-process event-driven web server.

    One loop: wait for events on the backend, accept everything
    pending on the listener, drive readable connections through
    {!Conn}, periodically sweep idle connections (the mechanism that
    times out the benchmark's inactive clients). The backend decides
    whether this is "stock thttpd using normal poll()" or "thttpd
    modified to use /dev/poll" — the server code is identical, which
    is the point of the paper's Section 3. *)

open Sio_sim
open Sio_kernel

type config = {
  backlog : int;
  conn : Conn.config;
  idle_timeout : Time.t;  (** close connections idle this long (60 s) *)
  sweep_period : Time.t;  (** how often the idle sweep runs *)
  sweep_cost_per_conn : Time.t;  (** user CPU per connection walked *)
  sample_interval : Time.t;  (** reply-rate sampling granularity *)
  max_events_per_iter : int;
      (** connections serviced per loop iteration before polling
          again. Real event loops bound per-iteration work for
          fairness; events past the bound are simply picked up by the
          next (level-triggered) scan. With classic poll() this is
          what makes large idle sets expensive: the full scan is paid
          once per [max_events_per_iter] serviced connections. It also
          reproduces the paper's observed starvation: ready
          descriptors are serviced in scan order, so high-numbered
          connections can wait many cycles under overload. *)
}

val default_config : config

type t

val start :
  proc:Process.t -> backend:Backend.t -> ?config:config -> unit -> (t, [ `Emfile ]) result
(** Installs the listener, registers it with the backend, and begins
    the event loop. *)

val listener : t -> Socket.t
val stats : t -> Server_stats.t
val connection_count : t -> int
val config : t -> config

val stop : t -> unit
(** The loop exits after the current iteration; no further accepts or
    reads happen. *)
