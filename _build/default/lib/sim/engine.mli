(** The discrete-event simulation main loop.

    An engine owns a clock and an event queue. Subsystems schedule
    callbacks; {!run} advances the clock to each event in order and
    executes it. Everything in this repository — the simulated kernel,
    the network, the load generator — hangs off one engine, so the
    whole experiment shares one totally ordered notion of time. *)

type t

val create : ?seed:int -> unit -> t
(** [create ~seed ()] is a fresh engine whose root RNG is seeded with
    [seed] (default 42). *)

val now : t -> Time.t
(** Current simulated time. *)

val rng : t -> Rng.t
(** The engine's root RNG. Subsystems should {!Rng.split} their own
    stream from it at construction. *)

val at : t -> Time.t -> (unit -> unit) -> Event_queue.handle
(** [at e t f] schedules [f] at absolute time [t]. Raises
    [Invalid_argument] if [t] is in the past. *)

val after : t -> Time.t -> (unit -> unit) -> Event_queue.handle
(** [after e d f] schedules [f] at [now e + d]. *)

val cancel : t -> Event_queue.handle -> unit

val run : ?until:Time.t -> t -> unit
(** [run e] executes events in time order until the queue is empty, or
    until the clock would pass [until] (events at exactly [until] still
    run). Without a horizon the clock ends at the last executed
    event's time; with one, it always ends at [until]. *)

val step : t -> bool
(** [step e] executes the single next event. Returns false if the
    queue was empty. *)

val events_executed : t -> int
(** Total events executed so far; a cheap progress/cost proxy used by
    tests. *)

val pending : t -> int
(** Live events still scheduled. *)
