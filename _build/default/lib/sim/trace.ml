type entry = { at : Time.t; tag : string; detail : string }

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int; (* next write slot *)
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0 }

let record t ~at ~tag detail =
  t.ring.(t.next) <- Some { at; tag; detail };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let recordf t ~at ~tag fmt = Fmt.kstr (fun s -> record t ~at ~tag s) fmt

let entries t =
  let retained = Stdlib.min t.total t.capacity in
  let start = (t.next - retained + t.capacity) mod t.capacity in
  List.init retained (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let find_all t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let count t = t.total

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0
