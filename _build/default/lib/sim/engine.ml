type t = {
  queue : Event_queue.t;
  root_rng : Rng.t;
  mutable clock : Time.t;
  mutable executed : int;
}

let create ?(seed = 42) () =
  { queue = Event_queue.create (); root_rng = Rng.create ~seed; clock = Time.zero; executed = 0 }

let now e = e.clock
let rng e = e.root_rng

let at e t f =
  if t < e.clock then
    invalid_arg
      (Fmt.str "Engine.at: time %a is before now %a" Time.pp t Time.pp e.clock);
  Event_queue.schedule e.queue ~at:t f

let after e d f = at e (Time.add e.clock (Stdlib.max 0 d)) f

let cancel e h = Event_queue.cancel e.queue h

let step e =
  match Event_queue.next_time e.queue with
  | None -> false
  | Some t -> (
      e.clock <- Stdlib.max e.clock t;
      match Event_queue.pop_due e.queue ~now:e.clock with
      | None -> false
      | Some action ->
          e.executed <- e.executed + 1;
          action ();
          true)

let run ?until e =
  let continue () =
    match Event_queue.next_time e.queue with
    | None -> false
    | Some t -> ( match until with None -> true | Some horizon -> t <= horizon)
  in
  while continue () do
    ignore (step e)
  done;
  (* With a horizon, the clock advances to it even if the last event
     fired earlier: "run until t" leaves the simulation at t. *)
  match until with
  | Some horizon -> e.clock <- Stdlib.max e.clock horizon
  | None -> ()

let events_executed e = e.executed
let pending e = Event_queue.length e.queue
