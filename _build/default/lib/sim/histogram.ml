(* Log-linear buckets: bucket 0 .. linear_buckets-1 are [unit] wide;
   after that each successive group of [sub_buckets] doubles the bucket
   width. Index computation is O(1) using the position of the top bit. *)

type t = {
  unit_ns : int; (* width of the finest bucket *)
  sub_buckets : int; (* buckets per doubling, power of two *)
  mutable counts : int array;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable sum : float;
}

let create ?(significant_ms = 0.05) () =
  let unit_ns = Stdlib.max 1 (int_of_float (significant_ms *. 1e6)) in
  {
    unit_ns;
    sub_buckets = 32;
    counts = Array.make 1024 0;
    total = 0;
    min_v = max_int;
    max_v = 0;
    sum = 0.;
  }

let top_bit n =
  (* Position of the highest set bit of n >= 1. *)
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* Map a value (in units) to a bucket index with <= 1/sub_buckets
   relative error. *)
let index_of t units =
  if units < t.sub_buckets then units
  else begin
    let msb = top_bit units in
    let shift = msb - top_bit t.sub_buckets in
    let group_base = t.sub_buckets * (shift + 1) in
    let within = (units lsr shift) - t.sub_buckets in
    group_base + within
  end

(* Upper bound (in units) of bucket i: inverse of [index_of]. *)
let bound_of t i =
  if i < t.sub_buckets then i + 1
  else begin
    let group = (i / t.sub_buckets) - 1 in
    let within = i mod t.sub_buckets in
    (t.sub_buckets + within + 1) lsl group
  end

let ensure t i =
  let n = Array.length t.counts in
  if i >= n then begin
    let counts = Array.make (Stdlib.max (i + 1) (2 * n)) 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let add t dur =
  let v = Stdlib.max 0 dur in
  let units = v / t.unit_ns in
  let i = index_of t units in
  ensure t i;
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  t.sum <- t.sum +. float_of_int v

let count t = t.total

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of range";
  let target =
    Stdlib.max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.total)))
  in
  let rec go i acc =
    if i >= Array.length t.counts then t.max_v
    else begin
      let acc = acc + t.counts.(i) in
      if acc >= target then Stdlib.min t.max_v (bound_of t i * t.unit_ns)
      else go (i + 1) acc
    end
  in
  go 0 0

let median t = percentile t 50.0
let mean t = if t.total = 0 then 0 else int_of_float (t.sum /. float_of_int t.total)
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v

let merge_into ~dst src =
  if dst.unit_ns <> src.unit_ns || dst.sub_buckets <> src.sub_buckets then
    invalid_arg "Histogram.merge_into: resolution mismatch";
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        ensure dst i;
        dst.counts.(i) <- dst.counts.(i) + c
      end)
    src.counts;
  dst.total <- dst.total + src.total;
  if src.total > 0 then begin
    dst.min_v <- Stdlib.min dst.min_v src.min_v;
    dst.max_v <- Stdlib.max dst.max_v src.max_v;
    dst.sum <- dst.sum +. src.sum
  end

let pp_summary ppf t =
  if t.total = 0 then Fmt.pf ppf "empty"
  else
    Fmt.pf ppf "n=%d min=%a p50=%a p90=%a p99=%a max=%a" t.total Time.pp
      (min_value t) Time.pp (median t) Time.pp (percentile t 90.) Time.pp
      (percentile t 99.) Time.pp (max_value t)
