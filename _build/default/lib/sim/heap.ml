type 'a t = {
  leq : 'a -> 'a -> bool;
  initial_capacity : int;
  mutable data : 'a array; (* physical storage; [size] live slots *)
  mutable size : int;
}

let create ?(initial_capacity = 16) ~leq () =
  { leq; initial_capacity = Stdlib.max 1 initial_capacity; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let ensure_room h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let data = Array.make (Stdlib.max h.initial_capacity (2 * cap)) x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

(* Standard sift-up: the freshly pushed element climbs while it
   strictly precedes its parent. *)
let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if not (h.leq h.data.(parent) h.data.(i)) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  ensure_room h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

(* Sift-down after the last element replaces the root: descend toward
   the smaller child until heap order is restored. *)
let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    let smallest = if l < h.size && not (h.leq h.data.(i) h.data.(l)) then l else i in
    if r < h.size && not (h.leq h.data.(smallest) h.data.(r)) then r else smallest
  in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.data <- [||];
  h.size <- 0

let to_list h = Array.to_list (Array.sub h.data 0 h.size)
