type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_sec_f x =
  if Float.is_nan x || x < 0. then
    invalid_arg "Time.of_sec_f: negative or NaN"
  else Float.to_int (Float.round (x *. 1e9))

let to_sec_f t = float_of_int t /. 1e9
let to_ms_f t = float_of_int t /. 1e6
let to_us_f t = float_of_int t /. 1e3

let add = ( + )
let sub = ( - )
let mul = ( * )
let div = ( / )
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal
let is_negative t = t < 0

let pp ppf t =
  let a = abs t in
  if a < 1_000 then Fmt.pf ppf "%dns" t
  else if a < 1_000_000 then Fmt.pf ppf "%.1fus" (to_us_f t)
  else if a < 1_000_000_000 then Fmt.pf ppf "%.2fms" (to_ms_f t)
  else Fmt.pf ppf "%.3fs" (to_sec_f t)

let to_string t = Fmt.str "%a" pp t
