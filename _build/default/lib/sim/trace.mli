(** Bounded structured trace ring.

    Debugging a discrete-event system means asking "what happened just
    before it went wrong". A trace ring records the last [capacity]
    tagged messages with their timestamps at negligible cost, and tests
    use it to assert event ordering without coupling to log output. *)

type t

type entry = { at : Time.t; tag : string; detail : string }

val create : ?capacity:int -> unit -> t
(** Default capacity 4096. Raises [Invalid_argument] if not positive. *)

val record : t -> at:Time.t -> tag:string -> string -> unit

val recordf :
  t -> at:Time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the message is rendered eagerly. *)

val entries : t -> entry list
(** Oldest first, at most [capacity] entries. *)

val find_all : t -> tag:string -> entry list

val count : t -> int
(** Total entries ever recorded (not just retained). *)

val clear : t -> unit
