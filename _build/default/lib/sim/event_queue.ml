type entry = { time : Time.t; seq : int; id : int; action : unit -> unit }

type handle = int

type t = {
  heap : entry Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable next_seq : int;
  mutable next_id : int;
  mutable live : int;
}

let entry_leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create () =
  {
    heap = Heap.create ~leq:entry_leq ();
    cancelled = Hashtbl.create 64;
    next_seq = 0;
    next_id = 0;
    live = 0;
  }

let schedule q ~at action =
  if Time.is_negative at then invalid_arg "Event_queue.schedule: negative time";
  let id = q.next_id in
  q.next_id <- id + 1;
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  Heap.push q.heap { time = at; seq; id; action };
  q.live <- q.live + 1;
  id

(* Lazy cancellation: remember the id; the entry is dropped when it
   reaches the top of the heap. *)
let cancel q h =
  if h >= 0 && h < q.next_id && not (Hashtbl.mem q.cancelled h) then begin
    Hashtbl.replace q.cancelled h ();
    q.live <- q.live - 1
  end

let is_pending q h = h >= 0 && h < q.next_id && not (Hashtbl.mem q.cancelled h)

(* Note: [is_pending] can also answer true for an event that already
   fired; callers that need exact semantics track firing themselves.
   The kernel timer wheel built on top always cancels or lets fire,
   never both, so this suffices. *)

let rec drop_cancelled q =
  match Heap.peek q.heap with
  | Some e when Hashtbl.mem q.cancelled e.id ->
      let _ = Heap.pop q.heap in
      Hashtbl.remove q.cancelled e.id;
      drop_cancelled q
  | Some _ | None -> ()

let next_time q =
  drop_cancelled q;
  match Heap.peek q.heap with Some e -> Some e.time | None -> None

let pop_due q ~now =
  drop_cancelled q;
  match Heap.peek q.heap with
  | Some e when e.time <= now ->
      let _ = Heap.pop q.heap in
      q.live <- q.live - 1;
      Some e.action
  | Some _ | None -> None

let length q = q.live
let is_empty q = q.live = 0
