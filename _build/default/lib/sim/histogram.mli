(** Latency histogram with percentile queries.

    Log-linear bucketing (HdrHistogram style, simplified): values are
    bucketed with bounded relative error, so median and tail queries
    stay accurate from microseconds to minutes without pre-declaring a
    range. Records {!Time.t} durations. *)

type t

val create : ?significant_ms:float -> unit -> t
(** [create ()] is an empty histogram. [significant_ms] (default 0.05)
    is the absolute resolution floor in milliseconds: below it buckets
    are linear; above it relative error stays under about 2%. *)

val add : t -> Time.t -> unit
(** Records a duration. Negative durations are clamped to zero. *)

val count : t -> int

val percentile : t -> float -> Time.t
(** [percentile t p] with [0 <= p <= 100] is the smallest recorded
    bucket upper bound below which at least [p]% of samples fall.
    Raises [Invalid_argument] when empty or [p] out of range. *)

val median : t -> Time.t
(** [median t = percentile t 50.0]. *)

val mean : t -> Time.t

val min_value : t -> Time.t
val max_value : t -> Time.t

val merge_into : dst:t -> t -> unit
(** Adds all of the source's samples into [dst]. The two histograms
    must have the same resolution. *)

val pp_summary : Format.formatter -> t -> unit
