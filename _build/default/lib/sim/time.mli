(** Simulated time.

    All simulation clocks count integer nanoseconds from the start of
    the run. Using integers keeps every experiment deterministic and
    makes equality exact; 63-bit nanoseconds cover about 146 years of
    simulated time, far beyond any run in this repository. *)

type t = int
(** A point in simulated time, or a duration, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> t
(** [us n] is a duration of [n] microseconds. *)

val ms : int -> t
(** [ms n] is a duration of [n] milliseconds. *)

val s : int -> t
(** [s n] is a duration of [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f x] converts [x] seconds to nanoseconds, rounding to
    nearest. Raises [Invalid_argument] on NaN or negative input. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t
val div : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val is_negative : t -> bool

val pp : Format.formatter -> t -> unit
(** Pretty-prints with an adaptive unit, e.g. ["1.5ms"], ["42us"],
    ["3.000s"]. *)

val to_string : t -> string
