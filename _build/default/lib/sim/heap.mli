(** Array-based binary min-heap.

    The event queue sits on the hot path of every simulation, so the
    heap is imperative and allocation-light: one growable array, no
    per-element boxing beyond the stored value itself. Ordering is
    supplied at creation time. *)

type 'a t

val create : ?initial_capacity:int -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] is an empty heap ordered by [leq]. [leq a b] must
    hold when [a] should be popped no later than [b]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}. Raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list h] is every element of [h] in unspecified order. *)
