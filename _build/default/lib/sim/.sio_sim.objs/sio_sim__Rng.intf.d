lib/sim/rng.mli:
