lib/sim/histogram.ml: Array Fmt Stdlib Time
