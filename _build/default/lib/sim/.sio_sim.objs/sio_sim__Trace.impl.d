lib/sim/trace.ml: Array Fmt List Stdlib String Time
