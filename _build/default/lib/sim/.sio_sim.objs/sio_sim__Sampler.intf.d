lib/sim/sampler.mli: Time
