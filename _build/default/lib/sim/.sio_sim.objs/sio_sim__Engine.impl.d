lib/sim/engine.ml: Event_queue Fmt Rng Stdlib Time
