lib/sim/sampler.ml: Array List Stdlib Time
