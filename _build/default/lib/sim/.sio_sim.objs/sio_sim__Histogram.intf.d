lib/sim/histogram.mli: Format Time
