lib/sim/stats.ml: Fmt Stdlib
