lib/sim/heap.mli:
