lib/sim/event_queue.ml: Hashtbl Heap Time
