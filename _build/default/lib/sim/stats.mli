(** Online summary statistics.

    Welford's algorithm for numerically stable mean/variance, plus
    min/max and a count; constant space regardless of sample count. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); 0 when fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float

val merge : t -> t -> t
(** [merge a b] summarises the union of both sample streams (Chan's
    parallel variance combination). Inputs are not modified. *)

val pp : Format.formatter -> t -> unit
