(** Timed, cancellable events.

    A thin layer over {!Heap} that gives each scheduled event a unique
    id and FIFO ordering among events scheduled for the same instant.
    Cancellation is lazy: a cancelled event stays in the heap until its
    time comes and is then discarded, which keeps cancel O(1). *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule q ~at f] arranges for [f ()] to run when the queue is
    advanced to time [at]. Events at equal times fire in scheduling
    order. Raises [Invalid_argument] if [at] is negative. *)

val cancel : t -> handle -> unit
(** [cancel q h] prevents the event from firing. Cancelling an event
    that already fired (or was already cancelled) is a no-op. *)

val is_pending : t -> handle -> bool

val next_time : t -> Time.t option
(** Time of the earliest live event, skipping cancelled ones. *)

val pop_due : t -> now:Time.t -> (unit -> unit) option
(** [pop_due q ~now] removes and returns the action of the earliest
    live event with time <= [now], if any. *)

val length : t -> int
(** Live (non-cancelled) events still queued. *)

val is_empty : t -> bool
