(** The benchmark topology: one client host and one server host joined
    by a full-duplex switched link, as in the paper's testbed (two
    machines on a 100 Mbit/s Ethernet switch). *)

open Sio_sim

type t

val create :
  engine:Engine.t ->
  ?bandwidth_bits_per_sec:int ->
  ?latency:Time.t ->
  unit ->
  t
(** Defaults: 100 Mbit/s, 100 us one-way latency (LAN through one
    switch). *)

val client_to_server : t -> Link.t
val server_to_client : t -> Link.t

val send_to_server : t -> ?extra_latency:Time.t -> bytes_len:int -> (unit -> unit) -> unit
val send_to_client : t -> ?extra_latency:Time.t -> bytes_len:int -> (unit -> unit) -> unit

val rtt : t -> Time.t
(** Round-trip propagation latency, excluding serialization. *)
