(** A unidirectional network link.

    Models the transmit path of one NIC feeding a wire: messages are
    serialized at the link's bandwidth (store-and-forward, FIFO) and
    then propagate with a fixed one-way latency. The serialization
    queue is what makes a 100 Mbit/s link a shared resource: replies
    queue behind each other exactly as on the paper's Ethernet
    switch. *)

open Sio_sim

type t

val create :
  engine:Engine.t -> bandwidth_bits_per_sec:int -> latency:Time.t -> t
(** Raises [Invalid_argument] if bandwidth is not positive or latency
    is negative. *)

val transmit : t -> ?extra_latency:Time.t -> bytes_len:int -> (unit -> unit) -> unit
(** [transmit t ~bytes_len k] queues a [bytes_len]-byte message. [k]
    runs at the instant the last byte arrives at the far end:
    departure (after queueing + serialization) + latency +
    [extra_latency] (default 0; used for per-client modem delays). *)

val serialization_time : t -> bytes_len:int -> Time.t
(** Wire time of a message at this link's bandwidth, without queueing. *)

val busy_until : t -> Time.t
(** The time at which the transmit queue drains, given current load. *)

val bytes_sent : t -> int
(** Total payload bytes ever accepted for transmission. *)

val utilization : t -> now:Time.t -> float
(** Fraction of wall time spent serializing, from creation to [now]. *)
