lib/net/latency_profile.ml: Float Fmt Rng Sio_sim Time
