lib/net/link.mli: Engine Sio_sim Time
