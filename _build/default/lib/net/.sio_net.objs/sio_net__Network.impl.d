lib/net/network.ml: Link Sio_sim Time
