lib/net/link.ml: Engine Sio_sim Time
