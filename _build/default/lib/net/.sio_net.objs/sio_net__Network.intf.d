lib/net/network.mli: Engine Link Sio_sim Time
