lib/net/latency_profile.mli: Format Rng Sio_sim Time
