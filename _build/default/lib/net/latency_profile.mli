(** Client latency profiles.

    The paper's point of departure is that real servers face "32,000
    high latency, low bandwidth connections from across the Internet",
    not 32 gigabit clients. A profile draws a per-connection one-way
    extra latency added on top of the LAN link. *)

open Sio_sim

type t =
  | Lan  (** no extra latency: the paper's benchmark client *)
  | Wan of { base : Time.t; jitter : Time.t }
      (** fixed base plus uniform jitter in [0, jitter) *)
  | Modem of { min_latency : Time.t; shape : float }
      (** Pareto-tailed latency from [min_latency] up; models dial-up
          and error-prone paths *)

val draw : t -> Rng.t -> Time.t
(** One-way extra latency for a fresh connection. *)

val pp : Format.formatter -> t -> unit

val default_modem : t
(** 120 ms minimum, heavy tail: a 2000-era dial-up user. *)
