open Sio_sim

type t =
  | Lan
  | Wan of { base : Time.t; jitter : Time.t }
  | Modem of { min_latency : Time.t; shape : float }

let draw t rng =
  match t with
  | Lan -> Time.zero
  | Wan { base; jitter } ->
      if jitter <= 0 then base else Time.add base (Rng.int rng jitter)
  | Modem { min_latency; shape } ->
      let x = Rng.pareto rng ~shape ~scale:(Time.to_sec_f min_latency) in
      (* Cap the tail at 10 s so a single draw cannot dominate a run. *)
      Time.of_sec_f (Float.min x 10.0)

let pp ppf = function
  | Lan -> Fmt.string ppf "lan"
  | Wan { base; jitter } -> Fmt.pf ppf "wan(base=%a,jitter=%a)" Time.pp base Time.pp jitter
  | Modem { min_latency; shape } ->
      Fmt.pf ppf "modem(min=%a,shape=%.2f)" Time.pp min_latency shape

let default_modem = Modem { min_latency = Time.ms 120; shape = 1.5 }
