open Sio_sim

type t = {
  engine : Engine.t;
  bandwidth : int; (* bits per second *)
  latency : Time.t;
  mutable busy_until : Time.t;
  mutable bytes_sent : int;
  mutable busy_time : Time.t; (* accumulated serialization time *)
}

let create ~engine ~bandwidth_bits_per_sec ~latency =
  if bandwidth_bits_per_sec <= 0 then invalid_arg "Link.create: bandwidth must be positive";
  if Time.is_negative latency then invalid_arg "Link.create: negative latency";
  {
    engine;
    bandwidth = bandwidth_bits_per_sec;
    latency;
    busy_until = Time.zero;
    bytes_sent = 0;
    busy_time = Time.zero;
  }

let serialization_time t ~bytes_len =
  (* bits * 1e9 / bandwidth, computed without overflow for any message
     smaller than ~1 GB. *)
  let bits = bytes_len * 8 in
  Time.ns (int_of_float (float_of_int bits *. 1e9 /. float_of_int t.bandwidth))

let transmit t ?(extra_latency = Time.zero) ~bytes_len k =
  if bytes_len < 0 then invalid_arg "Link.transmit: negative length";
  let now = Engine.now t.engine in
  let wire = serialization_time t ~bytes_len in
  let depart = Time.add (Time.max now t.busy_until) wire in
  t.busy_until <- depart;
  t.bytes_sent <- t.bytes_sent + bytes_len;
  t.busy_time <- Time.add t.busy_time wire;
  let arrive = Time.add depart (Time.add t.latency extra_latency) in
  ignore (Engine.at t.engine arrive k)

let busy_until t = t.busy_until
let bytes_sent t = t.bytes_sent

let utilization t ~now =
  if now <= Time.zero then 0.
  else Time.to_sec_f t.busy_time /. Time.to_sec_f now
