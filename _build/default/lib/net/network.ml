open Sio_sim

type t = { up : Link.t; down : Link.t; latency : Time.t }

let create ~engine ?(bandwidth_bits_per_sec = 100_000_000) ?(latency = Time.us 100) () =
  let mk () = Link.create ~engine ~bandwidth_bits_per_sec ~latency in
  { up = mk (); down = mk (); latency }

let client_to_server t = t.up
let server_to_client t = t.down

let send_to_server t ?extra_latency ~bytes_len k =
  Link.transmit t.up ?extra_latency ~bytes_len k

let send_to_client t ?extra_latency ~bytes_len k =
  Link.transmit t.down ?extra_latency ~bytes_len k

let rtt t = Time.mul t.latency 2
