(** A small event-notification library over the simulated kernel — the
    paper's contribution packaged the way a downstream application
    would consume it.

    Register a callback per descriptor, pick a notification backend,
    and run. The three backends correspond to the paper's three
    mechanisms:

    - [Poll]: classic poll(); the interest array lives in user space
      and is re-submitted on every wait. Simple, legacy-compatible,
      O(interest set) per wait.
    - [Devpoll]: the paper's /dev/poll with driver hints and
      (optionally) the shared result mapping; interest changes are
      incremental, waits cost O(ready).
    - [Rt_signals]: F_SETSIG delivery picked up with sigwaitinfo (or
      the batching sigtimedwait4 when [batch > 1]). On queue overflow
      the loop recovers exactly as the paper prescribes: flush, one
      recovery poll() over the whole watch set, and continue — so no
      event is ever lost, at a cost that grows with the watch set.

    Level-triggered semantics throughout: a callback fires as long as
    its descriptor stays ready, which makes the backends
    interchangeable. Timers ride on the same loop. *)

open Sio_sim
open Sio_kernel

type backend_kind =
  | Select  (** select(2): FD_SETSIZE-limited, the pre-poll baseline *)
  | Poll
  | Devpoll of { use_mmap : bool; max_events : int }
  | Epoll of { max_events : int }
      (** ready-list notification: the post-paper mechanism *)
  | Rt_signals of { signo : int; batch : int }

val default_devpoll : backend_kind
(** [Devpoll { use_mmap = true; max_events = 64 }]. *)

type t

val create : proc:Process.t -> backend:backend_kind -> (t, [ `Emfile ]) result

val backend_name : t -> string

val watch : t -> fd:int -> events:Pollmask.t -> (Pollmask.t -> unit) -> unit
(** [watch loop ~fd ~events f] calls [f revents] whenever [fd] has any
    of [events] (or an error/hangup condition). Re-watching an fd
    replaces its callback and mask. *)

val unwatch : t -> int -> unit

val watched_count : t -> int

val add_timer : t -> after:Time.t -> (unit -> unit) -> Event_queue.handle
(** One-shot timer on the loop's engine. *)

val add_periodic : t -> every:Time.t -> (unit -> unit) -> unit
(** Fires until {!stop}. *)

val run : t -> unit
(** Starts dispatching; returns immediately (the simulation engine
    drives the loop). Raises [Invalid_argument] if already running. *)

val stop : t -> unit

val overflow_recoveries : t -> int
(** Times the RT-signal backend fell back to a recovery poll. 0 for
    other backends. *)
