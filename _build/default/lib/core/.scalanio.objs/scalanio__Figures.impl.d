lib/core/figures.ml: Experiment Fmt List Report Sio_loadgen String Sweep Workload
