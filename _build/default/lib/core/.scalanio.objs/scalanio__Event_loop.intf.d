lib/core/event_loop.mli: Event_queue Pollmask Process Sio_kernel Sio_sim Time
