lib/core/figures.mli: Experiment Format Report Sio_loadgen Sweep
