lib/core/event_loop.ml: Engine Event_queue Hashtbl Host Kernel List Pollmask Process Rt_signal Sio_httpd Sio_kernel Sio_sim Time
