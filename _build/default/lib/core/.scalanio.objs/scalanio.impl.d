lib/core/scalanio.ml: Event_loop Figures Sio_httpd Sio_kernel Sio_loadgen Sio_net Sio_sim
