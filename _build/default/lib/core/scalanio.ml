(** Scalanio: scalable network I/O, after Provos & Lever (2000).

    The one-stop entry point. A downstream application typically:

    + builds a simulated world — {!Engine}, {!Host}, {!Network},
      {!Process};
    + creates an {!Event_loop} over one of the three notification
      backends the paper studies (poll, /dev/poll, RT signals);
    + watches descriptors and runs.

    The full benchmark study lives in {!Figures} (one entry per figure
    of the paper) with the underlying machinery re-exported below. *)

(* Simulation substrate *)
module Time = Sio_sim.Time
module Engine = Sio_sim.Engine
module Rng = Sio_sim.Rng
module Stats = Sio_sim.Stats
module Histogram = Sio_sim.Histogram

(* Network substrate *)
module Network = Sio_net.Network
module Link = Sio_net.Link
module Latency_profile = Sio_net.Latency_profile

(* Simulated kernel *)
module Host = Sio_kernel.Host
module Cpu = Sio_kernel.Cpu
module Fd_table = Sio_kernel.Fd_table
module Cost_model = Sio_kernel.Cost_model
module Process = Sio_kernel.Process
module Kernel = Sio_kernel.Kernel
module Socket = Sio_kernel.Socket
module Pollmask = Sio_kernel.Pollmask
module Poll = Sio_kernel.Poll
module Devpoll = Sio_kernel.Devpoll
module Rt_signal = Sio_kernel.Rt_signal
module Tcp = Sio_kernel.Tcp
module Fs = Sio_kernel.Fs
module Page_cache = Sio_kernel.Page_cache
module Fd_set = Sio_kernel.Fd_set
module Select = Sio_kernel.Select
module Epoll = Sio_kernel.Epoll

(* Servers and HTTP *)
module Http = Sio_httpd.Http
module Backend = Sio_httpd.Backend
module Thttpd = Sio_httpd.Thttpd
module Phhttpd = Sio_httpd.Phhttpd
module Hybrid = Sio_httpd.Hybrid

(* Measurement harness *)
module Workload = Sio_loadgen.Workload
module Httperf = Sio_loadgen.Httperf
module Inactive = Sio_loadgen.Inactive
module Metrics = Sio_loadgen.Metrics
module Experiment = Sio_loadgen.Experiment
module Sweep = Sio_loadgen.Sweep
module Report = Sio_loadgen.Report

(* This library's own surface *)
module Event_loop = Event_loop
module Figures = Figures
