(* RT-signal hazards, step by step.

   Reproduces the two failure modes Section 2 of the paper describes:

   - phase 1: events queued before a connection is closed remain on
     the RT signal queue, so the application picks up signals naming
     descriptors it has already closed (stale events);
   - phase 2: a burst of I/O completions overruns a deliberately tiny
     RT-signal queue; the kernel drops signals and raises SIGIO; the
     application flushes the queue and falls back to one recovery
     poll() so nothing is lost.

     dune exec examples/overflow_recovery.exe
*)

open Scalanio

let () =
  let engine = Engine.create ~seed:3 () in
  let host = Host.create ~engine () in
  let proc = Process.create ~host ~rt_queue_limit:4 ~name:"rtdemo" () in
  Fmt.pr "RT signal queue limit: 4 (kernel default is 1024)@.@.";

  let sockets =
    List.init 6 (fun i ->
        let s = Socket.create_established ~host in
        let fd =
          match Process.install_socket proc s with
          | Ok fd -> fd
          | Error `Emfile -> assert false
        in
        ignore (Kernel.fcntl_setsig proc fd ~signo:(Rt_signal.sigrtmin + 1));
        Fmt.pr "socket %d -> fd %d, F_SETSIG %d@." i fd (Rt_signal.sigrtmin + 1);
        (fd, s))
  in
  let q = Process.rt_queue proc in

  (* ---- Phase 1: stale events ---- *)
  Fmt.pr "@.phase 1: data arrives on fds 0 and 1...@.";
  (match sockets with
  | (_, s0) :: (_, s1) :: _ ->
      ignore (Socket.deliver s0 ~bytes_len:64 ~payload:"x");
      ignore (Socket.deliver s1 ~bytes_len:64 ~payload:"x")
  | _ -> assert false);
  Fmt.pr "...then fd 0 is closed before its signal is picked up.@.";
  ignore (Kernel.close proc 0);
  let handle d =
    match d with
    | Rt_signal.Signal { fd; band; _ } -> (
        match Process.lookup_socket proc fd with
        | Some _ ->
            Fmt.pr "<- signal: fd %d ready (%a)@." fd Pollmask.pp band;
            (* Consume the data so the next burst posts a fresh edge. *)
            ignore (Kernel.read proc fd)
        | None ->
            Fmt.pr "<- STALE signal: fd %d (%a) names a closed descriptor — ignored@."
              fd Pollmask.pp band)
    | Rt_signal.Overflow -> Fmt.pr "<- SIGIO (unexpected here)@."
  in
  let rec drain_phase1 () =
    if Rt_signal.pending q > 0 then
      Kernel.sigwaitinfo proc ~k:(fun d ->
          handle d;
          drain_phase1 ())
  in
  drain_phase1 ();
  Engine.run ~until:(Time.ms 5) engine;

  (* ---- Phase 2: queue overflow ---- *)
  Fmt.pr "@.phase 2: burst on all 5 remaining sockets (queue holds 4)...@.";
  List.iter
    (fun (fd, s) ->
      if fd <> 0 then ignore (Socket.deliver s ~bytes_len:64 ~payload:"y"))
    sockets;
  Fmt.pr "queued: %d signals, SIGIO pending: %b (dropped %d)@." (Rt_signal.pending q)
    (Rt_signal.sigio_pending q) host.Host.counters.Host.rt_dropped;
  Kernel.sigwaitinfo proc ~k:(fun d ->
      match d with
      | Rt_signal.Overflow ->
          Fmt.pr "<- SIGIO delivered FIRST (classic signals outrank RT): recovering@.";
          let dropped = Kernel.flush_signals proc in
          Fmt.pr "   flushed %d still-queued signals@." dropped;
          let interests =
            List.filter_map
              (fun (fd, _) ->
                if Fd_table.is_open (Process.fds proc) fd then Some (fd, Pollmask.pollin)
                else None)
              sockets
          in
          Kernel.poll proc ~interests ~timeout:(Some Time.zero) ~k:(fun results ->
              Fmt.pr "   recovery poll() found %d ready descriptors:@."
                (List.length results);
              List.iter
                (fun r -> Fmt.pr "     fd %d: %a@." r.Poll.fd Pollmask.pp r.Poll.revents)
                results)
      | Rt_signal.Signal _ -> Fmt.pr "<- unexpected RT signal before SIGIO@.");
  Engine.run ~until:(Time.ms 10) engine;
  Fmt.pr "@.moral: the RT queue is a bounded resource; servers must keep poll() ready@.";
  Fmt.pr "and must treat queued signals as hints that may be stale.@."
