examples/overflow_recovery.ml: Engine Fd_table Fmt Host Kernel List Poll Pollmask Process Rt_signal Scalanio Socket Time
