examples/quickstart.ml: Buffer Engine Event_loop Fmt Host Kernel Network Pollmask Printf Process Scalanio Tcp Time
