examples/hybrid_demo.ml: Engine Fmt Host Httperf Hybrid List Network Process Scalanio Sio_httpd Time Workload
