examples/static_server.ml: Array Backend Cpu Engine Experiment Fmt Host Httperf Hybrid Inactive Metrics Network Phhttpd Process Rng Scalanio Sio_httpd Sys Thttpd Time Workload
