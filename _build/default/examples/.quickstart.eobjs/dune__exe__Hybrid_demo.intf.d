examples/hybrid_demo.mli:
