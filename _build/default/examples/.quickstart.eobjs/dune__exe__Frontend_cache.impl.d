examples/frontend_cache.ml: Array Backend Engine Event_loop Float Fmt Fs Hashtbl Histogram Host Http Kernel Network Pollmask Printf Process Rng Scalanio Sio_httpd Stdlib String Tcp Thttpd Time
