examples/frontend_cache.mli:
