examples/quickstart.mli:
