examples/overflow_recovery.mli:
