examples/static_server.mli:
