(* The paper's scenario as a runnable example: a 6 KB static-content
   server facing a mix of active requesters and idle, high-latency
   connections — printing live per-second statistics so the effect of
   the chosen event backend is visible.

     dune exec examples/static_server.exe -- devpoll 251
     dune exec examples/static_server.exe -- poll 501
     dune exec examples/static_server.exe -- phhttpd 501
*)

open Scalanio

let usage () =
  Fmt.epr "usage: static_server [select|poll|devpoll|epoll|phhttpd|hybrid] [inactive-count]@.";
  exit 2

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "devpoll" in
  let inactive =
    if Array.length Sys.argv > 2 then
      match int_of_string_opt Sys.argv.(2) with Some n when n >= 0 -> n | _ -> usage ()
    else 251
  in
  let kind =
    match backend with
    | "select" -> Experiment.Thttpd_select
    | "poll" -> Experiment.Thttpd_poll
    | "devpoll" -> Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 }
    | "epoll" -> Experiment.Thttpd_epoll { max_events = 64 }
    | "phhttpd" -> Experiment.Phhttpd
    | "hybrid" -> Experiment.Hybrid
    | _ -> usage ()
  in
  let rate = 800 in
  let workload =
    {
      Workload.default with
      Workload.request_rate = rate;
      total_connections = 8 * rate;
      inactive_connections = inactive;
    }
  in
  Fmt.pr "static_server: %a, %d idle connections, %d req/s for %d connections@."
    Experiment.pp_server_kind kind inactive rate
    workload.Workload.total_connections;

  (* Wire the experiment up by hand so we can peek every second. *)
  let cfg = Experiment.default_config ~kind ~workload in
  let engine = Engine.create ~seed:11 () in
  let host = Host.create ~engine () in
  let net = Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:4096 ~name:"www" () in
  let thttpd_on b =
    match Thttpd.start ~proc ~backend:b ~config:cfg.Experiment.thttpd () with
    | Ok t -> (Thttpd.listener t, Thttpd.stats t)
    | Error `Emfile -> failwith "server start failed"
  in
  let server_listener, server_stats =
    match kind with
    | Experiment.Thttpd_select -> thttpd_on (Backend.select proc)
    | Experiment.Thttpd_poll -> thttpd_on (Backend.poll proc)
    | Experiment.Thttpd_epoll { max_events } -> thttpd_on (Backend.epoll ~max_events proc)
    | Experiment.Thttpd_devpoll { use_mmap; max_events } ->
        let b =
          match Backend.devpoll ~use_mmap ~max_events proc with
          | Ok b -> b
          | Error `Emfile -> failwith "/dev/poll open failed"
        in
        thttpd_on b
    | Experiment.Phhttpd ->
        let t =
          match Phhttpd.start ~proc ~config:cfg.Experiment.phhttpd () with
          | Ok t -> t
          | Error `Emfile -> failwith "server start failed"
        in
        (Phhttpd.listener t, Phhttpd.stats t)
    | Experiment.Hybrid ->
        let t =
          match Hybrid.start ~proc ~config:cfg.Experiment.hybrid () with
          | Ok t -> t
          | Error `Emfile -> failwith "server start failed"
        in
        (Hybrid.listener t, Hybrid.stats t)
  in
  let rng = Rng.split (Engine.rng engine) in
  let pool =
    Inactive.start ~engine ~net ~listener:server_listener ~workload ~rng ()
  in
  Engine.run ~until:(Time.s 2) engine;
  let client = Httperf.start ~engine ~net ~listener:server_listener ~workload () in

  (* Live ticker: one line per simulated second. *)
  let last_replies = ref 0 in
  let rec tick t =
    ignore
      (Engine.at engine t (fun () ->
           let total = Httperf.completed client in
           Fmt.pr
             "t=%5.1fs  replies/s=%4d  total=%6d  in-flight=%4d  errors=%4d  cpu=%5.1f%%  idle-conns=%3d@."
             (Time.to_sec_f t) (total - !last_replies) total
             (Httperf.in_flight client)
             (Metrics.total_errors (Httperf.errors client))
             (100. *. Host.(Cpu.utilization host.cpu ~now:t))
             (Inactive.established pool);
           last_replies := total;
           if not (Httperf.is_done client) then tick (Time.add t (Time.s 1))))
  in
  tick (Time.add (Engine.now engine) (Time.s 1));
  let gen_end = Time.add (Engine.now engine) (Workload.generation_duration workload) in
  Engine.run ~until:(Time.add gen_end (Time.s 6)) engine;

  let m = Httperf.metrics client ~t_end:gen_end in
  Fmt.pr "@.summary:@.";
  Fmt.pr "%a@." Metrics.pp_row_header ();
  Fmt.pr "%a@." Metrics.pp_row m;
  Fmt.pr "server: %a@." Sio_httpd.Server_stats.pp server_stats
