(* Quickstart: a tiny echo server on the Scalanio event loop.

   Shows the full lifecycle in ~60 lines: build a simulated world,
   start a server process with a /dev/poll-backed event loop, connect
   a client through the network, and watch request text echo back.

     dune exec examples/quickstart.exe
*)

open Scalanio

let () =
  (* 1. A world: engine (simulated time), a server host with a CPU and
     kernel, and a network between client and server. *)
  let engine = Engine.create ~seed:7 () in
  let host = Host.create ~engine () in
  let net = Network.create ~engine () in
  let proc = Process.create ~host ~name:"echod" () in

  (* 2. A listening socket and an event loop over /dev/poll. *)
  let listen_fd =
    match Kernel.listen proc ~backlog:16 with
    | Ok fd -> fd
    | Error _ -> failwith "listen failed"
  in
  let listener =
    match Process.lookup_socket proc listen_fd with
    | Some s -> s
    | None -> assert false
  in
  let loop =
    match Event_loop.create ~proc ~backend:Event_loop.default_devpoll with
    | Ok l -> l
    | Error `Emfile -> failwith "out of descriptors"
  in

  (* 3. Server logic: accept, then echo whatever arrives. *)
  let on_client fd mask =
    if Pollmask.intersects mask Pollmask.readable then
      match Kernel.read proc fd with
      | Ok (Kernel.Data (text, bytes)) ->
          Fmt.pr "[%a] server: read %S (%d bytes), echoing@." Time.pp
            (Engine.now engine) text bytes;
          ignore (Kernel.write proc fd ~bytes_len:bytes)
      | Ok Kernel.Eof | Ok Kernel.Econnreset ->
          Fmt.pr "[%a] server: client went away, closing@." Time.pp (Engine.now engine);
          Event_loop.unwatch loop fd;
          ignore (Kernel.close proc fd)
      | Ok Kernel.Eagain | Error _ -> ()
  in
  Event_loop.watch loop ~fd:listen_fd ~events:Pollmask.pollin (fun _ ->
      match Kernel.accept proc listen_fd with
      | Ok (fd, _sock) ->
          Fmt.pr "[%a] server: accepted connection as fd %d@." Time.pp
            (Engine.now engine) fd;
          Event_loop.watch loop ~fd ~events:Pollmask.pollin (on_client fd)
      | Error _ -> ());
  Event_loop.run loop;

  (* 4. A client: connect, say hello, print the echo. *)
  let received = Buffer.create 32 in
  let handlers =
    {
      Tcp.null_handlers with
      Tcp.on_established =
        (fun c ->
          Fmt.pr "[%a] client: connected, sending greeting@." Time.pp (Engine.now engine);
          Tcp.client_send c ~bytes_len:14 ~payload:"hello, kernel!");
      on_bytes =
        (fun c n ->
          Buffer.add_string received (Printf.sprintf "<%d bytes>" n);
          Fmt.pr "[%a] client: got %d echoed bytes, closing@." Time.pp
            (Engine.now engine) n;
          Tcp.client_close c);
    }
  in
  ignore (Tcp.connect ~net ~listener ~handlers ());

  (* 5. Run the simulation to quiescence (the loop's idle timer keeps
     it alive, so bound the run). *)
  Engine.run ~until:(Time.ms 50) engine;
  Event_loop.stop loop;
  Fmt.pr "@.done: client received %s via backend %S@." (Buffer.contents received)
    (Event_loop.backend_name loop)
