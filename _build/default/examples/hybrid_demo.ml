(* The hybrid server under a load ramp: watch it ride RT signals while
   the load is light, shift to /dev/poll as the signal queue backs up,
   and drop back once the storm passes — the switching behaviour the
   paper sketches in Sections 4 and 6 but could not build.

     dune exec examples/hybrid_demo.exe
*)

open Scalanio

let () =
  let engine = Engine.create ~seed:21 () in
  let host = Host.create ~engine () in
  let net = Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:4096 ~name:"hybrid" () in
  let config =
    {
      Hybrid.default_config with
      Hybrid.sigtimedwait4_batch = 4;
      switch_streak = 3;
    }
  in
  let server =
    match Hybrid.start ~proc ~config () with
    | Ok t -> t
    | Error `Emfile -> failwith "hybrid start failed"
  in
  let listener = Hybrid.listener server in

  (* Load ramp: 2 s quiet (300/s), 4 s storm (1400/s, beyond the host's
     ~1100/s capacity), 4 s quiet again. *)
  let phases = [ (300, Time.s 2); (1400, Time.s 4); (300, Time.s 4) ] in
  Fmt.pr "load ramp: %a@.@."
    Fmt.(list ~sep:comma (pair ~sep:(any "/s for ") int Time.pp))
    phases;
  let start_phase rate duration at =
    ignore
      (Engine.at engine at (fun () ->
           let workload =
             {
               Workload.default with
               Workload.request_rate = rate;
               total_connections =
                 int_of_float (float_of_int rate *. Time.to_sec_f duration);
               inactive_connections = 0;
             }
           in
           ignore (Httperf.start ~engine ~net ~listener ~workload ())))
  in
  let _ =
    List.fold_left
      (fun at (rate, duration) ->
        start_phase rate duration at;
        Time.add at duration)
      (Time.ms 100) phases
  in

  (* Ticker: mode + throughput once per second. *)
  let stats = Hybrid.stats server in
  let last = ref 0 in
  let rec tick t =
    ignore
      (Engine.at engine t (fun () ->
           let mode =
             match Hybrid.mode server with
             | Hybrid.Signals -> "signals"
             | Hybrid.Polling -> "polling"
           in
           Fmt.pr "t=%4.1fs  mode=%-8s replies/s=%5d  switches=%d  overflows=%d@."
             (Time.to_sec_f t) mode
             (stats.Sio_httpd.Server_stats.replies - !last)
             stats.Sio_httpd.Server_stats.mode_switches
             stats.Sio_httpd.Server_stats.overflow_recoveries;
           last := stats.Sio_httpd.Server_stats.replies;
           if t < Time.s 12 then tick (Time.add t (Time.s 1))))
  in
  tick (Time.s 1);
  Engine.run ~until:(Time.s 13) engine;
  Hybrid.stop server;
  Fmt.pr "@.total replies: %d, mode switches: %d@."
    stats.Sio_httpd.Server_stats.replies stats.Sio_httpd.Server_stats.mode_switches
