bin/sio_figures.mli:
