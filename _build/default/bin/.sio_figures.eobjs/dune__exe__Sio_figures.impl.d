bin/sio_figures.ml: Arg Cmd Cmdliner Filename Fmt List Printf Scalanio Sio_loadgen String Term
