(* Run a single (server x workload) benchmark experiment and print its
   metrics: the quick way to poke the system from a shell. *)

open Cmdliner
open Sio_loadgen

let kind_of_string = function
  | "select" -> Ok Experiment.Thttpd_select
  | "epoll" -> Ok (Experiment.Thttpd_epoll { max_events = 64 })
  | "poll" -> Ok Experiment.Thttpd_poll
  | "devpoll" -> Ok (Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 })
  | "devpoll-nommap" -> Ok (Experiment.Thttpd_devpoll { use_mmap = false; max_events = 64 })
  | "phhttpd" -> Ok Experiment.Phhttpd
  | "hybrid" -> Ok Experiment.Hybrid
  | s -> Error (`Msg (Printf.sprintf "unknown server %S" s))

let server_conv =
  Arg.conv
    ( (fun s -> kind_of_string s),
      fun ppf k -> Experiment.pp_server_kind ppf k )

let run server rate conns inactive seed verbose =
  let workload =
    {
      Workload.default with
      Workload.request_rate = rate;
      total_connections = conns;
      inactive_connections = inactive;
    }
  in
  let cfg = { (Experiment.default_config ~kind:server ~workload) with Experiment.seed } in
  Fmt.pr "server=%a workload=[%a]@." Experiment.pp_server_kind server Workload.pp workload;
  let o = Experiment.run cfg in
  Fmt.pr "%a@." Metrics.pp_row_header ();
  Fmt.pr "%a@." Metrics.pp_row o.Experiment.metrics;
  Fmt.pr "server: %a@." Sio_httpd.Server_stats.pp o.Experiment.server_stats;
  Fmt.pr "cpu: %.1f%%  inactive: %d established, %d reopens  mode: %s@."
    (100. *. o.Experiment.cpu_utilization)
    o.Experiment.inactive_established o.Experiment.inactive_reopens
    o.Experiment.final_mode;
  if verbose then begin
    let c = o.Experiment.host_counters in
    Fmt.pr
      "kernel: syscalls=%d driver_polls=%d hint_skips=%d wakes=%d softirqs=%d rt_enq=%d rt_drop=%d overflows=%d refused=%d@."
      c.Sio_kernel.Host.syscalls c.Sio_kernel.Host.driver_polls
      c.Sio_kernel.Host.hint_skips c.Sio_kernel.Host.wait_queue_wakes
      c.Sio_kernel.Host.softirqs c.Sio_kernel.Host.rt_enqueued
      c.Sio_kernel.Host.rt_dropped c.Sio_kernel.Host.rt_overflows
      c.Sio_kernel.Host.connections_refused
  end

let server_arg =
  Arg.(
    value
    & opt server_conv (Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 })
    & info [ "s"; "server" ] ~docv:"SERVER"
        ~doc:"Server to benchmark: select, poll, devpoll, devpoll-nommap, epoll, phhttpd, hybrid.")

let rate_arg =
  Arg.(value & opt int 700 & info [ "r"; "rate" ] ~docv:"RATE" ~doc:"Target request rate per second.")

let conns_arg =
  Arg.(
    value & opt int 7000
    & info [ "n"; "connections" ] ~docv:"N" ~doc:"Total connections to offer (paper: 35000).")

let inactive_arg =
  Arg.(
    value & opt int 1
    & info [ "i"; "inactive" ] ~docv:"N" ~doc:"Concurrent inactive connections (paper: 1, 251, 501).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print kernel counters.")

let cmd =
  let doc = "run one scalanio benchmark experiment" in
  Cmd.v
    (Cmd.info "sio_run" ~doc)
    Term.(const run $ server_arg $ rate_arg $ conns_arg $ inactive_arg $ seed_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
