bin/sio_run.mli:
