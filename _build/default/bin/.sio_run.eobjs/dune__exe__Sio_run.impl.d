bin/sio_run.ml: Arg Cmd Cmdliner Experiment Fmt Metrics Printf Sio_httpd Sio_kernel Sio_loadgen Term Workload
