open Sio_kernel

let test_push_drain () =
  let b = Sock_buf.create ~capacity:100 in
  Alcotest.(check int) "accepts all" 60 (Sock_buf.push b 60);
  Alcotest.(check int) "level" 60 (Sock_buf.level b);
  Alcotest.(check int) "space" 40 (Sock_buf.space b);
  Alcotest.(check int) "partial accept" 40 (Sock_buf.push b 60);
  Alcotest.(check bool) "full" true (Sock_buf.is_full b);
  Alcotest.(check int) "drain partial" 30 (Sock_buf.drain b 30);
  Alcotest.(check int) "level after" 70 (Sock_buf.level b);
  Alcotest.(check int) "drain_all" 70 (Sock_buf.drain_all b);
  Alcotest.(check bool) "empty" true (Sock_buf.is_empty b)

let test_drain_more_than_level () =
  let b = Sock_buf.create ~capacity:10 in
  ignore (Sock_buf.push b 4);
  Alcotest.(check int) "drain clamps" 4 (Sock_buf.drain b 100)

let test_validation () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Sock_buf.create: capacity must be positive") (fun () ->
      ignore (Sock_buf.create ~capacity:0));
  let b = Sock_buf.create ~capacity:1 in
  Alcotest.check_raises "negative push" (Invalid_argument "Sock_buf.push: negative size")
    (fun () -> ignore (Sock_buf.push b (-1)));
  Alcotest.check_raises "negative drain" (Invalid_argument "Sock_buf.drain: negative size")
    (fun () -> ignore (Sock_buf.drain b (-1)))

let prop_level_bounded =
  QCheck.Test.make ~name:"buffer level stays within [0, capacity]" ~count:300
    QCheck.(pair (int_range 1 1000) (list (pair bool (int_bound 500))))
    (fun (cap, ops) ->
      let b = Sock_buf.create ~capacity:cap in
      List.for_all
        (fun (push, n) ->
          if push then ignore (Sock_buf.push b n) else ignore (Sock_buf.drain b n);
          Sock_buf.level b >= 0 && Sock_buf.level b <= cap)
        ops)

let prop_conservation =
  QCheck.Test.make ~name:"bytes in = bytes out + level" ~count:300
    QCheck.(list (pair bool (int_bound 200)))
    (fun ops ->
      let b = Sock_buf.create ~capacity:512 in
      let pushed = ref 0 and drained = ref 0 in
      List.iter
        (fun (push, n) ->
          if push then pushed := !pushed + Sock_buf.push b n
          else drained := !drained + Sock_buf.drain b n)
        ops;
      !pushed = !drained + Sock_buf.level b)

let test_high_water () =
  let b = Sock_buf.create ~capacity:100 in
  Alcotest.(check int) "starts at zero" 0 (Sock_buf.high_water b);
  ignore (Sock_buf.push b 30);
  ignore (Sock_buf.push b 40);
  Alcotest.(check int) "tracks peak" 70 (Sock_buf.high_water b);
  ignore (Sock_buf.drain b 60);
  Alcotest.(check int) "draining never lowers it" 70 (Sock_buf.high_water b);
  ignore (Sock_buf.push b 55);
  Alcotest.(check int) "new peak" 65 (Sock_buf.level b);
  Alcotest.(check int) "but old high water stands" 70 (Sock_buf.high_water b);
  ignore (Sock_buf.push b 500);
  Alcotest.(check int) "clamped push still counts" 100 (Sock_buf.high_water b)

(* Model-equivalence suite: the Bigarray-backed ring versus a pure
   int-level reference (the buffer's previous implementation), driven
   through random push/drain/drain_all interleavings. Equivalence is
   on return values and on every observable accessor, and the ring's
   backing store must agree with its own counter (occupied_cells). *)
module Ref_model = struct
  type t = { capacity : int; mutable level : int }

  let create ~capacity = { capacity; level = 0 }

  let push t n =
    let accepted = Stdlib.min n (t.capacity - t.level) in
    t.level <- t.level + accepted;
    accepted

  let drain t n =
    let removed = Stdlib.min n t.level in
    t.level <- t.level - removed;
    removed

  let drain_all t =
    let n = t.level in
    t.level <- 0;
    n
end

type op = Push of int | Drain of int | Drain_all

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun n -> Push n) (int_bound 300));
        (4, map (fun n -> Drain n) (int_bound 300));
        (1, return Drain_all);
      ])

let op_print = function
  | Push n -> Printf.sprintf "Push %d" n
  | Drain n -> Printf.sprintf "Drain %d" n
  | Drain_all -> "Drain_all"

let ops_arb =
  QCheck.make
    ~print:QCheck.Print.(pair int (list op_print))
    QCheck.Gen.(pair (int_range 1 200) (list_size (int_bound 120) op_gen))

let prop_model_equivalence =
  QCheck.Test.make ~name:"ring buffer is observationally equal to int-level model"
    ~count:500 ops_arb
    (fun (cap, ops) ->
      let b = Sock_buf.create ~capacity:cap in
      let m = Ref_model.create ~capacity:cap in
      let peak = ref 0 in
      List.for_all
        (fun op ->
          let rb, rm =
            match op with
            | Push n -> (Sock_buf.push b n, Ref_model.push m n)
            | Drain n -> (Sock_buf.drain b n, Ref_model.drain m n)
            | Drain_all -> (Sock_buf.drain_all b, Ref_model.drain_all m)
          in
          peak := Stdlib.max !peak m.Ref_model.level;
          rb = rm
          && Sock_buf.level b = m.Ref_model.level
          && Sock_buf.space b = cap - m.Ref_model.level
          && Sock_buf.is_empty b = (m.Ref_model.level = 0)
          && Sock_buf.is_full b = (m.Ref_model.level = cap)
          && Sock_buf.high_water b = !peak
          && Sock_buf.occupied_cells b = Sock_buf.level b)
        ops)

let suite =
  [
    Alcotest.test_case "push and drain" `Quick test_push_drain;
    Alcotest.test_case "drain clamps to level" `Quick test_drain_more_than_level;
    Alcotest.test_case "argument validation" `Quick test_validation;
    Alcotest.test_case "high-water mark" `Quick test_high_water;
    QCheck_alcotest.to_alcotest prop_level_bounded;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_model_equivalence;
  ]
