(* The determinism contract of the domain-parallel runner: a sweep run
   on a Domain_pool must be bit-for-bit the sequential sweep — same
   Metrics, same counters, same order — for the reference figures the
   integration suite leans on (fig5: thttpd+devpoll, fig11: phhttpd). *)

open Sio_sim
open Sio_loadgen

let reduced_rates = [ 500; 800; 1100 ]
let scale = 0.02

let figure id =
  match Scalanio.Figures.find id with
  | Some f -> f
  | None -> Alcotest.fail (id ^ " missing from the catalog")

(* Every number the harness reports, as one comparable string. *)
let fingerprint series = String.concat "\n" (List.map Report.csv_of_series series)

let check_metrics_identical ~what (a : Metrics.t) (b : Metrics.t) =
  Alcotest.(check int) (what ^ " attempted") a.Metrics.attempted b.Metrics.attempted;
  Alcotest.(check int) (what ^ " completed") a.Metrics.completed b.Metrics.completed;
  Alcotest.(check (float 0.)) (what ^ " avg") a.Metrics.reply_rate_avg b.Metrics.reply_rate_avg;
  Alcotest.(check (float 0.)) (what ^ " sd") a.Metrics.reply_rate_sd b.Metrics.reply_rate_sd;
  Alcotest.(check (float 0.)) (what ^ " min") a.Metrics.reply_rate_min b.Metrics.reply_rate_min;
  Alcotest.(check (float 0.)) (what ^ " max") a.Metrics.reply_rate_max b.Metrics.reply_rate_max;
  Alcotest.(check (float 0.)) (what ^ " err%") a.Metrics.error_percent b.Metrics.error_percent;
  Alcotest.(check int) (what ^ " errors")
    (Metrics.total_errors a.Metrics.errors)
    (Metrics.total_errors b.Metrics.errors);
  Alcotest.(check (float 0.)) (what ^ " median")
    (Metrics.median_latency_ms a) (Metrics.median_latency_ms b)

let run_figure ?pool id =
  Scalanio.Figures.run ?pool ~scale ~rates:reduced_rates (figure id)

let test_figure_bit_identical id () =
  Domain_pool.with_pool ~size:2 (fun pool ->
      let seq = run_figure id in
      let par = run_figure ~pool id in
      Alcotest.(check string)
        (id ^ " csv fingerprint identical")
        (fingerprint seq) (fingerprint par);
      List.iter2
        (fun (s : Report.series) (p : Report.series) ->
          Alcotest.(check string) "labels" s.Report.label p.Report.label;
          List.iter2
            (fun (sp : Sweep.point) (pp : Sweep.point) ->
              Alcotest.(check int) "rate order restored" sp.Sweep.rate pp.Sweep.rate;
              check_metrics_identical
                ~what:(Printf.sprintf "%s rate=%d" id sp.Sweep.rate)
                sp.Sweep.outcome.Experiment.metrics pp.Sweep.outcome.Experiment.metrics;
              Alcotest.(check int) "syscalls"
                sp.Sweep.outcome.Experiment.host_counters.Sio_kernel.Host.syscalls
                pp.Sweep.outcome.Experiment.host_counters.Sio_kernel.Host.syscalls)
            s.Report.points p.Report.points)
        seq par)

let test_on_point_fires_in_rate_order () =
  let base =
    Experiment.default_config
      ~kind:(Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 })
      ~workload:
        {
          Workload.default with
          Workload.total_connections = 100;
          inactive_connections = 1;
        }
  in
  Domain_pool.with_pool ~size:2 (fun pool ->
      let seen = ref [] in
      let points =
        Sweep.run ~pool ~min_duration_s:0
          ~on_point:(fun p -> seen := p.Sweep.rate :: !seen)
          ~base ~rates:reduced_rates ()
      in
      Alcotest.(check (list int)) "on_point in rate order" reduced_rates (List.rev !seen);
      Alcotest.(check (list int)) "points in rate order" reduced_rates
        (List.map (fun p -> p.Sweep.rate) points))

let test_duplicate_rate_rejected () =
  let base =
    Experiment.default_config
      ~kind:(Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 })
      ~workload:{ Workload.default with Workload.total_connections = 100 }
  in
  let raised =
    try
      ignore (Sweep.run ~base ~rates:[ 500; 600; 500 ] ());
      false
    with Invalid_argument msg ->
      Alcotest.(check bool) "message names the seed clash" true
        (String.length msg > 0);
      true
  in
  Alcotest.(check bool) "duplicate rates raise before running" true raised

let test_derived_seeds_are_mixed () =
  (* seed+rate made neighbouring sweeps share points: seed 42 rate 500
     collided with seed 43 rate 499. Derivation must not. *)
  let s1 = Rng.derive ~seed:42 500 and s2 = Rng.derive ~seed:43 499 in
  Alcotest.(check bool) "no additive collision" true (s1 <> s2);
  let distinct =
    List.length
      (List.sort_uniq compare (List.map (Rng.derive ~seed:42) Sweep.paper_rates))
  in
  Alcotest.(check int) "paper rates derive 13 distinct seeds" 13 distinct;
  List.iter
    (fun r -> Alcotest.(check bool) "non-negative" true (Rng.derive ~seed:42 r >= 0))
    Sweep.paper_rates

let suite =
  [
    Alcotest.test_case "fig5 parallel == sequential" `Slow (test_figure_bit_identical "fig5");
    Alcotest.test_case "fig11 parallel == sequential" `Slow
      (test_figure_bit_identical "fig11");
    Alcotest.test_case "on_point order restored by index" `Quick
      test_on_point_fires_in_rate_order;
    Alcotest.test_case "duplicate rates rejected" `Quick test_duplicate_rate_rejected;
    Alcotest.test_case "seed derivation is mixed, not additive" `Quick
      test_derived_seeds_are_mixed;
  ]
