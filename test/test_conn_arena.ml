(* Admission control and arena hygiene: modeled kernel memory caps
   accept() exactly at the configured limit, refusals surface in
   Server_stats, slots and reserved bytes come back on close, and
   stale handles to a reused slot are inert — the reuse pattern of
   test_event_queue.ml, replayed at the arena and socket layers. *)

open Sio_sim
open Sio_kernel

(* Like Helpers.mk_rig, but with a kernel-memory budget on the host. *)
let mk_rig ?(costs = Cost_model.zero) ?(mem_limit = Stdlib.max_int) () =
  let engine = Engine.create ~seed:42 () in
  let host = Host.create ~engine ~costs ~mem_limit () in
  let net = Sio_net.Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:4096 ~name:"server" () in
  let listen_fd =
    match Kernel.listen proc ~backlog:512 with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "listen failed"
  in
  let listener =
    match Process.lookup_socket proc listen_fd with
    | Some s -> s
    | None -> Alcotest.fail "listener not installed"
  in
  (engine, host, net, proc, listen_fd, listener)

let connect_n ~net ~listener ~engine n =
  for _ = 1 to n do
    ignore (Tcp.connect ~net ~listener ~handlers:Tcp.null_handlers ())
  done;
  Engine.run engine

(* What one accepted connection reserves (sock struct + both buffer
   capacities), measured rather than hard-coded so the tests track the
   cost model. *)
let per_conn ?costs () =
  let engine, _, net, proc, listen_fd, listener = mk_rig ?costs () in
  connect_n ~net ~listener ~engine 1;
  match Kernel.accept proc listen_fd with
  | Ok (_, sock) -> Socket.kernel_memory_bytes sock
  | Error _ -> Alcotest.fail "probe accept failed"

let prop_admission_exact =
  QCheck.Test.make
    ~name:"accept refuses with Enobufs exactly at the memory limit" ~count:20
    QCheck.(pair (int_range 1 6) bool)
    (fun (k, tight) ->
      let bytes = per_conn () in
      (* A budget of k connections, optionally with one byte short of
         a (k+1)-th: admission must stop after exactly k either way. *)
      let slack = if tight then 0 else bytes - 1 in
      let engine, host, net, proc, listen_fd, listener =
        mk_rig ~mem_limit:((k * bytes) + slack) ()
      in
      connect_n ~net ~listener ~engine (k + 2);
      let rec drain acc =
        match Kernel.accept proc listen_fd with
        | Ok (fd, _) -> drain (fd :: acc)
        | Error e -> (List.rev acc, e)
      in
      let accepted, stop = drain [] in
      let refused_at_limit = stop = `Enobufs && List.length accepted = k in
      let counted = host.Host.counters.Host.accepts = k in
      (* Releasing one connection's bytes re-opens admission for the
         still-queued handshake. *)
      (match accepted with
      | fd :: _ -> ignore (Kernel.close proc fd)
      | [] -> ());
      Engine.run engine;
      let recovered =
        match Kernel.accept proc listen_fd with
        | Ok _ -> k > 0
        | Error _ -> false
      in
      refused_at_limit && counted && recovered)

let prop_close_reclaims_all =
  QCheck.Test.make
    ~name:"close returns every slot and every reserved byte" ~count:20
    QCheck.(int_range 1 15)
    (fun n ->
      let engine, host, net, proc, listen_fd, listener = mk_rig () in
      let baseline = Conn_arena.live_count host.Host.arena in
      connect_n ~net ~listener ~engine n;
      let fds =
        List.init n (fun _ ->
            match Kernel.accept proc listen_fd with
            | Ok (fd, _) -> fd
            | Error _ -> Alcotest.fail "accept failed")
      in
      let reserved = host.Host.mem_used = n * per_conn () in
      List.iter (fun fd -> ignore (Kernel.close proc fd)) fds;
      Engine.run engine;
      reserved
      && host.Host.mem_used = 0
      && host.Host.mem_peak >= n * per_conn ()
      && Conn_arena.live_count host.Host.arena = baseline)

let prop_stale_handle_inert =
  (* The Event_queue reuse pattern at the arena layer: a single-slot
     arena recycles slot 0 through every alloc/free round; handles
     carrying an old generation must read dead forever. *)
  QCheck.Test.make ~name:"reused slots stale every prior generation" ~count:100
    QCheck.(int_range 1 30)
    (fun rounds ->
      let a = Conn_arena.create ~initial_capacity:1 () in
      let ok = ref true in
      let prev = ref [] in
      for _ = 1 to rounds do
        let slot = Conn_arena.alloc a in
        let gen = a.Conn_arena.gen.{slot} in
        ok := !ok && slot = 0 && Conn_arena.is_live a ~slot ~gen;
        List.iter
          (fun g -> ok := !ok && not (Conn_arena.is_live a ~slot ~gen:g))
          !prev;
        prev := gen :: !prev;
        Conn_arena.free a slot
      done;
      !ok && Conn_arena.live_count a = 0 && Conn_arena.high_water a = 1)

let test_stale_socket_handle_inert () =
  let engine, _host, net, proc, listen_fd, listener = mk_rig () in
  connect_n ~net ~listener ~engine 2;
  let fd1, sock1 = Helpers.ok (Kernel.accept proc listen_fd) in
  ignore (Helpers.ok (Kernel.close proc fd1));
  Alcotest.(check bool) "closed handle reads Closed" true
    (Socket.state sock1 = Socket.Closed);
  Alcotest.(check int) "no bytes held by stale handle" 0
    (Socket.kernel_memory_bytes sock1);
  Alcotest.(check bool) "stale handle cannot reserve" false
    (Socket.reserve_kernel_memory sock1);
  (* The freed slot is recycled by the next accept; the old handle
     must not alias the new connection. *)
  let _, sock2 = Helpers.ok (Kernel.accept proc listen_fd) in
  Alcotest.(check bool) "new conn established" true
    (Socket.state sock2 = Socket.Established);
  Socket.reset sock1;
  Alcotest.(check bool) "reset through stale handle is inert" true
    (Socket.state sock2 = Socket.Established);
  Alcotest.(check bool) "new conn keeps its reservation" true
    (Socket.kernel_memory_bytes sock2 > 0);
  Alcotest.(check int) "stale handle still empty" 0
    (Socket.kernel_memory_bytes sock1)

let test_enobufs_counted_in_server_stats () =
  let open Sio_loadgen in
  let bytes = per_conn ~costs:Cost_model.default () in
  let budget = 20 in
  let workload =
    {
      Workload.default with
      Workload.request_rate = 50;
      total_connections = 60;
      inactive_connections = 100;
    }
  in
  let base =
    Experiment.default_config
      ~kind:(Experiment.Thttpd_epoll { max_events = 64 })
      ~workload
  in
  let cfg =
    { base with Experiment.kernel_mem_limit = Some (budget * bytes) }
  in
  let o = Experiment.run cfg in
  Alcotest.(check bool) "refusals counted in Server_stats" true
    (o.Experiment.server_stats.Sio_httpd.Server_stats.enobufs_drops > 0);
  Alcotest.(check bool) "peak never exceeds the limit" true
    (o.Experiment.kernel_mem_peak <= budget * bytes);
  Alcotest.(check bool) "some connections still admitted" true
    (o.Experiment.kernel_mem_peak >= bytes)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_admission_exact;
    QCheck_alcotest.to_alcotest prop_close_reclaims_all;
    QCheck_alcotest.to_alcotest prop_stale_handle_inert;
    Alcotest.test_case "stale socket handle is inert" `Quick
      test_stale_socket_handle_inert;
    Alcotest.test_case "Enobufs drops land in Server_stats" `Quick
      test_enobufs_counted_in_server_stats;
  ]
