(* The incremental ready sets (Devpoll's active set, Poll.Pset,
   Select.Sset) under churn: after any interleaving of socket
   mutations, closes, POLLREMOVEs, and scans, a set maintained
   incrementally must report the same readiness — and certify the same
   fds idle — as one rebuilt from scratch over the final state. Plus
   the analytic-charging regression: the batched idle charge and its
   counter updates are identical to the per-fd loop they replaced
   (DESIGN.md section 5's bulk-charging rule). *)

open Sio_sim
open Sio_kernel

type world = {
  engine : Engine.t;
  host : Host.t;
  sockets : (int, Socket.t) Hashtbl.t;
  interests : (int, Pollmask.t) Hashtbl.t;  (* model of the interest set *)
}

let mk_world () =
  let engine = Helpers.mk_engine () in
  let host = Helpers.mk_host engine in
  { engine; host; sockets = Hashtbl.create 8; interests = Hashtbl.create 8 }

let fd_pool = 8

(* Odd fds also watch for writability, so the write legs of select and
   poll see traffic too. *)
let interest_mask fd =
  if fd mod 2 = 0 then Pollmask.pollin else Pollmask.union Pollmask.pollin Pollmask.pollout

(* Decode one scripted op: socket churn is shared across backends,
   interest edits and scans are the backend's. *)
let apply w ~add ~remove ~scan x =
  let fd = x mod fd_pool and action = x / fd_pool in
  let with_sock f =
    match Hashtbl.find_opt w.sockets fd with Some s -> f s | None -> ()
  in
  match action with
  | 0 ->
      (* Fd reuse always passes through close: an open descriptor's
         socket is never replaced silently (close posts POLLNVAL, the
         edge the ready sets rely on to spot the rebind). *)
      with_sock Socket.close;
      Hashtbl.replace w.sockets fd (Socket.create_established ~host:w.host)
  | 1 ->
      with_sock (fun s ->
          Socket.close s;
          Hashtbl.remove w.sockets fd)
  | 2 -> with_sock (fun s -> ignore (Socket.deliver s ~bytes_len:1 ~payload:""))
  | 3 -> with_sock (fun s -> ignore (Socket.read_all s))
  | 4 -> with_sock Socket.peer_closed
  | 5 -> with_sock (fun s -> Socket.set_hints_supported s (not (Socket.hints_supported s)))
  | 6 ->
      Hashtbl.replace w.interests fd (interest_mask fd);
      add fd
  | 7 ->
      Hashtbl.remove w.interests fd;
      remove fd
  | _ -> scan ()

let script_gen = QCheck.(list_of_size Gen.(5 -- 60) (int_bound ((fd_pool * 9) - 1)))

let model_interests w =
  List.sort compare (Hashtbl.fold (fun fd ev acc -> (fd, ev) :: acc) w.interests [])

let sorted_pairs rs = List.sort compare (List.map (fun r -> (r.Poll.fd, r.Poll.revents)) rs)

let dp_scan w dev =
  let got = ref [] in
  Devpoll.dp_poll dev ~max_results:64 ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run w.engine;
  sorted_pairs !got

let prop_devpoll_churn =
  QCheck.Test.make ~name:"devpoll active set equals rebuilt set after churn" ~count:300
    script_gen
    (fun script ->
      let w = mk_world () in
      let lookup = Hashtbl.find_opt w.sockets in
      let dev = Devpoll.create ~host:w.host ~lookup in
      List.iter
        (apply w
           ~add:(fun fd -> Devpoll.write dev [ (fd, interest_mask fd) ])
           ~remove:(fun fd -> Devpoll.write dev [ (fd, Pollmask.pollremove) ])
           ~scan:(fun () -> ignore (dp_scan w dev)))
        script;
      let fresh = Devpoll.create ~host:w.host ~lookup in
      Devpoll.write fresh (model_interests w);
      dp_scan w dev = dp_scan w fresh
      && Devpoll.active_fds dev = Devpoll.active_fds fresh)

let pset_scan w set =
  let got = ref [] in
  Poll.Pset.wait_set set ~timeout:(Some Time.zero) ~k:(fun rs -> got := rs);
  Engine.run w.engine;
  sorted_pairs !got

let prop_pset_churn =
  QCheck.Test.make ~name:"poll pset equals stateless poll() after churn" ~count:300
    script_gen
    (fun script ->
      let w = mk_world () in
      let lookup = Hashtbl.find_opt w.sockets in
      let set = Poll.Pset.create ~host:w.host ~lookup () in
      List.iter
        (apply w
           ~add:(fun fd -> Poll.Pset.set set fd (interest_mask fd))
           ~remove:(fun fd -> Poll.Pset.remove set fd)
           ~scan:(fun () -> ignore (pset_scan w set)))
        script;
      let interests = model_interests w in
      let stateless = ref [] in
      Poll.wait ~host:w.host ~lookup ~interests ~timeout:(Some Time.zero)
        ~k:(fun rs -> stateless := rs);
      Engine.run w.engine;
      let fresh = Poll.Pset.create ~host:w.host ~lookup () in
      List.iter (fun (fd, ev) -> Poll.Pset.set fresh fd ev) interests;
      pset_scan w set = sorted_pairs !stateless
      && (ignore (pset_scan w fresh);
          Poll.Pset.active_fds set = Poll.Pset.active_fds fresh))

let set_elements s =
  let acc = ref [] in
  Fd_set.iter s (fun fd -> acc := fd :: !acc);
  List.sort compare !acc

let select_triple (r : Select.result) =
  (set_elements r.Select.readable, set_elements r.Select.writable, set_elements r.Select.except)

let sset_scan w set =
  let got = ref None in
  Select.Sset.wait_sset set ~timeout:(Some Time.zero) ~k:(fun r -> got := Some r);
  Engine.run w.engine;
  match !got with Some r -> select_triple r | None -> Alcotest.fail "wait_sset never returned"

let prop_sset_churn =
  QCheck.Test.make ~name:"select sset equals stateless select() after churn" ~count:300
    script_gen
    (fun script ->
      let w = mk_world () in
      let lookup = Hashtbl.find_opt w.sockets in
      let set = Select.Sset.create ~host:w.host ~lookup () in
      List.iter
        (apply w
           ~add:(fun fd -> Select.Sset.add set fd (interest_mask fd))
           ~remove:(fun fd -> Select.Sset.remove set fd)
           ~scan:(fun () -> ignore (sset_scan w set)))
        script;
      let read = Fd_set.create () and write = Fd_set.create () in
      List.iter
        (fun (fd, ev) ->
          Fd_set.set read fd;
          if not (Pollmask.is_empty (Pollmask.inter ev Pollmask.pollout)) then
            Fd_set.set write fd)
        (model_interests w);
      let stateless = ref None in
      Select.select ~host:w.host ~lookup ~read ~write ~except:(Fd_set.copy read)
        ~timeout:(Some Time.zero) ~k:(fun r -> stateless := Some r);
      Engine.run w.engine;
      let fresh = Select.Sset.create ~host:w.host ~lookup () in
      List.iter (fun (fd, ev) -> Select.Sset.add fresh fd ev) (model_interests w);
      (match !stateless with
      | Some r -> sset_scan w set = select_triple r
      | None -> false)
      && (ignore (sset_scan w fresh);
          Select.Sset.active_fds set = Select.Sset.active_fds fresh))

(* --- Analytic-charging regression ------------------------------------

   Pre-PR, every scan walked the full interest list and charged per
   fd. The batched idle charge must be indistinguishable from that
   loop in both charged nanoseconds and Host counters, at every load
   the figures exercise. The stateless Poll.wait/Select.select paths
   still ARE the per-fd loop, so they serve as the pre-PR oracle. *)

let loads = [ 1; 251; 501 ]

let snap (h : Host.t) =
  let c = h.Host.counters in
  (c.Host.syscalls, c.Host.driver_polls, c.Host.hint_skips, c.Host.wait_queue_wakes)

let delta h f =
  let busy0 = Cpu.total_busy h.Host.cpu and s0, d0, k0, w0 = snap h in
  f ();
  let busy1 = Cpu.total_busy h.Host.cpu and s1, d1, k1, w1 = snap h in
  (Time.sub busy1 busy0, (s1 - s0, d1 - d0, k1 - k0, w1 - w0))

let pp_charge ppf (t, (s, d, k, w)) =
  Fmt.pf ppf "%s syscalls=%d driver_polls=%d hint_skips=%d wakes=%d" (Time.to_string t) s d
    k w

let charge = Alcotest.testable pp_charge ( = )

let mk_loaded n =
  let engine = Helpers.mk_engine () in
  let host = Host.create ~engine () in
  let sockets = Hashtbl.create (Stdlib.max 1 n) in
  for fd = 0 to n - 1 do
    Hashtbl.replace sockets fd (Socket.create_established ~host)
  done;
  (engine, host, sockets)

let test_pset_charge_matches_poll () =
  List.iter
    (fun n ->
      let engine, host, sockets = mk_loaded n in
      let lookup = Hashtbl.find_opt sockets in
      let interests = List.init n (fun fd -> (fd, Pollmask.pollin)) in
      let stateless () =
        Poll.wait ~host ~lookup ~interests ~timeout:(Some Time.zero) ~k:(fun _ -> ());
        Engine.run engine
      in
      let set = Poll.Pset.create ~host ~lookup () in
      List.iter (fun (fd, ev) -> Poll.Pset.set set fd ev) interests;
      let set_scan () =
        Poll.Pset.wait_set set ~timeout:(Some Time.zero) ~k:(fun _ -> ());
        Engine.run engine
      in
      let oracle = delta host stateless in
      Alcotest.check charge
        (Printf.sprintf "first pset scan, %d fds" n)
        oracle (delta host set_scan);
      (* Steady state: every fd idle-certified, charged via the batch. *)
      Alcotest.check charge
        (Printf.sprintf "steady pset scan, %d idle fds" n)
        oracle (delta host set_scan))
    loads

let test_sset_charge_matches_select () =
  List.iter
    (fun n ->
      let engine, host, sockets = mk_loaded n in
      let lookup = Hashtbl.find_opt sockets in
      let read = Fd_set.create () in
      for fd = 0 to n - 1 do
        Fd_set.set read fd
      done;
      let stateless () =
        Select.select ~host ~lookup ~read ~write:(Fd_set.create ())
          ~except:(Fd_set.copy read) ~timeout:(Some Time.zero) ~k:(fun _ -> ());
        Engine.run engine
      in
      let set = Select.Sset.create ~host ~lookup () in
      for fd = 0 to n - 1 do
        Select.Sset.add set fd Pollmask.pollin
      done;
      let set_scan () =
        Select.Sset.wait_sset set ~timeout:(Some Time.zero) ~k:(fun _ -> ());
        Engine.run engine
      in
      let oracle = delta host stateless in
      Alcotest.check charge
        (Printf.sprintf "first sset scan, %d fds" n)
        oracle (delta host set_scan);
      Alcotest.check charge
        (Printf.sprintf "steady sset scan, %d idle fds" n)
        oracle (delta host set_scan))
    loads

(* Devpoll has no surviving stateless twin, but its pre-PR steady
   state is a closed form: per entry one interest-hash op and one hint
   check, one hint_skip counted, no driver poll. The all-idle batch
   must charge exactly that on top of the empty-set call overhead. *)
let test_devpoll_steady_charge_formula () =
  let scan_of engine dev () =
    Devpoll.dp_poll dev ~max_results:64 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run engine
  in
  let overhead, _ =
    let engine, host, _ = mk_loaded 0 in
    let dev = Devpoll.create ~host ~lookup:(fun _ -> None) in
    delta host (scan_of engine dev)
  in
  List.iter
    (fun n ->
      let engine, host, sockets = mk_loaded n in
      let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
      Devpoll.write dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
      let scan = scan_of engine dev in
      ignore (delta host scan);
      (* first scan consults every driver *)
      let costs = host.Host.costs in
      let per_entry =
        Time.add costs.Cost_model.interest_hash_op costs.Cost_model.hint_check
      in
      let expected = (Time.add overhead (Time.mul per_entry n), (1, 0, n, 0)) in
      Alcotest.check charge
        (Printf.sprintf "steady DP_POLL scan, %d idle interests" n)
        expected (delta host scan);
      Alcotest.check charge
        (Printf.sprintf "steady DP_POLL scan again, %d idle interests" n)
        expected (delta host scan))
    loads

let suite =
  [
    QCheck_alcotest.to_alcotest prop_devpoll_churn;
    QCheck_alcotest.to_alcotest prop_pset_churn;
    QCheck_alcotest.to_alcotest prop_sset_churn;
    Alcotest.test_case "pset charge = poll() charge at {1,251,501}" `Quick
      test_pset_charge_matches_poll;
    Alcotest.test_case "sset charge = select() charge at {1,251,501}" `Quick
      test_sset_charge_matches_select;
    Alcotest.test_case "devpoll steady charge formula at {1,251,501}" `Quick
      test_devpoll_steady_charge_formula;
  ]
