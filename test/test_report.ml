(* Rendering smoke tests for the report layer (and the metric helpers
   it prints). *)

open Sio_sim
open Sio_loadgen

let mk_metrics ~rate ~avg ~err ~median_ms =
  let latency = Histogram.create () in
  Histogram.add latency (Time.of_sec_f (median_ms /. 1000.));
  {
    Metrics.target_rate = rate;
    attempted = 1000;
    completed = 900;
    errors =
      {
        Metrics.timeouts = 40;
        refused = 20;
        resets = 10;
        fd_limited = 0;
        port_limited = 0;
        truncated = 30;
      };
    reply_rate_avg = avg;
    reply_rate_sd = 5.;
    reply_rate_min = avg -. 10.;
    reply_rate_max = avg +. 10.;
    error_percent = err;
    latency;
    duration = Time.s 10;
  }

let mk_point rate =
  let metrics = mk_metrics ~rate ~avg:(float_of_int rate) ~err:10. ~median_ms:5. in
  {
    Sweep.rate;
    outcome =
      {
        Experiment.metrics;
        server_stats = Sio_httpd.Server_stats.create ();
        host_counters = Sio_kernel.Host.fresh_counters ();
        cpu_utilization = 0.5;
        inactive_established = 251;
        inactive_reopens = 0;
        final_mode = "devpoll";
        kernel_mem_peak = 0;
        host_rss_bytes = 0;
      };
  }

let render f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let series = { Report.label = "test-series"; points = [ mk_point 500; mk_point 600 ] }

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let test_total_errors () =
  let m = mk_metrics ~rate:500 ~avg:450. ~err:10. ~median_ms:5. in
  Alcotest.(check int) "sums all classes" 100 (Metrics.total_errors m.Metrics.errors)

let test_median_latency_ms () =
  let m = mk_metrics ~rate:500 ~avg:450. ~err:10. ~median_ms:5. in
  Alcotest.(check bool) "about 5ms" true (abs_float (Metrics.median_latency_ms m -. 5.) < 0.5)

let test_pp_table () =
  let out = render (fun ppf -> Report.pp_table ppf series) in
  Alcotest.(check bool) "label" true (contains out "test-series");
  Alcotest.(check bool) "header" true (contains out "median_ms");
  Alcotest.(check bool) "row 500" true (contains out "500");
  Alcotest.(check bool) "row 600" true (contains out "600")

let test_pp_chart () =
  let out = render (fun ppf -> Report.pp_reply_rate_chart ppf [ series ]) in
  Alcotest.(check bool) "axis label" true (contains out "target rate");
  Alcotest.(check bool) "legend" true (contains out "test-series");
  Alcotest.(check bool) "glyph plotted" true (contains out "*")

let test_pp_comparisons () =
  let err = render (fun ppf -> Report.pp_error_comparison ppf [ series ]) in
  Alcotest.(check bool) "error header" true (contains err "errors in percent");
  let lat = render (fun ppf -> Report.pp_latency_comparison ppf [ series ]) in
  Alcotest.(check bool) "latency header" true (contains lat "median connection time")

let test_pp_counters () =
  let out = render (fun ppf -> Report.pp_counters ppf (mk_point 700)) in
  Alcotest.(check bool) "mode shown" true (contains out "mode=devpoll");
  Alcotest.(check bool) "rate shown" true (contains out "rate=700")

let suite =
  [
    Alcotest.test_case "total_errors sums the classes" `Quick test_total_errors;
    Alcotest.test_case "median_latency_ms" `Quick test_median_latency_ms;
    Alcotest.test_case "pp_table" `Quick test_pp_table;
    Alcotest.test_case "pp_reply_rate_chart" `Quick test_pp_chart;
    Alcotest.test_case "pp comparisons" `Quick test_pp_comparisons;
    Alcotest.test_case "pp_counters" `Quick test_pp_counters;
  ]
