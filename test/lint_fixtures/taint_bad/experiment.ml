(* Carrier: the tainted measurement is stored in a record field, so
   the taint must survive a construction/projection round trip. *)
type outcome = { rate : int; rss : int }

let run rate = { rate; rss = Host_mem.rss_bytes () }
