(* Sink module: [csv_of_series] is a byte-identity sink, and its call
   region reaches the tainted [rss] field through [row]. *)
let row (o : Experiment.outcome) =
  string_of_int o.Experiment.rate ^ "," ^ string_of_int o.Experiment.rss

let csv_of_series outcomes = String.concat "\n" (List.map row outcomes)
