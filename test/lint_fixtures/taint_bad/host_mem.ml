(* Source module: reads procfs, so [rss_bytes] is host-dependent. *)
let page = 4096

let rss_bytes () =
  let ic = open_in "/proc/self/statm" in
  let v = int_of_string (input_line ic) in
  close_in ic;
  v * page
