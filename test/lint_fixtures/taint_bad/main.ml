(* Direct-argument violation: a host measurement handed straight to
   the sink as data. *)
let tag () = Host_mem.rss_bytes ()
let () = print_string (Report.csv_of_series [ Experiment.run (tag ()) ])
