(* Fixture: the conforming pattern. The raw slot is packed into an
   immutable generation-stamped handle at the alloc site; only the
   handle circulates, and every dereference revalidates the
   generation, so reuse of the row is detected instead of silently
   renaming the stored index. *)

type handle = { slot : int; generation : int }

let make arena =
  let slot = Conn_arena.alloc arena in
  { slot; generation = Conn_arena.generation arena slot }

let remember tbl arena name =
  let h = make arena in
  Hashtbl.replace tbl h.generation name;
  h
