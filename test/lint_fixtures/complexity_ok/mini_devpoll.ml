(* Fixture: a miniature /dev/poll backend whose annotations exactly
   match the inferred structural costs — the whole file must lint
   clean. [scan] certifies the paper's central shape: structural work
   O(active) via the iter_while early exits, while the skipped idle
   population is bulk-charged O(interests) *outside* the loop. *)

let charge_idle t count =
  ignore
    (Cost_model.charge_batch t.cpu ~cost:t.costs.driver_poll_callback ~count)

let[@complexity "O(active)"] scan t ~max_results =
  let total = Interest_table.length t.table in
  let remaining = ref (Fd_map.length t.active) in
  let visited = ref 0 in
  Interest_table.iter_while t.table ~f:(fun interest ->
      if Ready_buffer.length t.ready >= max_results then false
      else if !remaining = 0 then false
      else begin
        incr visited;
        if Fd_map.mem t.active interest.fd then begin
          decr remaining;
          ignore (Host.charge t.host t.costs.driver_poll_callback)
        end;
        true
      end);
  charge_idle t (total - !visited);
  Ready_buffer.length t.ready

let[@complexity "O(1)"] wait t ~k =
  ignore (Host.charge t.host t.costs.syscall_entry);
  Host.charge_run t.host ~cost:Time.zero (fun () -> k t.ready)
