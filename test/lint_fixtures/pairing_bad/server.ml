(* Leak: the reservation is acquired down a call chain and no release
   is ever mentioned in this file. *)
let admit host = Host.mem_reserve host 4096
let accept_one host = admit host
let () = ignore (accept_one ())
