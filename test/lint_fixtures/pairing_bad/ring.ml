(* Leak: a transmit ring is created down a call chain but this module
   never mentions destroying it. *)
let attach host = Zc_ring.create ~host ~slots:4 ~slot_bytes:4096
let accept_one host = attach host
let () = ignore (accept_one ())
