(* Dead release: a matching release exists but nothing references its
   home, so it can never run. *)
let watch s = ignore (Socket.add_watcher s)
let unused_teardown s = Socket.remove_watcher s
let () = ignore (watch ())
