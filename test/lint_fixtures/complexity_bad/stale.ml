(* Fixture: annotation drift in the other direction — the body is O(1)
   but the annotation still claims O(interests). A padded bound would
   quietly license a future regression up to the looser claim, so it
   is a finding too. A second binding carries an annotation the parser
   rejects outright. *)

let[@complexity "O(interests)"] lookup_one t fd = Interest_table.find t.table fd

let[@complexity "O(n^2)"] weird t = Interest_table.length t.table
