(* Fixture: the adversarial re-derivation of Devpoll.scan — claims the
   paper's O(active) bound but walks the ENTIRE interest table with no
   early exit, so the inferred structural cost is O(interests). The
   scan-complexity finding must name this loop and carry the full
   codeFlow to it. *)

let[@complexity "O(active)"] scan t ~max_results =
  ignore max_results;
  Interest_table.iter t.table (fun interest ->
      if Fd_map.mem t.active interest.fd then
        ignore (Host.charge t.host t.costs.driver_poll_callback));
  Ready_buffer.length t.ready
