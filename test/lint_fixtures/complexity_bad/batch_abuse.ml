(* Fixture: both ways to break DESIGN.md section 5's bulk-charging
   discipline. [rescan] is a certified path whose charge_batch sits
   INSIDE the O(active) loop — the skipped population is re-charged
   every iteration. [mystery_charge] bulk-charges a count with no
   inferable size class, certifying nothing about what was skipped. *)

let[@complexity "O(active)"] rescan t =
  Fd_map.iter t.active (fun _fd interest ->
      ignore interest;
      ignore
        (Cost_model.charge_batch t.cpu ~cost:t.costs.driver_poll_callback
           ~count:(Interest_table.length t.table)))

let mystery_charge t =
  ignore
    (Cost_model.charge_batch t.cpu ~cost:t.costs.driver_poll_callback
       ~count:(Mystery.size t))
