(* Fixture: callgraph resolution across modules.
   - [cross] names Alpha.helper explicitly: a cross-module edge.
   - [local] calls the unqualified [helper]: must stay file-local and
     resolve to Beta.helper, never leak to Alpha.helper.
   - [higher] applies a parameter: an unresolved head, no edge. *)
let helper z = z * 2
let cross n = Alpha.helper n
let local n = helper n
let higher f x = f x
