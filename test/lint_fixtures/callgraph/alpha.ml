(* Fixture: callgraph resolution — a direct same-module call, plus a
   [helper] that beta.ml shadows with its own definition. *)
let base x = x + 1
let helper y = base y
