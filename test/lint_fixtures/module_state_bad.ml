(* Fixture: unsynchronised module-level mutable state. *)
let next_id = ref 0
let table : (int, string) Hashtbl.t = Hashtbl.create 16
let scratch = Buffer.create 64

module Inner = struct
  let pending = Queue.create ()
end
