(* Fixture: module-level mutable declarations with no Domain_pool task
   in sight. Under the old per-file rule every one of these was
   flagged on declaration alone; the interprocedural rule stays silent
   until a write is reachable from a pool root (see race_bad/ for the
   firing case). Analyzed solo, this file must be clean. *)
let next_id = ref 0
let table : (int, string) Hashtbl.t = Hashtbl.create 16
let scratch = Buffer.create 64

module Inner = struct
  let pending = Queue.create ()
end
