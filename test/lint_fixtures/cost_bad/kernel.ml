(* Fixture: syscall entry points that never charge the CPU. *)
let listen proc ~backlog =
  ignore proc;
  ignore backlog;
  Ok 3

let free_syscall proc k = k proc
