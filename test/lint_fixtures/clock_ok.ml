(* Fixture: conforming uses — seeded Rng, simulated time, and the
   escape hatch for a host-side measurement. *)
let pick rng bound = Sio_sim.Rng.int rng bound
let now engine = Sio_sim.Engine.now engine

let wall_clock () =
  (Unix.gettimeofday () [@lint.ignore "host-side measurement, not simulation time"])
