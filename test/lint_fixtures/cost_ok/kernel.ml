(* Fixture: conforming syscall surface — every entry point charges,
   delegates with an audited annotation, or is not an entry point. *)
let enter proc extra = Host.charge proc extra

let listen proc ~backlog =
  ignore (enter proc backlog);
  Ok 3

let[@lint.ignore "charged in Poll.wait"] [@complexity "O(1)"] poll proc ~k = k proc
let helper x = x + 1
