(* Fixture: the delegation target that actually charges. *)
let wait proc fds =
  Host.charge proc (List.length fds);
  fds
