(* Fixture: a two-hop delegation chain — [set] charges only through
   [arm]. *)
let arm proc = Host.charge proc 1

let set proc fd =
  ignore fd;
  arm proc
