(* Fixture: syscall entry points that delegate their CPU charge to
   callees in other modules. No annotations — the interprocedural
   closure proves the charge: [poll] one hop into Poller.wait,
   [set_signal] two hops through Rt.set into Rt.arm. *)
let[@complexity "O(interests)"] poll proc ~fds = Poller.wait proc fds
let set_signal proc fd = Rt.set proc fd
