(* CSV carries only modeled quantities; the host measurement goes to
   the JSON side channel. A sorted Hashtbl enumeration is fine in the
   CSV path: the sort canonicalizes the order away. *)
let row (o : Experiment.outcome) = string_of_int o.Experiment.rate
let csv_of_series outcomes = String.concat "\n" (List.map row outcomes)

let csv_of_table t =
  let rates = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t []) in
  String.concat "\n" (List.map string_of_int rates)

let json_of (o : Experiment.outcome) =
  Printf.sprintf {|{"rate":%d,"host_rss_bytes":%d}|} o.Experiment.rate
    o.Experiment.host_rss
