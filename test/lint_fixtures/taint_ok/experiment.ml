(* The sanctioned shape: host measurements live in their own record
   field and only ever reach the JSON report, never the CSV. *)
type outcome = { rate : int; host_rss : int }

let run rate = { rate; host_rss = Host_mem.rss_bytes () }
