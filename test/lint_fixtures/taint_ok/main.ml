let () =
  let o = Experiment.run 100 in
  print_string (Report.csv_of_series [ o ]);
  print_string (Report.json_of o)
