(* Fixture: Hashtbl element order escapes unsorted. *)
let fds tbl = Hashtbl.fold (fun fd _ acc -> fd :: acc) tbl []

let dispatch tbl f = Hashtbl.iter (fun fd _ -> f fd) tbl

let sorted_too_late tbl =
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort compare rows
