(* Fixture: Hashtbl element order escapes unsorted. *)
let fds tbl = Hashtbl.fold (fun fd _ acc -> fd :: acc) tbl []

let dispatch tbl f = Hashtbl.iter (fun fd _ -> f fd) tbl

let sorted_too_late tbl =
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort compare rows

(* Rebuilding into an Fd_map only launders the order when it is the
   whole callback body; trailing code still observes the order. *)
let rebuild_and_log tbl dst =
  Hashtbl.iter
    (fun fd conn ->
      Fd_map.set dst fd conn;
      print_int fd)
    tbl
