(* Fixture: raw arena slots escaping into long-lived mutable storage.
   Each escape keeps a dense, reusable index alive past the alloc
   site, so after the connection is freed the stored slot silently
   names whatever connection reuses the row. *)

type conn_meta = { mutable slot_field : int }

let by_slot : (int, string) Hashtbl.t = Hashtbl.create 16
let last_slot = ref 0

let leak_into_hashtbl arena name =
  let slot = Conn_arena.alloc arena in
  Hashtbl.replace by_slot slot name

let leak_into_ref arena = last_slot := Conn_arena.alloc arena

let leak_into_field arena meta =
  let slot = Conn_arena.alloc arena in
  meta.slot_field <- slot
