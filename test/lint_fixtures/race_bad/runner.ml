(* Fixture: the Domain_pool task root — the closure passed to [map]
   mutates State's module-level bindings on every worker. *)
let run pool jobs =
  Sio_sim.Domain_pool.map pool
    ~f:(fun j ->
      State.bump ();
      State.record "job" j;
      j)
    jobs
