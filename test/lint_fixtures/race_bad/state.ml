(* Fixture: module-level mutable state written from Domain_pool task
   code (the writes are in runner.ml's task closure, reached through
   the call graph). [hidden] lives behind [include struct ... end] —
   state the per-file rule used to miss entirely. *)
include struct
  let hidden = ref 0
end

let counters : (string, int) Hashtbl.t = Hashtbl.create 8
let bump () = hidden := !hidden + 1
let record k v = Hashtbl.replace counters k v
