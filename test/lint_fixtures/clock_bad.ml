(* Fixture: every line below violates nondet-clock. *)
let now () = Unix.gettimeofday ()
let started_at = Unix.time ()
let cpu_seconds () = Sys.time ()
let jitter () = Random.float 1.0
let coin () = Random.bool ()
