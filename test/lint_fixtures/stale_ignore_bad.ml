(* Fixture: a suppression that outlived its hazard. The body used to
   enumerate a Hashtbl (hence the annotation); it now walks the
   ordered Fd_map, so removing the annotation produces zero findings —
   which makes the annotation itself the finding. *)
let[@lint.ignore "was: Hashtbl.iter order escaped; table since replaced by Fd_map"] sweep m f =
  Fd_map.iter f m
