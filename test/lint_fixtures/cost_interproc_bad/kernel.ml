(* Fixture: an entry point whose delegation target forgot its charge —
   the finding must name the resolved call path that stopped
   charging. *)
let[@complexity "O(1)"] poll proc ~fds = Npoll.wait proc fds
