(* Fixture: an entry point whose delegation target forgot its charge —
   the finding must name the resolved call path that stopped
   charging. *)
let poll proc ~fds = Npoll.wait proc fds
