(* Fixture: the callee kernel.ml delegates to; its charge was
   (deliberately) reverted. *)
let wait _proc fds = fds
