let watch s = ignore (Socket.add_watcher s)
let unwatch s = Socket.remove_watcher s

let () =
  let s = () in
  watch s;
  unwatch s
