(* Paired and live: both halves of both ring lifecycles share the file
   with their acquires and are reachable from the toplevel effect. *)
let attach host = Zc_ring.create ~host ~slots:4 ~slot_bytes:4096
let detach r = Zc_ring.destroy r
let pin r = ignore (Zc_ring.map r ~bytes:4096)
let complete r = ignore (Zc_ring.unmap r ~bytes:4096)

let () =
  match attach () with
  | Some r ->
      pin r;
      complete r;
      detach r
  | None -> ()
