(* Paired and live: the release shares the file with the acquire and
   is reachable from a toplevel effect. *)
let admit host = Host.mem_reserve host 4096
let evict host = Host.mem_release host 4096

let () =
  let host = () in
  if admit host then evict host
