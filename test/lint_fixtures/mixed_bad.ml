(* Fixture: one violation from each of two rules, for --rule
   filtering tests. *)
let seed () = Random.int 1000
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
