(* Fixture: conforming uses — the enumeration is sorted before the
   order can escape, or the site is annotated. *)
let fds tbl = List.sort compare (Hashtbl.fold (fun fd _ acc -> fd :: acc) tbl [])

let piped tbl = Hashtbl.fold (fun fd _ acc -> fd :: acc) tbl [] |> List.sort compare

let teardown tbl f =
  (Hashtbl.iter (fun fd _ -> f fd) tbl
  [@lint.ignore "teardown releases everything; order is not observable"])
