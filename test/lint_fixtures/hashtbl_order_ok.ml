(* Fixture: conforming uses — the enumeration is sorted before the
   order can escape, or the site is annotated. *)
let fds tbl = List.sort compare (Hashtbl.fold (fun fd _ acc -> fd :: acc) tbl [])

let piped tbl = Hashtbl.fold (fun fd _ acc -> fd :: acc) tbl [] |> List.sort compare

let teardown tbl f =
  (Hashtbl.iter (fun fd _ -> f fd) tbl
  [@lint.ignore "teardown releases everything; order is not observable"])

(* Pouring every element into an Fd_map canonicalizes the order away:
   the ordered container iterates ascending regardless of how it was
   filled, so the enumeration order cannot escape. *)
let rebuild tbl dst = Hashtbl.iter (fun fd conn -> Fd_map.set dst fd conn) tbl

let rebuild_qualified tbl dst =
  Hashtbl.fold (fun fd conn () -> Sio_sim.Fd_map.set dst fd conn) tbl ()
