(* Fixture: does not parse; the linter must report it rather than
   silently skip it. *)
let oops = (
