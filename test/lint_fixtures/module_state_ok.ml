(* Fixture: conforming module-level state — atomic, annotated, or
   simply immutable. *)
let next_id = Atomic.make 0

let[@lint.ignore "scratch buffer used only by the single render domain"] scratch =
  Buffer.create 64

let limit = 1024
let local_state () = ref 0
