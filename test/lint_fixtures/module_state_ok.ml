(* Fixture: conforming module-level state — atomic, immutable, local,
   or mutable-but-never-written-on-a-pool-path. [scratch] *is*
   written, but nothing in this file spawns Domain_pool tasks, so the
   interprocedural rule proves the write is confined; no annotation
   needed. *)
let next_id = Atomic.make 0
let scratch = Buffer.create 64
let render () = Buffer.add_string scratch "frame"
let limit = 1024
let local_state () = ref 0
