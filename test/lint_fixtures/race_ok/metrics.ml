(* Fixture: conforming module-level state under the interprocedural
   rule — an Atomic counter bumped from task code (sanctioned), a ref
   that tasks only read, and a Buffer written exclusively from
   [flush], which no Domain_pool root reaches. *)
let total = Atomic.make 0
let high_water = ref 0
let log = Buffer.create 64
let bump () = Atomic.incr total
let observe () = !high_water
let flush () = Buffer.add_string log "done"
