(* Fixture: the task closure only touches the atomic counter and a
   read-only ref; the Buffer write in Metrics.flush happens on an
   off-pool path ([finish] is not reachable from [run]). *)
let run pool jobs =
  Sio_sim.Domain_pool.map pool
    ~f:(fun j ->
      Metrics.bump ();
      Metrics.observe () + j)
    jobs

let finish () = Metrics.flush ()
