(* Tests of the public Scalanio event loop across its three backends. *)

open Sio_sim
open Sio_kernel

let mk_world () =
  let engine = Engine.create ~seed:13 () in
  let host = Host.create ~engine ~costs:Cost_model.zero () in
  let proc = Process.create ~host ~name:"app" () in
  (engine, host, proc)

let install_sock proc host =
  let s = Socket.create_established ~host in
  match Process.install_socket proc s with
  | Ok fd -> (fd, s)
  | Error `Emfile -> Alcotest.fail "install failed"

let backends =
  [
    ("poll", Scalanio.Event_loop.Poll);
    ("devpoll", Scalanio.Event_loop.default_devpoll);
    ("rtsig", Scalanio.Event_loop.Rt_signals { signo = Rt_signal.sigrtmin + 1; batch = 1 });
  ]

let test_dispatch_on_all_backends () =
  List.iter
    (fun (name, backend) ->
      let engine, host, proc = mk_world () in
      let fd, sock = install_sock proc host in
      let loop =
        match Scalanio.Event_loop.create ~proc ~backend with
        | Ok l -> l
        | Error `Emfile -> Alcotest.fail "loop create failed"
      in
      let fired = ref 0 in
      Scalanio.Event_loop.watch loop ~fd ~events:Pollmask.pollin (fun mask ->
          if Pollmask.intersects mask Pollmask.readable then begin
            incr fired;
            ignore (Socket.read_all sock)
          end);
      Scalanio.Event_loop.run loop;
      ignore
        (Engine.after engine (Time.ms 5) (fun () ->
             ignore (Socket.deliver sock ~bytes_len:10 ~payload:"x")));
      Engine.run ~until:(Time.ms 100) engine;
      Alcotest.(check int) (name ^ ": callback fired once") 1 !fired;
      Scalanio.Event_loop.stop loop)
    backends

let test_unwatch_stops_dispatch () =
  let engine, host, proc = mk_world () in
  let fd, sock = install_sock proc host in
  let loop =
    match Scalanio.Event_loop.create ~proc ~backend:Scalanio.Event_loop.default_devpoll with
    | Ok l -> l
    | Error `Emfile -> Alcotest.fail "create failed"
  in
  let fired = ref 0 in
  Scalanio.Event_loop.watch loop ~fd ~events:Pollmask.pollin (fun _ -> incr fired);
  Scalanio.Event_loop.unwatch loop fd;
  Alcotest.(check int) "watched_count" 0 (Scalanio.Event_loop.watched_count loop);
  Scalanio.Event_loop.run loop;
  ignore (Socket.deliver sock ~bytes_len:4 ~payload:"");
  Engine.run ~until:(Time.ms 50) engine;
  Alcotest.(check int) "no dispatch" 0 !fired;
  Scalanio.Event_loop.stop loop

let test_timers () =
  let engine, _, proc = mk_world () in
  let loop =
    match Scalanio.Event_loop.create ~proc ~backend:Scalanio.Event_loop.Poll with
    | Ok l -> l
    | Error `Emfile -> Alcotest.fail "create failed"
  in
  let once = ref 0 and ticks = ref 0 in
  ignore (Scalanio.Event_loop.add_timer loop ~after:(Time.ms 10) (fun () -> incr once));
  Scalanio.Event_loop.add_periodic loop ~every:(Time.ms 20) (fun () -> incr ticks);
  Scalanio.Event_loop.run loop;
  Engine.run ~until:(Time.ms 105) engine;
  Alcotest.(check int) "one-shot" 1 !once;
  Alcotest.(check int) "periodic ~5 ticks" 5 !ticks;
  Scalanio.Event_loop.stop loop;
  Engine.run ~until:(Time.ms 200) engine;
  Alcotest.(check int) "periodic stops with loop" 5 !ticks

let test_rtsig_overflow_recovery () =
  let engine, host, proc =
    let engine = Engine.create ~seed:13 () in
    let host = Host.create ~engine ~costs:Cost_model.zero () in
    let proc = Process.create ~host ~rt_queue_limit:3 ~name:"app" () in
    (engine, host, proc)
  in
  let socks = List.init 6 (fun _ -> install_sock proc host) in
  let loop =
    match
      Scalanio.Event_loop.create ~proc
        ~backend:(Scalanio.Event_loop.Rt_signals { signo = Rt_signal.sigrtmin + 2; batch = 1 })
    with
    | Ok l -> l
    | Error `Emfile -> Alcotest.fail "create failed"
  in
  let fired = Hashtbl.create 8 in
  List.iter
    (fun (fd, sock) ->
      Scalanio.Event_loop.watch loop ~fd ~events:Pollmask.pollin (fun _ ->
          Hashtbl.replace fired fd ();
          ignore (Socket.read_all sock)))
    socks;
  Scalanio.Event_loop.run loop;
  (* Burst: 6 edges into a queue of 3 -> overflow -> recovery poll must
     still find and dispatch every ready descriptor. *)
  ignore
    (Engine.after engine (Time.ms 1) (fun () ->
         List.iter (fun (_, s) -> ignore (Socket.deliver s ~bytes_len:8 ~payload:"")) socks));
  Engine.run ~until:(Time.ms 200) engine;
  Alcotest.(check int) "every socket dispatched" 6 (Hashtbl.length fired);
  Alcotest.(check bool) "recovery happened" true
    (Scalanio.Event_loop.overflow_recoveries loop >= 1);
  Scalanio.Event_loop.stop loop

(* Regression for the hashtbl-order lint rule: the recovery poll used
   to dispatch in Hashtbl.fold order, which is a function of the watch
   table's insertion history. Watch the same fd set in several
   insertion orders; the dispatch sequence must be identical (and the
   recovery portion ascending) every time. *)
let test_recovery_dispatch_order_invariant () =
  let n = 48 in
  let dispatch_order perm =
    let engine = Engine.create ~seed:13 () in
    let host = Host.create ~engine ~costs:Cost_model.zero () in
    let proc = Process.create ~host ~rt_queue_limit:2 ~name:"app" () in
    let socks = Array.init n (fun _ -> install_sock proc host) in
    let loop =
      match
        Scalanio.Event_loop.create ~proc
          ~backend:
            (Scalanio.Event_loop.Rt_signals { signo = Rt_signal.sigrtmin + 2; batch = 8 })
      with
      | Ok l -> l
      | Error `Emfile -> Alcotest.fail "create failed"
    in
    let order = ref [] in
    List.iter
      (fun i ->
        let fd, sock = socks.(i) in
        Scalanio.Event_loop.watch loop ~fd ~events:Pollmask.pollin (fun _ ->
            order := fd :: !order;
            ignore (Socket.read_all sock)))
      perm;
    Scalanio.Event_loop.run loop;
    ignore
      (Engine.after engine (Time.ms 1) (fun () ->
           Array.iter (fun (_, s) -> ignore (Socket.deliver s ~bytes_len:8 ~payload:"")) socks));
    Engine.run ~until:(Time.ms 200) engine;
    Alcotest.(check bool) "overflow recovery ran" true
      (Scalanio.Event_loop.overflow_recoveries loop >= 1);
    Scalanio.Event_loop.stop loop;
    List.rev !order
  in
  let identity = List.init n Fun.id in
  let shuffled =
    let rng = Rng.create ~seed:7 in
    let a = Array.of_list identity in
    Rng.shuffle rng a;
    Array.to_list a
  in
  let o1 = dispatch_order identity in
  let o2 = dispatch_order (List.rev identity) in
  let o3 = dispatch_order shuffled in
  Alcotest.(check bool) "every fd dispatched" true
    (List.length (List.sort_uniq compare o1) = n);
  Alcotest.(check (list int)) "reverse insertion: same dispatch order" o1 o2;
  Alcotest.(check (list int)) "shuffled insertion: same dispatch order" o1 o3

let test_create_validation () =
  let _, _, proc = mk_world () in
  let raised =
    try
      ignore
        (Scalanio.Event_loop.create ~proc
           ~backend:(Scalanio.Event_loop.Rt_signals { signo = 5; batch = 1 }));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad signo rejected" true raised

let suite =
  [
    Alcotest.test_case "dispatch on all backends" `Quick test_dispatch_on_all_backends;
    Alcotest.test_case "unwatch stops dispatch" `Quick test_unwatch_stops_dispatch;
    Alcotest.test_case "timers" `Quick test_timers;
    Alcotest.test_case "RT overflow recovery loses nothing" `Quick
      test_rtsig_overflow_recovery;
    Alcotest.test_case "recovery dispatch order ignores insertion order" `Quick
      test_recovery_dispatch_order_invariant;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
