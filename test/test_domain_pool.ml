open Sio_sim

let test_map_preserves_order () =
  Domain_pool.with_pool ~size:3 (fun pool ->
      let xs = List.init 50 Fun.id in
      let ys = Domain_pool.map pool ~f:(fun x -> x * x) xs in
      Alcotest.(check (list int)) "squares in order" (List.map (fun x -> x * x) xs) ys)

let test_map_empty_and_reuse () =
  Domain_pool.with_pool ~size:2 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Domain_pool.map pool ~f:(fun x -> x) []);
      (* The pool survives repeated maps. *)
      for i = 1 to 5 do
        let ys = Domain_pool.map pool ~f:(fun x -> x + i) [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "round" [ 1 + i; 2 + i; 3 + i ] ys
      done)

let test_more_tasks_than_workers () =
  Domain_pool.with_pool ~size:1 (fun pool ->
      let xs = List.init 200 Fun.id in
      let ys = Domain_pool.map pool ~f:(fun x -> 2 * x) xs in
      Alcotest.(check int) "all ran" 200 (List.length ys);
      Alcotest.(check (list int)) "ordered" (List.map (fun x -> 2 * x) xs) ys)

exception Boom of int

let test_exception_propagates () =
  Domain_pool.with_pool ~size:2 (fun pool ->
      let raised =
        try
          ignore
            (Domain_pool.map pool
               ~f:(fun x -> if x mod 2 = 1 then raise (Boom x) else x)
               [ 0; 1; 2; 3 ]);
          None
        with Boom x -> Some x
      in
      Alcotest.(check (option int)) "first failing index wins" (Some 1) raised;
      (* The pool is still usable after a failed map. *)
      Alcotest.(check (list int)) "pool alive" [ 10 ]
        (Domain_pool.map pool ~f:(fun x -> x) [ 10 ]))

let test_sizes () =
  Alcotest.(check bool) "default size >= 1" true (Domain_pool.default_size () >= 1);
  Domain_pool.with_pool ~size:4 (fun pool ->
      Alcotest.(check int) "explicit size" 4 (Domain_pool.size pool));
  Alcotest.check_raises "size 0 rejected"
    (Invalid_argument "Domain_pool.create: size must be >= 1") (fun () ->
      ignore (Domain_pool.create ~size:0 ()))

let test_shutdown_semantics () =
  let pool = Domain_pool.create ~size:2 () in
  Alcotest.(check (list int)) "works" [ 2 ] (Domain_pool.map pool ~f:(fun x -> x + 1) [ 1 ]);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Domain_pool.map: pool is shut down") (fun () ->
      ignore (Domain_pool.map pool ~f:(fun x -> x) [ 1 ]))

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "empty input and pool reuse" `Quick test_map_empty_and_reuse;
    Alcotest.test_case "more tasks than workers" `Quick test_more_tasks_than_workers;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "sizing rules" `Quick test_sizes;
    Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
  ]
