(* The zero-copy transmit ring: page accounting in Zc_ring itself,
   memory-budget admission, and the ring syscalls (ring_attach /
   ring_send) end to end against the TCP plumbing — including the
   cost-model claim the response-size figure rests on: per-page map
   charges undercut per-byte copy charges for page-scale payloads. *)

open Sio_sim
open Sio_kernel

let mk_host ?mem_limit () =
  let engine = Engine.create ~seed:7 () in
  Host.create ~engine ~costs:Cost_model.zero ?mem_limit ()

(* --- Zc_ring unit --- *)

let test_page_accounting () =
  let host = mk_host () in
  let r =
    match Zc_ring.create ~host ~slots:4 ~slot_bytes:4096 with
    | Some r -> r
    | None -> Alcotest.fail "create refused with unlimited memory"
  in
  Alcotest.(check int) "capacity" 16384 (Zc_ring.capacity r);
  Alcotest.(check int) "slot bytes" 4096 (Zc_ring.slot_bytes r);
  (* First byte of a page is what occupies it. *)
  Alcotest.(check int) "first map occupies one page" 1 (Zc_ring.map r ~bytes:100);
  Alcotest.(check int) "filling that page adds none" 0 (Zc_ring.map r ~bytes:3996);
  Alcotest.(check int) "one byte over occupies the next" 1 (Zc_ring.map r ~bytes:1);
  Alcotest.(check int) "pinned" 4097 (Zc_ring.pinned r);
  Alcotest.(check int) "cumulative pages" 2 (Zc_ring.pages_mapped r);
  Alcotest.(check int) "unmap frees whole pages crossed" 1 (Zc_ring.unmap r ~bytes:4096);
  Alcotest.(check int) "pinned after drain" 1 (Zc_ring.pinned r);
  Alcotest.(check int) "high water survives draining" 4097 (Zc_ring.high_water r);
  Zc_ring.destroy r

let test_map_clamps_to_capacity () =
  let host = mk_host () in
  let r = Option.get (Zc_ring.create ~host ~slots:4 ~slot_bytes:4096) in
  Alcotest.(check int) "oversized map pins full ring" 4 (Zc_ring.map r ~bytes:100_000);
  Alcotest.(check int) "pinned clamped" 16384 (Zc_ring.pinned r);
  Alcotest.(check int) "further map is a no-op" 0 (Zc_ring.map r ~bytes:1);
  Alcotest.(check int) "drain frees all pages" 4 (Zc_ring.unmap r ~bytes:100_000);
  Alcotest.(check int) "drain clamped to pinned" 0 (Zc_ring.pinned r);
  Zc_ring.destroy r

let test_memory_admission () =
  let host = mk_host ~mem_limit:8192 () in
  let r =
    match Zc_ring.create ~host ~slots:2 ~slot_bytes:4096 with
    | Some r -> r
    | None -> Alcotest.fail "fits the budget exactly"
  in
  Alcotest.(check int) "reservation visible" 8192 host.Host.mem_used;
  (match Zc_ring.create ~host ~slots:1 ~slot_bytes:4096 with
  | None -> ()
  | Some _ -> Alcotest.fail "budget exhausted, create must refuse");
  Zc_ring.destroy r;
  Alcotest.(check int) "destroy releases" 0 host.Host.mem_used;
  Zc_ring.destroy r;
  Alcotest.(check int) "destroy idempotent" 0 host.Host.mem_used;
  Alcotest.(check int) "dead ring maps nothing" 0 (Zc_ring.map r ~bytes:100);
  Alcotest.(check int) "dead ring unmaps nothing" 0 (Zc_ring.unmap r ~bytes:100)

let test_validation () =
  let host = mk_host () in
  Alcotest.check_raises "zero slots"
    (Invalid_argument "Zc_ring.create: slots must be positive") (fun () ->
      ignore (Zc_ring.create ~host ~slots:0 ~slot_bytes:4096));
  Alcotest.check_raises "zero slot bytes"
    (Invalid_argument "Zc_ring.create: slot_bytes must be positive") (fun () ->
      ignore (Zc_ring.create ~host ~slots:1 ~slot_bytes:0));
  let r = Option.get (Zc_ring.create ~host ~slots:1 ~slot_bytes:4096) in
  Alcotest.check_raises "negative map" (Invalid_argument "Zc_ring.map: negative size")
    (fun () -> ignore (Zc_ring.map r ~bytes:(-1)));
  Alcotest.check_raises "negative unmap" (Invalid_argument "Zc_ring.unmap: negative size")
    (fun () -> ignore (Zc_ring.unmap r ~bytes:(-1)));
  Zc_ring.destroy r

(* --- ring syscalls --- *)

(* An accepted connection under the default cost model, for syscall
   and cost assertions. *)
let accepted_conn ?mem_limit () =
  let engine = Engine.create ~seed:11 () in
  let host = Host.create ~engine ~costs:Cost_model.default ?mem_limit () in
  let net = Sio_net.Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:64 ~name:"srv" () in
  let listen_fd = Helpers.ok (Kernel.listen proc ~backlog:8) in
  let listener = Option.get (Process.lookup_socket proc listen_fd) in
  let conn = ref None in
  let received = ref 0 in
  let handlers =
    {
      Tcp.null_handlers with
      Tcp.on_established = (fun c -> conn := Some c);
      on_bytes = (fun _ n -> received := !received + n);
    }
  in
  ignore (Tcp.connect ~net ~listener ~handlers ());
  Engine.run engine;
  let fd, sock = Helpers.ok (Kernel.accept proc listen_fd) in
  (engine, host, proc, listen_fd, fd, sock, Option.get !conn, received)

let test_ring_attach_errors () =
  let _, _, proc, listen_fd, fd, _, _, _ = accepted_conn () in
  (match Kernel.ring_attach proc 99 ~slot_bytes:4096 with
  | Error `Ebadf -> ()
  | Ok () | Error _ -> Alcotest.fail "expected Ebadf");
  (match Kernel.ring_attach proc listen_fd ~slot_bytes:4096 with
  | Error `Einval -> ()
  | Ok () | Error _ -> Alcotest.fail "listener: expected Einval");
  (match Kernel.ring_attach proc fd ~slot_bytes:0 with
  | Error `Einval -> ()
  | Ok () | Error _ -> Alcotest.fail "slot_bytes 0: expected Einval")

let test_ring_send_requires_attach () =
  let _, _, proc, _, fd, _, _, _ = accepted_conn () in
  (match Kernel.ring_send proc fd ~bytes_len:4096 ~copy_bytes:0 with
  | Error `Einval -> ()
  | Ok _ | Error _ -> Alcotest.fail "no ring attached: expected Einval");
  ignore (Helpers.ok (Kernel.ring_attach proc fd ~slot_bytes:4096));
  (match Kernel.ring_send proc fd ~bytes_len:100 ~copy_bytes:200 with
  | Error `Einval -> ()
  | Ok _ | Error _ -> Alcotest.fail "copy_bytes > bytes_len: expected Einval");
  match Kernel.ring_send proc fd ~bytes_len:(-1) ~copy_bytes:0 with
  | Error `Einval -> ()
  | Ok _ | Error _ -> Alcotest.fail "negative length: expected Einval"

let test_ring_send_delivers_and_accounts_pages () =
  let engine, _, proc, _, fd, sock, _, received = accepted_conn () in
  ignore (Helpers.ok (Kernel.ring_attach proc fd ~slot_bytes:4096));
  Alcotest.(check bool) "attach idempotent" true
    (Kernel.ring_attach proc fd ~slot_bytes:4096 = Ok ());
  let sent = Helpers.ok (Kernel.ring_send proc fd ~bytes_len:16384 ~copy_bytes:0) in
  Alcotest.(check int) "all accepted" 16384 sent;
  let ring = Option.get (Socket.ring sock) in
  Alcotest.(check int) "four pages charged" 4 (Zc_ring.pages_mapped ring);
  Engine.run engine;
  Alcotest.(check int) "client received every byte" 16384 !received;
  Alcotest.(check int) "transmit completion unpinned the ring" 0 (Zc_ring.pinned ring)

let test_selective_copy_maps_only_the_body () =
  let _, _, proc, _, fd, sock, _, _ = accepted_conn () in
  ignore (Helpers.ok (Kernel.ring_attach proc fd ~slot_bytes:4096));
  (* 100 header bytes copy through the buffer; the remaining 8092
     pinned bytes span two pages. *)
  let sent = Helpers.ok (Kernel.ring_send proc fd ~bytes_len:8192 ~copy_bytes:100) in
  Alcotest.(check int) "all accepted" 8192 sent;
  let ring = Option.get (Socket.ring sock) in
  Alcotest.(check int) "only the mapped body occupies pages" 2
    (Zc_ring.pages_mapped ring);
  Alcotest.(check int) "pinned excludes the copied headers" 8092 (Zc_ring.pinned ring)

let test_ring_cheaper_than_copy_at_page_scale () =
  (* The figure's economics in one assertion: for a 16 KB payload,
     attach + per-page charges beat the per-byte copy (132 us vs
     410 us on the default model). *)
  let _, host_w, proc_w, _, fd_w, _, _, _ = accepted_conn () in
  let busy0 = Cpu.total_busy host_w.Host.cpu in
  ignore (Helpers.ok (Kernel.write proc_w fd_w ~bytes_len:16384));
  let copy_cost = Time.sub (Cpu.total_busy host_w.Host.cpu) busy0 in
  let _, host_r, proc_r, _, fd_r, _, _, _ = accepted_conn () in
  let busy0 = Cpu.total_busy host_r.Host.cpu in
  ignore (Helpers.ok (Kernel.ring_attach proc_r fd_r ~slot_bytes:4096));
  ignore (Helpers.ok (Kernel.ring_send proc_r fd_r ~bytes_len:16384 ~copy_bytes:0));
  let ring_cost = Time.sub (Cpu.total_busy host_r.Host.cpu) busy0 in
  Alcotest.(check bool)
    (Printf.sprintf "ring %dns < copy %dns" ring_cost copy_cost)
    true
    (ring_cost < copy_cost)

let test_reset_reports_econnreset () =
  let engine, _, proc, _, fd, _, client, _ = accepted_conn () in
  ignore (Helpers.ok (Kernel.ring_attach proc fd ~slot_bytes:4096));
  Tcp.client_abort client;
  Engine.run engine;
  (match Kernel.write proc fd ~bytes_len:100 with
  | Error `Econnreset -> ()
  | Ok _ | Error _ -> Alcotest.fail "write: expected Econnreset");
  (match Kernel.sendfile proc fd ~bytes_len:100 with
  | Error `Econnreset -> ()
  | Ok _ | Error _ -> Alcotest.fail "sendfile: expected Econnreset");
  match Kernel.ring_send proc fd ~bytes_len:100 ~copy_bytes:0 with
  | Error `Econnreset -> ()
  | Ok _ | Error _ -> Alcotest.fail "ring_send: expected Econnreset"

let test_attach_refused_when_budget_exhausted () =
  (* Measure the footprint of an accepted connection, then rebuild the
     world with a budget that fits the connection but not its ring. *)
  let _, host, proc, _, fd, _, _, _ = accepted_conn () in
  let baseline = host.Host.mem_used in
  ignore (Helpers.ok (Kernel.ring_attach proc fd ~slot_bytes:4096));
  let ring_bytes = host.Host.mem_used - baseline in
  Alcotest.(check bool) "ring reserves real bytes" true (ring_bytes > 0);
  ignore (Helpers.ok (Kernel.close proc fd));
  Alcotest.(check bool) "close releases conn and ring" true (host.Host.mem_used < baseline);
  let _, host2, proc2, _, fd2, _, _, _ =
    accepted_conn ~mem_limit:(baseline + ring_bytes - 1) ()
  in
  Alcotest.(check int) "same footprint" baseline host2.Host.mem_used;
  match Kernel.ring_attach proc2 fd2 ~slot_bytes:4096 with
  | Error `Enobufs -> ()
  | Ok () | Error _ -> Alcotest.fail "expected Enobufs"

let suite =
  [
    Alcotest.test_case "page accounting across map/unmap" `Quick test_page_accounting;
    Alcotest.test_case "map clamps to capacity" `Quick test_map_clamps_to_capacity;
    Alcotest.test_case "memory admission and idempotent destroy" `Quick
      test_memory_admission;
    Alcotest.test_case "argument validation" `Quick test_validation;
    Alcotest.test_case "ring_attach error cases" `Quick test_ring_attach_errors;
    Alcotest.test_case "ring_send requires an attached ring" `Quick
      test_ring_send_requires_attach;
    Alcotest.test_case "ring_send delivers and charges per page" `Quick
      test_ring_send_delivers_and_accounts_pages;
    Alcotest.test_case "selective copy maps only the body" `Quick
      test_selective_copy_maps_only_the_body;
    Alcotest.test_case "ring beats copy at page scale" `Quick
      test_ring_cheaper_than_copy_at_page_scale;
    Alcotest.test_case "reset connection reports ECONNRESET" `Quick
      test_reset_reports_econnreset;
    Alcotest.test_case "attach refused when budget exhausted" `Quick
      test_attach_refused_when_budget_exhausted;
  ]
