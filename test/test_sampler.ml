open Sio_sim

let test_nothing_recorded () =
  let s = Sampler.create ~interval:(Time.s 1) in
  Alcotest.(check (list (float 0.))) "no rates" [] (Sampler.rates s ~until:(Time.s 10))

let test_invalid_interval () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Sampler.create: non-positive interval") (fun () ->
      ignore (Sampler.create ~interval:0))

let test_single_interval_rate () =
  let s = Sampler.create ~interval:(Time.s 1) in
  for i = 1 to 100 do
    Sampler.record s ~now:(Time.ms (i * 5))
  done;
  (* 100 events in the first second -> 100/s; only complete intervals
     are reported. *)
  match Sampler.rates s ~until:(Time.ms 1500) with
  | [ r ] -> Alcotest.(check (float 1e-9)) "rate" 100.0 r
  | l -> Alcotest.failf "expected one interval, got %d" (List.length l)

let test_zero_intervals_reported () =
  let s = Sampler.create ~interval:(Time.s 1) in
  Sampler.record s ~now:(Time.ms 100);
  (* burst in interval 0, silence during intervals 1 and 2 *)
  Sampler.record s ~now:(Time.ms 200);
  match Sampler.rates s ~until:(Time.add (Time.ms 100) (Time.s 3)) with
  | [ a; b; c ] ->
      Alcotest.(check (float 1e-9)) "burst interval" 2.0 a;
      Alcotest.(check (float 1e-9)) "empty interval 1" 0.0 b;
      Alcotest.(check (float 1e-9)) "empty interval 2" 0.0 c
  | l -> Alcotest.failf "expected three intervals, got %d" (List.length l)

let test_origin_at_first_event () =
  let s = Sampler.create ~interval:(Time.s 1) in
  (* first event at t=10s: intervals are anchored there *)
  Sampler.record s ~now:(Time.s 10);
  Sampler.record s ~now:(Time.ms 10_500);
  match Sampler.rates s ~until:(Time.s 11) with
  | [ r ] -> Alcotest.(check (float 1e-9)) "anchored" 2.0 r
  | l -> Alcotest.failf "expected one interval, got %d" (List.length l)

let test_record_n () =
  let s = Sampler.create ~interval:(Time.ms 500) in
  Sampler.record_n s ~now:Time.zero 50;
  match Sampler.rates s ~until:(Time.ms 500) with
  | [ r ] -> Alcotest.(check (float 1e-9)) "batched rate" 100.0 r
  | l -> Alcotest.failf "expected one interval, got %d" (List.length l)

let prop_total_preserved =
  QCheck.Test.make ~name:"sum of interval counts = events recorded" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 0 10_000))
    (fun offsets_ms ->
      let offsets_ms = List.sort compare offsets_ms in
      let s = Sampler.create ~interval:(Time.s 1) in
      List.iter (fun o -> Sampler.record s ~now:(Time.ms o)) offsets_ms;
      let until = Time.add (Time.ms (List.nth offsets_ms (List.length offsets_ms - 1))) (Time.s 1) in
      let rates = Sampler.rates s ~until in
      let total = List.fold_left (fun acc r -> acc +. r) 0. rates in
      (* each rate is count/interval with interval = 1s *)
      int_of_float (Float.round total) = List.length offsets_ms)

let test_merge_aligned () =
  (* Two samplers sharing an origin: merged rates are element-wise
     sums, trailing buckets from the longer source preserved. *)
  let a = Sampler.create ~interval:(Time.s 1) in
  let b = Sampler.create ~interval:(Time.s 1) in
  Sampler.record_n a ~now:Time.zero 3;
  Sampler.record_n b ~now:Time.zero 5;
  Sampler.record_n b ~now:(Time.ms 2500) 7;
  Sampler.merge_into ~into:a b;
  Alcotest.(check (list (float 1e-9)))
    "summed" [ 8.; 0.; 7. ]
    (Sampler.rates a ~until:(Time.s 3));
  Alcotest.(check (list (float 1e-9)))
    "src unchanged" [ 5.; 0.; 7. ]
    (Sampler.rates b ~until:(Time.s 3))

let test_merge_rebases_to_earlier_origin () =
  (* Destination started later: its buckets must shift so the merged
     series is anchored at the earlier source origin. *)
  let late = Sampler.create ~interval:(Time.s 1) in
  let early = Sampler.create ~interval:(Time.s 1) in
  Sampler.record_n late ~now:(Time.s 2) 4;
  Sampler.record_n early ~now:Time.zero 1;
  Sampler.merge_into ~into:late early;
  Alcotest.(check (list (float 1e-9)))
    "rebased" [ 1.; 0.; 4. ]
    (Sampler.rates late ~until:(Time.s 3))

let test_merge_into_unstarted () =
  let into = Sampler.create ~interval:(Time.s 1) in
  let src = Sampler.create ~interval:(Time.s 1) in
  Sampler.record_n src ~now:(Time.s 1) 2;
  Sampler.merge_into ~into src;
  Alcotest.(check (list (float 1e-9)))
    "adopts src series" [ 2. ]
    (Sampler.rates into ~until:(Time.s 2))

let test_merge_interval_mismatch () =
  let a = Sampler.create ~interval:(Time.s 1) in
  let b = Sampler.create ~interval:(Time.ms 500) in
  Alcotest.check_raises "interval mismatch"
    (Invalid_argument "Sampler.merge_into: interval mismatch") (fun () ->
      Sampler.merge_into ~into:a b)

let prop_merge_preserves_total =
  QCheck.Test.make ~name:"merge preserves total count" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 50) (int_range 0 10_000))
        (list_of_size Gen.(1 -- 50) (int_range 0 10_000)))
    (fun (xs, ys) ->
      let feed offsets =
        let s = Sampler.create ~interval:(Time.s 1) in
        List.iter (fun o -> Sampler.record s ~now:(Time.ms o)) (List.sort compare offsets);
        s
      in
      let a = feed xs and b = feed ys in
      Sampler.merge_into ~into:a b;
      let until = Time.ms 20_000 in
      let total = List.fold_left ( +. ) 0. (Sampler.rates a ~until) in
      int_of_float (Float.round total) = List.length xs + List.length ys)

let suite =
  [
    Alcotest.test_case "empty sampler" `Quick test_nothing_recorded;
    Alcotest.test_case "interval validation" `Quick test_invalid_interval;
    Alcotest.test_case "single interval" `Quick test_single_interval_rate;
    Alcotest.test_case "zero intervals appear" `Quick test_zero_intervals_reported;
    Alcotest.test_case "origin anchored at first event" `Quick test_origin_at_first_event;
    Alcotest.test_case "record_n" `Quick test_record_n;
    Alcotest.test_case "merge aligned origins" `Quick test_merge_aligned;
    Alcotest.test_case "merge rebases destination" `Quick test_merge_rebases_to_earlier_origin;
    Alcotest.test_case "merge into unstarted" `Quick test_merge_into_unstarted;
    Alcotest.test_case "merge interval mismatch" `Quick test_merge_interval_mismatch;
    QCheck_alcotest.to_alcotest prop_total_preserved;
    QCheck_alcotest.to_alcotest prop_merge_preserves_total;
  ]
