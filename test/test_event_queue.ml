open Sio_sim

let test_schedule_pop_due () =
  let q = Event_queue.create () in
  let fired = ref [] in
  ignore (Event_queue.schedule q ~at:(Time.ms 5) (fun () -> fired := 5 :: !fired));
  ignore (Event_queue.schedule q ~at:(Time.ms 2) (fun () -> fired := 2 :: !fired));
  Alcotest.(check (option int)) "next_time" (Some (Time.ms 2)) (Event_queue.next_time q);
  (match Event_queue.pop_due q ~now:(Time.ms 3) with
  | Some action -> action ()
  | None -> Alcotest.fail "expected due event");
  Alcotest.(check (list int)) "earliest popped" [ 2 ] !fired;
  Alcotest.(check bool) "later not due" true (Event_queue.pop_due q ~now:(Time.ms 3) = None)

let test_negative_time_rejected () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.schedule: negative time")
    (fun () -> ignore (Event_queue.schedule q ~at:(-1) (fun () -> ())))

let test_cancel_semantics () =
  let q = Event_queue.create () in
  let h1 = Event_queue.schedule q ~at:(Time.ms 1) (fun () -> ()) in
  let h2 = Event_queue.schedule q ~at:(Time.ms 2) (fun () -> ()) in
  Alcotest.(check int) "two live" 2 (Event_queue.length q);
  Event_queue.cancel q h1;
  Alcotest.(check int) "one live" 1 (Event_queue.length q);
  Alcotest.(check bool) "h1 not pending" false (Event_queue.is_pending q h1);
  Alcotest.(check bool) "h2 pending" true (Event_queue.is_pending q h2);
  (* Double cancel is a no-op; the count must not underflow. *)
  Event_queue.cancel q h1;
  Alcotest.(check int) "still one" 1 (Event_queue.length q);
  (* Cancelled head is skipped transparently. *)
  Alcotest.(check (option int)) "next skips cancelled" (Some (Time.ms 2))
    (Event_queue.next_time q)

let prop_fifo_among_equal_times =
  QCheck.Test.make ~name:"events at one instant pop in schedule order" ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let q = Event_queue.create () in
      let fired = ref [] in
      for i = 0 to n - 1 do
        ignore (Event_queue.schedule q ~at:(Time.ms 1) (fun () -> fired := i :: !fired))
      done;
      let rec drain () =
        match Event_queue.pop_due q ~now:(Time.ms 1) with
        | Some action ->
            action ();
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !fired = List.init n Fun.id)

let prop_cancel_never_fires =
  QCheck.Test.make ~name:"cancelled events never pop" ~count:200
    QCheck.(list (pair (int_bound 100) bool))
    (fun specs ->
      let q = Event_queue.create () in
      let fired = Hashtbl.create 16 in
      let handles =
        List.mapi
          (fun i (at, cancel) ->
            let h = Event_queue.schedule q ~at (fun () -> Hashtbl.replace fired i ()) in
            (h, cancel))
          specs
      in
      List.iter (fun (h, cancel) -> if cancel then Event_queue.cancel q h) handles;
      let rec drain () =
        match Event_queue.pop_due q ~now:1000 with
        | Some action ->
            action ();
            drain ()
        | None -> ()
      in
      drain ();
      List.for_all2
        (fun (_, cancelled) i -> if cancelled then not (Hashtbl.mem fired i) else Hashtbl.mem fired i)
        handles
        (List.init (List.length handles) Fun.id))

(* Regression: a fired event's handle must answer false, not true —
   the old Hashtbl scheme forgot events once they fired and could not
   tell "fired" from "still pending". *)
let test_fired_event_not_pending () =
  let q = Event_queue.create () in
  let h = Event_queue.schedule q ~at:(Time.ms 1) (fun () -> ()) in
  Alcotest.(check bool) "pending before firing" true (Event_queue.is_pending q h);
  (match Event_queue.pop_due q ~now:(Time.ms 1) with
  | Some action -> action ()
  | None -> Alcotest.fail "expected due event");
  Alcotest.(check bool) "not pending after firing" false (Event_queue.is_pending q h);
  (* Cancelling a fired event is a no-op and must not underflow. *)
  Event_queue.cancel q h;
  Alcotest.(check int) "length stays 0" 0 (Event_queue.length q)

(* Regression: slot reuse. A stale handle to a fired event must not be
   able to cancel the unrelated event that now occupies its slot. *)
let test_stale_handle_cannot_touch_reused_slot () =
  let q = Event_queue.create ~initial_capacity:1 () in
  let h1 = Event_queue.schedule q ~at:(Time.ms 1) (fun () -> ()) in
  (match Event_queue.pop_due q ~now:(Time.ms 1) with
  | Some action -> action ()
  | None -> Alcotest.fail "expected due event");
  let fired = ref false in
  let h2 = Event_queue.schedule q ~at:(Time.ms 2) (fun () -> fired := true) in
  Event_queue.cancel q h1;
  (* stale: must not hit h2's slot *)
  Alcotest.(check bool) "h2 still pending" true (Event_queue.is_pending q h2);
  Alcotest.(check bool) "h1 stale" false (Event_queue.is_pending q h1);
  Alcotest.(check int) "one live" 1 (Event_queue.length q);
  (match Event_queue.pop_due q ~now:(Time.ms 2) with
  | Some action -> action ()
  | None -> Alcotest.fail "h2 must still fire");
  Alcotest.(check bool) "h2 fired" true !fired

(* Model-based property: random schedule/cancel/pop interleavings on
   the generation-stamped queue match a naive reference model (a list
   scanned for the earliest (time, seq) pending event). *)
type model_event = {
  idx : int;
  at : Time.t;
  handle : Event_queue.handle;
  mutable cancelled : bool;
  mutable fired : bool;
}

let prop_matches_reference_model =
  QCheck.Test.make ~name:"random interleavings match a reference model" ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let q = Event_queue.create ~initial_capacity:1 () in
      let model = ref [] (* newest first *) in
      let now = ref 0 in
      let last_fired = ref (-1) in
      let live () = List.length (List.filter (fun e -> not (e.cancelled || e.fired)) !model) in
      let ok = ref true in
      let expect cond = if not cond then ok := false in
      List.iter
        (fun (op, arg) ->
          (match op with
          | 0 ->
              (* schedule at an arbitrary non-negative time *)
              let idx = List.length !model in
              let at = arg in
              let handle = Event_queue.schedule q ~at (fun () -> last_fired := idx) in
              model := { idx; at; handle; cancelled = false; fired = false } :: !model
          | 1 -> (
              (* cancel an arbitrary previously issued handle, live or stale *)
              match !model with
              | [] -> ()
              | evs ->
                  let e = List.nth evs (arg mod List.length evs) in
                  Event_queue.cancel q e.handle;
                  if not (e.cancelled || e.fired) then e.cancelled <- true)
          | _ -> (
              (* advance time and pop one due event *)
              now := !now + arg;
              let expected =
                List.fold_left
                  (fun best e ->
                    if e.cancelled || e.fired || e.at > !now then best
                    else
                      match best with
                      | Some b
                        when b.at < e.at || (b.at = e.at && b.idx < e.idx) ->
                          best
                      | _ -> Some e)
                  None !model
              in
              match (Event_queue.pop_due q ~now:!now, expected) with
              | None, None -> ()
              | Some action, Some e ->
                  action ();
                  expect (!last_fired = e.idx);
                  e.fired <- true
              | Some _, None | None, Some _ -> expect false));
          (* after every op the queue and the model agree everywhere *)
          expect (Event_queue.length q = live ());
          List.iter
            (fun e ->
              expect
                (Event_queue.is_pending q e.handle = not (e.cancelled || e.fired)))
            !model)
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "schedule and pop_due" `Quick test_schedule_pop_due;
    Alcotest.test_case "negative time rejected" `Quick test_negative_time_rejected;
    Alcotest.test_case "cancel semantics" `Quick test_cancel_semantics;
    Alcotest.test_case "fired events are not pending" `Quick test_fired_event_not_pending;
    Alcotest.test_case "stale handles cannot touch reused slots" `Quick
      test_stale_handle_cannot_touch_reused_slot;
    QCheck_alcotest.to_alcotest prop_fifo_among_equal_times;
    QCheck_alcotest.to_alcotest prop_cancel_never_fires;
    QCheck_alcotest.to_alcotest prop_matches_reference_model;
  ]
