open Sio_sim

let int_heap () = Heap.create ~leq:(fun (a : int) b -> a <= b) ()

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_pop_exn_empty () =
  let h = int_heap () in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_single () =
  let h = int_heap () in
  Heap.push h 7;
  Alcotest.(check (option int)) "peek" (Some 7) (Heap.peek h);
  Alcotest.(check int) "length" 1 (Heap.length h);
  Alcotest.(check (option int)) "pop" (Some 7) (Heap.pop h);
  Alcotest.(check bool) "empty after pop" true (Heap.is_empty h)

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 3; 9; 1; 7; 2; 8; 4; 6; 0 ];
  let popped = List.init 10 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] popped

let test_duplicates () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 2; 1; 2; 1; 2 ];
  let popped = List.init 5 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 2 ] popped

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 5;
  Heap.push h 1;
  Alcotest.(check (option int)) "pop1" (Some 1) (Heap.pop h);
  Heap.push h 3;
  Heap.push h 0;
  Alcotest.(check (option int)) "pop2" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "pop3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop4" (Some 5) (Heap.pop h)

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Heap.pop h)

let test_to_list () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  let l = List.sort compare (Heap.to_list h) in
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] l;
  Alcotest.(check int) "length unchanged" 3 (Heap.length h)

let test_growth () =
  let h = Heap.create ~initial_capacity:2 ~leq:(fun (a : int) b -> a <= b) () in
  for i = 999 downto 0 do
    Heap.push h i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  for i = 0 to 999 do
    Alcotest.(check int) (Printf.sprintf "pop %d" i) i (Heap.pop_exn h)
  done

let prop_heap_sort =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = int_heap () in
      List.iter (Heap.push h) l;
      let popped = List.init (List.length l) (fun _ -> Heap.pop_exn h) in
      popped = List.sort compare l)

let prop_heap_mixed_ops =
  QCheck.Test.make ~name:"heap invariant under mixed push/pop" ~count:200
    QCheck.(list (option small_nat))
    (fun ops ->
      (* [Some n] pushes n, [None] pops; compare against a sorted-list model. *)
      let h = int_heap () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Some n ->
              Heap.push h n;
              model := List.sort compare (n :: !model)
          | None -> (
              let got = Heap.pop h in
              match !model with
              | [] -> assert (got = None)
              | m :: rest ->
                  assert (got = Some m);
                  model := rest))
        ops;
      Heap.length h = List.length !model)

(* Vacated slots must not pin popped elements: a heap that lives for
   the whole run (the engine's event queue) would otherwise leak every
   closure it ever dispatched. *)
let weak_of push_use =
  let w = Weak.create 3 in
  (* Allocate inside a closure so no stack root outlives the calls. *)
  (fun () ->
    let h = Heap.create ~leq:(fun (a : int ref) b -> !a <= !b) () in
    for i = 0 to 2 do
      let v = ref i in
      Weak.set w i (Some v);
      Heap.push h v
    done;
    push_use h)
    ();
  Gc.full_major ();
  List.init 3 (fun i -> Weak.check w i)

let test_pop_releases () =
  let live = weak_of (fun h -> for _ = 1 to 3 do ignore (Heap.pop h) done) in
  Alcotest.(check (list bool)) "all popped elements collected" [ false; false; false ] live

let test_clear_releases () =
  let live = weak_of Heap.clear in
  Alcotest.(check (list bool)) "all cleared elements collected" [ false; false; false ] live

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop_exn on empty raises" `Quick test_pop_exn_empty;
    Alcotest.test_case "single element" `Quick test_single;
    Alcotest.test_case "pops in order" `Quick test_ordering;
    Alcotest.test_case "duplicates preserved" `Quick test_duplicates;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear resets" `Quick test_clear;
    Alcotest.test_case "to_list snapshots" `Quick test_to_list;
    Alcotest.test_case "grows past capacity" `Quick test_growth;
    Alcotest.test_case "pop releases elements" `Quick test_pop_releases;
    Alcotest.test_case "clear releases elements" `Quick test_clear_releases;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_heap_mixed_ops;
  ]
