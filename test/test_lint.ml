(* Golden tests for Sio_analysis (`bin/sio_lint`): each rule has a
   violating and a conforming fixture under [lint_fixtures/]; the
   violating one must produce exactly the expected findings (file,
   line, col, rule, message) and the conforming one none. *)

open Sio_analysis

let fx name = Filename.concat "lint_fixtures" name
let render path = List.map Finding.to_string (Driver.analyze_file (fx path))

let check_clean name file () =
  Alcotest.(check (list string)) (name ^ " is clean") [] (render file)

(* --- rule registry ------------------------------------------------- *)

let test_rule_registry () =
  Alcotest.(check (list string))
    "rule ids"
    [ "nondet-clock"; "hashtbl-order"; "module-state"; "syscall-cost" ]
    (List.map (fun r -> r.Rule.id) Driver.all_rules);
  List.iter
    (fun r -> Alcotest.(check bool) (r.Rule.id ^ " has doc") true (r.Rule.doc <> ""))
    Driver.all_rules

(* --- nondet-clock -------------------------------------------------- *)

let clock_msg what =
  what ^ " reads the host clock; simulation-visible time must come from Sio_sim.Time / Engine.now."

let random_msg what =
  what
  ^ " draws from the global Random state; runs stop being a pure function of their seed. Use Sio_sim.Rng."

let test_clock_bad () =
  Alcotest.(check (list string))
    "clock_bad findings"
    [
      Printf.sprintf "lint_fixtures/clock_bad.ml:2:13: nondet-clock: %s"
        (clock_msg "Unix.gettimeofday");
      Printf.sprintf "lint_fixtures/clock_bad.ml:3:17: nondet-clock: %s"
        (clock_msg "Unix.time");
      Printf.sprintf "lint_fixtures/clock_bad.ml:4:21: nondet-clock: %s"
        (clock_msg "Sys.time");
      Printf.sprintf "lint_fixtures/clock_bad.ml:5:16: nondet-clock: %s"
        (random_msg "Random.float");
      Printf.sprintf "lint_fixtures/clock_bad.ml:6:14: nondet-clock: %s"
        (random_msg "Random.bool");
    ]
    (render "clock_bad.ml")

(* --- hashtbl-order ------------------------------------------------- *)

let order_msg f =
  "Hashtbl." ^ f
  ^ " element order can escape into simulation-visible behaviour; sort the result immediately, rebuild into an ordered Fd_map, or annotate [@lint.ignore \"reason\"]."

let test_hashtbl_bad () =
  Alcotest.(check (list string))
    "hashtbl_order_bad findings"
    [
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:2:14: hashtbl-order: %s"
        (order_msg "fold");
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:4:21: hashtbl-order: %s"
        (order_msg "iter");
      (* Sorting on the *next* line is still a violation: the rule is
         syntactic, the sort must wrap the enumeration. *)
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:7:13: hashtbl-order: %s"
        (order_msg "fold");
      (* An Fd_map rebuild with trailing code is still a violation:
         the rebuild must be the whole callback body. *)
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:13:2: hashtbl-order: %s"
        (order_msg "iter");
    ]
    (render "hashtbl_order_bad.ml")

(* --- module-state -------------------------------------------------- *)

let state_msg name ctor =
  Printf.sprintf
    "module-level mutable state `%s` (%s) is unsynchronised across Domain_pool workers; use Atomic.t or annotate [@lint.ignore \"reason\"]."
    name ctor

let test_module_state_bad () =
  Alcotest.(check (list string))
    "module_state_bad findings"
    [
      Printf.sprintf "lint_fixtures/module_state_bad.ml:2:0: module-state: %s"
        (state_msg "next_id" "ref");
      Printf.sprintf "lint_fixtures/module_state_bad.ml:3:0: module-state: %s"
        (state_msg "table" "Hashtbl.create");
      Printf.sprintf "lint_fixtures/module_state_bad.ml:4:0: module-state: %s"
        (state_msg "scratch" "Buffer.create");
      (* Nested modules are still module-level state. *)
      Printf.sprintf "lint_fixtures/module_state_bad.ml:7:2: module-state: %s"
        (state_msg "pending" "Queue.create");
    ]
    (render "module_state_bad.ml")

(* --- syscall-cost -------------------------------------------------- *)

let cost_msg name =
  Printf.sprintf
    "syscall entry point `%s` never charges the CPU; add a charge (enter/Host.charge/Cpu.consume) or annotate [@lint.ignore \"charged in <callee>\"]."
    name

let test_cost_bad () =
  Alcotest.(check (list string))
    "cost_bad findings"
    [
      Printf.sprintf "lint_fixtures/cost_bad/kernel.ml:2:0: syscall-cost: %s"
        (cost_msg "listen");
      Printf.sprintf "lint_fixtures/cost_bad/kernel.ml:7:0: syscall-cost: %s"
        (cost_msg "free_syscall");
    ]
    (render "cost_bad/kernel.ml")

let test_cost_only_kernel_ml () =
  (* The rule keys on the file name: the same source under another
     name is out of scope. *)
  let str = Driver.parse_impl (fx "cost_bad/kernel.ml") in
  Alcotest.(check int)
    "not applied outside kernel.ml" 0
    (List.length (Rule_syscall_cost.rule.Rule.check ~path:"lint_fixtures/other.ml" str))

(* --- rule selection, parse errors, JSON ---------------------------- *)

let test_rule_filter () =
  let only id =
    match Driver.find_rule id with Some r -> [ r ] | None -> Alcotest.fail ("no rule " ^ id)
  in
  let rules_of rules file =
    List.map (fun f -> f.Finding.rule) (Driver.analyze_file ~rules (fx file))
  in
  Alcotest.(check (list string))
    "only nondet-clock" [ "nondet-clock" ]
    (rules_of (only "nondet-clock") "mixed_bad.ml");
  Alcotest.(check (list string))
    "only hashtbl-order" [ "hashtbl-order" ]
    (rules_of (only "hashtbl-order") "mixed_bad.ml");
  Alcotest.(check bool) "unknown rule" true (Driver.find_rule "no-such-rule" = None)

let test_parse_error () =
  match Driver.analyze_file (fx "broken_syntax.ml") with
  | [ f ] ->
      Alcotest.(check string) "rule" "parse-error" f.Finding.rule;
      Alcotest.(check string) "file" "lint_fixtures/broken_syntax.ml" f.Finding.file;
      Alcotest.(check int) "line" 1 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one parse-error finding, got %d" (List.length fs)

let test_json () =
  let f =
    { Finding.file = "a \"b\".ml"; line = 3; col = 7; rule = "nondet-clock"; message = "x\ny" }
  in
  Alcotest.(check string)
    "json escaping"
    {|{"file":"a \"b\".ml","line":3,"col":7,"rule":"nondet-clock","message":"x\ny"}|}
    (Finding.to_json f)

let test_paths_sorted () =
  (* Directory enumeration must not leak into output order: findings
     come back sorted by (file, line, col). Compare positional keys,
     not rendered strings — line 13 sorts before line 2 as a string. *)
  let fs = Driver.analyze_paths [ "lint_fixtures" ] in
  let keys = List.map (fun f -> (f.Finding.file, f.Finding.line, f.Finding.col)) fs in
  Alcotest.(check bool) "sorted" true (List.sort compare keys = keys);
  Alcotest.(check bool) "found fixture violations" true (List.length fs > 10)

let suite =
  [
    Alcotest.test_case "rule registry" `Quick test_rule_registry;
    Alcotest.test_case "nondet-clock: violations" `Quick test_clock_bad;
    Alcotest.test_case "nondet-clock: conforming" `Quick (check_clean "clock_ok" "clock_ok.ml");
    Alcotest.test_case "hashtbl-order: violations" `Quick test_hashtbl_bad;
    Alcotest.test_case "hashtbl-order: conforming" `Quick
      (check_clean "hashtbl_order_ok" "hashtbl_order_ok.ml");
    Alcotest.test_case "module-state: violations" `Quick test_module_state_bad;
    Alcotest.test_case "module-state: conforming" `Quick
      (check_clean "module_state_ok" "module_state_ok.ml");
    Alcotest.test_case "syscall-cost: violations" `Quick test_cost_bad;
    Alcotest.test_case "syscall-cost: conforming" `Quick
      (check_clean "cost_ok" "cost_ok/kernel.ml");
    Alcotest.test_case "syscall-cost: scoped to kernel.ml" `Quick test_cost_only_kernel_ml;
    Alcotest.test_case "--rule filtering" `Quick test_rule_filter;
    Alcotest.test_case "parse errors are findings" `Quick test_parse_error;
    Alcotest.test_case "json output" `Quick test_json;
    Alcotest.test_case "findings sorted across files" `Quick test_paths_sorted;
  ]
