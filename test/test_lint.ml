(* Golden tests for Sio_analysis (`bin/sio_lint`): each rule has a
   violating and a conforming fixture under [lint_fixtures/]; the
   violating one must produce exactly the expected findings (file,
   line, col, rule, message) and the conforming one none. The
   interprocedural rules (syscall-cost, module-state, stale-ignore)
   additionally get multi-file fixture directories exercised through
   [Driver.analyze_paths], plus structural goldens for the call graph
   itself and a qcheck property for the reachability fixpoint. *)

open Sio_analysis

let fx name = Filename.concat "lint_fixtures" name
let render path = List.map Finding.to_string (Driver.analyze_file (fx path))
let render_paths paths = List.map Finding.to_string (Driver.analyze_paths (List.map fx paths))

let check_clean name file () =
  Alcotest.(check (list string)) (name ^ " is clean") [] (render file)

let check_clean_paths name paths () =
  Alcotest.(check (list string)) (name ^ " is clean") [] (render_paths paths)

(* --- rule registry ------------------------------------------------- *)

let test_rule_registry () =
  Alcotest.(check (list string))
    "rule ids"
    [
      "nondet-clock";
      "hashtbl-order";
      "module-state";
      "syscall-cost";
      "arena-slot";
      "nondet-taint";
      "resource-pairing";
      "scan-complexity";
      "charge-linearity";
      "stale-ignore";
    ]
    (List.map (fun r -> r.Rule.id) Driver.all_rules);
  List.iter
    (fun r -> Alcotest.(check bool) (r.Rule.id ^ " has doc") true (r.Rule.doc <> ""))
    Driver.all_rules

(* --- nondet-clock -------------------------------------------------- *)

let clock_msg what =
  what ^ " reads the host clock; simulation-visible time must come from Sio_sim.Time / Engine.now."

let random_msg what =
  what
  ^ " draws from the global Random state; runs stop being a pure function of their seed. Use Sio_sim.Rng."

let test_clock_bad () =
  Alcotest.(check (list string))
    "clock_bad findings"
    [
      Printf.sprintf "lint_fixtures/clock_bad.ml:2:13: nondet-clock: %s"
        (clock_msg "Unix.gettimeofday");
      Printf.sprintf "lint_fixtures/clock_bad.ml:3:17: nondet-clock: %s"
        (clock_msg "Unix.time");
      Printf.sprintf "lint_fixtures/clock_bad.ml:4:21: nondet-clock: %s"
        (clock_msg "Sys.time");
      Printf.sprintf "lint_fixtures/clock_bad.ml:5:16: nondet-clock: %s"
        (random_msg "Random.float");
      Printf.sprintf "lint_fixtures/clock_bad.ml:6:14: nondet-clock: %s"
        (random_msg "Random.bool");
    ]
    (render "clock_bad.ml")

(* --- hashtbl-order ------------------------------------------------- *)

let order_msg f =
  "Hashtbl." ^ f
  ^ " element order can escape into simulation-visible behaviour; sort the result immediately, rebuild into an ordered Fd_map, or annotate [@lint.ignore \"reason\"]."

let test_hashtbl_bad () =
  Alcotest.(check (list string))
    "hashtbl_order_bad findings"
    [
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:2:14: hashtbl-order: %s"
        (order_msg "fold");
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:4:21: hashtbl-order: %s"
        (order_msg "iter");
      (* Sorting on the *next* line is still a violation: the rule is
         syntactic, the sort must wrap the enumeration. *)
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:7:13: hashtbl-order: %s"
        (order_msg "fold");
      (* An Fd_map rebuild with trailing code is still a violation:
         the rebuild must be the whole callback body. *)
      Printf.sprintf "lint_fixtures/hashtbl_order_bad.ml:13:2: hashtbl-order: %s"
        (order_msg "iter");
    ]
    (render "hashtbl_order_bad.ml")

(* --- module-state (interprocedural race check) --------------------- *)

(* Declarations alone no longer fire: the rule needs a write reachable
   from a Domain_pool root, and neither file has one. *)
let test_module_state_decls_clean =
  check_clean "module_state_bad (declarations only, no pool in sight)" "module_state_bad.ml"

let race_msg ~name ~ctor ~writer ~wfile ~wline ~op ~root =
  Printf.sprintf
    "module-level mutable state `%s` (%s) is written on a Domain_pool-reachable path: `%s` (%s:%d, %s) runs in task code reachable from `%s`; use Atomic.t or annotate the binding [@lint.ignore \"reason\"]."
    name ctor writer wfile wline op root

let test_race_bad () =
  Alcotest.(check (list string))
    "race_bad findings"
    [
      (* [hidden] sits behind [include struct ... end] — the index must
         still see it (the per-file rule used to skip include bodies). *)
      Printf.sprintf "lint_fixtures/race_bad/state.ml:6:2: module-state: %s"
        (race_msg ~name:"hidden" ~ctor:"ref" ~writer:"State.bump"
           ~wfile:"lint_fixtures/race_bad/state.ml" ~wline:10 ~op:":="
           ~root:"Runner.run");
      Printf.sprintf "lint_fixtures/race_bad/state.ml:9:0: module-state: %s"
        (race_msg ~name:"counters" ~ctor:"Hashtbl.create" ~writer:"State.record"
           ~wfile:"lint_fixtures/race_bad/state.ml" ~wline:11 ~op:"Hashtbl.replace"
           ~root:"Runner.run");
    ]
    (render_paths [ "race_bad" ])

(* --- syscall-cost (interprocedural charge proof) ------------------- *)

let cost_msg name checked =
  Printf.sprintf
    "syscall entry point `%s` never charges the CPU on any resolved call path (%s); add a charge (enter/Host.charge/Cpu.consume) or delegate to a callee that charges."
    name checked

let test_cost_bad () =
  Alcotest.(check (list string))
    "cost_bad findings"
    [
      Printf.sprintf "lint_fixtures/cost_bad/kernel.ml:2:0: syscall-cost: %s"
        (cost_msg "listen" "no resolved callees to delegate to");
      Printf.sprintf "lint_fixtures/cost_bad/kernel.ml:7:0: syscall-cost: %s"
        (cost_msg "free_syscall" "no resolved callees to delegate to");
    ]
    (render "cost_bad/kernel.ml")

(* Reverting the charge in a delegation target must surface at the
   entry point, naming the call path that stopped charging. *)
let test_cost_interproc_bad () =
  Alcotest.(check (list string))
    "cost_interproc_bad findings"
    [
      Printf.sprintf "lint_fixtures/cost_interproc_bad/kernel.ml:4:0: syscall-cost: %s"
        (cost_msg "poll" "delegations checked: poll -> Npoll.wait");
    ]
    (render_paths [ "cost_interproc_bad" ])

let test_cost_only_kernel_ml () =
  (* The rule keys on the file name: the same source under another
     name is out of scope. *)
  let str = Driver.parse_impl (fx "cost_bad/kernel.ml") in
  let ctx = Context.of_file "lint_fixtures/other.ml" str in
  Alcotest.(check int)
    "not applied outside kernel.ml" 0
    (List.length (Rule_syscall_cost.rule.Rule.check ~ctx ~path:"lint_fixtures/other.ml" str))

(* --- arena-slot ---------------------------------------------------- *)

let slot_msg what =
  "a raw Conn_arena slot escapes into " ^ what
  ^ "; slots are reused after free, so the stored index silently renames itself to a later connection. Pack (slot, generation) into an immutable handle at the alloc site, or annotate [@lint.ignore \"reason\"]."

let test_arena_slot_bad () =
  Alcotest.(check (list string))
    "arena_slot_bad findings"
    [
      Printf.sprintf "lint_fixtures/arena_slot_bad.ml:13:26: arena-slot: %s"
        (slot_msg "a Hashtbl argument");
      Printf.sprintf "lint_fixtures/arena_slot_bad.ml:15:39: arena-slot: %s"
        (slot_msg "a ref cell");
      Printf.sprintf "lint_fixtures/arena_slot_bad.ml:19:21: arena-slot: %s"
        (slot_msg "a mutable record field");
    ]
    (render "arena_slot_bad.ml")

(* --- stale-ignore (suppression auditing) --------------------------- *)

let test_stale_ignore_bad () =
  Alcotest.(check (list string))
    "stale_ignore_bad findings"
    [
      "lint_fixtures/stale_ignore_bad.ml:5:0: stale-ignore: stale suppression [@lint.ignore \"was: Hashtbl.iter order escaped; table since replaced by Fd_map\"]: removing it produces no findings, so the hazard it excused is gone; delete the annotation.";
    ]
    (render "stale_ignore_bad.ml")

let test_audit_ignores () =
  (* [Ignores.collect] is what --audit-ignores prints: every
     suppression site with its reason, in position order. *)
  let sites path = Ignores.collect (Driver.parse_impl (fx path)) in
  Alcotest.(check (list (option string)))
    "clock_ok suppression reasons"
    [ Some "host-side measurement, not simulation time" ]
    (List.map (fun (s : Ignores.site) -> s.reason) (sites "clock_ok.ml"));
  Alcotest.(check (list (option string)))
    "cost_ok suppression reasons"
    [ Some "charged in Poll.wait" ]
    (List.map (fun (s : Ignores.site) -> s.reason) (sites "cost_ok/kernel.ml"))

(* --- call graph ---------------------------------------------------- *)

let callgraph () =
  let files = [ fx "callgraph/alpha.ml"; fx "callgraph/beta.ml" ] in
  Callgraph.build
    (Symbol_index.build (List.map (fun f -> (f, Driver.parse_impl f)) files))

let node graph name =
  match Callgraph.find graph name with
  | Some n -> n
  | None -> Alcotest.failf "no callgraph node %s" name

let alpha = "lint_fixtures/callgraph/alpha.ml#Alpha."
let beta = "lint_fixtures/callgraph/beta.ml#Beta."

let test_callgraph_edges () =
  let g = callgraph () in
  Alcotest.(check (list string))
    "direct same-module call" [ alpha ^ "base" ]
    (node g (alpha ^ "helper")).Callgraph.callees;
  Alcotest.(check (list string))
    "cross-module call resolves through the qualified name"
    [ alpha ^ "helper" ]
    (node g (beta ^ "cross")).Callgraph.callees;
  (* [helper] is defined in both files; the unqualified call in beta.ml
     must resolve to beta's own definition, never alpha's. *)
  Alcotest.(check (list string))
    "shadowed unqualified name stays file-local" [ beta ^ "helper" ]
    (node g (beta ^ "local")).Callgraph.callees

let test_callgraph_conservative () =
  let g = callgraph () in
  let higher = node g (beta ^ "higher") in
  Alcotest.(check (list string))
    "applying a parameter yields no edge" [] higher.Callgraph.callees;
  Alcotest.(check bool)
    "the unknown head is recorded as unresolved" true
    (List.mem "f" higher.Callgraph.unresolved)

let prop_reachability_monotone =
  (* Adding edges can only grow the reachable set — the property that
     makes every over-approximation in the analysis safe. *)
  let lbl (a, b) = (string_of_int a, string_of_int b) in
  QCheck.Test.make ~name:"reachability is monotone in the edge set" ~count:200
    QCheck.(pair (small_list (pair (int_bound 7) (int_bound 7)))
              (small_list (pair (int_bound 7) (int_bound 7))))
    (fun (e1, e2) ->
      let roots = [ "0" ] in
      let r1 = Reachability.reachable ~edges:(List.map lbl e1) ~roots in
      let r2 = Reachability.reachable ~edges:(List.map lbl (e1 @ e2)) ~roots in
      List.for_all (fun n -> List.mem n r2) r1)

(* --- dataflow ------------------------------------------------------ *)

let prop_dataflow_monotone =
  (* The engine's safety argument in one property: adding call edges
     can only grow the set of (node, fact) conclusions — provenance
     may change (first path wins), fact membership never shrinks. The
     generator produces arbitrary small digraphs including cycles, so
     every run also witnesses termination of the fixpoint. *)
  let lbl (a, b) = (string_of_int a, string_of_int b) in
  QCheck.Test.make ~name:"dataflow propagation is monotone in the edge set" ~count:200
    QCheck.(
      triple
        (small_list (pair (int_bound 7) (int_bound 7)))
        (small_list (pair (int_bound 7) (int_bound 7)))
        (small_list (pair (int_bound 7) (int_bound 3))))
    (fun (e1, e2, seeds) ->
      let seeds = List.map (fun (n, f) -> (string_of_int n, "fact" ^ string_of_int f)) seeds in
      let r1 = Dataflow.propagate ~edges:(List.map lbl e1) ~seeds in
      let r2 = Dataflow.propagate ~edges:(List.map lbl (e1 @ e2)) ~seeds in
      List.for_all (fun nf -> List.mem nf r2) r1)

let prop_dataflow_matches_reachability =
  (* Facts flow callee-to-caller, so a fact seeded at [n] holds exactly
     at the nodes that reach [n] — i.e. reachability over reversed
     edges. Pins the engine to the already-trusted fixpoint. *)
  let lbl (a, b) = (string_of_int a, string_of_int b) in
  QCheck.Test.make ~name:"dataflow agrees with reachability on reversed edges" ~count:200
    QCheck.(small_list (pair (int_bound 7) (int_bound 7)))
    (fun e ->
      let edges = List.map lbl e in
      let holds =
        Dataflow.propagate ~edges ~seeds:[ ("0", "f") ]
        |> List.map fst |> List.sort_uniq String.compare
      in
      let reach =
        Reachability.reachable
          ~edges:(List.map (fun (a, b) -> (b, a)) edges)
          ~roots:[ "0" ]
        |> List.sort_uniq String.compare
      in
      holds = reach)

(* --- nondet-taint -------------------------------------------------- *)

let test_taint_bad () =
  Alcotest.(check (list string))
    "taint_bad findings"
    [
      "lint_fixtures/taint_bad/main.ml:4:23: nondet-taint: host RSS measurement \
       (Host_mem.rss_bytes) flows into byte-identity sink Report.csv_of_series as an \
       argument, so the output is no longer a pure function of the seed; keep host \
       measurements in JSON report fields (or sort the enumeration) instead. flow: \
       argument of Report.csv_of_series -> Main.tag -> Host_mem.rss_bytes \
       (lint_fixtures/taint_bad/main.ml:3)";
      "lint_fixtures/taint_bad/report.ml:6:0: nondet-taint: byte-identity sink \
       Report.csv_of_series transitively performs a host RSS measurement \
       (Host_mem.rss_bytes) along resolved calls, so its output depends on the host; \
       move the measurement out of the sink's call region (JSON report fields are the \
       sanctioned home). flow: Report.csv_of_series -> Report.row -> read of tainted \
       field rss -> stored in field rss -> Host_mem.rss_bytes \
       (lint_fixtures/taint_bad/experiment.ml:5)";
    ]
    (render_paths [ "taint_bad" ])

let test_taint_flow_is_interprocedural () =
  (* The SARIF contract: the sink-region finding's flow must walk the
     resolved call chain across files, sink end first, source origin
     last. *)
  let fs = Driver.analyze_paths [ fx "taint_bad" ] in
  match
    List.find_opt (fun f -> f.Finding.file = fx "taint_bad/report.ml") fs
  with
  | None -> Alcotest.fail "no sink-region finding in report.ml"
  | Some f ->
      let steps = f.Finding.flow in
      Alcotest.(check bool) "at least four steps" true (List.length steps >= 4);
      let files = List.sort_uniq compare (List.map (fun s -> s.Finding.sfile) steps) in
      Alcotest.(check bool) "flow spans more than one file" true (List.length files > 1);
      (match steps with
      | first :: _ ->
          Alcotest.(check string) "sink end first" "Report.csv_of_series" first.Finding.swhat
      | [] -> Alcotest.fail "empty flow");
      (match List.rev steps with
      | origin :: _ ->
          Alcotest.(check string) "source origin last" "Host_mem.rss_bytes"
            origin.Finding.swhat
      | [] -> ())

(* --- resource-pairing ---------------------------------------------- *)

let test_pairing_bad () =
  Alcotest.(check (list string))
    "pairing_bad findings"
    [
      "lint_fixtures/pairing_bad/backend.ml:3:22: resource-pairing: Socket.add_watcher \
       acquires readiness watcher here and module Backend mentions a release \
       (Socket.remove_watcher), but only inside dead code (Backend.unused_teardown is \
       referenced by nothing), so no path ever releases; call the release from the \
       close/error paths. reached via: Backend.watch -> acquire: Socket.add_watcher \
       (lint_fixtures/pairing_bad/backend.ml:3)";
      "lint_fixtures/pairing_bad/ring.ml:3:18: resource-pairing: Zc_ring.create \
       acquires transmit-ring reservation here but module Ring never mentions a \
       matching release (Zc_ring.destroy); release on every close/error path, or \
       annotate the acquire with [@lint.ignore \"reason\"] if the resource is \
       instance-lifetime. reached via: Ring.accept_one -> Ring.attach -> acquire: \
       Zc_ring.create (lint_fixtures/pairing_bad/ring.ml:3)";
      "lint_fixtures/pairing_bad/server.ml:3:17: resource-pairing: Host.mem_reserve \
       acquires modeled kernel memory here but module Server never mentions a matching \
       release (Host.mem_release); release on every close/error path, or annotate the \
       acquire with [@lint.ignore \"reason\"] if the resource is instance-lifetime. \
       reached via: Server.accept_one -> Server.admit -> acquire: Host.mem_reserve \
       (lint_fixtures/pairing_bad/server.ml:3)";
    ]
    (render_paths [ "pairing_bad" ])

(* --- driver: overlapping roots, ordering, parse errors ------------- *)

let test_overlapping_roots () =
  (* A file reachable from two roots (or from differently-spelled
     roots) must be analyzed once, not reported twice. *)
  let whole = Driver.analyze_paths [ fx "" ] in
  Alcotest.(check (list string))
    "nested root adds nothing"
    (List.map Finding.to_string whole)
    (List.map Finding.to_string
       (Driver.analyze_paths [ fx ""; fx "cost_bad"; "./" ^ fx "race_bad" ^ "/" ]))

let test_rule_filter () =
  let only id =
    match Driver.find_rule id with Some r -> [ r ] | None -> Alcotest.fail ("no rule " ^ id)
  in
  let rules_of rules file =
    List.map (fun f -> f.Finding.rule) (Driver.analyze_file ~rules (fx file))
  in
  Alcotest.(check (list string))
    "only nondet-clock" [ "nondet-clock" ]
    (rules_of (only "nondet-clock") "mixed_bad.ml");
  Alcotest.(check (list string))
    "only hashtbl-order" [ "hashtbl-order" ]
    (rules_of (only "hashtbl-order") "mixed_bad.ml");
  Alcotest.(check bool) "unknown rule" true (Driver.find_rule "no-such-rule" = None)

let test_parse_error () =
  match Driver.analyze_file (fx "broken_syntax.ml") with
  | [ f ] ->
      Alcotest.(check string) "rule" "parse-error" f.Finding.rule;
      Alcotest.(check string) "file" "lint_fixtures/broken_syntax.ml" f.Finding.file;
      Alcotest.(check int) "line" 1 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one parse-error finding, got %d" (List.length fs)

let test_json () =
  let f =
    {
      Finding.file = "a \"b\".ml";
      line = 3;
      col = 7;
      rule = "nondet-clock";
      message = "x\ny";
      flow = [];
    }
  in
  Alcotest.(check string)
    "json escaping"
    {|{"file":"a \"b\".ml","line":3,"col":7,"rule":"nondet-clock","message":"x\ny"}|}
    (Finding.to_json f)

let test_paths_sorted () =
  (* Directory enumeration must not leak into output order: findings
     come back sorted by (file, line, col). Compare positional keys,
     not rendered strings — line 13 sorts before line 2 as a string. *)
  let fs = Driver.analyze_paths [ "lint_fixtures" ] in
  let keys = List.map (fun f -> (f.Finding.file, f.Finding.line, f.Finding.col)) fs in
  Alcotest.(check bool) "sorted" true (List.sort compare keys = keys);
  Alcotest.(check bool) "found fixture violations" true (List.length fs > 10)

(* --- SARIF --------------------------------------------------------- *)

let test_sarif_result () =
  let f =
    {
      Finding.file = "lib/a.ml";
      line = 2;
      col = 4;
      rule = "nondet-clock";
      message = "x \"y\"";
      flow = [];
    }
  in
  let out = Sarif.render ~rules:Driver.all_rules [ f ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "sarif contains %S" needle) true
        (let rec mem i =
           i + String.length needle <= String.length out
           && (String.equal (String.sub out i (String.length needle)) needle || mem (i + 1))
         in
         mem 0))
    [
      {|"$schema": "https://json.schemastore.org/sarif-2.1.0.json"|};
      {|"ruleId": "nondet-clock"|};
      {|"message": { "text": "x \"y\"" }|};
      {|"artifactLocation": { "uri": "lib/a.ml" }|};
      (* SARIF regions are 1-based; findings carry 0-based columns. *)
      {|"region": { "startLine": 2, "startColumn": 5 }|};
    ]

let test_sarif_code_flows () =
  (* A finding that carries provenance must render it as SARIF
     codeFlows: one threadFlow whose locations replay the steps in
     order, with 1-based regions. *)
  let f =
    {
      Finding.file = "lib/a.ml";
      line = 9;
      col = 2;
      rule = "nondet-taint";
      message = "m";
      flow =
        [
          { Finding.sfile = "lib/a.ml"; sline = 9; scol = 2; swhat = "A.sink" };
          { Finding.sfile = "lib/b.ml"; sline = 4; scol = 0; swhat = "B.origin" };
        ];
    }
  in
  let out = Sarif.render ~rules:Driver.all_rules [ f ] in
  let contains needle =
    let rec mem i =
      i + String.length needle <= String.length out
      && (String.equal (String.sub out i (String.length needle)) needle || mem (i + 1))
    in
    mem 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "sarif contains %S" needle) true
        (contains needle))
    [
      {|"codeFlows": [|};
      {|"threadFlows": [|};
      {|"message": { "text": "A.sink" },|};
      {|"message": { "text": "B.origin" },|};
      {|"artifactLocation": { "uri": "lib/b.ml" },|};
      {|"region": { "startLine": 4, "startColumn": 1 }|};
    ];
  (* And a flowless finding must not grow an empty codeFlows array. *)
  let plain = Sarif.render ~rules:Driver.all_rules [ { f with flow = [] } ] in
  Alcotest.(check bool) "no codeFlows without provenance" false
    (let needle = "codeFlows" in
     let rec mem i =
       i + String.length needle <= String.length plain
       && (String.equal (String.sub plain i (String.length needle)) needle || mem (i + 1))
     in
     mem 0)

(* --- scan-complexity & charge-linearity ---------------------------- *)

let test_complexity_bad () =
  Alcotest.(check (list string))
    "complexity_bad findings"
    [
      {|lint_fixtures/complexity_bad/batch_abuse.ml:8:2: charge-linearity: in certified Batch_abuse.rescan, this Fd_map.iter loop of class O(active) charges O(interests) per iteration (total O(active*interests)): per-iteration charge must be O(1) — charge skipped work in bulk outside the loop (DESIGN.md section 5). flow: Fd_map.iter loop, class O(active) (lint_fixtures/complexity_bad/batch_abuse.ml:8)|};
      {|lint_fixtures/complexity_bad/batch_abuse.ml:11:8: charge-linearity: charge_batch of class O(interests) sits inside a loop of class O(active): the skipped population is re-charged every iteration, making the total O(active) * O(interests) instead of a single bulk charge; hoist the charge_batch out of the loop|};
      {|lint_fixtures/complexity_bad/batch_abuse.ml:16:4: charge-linearity: charge_batch ~count has no inferable size class (O(top) <- result of call Mystery.size has no size class at lint_fixtures/complexity_bad/batch_abuse.ml:17); bind the count to a named population size (a vocabulary name like idle_total, or a Length of the skipped table) so the bulk charge certifies what was skipped|};
      {|lint_fixtures/complexity_bad/devpoll_redux.ml:7:0: scan-complexity: Devpoll_redux.scan is annotated [@complexity "O(active)"] but its inferred structural cost O(interests) is not entailed: O(interests) arises from Interest_table.iter loop, class O(interests) (lint_fixtures/complexity_bad/devpoll_redux.ml:9). flow: certified definition Devpoll_redux.scan -> Interest_table.iter loop, class O(interests) (lint_fixtures/complexity_bad/devpoll_redux.ml:9)|};
      {|lint_fixtures/complexity_bad/stale.ml:7:0: scan-complexity: stale annotation on Stale.lookup_one: [@complexity "O(interests)"] is looser than the inferred structural cost O(1); tighten the annotation to the inferred bound so it cannot mask a future regression|};
      {|lint_fixtures/complexity_bad/stale.ml:9:0: scan-complexity: unparseable [@complexity "O(n^2)"] on Stale.weird: expected "O(term + term)" with terms multiplying 1, active, ready, interests, conns, slots (n_-prefixed spellings accepted)|};
    ]
    (render_paths [ "complexity_bad" ])

let test_complexity_sarif_flow () =
  (* the adversarial O(interests) re-derivation must carry its full
     provenance as a SARIF codeFlow: entry point, then the loop *)
  let findings = Driver.analyze_paths [ fx "complexity_bad" ] in
  let f =
    List.find
      (fun (f : Finding.t) -> String.equal f.rule "scan-complexity" && f.flow <> [])
      findings
  in
  let sarif = Sarif.render ~rules:Driver.all_rules [ f ] in
  let contains needle hay =
    let n = String.length needle in
    let rec mem i = i + n <= String.length hay && (String.equal (String.sub hay i n) needle || mem (i + 1)) in
    mem 0
  in
  Alcotest.(check bool) "codeFlows present" true (contains "codeFlows" sarif);
  Alcotest.(check bool)
    "flow names the certified definition" true
    (contains "certified definition Devpoll_redux.scan" sarif);
  Alcotest.(check bool)
    "flow names the offending loop" true
    (contains "Interest_table.iter loop, class O(interests)" sarif)

let test_linter_deterministic () =
  (* satellite: the linter's own output is a pure function of its
     input — SARIF and the complexity report generated twice in one
     process must be byte-identical *)
  let roots = [ fx "complexity_ok"; fx "complexity_bad"; fx "cost_ok" ] in
  let r1 = Driver.complexity_report roots in
  let r2 = Driver.complexity_report roots in
  Alcotest.(check string) "complexity report byte-identical" r1 r2;
  let sarif () = Sarif.render ~rules:Driver.all_rules (Driver.analyze_paths roots) in
  let s1 = sarif () in
  let s2 = sarif () in
  Alcotest.(check string) "sarif byte-identical" s1 s2

let test_jobs_identical () =
  (* satellite: --jobs N merges in path order behind a warm context,
     so parallel output is byte-identical to sequential *)
  let roots = [ fx "complexity_bad"; fx "cost_interproc_bad"; fx "taint_bad" ] in
  let seq = List.map Finding.to_string (Driver.analyze_paths roots) in
  let par = List.map Finding.to_string (Driver.analyze_paths ~jobs:3 roots) in
  Alcotest.(check (list string)) "--jobs 3 matches sequential" seq par

(* --- the summary lattice ------------------------------------------- *)

let cost_arb =
  let gen =
    QCheck.Gen.(
      frequency
        [
          ( 8,
            map
              (fun ms -> Complexity.of_monos (List.map (fun m -> (m, [])) ms))
              (list_size (int_range 1 3)
                 (list_size (int_range 0 2) (oneofl Complexity.params))) );
          (1, return (Complexity.Top []));
        ])
  in
  QCheck.make ~print:Complexity.render_cost gen

let prop_join_comm =
  QCheck.Test.make ~name:"cost join is commutative" ~count:500
    QCheck.(pair cost_arb cost_arb)
    (fun (a, b) -> Complexity.(equal_cost (join a b) (join b a)))

let prop_join_assoc =
  QCheck.Test.make ~name:"cost join is associative" ~count:500
    QCheck.(triple cost_arb cost_arb cost_arb)
    (fun (a, b, c) -> Complexity.(equal_cost (join a (join b c)) (join (join a b) c)))

let prop_join_idem =
  QCheck.Test.make ~name:"cost join is idempotent" ~count:500 cost_arb (fun a ->
      Complexity.(equal_cost (join a a) a))

let prop_le_partial_order =
  QCheck.Test.make ~name:"entailment is a partial order with join as lub" ~count:500
    QCheck.(pair cost_arb cost_arb)
    (fun (a, b) ->
      let open Complexity in
      le a a
      && le a (join a b)
      && le b (join a b)
      && ((not (le a b && le b a)) || equal_cost a b))

let prop_le_transitive =
  QCheck.Test.make ~name:"entailment is transitive" ~count:500
    QCheck.(triple cost_arb cost_arb cost_arb)
    (fun (a, b, c) ->
      let open Complexity in
      (* join forces comparable pairs so the premise is often live *)
      let b = join a b in
      let c = join b c in
      (not (le a b && le b c)) || le a c)

let prop_mult_monotone =
  QCheck.Test.make ~name:"loop multiplication is monotone" ~count:500
    QCheck.(triple cost_arb cost_arb cost_arb)
    (fun (k, a, b) ->
      let open Complexity in
      let step = { Finding.sfile = "gen.ml"; sline = 1; scol = 0; swhat = "loop" } in
      (not (le a b)) || le (mult ~step k a) (mult ~step k b))

let prop_edge_monotone =
  (* generated call chains: each function sequentially includes a call
     to the previous one, so along every callgraph edge the caller's
     host summary entails the callee's *)
  let param_names = [ "entries"; "acts"; "events"; "conns"; "slots" ] in
  QCheck.Test.make ~name:"summaries are monotone along generated callgraph edges"
    ~count:60
    QCheck.(pair (int_bound 2) (small_list bool))
    (fun (extra, shape) ->
      let n = 2 + extra in
      let fn i =
        let p = List.nth param_names ((i + List.length shape) mod 5) in
        let iterate = match List.nth_opt shape i with Some b -> b | None -> false in
        if i = 0 then
          Printf.sprintf "let f0 %s = %s" p
            (if iterate then Printf.sprintf "List.iter (fun x -> ignore x) %s" p
             else Printf.sprintf "ignore %s" p)
        else
          Printf.sprintf "let f%d %s = ignore (f%d %s)%s" i p (i - 1) p
            (if iterate then Printf.sprintf "; List.iter (fun x -> ignore x) %s" p
             else "")
      in
      let src = String.concat "\n" (List.init n fn) in
      let str = Ppxlib.Parse.implementation (Lexing.from_string src) in
      let index = Symbol_index.build [ ("gen.ml", str) ] in
      let r = Complexity.analyze index in
      let host i =
        let s =
          List.find
            (fun (s : Symbol_index.symbol) ->
              s.qname = [ "Gen"; Printf.sprintf "f%d" i ])
            index.Symbol_index.symbols
        in
        (Complexity.SMap.find s.uid r.Complexity.summaries).Complexity.host
      in
      List.for_all
        (fun i -> Complexity.le (host i) (host (i + 1)))
        (List.init (n - 1) Fun.id))

let test_lattice_units () =
  let open Complexity in
  (* the containment chain *)
  Alcotest.(check bool) "ready <= active" true (le (poly1 "ready") (poly1 "active"));
  Alcotest.(check bool) "active <= interests" true (le (poly1 "active") (poly1 "interests"));
  Alcotest.(check bool) "interests </= active" false (le (poly1 "interests") (poly1 "active"));
  Alcotest.(check bool) "conns incomparable to active" false (le (poly1 "conns") (poly1 "active"));
  Alcotest.(check bool) "active incomparable to conns" false (le (poly1 "active") (poly1 "conns"));
  (* products compare pointwise as multisets *)
  Alcotest.(check bool) "ready*ready <= active*interests" true
    (mono_le [ "ready"; "ready" ] [ "active"; "interests" ]);
  Alcotest.(check bool) "active*active </= interests" false
    (mono_le [ "active"; "active" ] [ "interests" ]);
  (* annotation grammar round-trips *)
  let eq_annot s c =
    match parse_annot s with Some p -> equal_cost p c | None -> false
  in
  Alcotest.(check bool) "O(1)" true (eq_annot "O(1)" const);
  Alcotest.(check bool) "O(active)" true (eq_annot "O(active)" (poly1 "active"));
  Alcotest.(check bool) "O(n_active)" true (eq_annot "O(n_active)" (poly1 "active"));
  Alcotest.(check bool) "O(active + ready) normalizes" true
    (eq_annot "O(active + ready)" (poly1 "active"));
  Alcotest.(check bool) "O(active*ready + 1)" true
    (eq_annot "O(active * ready + 1)"
       (of_monos [ ([ "active"; "ready" ], []) ]));
  Alcotest.(check bool) "O(n^2) rejected" true (parse_annot "O(n^2)" = None);
  Alcotest.(check bool) "empty rejected" true (parse_annot "" = None);
  Alcotest.(check bool) "bare name rejected" true (parse_annot "active" = None)

let test_sarif_clean_fixture () =
  (* The committed fixture is the SARIF output of a clean run over the
     real tree; regenerate with
       dune exec bin/sio_lint.exe -- --format sarif lib bin bench examples *)
  let committed =
    In_channel.with_open_bin (fx "clean_run.sarif") In_channel.input_all
  in
  Alcotest.(check string)
    "clean run matches committed SARIF" committed
    (Sarif.render ~rules:Driver.all_rules [])

let suite =
  [
    Alcotest.test_case "rule registry" `Quick test_rule_registry;
    Alcotest.test_case "nondet-clock: violations" `Quick test_clock_bad;
    Alcotest.test_case "nondet-clock: conforming" `Quick (check_clean "clock_ok" "clock_ok.ml");
    Alcotest.test_case "hashtbl-order: violations" `Quick test_hashtbl_bad;
    Alcotest.test_case "hashtbl-order: conforming" `Quick
      (check_clean "hashtbl_order_ok" "hashtbl_order_ok.ml");
    Alcotest.test_case "module-state: declarations alone are clean" `Quick
      test_module_state_decls_clean;
    Alcotest.test_case "module-state: conforming" `Quick
      (check_clean "module_state_ok" "module_state_ok.ml");
    Alcotest.test_case "module-state: pool-reachable writes" `Quick test_race_bad;
    Alcotest.test_case "module-state: atomic/off-pool writes are clean" `Quick
      (check_clean_paths "race_ok" [ "race_ok" ]);
    Alcotest.test_case "syscall-cost: violations" `Quick test_cost_bad;
    Alcotest.test_case "syscall-cost: conforming" `Quick
      (check_clean "cost_ok" "cost_ok/kernel.ml");
    Alcotest.test_case "syscall-cost: cross-module delegation proven" `Quick
      (check_clean_paths "cost_interproc_ok" [ "cost_interproc_ok" ]);
    Alcotest.test_case "syscall-cost: reverted callee charge surfaces" `Quick
      test_cost_interproc_bad;
    Alcotest.test_case "syscall-cost: scoped to kernel.ml" `Quick test_cost_only_kernel_ml;
    Alcotest.test_case "arena-slot: violations" `Quick test_arena_slot_bad;
    Alcotest.test_case "arena-slot: conforming" `Quick
      (check_clean "arena_slot_ok" "arena_slot_ok.ml");
    Alcotest.test_case "stale-ignore: outlived suppression fires" `Quick test_stale_ignore_bad;
    Alcotest.test_case "stale-ignore: earning suppressions stay silent" `Quick
      (check_clean "clock_ok (audited)" "clock_ok.ml");
    Alcotest.test_case "suppression audit surface" `Quick test_audit_ignores;
    Alcotest.test_case "callgraph: resolved edges" `Quick test_callgraph_edges;
    Alcotest.test_case "callgraph: unknown heads stay conservative" `Quick
      test_callgraph_conservative;
    QCheck_alcotest.to_alcotest prop_reachability_monotone;
    QCheck_alcotest.to_alcotest prop_dataflow_monotone;
    QCheck_alcotest.to_alcotest prop_dataflow_matches_reachability;
    Alcotest.test_case "nondet-taint: violations with flows" `Quick test_taint_bad;
    Alcotest.test_case "nondet-taint: flow is interprocedural" `Quick
      test_taint_flow_is_interprocedural;
    Alcotest.test_case "nondet-taint: conforming" `Quick
      (check_clean_paths "taint_ok" [ "taint_ok" ]);
    Alcotest.test_case "resource-pairing: violations with flows" `Quick test_pairing_bad;
    Alcotest.test_case "resource-pairing: conforming" `Quick
      (check_clean_paths "pairing_ok" [ "pairing_ok" ]);
    Alcotest.test_case "sarif code flows" `Quick test_sarif_code_flows;
    Alcotest.test_case "overlapping roots analyzed once" `Quick test_overlapping_roots;
    Alcotest.test_case "--rule filtering" `Quick test_rule_filter;
    Alcotest.test_case "parse errors are findings" `Quick test_parse_error;
    Alcotest.test_case "json output" `Quick test_json;
    Alcotest.test_case "findings sorted across files" `Quick test_paths_sorted;
    Alcotest.test_case "sarif rendering" `Quick test_sarif_result;
    Alcotest.test_case "sarif clean-run fixture" `Quick test_sarif_clean_fixture;
    Alcotest.test_case "scan-complexity/charge-linearity: violations" `Quick
      test_complexity_bad;
    Alcotest.test_case "scan-complexity/charge-linearity: conforming" `Quick
      (check_clean_paths "complexity_ok" [ "complexity_ok" ]);
    Alcotest.test_case "scan-complexity: sarif codeFlow" `Quick
      test_complexity_sarif_flow;
    Alcotest.test_case "linter self-determinism" `Quick test_linter_deterministic;
    Alcotest.test_case "--jobs output byte-identical" `Quick test_jobs_identical;
    Alcotest.test_case "cost lattice units" `Quick test_lattice_units;
    QCheck_alcotest.to_alcotest prop_join_comm;
    QCheck_alcotest.to_alcotest prop_join_assoc;
    QCheck_alcotest.to_alcotest prop_join_idem;
    QCheck_alcotest.to_alcotest prop_le_partial_order;
    QCheck_alcotest.to_alcotest prop_le_transitive;
    QCheck_alcotest.to_alcotest prop_mult_monotone;
    QCheck_alcotest.to_alcotest prop_edge_monotone;
  ]
