(* Streaming-send correctness across all three servers: whatever the
   transmit path, the document size, the interleaving of writable
   events, or a peer vanishing mid-stream, every completed response
   delivers exactly [Http.response_bytes] — no silent truncation on a
   short write — and the server's [bytes_sent] ledger matches. *)

open Sio_sim
open Sio_kernel
open Sio_httpd

(* Default socket send-buffer capacity (Socket sets snd_cap = 65536 at
   accept); responses above it cannot complete in one write call. *)
let snd_cap = 65536

type server_kind = Sthttpd | Sphhttpd | Shybrid

let server_name = function
  | Sthttpd -> "thttpd"
  | Sphhttpd -> "phhttpd"
  | Shybrid -> "hybrid"

type server = {
  listener : Socket.t;
  stats : unit -> Server_stats.t;
  stop : unit -> unit;
}

let start_server kind proc ~conn_config =
  match kind with
  | Sthttpd ->
      let config = { Thttpd.default_config with Thttpd.conn = conn_config } in
      let t =
        match Thttpd.start ~proc ~backend:(Backend.epoll proc) ~config () with
        | Ok t -> t
        | Error `Emfile -> Alcotest.fail "thttpd start failed"
      in
      {
        listener = Thttpd.listener t;
        stats = (fun () -> Thttpd.stats t);
        stop = (fun () -> Thttpd.stop t);
      }
  | Sphhttpd ->
      let config = { Phhttpd.default_config with Phhttpd.conn = conn_config } in
      let t =
        match Phhttpd.start ~proc ~config () with
        | Ok t -> t
        | Error `Emfile -> Alcotest.fail "phhttpd start failed"
      in
      {
        listener = Phhttpd.listener t;
        stats = (fun () -> Phhttpd.stats t);
        stop = (fun () -> Phhttpd.stop t);
      }
  | Shybrid ->
      let config = { Hybrid.default_config with Hybrid.conn = conn_config } in
      let t =
        match Hybrid.start ~proc ~config () with
        | Ok t -> t
        | Error `Emfile -> Alcotest.fail "hybrid start failed"
      in
      {
        listener = Hybrid.listener t;
        stats = (fun () -> Hybrid.stats t);
        stop = (fun () -> Hybrid.stop t);
      }

(* One simulated world: [n_conns] clients fetch a [doc_bytes] document
   over [transmit]; clients whose index is in [aborts] cut the
   connection after [abort_after] received bytes. Returns per-client
   received counts and the final server stats. *)
let run_world ~seed ~kind ~transmit ~doc_bytes ~n_conns ~aborts ~abort_after =
  let engine = Engine.create ~seed () in
  let host = Host.create ~engine ~costs:Cost_model.zero () in
  let net = Sio_net.Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:256 ~name:"server" () in
  let conn_config = { Conn.default_config with Conn.doc_bytes; transmit } in
  let srv = start_server kind proc ~conn_config in
  let request = Http.build_request ~path:"/index.html" in
  let expected = Http.response_bytes ~body_bytes:doc_bytes in
  let getters =
    List.init n_conns (fun i ->
        let received = ref 0 in
        let abort = List.mem i aborts in
        let handlers =
          {
            Tcp.null_handlers with
            Tcp.on_established =
              (fun c ->
                Tcp.client_send c ~bytes_len:(String.length request) ~payload:request);
            on_bytes =
              (fun c n ->
                received := !received + n;
                if abort && !received >= abort_after then Tcp.client_abort c
                else if !received >= expected then Tcp.client_close c);
          }
        in
        ignore (Tcp.connect ~net ~listener:srv.listener ~handlers ());
        fun () -> !received)
  in
  Engine.run ~until:(Time.s 30) engine;
  let stats = srv.stats () in
  srv.stop ();
  (List.map (fun g -> g ()) getters, stats, expected)

(* --- deterministic cases: a 1 MB response must stream to completion
   on every server, touching the partial-write path --- *)

let test_large_response kind transmit () =
  let doc_bytes = 1_048_576 in
  let received, stats, expected =
    run_world ~seed:3 ~kind ~transmit ~doc_bytes ~n_conns:2 ~aborts:[] ~abort_after:0
  in
  List.iteri
    (fun i got ->
      Alcotest.(check int) (Printf.sprintf "%s conn %d" (server_name kind) i) expected got)
    received;
  Alcotest.(check int) "both replied" 2 stats.Server_stats.replies;
  Alcotest.(check int) "ledger exact" (2 * expected) stats.Server_stats.bytes_sent;
  Alcotest.(check bool) "streamed across short writes" true
    (stats.Server_stats.partial_writes >= 2)

(* --- mid-stream abort must not wedge the server or corrupt its
   neighbours --- *)

let test_abort_mid_stream kind () =
  let doc_bytes = 262_144 in
  let received, stats, expected =
    run_world ~seed:9 ~kind ~transmit:Conn.Ring ~doc_bytes ~n_conns:3 ~aborts:[ 1 ]
      ~abort_after:snd_cap
  in
  List.iteri
    (fun i got ->
      if i <> 1 then
        Alcotest.(check int)
          (Printf.sprintf "%s surviving conn %d" (server_name kind) i)
          expected got)
    received;
  Alcotest.(check int) "survivors replied" 2 stats.Server_stats.replies;
  Alcotest.(check bool) "ledger bounded" true
    (stats.Server_stats.bytes_sent >= 2 * expected
    && stats.Server_stats.bytes_sent < 3 * expected)

(* --- the 404 page never takes the zero-copy path: its body is
   user-generated text, not page-cache data. Observable through the
   kernel-memory ledger — a ring attach would reserve the ring's
   pages, so a 404-only run in Ring mode must leave the same memory
   peak as one in Copy mode, while a file hit in Ring mode must not. *)

let mem_peak_after ~transmit ~path =
  let engine = Engine.create ~seed:4 () in
  let host = Host.create ~engine ~costs:Cost_model.zero () in
  let net = Sio_net.Network.create ~engine () in
  let proc = Process.create ~host ~fd_limit:64 ~name:"server" () in
  let fs = Fs.create ~host () in
  Fs.add_file fs ~path:"/big.html" ~bytes:262_144;
  let conn_config =
    { Conn.default_config with Conn.fs = Some fs; transmit }
  in
  let srv = start_server Sthttpd proc ~conn_config in
  let request = Http.build_request ~path in
  let handlers =
    {
      Tcp.null_handlers with
      Tcp.on_established =
        (fun c -> Tcp.client_send c ~bytes_len:(String.length request) ~payload:request);
    }
  in
  ignore (Tcp.connect ~net ~listener:srv.listener ~handlers ());
  Engine.run ~until:(Time.s 5) engine;
  let stats = srv.stats () in
  srv.stop ();
  (host.Host.mem_peak, stats)

let test_404_stays_on_copy () =
  let peak_ring_404, stats_ring_404 = mem_peak_after ~transmit:Conn.Ring ~path:"/nope" in
  let peak_copy_404, _ = mem_peak_after ~transmit:Conn.Copy ~path:"/nope" in
  let peak_ring_hit, _ = mem_peak_after ~transmit:Conn.Ring ~path:"/big.html" in
  Alcotest.(check int) "404 served" 1 stats_ring_404.Server_stats.replies;
  Alcotest.(check int) "404 ledger"
    (Http.response_bytes ~body_bytes:Conn.not_found_body_bytes)
    stats_ring_404.Server_stats.bytes_sent;
  Alcotest.(check int) "no ring reserved for a 404" peak_copy_404 peak_ring_404;
  Alcotest.(check bool) "a file hit does reserve the ring" true
    (peak_ring_hit > peak_ring_404)

(* --- the conservation property, randomized ---

   Random server, transmit mode, document size (well past the send
   buffer), fan-in, and an optional mid-stream abort: completed
   connections receive exactly the advertised response and the
   server's bytes_sent ledger accounts for every accepted byte. *)

let gen =
  QCheck.Gen.(
    let* kind = oneofl [ Sthttpd; Sphhttpd; Shybrid ] in
    let* transmit = oneofl [ Conn.Copy; Conn.Sendfile; Conn.Ring; Conn.Selective ] in
    let* doc_bytes = int_range 1 200_000 in
    let* n_conns = int_range 1 4 in
    let* abort = bool in
    let* abort_idx = int_range 0 (n_conns - 1) in
    let* seed = int_range 1 10_000 in
    (* Only responses that outlive one write call can be cut mid-stream
       deterministically; small documents may complete before the abort
       lands, which would make the oracle ambiguous. *)
    let aborts =
      if abort && Http.response_bytes ~body_bytes:doc_bytes > snd_cap then [ abort_idx ]
      else []
    in
    return (kind, transmit, doc_bytes, n_conns, aborts, seed))

let print_case (kind, transmit, doc_bytes, n_conns, aborts, seed) =
  Printf.sprintf "%s %s doc=%d conns=%d aborts=[%s] seed=%d" (server_name kind)
    (match transmit with
    | Conn.Copy -> "copy"
    | Conn.Sendfile -> "sendfile"
    | Conn.Ring -> "ring"
    | Conn.Selective -> "selective")
    doc_bytes n_conns
    (String.concat ";" (List.map string_of_int aborts))
    seed

let prop_bytes_conserved =
  QCheck.Test.make ~name:"completed responses deliver exactly response_bytes" ~count:40
    (QCheck.make ~print:print_case gen)
    (fun (kind, transmit, doc_bytes, n_conns, aborts, seed) ->
      let received, stats, expected =
        run_world ~seed ~kind ~transmit ~doc_bytes ~n_conns ~aborts
          ~abort_after:(snd_cap / 2)
      in
      let survivors = List.filteri (fun i _ -> not (List.mem i aborts)) received in
      let n_survivors = List.length survivors in
      List.for_all (fun got -> got = expected) survivors
      && stats.Server_stats.replies >= n_survivors
      && stats.Server_stats.bytes_sent >= stats.Server_stats.replies * expected
      && stats.Server_stats.bytes_sent <= n_conns * expected
      && (aborts <> [] || stats.Server_stats.bytes_sent = n_conns * expected))

let suite =
  [
    Alcotest.test_case "thttpd streams 1MB via copy" `Quick
      (test_large_response Sthttpd Conn.Copy);
    Alcotest.test_case "thttpd streams 1MB via ring" `Quick
      (test_large_response Sthttpd Conn.Ring);
    Alcotest.test_case "phhttpd streams 1MB via selective" `Quick
      (test_large_response Sphhttpd Conn.Selective);
    Alcotest.test_case "hybrid streams 1MB via sendfile" `Quick
      (test_large_response Shybrid Conn.Sendfile);
    Alcotest.test_case "thttpd survives mid-stream abort" `Quick
      (test_abort_mid_stream Sthttpd);
    Alcotest.test_case "phhttpd survives mid-stream abort" `Quick
      (test_abort_mid_stream Sphhttpd);
    Alcotest.test_case "hybrid survives mid-stream abort" `Quick
      (test_abort_mid_stream Shybrid);
    Alcotest.test_case "404 never takes the zero-copy path" `Quick test_404_stays_on_copy;
    QCheck_alcotest.to_alcotest prop_bytes_conserved;
  ]
