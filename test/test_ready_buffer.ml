(* Sio_sim.Ready_buffer: push-order faithfulness, clear/reuse
   semantics, growth, and bounds checking. *)

open Sio_sim

let test_empty () =
  let b : int Ready_buffer.t = Ready_buffer.create () in
  Alcotest.(check int) "length" 0 (Ready_buffer.length b);
  Alcotest.(check bool) "is_empty" true (Ready_buffer.is_empty b);
  Alcotest.(check (list int)) "to_list" [] (Ready_buffer.to_list b)

let test_push_order () =
  let b = Ready_buffer.create ~initial_capacity:2 () in
  (* Push past the initial capacity to force growth. *)
  List.iter (Ready_buffer.push b) [ 5; 1; 9; 1; 3 ];
  Alcotest.(check int) "length" 5 (Ready_buffer.length b);
  Alcotest.(check bool) "not empty" false (Ready_buffer.is_empty b);
  Alcotest.(check (list int)) "push order, duplicates kept" [ 5; 1; 9; 1; 3 ]
    (Ready_buffer.to_list b);
  Alcotest.(check int) "get 0" 5 (Ready_buffer.get b 0);
  Alcotest.(check int) "get last" 3 (Ready_buffer.get b 4);
  let seen = ref [] in
  Ready_buffer.iter b (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter order" [ 5; 1; 9; 1; 3 ] (List.rev !seen);
  Alcotest.(check int) "fold sum" 19 (Ready_buffer.fold b ~init:0 ~f:( + ))

let test_get_bounds () =
  let b = Ready_buffer.create () in
  Ready_buffer.push b 42;
  Alcotest.check_raises "past end" (Invalid_argument "Ready_buffer.get: index out of bounds") (fun () ->
      ignore (Ready_buffer.get b 1));
  Alcotest.check_raises "negative" (Invalid_argument "Ready_buffer.get: index out of bounds") (fun () ->
      ignore (Ready_buffer.get b (-1)))

let test_clear_and_reuse () =
  let b = Ready_buffer.create ~initial_capacity:1 () in
  List.iter (Ready_buffer.push b) [ 1; 2; 3 ];
  Ready_buffer.clear b;
  Alcotest.(check int) "cleared" 0 (Ready_buffer.length b);
  Alcotest.(check (list int)) "no stale contents" [] (Ready_buffer.to_list b);
  Alcotest.check_raises "stale slot unreadable" (Invalid_argument "Ready_buffer.get: index out of bounds")
    (fun () -> ignore (Ready_buffer.get b 0));
  (* The scan loop pattern: clear-then-refill, many times over. *)
  for round = 1 to 3 do
    Ready_buffer.clear b;
    for i = 1 to round do
      Ready_buffer.push b (round * 10 + i)
    done;
    Alcotest.(check int) (Printf.sprintf "round %d length" round) round
      (Ready_buffer.length b)
  done;
  Alcotest.(check (list int)) "last round only" [ 31; 32; 33 ] (Ready_buffer.to_list b)

let suite =
  [
    Alcotest.test_case "empty buffer" `Quick test_empty;
    Alcotest.test_case "push order and growth" `Quick test_push_order;
    Alcotest.test_case "get bounds checking" `Quick test_get_bounds;
    Alcotest.test_case "clear and reuse" `Quick test_clear_and_reuse;
  ]
