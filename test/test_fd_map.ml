(* Sio_sim.Fd_map: model equivalence against Map.Make(Int), the
   mutation-during-iteration contract, and the determinism property
   (iteration order is a function of the bindings alone, never of
   insertion history) that lets it replace sorted Hashtbl snapshots. *)

open Sio_sim

module IntMap = Map.Make (Int)

(* --- basics -------------------------------------------------------- *)

let test_empty () =
  let m : int Fd_map.t = Fd_map.create () in
  Alcotest.(check int) "length" 0 (Fd_map.length m);
  Alcotest.(check bool) "is_empty" true (Fd_map.is_empty m);
  Alcotest.(check bool) "mem" false (Fd_map.mem m 3);
  Alcotest.(check bool) "mem negative" false (Fd_map.mem m (-1));
  Alcotest.(check (option int)) "find" None (Fd_map.find m 0);
  Alcotest.(check (option int)) "find negative" None (Fd_map.find m (-7));
  Alcotest.(check (option int)) "min_key" None (Fd_map.min_key m);
  Alcotest.(check (option int)) "max_key" None (Fd_map.max_key m);
  Alcotest.(check (list (pair int int))) "to_list" [] (Fd_map.to_list m)

let test_set_find_remove () =
  let m = Fd_map.create ~initial_capacity:4 () in
  Fd_map.set m 5 "a";
  Fd_map.set m 2 "b";
  Fd_map.set m 5 "c";
  (* replace *)
  Alcotest.(check int) "length counts keys, not sets" 2 (Fd_map.length m);
  Alcotest.(check (option string)) "replaced" (Some "c") (Fd_map.find m 5);
  Alcotest.(check bool) "remove live" true (Fd_map.remove m 5);
  Alcotest.(check bool) "remove dead" false (Fd_map.remove m 5);
  Alcotest.(check bool) "remove never-present" false (Fd_map.remove m 100);
  Alcotest.(check int) "length after remove" 1 (Fd_map.length m);
  Alcotest.(check (option string)) "survivor" (Some "b") (Fd_map.find m 2)

let test_negative_key_rejected () =
  let m = Fd_map.create () in
  Alcotest.check_raises "set negative"
    (Invalid_argument "Fd_map.set: negative key") (fun () -> Fd_map.set m (-1) 0)

let test_growth_past_capacity () =
  let m = Fd_map.create ~initial_capacity:2 () in
  (* Keys far beyond the initial capacity, across several word
     boundaries of the occupancy bitmap. *)
  List.iter (fun k -> Fd_map.set m k (k * 10)) [ 0; 31; 32; 63; 64; 1000 ];
  Alcotest.(check int) "length" 6 (Fd_map.length m);
  Alcotest.(check (list (pair int int)))
    "ascending"
    [ (0, 0); (31, 310); (32, 320); (63, 630); (64, 640); (1000, 10000) ]
    (Fd_map.to_list m);
  Alcotest.(check (option int)) "min" (Some 0) (Fd_map.min_key m);
  Alcotest.(check (option int)) "max" (Some 1000) (Fd_map.max_key m)

let test_clear_retains_storage () =
  let m = Fd_map.create ~initial_capacity:4 () in
  List.iter (fun k -> Fd_map.set m k k) [ 1; 2; 3; 200 ];
  Fd_map.clear m;
  Alcotest.(check int) "empty after clear" 0 (Fd_map.length m);
  Alcotest.(check (list (pair int int))) "no bindings" [] (Fd_map.to_list m);
  Fd_map.set m 7 70;
  Alcotest.(check (list (pair int int))) "reusable" [ (7, 70) ] (Fd_map.to_list m)

(* --- determinism: iteration order is intrinsic --------------------- *)

(* The PR 2 watch-insertion-permutation regression, re-run on the
   container itself: maps holding the same bindings iterate
   identically no matter the insertion/removal history that produced
   them. (test_event_loop.ml keeps the end-to-end version.) *)
let test_insertion_permutation_invariant () =
  let keys = [ 9; 3; 31; 64; 0; 17; 32; 5 ] in
  let build order =
    let m = Fd_map.create ~initial_capacity:2 () in
    List.iter (fun k -> Fd_map.set m k (string_of_int k)) order;
    (* Churn: remove and re-add a couple of keys so resize/removal
       history differs between permutations too. *)
    ignore (Fd_map.remove m 17);
    Fd_map.set m 17 "17";
    Fd_map.to_list m
  in
  let reference = build keys in
  Alcotest.(check (list (pair int string)))
    "reversed insertion" reference (build (List.rev keys));
  Alcotest.(check (list (pair int string)))
    "sorted insertion" reference
    (build (List.sort compare keys));
  Alcotest.(check (list (pair int string)))
    "ascending keys" (List.map (fun (k, _) -> (k, string_of_int k))
                        (List.sort compare (List.map (fun k -> (k, ())) keys)))
    reference

(* --- mutation during iteration ------------------------------------- *)

let test_remove_current_during_iter () =
  let m = Fd_map.create () in
  List.iter (fun k -> Fd_map.set m k k) [ 1; 4; 9 ];
  let visited = ref [] in
  Fd_map.iter m (fun k _ ->
      visited := k :: !visited;
      ignore (Fd_map.remove m k));
  Alcotest.(check (list int)) "all visited" [ 1; 4; 9 ] (List.rev !visited);
  Alcotest.(check int) "all removed" 0 (Fd_map.length m)

let test_remove_upcoming_during_iter () =
  let m = Fd_map.create () in
  List.iter (fun k -> Fd_map.set m k k) [ 1; 4; 9; 40 ];
  let visited = ref [] in
  Fd_map.iter m (fun k _ ->
      visited := k :: !visited;
      (* From the first key, delete one upcoming key in the same
         bitmap word and one in a later word. *)
      if k = 1 then begin
        ignore (Fd_map.remove m 9);
        ignore (Fd_map.remove m 40)
      end);
  Alcotest.(check (list int)) "removed keys not visited" [ 1; 4 ] (List.rev !visited);
  Alcotest.(check int) "two survive" 2 (Fd_map.length m)

let test_add_during_iter () =
  let m = Fd_map.create ~initial_capacity:4 () in
  List.iter (fun k -> Fd_map.set m k k) [ 2; 6 ];
  let visited = ref [] in
  Fd_map.iter m (fun k _ ->
      visited := k :: !visited;
      if k = 2 then begin
        (* Ahead of the cursor — visited this pass, even though adding
           key 500 grows the backing store mid-iteration. *)
        Fd_map.set m 10 10;
        Fd_map.set m 500 500;
        (* At/behind the cursor — bound, but not visited this pass. *)
        Fd_map.set m 0 0;
        Fd_map.set m 2 20
      end);
  Alcotest.(check (list int)) "ahead visited, behind skipped" [ 2; 6; 10; 500 ]
    (List.rev !visited);
  Alcotest.(check (option int)) "behind-cursor add took effect" (Some 0) (Fd_map.find m 0);
  Alcotest.(check (option int)) "current-key replace took effect" (Some 20) (Fd_map.find m 2)

(* --- qcheck model equivalence -------------------------------------- *)

(* Random op sequences applied in lockstep to Fd_map and Map.Make(Int);
   observable behaviour (find results, ordered bindings, extrema,
   length) must agree at every step. *)
type op = Set of int * int | Remove of int | Clear

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Set (k, v)) (int_bound 200) (int_bound 1000));
        (3, map (fun k -> Remove k) (int_bound 200));
        (1, return Clear);
      ])

let op_print = function
  | Set (k, v) -> Printf.sprintf "Set(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove %d" k
  | Clear -> "Clear"

let prop_model_equivalence =
  QCheck.Test.make ~name:"random op interleavings match Map.Make(Int)" ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map op_print ops))
       QCheck.Gen.(list_size (int_bound 60) op_gen))
    (fun ops ->
      let m = Fd_map.create ~initial_capacity:1 () in
      let model = ref IntMap.empty in
      List.iter
        (fun op ->
          (match op with
          | Set (k, v) ->
              Fd_map.set m k v;
              model := IntMap.add k v !model
          | Remove k ->
              let removed = Fd_map.remove m k in
              if removed <> IntMap.mem k !model then
                QCheck.Test.fail_reportf "remove %d disagreed" k;
              model := IntMap.remove k !model
          | Clear ->
              Fd_map.clear m;
              model := IntMap.empty);
          if Fd_map.length m <> IntMap.cardinal !model then
            QCheck.Test.fail_reportf "length %d <> cardinal %d" (Fd_map.length m)
              (IntMap.cardinal !model);
          if Fd_map.to_list m <> IntMap.bindings !model then
            QCheck.Test.fail_reportf "bindings diverged after %s" (op_print op))
        ops;
      (* Final deep probe: every key in range, plus extrema. *)
      for k = 0 to 200 do
        if Fd_map.find m k <> IntMap.find_opt k !model then
          QCheck.Test.fail_reportf "find %d diverged" k;
        if Fd_map.mem m k <> IntMap.mem k !model then
          QCheck.Test.fail_reportf "mem %d diverged" k
      done;
      let model_min = Option.map fst (IntMap.min_binding_opt !model) in
      let model_max = Option.map fst (IntMap.max_binding_opt !model) in
      Fd_map.min_key m = model_min && Fd_map.max_key m = model_max
      && Fd_map.fold m ~init:[] ~f:(fun acc k v -> (k, v) :: acc)
         = List.rev (IntMap.bindings !model))

let suite =
  [
    Alcotest.test_case "empty map" `Quick test_empty;
    Alcotest.test_case "set/find/remove/replace" `Quick test_set_find_remove;
    Alcotest.test_case "negative keys rejected" `Quick test_negative_key_rejected;
    Alcotest.test_case "growth past initial capacity" `Quick test_growth_past_capacity;
    Alcotest.test_case "clear retains storage" `Quick test_clear_retains_storage;
    Alcotest.test_case "iteration order ignores insertion history" `Quick
      test_insertion_permutation_invariant;
    Alcotest.test_case "remove current key during iter" `Quick test_remove_current_during_iter;
    Alcotest.test_case "remove upcoming key during iter" `Quick
      test_remove_upcoming_during_iter;
    Alcotest.test_case "add during iter (incl. growth)" `Quick test_add_during_iter;
    QCheck_alcotest.to_alcotest prop_model_equivalence;
  ]
