(* The shard-cluster model: steering policies, the shared memory pool,
   the exhaustive stats merge, and the tentpole determinism contract —
   an N-shard run is byte-identical across repeated runs and across
   domain scheduling, and conserves work against the single-server
   oracle under round-robin steering. *)

open Sio_sim
open Sio_kernel
open Sio_httpd
open Sio_loadgen

(* --- Server_stats.add / merge ------------------------------------- *)

let filled_stats () =
  (* Distinct primes per counter so a dropped or double-counted field
     shows up as a wrong sum, not a coincidence. *)
  let s = Server_stats.create () in
  s.Server_stats.replies <- 2;
  s.Server_stats.accepted <- 3;
  s.Server_stats.dropped_conns <- 5;
  s.Server_stats.timed_out_conns <- 7;
  s.Server_stats.stale_events <- 11;
  s.Server_stats.overflow_recoveries <- 13;
  s.Server_stats.mode_switches <- 17;
  s.Server_stats.emfile_drops <- 19;
  s.Server_stats.enobufs_drops <- 23;
  s.Server_stats.partial_writes <- 29;
  s.Server_stats.bytes_sent <- 31;
  s

let test_stats_add_covers_every_field () =
  let src = filled_stats () in
  (* record_reply bumps [replies] too: src ends at 2 + 2 = 4. *)
  Server_stats.record_reply src ~now:(Time.s 1);
  Server_stats.record_reply src ~now:(Time.s 1);
  let into = Server_stats.create () in
  into.Server_stats.replies <- 100;
  Server_stats.add ~into src;
  Alcotest.(check int) "replies" 104 into.Server_stats.replies;
  Alcotest.(check int) "accepted" 3 into.Server_stats.accepted;
  Alcotest.(check int) "dropped_conns" 5 into.Server_stats.dropped_conns;
  Alcotest.(check int) "timed_out_conns" 7 into.Server_stats.timed_out_conns;
  Alcotest.(check int) "stale_events" 11 into.Server_stats.stale_events;
  Alcotest.(check int) "overflow_recoveries" 13 into.Server_stats.overflow_recoveries;
  Alcotest.(check int) "mode_switches" 17 into.Server_stats.mode_switches;
  Alcotest.(check int) "emfile_drops" 19 into.Server_stats.emfile_drops;
  Alcotest.(check int) "enobufs_drops" 23 into.Server_stats.enobufs_drops;
  Alcotest.(check int) "partial_writes" 29 into.Server_stats.partial_writes;
  Alcotest.(check int) "bytes_sent" 31 into.Server_stats.bytes_sent;
  Alcotest.(check (list (float 1e-9)))
    "sampler merged" [ 2. ]
    (Server_stats.reply_rates into ~until:(Time.s 2))

let test_stats_merge_order_insensitive () =
  let mk offset_s =
    let s = filled_stats () in
    Server_stats.record_reply s ~now:(Time.s offset_s);
    s
  in
  let ab = Server_stats.merge [ mk 1; mk 3 ] in
  let ba = Server_stats.merge [ mk 3; mk 1 ] in
  Alcotest.(check int) "replies" ab.Server_stats.replies ba.Server_stats.replies;
  Alcotest.(check int) "bytes_sent" ab.Server_stats.bytes_sent ba.Server_stats.bytes_sent;
  Alcotest.(check (list (float 1e-9)))
    "rate series"
    (Server_stats.reply_rates ab ~until:(Time.s 4))
    (Server_stats.reply_rates ba ~until:(Time.s 4))

(* --- Host.mem_pool ------------------------------------------------ *)

let mk_host ?mem_limit ?mem_pool () =
  let engine = Engine.create ~seed:1 () in
  Host.create ~engine ~costs:Cost_model.zero ?mem_limit ?mem_pool ()

let test_mem_pool_admission () =
  let pool = Host.shared_mem_pool ~limit:100 in
  let h1 = mk_host ~mem_pool:pool () in
  let h2 = mk_host ~mem_pool:pool () in
  Alcotest.(check bool) "h1 reserves 60" true (Host.mem_reserve h1 60);
  Alcotest.(check bool) "h2 denied 60" false (Host.mem_reserve h2 60);
  Alcotest.(check int) "denied reservation rolled back" 60 (Host.pool_used pool);
  Alcotest.(check bool) "h2 reserves 40" true (Host.mem_reserve h2 40);
  Alcotest.(check int) "pool full" 100 (Host.pool_used pool);
  Alcotest.(check int) "pool peak" 100 (Host.pool_peak pool);
  Host.mem_release h1 60;
  Alcotest.(check int) "release returns to pool" 40 (Host.pool_used pool);
  Alcotest.(check int) "peak sticks" 100 (Host.pool_peak pool);
  Alcotest.(check int) "h2 local accounting" 40 h2.Host.mem_used

let test_mem_pool_local_limit_first () =
  (* A host denied by its own limit must not consume pool budget. *)
  let pool = Host.shared_mem_pool ~limit:1000 in
  let h = mk_host ~mem_limit:50 ~mem_pool:pool () in
  Alcotest.(check bool) "local limit denies" false (Host.mem_reserve h 60);
  Alcotest.(check int) "pool untouched" 0 (Host.pool_used pool);
  Alcotest.(check bool) "within both" true (Host.mem_reserve h 50);
  Alcotest.(check int) "pool charged" 50 (Host.pool_used pool)

(* --- Steering policies -------------------------------------------- *)

let schedule n = Array.init n (fun i -> Time.ms i)

let test_round_robin_balanced () =
  let assignment =
    Shard_cluster.route ~policy:Shard_cluster.Round_robin ~shards:4 ~seed:7
      (schedule 1003)
  in
  let counts = Shard_cluster.shard_counts ~shards:4 assignment in
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d near-even" s)
        true
        (abs (c - 250) <= 1))
    counts

let test_route_deterministic () =
  let go () =
    Shard_cluster.route ~policy:Shard_cluster.Hash_tuple ~shards:8
      ~population:{ Shard_cluster.tuples = 64; skew = 1.2 }
      ~seed:42 (schedule 5000)
  in
  Alcotest.(check (array int)) "same seed, same routes" (go ()) (go ())

let test_hash_uniform_spreads () =
  (* All-distinct tuples: no shard starves under the hash policy. *)
  let assignment =
    Shard_cluster.route ~policy:Shard_cluster.Hash_tuple ~shards:8 ~seed:42
      (schedule 8000)
  in
  let counts = Shard_cluster.shard_counts ~shards:8 assignment in
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d fed" s)
        true
        (c > 500 && c < 1500))
    counts

let test_hash_polarizes_under_skew () =
  (* Zipf(2.0) over 8 tuples: the head tuple carries ~65% of the
     connections, and tuple-hashing pins all of them to one shard. *)
  let assignment =
    Shard_cluster.route ~policy:Shard_cluster.Hash_tuple ~shards:4
      ~population:{ Shard_cluster.tuples = 8; skew = 2.0 }
      ~seed:42 (schedule 10_000)
  in
  let counts = Shard_cluster.shard_counts ~shards:4 assignment in
  let hottest = Array.fold_left Stdlib.max 0 counts in
  Alcotest.(check bool) "one shard polarized" true (hottest > 5_000)

let test_least_loaded_balances_bursts () =
  (* Simultaneous arrivals never depart between decisions, so the
     balancer fills shards one connection at a time: perfect balance. *)
  let burst = Array.make 400 Time.zero in
  let assignment =
    Shard_cluster.route ~policy:Shard_cluster.Least_loaded ~shards:4 ~seed:7
      burst
  in
  let counts = Shard_cluster.shard_counts ~shards:4 assignment in
  Array.iter (fun c -> Alcotest.(check int) "even burst split" 100 c) counts

let test_least_loaded_drains_departures () =
  (* Arrivals spaced wider than the service estimate: every connection
     has departed by the next decision, so shard 0 takes them all. *)
  let sparse = Array.init 50 (fun i -> Time.ms (i * 200)) in
  let assignment =
    Shard_cluster.route ~policy:Shard_cluster.Least_loaded ~shards:4
      ~est_service:(Time.ms 50) ~seed:7 sparse
  in
  Array.iter (fun s -> Alcotest.(check int) "idle system pins shard 0" 0 s) assignment

let test_split_evenly () =
  Alcotest.(check (array int)) "remainders to low shards" [| 3; 3; 2; 2 |]
    (Shard_cluster.split_evenly ~shards:4 10);
  Alcotest.(check (array int)) "exact split" [| 5; 5 |]
    (Shard_cluster.split_evenly ~shards:2 10)

(* --- Cluster runs ------------------------------------------------- *)

let small_workload =
  {
    Workload.default with
    Workload.request_rate = 1000;
    total_connections = 200;
    inactive_connections = 24;
  }

let base_config () =
  let base =
    Experiment.default_config
      ~kind:(Experiment.Thttpd_epoll { max_events = 128 })
      ~workload:small_workload
  in
  { base with Experiment.settle = Time.ms 500; drain = Time.ms 500 }

let cluster_config ?(policy = Shard_cluster.Hash_tuple) ~shards () =
  {
    (Cluster.default_config ~base:(base_config ()) ~shards) with
    Cluster.policy;
  }

(* Every deterministic number a cluster run reports, as one
   comparable string (host_rss_bytes deliberately excluded). *)
let fingerprint (o : Cluster.outcome) =
  let b = Buffer.create 1024 in
  let outcome tag (e : Experiment.outcome) =
    let m = e.Experiment.metrics in
    Buffer.add_string b
      (Fmt.str "%s metrics %d %d %d %.17g %.17g %.17g %.17g %.17g %.17g\n" tag
         m.Metrics.attempted m.Metrics.completed
         (Metrics.total_errors m.Metrics.errors)
         m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd
         m.Metrics.reply_rate_min m.Metrics.reply_rate_max m.Metrics.error_percent
         (Metrics.median_latency_ms m));
    let s = e.Experiment.server_stats in
    Buffer.add_string b
      (Fmt.str "%s stats %d %d %d %d %d %d\n" tag s.Server_stats.replies
         s.Server_stats.accepted s.Server_stats.dropped_conns
         s.Server_stats.enobufs_drops s.Server_stats.partial_writes
         s.Server_stats.bytes_sent);
    let c = e.Experiment.host_counters in
    Buffer.add_string b
      (Fmt.str "%s counters %d %d %d %d %d\n" tag c.Host.syscalls c.Host.accepts
         c.Host.softirqs c.Host.wait_queue_wakes c.Host.connections_refused);
    Buffer.add_string b
      (Fmt.str "%s mem %d inactive %d %d mode %s\n" tag e.Experiment.kernel_mem_peak
         e.Experiment.inactive_established e.Experiment.inactive_reopens
         e.Experiment.final_mode)
  in
  outcome "merged" o.Cluster.merged;
  Array.iteri (fun s e -> outcome (Printf.sprintf "shard%d" s) e) o.Cluster.per_shard;
  Buffer.add_string b
    (Fmt.str "conns %a\n" Fmt.(array ~sep:sp int) o.Cluster.shard_conns);
  Buffer.contents b

let policy_gen =
  QCheck.make
    ~print:(fun (shards, policy) ->
      Printf.sprintf "shards=%d policy=%s" shards (Shard_cluster.policy_name policy))
    QCheck.Gen.(
      pair (int_range 1 4)
        (oneofl
           Shard_cluster.[ Round_robin; Hash_tuple; Least_loaded ]))

let prop_cluster_deterministic =
  (* The tentpole contract: same config -> same bytes, whether shards
     run sequentially or one Domain_pool task each. *)
  QCheck.Test.make ~name:"cluster byte-identical across runs and scheduling"
    ~count:4 policy_gen (fun (shards, policy) ->
      let cfg = cluster_config ~policy ~shards () in
      let seq1 = fingerprint (Cluster.run cfg) in
      let seq2 = fingerprint (Cluster.run cfg) in
      let par =
        Domain_pool.with_pool ~size:2 (fun pool ->
            fingerprint (Cluster.run ~pool cfg))
      in
      seq1 = seq2 && seq1 = par)

let test_conservation_vs_oracle () =
  (* Round-robin steering of a uniform client population at an easy
     rate: nothing is lost to steering. Every offered connection
     completes in both worlds, so cluster totals equal the
     single-server oracle exactly. *)
  let base = base_config () in
  let oracle = Experiment.run base in
  let out =
    Cluster.run (cluster_config ~policy:Shard_cluster.Round_robin ~shards:4 ())
  in
  let m = out.Cluster.merged.Experiment.metrics in
  let om = oracle.Experiment.metrics in
  Alcotest.(check int) "oracle clean" 0 (Metrics.total_errors om.Metrics.errors);
  Alcotest.(check int) "cluster clean" 0 (Metrics.total_errors m.Metrics.errors);
  Alcotest.(check int) "attempted conserved" om.Metrics.attempted m.Metrics.attempted;
  Alcotest.(check int) "completed conserved" om.Metrics.completed m.Metrics.completed;
  Alcotest.(check int) "replies conserved"
    oracle.Experiment.server_stats.Server_stats.replies
    out.Cluster.merged.Experiment.server_stats.Server_stats.replies;
  Alcotest.(check int) "bytes conserved"
    oracle.Experiment.server_stats.Server_stats.bytes_sent
    out.Cluster.merged.Experiment.server_stats.Server_stats.bytes_sent;
  Alcotest.(check int) "steering covers all connections"
    small_workload.Workload.total_connections
    (Array.fold_left ( + ) 0 out.Cluster.shard_conns)

let test_partitioned_memory_admission () =
  (* A cluster-wide memory cap split across shards still admits the
     easy workload; the merged peak is the sum of shard peaks. *)
  let base = { (base_config ()) with Experiment.kernel_mem_limit = Some (1 lsl 24) } in
  let cfg = { (cluster_config ~shards:2 ()) with Cluster.base } in
  let out = Cluster.run cfg in
  Alcotest.(check int) "no enobufs drops" 0
    out.Cluster.merged.Experiment.server_stats.Server_stats.enobufs_drops;
  let sum_peaks =
    Array.fold_left
      (fun acc (o : Experiment.outcome) -> acc + o.Experiment.kernel_mem_peak)
      0 out.Cluster.per_shard
  in
  Alcotest.(check int) "merged peak is shard sum" sum_peaks
    out.Cluster.merged.Experiment.kernel_mem_peak;
  Alcotest.(check bool) "peak positive" true (sum_peaks > 0)

let test_shared_pool_sequential_deterministic () =
  (* Shared-pool admission is deterministic when shards run
     sequentially — the documented safe mode. *)
  let base = { (base_config ()) with Experiment.kernel_mem_limit = Some (1 lsl 24) } in
  let cfg =
    { (cluster_config ~shards:2 ()) with Cluster.base; mem_mode = Cluster.Shared }
  in
  let a = fingerprint (Cluster.run cfg) in
  let b = fingerprint (Cluster.run cfg) in
  Alcotest.(check string) "shared pool, sequential shards" a b

let suite =
  [
    Alcotest.test_case "stats add covers every field" `Quick
      test_stats_add_covers_every_field;
    Alcotest.test_case "stats merge order-insensitive" `Quick
      test_stats_merge_order_insensitive;
    Alcotest.test_case "mem pool admission" `Quick test_mem_pool_admission;
    Alcotest.test_case "mem pool after local limit" `Quick
      test_mem_pool_local_limit_first;
    Alcotest.test_case "round-robin balanced" `Quick test_round_robin_balanced;
    Alcotest.test_case "routing deterministic" `Quick test_route_deterministic;
    Alcotest.test_case "hash spreads uniform tuples" `Quick test_hash_uniform_spreads;
    Alcotest.test_case "hash polarizes under skew" `Quick
      test_hash_polarizes_under_skew;
    Alcotest.test_case "least-loaded balances bursts" `Quick
      test_least_loaded_balances_bursts;
    Alcotest.test_case "least-loaded drains departures" `Quick
      test_least_loaded_drains_departures;
    Alcotest.test_case "split_evenly" `Quick test_split_evenly;
    QCheck_alcotest.to_alcotest prop_cluster_deterministic;
    Alcotest.test_case "conservation vs single-server oracle" `Quick
      test_conservation_vs_oracle;
    Alcotest.test_case "partitioned memory admission" `Quick
      test_partitioned_memory_admission;
    Alcotest.test_case "shared pool sequential determinism" `Quick
      test_shared_pool_sequential_deterministic;
  ]
