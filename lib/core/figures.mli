(** The paper's evaluation, figure by figure.

    Each value describes one figure of Provos & Lever (2000): which
    server(s), how many inactive connections, which quantity is
    plotted, and what the paper's graph shows — so the harness can
    print measured-vs-expected side by side. Figures 4-14 are the
    complete evaluation section; the extension entries exercise the
    paper's future-work ideas on the same axes. *)

open Sio_loadgen

type chart = Reply_rate | Error_rate | Median_latency

type series_spec = {
  label : string;
  kind : Experiment.server_kind;
  inactive : int;
}

type t = {
  id : string;  (** e.g. "fig4" *)
  title : string;
  paper_expectation : string;
      (** what the corresponding graph in the paper shows *)
  chart : chart;
  series : series_spec list;
  rates : int list;
}

val all : t list
(** Figures 4-14 plus the extension experiments, in order. *)

val find : string -> t option
val ids : unit -> string list

val run :
  ?pool:Sio_sim.Domain_pool.t ->
  ?scale:float ->
  ?rates:int list ->
  ?seed:int ->
  ?on_point:(label:string -> Sweep.point -> unit) ->
  t ->
  Report.series list
(** Executes every series of the figure. [scale] multiplies the
    paper's 35 000 connections per point (default 0.2, which keeps a
    full figure under a minute; use 1.0 for the paper's exact
    procedure). With [pool], the points of each series run in
    parallel on the pool's domains with bit-identical results (see
    {!Sweep.run}); [on_point] then fires per series in rate order
    once that series completes. *)

val render : Format.formatter -> t -> Report.series list -> unit
(** Tables plus the chart appropriate to the figure, prefixed by the
    paper's expectation. *)

(** {1 The idle-scaling figure}

    Not one of the paper's numbered figures: reply rate and median
    latency vs {e idle-connection count} at a fixed request rate, out
    to the paper's 35 000-connection regime and beyond (100k, 1M) —
    feasible on the host only because every scan path is O(active)
    and per-connection state lives in the compact arena. *)

type idle_scaling = {
  is_id : string;
  is_title : string;
  is_expectation : string;
  is_rate : int;  (** fixed request rate for every point *)
  is_idles : int list;
      (** the x axis: {501, 2000, 10000, 35000, 100000, 1000000} *)
  is_series : (string * Experiment.server_kind) list;
      (** poll, /dev/poll, epoll (select is FD_SETSIZE-bound) *)
}

val idle_scaling : idle_scaling

val poll_idle_cap : int
(** Largest idle count the stock-poll series runs (35 000), and the
    threshold above which [run_idle_scaling] switches to the mega-idle
    regime (paced connects, slow retries, idle sweep pushed past the
    horizon). Past it a single O(idle)-per-wait poll point would
    dominate the whole sweep's host time. *)

val devpoll_idle_cap : int
(** Largest idle count the /dev/poll series runs (100 000): its
    per-interest hint checks saturate the host's modeled CPU around
    80k interests, so the 100k point displays the breakdown and the
    series stops there. Renderers pad missing cells with ["-"]. *)

val run_idle_scaling :
  ?pool:Sio_sim.Domain_pool.t ->
  ?idles:int list ->
  ?rate:int ->
  ?seed:int ->
  ?on_point:(label:string -> Sweep.point -> unit) ->
  unit ->
  Report.series list
(** One series per mechanism; each point's [Sweep.rate] field carries
    the idle count (the series' x axis). Each series skips idle counts
    above its mechanism's cap ([poll_idle_cap], [devpoll_idle_cap];
    epoll runs the full axis). Counts above [poll_idle_cap] also pace
    the idle pool's connects at ~2.5k SYN/s, slow its retry timer, and
    disable the server's idle sweep for the run (the mega-idle
    regime). Deterministic in [seed]; [pool] parallelizes over idle
    counts with bit-identical results. *)

val render_idle_scaling : Format.formatter -> Report.series list -> unit

(** {1 The response-size figure}

    The data-plane companion to the event-notification figures: reply
    throughput (and wire Mbit/s) vs {e response body size} for the four
    transmit paths — write() copies, sendfile, the shared transmit
    ring, and selective header-copy/body-map — on the epoll server,
    where the event layer is out of the way and the send path is the
    bottleneck. The headline is the crossover: copy wins at 1 KB (the
    ring pays its attach and whole-page costs regardless of fill), the
    ring paths win from a few KB up. *)

type response_size = {
  rs_id : string;
  rs_title : string;
  rs_expectation : string;
  rs_sizes : int list;
      (** the x axis: {1 KB, 4 KB, 16 KB, 64 KB, 256 KB, 1 MB} *)
  rs_series : (string * Sio_httpd.Conn.transmit) list;
      (** copy, sendfile, ring, selective *)
}

val response_size : response_size

val response_size_rate : int -> int
(** Offered request rate for a given body size: above the copy path's
    capacity at that size (so the achieved rate reads as each mode's
    capacity) while leaving the ring paths headroom at 1 MB so
    multi-buffer streaming completes with zero errors. *)

val run_response_size :
  ?pool:Sio_sim.Domain_pool.t ->
  ?sizes:int list ->
  ?scale:float ->
  ?seed:int ->
  ?on_point:(label:string -> Sweep.point -> unit) ->
  unit ->
  Report.series list
(** One series per transmit path; each point's [Sweep.rate] field
    carries the response body size (the x axis). Every point runs on a
    1 Gbit/s modeled link so large responses stay CPU-bound.
    Deterministic in [seed]; [pool] parallelizes over sizes with
    bit-identical results. *)

val render_response_size : Format.formatter -> Report.series list -> unit

(** {1 The shard-scaling figure}

    The multi-core figure: aggregate reply rate and latency tails vs
    {e shard count} for an N-shard SO_REUSEPORT-style cluster
    ({!Sio_loadgen.Cluster}) of each event mechanism, at a fixed
    offered rate well above one shard's capacity and with a large
    idle population split across shards. A steering-policy ablation
    runs the epoll cluster against a Zipf-skewed client population,
    where tuple-hashing polarizes and round-robin/least-loaded do
    not. *)

type shard_scaling = {
  ss_id : string;
  ss_title : string;
  ss_expectation : string;
  ss_rate : int;  (** aggregate offered rate for every point *)
  ss_idle : int;  (** aggregate idle population, split across shards *)
  ss_shards : int list;  (** the x axis: {1, 2, 4, 8} *)
  ss_series : (string * Experiment.server_kind) list;
      (** poll, /dev/poll, epoll *)
  ss_ablation_policies : Sio_httpd.Shard_cluster.policy list;
  ss_ablation_population : Sio_httpd.Shard_cluster.population;
}

val shard_scaling : shard_scaling

val run_shard_scaling :
  ?pool:Sio_sim.Domain_pool.t ->
  ?shards:int list ->
  ?scale:float ->
  ?seed:int ->
  ?on_point:(label:string -> Sweep.point -> unit) ->
  unit ->
  Report.series list
(** The main grid: one series per event mechanism, hash steering over
    a uniform (all-distinct-tuples) population — the faithful
    SO_REUSEPORT default. Each point's [Sweep.rate] field carries the
    shard count and its outcome is the cluster-merged view.
    Deterministic in [seed]; with [pool] the points run in parallel
    (the shards of each point stay sequential) with bit-identical
    results. *)

val run_shard_ablation :
  ?pool:Sio_sim.Domain_pool.t ->
  ?shards:int list ->
  ?scale:float ->
  ?seed:int ->
  ?on_point:(label:string -> Sweep.point -> unit) ->
  unit ->
  Report.series list
(** The steering ablation: one series per policy, epoll shards, the
    Zipf-skewed client population of {!shard_scaling}. *)

val render_shard_scaling :
  Format.formatter -> main:Report.series list -> ablation:Report.series list -> unit
