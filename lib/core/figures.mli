(** The paper's evaluation, figure by figure.

    Each value describes one figure of Provos & Lever (2000): which
    server(s), how many inactive connections, which quantity is
    plotted, and what the paper's graph shows — so the harness can
    print measured-vs-expected side by side. Figures 4-14 are the
    complete evaluation section; the extension entries exercise the
    paper's future-work ideas on the same axes. *)

open Sio_loadgen

type chart = Reply_rate | Error_rate | Median_latency

type series_spec = {
  label : string;
  kind : Experiment.server_kind;
  inactive : int;
}

type t = {
  id : string;  (** e.g. "fig4" *)
  title : string;
  paper_expectation : string;
      (** what the corresponding graph in the paper shows *)
  chart : chart;
  series : series_spec list;
  rates : int list;
}

val all : t list
(** Figures 4-14 plus the extension experiments, in order. *)

val find : string -> t option
val ids : unit -> string list

val run :
  ?pool:Sio_sim.Domain_pool.t ->
  ?scale:float ->
  ?rates:int list ->
  ?seed:int ->
  ?on_point:(label:string -> Sweep.point -> unit) ->
  t ->
  Report.series list
(** Executes every series of the figure. [scale] multiplies the
    paper's 35 000 connections per point (default 0.2, which keeps a
    full figure under a minute; use 1.0 for the paper's exact
    procedure). With [pool], the points of each series run in
    parallel on the pool's domains with bit-identical results (see
    {!Sweep.run}); [on_point] then fires per series in rate order
    once that series completes. *)

val render : Format.formatter -> t -> Report.series list -> unit
(** Tables plus the chart appropriate to the figure, prefixed by the
    paper's expectation. *)
