open Sio_loadgen

type chart = Reply_rate | Error_rate | Median_latency

type series_spec = {
  label : string;
  kind : Experiment.server_kind;
  inactive : int;
}

type t = {
  id : string;
  title : string;
  paper_expectation : string;
  chart : chart;
  series : series_spec list;
  rates : int list;
}

let devpoll = Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 }

let single_server ~id ~title ~expectation ~kind ~inactive ~label =
  {
    id;
    title;
    paper_expectation = expectation;
    chart = Reply_rate;
    series = [ { label; kind; inactive } ];
    rates = Sweep.paper_rates;
  }

let all =
  [
    single_server ~id:"fig4" ~title:"Stock thttpd, normal poll(), 1 inactive connection"
      ~expectation:
        "Tracks the offered rate until processing latency exceeds the request \
         rate at the top of the range, then breaks down."
      ~kind:Experiment.Thttpd_poll ~inactive:1 ~label:"thttpd+poll i=1";
    single_server ~id:"fig5" ~title:"thttpd with /dev/poll, 1 inactive connection"
      ~expectation:"Performs well at all request rates; no breakdown point."
      ~kind:devpoll ~inactive:1 ~label:"thttpd+devpoll i=1";
    single_server ~id:"fig6" ~title:"Stock thttpd, normal poll(), 251 inactive connections"
      ~expectation:
        "Breakdown comes sooner than with load 1; minimum response rates hit \
         zero in places."
      ~kind:Experiment.Thttpd_poll ~inactive:251 ~label:"thttpd+poll i=251";
    single_server ~id:"fig7" ~title:"thttpd with /dev/poll, 251 inactive connections"
      ~expectation:"Almost as good as with no inactive connections."
      ~kind:devpoll ~inactive:251 ~label:"thttpd+devpoll i=251";
    single_server ~id:"fig8" ~title:"Stock thttpd, normal poll(), 501 inactive connections"
      ~expectation:
        "Latency from scanning inactive connections dominates at every \
         request rate: poor throughput, high error rates."
      ~kind:Experiment.Thttpd_poll ~inactive:501 ~label:"thttpd+poll i=501";
    single_server ~id:"fig9" ~title:"thttpd with /dev/poll, 501 inactive connections"
      ~expectation:
        "Handles the idle load with ease; performance only begins to break \
         down at extreme request rates."
      ~kind:devpoll ~inactive:501 ~label:"thttpd+devpoll i=501";
    {
      id = "fig10";
      title = "Connection error rate, 251 and 501 inactive connections";
      paper_expectation =
        "Stock poll's error rate climbs toward ~60% of connections; \
         /dev/poll shows no errors at 251 and only sporadic errors at 501.";
      chart = Error_rate;
      series =
        [
          { label = "poll i=251"; kind = Experiment.Thttpd_poll; inactive = 251 };
          { label = "devpoll i=251"; kind = devpoll; inactive = 251 };
          { label = "poll i=501"; kind = Experiment.Thttpd_poll; inactive = 501 };
          { label = "devpoll i=501"; kind = devpoll; inactive = 501 };
        ];
      rates = Sweep.paper_rates;
    };
    single_server ~id:"fig11" ~title:"phhttpd (RT signals), 1 inactive connection"
      ~expectation:
        "Matches the best servers at low rates; falters at very high rates \
         from the per-event system-call overhead."
      ~kind:Experiment.Phhttpd ~inactive:1 ~label:"phhttpd i=1";
    single_server ~id:"fig12" ~title:"phhttpd (RT signals), 251 inactive connections"
      ~expectation:"Reaches its performance knee sooner than with load 1."
      ~kind:Experiment.Phhttpd ~inactive:251 ~label:"phhttpd i=251";
    single_server ~id:"fig13" ~title:"phhttpd (RT signals), 501 inactive connections"
      ~expectation:
        "Inactive connections hurt throughput at all request rates; scales \
         worse than thttpd with /dev/poll."
      ~kind:Experiment.Phhttpd ~inactive:501 ~label:"phhttpd i=501";
    {
      id = "fig14";
      title = "Median connection time, 251 inactive connections";
      paper_expectation =
        "phhttpd responds 1-3 ms faster than devpoll thttpd up to ~900 \
         req/s, then its median leaps by more than an order of magnitude \
         while thttpd+devpoll stays steady; normal poll sits well above \
         both.";
      chart = Median_latency;
      series =
        [
          { label = "devpoll"; kind = devpoll; inactive = 251 };
          { label = "normal poll"; kind = Experiment.Thttpd_poll; inactive = 251 };
          { label = "phhttpd"; kind = Experiment.Phhttpd; inactive = 251 };
        ];
      rates = Sweep.paper_rates;
    };
    (* Extensions: the paper's Section 6 future work, measurable on the
       same axes. *)
    {
      id = "hybrid";
      title = "Extension: hybrid RT-signal//dev/poll server, 501 inactive connections";
      paper_expectation =
        "The paper predicts a well-architected hybrid keeps RT-signal \
         latency at low load without melting down at high load (Section 6).";
      chart = Reply_rate;
      series =
        [
          { label = "hybrid i=501"; kind = Experiment.Hybrid; inactive = 501 };
          { label = "phhttpd i=501"; kind = Experiment.Phhttpd; inactive = 501 };
          { label = "devpoll i=501"; kind = devpoll; inactive = 501 };
        ];
      rates = Sweep.paper_rates;
    };
    {
      id = "hybrid-latency";
      title = "Extension: hybrid latency vs the paper's servers, 251 inactive";
      paper_expectation =
        "A hybrid should match phhttpd's low-load latency and devpoll's \
         stability under overload.";
      chart = Median_latency;
      series =
        [
          { label = "hybrid"; kind = Experiment.Hybrid; inactive = 251 };
          { label = "devpoll"; kind = devpoll; inactive = 251 };
          { label = "phhttpd"; kind = Experiment.Phhttpd; inactive = 251 };
        ];
      rates = Sweep.paper_rates;
    };
  ]

let lineage =
  {
    id = "lineage";
    title = "Beyond the paper: select -> poll -> /dev/poll -> epoll, 501 inactive";
    paper_expectation =
      "Not in the paper: the historical arc its work sits on. select and \
       poll pay O(descriptors) per wait and collapse under idle load; \
       /dev/poll pays O(interests) hint checks and erodes only at extreme \
       rates; the epoll-style ready list pays O(ready) and stays flat.";
    chart = Reply_rate;
    series =
      [
        { label = "select i=501"; kind = Experiment.Thttpd_select; inactive = 501 };
        { label = "poll i=501"; kind = Experiment.Thttpd_poll; inactive = 501 };
        { label = "devpoll i=501"; kind = devpoll; inactive = 501 };
        {
          label = "epoll i=501";
          kind = Experiment.Thttpd_epoll { max_events = 64 };
          inactive = 501;
        };
      ];
    rates = Sweep.paper_rates;
  }

let all = all @ [ lineage ]

let find id = List.find_opt (fun f -> String.equal f.id id) all
let ids () = List.map (fun f -> f.id) all

let run ?pool ?(scale = 0.2) ?rates ?(seed = 42) ?(on_point = fun ~label:_ _ -> ()) fig =
  let rates = match rates with Some r -> r | None -> fig.rates in
  List.map
    (fun spec ->
      let workload =
        Workload.scaled
          { Workload.default with Workload.inactive_connections = spec.inactive }
          scale
      in
      let base =
        { (Experiment.default_config ~kind:spec.kind ~workload) with Experiment.seed }
      in
      let points =
        Sweep.run ?pool ~on_point:(fun p -> on_point ~label:spec.label p) ~base ~rates ()
      in
      { Report.label = spec.label; points })
    fig.series

let render ppf fig series =
  Fmt.pf ppf "== %s: %s ==@." fig.id fig.title;
  Fmt.pf ppf "paper: %s@.@." fig.paper_expectation;
  List.iter (fun s -> Fmt.pf ppf "%a@." Report.pp_table s) series;
  match fig.chart with
  | Reply_rate -> Report.pp_reply_rate_chart ppf series
  | Error_rate -> Report.pp_error_comparison ppf series
  | Median_latency -> Report.pp_latency_comparison ppf series

(* The paper's 35 000-connection regime, previously host-prohibitive:
   with O(active) scan paths the host cost of a point scales with the
   request rate, not the open-set size, so sweeping the idle count to
   35k is cheap. The x axis is the idle-connection count at a fixed
   request rate; select is excluded (FD_SETSIZE caps it at 1024). *)
type idle_scaling = {
  is_id : string;
  is_title : string;
  is_expectation : string;
  is_rate : int;  (** fixed request rate for every point *)
  is_idles : int list;  (** the x axis *)
  is_series : (string * Experiment.server_kind) list;
}

let idle_scaling =
  {
    is_id = "idle-scaling";
    is_title = "Reply rate and median latency vs idle connections, 500 req/s";
    is_expectation =
      "poll degrades linearly in the idle count (every call scans the \
       whole set); /dev/poll holds through the paper's 35 000-connection \
       regime but its per-interest hint checks catch up with it on the \
       way to 100k; the epoll-style ready list pays O(ready) per wait \
       and stays flat out to a million idle connections, bounded only \
       by kernel socket memory.";
    is_rate = 500;
    is_idles = [ 501; 2000; 10000; 35000; 100_000; 1_000_000 ];
    is_series =
      [
        ("poll", Experiment.Thttpd_poll);
        ("devpoll", devpoll);
        ("epoll", Experiment.Thttpd_epoll { max_events = 64 });
      ];
  }

(* Above the paper's 35 000-connection regime, stock parameters stop
   making sense: the default 500 ms connect window would mean a 2M
   SYN/s burst at a million idle, a refused connection retrying every
   500 ms turns any backlog overflow into a self-sustaining SYN storm
   (24M refusals observed at 1M idle before pacing), and the 60 s idle
   sweep would churn the whole population mid-run. Mega points
   therefore pace the pool's connects at [mega_syn_rate] (safely under
   the modeled accept path's ~6k conns/s capacity), slow the retry
   timer, and push the idle sweep past the run's horizon. Points at or
   below [poll_idle_cap] keep the exact stock parameters, so the
   figure's classic prefix stays byte-identical.

   Each mechanism runs only as far up the axis as its wait complexity
   affords on the host: poll pays O(open set) per wait and stops at
   35k; /dev/poll pays a hint check per registered interest per scan
   (~1.2 us modeled), which saturates the CPU around 80k interests, so
   it stops at 100k with its breakdown on display; the epoll-style
   ready list pays O(ready) and runs the full axis. *)
let poll_idle_cap = 35_000
let devpoll_idle_cap = 100_000
let mega_syn_rate = 2_500

let idle_cap = function
  | Experiment.Thttpd_select | Experiment.Thttpd_poll -> poll_idle_cap
  | Experiment.Thttpd_devpoll _ | Experiment.Phhttpd | Experiment.Hybrid ->
      devpoll_idle_cap
  | Experiment.Thttpd_epoll _ -> Stdlib.max_int

let idle_point_config ~kind ~seed ~rate idle =
  let mega = idle > poll_idle_cap in
  let open_window =
    if mega then Sio_sim.Time.ms (idle * 1000 / mega_syn_rate)
    else Sio_sim.Time.ms 500
  in
  let workload =
    {
      Workload.default with
      Workload.request_rate = rate;
      total_connections = Stdlib.max 100 (3 * rate);
      inactive_connections = idle;
      inactive_open_window = open_window;
      inactive_reopen_delay =
        (if mega then Sio_sim.Time.s 5 else Workload.default.Workload.inactive_reopen_delay);
    }
  in
  let base = Experiment.default_config ~kind ~workload in
  let thttpd = { base.Experiment.thttpd with Sio_httpd.Thttpd.backlog = 4096 } in
  let thttpd =
    if mega then { thttpd with Sio_httpd.Thttpd.idle_timeout = Sio_sim.Time.s 7200 }
    else thttpd
  in
  {
    base with
    Experiment.seed = Sio_sim.Rng.derive ~seed idle;
    (* Room for the idle pool: descriptors, accept bursts (the pool
       opens over the workload's connect window), and settle time to
       let it all establish — for mega points the settle covers the
       whole paced window plus the stock slack. *)
    server_fd_limit = idle + 2048;
    settle =
      Sio_sim.Time.add
        (Sio_sim.Time.s (2 + (idle / 5000)))
        (if mega then open_window else Sio_sim.Time.zero);
    thttpd;
  }

let run_idle_scaling ?pool ?idles ?(rate = idle_scaling.is_rate) ?(seed = 42)
    ?(on_point = fun ~label:_ _ -> ()) () =
  let idles = match idles with Some l -> l | None -> idle_scaling.is_idles in
  List.map
    (fun (label, kind) ->
      (* Each mechanism climbs the axis only as far as its wait
         complexity affords (see [idle_cap]); renderers pad the
         missing cells with "-". *)
      let idles =
        let cap = idle_cap kind in
        List.filter (fun i -> i <= cap) idles
      in
      let run_idle idle =
        {
          Sweep.rate = idle;
          outcome = Experiment.run (idle_point_config ~kind ~seed ~rate idle);
        }
      in
      let points =
        match pool with
        | None ->
            List.map
              (fun idle ->
                let p = run_idle idle in
                on_point ~label p;
                p)
              idles
        | Some pool ->
            let ps = Sio_sim.Domain_pool.map pool ~f:run_idle idles in
            List.iter (fun p -> on_point ~label p) ps;
            ps
      in
      { Report.label; points })
    idle_scaling.is_series

(* The data-plane figure: reply throughput vs response size for the
   four transmit paths, on the epoll server (the event layer out of
   the way, the send path is the bottleneck). The x axis is the
   response body size; each size gets its own offered rate, set above
   the copy path's capacity so the achieved rate reads as each mode's
   capacity and the crossover is visible. *)
type response_size = {
  rs_id : string;
  rs_title : string;
  rs_expectation : string;
  rs_sizes : int list;  (** the x axis: response body bytes *)
  rs_series : (string * Sio_httpd.Conn.transmit) list;
}

let response_size =
  {
    rs_id = "response-size";
    rs_title =
      "Reply throughput vs response size: copy vs sendfile vs ring vs \
       selective (epoll, 1 inactive)";
    rs_expectation =
      "At 1 KB the fixed ring costs (attach mmap, whole pages charged \
       for partial fills) make copy the cheapest path; by 4 KB the \
       ring's ~7.3 ns/byte amortized page cost undercuts sendfile's 12 \
       and copy's 25 and the curves cross; at 256 KB-1 MB the ring \
       paths sustain several times copy's throughput and stream \
       multi-buffer responses with zero errors. Selective tracks ring \
       to within the per-response header copy.";
    rs_sizes = [ 1024; 4096; 16384; 65536; 262144; 1_048_576 ];
    rs_series =
      [
        ("copy", Sio_httpd.Conn.Copy);
        ("sendfile", Sio_httpd.Conn.Sendfile);
        ("ring", Sio_httpd.Conn.Ring);
        ("selective", Sio_httpd.Conn.Selective);
      ];
  }

(* Offered rate per body size: above the copy path's capacity at that
   size (so achieved rate = capacity, mode differences show), while
   leaving the ring paths headroom at 1 MB so streaming completes with
   zero errors (the acceptance criterion for multi-buffer sends). *)
let response_size_rate body_bytes =
  if body_bytes <= 1_024 then 1400
  else if body_bytes <= 4_096 then 1450
  else if body_bytes <= 16_384 then 1000
  else if body_bytes <= 65_536 then 600
  else if body_bytes <= 262_144 then 300
  else 70

let response_size_point_config ~transmit ~seed ~scale body_bytes =
  let rate = response_size_rate body_bytes in
  let workload =
    Workload.scaled
      {
        Workload.default with
        Workload.request_rate = rate;
        (* 25x the rate = a 5 s measurement window at the default
           --scale 0.2 (scaled like every other figure). *)
        total_connections = 25 * rate;
        doc_bytes = body_bytes;
        inactive_connections = 1;
        (* The very first request pays the document's cold page-cache
           read (256 pages x 9 ms disk for 1 MB = a 2.3 s stall);
           httperf's stock 5 s timeout would score the requests queued
           behind that one-time warmup as errors. *)
        client_timeout = Sio_sim.Time.s 10;
      }
      scale
  in
  let base = Experiment.default_config ~kind:(Experiment.Thttpd_epoll { max_events = 64 }) ~workload in
  {
    base with
    Experiment.seed = Sio_sim.Rng.derive ~seed body_bytes;
    transmit;
    (* Room for the SYNs that pile up behind the one-time cold read:
       the stock 128 backlog overflows during a 2.3 s stall at 70/s. *)
    thttpd = { base.Experiment.thttpd with Sio_httpd.Thttpd.backlog = 4096 };
    (* 100 Mbit/s (the paper's testbed) caps 1 MB responses at ~12/s,
       hiding the CPU crossover behind the wire; a gigabit link keeps
       every point CPU-bound. *)
    net_bandwidth_bits_per_sec = Some 1_000_000_000;
  }

let run_response_size ?pool ?sizes ?(scale = 0.2) ?(seed = 42)
    ?(on_point = fun ~label:_ _ -> ()) () =
  let sizes = match sizes with Some l -> l | None -> response_size.rs_sizes in
  List.map
    (fun (label, transmit) ->
      let run_size body =
        {
          Sweep.rate = body;
          outcome =
            Experiment.run (response_size_point_config ~transmit ~seed ~scale body);
        }
      in
      let points =
        match pool with
        | None ->
            List.map
              (fun body ->
                let p = run_size body in
                on_point ~label p;
                p)
              sizes
        | Some pool ->
            let ps = Sio_sim.Domain_pool.map pool ~f:run_size sizes in
            List.iter (fun p -> on_point ~label p) ps;
            ps
      in
      { Report.label; points })
    response_size.rs_series

let render_response_size ppf series =
  let f = response_size in
  Fmt.pf ppf "== %s: %s ==@." f.rs_id f.rs_title;
  Fmt.pf ppf "expected: %s@.@." f.rs_expectation;
  let mbit_s p =
    let m = p.Sweep.outcome.Experiment.metrics in
    let wire = Sio_httpd.Http.response_bytes ~body_bytes:p.Sweep.rate in
    m.Metrics.reply_rate_avg *. float_of_int wire *. 8. /. 1e6
  in
  List.iter
    (fun s ->
      Fmt.pf ppf "%s@." s.Report.label;
      Fmt.pf ppf
        "    body       avg        sd       min       max     err%%  median_ms     Mbit/s@.";
      List.iter
        (fun p ->
          let m = p.Sweep.outcome.Experiment.metrics in
          Fmt.pf ppf "%8d  %8.1f  %8.1f  %8.1f  %8.1f  %7.2f  %9.2f  %9.1f@."
            p.Sweep.rate m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd
            m.Metrics.reply_rate_min m.Metrics.reply_rate_max m.Metrics.error_percent
            (Metrics.median_latency_ms m) (mbit_s p))
        s.points;
      Fmt.pf ppf "@.")
    series;
  (* Column comparisons on the shared x axis: body size down, one
     transmit path per column. *)
  let columns pick unit_label =
    Fmt.pf ppf "    body";
    List.iter (fun s -> Fmt.pf ppf "  %12s" s.Report.label) series;
    Fmt.pf ppf "    (%s)@." unit_label;
    match series with
    | [] -> ()
    | first :: _ ->
        List.iteri
          (fun i p0 ->
            Fmt.pf ppf "%8d" p0.Sweep.rate;
            List.iter
              (fun s ->
                match List.nth_opt s.Report.points i with
                | Some p -> Fmt.pf ppf "  %12.1f" (pick p)
                | None -> Fmt.pf ppf "  %12s" "-")
              series;
            Fmt.pf ppf "@.")
          first.Report.points
  in
  columns
    (fun p -> p.Sweep.outcome.Experiment.metrics.Metrics.reply_rate_avg)
    "avg replies/s; offered rate varies per size";
  Fmt.pf ppf "@.";
  columns mbit_s "achieved wire throughput, Mbit/s"

(* The multi-core figure: aggregate reply rate and latency tails vs
   shard count, for an N-shard SO_REUSEPORT-style cluster of each
   event mechanism. The offered rate is fixed well above a single
   shard's capacity, so the achieved rate reads as cluster capacity
   and the curve shows how each mechanism converts shards into
   throughput under a large shared idle population. *)
type shard_scaling = {
  ss_id : string;
  ss_title : string;
  ss_expectation : string;
  ss_rate : int;  (** aggregate offered rate, all points *)
  ss_idle : int;  (** aggregate idle population, split across shards *)
  ss_shards : int list;  (** the x axis *)
  ss_series : (string * Experiment.server_kind) list;
  ss_ablation_policies : Sio_httpd.Shard_cluster.policy list;
  ss_ablation_population : Sio_httpd.Shard_cluster.population;
      (** the skewed client world where steering policy matters *)
}

let shard_scaling =
  {
    ss_id = "shard-scaling";
    ss_title =
      "Aggregate reply rate and latency vs shard count, 6400 req/s \
       offered, 10000 idle connections";
    ss_expectation =
      "Each doubling of shards doubles epoll's aggregate reply rate \
       until the offered rate is met (4 shards recover >= 3x a single \
       shard; 8 shards meet the offered load): shards split both the \
       request stream and the idle population, and an O(ready) wait \
       path leaves the extra CPU to the data plane. /dev/poll tracks \
       epoll but keeps paying per-interest hint checks over its idle \
       slice; poll still scans its whole shard per wait, so even 8 \
       shards of it stay far below the offered rate. The steering \
       ablation runs the epoll cluster against a Zipf-skewed client \
       population: tuple-hashing polarizes (the head tuples pin to one \
       shard, capping the cluster near that shard's capacity) while \
       round-robin and least-loaded stay within a few percent of the \
       uniform-steering cluster.";
    ss_rate = 6400;
    ss_idle = 10_000;
    ss_shards = [ 1; 2; 4; 8 ];
    ss_series =
      [
        ("poll", Experiment.Thttpd_poll);
        ("devpoll", devpoll);
        ("epoll", Experiment.Thttpd_epoll { max_events = 64 });
      ];
    ss_ablation_policies =
      Sio_httpd.Shard_cluster.[ Hash_tuple; Round_robin; Least_loaded ];
    (* 64 client endpoints with Zipf(1.2) popularity: the head tuple
       alone carries ~29% of connections, so hashing pins over a
       quarter of the offered load to a single shard. *)
    ss_ablation_population = { Sio_httpd.Shard_cluster.tuples = 64; skew = 1.2 };
  }

let shard_cluster_config ~kind ~policy ~population ~shards ~seed ~scale =
  let f = shard_scaling in
  let total =
    Stdlib.max 400 (int_of_float (float_of_int (25 * f.ss_rate) *. scale))
  in
  let workload =
    {
      Workload.default with
      Workload.request_rate = f.ss_rate;
      total_connections = total;
      inactive_connections = f.ss_idle;
    }
  in
  let base = Experiment.default_config ~kind ~workload in
  let base =
    {
      base with
      (* One derived seed per (shards, scale-independent) point; the
         cluster derives per-shard seeds from it. *)
      Experiment.seed = Sio_sim.Rng.derive ~seed (0x5ca1e + shards);
      (* Room for each shard's idle slice plus the overload backlog of
         accepted-but-unserviced connections. *)
      server_fd_limit = f.ss_idle + 8192;
      settle = Sio_sim.Time.s (2 + (f.ss_idle / 5000));
      thttpd = { base.Experiment.thttpd with Sio_httpd.Thttpd.backlog = 4096 };
    }
  in
  {
    Cluster.base;
    shards;
    policy;
    population;
    mem_mode = Cluster.Partitioned;
  }

let run_shard_series ?pool ~shards ~on_point ~label mk_config =
  let run_point n =
    { Sweep.rate = n; outcome = (Cluster.run (mk_config n)).Cluster.merged }
  in
  let points =
    match pool with
    | None ->
        List.map
          (fun n ->
            let p = run_point n in
            on_point ~label p;
            p)
          shards
    | Some pool ->
        (* Points in parallel, the shards of each point sequential:
           Domain_pool tasks must not nest. *)
        let ps = Sio_sim.Domain_pool.map pool ~f:run_point shards in
        List.iter (fun p -> on_point ~label p) ps;
        ps
  in
  { Report.label; points }

let run_shard_scaling ?pool ?shards ?(scale = 0.2) ?(seed = 42)
    ?(on_point = fun ~label:_ _ -> ()) () =
  let f = shard_scaling in
  let shards = match shards with Some l -> l | None -> f.ss_shards in
  List.map
    (fun (label, kind) ->
      run_shard_series ?pool ~shards ~on_point ~label (fun n ->
          shard_cluster_config ~kind
            ~policy:Sio_httpd.Shard_cluster.Hash_tuple
            ~population:Sio_httpd.Shard_cluster.uniform_population ~shards:n
            ~seed ~scale))
    f.ss_series

let run_shard_ablation ?pool ?shards ?(scale = 0.2) ?(seed = 42)
    ?(on_point = fun ~label:_ _ -> ()) () =
  let f = shard_scaling in
  let shards = match shards with Some l -> l | None -> f.ss_shards in
  let kind = Experiment.Thttpd_epoll { max_events = 64 } in
  List.map
    (fun policy ->
      let label = Sio_httpd.Shard_cluster.policy_name policy in
      run_shard_series ?pool ~shards ~on_point ~label (fun n ->
          shard_cluster_config ~kind ~policy
            ~population:f.ss_ablation_population ~shards:n ~seed ~scale))
    f.ss_ablation_policies

let percentile_ms m p =
  if Sio_sim.Histogram.count m.Metrics.latency = 0 then 0.
  else Sio_sim.Time.to_ms_f (Sio_sim.Histogram.percentile m.Metrics.latency p)

let render_shard_tables ppf series =
  List.iter
    (fun s ->
      Fmt.pf ppf "%s@." s.Report.label;
      Fmt.pf ppf
        "  shards       avg        sd       min       max     err%%     p50_ms     p99_ms@.";
      List.iter
        (fun p ->
          let m = p.Sweep.outcome.Experiment.metrics in
          Fmt.pf ppf "%8d  %8.1f  %8.1f  %8.1f  %8.1f  %7.2f  %9.2f  %9.2f@."
            p.Sweep.rate m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd
            m.Metrics.reply_rate_min m.Metrics.reply_rate_max
            m.Metrics.error_percent (percentile_ms m 50.) (percentile_ms m 99.))
        s.points;
      Fmt.pf ppf "@.")
    series

let render_shard_columns ppf series =
  let columns pick unit_label =
    Fmt.pf ppf "  shards";
    List.iter (fun s -> Fmt.pf ppf "  %14s" s.Report.label) series;
    Fmt.pf ppf "    (%s)@." unit_label;
    match series with
    | [] -> ()
    | first :: _ ->
        List.iteri
          (fun i p0 ->
            Fmt.pf ppf "%8d" p0.Sweep.rate;
            List.iter
              (fun s ->
                match List.nth_opt s.Report.points i with
                | Some p ->
                    Fmt.pf ppf "  %14.1f" (pick p.Sweep.outcome.Experiment.metrics)
                | None -> Fmt.pf ppf "  %14s" "-")
              series;
            Fmt.pf ppf "@.")
          first.Report.points
  in
  columns
    (fun m -> m.Metrics.reply_rate_avg)
    (Printf.sprintf "aggregate reply rate /s at %d req/s offered"
       shard_scaling.ss_rate);
  Fmt.pf ppf "@.";
  columns (fun m -> percentile_ms m 99.) "p99 connection time, ms"

let render_shard_scaling ppf ~main ~ablation =
  let f = shard_scaling in
  Fmt.pf ppf "== %s: %s ==@." f.ss_id f.ss_title;
  Fmt.pf ppf "expected: %s@.@." f.ss_expectation;
  render_shard_tables ppf main;
  render_shard_columns ppf main;
  Fmt.pf ppf "@.";
  Fmt.pf ppf
    "-- steering ablation: epoll shards, Zipf(%.1f) over %d client tuples --@.@."
    f.ss_ablation_population.Sio_httpd.Shard_cluster.skew
    f.ss_ablation_population.Sio_httpd.Shard_cluster.tuples;
  render_shard_tables ppf ablation;
  render_shard_columns ppf ablation

let render_idle_scaling ppf series =
  let f = idle_scaling in
  Fmt.pf ppf "== %s: %s ==@." f.is_id f.is_title;
  Fmt.pf ppf "expected: %s@.@." f.is_expectation;
  List.iter
    (fun s ->
      Fmt.pf ppf "%s@." s.Report.label;
      Fmt.pf ppf
        "  idle       avg        sd       min       max     err%%  median_ms  kernel_MB@.";
      List.iter
        (fun p ->
          let m = p.Sweep.outcome.Experiment.metrics in
          Fmt.pf ppf "%6d  %8.1f  %8.1f  %8.1f  %8.1f  %7.2f  %9.2f  %9.1f@."
            p.Sweep.rate m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd
            m.Metrics.reply_rate_min m.Metrics.reply_rate_max m.Metrics.error_percent
            (Metrics.median_latency_ms m)
            (float_of_int p.Sweep.outcome.Experiment.kernel_mem_peak /. 1048576.))
        s.points;
      Fmt.pf ppf "@.")
    series;
  (* Column comparisons on the shared x axis: idle count down, one
     mechanism per column. *)
  let columns pick unit_label =
    Fmt.pf ppf "  idle";
    List.iter (fun s -> Fmt.pf ppf "  %18s" s.Report.label) series;
    Fmt.pf ppf "    (%s)@." unit_label;
    (* Drive the rows from the series with the most points: the poll
       series stops at [poll_idle_cap], so the first series may be a
       strict prefix of the shared x axis. *)
    let longest =
      List.fold_left
        (fun acc s ->
          match acc with
          | Some best
            when List.length best.Report.points >= List.length s.Report.points ->
              acc
          | _ -> Some s)
        None series
    in
    match longest with
    | None -> ()
    | Some longest ->
        List.iteri
          (fun i p0 ->
            Fmt.pf ppf "%6d" p0.Sweep.rate;
            List.iter
              (fun s ->
                match List.nth_opt s.Report.points i with
                | Some p -> Fmt.pf ppf "  %18.2f" (pick p.Sweep.outcome.Experiment.metrics)
                | None -> Fmt.pf ppf "  %18s" "-")
              series;
            Fmt.pf ppf "@.")
          longest.Report.points
  in
  columns
    (fun m -> m.Metrics.reply_rate_avg)
    (Printf.sprintf "avg reply rate /s at %d req/s offered" f.is_rate);
  Fmt.pf ppf "@.";
  columns (fun m -> Metrics.median_latency_ms m) "median connection time, ms"
