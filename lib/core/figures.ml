open Sio_loadgen

type chart = Reply_rate | Error_rate | Median_latency

type series_spec = {
  label : string;
  kind : Experiment.server_kind;
  inactive : int;
}

type t = {
  id : string;
  title : string;
  paper_expectation : string;
  chart : chart;
  series : series_spec list;
  rates : int list;
}

let devpoll = Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 }

let single_server ~id ~title ~expectation ~kind ~inactive ~label =
  {
    id;
    title;
    paper_expectation = expectation;
    chart = Reply_rate;
    series = [ { label; kind; inactive } ];
    rates = Sweep.paper_rates;
  }

let all =
  [
    single_server ~id:"fig4" ~title:"Stock thttpd, normal poll(), 1 inactive connection"
      ~expectation:
        "Tracks the offered rate until processing latency exceeds the request \
         rate at the top of the range, then breaks down."
      ~kind:Experiment.Thttpd_poll ~inactive:1 ~label:"thttpd+poll i=1";
    single_server ~id:"fig5" ~title:"thttpd with /dev/poll, 1 inactive connection"
      ~expectation:"Performs well at all request rates; no breakdown point."
      ~kind:devpoll ~inactive:1 ~label:"thttpd+devpoll i=1";
    single_server ~id:"fig6" ~title:"Stock thttpd, normal poll(), 251 inactive connections"
      ~expectation:
        "Breakdown comes sooner than with load 1; minimum response rates hit \
         zero in places."
      ~kind:Experiment.Thttpd_poll ~inactive:251 ~label:"thttpd+poll i=251";
    single_server ~id:"fig7" ~title:"thttpd with /dev/poll, 251 inactive connections"
      ~expectation:"Almost as good as with no inactive connections."
      ~kind:devpoll ~inactive:251 ~label:"thttpd+devpoll i=251";
    single_server ~id:"fig8" ~title:"Stock thttpd, normal poll(), 501 inactive connections"
      ~expectation:
        "Latency from scanning inactive connections dominates at every \
         request rate: poor throughput, high error rates."
      ~kind:Experiment.Thttpd_poll ~inactive:501 ~label:"thttpd+poll i=501";
    single_server ~id:"fig9" ~title:"thttpd with /dev/poll, 501 inactive connections"
      ~expectation:
        "Handles the idle load with ease; performance only begins to break \
         down at extreme request rates."
      ~kind:devpoll ~inactive:501 ~label:"thttpd+devpoll i=501";
    {
      id = "fig10";
      title = "Connection error rate, 251 and 501 inactive connections";
      paper_expectation =
        "Stock poll's error rate climbs toward ~60% of connections; \
         /dev/poll shows no errors at 251 and only sporadic errors at 501.";
      chart = Error_rate;
      series =
        [
          { label = "poll i=251"; kind = Experiment.Thttpd_poll; inactive = 251 };
          { label = "devpoll i=251"; kind = devpoll; inactive = 251 };
          { label = "poll i=501"; kind = Experiment.Thttpd_poll; inactive = 501 };
          { label = "devpoll i=501"; kind = devpoll; inactive = 501 };
        ];
      rates = Sweep.paper_rates;
    };
    single_server ~id:"fig11" ~title:"phhttpd (RT signals), 1 inactive connection"
      ~expectation:
        "Matches the best servers at low rates; falters at very high rates \
         from the per-event system-call overhead."
      ~kind:Experiment.Phhttpd ~inactive:1 ~label:"phhttpd i=1";
    single_server ~id:"fig12" ~title:"phhttpd (RT signals), 251 inactive connections"
      ~expectation:"Reaches its performance knee sooner than with load 1."
      ~kind:Experiment.Phhttpd ~inactive:251 ~label:"phhttpd i=251";
    single_server ~id:"fig13" ~title:"phhttpd (RT signals), 501 inactive connections"
      ~expectation:
        "Inactive connections hurt throughput at all request rates; scales \
         worse than thttpd with /dev/poll."
      ~kind:Experiment.Phhttpd ~inactive:501 ~label:"phhttpd i=501";
    {
      id = "fig14";
      title = "Median connection time, 251 inactive connections";
      paper_expectation =
        "phhttpd responds 1-3 ms faster than devpoll thttpd up to ~900 \
         req/s, then its median leaps by more than an order of magnitude \
         while thttpd+devpoll stays steady; normal poll sits well above \
         both.";
      chart = Median_latency;
      series =
        [
          { label = "devpoll"; kind = devpoll; inactive = 251 };
          { label = "normal poll"; kind = Experiment.Thttpd_poll; inactive = 251 };
          { label = "phhttpd"; kind = Experiment.Phhttpd; inactive = 251 };
        ];
      rates = Sweep.paper_rates;
    };
    (* Extensions: the paper's Section 6 future work, measurable on the
       same axes. *)
    {
      id = "hybrid";
      title = "Extension: hybrid RT-signal//dev/poll server, 501 inactive connections";
      paper_expectation =
        "The paper predicts a well-architected hybrid keeps RT-signal \
         latency at low load without melting down at high load (Section 6).";
      chart = Reply_rate;
      series =
        [
          { label = "hybrid i=501"; kind = Experiment.Hybrid; inactive = 501 };
          { label = "phhttpd i=501"; kind = Experiment.Phhttpd; inactive = 501 };
          { label = "devpoll i=501"; kind = devpoll; inactive = 501 };
        ];
      rates = Sweep.paper_rates;
    };
    {
      id = "hybrid-latency";
      title = "Extension: hybrid latency vs the paper's servers, 251 inactive";
      paper_expectation =
        "A hybrid should match phhttpd's low-load latency and devpoll's \
         stability under overload.";
      chart = Median_latency;
      series =
        [
          { label = "hybrid"; kind = Experiment.Hybrid; inactive = 251 };
          { label = "devpoll"; kind = devpoll; inactive = 251 };
          { label = "phhttpd"; kind = Experiment.Phhttpd; inactive = 251 };
        ];
      rates = Sweep.paper_rates;
    };
  ]

let lineage =
  {
    id = "lineage";
    title = "Beyond the paper: select -> poll -> /dev/poll -> epoll, 501 inactive";
    paper_expectation =
      "Not in the paper: the historical arc its work sits on. select and \
       poll pay O(descriptors) per wait and collapse under idle load; \
       /dev/poll pays O(interests) hint checks and erodes only at extreme \
       rates; the epoll-style ready list pays O(ready) and stays flat.";
    chart = Reply_rate;
    series =
      [
        { label = "select i=501"; kind = Experiment.Thttpd_select; inactive = 501 };
        { label = "poll i=501"; kind = Experiment.Thttpd_poll; inactive = 501 };
        { label = "devpoll i=501"; kind = devpoll; inactive = 501 };
        {
          label = "epoll i=501";
          kind = Experiment.Thttpd_epoll { max_events = 64 };
          inactive = 501;
        };
      ];
    rates = Sweep.paper_rates;
  }

let all = all @ [ lineage ]

let find id = List.find_opt (fun f -> String.equal f.id id) all
let ids () = List.map (fun f -> f.id) all

let run ?pool ?(scale = 0.2) ?rates ?(seed = 42) ?(on_point = fun ~label:_ _ -> ()) fig =
  let rates = match rates with Some r -> r | None -> fig.rates in
  List.map
    (fun spec ->
      let workload =
        Workload.scaled
          { Workload.default with Workload.inactive_connections = spec.inactive }
          scale
      in
      let base =
        { (Experiment.default_config ~kind:spec.kind ~workload) with Experiment.seed }
      in
      let points =
        Sweep.run ?pool ~on_point:(fun p -> on_point ~label:spec.label p) ~base ~rates ()
      in
      { Report.label = spec.label; points })
    fig.series

let render ppf fig series =
  Fmt.pf ppf "== %s: %s ==@." fig.id fig.title;
  Fmt.pf ppf "paper: %s@.@." fig.paper_expectation;
  List.iter (fun s -> Fmt.pf ppf "%a@." Report.pp_table s) series;
  match fig.chart with
  | Reply_rate -> Report.pp_reply_rate_chart ppf series
  | Error_rate -> Report.pp_error_comparison ppf series
  | Median_latency -> Report.pp_latency_comparison ppf series

(* The paper's 35 000-connection regime, previously host-prohibitive:
   with O(active) scan paths the host cost of a point scales with the
   request rate, not the open-set size, so sweeping the idle count to
   35k is cheap. The x axis is the idle-connection count at a fixed
   request rate; select is excluded (FD_SETSIZE caps it at 1024). *)
type idle_scaling = {
  is_id : string;
  is_title : string;
  is_expectation : string;
  is_rate : int;  (** fixed request rate for every point *)
  is_idles : int list;  (** the x axis *)
  is_series : (string * Experiment.server_kind) list;
}

let idle_scaling =
  {
    is_id = "idle-scaling";
    is_title = "Reply rate and median latency vs idle connections, 500 req/s";
    is_expectation =
      "poll degrades linearly in the idle count (every call scans the \
       whole set); /dev/poll and epoll stay flat out to the paper's \
       35 000-connection regime until memory- or port-bound.";
    is_rate = 500;
    is_idles = [ 501; 2000; 10000; 35000 ];
    is_series =
      [
        ("poll", Experiment.Thttpd_poll);
        ("devpoll", devpoll);
        ("epoll", Experiment.Thttpd_epoll { max_events = 64 });
      ];
  }

let idle_point_config ~kind ~seed ~rate idle =
  let workload =
    {
      Workload.default with
      Workload.request_rate = rate;
      total_connections = Stdlib.max 100 (3 * rate);
      inactive_connections = idle;
    }
  in
  let base = Experiment.default_config ~kind ~workload in
  {
    base with
    Experiment.seed = Sio_sim.Rng.derive ~seed idle;
    (* Room for the idle pool: descriptors, accept bursts (the pool
       opens over 500 ms), and settle time to let it all establish. *)
    server_fd_limit = idle + 2048;
    settle = Sio_sim.Time.s (2 + (idle / 5000));
    thttpd = { base.Experiment.thttpd with Sio_httpd.Thttpd.backlog = 4096 };
  }

let run_idle_scaling ?pool ?idles ?(rate = idle_scaling.is_rate) ?(seed = 42)
    ?(on_point = fun ~label:_ _ -> ()) () =
  let idles = match idles with Some l -> l | None -> idle_scaling.is_idles in
  List.map
    (fun (label, kind) ->
      let run_idle idle =
        {
          Sweep.rate = idle;
          outcome = Experiment.run (idle_point_config ~kind ~seed ~rate idle);
        }
      in
      let points =
        match pool with
        | None ->
            List.map
              (fun idle ->
                let p = run_idle idle in
                on_point ~label p;
                p)
              idles
        | Some pool ->
            let ps = Sio_sim.Domain_pool.map pool ~f:run_idle idles in
            List.iter (fun p -> on_point ~label p) ps;
            ps
      in
      { Report.label; points })
    idle_scaling.is_series

let render_idle_scaling ppf series =
  let f = idle_scaling in
  Fmt.pf ppf "== %s: %s ==@." f.is_id f.is_title;
  Fmt.pf ppf "expected: %s@.@." f.is_expectation;
  List.iter
    (fun s ->
      Fmt.pf ppf "%s@." s.Report.label;
      Fmt.pf ppf "  idle       avg        sd       min       max     err%%  median_ms@.";
      List.iter
        (fun p ->
          let m = p.Sweep.outcome.Experiment.metrics in
          Fmt.pf ppf "%6d  %8.1f  %8.1f  %8.1f  %8.1f  %7.2f  %9.2f@." p.Sweep.rate
            m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd m.Metrics.reply_rate_min
            m.Metrics.reply_rate_max m.Metrics.error_percent (Metrics.median_latency_ms m))
        s.points;
      Fmt.pf ppf "@.")
    series;
  (* Column comparisons on the shared x axis: idle count down, one
     mechanism per column. *)
  let columns pick unit_label =
    Fmt.pf ppf "  idle";
    List.iter (fun s -> Fmt.pf ppf "  %18s" s.Report.label) series;
    Fmt.pf ppf "    (%s)@." unit_label;
    match series with
    | [] -> ()
    | first :: _ ->
        List.iteri
          (fun i p0 ->
            Fmt.pf ppf "%6d" p0.Sweep.rate;
            List.iter
              (fun s ->
                match List.nth_opt s.Report.points i with
                | Some p -> Fmt.pf ppf "  %18.2f" (pick p.Sweep.outcome.Experiment.metrics)
                | None -> Fmt.pf ppf "  %18s" "-")
              series;
            Fmt.pf ppf "@.")
          first.Report.points
  in
  columns
    (fun m -> m.Metrics.reply_rate_avg)
    (Printf.sprintf "avg reply rate /s at %d req/s offered" f.is_rate);
  Fmt.pf ppf "@.";
  columns (fun m -> Metrics.median_latency_ms m) "median connection time, ms"
