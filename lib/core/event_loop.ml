open Sio_sim
open Sio_kernel

type backend_kind =
  | Select
  | Poll
  | Devpoll of { use_mmap : bool; max_events : int }
  | Epoll of { max_events : int }
  | Rt_signals of { signo : int; batch : int }

let default_devpoll = Devpoll { use_mmap = true; max_events = 64 }

type watch = { events : Pollmask.t; callback : Pollmask.t -> unit }

type notifier =
  | Via_backend of Sio_httpd.Backend.t
  | Via_signals of { signo : int; batch : int }

type t = {
  proc : Process.t;
  notifier : notifier;
  watches : watch Fd_map.t;
  mutable running : bool;
  mutable stopped : bool;
  mutable overflow_recoveries : int;
  mutable periodics : Event_queue.handle list;
}

let create ~proc ~backend =
  let notifier =
    match backend with
    | Select -> Ok (Via_backend (Sio_httpd.Backend.select proc))
    | Poll -> Ok (Via_backend (Sio_httpd.Backend.poll proc))
    | Epoll { max_events } -> Ok (Via_backend (Sio_httpd.Backend.epoll ~max_events proc))
    | Devpoll { use_mmap; max_events } -> (
        match Sio_httpd.Backend.devpoll ~use_mmap ~max_events proc with
        | Ok b -> Ok (Via_backend b)
        | Error `Emfile -> Error `Emfile)
    | Rt_signals { signo; batch } ->
        if signo < Rt_signal.sigrtmin then
          invalid_arg "Event_loop.create: signo below SIGRTMIN"
        else if batch <= 0 then invalid_arg "Event_loop.create: batch must be positive"
        else Ok (Via_signals { signo; batch })
  in
  match notifier with
  | Error `Emfile -> Error `Emfile
  | Ok notifier ->
      Ok
        {
          proc;
          notifier;
          watches = Fd_map.create ~initial_capacity:64 ();
          running = false;
          stopped = false;
          overflow_recoveries = 0;
          periodics = [];
        }

let backend_name t =
  match t.notifier with
  | Via_backend b -> Sio_httpd.Backend.name b
  | Via_signals { batch; _ } -> if batch > 1 then "rtsig-batched" else "rtsig"

let watch t ~fd ~events callback =
  Fd_map.set t.watches fd { events; callback };
  match t.notifier with
  | Via_backend b -> Sio_httpd.Backend.add b fd events
  | Via_signals { signo; _ } -> ignore (Kernel.fcntl_setsig t.proc fd ~signo)

let unwatch t fd =
  if Fd_map.remove t.watches fd then begin
    match t.notifier with
    | Via_backend b -> Sio_httpd.Backend.remove b fd
    | Via_signals _ -> ignore (Kernel.fcntl_clearsig t.proc fd)
  end

let watched_count t = Fd_map.length t.watches

let engine t = (Process.host t.proc).Host.engine

let add_timer t ~after f = Engine.after (engine t) after f

let add_periodic t ~every f =
  if every <= 0 then invalid_arg "Event_loop.add_periodic: period must be positive";
  let rec arm () =
    let h =
      Engine.after (engine t) every (fun () ->
          if not t.stopped then begin
            f ();
            arm ()
          end)
    in
    t.periodics <- h :: t.periodics
  in
  arm ()

let dispatch t fd mask =
  match Fd_map.find t.watches fd with
  | Some w -> w.callback mask
  | None -> () (* stale event for an unwatched descriptor *)

(* Recovery poll over the entire watch set: the paper's prescription
   after an RT-signal queue overflow. Fd_map iterates in ascending fd
   order, so the poll (and therefore dispatch) order is a function of
   the watch set alone — no snapshot-and-sort needed. *)
let recovery_poll t ~k =
  t.overflow_recoveries <- t.overflow_recoveries + 1;
  let interests =
    List.rev (Fd_map.fold t.watches ~init:[] ~f:(fun acc fd w -> (fd, w.events) :: acc))
  in
  Kernel.poll t.proc ~interests ~timeout:(Some Time.zero) ~k:(fun results ->
      List.iter (fun r -> dispatch t r.Sio_kernel.Poll.fd r.Sio_kernel.Poll.revents) results;
      k ())

let rec loop t =
  if not t.stopped then begin
    match t.notifier with
    | Via_backend b ->
        Sio_httpd.Backend.wait b ~timeout:(Some (Time.s 10)) ~k:(fun events ->
            if not t.stopped then begin
              List.iter
                (fun ev -> dispatch t ev.Sio_httpd.Backend.fd ev.Sio_httpd.Backend.mask)
                events;
              Kernel.yield t.proc (fun () -> loop t)
            end)
    | Via_signals { batch; _ } ->
        Kernel.sigtimedwait4 t.proc ~max:batch ~timeout:(Some (Time.s 10))
          ~k:(fun deliveries ->
            if not t.stopped then begin
              let overflowed = ref false in
              List.iter
                (function
                  | Rt_signal.Signal { fd; band; _ } -> dispatch t fd band
                  | Rt_signal.Overflow -> overflowed := true)
                deliveries;
              if !overflowed then begin
                ignore (Kernel.flush_signals t.proc);
                recovery_poll t ~k:(fun () -> Kernel.yield t.proc (fun () -> loop t))
              end
              else Kernel.yield t.proc (fun () -> loop t)
            end)
  end

let run t =
  if t.running then invalid_arg "Event_loop.run: already running";
  t.running <- true;
  loop t

let stop t =
  t.stopped <- true;
  List.iter (fun h -> Engine.cancel (engine t) h) t.periodics;
  t.periodics <- []

let overflow_recoveries t = t.overflow_recoveries
