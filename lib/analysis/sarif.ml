(* SARIF 2.1.0 output for CI ingestion.

   Hand-rolled like [Finding.to_json] — no new dependencies. The
   rendering is fully deterministic (rule order follows the registry,
   results arrive pre-sorted from the driver), so a clean run's output
   is a stable fixture and the format itself is regression-testable.
   SARIF regions are 1-based; findings carry 0-based columns. *)

let esc = Finding.json_escape

(* The parse-error pseudo-rule is not in the registry but can appear in
   results; declare it so every result's ruleId is declared. *)
let parse_error_doc = "file could not be parsed; the tree must stay analyzable"

let rule_json (id, doc) =
  Printf.sprintf {|        { "id": "%s", "shortDescription": { "text": "%s" } }|} (esc id)
    (esc doc)

(* Interprocedural findings ship their provenance as a codeFlow: one
   threadFlow whose locations replay the path consumer-to-origin, so
   code-scanning UIs render the whole chain, not just the endpoint. *)
let flow_json (flow : Finding.step list) =
  let step_json (s : Finding.step) =
    String.concat "\n"
      [
        "                { \"location\": {";
        Printf.sprintf {|                    "message": { "text": "%s" },|} (esc s.swhat);
        {|                    "physicalLocation": {|};
        Printf.sprintf {|                      "artifactLocation": { "uri": "%s" },|}
          (esc s.sfile);
        Printf.sprintf
          {|                      "region": { "startLine": %d, "startColumn": %d } } } }|}
          s.sline (s.scol + 1);
      ]
  in
  [
    {|          "codeFlows": [|};
    {|            { "threadFlows": [|};
    {|              { "locations": [|};
    String.concat ",\n" (List.map step_json flow);
    {|              ] }|};
    {|            ] }|};
    {|          ],|};
  ]

let result_json (f : Finding.t) =
  String.concat "\n"
    ([
       "        {";
       Printf.sprintf {|          "ruleId": "%s",|} (esc f.rule);
       {|          "level": "error",|};
       Printf.sprintf {|          "message": { "text": "%s" },|} (esc f.message);
     ]
    @ (match f.flow with [] -> [] | flow -> flow_json flow)
    @ [
        {|          "locations": [|};
        {|            { "physicalLocation": {|};
        Printf.sprintf {|                "artifactLocation": { "uri": "%s" },|} (esc f.file);
        Printf.sprintf {|                "region": { "startLine": %d, "startColumn": %d } } }|}
          f.line (f.col + 1);
        {|          ]|};
        "        }";
      ])

let render ~rules findings =
  let rule_docs =
    List.map (fun (r : Rule.t) -> (r.id, r.doc)) rules @ [ ("parse-error", parse_error_doc) ]
  in
  let results =
    match findings with
    | [] -> [ {|      "results": []|} ]
    | fs -> ({|      "results": [|} :: [ String.concat ",\n" (List.map result_json fs) ]) @ [ "      ]" ]
  in
  String.concat "\n"
    ([
       "{";
       {|  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",|};
       {|  "version": "2.1.0",|};
       {|  "runs": [|};
       "    {";
       {|      "tool": { "driver": { "name": "sio_lint", "rules": [|};
       String.concat ",\n" (List.map rule_json rule_docs);
       "      ] } },";
     ]
    @ results
    @ [ "    }"; "  ]"; "}" ])
  ^ "\n"
