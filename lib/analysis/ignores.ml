(* The [@lint.ignore] suppression surface: enumerate every annotation
   in a file (for [--audit-ignores] and the stale-ignore rule) and
   strip them all (for the shadow runs that ask "what would fire if
   this file had no suppressions?"). Stripping preserves every
   location, so shadow findings land at the same positions the real
   run would report. *)

open Ppxlib

type site = {
  line : int;  (** start of the annotated node *)
  col : int;
  end_line : int;
  end_col : int;
  reason : string option;
}

let reason_of_attr (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc = Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let find_attr attrs =
  List.find_opt
    (fun (a : attribute) -> String.equal a.attr_name.txt Symbol_index.ignore_name)
    attrs

let site_of ~loc attr =
  let s = loc.Location.loc_start and e = loc.Location.loc_end in
  {
    line = s.Lexing.pos_lnum;
    col = s.Lexing.pos_cnum - s.Lexing.pos_bol;
    end_line = e.Lexing.pos_lnum;
    end_col = e.Lexing.pos_cnum - e.Lexing.pos_bol;
    reason = reason_of_attr attr;
  }

let collect str =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match find_attr e.pexp_attributes with
        | Some a -> acc := site_of ~loc:e.pexp_loc a :: !acc
        | None -> ());
        super#expression e

      method! value_binding vb =
        (match find_attr vb.pvb_attributes with
        | Some a -> acc := site_of ~loc:vb.pvb_loc a :: !acc
        | None -> ());
        super#value_binding vb
    end
  in
  it#structure str;
  List.sort (fun a b -> compare (a.line, a.col, a.end_line, a.end_col) (b.line, b.col, b.end_line, b.end_col)) !acc

let strip str =
  let not_ignore (a : attribute) =
    not (String.equal a.attr_name.txt Symbol_index.ignore_name)
  in
  let m =
    object
      inherit Ast_traverse.map as super

      method! expression e =
        super#expression { e with pexp_attributes = List.filter not_ignore e.pexp_attributes }

      method! value_binding vb =
        super#value_binding
          { vb with pvb_attributes = List.filter not_ignore vb.pvb_attributes }
    end
  in
  m#structure str
