(* Interprocedural fact propagation with provenance.

   The engine under nondet-taint and resource-pairing: a named fact
   (a taint kind, an acquire obligation) seeded at some definitions
   propagates callee-to-caller along the resolved call graph, carrying
   a provenance path — the step sequence a report can replay as SARIF
   codeFlows. Same design rules as [Reachability]:

   - deterministic: nodes are swept in the caller-supplied order,
     callees in callgraph (sorted) order, so the final fact table is a
     pure function of the graph and seeds;
   - bounded: a node holds each fact at most once (first path wins and
     is never replaced — additions are monotone, so the sweep loop
     terminates once no fact moves), and every path is clipped to
     [max_path] steps with the origin end preserved;
   - conservative: unresolved calls contribute nothing — a fact never
     travels through an edge the callgraph could not prove. *)

module SMap = Map.Make (String)

(* A provenance path: consumer-to-origin step list; the head is the
   step nearest the reporting site, the last element is the origin
   (the source mention, the acquire site). *)
type facts = Finding.step list SMap.t

type t = facts SMap.t

let max_path = 16

(* Clip long paths keeping both ends meaningful: the head steps show
   where the fact entered the reporting scope, the preserved tail is
   the origin. *)
let clip path =
  let n = List.length path in
  if n <= max_path then path
  else
    let rec take k = function
      | x :: tl when k > 0 -> x :: take (k - 1) tl
      | _ -> []
    in
    let origin = List.nth path (n - 1) in
    take (max_path - 1) path @ [ origin ]

let facts (t : t) node = Option.value (SMap.find_opt node t) ~default:SMap.empty

(* Fixpoint: each seed installs its fact at its node; then repeatedly,
   every caller inherits every fact its callees hold, with the
   call-site step prepended to the callee's path. [call_step caller
   callee] supplies that step (None drops the edge — e.g. when no
   mention site could be attributed). *)
let solve ~order ~callees ~call_step ~seeds : t =
  let state = ref SMap.empty in
  let facts_of n = Option.value (SMap.find_opt n !state) ~default:SMap.empty in
  List.iter
    (fun n ->
      let fs =
        List.fold_left
          (fun m (fact, path) -> if SMap.mem fact m then m else SMap.add fact (clip path) m)
          (facts_of n) (seeds n)
      in
      if not (SMap.is_empty fs) then state := SMap.add n fs !state)
    order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun caller ->
        List.iter
          (fun callee ->
            if not (String.equal caller callee) then begin
              let cfs = facts_of callee in
              if not (SMap.is_empty cfs) then
                match call_step caller callee with
                | None -> ()
                | Some st ->
                    let before = facts_of caller in
                    let after =
                      SMap.fold
                        (fun fact path acc ->
                          if SMap.mem fact acc then acc
                          else begin
                            changed := true;
                            SMap.add fact (clip (st :: path)) acc
                          end)
                        cfs before
                    in
                    if not (SMap.is_empty after) then state := SMap.add caller after !state
            end)
          (callees caller))
      order
  done;
  !state

(* Attribute a call step to each resolved (caller, callee) edge: the
   first mention site in the caller's body that resolves to the
   callee, labelled with the callee's qualified name. Shared by both
   rule families so their codeFlows agree on positions. *)
let call_step_of_index (index : Symbol_index.t) =
  let per_caller =
    List.fold_left
      (fun m (s : Symbol_index.symbol) ->
        let scope = Symbol_index.scope_of s in
        let sites =
          List.fold_left
            (fun acc (p, line, col) ->
              Symbol_index.resolve_in index ~scope p
              |> List.fold_left
                   (fun acc (target : Symbol_index.symbol) ->
                     if SMap.mem target.uid acc then acc
                     else
                       SMap.add target.uid
                         {
                           Finding.sfile = s.file;
                           sline = line;
                           scol = col;
                           swhat = String.concat "." target.qname;
                         }
                         acc)
                   acc)
            SMap.empty s.mention_sites
        in
        SMap.add s.uid sites m)
      SMap.empty index.symbols
  in
  fun caller callee ->
    match SMap.find_opt caller per_caller with
    | None -> None
    | Some sites -> SMap.find_opt callee sites

(* Human rendering of a provenance path for the text report: the step
   labels consumer-to-origin, with the origin's position appended. *)
let path_to_string steps =
  match List.rev steps with
  | [] -> ""
  | origin :: _ ->
      String.concat " -> " (List.map (fun s -> s.Finding.swhat) steps)
      ^ Printf.sprintf " (%s:%d)" origin.Finding.sfile origin.Finding.sline

(* List-level convenience over an explicit edge list, used by the
   property tests (mirror of [Reachability.reachable]): which (node,
   fact) pairs hold after propagation, sorted. Monotone in [edges]:
   any superset of the edge set yields a superset of the result —
   first-path-wins only affects provenance, never fact membership. *)
let propagate ~edges ~seeds =
  let nodes =
    List.sort_uniq String.compare
      (List.concat_map (fun (a, b) -> [ a; b ]) edges @ List.map fst seeds)
  in
  let succ_map =
    List.fold_left
      (fun m (a, b) ->
        SMap.update a (function None -> Some [ b ] | Some l -> Some (b :: l)) m)
      SMap.empty edges
  in
  let callees n =
    match SMap.find_opt n succ_map with
    | Some l -> List.sort_uniq String.compare l
    | None -> []
  in
  let dummy = { Finding.sfile = "<edge>"; sline = 0; scol = 0; swhat = "" } in
  let seed_map =
    List.fold_left
      (fun m (n, fact) ->
        SMap.update n
          (function None -> Some [ (fact, []) ] | Some l -> Some ((fact, []) :: l))
          m)
      SMap.empty seeds
  in
  solve ~order:nodes ~callees
    ~call_step:(fun _ _ -> Some dummy)
    ~seeds:(fun n -> match SMap.find_opt n seed_map with Some l -> List.rev l | None -> [])
  |> SMap.bindings
  |> List.concat_map (fun (n, fs) -> List.map (fun (fact, _) -> (n, fact)) (SMap.bindings fs))
