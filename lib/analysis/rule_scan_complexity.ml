(* scan-complexity: checked-not-trusted [@complexity] annotations.

   The paper's central invariant — event-delivery cost scales with the
   *active* population, never the interest set — is only as durable as
   whatever enforces it. This rule makes every backend scan/wait entry
   point carry a [@complexity "O(...)"] annotation and makes the
   annotation a proof obligation, not a comment: the [Complexity]
   interpreter re-derives the structural (host) cost of the body on
   every run, and the annotation must match the inferred summary
   *exactly* — in both directions. An inferred cost the annotation
   does not entail is a regression (some loop walks a population the
   contract excludes: the finding's codeFlow names that loop). An
   annotation the inferred cost does not entail is stale or padded
   (claiming O(interests) for an O(active) body would quietly license
   a future regression up to the looser bound), and is reported too —
   "zero unchecked or stale annotations" is the acceptance bar.

   Any annotated definition is checked; the entry points in
   [Complexity.entry_points] are additionally *required* to be
   annotated. The charged dimension is deliberately not compared
   against the annotation: bulk-charging the analytically-skipped idle
   population makes charged cost O(interests) on paths whose
   structural cost is O(active) — that split is the point, and
   charge-linearity polices the charged side.

   Attributes survive the stale-ignore shadow run's suppression
   stripping and this rule does not honor [@lint.ignore] (a suppressed
   broken invariant is still broken), so audit mode needs no
   re-derivation: the shared whole-program summaries are the truth in
   both modes. *)

module C = Complexity
module Df = Dataflow
module SMap = Map.Make (String)

let id = "scan-complexity"

let doc =
  "backend scan/wait entry points must carry a [@complexity \"O(...)\"] annotation \
   that exactly matches the inferred structural cost (missing, unparseable, \
   violated and stale annotations are all findings)"

let symbol_step (s : Symbol_index.symbol) =
  {
    Finding.sfile = s.file;
    sline = s.line;
    scol = s.col;
    swhat =
      Printf.sprintf "%s %s"
        (if C.is_entry_point s then "entry point" else "certified definition")
        (String.concat "." s.qname);
  }

let check ~ctx ~path (_ : Ppxlib.structure) =
  let index = Context.index ctx in
  let r = Context.complexity ctx in
  Symbol_index.file_symbols index path
  |> List.concat_map (fun (s : Symbol_index.symbol) ->
         let entry = C.is_entry_point s in
         let inferred =
           match SMap.find_opt s.uid r.C.summaries with
           | Some sum -> sum.C.host
           | None -> C.const
         in
         match s.annot with
         | None ->
             if entry then
               [
                 Finding.make ~loc:s.loc ~rule:id
                   (Printf.sprintf
                      "entry point %s has no [@complexity] annotation; inferred \
                       structural cost is %s — annotate the binding with \
                       [@complexity \"%s\"] so the bound is checked on every lint \
                       run"
                      (String.concat "." s.qname)
                      (C.render_cost_origin inferred)
                      (C.render_cost inferred));
               ]
             else []
         | Some raw -> (
             match C.parse_annot raw with
             | None ->
                 [
                   Finding.make ~loc:s.loc ~rule:id
                     (Printf.sprintf
                        "unparseable [@complexity %S] on %s: expected \
                         \"O(term + term)\" with terms multiplying 1, active, \
                         ready, interests, conns, slots (n_-prefixed spellings \
                         accepted)"
                        raw
                        (String.concat "." s.qname));
                 ]
             | Some annot ->
                 if not (C.le inferred annot) then begin
                   let culprit, steps =
                     match C.first_violation inferred annot with
                     | Some (m, p) -> (m, p)
                     | None -> (C.render_cost inferred, [])
                   in
                   let flow = Df.clip (symbol_step s :: steps) in
                   [
                     Finding.make ~flow ~loc:s.loc ~rule:id
                       (Printf.sprintf
                          "%s is annotated [@complexity %S] but its inferred \
                           structural cost %s is not entailed: %s arises from %s. \
                           flow: %s"
                          (String.concat "." s.qname)
                          raw
                          (C.render_cost inferred)
                          culprit
                          (match steps with
                          | st :: _ ->
                              Printf.sprintf "%s (%s:%d)" st.Finding.swhat st.sfile
                                st.sline
                          | [] -> "the function body")
                          (Df.path_to_string flow));
                   ]
                 end
                 else if not (C.le annot inferred) then
                   [
                     Finding.make
                       ~flow:[ symbol_step s ]
                       ~loc:s.loc ~rule:id
                       (Printf.sprintf
                          "stale annotation on %s: [@complexity %S] is looser than \
                           the inferred structural cost %s; tighten the annotation \
                           to the inferred bound so it cannot mask a future \
                           regression"
                          (String.concat "." s.qname)
                          raw (C.render_cost inferred));
                   ]
                 else []))

let warm ctx = ignore (Context.complexity ctx)
let rule = { Rule.id; doc; check; warm }
