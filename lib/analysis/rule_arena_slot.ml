(* arena hygiene: raw Conn_arena slots must not outlive their scope.

   [Conn_arena.alloc] returns a dense array index that the arena
   reuses the moment the connection is freed. A raw slot stored in a
   Hashtbl, a ref cell, or a mutable field keeps meaning "whatever
   connection occupies that row now" — after reuse it silently renames
   itself to a different connection, the classic stale-fd bug the
   generation stamp exists to prevent (DESIGN.md §5). The safe pattern
   is the one [Sio_kernel.Socket] uses: pack (slot, generation) into
   an immutable handle at the alloc site and let only the handle
   circulate; every dereference then revalidates the generation. We
   approximate the escape syntactically: a let-bound alloc result (or
   a direct [Conn_arena.alloc] application) appearing as an argument
   to a [Hashtbl.*] function, on the right of [:=], or on the right of
   a mutable-field assignment is a finding. *)

open Ppxlib

let id = "arena-slot"

let doc =
  "raw Conn_arena.alloc slots are reused after free; storing one in a \
   Hashtbl, ref, or mutable field lets it silently rename to a later \
   connection — pack (slot, generation) into an immutable handle, or \
   annotate [@lint.ignore]"

(* [Conn_arena.alloc] under any module prefix ([Conn_arena.alloc],
   [Sio_kernel.Conn_arena.alloc], ...). *)
let is_alloc_path p =
  match List.rev p with "alloc" :: "Conn_arena" :: _ -> true | _ -> false

let is_alloc_apply e =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match fn.pexp_desc with
      | Pexp_ident { txt; _ } -> is_alloc_path (Rule.path_of_lid txt)
      | _ -> false)
  | _ -> false

(* Any [Hashtbl.<fn>] head, under any prefix ([Hashtbl.replace],
   [Stdlib.Hashtbl.add], ...). *)
let is_hashtbl_head e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (Rule.path_of_lid txt) with
      | _ :: "Hashtbl" :: _ -> true
      | _ -> false)
  | _ -> false

let check ~ctx:_ ~path:_ str =
  let acc = ref [] in
  let report ~loc what =
    acc :=
      Finding.make ~loc ~rule:id
        (Printf.sprintf
           "a raw Conn_arena slot escapes into %s; slots are reused after \
            free, so the stored index silently renames itself to a later \
            connection. Pack (slot, generation) into an immutable handle at \
            the alloc site, or annotate [@lint.ignore \"reason\"]."
           what)
      :: !acc
  in
  let visitor =
    object (self)
      inherit Rule.scoped_checker as super_scoped

      (* Identifiers currently let-bound to a raw [Conn_arena.alloc]
         result, innermost scope first. Rebinding a name to anything
         else shadows it out of the set. *)
      val mutable slots = ([] : string list)

      method private is_slot e =
        is_alloc_apply e
        ||
        match e.pexp_desc with
        | Pexp_ident { txt = Lident n; _ } -> List.mem n slots
        | _ -> false

      method! expression e =
        match e.pexp_desc with
        | Pexp_let (_, vbs, _) ->
            let var vb =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> Some txt
              | _ -> None
            in
            let bound alloc =
              List.filter_map
                (fun vb ->
                  if is_alloc_apply vb.pvb_expr = alloc then var vb else None)
                vbs
            in
            let added = bound true and shadowed = bound false in
            let saved = slots in
            slots <-
              added @ List.filter (fun n -> not (List.mem n shadowed)) slots;
            super_scoped#expression e;
            slots <- saved
        | _ -> super_scoped#expression e

      method enter_expression e =
        match e.pexp_desc with
        | Pexp_apply (fn, args) ->
            if is_hashtbl_head fn then
              List.iter
                (fun (_, arg) ->
                  if self#is_slot arg then
                    report ~loc:arg.pexp_loc "a Hashtbl argument")
                args
            else (
              match (fn.pexp_desc, args) with
              | Pexp_ident { txt = Lident ":="; _ }, [ _; (_, rhs) ]
                when self#is_slot rhs ->
                  report ~loc:rhs.pexp_loc "a ref cell"
              | _ -> ())
        | Pexp_setfield (_, _, rhs) when self#is_slot rhs ->
            report ~loc:rhs.pexp_loc "a mutable record field"
        | _ -> ()
    end
  in
  visitor#structure str;
  List.rev !acc

let rule = { Rule.id; doc; check; warm = Rule.warm_nothing }
