(* determinism: no ambient clock or global randomness.

   A run must be a pure function of its seed (DESIGN.md §2). Reading
   the host clock or drawing from the stdlib's global [Random] state
   injects host-dependent values into the simulation. The only module
   allowed to own entropy is [Sio_sim.Rng], whose streams are seeded
   explicitly. *)

open Ppxlib

let id = "nondet-clock"

let doc =
  "host clock (Unix.gettimeofday/Unix.time/Sys.time) and global Random are \
   nondeterministic; thread Sio_sim.Rng / simulated Time instead"

(* Host-clock reads. [Sys.time] is CPU time, equally unreproducible. *)
let clock_idents =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

(* The Rng implementation itself is the one place entropy plumbing is
   allowed to live. *)
let exempt_file path = String.equal (Filename.basename path) "rng.ml"

let check ~ctx:_ ~path str =
  if exempt_file path then []
  else begin
    let acc = ref [] in
    let add ~loc msg = acc := Finding.make ~loc ~rule:id msg :: !acc in
    let visitor =
      object
        inherit Rule.scoped_checker

        method enter_expression e =
          match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match Rule.path_of_lid txt with
              | "Random" :: _ :: _ ->
                  add ~loc:e.pexp_loc
                    (Printf.sprintf
                       "%s draws from the global Random state; runs stop being a \
                        pure function of their seed. Use Sio_sim.Rng."
                       (Rule.lid_string txt))
              | p when List.mem p clock_idents ->
                  add ~loc:e.pexp_loc
                    (Printf.sprintf
                       "%s reads the host clock; simulation-visible time must come \
                        from Sio_sim.Time / Engine.now."
                       (Rule.lid_string txt))
              | _ -> ())
          | _ -> ()
      end
    in
    visitor#structure str;
    List.rev !acc
  end

let rule = { Rule.id; doc; check; warm = Rule.warm_nothing }
