(* resource-pairing: every acquire must be pairable with a live
   release.

   The accounting behind the million-connection figure: kernel memory
   reserved at accept ([Host.mem_reserve]) must be released on every
   close/error path, and the same discipline holds for the other
   registration-shaped resources — readiness watchers, edge
   observers, epoll and /dev/poll interest entries. PR 6 fixed a
   dead-closure leak of exactly this shape by hand; this rule makes
   the class un-reintroducible.

   Obligation model (typestate at module granularity): a module that
   performs an unsuppressed acquire must (a) also mention a matching
   release, and (b) at least one of those release mentions must be
   *live* — its containing definition referenced by some other
   definition (or be a top-level effect). A release parked in a
   function nothing calls is the PR 6 leak with extra steps, so it
   does not discharge the obligation. The resource's defining module
   is exempt — it implements both halves.

   Findings attach to the acquire site and carry an interprocedural
   flow (entry -> ... -> acquire) from the [Dataflow] engine, so the
   SARIF codeFlow shows how the acquiring code is reached. *)

module Df = Dataflow
open Ppxlib
module SMap = Map.Make (String)
module SSet = Set.Make (String)

let id = "resource-pairing"

let doc =
  "an acquire (Host.mem_reserve, watcher/observer registration, epoll or /dev/poll \
   interest add, transmit-ring create/map) must be paired with a live release mention \
   in the same module"

type pair = {
  what : string;  (** human name of the resource *)
  acquires : string list list;  (** qualified mention suffixes that acquire *)
  releases : string list list;  (** qualified mention suffixes that release *)
  owner : string;  (** defining module, exempt from the obligation *)
}

let pairs =
  [
    {
      what = "modeled kernel memory";
      acquires = [ [ "Host"; "mem_reserve" ] ];
      releases = [ [ "Host"; "mem_release" ] ];
      owner = "Host";
    };
    {
      what = "readiness watcher";
      acquires = [ [ "Socket"; "add_watcher" ] ];
      releases = [ [ "Socket"; "remove_watcher" ] ];
      owner = "Socket";
    };
    {
      what = "edge observer";
      acquires = [ [ "Socket"; "subscribe" ] ];
      releases = [ [ "Socket"; "unsubscribe" ] ];
      owner = "Socket";
    };
    {
      what = "epoll interest";
      acquires = [ [ "Epoll"; "ctl_add" ] ];
      releases = [ [ "Epoll"; "ctl_del" ] ];
      owner = "Epoll";
    };
    {
      what = "/dev/poll interest entry";
      acquires = [ [ "Interest_table"; "set" ]; [ "Interest_table"; "set_solaris" ] ];
      releases = [ [ "Interest_table"; "remove" ] ];
      owner = "Interest_table";
    };
    {
      what = "transmit-ring reservation";
      acquires = [ [ "Zc_ring"; "create" ] ];
      releases = [ [ "Zc_ring"; "destroy" ] ];
      owner = "Zc_ring";
    };
    {
      what = "pinned transmit-ring pages";
      acquires = [ [ "Zc_ring"; "map" ] ];
      releases = [ [ "Zc_ring"; "unmap" ] ];
      owner = "Zc_ring";
    };
  ]

let dotted = String.concat "."
let names specs = String.concat " / " (List.map dotted specs)

(* Which pair (if any) a mentioned ident path acquires/releases.
   Matching is the callgraph's suffix rule via
   [Context.mention_matches]: qualified mentions only — a module's own
   unqualified internals never match, which is what makes the owner
   module's implementation invisible to its clients' obligations. *)
let matching select p =
  List.filter (fun pr -> Context.mention_matches (select pr) p) pairs

(* Collect acquire sites (respecting [@lint.ignore]) and release
   sites (suppression-blind: a suppressed release still releases). *)
let scan str =
  let acquires = ref [] in
  let releases = ref [] in
  let it =
    object
      inherit Rule.scoped_checker as _super

      method enter_expression e =
        match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
            List.iter
              (fun pr -> acquires := (pr, e.pexp_loc, Rule.path_of_lid txt) :: !acquires)
              (matching (fun pr -> pr.acquires) (Rule.path_of_lid txt))
        | _ -> ()
    end
  in
  it#structure str;
  let all = function
    | { pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ } ->
        List.iter
          (fun pr -> releases := (pr, pexp_loc) :: !releases)
          (matching (fun pr -> pr.releases) (Rule.path_of_lid txt))
    | _ -> ()
  in
  let it_all =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        all e;
        super#expression e
    end
  in
  it_all#structure str;
  (List.rev !acquires, List.rev !releases)

(* In audit mode the acquire scan must see the stripped AST — which is
   exactly the [str] the driver hands us — so no context rebuild is
   needed: mentions, the call graph and liveness are unchanged by
   stripping attributes. *)

let step_of (loc : Location.t) what =
  let p = loc.loc_start in
  {
    Finding.sfile = p.pos_fname;
    sline = p.pos_lnum;
    scol = p.pos_cnum - p.pos_bol;
    swhat = what;
  }

(* uids referenced by some *other* definition: the liveness test for
   the definition containing a release site. *)
let referenced_uids graph =
  List.fold_left
    (fun acc (n : Callgraph.node) ->
      List.fold_left
        (fun acc c -> if String.equal c n.id then acc else SSet.add c acc)
        acc n.callees)
    SSet.empty graph.Callgraph.nodes

let pos_in (loc : Location.t) (line, col) =
  let s = loc.loc_start and e = loc.loc_end in
  (line, col) >= (s.pos_lnum, s.pos_cnum - s.pos_bol)
  && (line, col) <= (e.pos_lnum, e.pos_cnum - e.pos_bol)

(* The innermost indexed definition whose span contains the position. *)
let containing_symbol syms (line, col) =
  List.fold_left
    (fun best (s : Symbol_index.symbol) ->
      if not (pos_in s.loc (line, col)) then best
      else
        match best with
        | Some (b : Symbol_index.symbol) when pos_in s.loc (b.line, b.col) -> best
        | _ -> Some s)
    None syms

let is_toplevel_effect (s : Symbol_index.symbol) =
  match List.rev s.qname with
  | name :: _ ->
      String.length name >= 10 && String.equal (String.sub name 0 10) "(toplevel:"
  | [] -> false

(* Entry -> ... -> acquire flow for the SARIF codeFlow: seed the
   acquire fact at the definitions of this file that mention an
   acquire of the pair, propagate caller-ward, and keep the longest
   provenance (the most entry-ward chain). Deterministic: the table
   is swept in sorted uid order. *)
let acquire_flow ctx ~path (pr : pair) =
  let index = Context.index ctx in
  let graph = Context.graph ctx in
  let fact = "acquire" in
  let seeds uid =
    match Callgraph.find graph uid with
    | Some n when String.equal n.Callgraph.file path -> (
        match
          List.find_opt
            (fun (s : Symbol_index.symbol) -> String.equal s.uid uid)
            (Symbol_index.file_symbols index path)
        with
        | None -> []
        | Some s ->
            List.filter_map
              (fun (p, line, col) ->
                if matching (fun pr' -> pr'.acquires) p |> List.exists (fun x -> x == pr)
                then
                  Some
                    ( fact,
                      [
                        {
                          Finding.sfile = s.file;
                          sline = line;
                          scol = col;
                          swhat = "acquire: " ^ dotted p;
                        };
                      ] )
                else None)
              s.mention_sites)
    | _ -> []
  in
  let order = List.map (fun (s : Symbol_index.symbol) -> s.uid) index.Symbol_index.symbols in
  let call_step = Df.call_step_of_index index in
  let table = Df.solve ~order ~callees:(Callgraph.callees graph) ~call_step ~seeds in
  SMap.fold
    (fun _uid facts best ->
      match SMap.find_opt fact facts with
      | None -> best
      | Some p -> (
          match best with
          | Some b when List.length b >= List.length p -> best
          | _ -> Some p))
    table None
  |> Option.value ~default:[]

let check ~ctx ~path str =
  let m = Symbol_index.module_of_file path in
  let acquires, releases = scan str in
  if acquires = [] then []
  else begin
    let graph = Context.graph ctx in
    let referenced = lazy (referenced_uids graph) in
    let syms = Symbol_index.file_symbols (Context.index ctx) path in
    acquires
    |> List.filter (fun ((pr : pair), _, _) -> not (String.equal pr.owner m))
    |> List.filter_map (fun ((pr : pair), loc, p) ->
           let rel = List.filter (fun ((pr' : pair), _) -> pr' == pr) releases in
           let live_release ((_ : pair), (rloc : Location.t)) =
             let pos = (rloc.loc_start.pos_lnum, rloc.loc_start.pos_cnum - rloc.loc_start.pos_bol) in
             match containing_symbol syms pos with
             | None -> true (* outside any indexed definition: assume live *)
             | Some s -> is_toplevel_effect s || SSet.mem s.uid (Lazy.force referenced)
           in
           let finding msg =
             let flow =
               match acquire_flow ctx ~path pr with
               | [] -> [ step_of loc ("acquire: " ^ dotted p) ]
               | steps -> steps
             in
             Some
               (Finding.make ~flow ~loc ~rule:id
                  (msg ^ Printf.sprintf " reached via: %s" (Df.path_to_string flow)))
           in
           if rel = [] then
             finding
               (Printf.sprintf
                  "%s acquires %s here but module %s never mentions a matching release \
                   (%s); release on every close/error path, or annotate the acquire \
                   with [@lint.ignore \"reason\"] if the resource is \
                   instance-lifetime."
                  (dotted p) pr.what m (names pr.releases))
           else if not (List.exists live_release rel) then begin
             let dead_homes =
               rel
               |> List.filter_map (fun (_, (rloc : Location.t)) ->
                      containing_symbol syms
                        ( rloc.loc_start.pos_lnum,
                          rloc.loc_start.pos_cnum - rloc.loc_start.pos_bol )
                      |> Option.map (fun (s : Symbol_index.symbol) ->
                             String.concat "." s.qname))
               |> List.sort_uniq String.compare
             in
             finding
               (Printf.sprintf
                  "%s acquires %s here and module %s mentions a release (%s), but only \
                   inside dead code (%s is referenced by nothing), so no path ever \
                   releases; call the release from the close/error paths."
                  (dotted p) pr.what m (names pr.releases)
                  (String.concat ", " dead_homes))
           end
           else None)
  end

let warm ctx = ignore (Context.graph ctx)
let rule = { Rule.id; doc; check; warm }
