(* domain-safety: module-level mutable state must be Atomic.

   Anything bound at module level lives once per program, and since
   PR 1 library code runs on [Sio_sim.Domain_pool] workers: a plain
   [ref]/[Hashtbl.t]/[Buffer.t] at the top of a module is shared,
   unsynchronised state across domains. This is the rule that would
   have caught the Socket/Tcp id-counter races at review time.
   [Atomic.make] is accepted; state that is provably confined to one
   domain can carry [@lint.ignore "reason"]. Only syntactically
   recognisable constructors are flagged — a module-level record with
   mutable fields needs type information we do not have. *)

open Ppxlib

let id = "module-state"

let doc =
  "module-level mutable state (ref/Hashtbl/Queue/Buffer/...) is shared across \
   Domain_pool workers; use Atomic.t or annotate [@lint.ignore]"

(* Head constructor of a binding's right-hand side, looking through
   type constraints. Returns the mutable constructor's name when the
   bound value is recognisably mutable. *)
let rec mutable_head e =
  match e.pexp_desc with
  | Pexp_constraint (e', _) -> mutable_head e'
  | Pexp_coerce (e', _, _) -> mutable_head e'
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Rule.path_of_lid txt with
      | [ "ref" ] -> Some "ref"
      | [ (("Hashtbl" | "Queue" | "Stack" | "Buffer") as m); "create" ] ->
          Some (m ^ ".create")
      | [ "Array"; (("make" | "init" | "create_float") as f) ] -> Some ("Array." ^ f)
      | [ "Bytes"; (("make" | "create") as f) ] -> Some ("Bytes." ^ f)
      | _ -> None)
  | _ -> None

let rec check_structure acc (str : structure) =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              if Rule.has_ignore vb.pvb_attributes then acc
              else
                match (vb.pvb_pat.ppat_desc, mutable_head vb.pvb_expr) with
                | Ppat_var name, Some ctor ->
                    Finding.make ~loc:vb.pvb_loc ~rule:id
                      (Printf.sprintf
                         "module-level mutable state `%s` (%s) is unsynchronised \
                          across Domain_pool workers; use Atomic.t or annotate \
                          [@lint.ignore \"reason\"]."
                         name.txt ctor)
                    :: acc
                | _ -> acc)
            acc vbs
      | Pstr_module mb -> check_module_expr acc mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.fold_left (fun acc mb -> check_module_expr acc mb.pmb_expr) acc mbs
      | _ -> acc)
    acc str

and check_module_expr acc me =
  match me.pmod_desc with
  | Pmod_structure str -> check_structure acc str
  | Pmod_constraint (me', _) -> check_module_expr acc me'
  | Pmod_functor (_, me') -> check_module_expr acc me'
  | _ -> acc

let check ~path:_ str = List.rev (check_structure [] str)
let rule = { Rule.id; doc; check }
