(* domain-safety: module-level mutable state must not be written from
   Domain_pool task code — a real race check, not a per-file guess.

   Anything bound at module level lives once per program, and since
   PR 1 library code runs on [Sio_sim.Domain_pool] workers. The old
   rule flagged every module-level [ref]/[Hashtbl.t]/[Buffer.t]
   declaration on sight; this one only fires when the whole-program
   analysis finds an actual *write* ([:=], [<-], [Hashtbl.replace],
   [Buffer.add_*], ...) to that binding inside code reachable from a
   Domain_pool task root ([Domain_pool.submit]/[map], [Sweep.run],
   [Figures.run] — the task closures live inside those bodies). A
   write-once lookup table in a single-domain example is no longer a
   false positive; an [include struct ... end] no longer hides state
   (the index recurses into it). [Atomic.make] is the sanctioned
   alternative; a binding that is provably confined can still carry
   [@lint.ignore "reason"], audited by stale-ignore. Only syntactically
   recognisable constructors are tracked — a module-level record with
   mutable fields needs type information we do not have. *)

let id = "module-state"

let doc =
  "module-level mutable state (ref/Hashtbl/Queue/Buffer/...) written on a \
   Domain_pool-reachable path races across workers; use Atomic.t or annotate \
   the binding [@lint.ignore]"

let check ~ctx ~path _str =
  let writes = Context.domain_writes ctx in
  Symbol_index.file_symbols (Context.index ctx) path
  |> List.filter_map (fun (b : Symbol_index.symbol) ->
         match b.mutable_ctor with
         | None -> None
         | Some ctor ->
             if b.suppressed && not ctx.Context.audit then None
             else begin
               match Context.SMap.find_opt b.uid writes with
               | None | Some [] -> None
               | Some (e :: rest) ->
                   let more =
                     match List.length rest with
                     | 0 -> ""
                     | n -> Printf.sprintf " [+%d more write site(s)]" n
                   in
                   let name = match List.rev b.qname with n :: _ -> n | [] -> "?" in
                   Some
                     (Finding.make ~loc:b.loc ~rule:id
                        (Printf.sprintf
                           "module-level mutable state `%s` (%s) is written on a \
                            Domain_pool-reachable path: `%s` (%s:%d, %s) runs in \
                            task code reachable from `%s`%s; use Atomic.t or \
                            annotate the binding [@lint.ignore \"reason\"]."
                           name ctor e.Context.writer e.Context.writer_file
                           e.Context.wline e.Context.op
                           (Context.display ctx e.Context.root)
                           more))
             end)

let warm ctx = ignore (Context.domain_writes ctx)
let rule = { Rule.id; doc; check; warm }
