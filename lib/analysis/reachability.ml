(* Deterministic reachability over a string-keyed graph.

   The fixpoint every whole-program rule leans on: which definitions
   are reachable from a given root set. The closure also records, for
   each reached node, *which* root reached it first (the witness), so a
   finding can name the call path that makes it real. Determinism:
   roots are visited in sorted order and successors in the order the
   caller provides (the callgraph keeps them sorted), so the witness
   assignment is a pure function of the graph. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* Breadth-first closure: returns a map from every reachable node to
   the root that first reached it (roots map to themselves). *)
let closure ~succ ~roots =
  let roots = List.sort_uniq String.compare roots in
  let witness = ref SMap.empty in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (SMap.mem r !witness) then begin
        witness := SMap.add r r !witness;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    let root = SMap.find n !witness in
    List.iter
      (fun m ->
        if not (SMap.mem m !witness) then begin
          witness := SMap.add m root !witness;
          Queue.add m q
        end)
      (succ n)
  done;
  !witness

(* List-level convenience over an explicit edge list, used by the
   property tests: reachable nodes, sorted. Monotone in [edges] — any
   superset of the edge set yields a superset of the result. *)
let reachable ~edges ~roots =
  let succ_map =
    List.fold_left
      (fun m (a, b) ->
        SMap.update a (function None -> Some [ b ] | Some l -> Some (b :: l)) m)
      SMap.empty edges
  in
  let succ n =
    match SMap.find_opt n succ_map with
    | Some l -> List.sort_uniq String.compare l
    | None -> []
  in
  closure ~succ ~roots |> SMap.bindings |> List.map fst
