(* nondet-taint: host-side nondeterminism must never reach a
   byte-identity sink.

   The repository's core claim is that every figure CSV and the
   bench-smoke fingerprint are pure functions of the seed. Host-side
   measurements are deliberately *allowed* — RSS and wall clock go
   into JSON report fields — so the invariant is not "no
   nondeterminism" but "no flow from a nondeterministic source into a
   deterministic sink". This rule proves that flow absent with an
   abstract interpretation over [Dataflow]:

   sources (each a taint kind):
     - host-rss:      Host_mem.rss_bytes
     - host-clock:    Unix.gettimeofday / Unix.time / Sys.time
     - procfs-read:   open_in (and friends) on a "/proc..." literal
     - hashtbl-iter:  Hashtbl.fold / Hashtbl.to_seq* enumeration order
   sinks:
     - Report.csv_of_series / Report.csv_of_idle_series (figure CSVs)
     - any definition or call head named [fingerprint] (the
       bench-smoke byte-identity comparison)

   Two checks share the machinery:

   A. sink-region purity — a sink definition must not *transitively
      call* code that performs a source read. Per-definition source
      events seed the [Dataflow] engine; a sink holding a fact is a
      finding whose flow replays sink -> ... -> source. (hashtbl-iter
      is excluded here: enumerating inside a sink is fine if sorted,
      which is a value property, not a call-graph one.)

   B. tainted argument — a sink call whose argument's abstract value
      carries taint is a finding at the call site. Values are
      propagated per-function with interprocedural summaries; a field
      assigned a tainted value taints that *field name* globally, so
      taint survives record round-trips (this is what makes
      [Experiment.host_rss_bytes] radioactive everywhere while the
      record holding it stays usable); [List.sort*] erases the
      hashtbl-iter kind (a sorted enumeration is deterministic).

   Both honour [@lint.ignore]: suppressed expressions contribute no
   sources and no taint. The fixpoint is bounded and deterministic —
   joins prefer the shortest provenance path with a structural
   tie-break, sweeps stop when summaries and the field table are
   stable. *)

module Df = Dataflow
open Ppxlib
module SMap = Map.Make (String)

let id = "nondet-taint"

let doc =
  "host-side nondeterminism (RSS, wall clock, /proc reads, unsorted Hashtbl \
   enumeration) must never flow into a byte-identity sink (Report.csv_of_*, the \
   bench fingerprint)"

let kind_host_rss = "host-rss"
let kind_clock = "host-clock"
let kind_procfs = "procfs-read"
let kind_hashtbl = "hashtbl-iter"

let kind_label = function
  | "host-rss" -> "host RSS measurement (Host_mem.rss_bytes)"
  | "host-clock" -> "host wall clock"
  | "procfs-read" -> "/proc read"
  | "hashtbl-iter" -> "unsorted Hashtbl enumeration"
  | k -> k

let source_specs =
  [
    ([ "Host_mem"; "rss_bytes" ], kind_host_rss);
    ([ "Unix"; "gettimeofday" ], kind_clock);
    ([ "Unix"; "time" ], kind_clock);
    ([ "Sys"; "time" ], kind_clock);
    ([ "Hashtbl"; "fold" ], kind_hashtbl);
    ([ "Hashtbl"; "to_seq" ], kind_hashtbl);
    ([ "Hashtbl"; "to_seq_keys" ], kind_hashtbl);
    ([ "Hashtbl"; "to_seq_values" ], kind_hashtbl);
  ]

let source_kind p =
  List.find_map
    (fun (spec, k) -> if Context.mention_matches [ spec ] p then Some k else None)
    source_specs

(* Suffix match that, unlike [Context.mention_matches], lets a
   single-segment spec match qualified references too: [fingerprint]
   is a naming convention, whatever module holds it. *)
let suffix_matches spec p =
  let rec prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: xs, y :: ys -> String.equal x y && prefix xs ys
    | _ :: _, [] -> false
  in
  p <> [] && prefix (List.rev spec) (List.rev p)

let sink_specs =
  [ [ "Report"; "csv_of_series" ]; [ "Report"; "csv_of_idle_series" ]; [ "fingerprint" ] ]

let is_sink_path p = List.exists (fun spec -> suffix_matches spec p) sink_specs
let is_sink_symbol (s : Symbol_index.symbol) = is_sink_path s.qname

(* Sorting erases enumeration-order nondeterminism. *)
let sanitizer_heads =
  [
    [ "List"; "sort" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ];
  ]

let is_sanitizer p = List.exists (fun spec -> suffix_matches spec p) sanitizer_heads

(* ---- abstract values: taint kind -> provenance path ---- *)

type av = Finding.step list SMap.t

let bot : av = SMap.empty

let step_of (loc : Location.t) what =
  let p = loc.loc_start in
  {
    Finding.sfile = p.pos_fname;
    sline = p.pos_lnum;
    scol = p.pos_cnum - p.pos_bol;
    swhat = what;
  }

(* Shortest provenance wins; structural compare breaks ties, so the
   join is deterministic whatever order contributors arrive in. *)
let path_le a b =
  let la = List.length a and lb = List.length b in
  if la <> lb then la < lb else compare a b <= 0

let join : av -> av -> av =
  SMap.union (fun _ pa pb -> Some (if path_le pa pb then pa else pb))

let joins l = List.fold_left join bot l
let prefix st (v : av) = SMap.map (fun p -> Df.clip (st :: p)) v
let av_eq : av -> av -> bool = SMap.equal (fun a b -> a = b)

(* ---- per-run mutable state, rebuilt by each fixpoint sweep ---- *)

type state = {
  mutable summaries : av SMap.t;  (* symbol uid -> return-value abstract value *)
  mutable fields : av SMap.t;  (* record field name -> taint at any construction *)
  mutable events : (string * Finding.step list) list SMap.t;
      (* symbol uid -> source events performed in its body *)
  mutable site_findings : Finding.t list;  (* check B, re-emitted per sweep *)
}

type env = {
  index : Symbol_index.t;
  scope : string list;  (* module path of the definition being evaluated *)
  self : string;  (* uid of the definition being evaluated *)
  st : state;
}

let record_event env kind path =
  env.st.events <-
    SMap.update env.self
      (function None -> Some [ (kind, path) ] | Some l -> Some (l @ [ (kind, path) ]))
      env.st.events

let field_name lid = match List.rev (Rule.path_of_lid lid) with f :: _ -> f | [] -> ""

let rec pat_vars p acc =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p', { txt; _ }) -> pat_vars p' (txt :: acc)
  | Ppat_tuple ps -> List.fold_left (fun acc p -> pat_vars p acc) acc ps
  | Ppat_construct (_, Some (_, p')) -> pat_vars p' acc
  | Ppat_variant (_, Some p') -> pat_vars p' acc
  | Ppat_record (fps, _) -> List.fold_left (fun acc (_, p) -> pat_vars p acc) acc fps
  | Ppat_array ps -> List.fold_left (fun acc p -> pat_vars p acc) acc ps
  | Ppat_or (a, b) -> pat_vars a (pat_vars b acc)
  | Ppat_constraint (p', _) -> pat_vars p' acc
  | Ppat_lazy p' | Ppat_exception p' | Ppat_open (_, p') -> pat_vars p' acc
  | _ -> acc

let bind_bot vars pat =
  List.fold_left (fun acc x -> SMap.add x bot acc) vars (pat_vars pat [])

(* Abstract evaluation of one expression. [vars] maps local names to
   abstract values (function parameters enter at bottom — summaries
   already over-approximate what flows back out); [depth] counts
   enclosing [@lint.ignore] scopes: suppressed code reads as clean. *)
let rec eval env vars depth e : av =
  let depth = if Rule.has_ignore e.pexp_attributes then depth + 1 else depth in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Rule.path_of_lid txt with
      | [] -> bot
      | [ x ] when SMap.mem x vars -> SMap.find x vars
      | p -> ident_av env depth e.pexp_loc p)
  | Pexp_constant _ | Pexp_unreachable -> bot
  | Pexp_let (_, vbs, body) ->
      let vars' =
        List.fold_left
          (fun acc vb ->
            let d = if Rule.has_ignore vb.pvb_attributes then depth + 1 else depth in
            let v = eval env vars d vb.pvb_expr in
            List.fold_left (fun acc x -> SMap.add x v acc) acc (pat_vars vb.pvb_pat []))
          vars vbs
      in
      eval env vars' depth body
  | Pexp_function (params, _, fbody) ->
      let vars' =
        List.fold_left
          (fun acc p ->
            match p.pparam_desc with
            | Pparam_val (_, _, pat) -> bind_bot acc pat
            | Pparam_newtype _ -> acc)
          vars params
      in
      (match fbody with
      | Pfunction_body b -> eval env vars' depth b
      | Pfunction_cases (cases, _, attrs) ->
          let depth = if Rule.has_ignore attrs then depth + 1 else depth in
          joins (List.map (eval_case env vars' depth bot) cases))
  | Pexp_apply (head, args) -> eval_apply env vars depth head args
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let sv = eval env vars depth scrut in
      joins (List.map (eval_case env vars depth sv) cases)
  | Pexp_tuple es | Pexp_array es -> joins (List.map (eval env vars depth) es)
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> eval env vars depth a | None -> bot)
  | Pexp_record (fs, base) ->
      let bv = match base with Some b -> eval env vars depth b | None -> bot in
      List.iter
        (fun (({ txt; _ } : Longident.t loc), fe) ->
          let fv = eval env vars depth fe in
          if depth = 0 && not (SMap.is_empty fv) then store_field env fe.pexp_loc txt fv)
        fs;
      bv
  | Pexp_field (r, { txt; _ }) ->
      let rv = eval env vars depth r in
      let fname = field_name txt in
      (match SMap.find_opt fname env.st.fields with
      | None -> rv
      | Some fv when depth = 0 ->
          let st = step_of e.pexp_loc (Printf.sprintf "read of tainted field %s" fname) in
          let fv = prefix st fv in
          SMap.iter (fun kind path -> record_event env kind path) fv;
          join rv fv
      | Some _ -> rv)
  | Pexp_setfield (r, { txt; _ }, v) ->
      ignore (eval env vars depth r);
      let fv = eval env vars depth v in
      if depth = 0 && not (SMap.is_empty fv) then store_field env v.pexp_loc txt fv;
      bot
  | Pexp_ifthenelse (c, t, f) ->
      ignore (eval env vars depth c);
      joins
        (eval env vars depth t :: (match f with Some f -> [ eval env vars depth f ] | None -> []))
  | Pexp_sequence (a, b) ->
      ignore (eval env vars depth a);
      eval env vars depth b
  | Pexp_while (c, b) ->
      ignore (eval env vars depth c);
      ignore (eval env vars depth b);
      bot
  | Pexp_for (pat, lo, hi, _, b) ->
      ignore (eval env vars depth lo);
      ignore (eval env vars depth hi);
      ignore (eval env (bind_bot vars pat) depth b);
      bot
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> eval env vars depth e'
  | Pexp_assert e' ->
      ignore (eval env vars depth e');
      bot
  | Pexp_lazy e' | Pexp_open (_, e') | Pexp_newtype (_, e') | Pexp_letexception (_, e') ->
      eval env vars depth e'
  | Pexp_letmodule (_, _, e') -> eval env vars depth e'
  | Pexp_letop { let_; ands; body; _ } ->
      let bound =
        joins (List.map (fun b -> eval env vars depth b.pbop_exp) (let_ :: ands))
      in
      let vars' =
        List.fold_left
          (fun acc b ->
            List.fold_left (fun acc x -> SMap.add x bound acc) acc (pat_vars b.pbop_pat []))
          vars (let_ :: ands)
      in
      eval env vars' depth body
  | _ -> bot

and eval_case env vars depth sv c =
  let vars' =
    List.fold_left (fun acc x -> SMap.add x sv acc) vars (pat_vars c.pc_lhs [])
  in
  Option.iter (fun g -> ignore (eval env vars' depth g)) c.pc_guard;
  eval env vars' depth c.pc_rhs

and ident_av env depth loc p =
  if depth > 0 then bot
  else
    match source_kind p with
    | Some kind ->
        let st = step_of loc (String.concat "." p) in
        record_event env kind [ st ];
        SMap.singleton kind [ st ]
    | None ->
        Symbol_index.resolve_in env.index ~scope:env.scope p
        |> List.map (fun (s : Symbol_index.symbol) ->
               match SMap.find_opt s.uid env.st.summaries with
               | None -> bot
               | Some sv when SMap.is_empty sv -> bot
               | Some sv -> prefix (step_of loc (String.concat "." s.qname)) sv)
        |> joins

and store_field env loc lid fv =
  let fname = field_name lid in
  if not (String.equal fname "") then begin
    let st = step_of loc (Printf.sprintf "stored in field %s" fname) in
    env.st.fields <- SMap.update fname (function
      | None -> Some (prefix st fv)
      | Some old -> Some (join old (prefix st fv)))
      env.st.fields
  end

and eval_apply env vars depth head args =
  let arg_avs = List.map (fun (_, a) -> eval env vars depth a) args in
  let head_path =
    match head.pexp_desc with
    | Pexp_ident { txt; _ } -> Rule.path_of_lid txt
    | _ -> []
  in
  let hv = eval env vars depth head in
  let v = joins (hv :: arg_avs) in
  (* /proc reads are a source at the call, not the ident: the hazard
     is the file being read, carried by the literal argument. *)
  let v =
    let is_proc_literal (_, a) =
      match a.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) ->
          String.length s >= 5 && String.equal (String.sub s 0 5) "/proc"
      | _ -> false
    in
    match head_path with
    | ([ ("open_in" | "open_in_bin") ] | [ "In_channel"; ("open_text" | "open_bin") ])
      when depth = 0 && List.exists is_proc_literal args ->
        let st = step_of head.pexp_loc (String.concat "." head_path ^ " \"/proc/...\"") in
        record_event env kind_procfs [ st ];
        join (SMap.singleton kind_procfs [ st ]) v
    | _ -> v
  in
  let v = if is_sanitizer head_path then SMap.remove kind_hashtbl v else v in
  (* check B: a sink call fed a tainted argument. *)
  if depth = 0 && is_sink_path head_path then begin
    let argv = joins arg_avs in
    SMap.iter
      (fun kind path ->
        let sink_name = String.concat "." head_path in
        let st = step_of head.pexp_loc (Printf.sprintf "argument of %s" sink_name) in
        let flow = Df.clip (st :: path) in
        env.st.site_findings <-
          Finding.make ~flow ~loc:head.pexp_loc ~rule:id
            (Printf.sprintf
               "%s flows into byte-identity sink %s as an argument, so the output is no \
                longer a pure function of the seed; keep host measurements in JSON \
                report fields (or sort the enumeration) instead. flow: %s"
               (kind_label kind) sink_name
               (Df.path_to_string flow))
          :: env.st.site_findings)
      argv
  end;
  v

(* ---- whole-program fixpoint + the two checks ---- *)

let compute (index : Symbol_index.t) (graph : Callgraph.t) =
  let st =
    { summaries = SMap.empty; fields = SMap.empty; events = SMap.empty; site_findings = [] }
  in
  let sweep () =
    st.events <- SMap.empty;
    st.site_findings <- [];
    List.iter
      (fun (s : Symbol_index.symbol) ->
        let env =
          {
            index;
            scope = Symbol_index.scope_of s;
            self = s.uid;
            st;
          }
        in
        let depth = if s.suppressed then 1 else 0 in
        let v = eval env SMap.empty depth s.body in
        st.summaries <- SMap.add s.uid v st.summaries)
      index.symbols
  in
  let stable = ref false in
  let sweeps = ref 0 in
  (* Termination: kinds per summary/field only grow (joins never drop a
     kind except the sanitizer, which is applied consistently), paths
     are clipped, and the sweep count is capped as a backstop. *)
  while (not !stable) && !sweeps < 64 do
    incr sweeps;
    let prev_sum = st.summaries and prev_fields = st.fields in
    sweep ();
    stable :=
      SMap.equal av_eq st.summaries prev_sum && SMap.equal av_eq st.fields prev_fields
  done;
  (* check A: sink-region purity over the callgraph. *)
  let call_step = Df.call_step_of_index index in
  let order = List.map (fun (s : Symbol_index.symbol) -> s.uid) index.symbols in
  let region_kinds = [ kind_host_rss; kind_clock; kind_procfs ] in
  let seeds uid =
    match SMap.find_opt uid st.events with
    | None -> []
    | Some evs -> List.filter (fun (k, _) -> List.mem k region_kinds) evs
  in
  let table = Df.solve ~order ~callees:(Callgraph.callees graph) ~call_step ~seeds in
  let region_findings =
    index.symbols
    |> List.filter is_sink_symbol
    |> List.concat_map (fun (s : Symbol_index.symbol) ->
           Df.facts table s.uid |> SMap.bindings
           |> List.map (fun (kind, path) ->
                  let qname = String.concat "." s.qname in
                  let flow = Df.clip (step_of s.loc qname :: path) in
                  Finding.make ~flow ~loc:s.loc ~rule:id
                    (Printf.sprintf
                       "byte-identity sink %s transitively performs a %s along resolved \
                        calls, so its output depends on the host; move the measurement \
                        out of the sink's call region (JSON report fields are the \
                        sanctioned home). flow: %s"
                       qname (kind_label kind)
                       (Df.path_to_string flow))))
  in
  region_findings @ st.site_findings

(* One computation per context: rules run per file, the analysis is
   whole-program. Physical equality is the right cache key — the
   driver builds exactly one context per run. Parallel per-file
   passes are safe because the driver warms this cache before fanning
   out: workers only ever hit the [c == ctx] read path. *)
let cache : (Context.t * Finding.t list) option ref = ref None

let findings_for ctx =
  match !cache with
  | Some (c, fs) when c == ctx -> fs
  | _ ->
      let fs = compute (Context.index ctx) (Context.graph ctx) in
      cache := Some (ctx, fs);
      fs

let check ~ctx ~path str =
  let findings =
    if ctx.Context.audit then begin
      (* Audit mode: the stale-ignore shadow run hands us this file
         with suppressions stripped; re-derive the whole-program state
         with the stripped AST substituted so the masked flows
         surface. *)
      let files =
        List.map
          (fun (f, s) -> if String.equal f path then (f, str) else (f, s))
          ctx.Context.files
      in
      let index = Symbol_index.build files in
      compute index (Callgraph.build index)
    end
    else findings_for ctx
  in
  List.filter (fun (f : Finding.t) -> String.equal f.file path) findings

let warm ctx = ignore (findings_for ctx)
let rule = { Rule.id; doc; check; warm }
