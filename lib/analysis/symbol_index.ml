(* Whole-program symbol index.

   Parses nothing itself: given every (file, structure) pair under the
   analysis roots it records one [symbol] per module-level binding —
   top-level values, values in nested modules, values spliced in with
   [include struct ... end] (which the per-file rules used to miss) and
   anonymous top-level bindings such as [let () = ...] (kept as
   pseudo-symbols so a [Domain_pool.map] buried in an executable's main
   body still roots the reachability analysis). Each symbol carries the
   syntactic facts every whole-program rule needs: the ident paths its
   body mentions (callgraph edges), the application heads that are not
   plain idents (the conservative "unknown call" marker), the mutation
   sites it performs, and whether its right-hand side is a
   recognisably-mutable constructor. *)

open Ppxlib

let ignore_name = "lint.ignore"

let has_ignore (attrs : attributes) =
  List.exists (fun (a : attribute) -> String.equal a.attr_name.txt ignore_name) attrs

(* [@complexity "O(...)"] payload of a binding, verbatim. A present
   attribute with a non-string payload is kept as a sentinel the
   annotation parser rejects, so "annotated but malformed" is
   distinguishable from "unannotated". *)
let complexity_annot (attrs : attributes) =
  List.find_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt "complexity") then None
      else
        match a.attr_payload with
        | PStr
            [ { pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _ } ] ->
            Some s
        | _ -> Some "<malformed payload>")
    attrs

let rec path_of_lid = function
  | Lident s -> [ s ]
  | Ldot (l, s) -> path_of_lid l @ [ s ]
  | Lapply _ -> []

let lid_string lid = String.concat "." (path_of_lid lid)

(* A mutation site: [target] is the ident path the write lands on
   ([x := ...], [Hashtbl.replace t ...], [r.field <- ...]), resolved
   against the index later. [op] names the mutating operation for the
   report. *)
type write = { target : string list; wline : int; wcol : int; op : string }

type symbol = {
  uid : string;  (** "file#Module.name" — unique per definition site *)
  qname : string list;  (** [Module; ...; name], module from the file name *)
  file : string;
  line : int;
  col : int;
  loc : Location.t;
  body : expression;  (** the right-hand side, for abstract interpretation *)
  mentions : string list list;  (** every ident path in the body *)
  mention_sites : (string list * int * int) list;
      (** every ident path with its (line, col), body order — lets the
          dataflow engine attribute a call step to a source position *)
  app_heads : string list list;  (** ident paths in application-head position *)
  has_opaque_call : bool;  (** an application whose head is not an ident *)
  writes : write list;
  mutable_ctor : string option;  (** Some "ref" etc. when the RHS is mutable *)
  suppressed : bool;  (** the binding carries [@lint.ignore] *)
  annot : string option;  (** the [@complexity "..."] payload, if any *)
}

module SMap = Map.Make (String)

type t = {
  symbols : symbol list;  (** file order, then position — deterministic *)
  by_qname : symbol list SMap.t;  (** dotted qname -> definitions *)
  by_file : symbol list SMap.t;
}

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let uid_of ~file ~qname = file ^ "#" ^ String.concat "." qname

(* Head constructor of a binding's right-hand side, looking through
   type constraints. Returns the mutable constructor's name when the
   bound value is recognisably mutable; [Atomic.make] is the sanctioned
   alternative and is deliberately absent. *)
let rec mutable_head e =
  match e.pexp_desc with
  | Pexp_constraint (e', _) -> mutable_head e'
  | Pexp_coerce (e', _, _) -> mutable_head e'
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match path_of_lid txt with
      | [ "ref" ] -> Some "ref"
      | p -> (
          match List.rev p with
          | "create"
            :: (("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Fd_map" | "Ready_buffer") as m)
            :: _ ->
              Some (m ^ ".create")
          | (("make" | "init" | "create_float") as f) :: "Array" :: _ -> Some ("Array." ^ f)
          | (("make" | "create") as f) :: "Bytes" :: _ -> Some ("Bytes." ^ f)
          | _ -> None))
  | _ -> None

(* Which positional argument(s) a mutating stdlib call writes to:
   [Hashtbl.replace t k v] mutates its first argument, [Queue.add x q]
   its second. Returns the op label and the written argument indices. *)
let write_op p =
  let named m f idx = Some (m ^ "." ^ f, idx) in
  match p with
  | [ ":=" ] -> Some (":=", [ 0 ])
  | [ "incr" ] -> Some ("incr", [ 0 ])
  | [ "decr" ] -> Some ("decr", [ 0 ])
  | _ -> (
      match List.rev p with
      | f :: "Hashtbl" :: _
        when List.mem f [ "replace"; "add"; "remove"; "reset"; "clear"; "filter_map_inplace" ]
        ->
          named "Hashtbl" f [ 0 ]
      | (("add" | "push") as f) :: "Queue" :: _ -> named "Queue" f [ 1 ]
      | (("pop" | "take" | "clear") as f) :: "Queue" :: _ -> named "Queue" f [ 0 ]
      | "transfer" :: "Queue" :: _ -> named "Queue" "transfer" [ 0; 1 ]
      | "push" :: "Stack" :: _ -> named "Stack" "push" [ 1 ]
      | (("pop" | "clear") as f) :: "Stack" :: _ -> named "Stack" f [ 0 ]
      | f :: "Buffer" :: _
        when String.length f >= 4 && String.equal (String.sub f 0 4) "add_" ->
          named "Buffer" f [ 0 ]
      | (("clear" | "reset" | "truncate") as f) :: "Buffer" :: _ -> named "Buffer" f [ 0 ]
      | (("set" | "fill" | "blit" | "sort" | "stable_sort" | "fast_sort") as f) :: "Array" :: _
        ->
          named "Array" f [ 0 ]
      | (("set" | "fill" | "blit") as f) :: "Bytes" :: _ -> named "Bytes" f [ 0 ]
      | (("set" | "remove" | "clear") as f) :: "Fd_map" :: _ -> named "Fd_map" f [ 0 ]
      | (("push" | "clear") as f) :: "Ready_buffer" :: _ -> named "Ready_buffer" f [ 0 ]
      | _ -> None)

let scan_body e =
  let mentions = ref [] in
  let sites = ref [] in
  let heads = ref [] in
  let opaque = ref false in
  let writes = ref [] in
  let record_write target_expr op =
    match target_expr.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match path_of_lid txt with
        | [] -> ()
        | p ->
            let pos = target_expr.pexp_loc.loc_start in
            writes :=
              { target = p; wline = pos.pos_lnum; wcol = pos.pos_cnum - pos.pos_bol; op }
              :: !writes)
    | _ -> ()
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match path_of_lid txt with
            | [] -> ()
            | p ->
                mentions := p :: !mentions;
                let pos = e.pexp_loc.loc_start in
                sites := (p, pos.pos_lnum, pos.pos_cnum - pos.pos_bol) :: !sites)
        | Pexp_apply (fn, args) -> (
            match fn.pexp_desc with
            | Pexp_ident { txt; _ } -> (
                match path_of_lid txt with
                | [] -> ()
                | p -> (
                    heads := p :: !heads;
                    match write_op p with
                    | None -> ()
                    | Some (op, idxs) ->
                        let positional =
                          List.filter_map
                            (fun (lbl, a) -> match lbl with Nolabel -> Some a | _ -> None)
                            args
                        in
                        List.iter
                          (fun i ->
                            match List.nth_opt positional i with
                            | Some a -> record_write a op
                            | None -> ())
                          idxs))
            | Pexp_apply _ -> ()
            | _ -> opaque := true)
        | Pexp_setfield (r, _, _) -> record_write r "<-"
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  (List.rev !mentions, List.rev !sites, List.rev !heads, !opaque, List.rev !writes)

let rec var_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p', _) -> var_name p'
  | _ -> None

let build files =
  let acc = ref [] in
  let add_binding ~file ~modpath vb =
    let loc = vb.pvb_loc in
    let pos = loc.loc_start in
    let named = var_name vb.pvb_pat in
    let name =
      match named with
      | Some n -> n
      | None -> Printf.sprintf "(toplevel:%d)" pos.pos_lnum
    in
    let mentions, mention_sites, app_heads, has_opaque_call, writes =
      scan_body vb.pvb_expr
    in
    let qname = modpath @ [ name ] in
    acc :=
      {
        uid = uid_of ~file ~qname;
        qname;
        file;
        line = pos.pos_lnum;
        col = pos.pos_cnum - pos.pos_bol;
        loc;
        body = vb.pvb_expr;
        mentions;
        mention_sites;
        app_heads;
        has_opaque_call;
        writes;
        mutable_ctor = (match named with Some _ -> mutable_head vb.pvb_expr | None -> None);
        suppressed = has_ignore vb.pvb_attributes;
        annot = complexity_annot vb.pvb_attributes;
      }
      :: !acc
  in
  let add_eval ~file ~modpath e loc =
    let pos = loc.Location.loc_start in
    let name = Printf.sprintf "(toplevel:%d)" pos.pos_lnum in
    let mentions, mention_sites, app_heads, has_opaque_call, writes = scan_body e in
    let qname = modpath @ [ name ] in
    acc :=
      {
        uid = uid_of ~file ~qname;
        qname;
        file;
        line = pos.pos_lnum;
        col = pos.pos_cnum - pos.pos_bol;
        loc;
        body = e;
        mentions;
        mention_sites;
        app_heads;
        has_opaque_call;
        writes;
        mutable_ctor = None;
        suppressed = false;
        annot = None;
      }
      :: !acc
  in
  let rec items ~file ~modpath str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (add_binding ~file ~modpath) vbs
        | Pstr_eval (e, _) -> add_eval ~file ~modpath e item.pstr_loc
        | Pstr_module mb -> (
            match mb.pmb_name.txt with
            | Some n -> mexpr ~file ~modpath:(modpath @ [ n ]) mb.pmb_expr
            | None -> mexpr ~file ~modpath mb.pmb_expr)
        | Pstr_recmodule mbs ->
            List.iter
              (fun mb ->
                match mb.pmb_name.txt with
                | Some n -> mexpr ~file ~modpath:(modpath @ [ n ]) mb.pmb_expr
                | None -> mexpr ~file ~modpath mb.pmb_expr)
              mbs
        (* State hidden behind [include struct ... end] is still
           module-level state: recurse with the same module path. *)
        | Pstr_include incl -> mexpr ~file ~modpath incl.pincl_mod
        | _ -> ())
      str
  and mexpr ~file ~modpath me =
    match me.pmod_desc with
    | Pmod_structure str -> items ~file ~modpath str
    | Pmod_constraint (me', _) -> mexpr ~file ~modpath me'
    | Pmod_functor (_, me') -> mexpr ~file ~modpath me'
    | _ -> ()
  in
  List.iter (fun (file, str) -> items ~file ~modpath:[ module_of_file file ] str) files;
  let symbols = List.rev !acc in
  let by_qname =
    List.fold_left
      (fun m s ->
        let k = String.concat "." s.qname in
        SMap.update k (function None -> Some [ s ] | Some l -> Some (l @ [ s ])) m)
      SMap.empty symbols
  in
  let by_file =
    List.fold_left
      (fun m s ->
        SMap.update s.file (function None -> Some [ s ] | Some l -> Some (l @ [ s ])) m)
      SMap.empty symbols
  in
  { symbols; by_qname; by_file }

let file_symbols t file =
  match SMap.find_opt file t.by_file with Some l -> l | None -> []

(* Resolve an ident path mentioned inside [scope] — the module path of
   the mentioning definition ([Poll] for a top-level binding in
   poll.ml, [Poll; Pset] inside its nested module). An unqualified [f]
   resolves lexically: the innermost enclosing module that defines the
   name wins, and the search never leaves the file-module (a name
   shadowed locally never leaks to another module's definition). A
   qualified [A.B.f] matches through every enclosing scope plus any
   indexed definition whose qualified name is a suffix of the
   reference ([Sio_sim.Domain_pool.map] finds [Domain_pool.map]).
   Ambiguity — two files defining the same module name — resolves to
   every candidate: the callgraph stays conservative rather than
   guessing. *)
let resolve_in t ~scope p =
  if p = [] then []
  else begin
    (* Enclosing module paths, innermost first, stopping at the
       file-module: [Poll; Pset] -> [[Poll; Pset]; [Poll]]. *)
    let rec enclosing s =
      match s with
      | [] | [ _ ] -> [ s ]
      | _ -> s :: enclosing (List.filteri (fun i _ -> i < List.length s - 1) s)
    in
    let scopes = enclosing scope in
    match p with
    | [ _ ] ->
        List.find_map
          (fun s ->
            match SMap.find_opt (String.concat "." (s @ p)) t.by_qname with
            | Some (_ :: _ as l) -> Some l
            | _ -> None)
          scopes
        |> Option.value ~default:[]
    | _ ->
        let rec suffixes q =
          if List.length q >= 2 then String.concat "." q :: suffixes (List.tl q) else []
        in
        let keys = List.map (fun s -> String.concat "." (s @ p)) scopes @ suffixes p in
        let seen = ref SMap.empty in
        List.concat_map
          (fun k -> match SMap.find_opt k t.by_qname with Some l -> l | None -> [])
          keys
        |> List.filter (fun s ->
               if SMap.mem s.uid !seen then false
               else begin
                 seen := SMap.add s.uid () !seen;
                 true
               end)
  end

let scope_of (s : symbol) =
  match List.rev s.qname with _ :: rev_mods -> List.rev rev_mods | [] -> []

let resolve t ~current_module p = resolve_in t ~scope:[ current_module ] p
