(* suppression auditing: an [@lint.ignore] must keep earning its keep.

   Every suppression in the tree excuses a specific hazard. Code
   moves; the hazard gets refactored away; the annotation lingers and
   silently licenses a future regression at the same site. This rule
   closes that hole: for each file that carries suppressions, run every
   other rule once more over the file with all [@lint.ignore]
   attributes stripped (and the context in audit mode, so
   binding-level suppressions are ignored too). A suppression whose
   annotated span contains none of those shadow findings is masking
   nothing — and is itself reported, so a suppression can never outlive
   the hazard it excuses. *)

let id = "stale-ignore"

let doc =
  "an [@lint.ignore] suppression whose removal would produce zero findings has \
   outlived its hazard; delete it"

let make ~others =
  let check ~ctx ~path str =
    let sites = Ignores.collect str in
    if sites = [] then []
    else begin
      let stripped = Ignores.strip str in
      let actx = Context.with_audit ctx in
      let shadow =
        List.concat_map (fun (r : Rule.t) -> r.check ~ctx:actx ~path stripped) others
      in
      let covers (s : Ignores.site) (f : Finding.t) =
        (f.line, f.col) >= (s.line, s.col) && (f.line, f.col) <= (s.end_line, s.end_col)
      in
      sites
      |> List.filter (fun s -> not (List.exists (covers s) shadow))
      |> List.map (fun (s : Ignores.site) ->
             let label =
               match s.reason with
               | Some r -> Printf.sprintf "[@lint.ignore %S]" r
               | None -> "[@lint.ignore]"
             in
             {
               Finding.file = path;
               line = s.line;
               col = s.col;
               rule = id;
               flow = [];
               message =
                 Printf.sprintf
                   "stale suppression %s: removing it produces no findings, so the \
                    hazard it excused is gone; delete the annotation."
                   label;
             })
    end
  in
  let warm ctx = List.iter (fun (r : Rule.t) -> r.warm ctx) others in
  { Rule.id; doc; check; warm }
