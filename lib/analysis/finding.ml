(* A single lint finding: position, the rule that fired, and a
   human-readable message. The textual form is the greppable
   [file:line:col: rule: message] that editors and CI both parse.

   Interprocedural findings also carry a [flow]: the source-to-sink
   (or entry-to-acquire) step sequence, rendered as SARIF codeFlows so
   CI annotations show the whole path, not just the endpoint. *)

type step = { sfile : string; sline : int; scol : int; swhat : string }

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  flow : step list;  (** empty for per-site findings *)
}

let make ?(flow = []) ~loc ~rule message =
  let p = loc.Ppxlib.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    message;
    flow;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_string t = Printf.sprintf "%s:%d:%d: %s: %s" t.file t.line t.col t.rule t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape t.file) t.line t.col (json_escape t.rule) (json_escape t.message)
