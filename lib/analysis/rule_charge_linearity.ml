(* charge-linearity: DESIGN.md section 5's bulk-charging rule, made
   static.

   The cost model keeps simulated-CPU accounting honest at million-
   connection scale by charging skipped populations in bulk
   ([Cost_model.charge_batch ~count]) instead of walking them. Two
   ways to break that discipline survive the type checker:

   - a [charge_batch] whose [~count] has no inferable size class — the
     bulk charge then certifies nothing about which population was
     skipped; and a [charge_batch] *inside* a non-constant loop, which
     re-charges the skipped population once per iteration (the total
     becomes a product, not the linear bulk charge the name promises).

   - inside a certified scan path, a loop of inferred class k whose
     body charges a non-constant amount per iteration: total charged
     cost k * c is superlinear in the loop's own population, which is
     exactly the shape PR 5 removed from the scan paths.

   The per-iteration check is scoped to definitions carrying a
   [@complexity] annotation: those are the certified scan paths where
   the linearity contract holds. Uncertified orchestration code (the
   hybrid event loop dispatching top-cost handlers) is allowed to
   charge whatever its handlers cost — certifying it is what the
   annotation opt-in is for. The [~count]-class check applies
   everywhere: an unclassifiable bulk charge is meaningless wherever
   it appears.

   Like scan-complexity, this rule reads the shared whole-program
   summaries and does not honor [@lint.ignore], so audit mode needs no
   re-derivation. *)

module C = Complexity
module Df = Dataflow
module SMap = Map.Make (String)

let id = "charge-linearity"

let doc =
  "charge_batch ~count must have an inferable size class and sit outside loops; \
   inside an annotated scan path, a loop of class k must charge O(1) per \
   iteration (total O(k)) — bulk-charge skipped populations outside the loop"

let loc_step (loc : Ppxlib.Location.t) ~file what =
  let p = loc.loc_start in
  { Finding.sfile = file; sline = p.pos_lnum; scol = p.pos_cnum - p.pos_bol; swhat = what }

let check ~ctx ~path (_ : Ppxlib.structure) =
  let index = Context.index ctx in
  let r = Context.complexity ctx in
  let annots =
    List.fold_left
      (fun m (s : Symbol_index.symbol) ->
        match s.annot with Some _ -> SMap.add s.uid s m | None -> m)
      SMap.empty
      (Symbol_index.file_symbols index path)
  in
  let batch_findings =
    r.C.batches
    |> List.filter (fun (b : C.batch_site) -> String.equal b.bfile path)
    |> List.concat_map (fun (b : C.batch_site) ->
           let top_count =
             match b.count_class with
             | C.Top steps ->
                 let flow =
                   loc_step b.bloc ~file:path "charge_batch ~count" :: steps
                 in
                 [
                   Finding.make ~flow:(Df.clip flow) ~loc:b.bloc ~rule:id
                     (Printf.sprintf
                        "charge_batch ~count has no inferable size class (%s); \
                         bind the count to a named population size (a vocabulary \
                         name like idle_total, or a Length of the skipped table) \
                         so the bulk charge certifies what was skipped"
                        (C.render_cost_origin b.count_class));
                 ]
             | C.Poly _ -> []
           in
           let in_loop =
             if (not (C.le b.loop_class C.const)) && SMap.mem b.buid annots then
               let flow =
                 [
                   loc_step b.bloc ~file:path
                     (Printf.sprintf "charge_batch inside a loop of class %s"
                        (C.render_cost b.loop_class));
                 ]
                 @ C.witness_steps b.loop_class
               in
               [
                 Finding.make ~flow:(Df.clip flow) ~loc:b.bloc ~rule:id
                   (Printf.sprintf
                      "charge_batch of class %s sits inside a loop of class %s: \
                       the skipped population is re-charged every iteration, \
                       making the total %s * %s instead of a single bulk charge; \
                       hoist the charge_batch out of the loop"
                      (C.render_cost b.count_class)
                      (C.render_cost b.loop_class)
                      (C.render_cost b.loop_class)
                      (C.render_cost b.count_class));
               ]
             else []
           in
           top_count @ in_loop)
  in
  let loop_findings =
    r.C.loops
    |> List.filter (fun (l : C.loop_site) -> String.equal l.lfile path)
    |> List.concat_map (fun (l : C.loop_site) ->
           match SMap.find_opt l.luid annots with
           | None -> []
           | Some sym -> (
               match (l.lclass, l.body_charged) with
               | C.Poly _, _
                 when C.le l.lclass C.const ->
                   []
               | C.Poly _, body when not (C.le body C.const) ->
                   let flow =
                     Df.clip
                       (loc_step l.lloc ~file:path
                          (Printf.sprintf "%s loop, class %s" l.lhead
                             (C.render_cost l.lclass))
                       :: C.witness_steps body)
                   in
                   [
                     Finding.make ~flow ~loc:l.lloc ~rule:id
                       (Printf.sprintf
                          "in certified %s, this %s loop of class %s charges %s \
                           per iteration (total %s): per-iteration charge must \
                           be O(1) — charge skipped work in bulk outside the \
                           loop (DESIGN.md section 5). flow: %s"
                          (String.concat "." sym.Symbol_index.qname)
                          l.lhead
                          (C.render_cost l.lclass)
                          (C.render_cost body)
                          (C.render_cost
                             (C.mult
                                ~step:
                                  (loc_step l.lloc ~file:path
                                     (Printf.sprintf "%s loop" l.lhead))
                                l.lclass body))
                          (Df.path_to_string flow));
                   ]
               | _ -> []))
  in
  List.sort Finding.compare (batch_findings @ loop_findings)

let warm ctx = ignore (Context.complexity ctx)
let rule = { Rule.id; doc; check; warm }
