(* Symbolic complexity certification.

   A bottom-up abstract interpreter over indexed function bodies that
   computes, per definition, a symbolic cost summary: a polynomial
   over the named size parameters of the simulated kernel
   ([n_interests], [n_active], [n_ready], [n_conns], [n_slots]), or
   top when the analysis cannot bound the work. Summaries are
   two-dimensional:

   - [host]: structural work the scan path itself performs — loop
     iterations, list walks, per-element probes. This is the dimension
     the paper's O(active) invariant constrains and the dimension the
     [@complexity] annotations certify.
   - [charged]: simulated-CPU cost routed through the cost model
     ([Host.charge] and friends are O(1) events each;
     [Cost_model.charge_batch ~count] contributes [count]'s size
     class). Kept separate because the analytically-skipped idle
     population is *charged* in bulk (O(interests)) on paths whose
     *structural* work is O(active) — conflating the two would make
     DESIGN.md section 5's bulk-charging rule unstatable.

   Cost is derived from loop and iterator structure: [Fd_map.iter] /
   [Interest_table.iter] over a table contribute that table's size
   class, [iter_while] with a recognizable early-exit contributes the
   join of the exit bounds, [for]/[while] loops contribute their
   syntactic bound, recursion and unresolved calls widen to top
   carrying a provenance path (the [Dataflow] <=16-step pattern) that
   names the loop or call responsible — so a finding can print *which*
   loop broke the invariant, not just that one did.

   Size classes are a global vocabulary, not per-callsite substitution:
   a callee that walks a parameter named [interests] summarizes to
   O(interests) and that monomial flows to every caller as-is. The
   chain ready <= active <= interests mirrors the paper's containment
   (ready sets are subsets of active sets are subsets of interest
   sets), so "O(active + ready)" normalizes to O(active) and
   entailment is set inclusion up to that order. [conns] and [slots]
   are incomparable to the chain.

   Modeling axioms (deliberate, documented over-trust — each is where
   the certificate bottoms out): recognized collection primitives cost
   what their interface documents (an [Interest_table.iter] callback
   runs once per entry; the table's internal bucket walk is not
   re-derived); [Heap] and [Engine] operations are O(1) — their
   O(log n) factors sit below the polynomial vocabulary's resolution;
   applying a parameter-bound function value ([k results], [lookup fd],
   the [f] handed to [Wait_queue.wake]) costs O(1) from the applying
   frame — this tree's continuation-passing discipline means such
   values end frames rather than loop, and their bodies are accounted
   where they are defined; likewise a call through a record field is a
   stored callback or O(1) arena access. Function arguments to
   non-iterator calls are *registered, not run* (only [Charge_run]
   thunks and iterator callbacks are applied — a subscription callback
   fires on driver edges, not per scan). Everything else — unknown
   calls, unrecognized loops, unbounded local recursion — widens to
   top rather than guessing. *)

module Df = Dataflow
open Ppxlib
module SMap = Map.Make (String)

type step = Finding.step

(* ------------------------------------------------------------------ *)
(* The cost lattice                                                   *)
(* ------------------------------------------------------------------ *)

(* Named size parameters, canonical order. *)
let params = [ "ready"; "active"; "interests"; "conns"; "slots" ]

(* ready <= active <= interests (containment chain); conns and slots
   are only comparable to themselves. *)
let param_le a b =
  String.equal a b
  ||
  match (a, b) with
  | "ready", ("active" | "interests") -> true
  | "active", "interests" -> true
  | _ -> false

(* A monomial: a sorted multiset of parameters. [] is the constant
   monomial (O(1)). *)
type mono = string list

(* A cost: a normalized sum of monomials, each carrying a witness path
   (the loop steps that produced it), or top with a provenance path
   naming what defeated the analysis. *)
type cost = Poly of (mono * step list) list | Top of step list

type summary = { host : cost; charged : cost }

let const = Poly [ ([], []) ]
let poly1 p = Poly [ ([ p ], []) ]
let top steps = Top (Df.clip steps)
let unit_summary = { host = const; charged = const }

(* Witness preference: shortest path wins, ties broken structurally —
   deterministic and independent of join order. *)
let path_le (p : step list) (q : step list) =
  let lp = List.length p and lq = List.length q in
  if lp <> lq then lp < lq else compare p q <= 0

(* Sub-multiset match under [param_le]: every factor of [a] consumes a
   distinct factor of [b] that dominates it. Backtracking, but
   monomials here have 1-3 factors. *)
let rec mono_le (a : mono) (b : mono) =
  match a with
  | [] -> true
  | x :: rest ->
      let rec pick seen = function
        | [] -> false
        | y :: ys ->
            (param_le x y && mono_le rest (List.rev_append seen ys))
            || pick (y :: seen) ys
      in
      pick [] b

let sort_mono (m : mono) = List.sort String.compare m

(* Normal form: monomials sorted and deduplicated (keeping the
   preferred witness), dominated monomials dropped (m is dropped when
   some *other* monomial dominates it — with [param_le] a partial
   order and monomials sorted, mutual domination implies equality, so
   the maximal set is unique). *)
let normalize (ms : (mono * step list) list) =
  let ms = List.map (fun (m, p) -> (sort_mono m, p)) ms in
  let dedup =
    List.fold_left
      (fun acc (m, p) ->
        match List.assoc_opt m acc with
        | Some q when path_le q p -> acc
        | Some _ -> (m, p) :: List.remove_assoc m acc
        | None -> (m, p) :: acc)
      [] ms
  in
  let maximal =
    List.filter
      (fun (m, _) ->
        not (List.exists (fun (m', _) -> m <> m' && mono_le m m') dedup))
      dedup
  in
  List.sort (fun (a, _) (b, _) -> compare a b) maximal

let of_monos ms = Poly (normalize ms)

(* Entailment: c1 <= c2 when every monomial of c1 is dominated by some
   monomial of c2. Everything is below top; top is below nothing
   finite. *)
let le c1 c2 =
  match (c1, c2) with
  | _, Top _ -> true
  | Top _, Poly _ -> false
  | Poly a, Poly b ->
      List.for_all (fun (m, _) -> List.exists (fun (m', _) -> mono_le m m') b) a

let equal_cost c1 c2 =
  match (c1, c2) with
  | Top _, Top _ -> true
  | Poly a, Poly b -> List.map fst a = List.map fst b
  | _ -> false

let join c1 c2 =
  match (c1, c2) with
  | Top p, Top q -> Top (if path_le p q then p else q)
  | (Top _ as t), Poly _ | Poly _, (Top _ as t) -> t
  | Poly a, Poly b -> Poly (normalize (a @ b))

(* Sequential composition is join: O(f) work then O(g) work is
   O(f + g) = the monomial union, which is what [join] computes. *)
let seq_cost = join
let seq (a : summary) (b : summary) = { host = seq_cost a.host b.host; charged = seq_cost a.charged b.charged }
let join_summary (a : summary) (b : summary) = seq a b

(* A loop of class [k] running a body of cost [c]: the monomial
   product, witnessed by the loop step followed by both provenances. *)
let mult ~(step : step) k c =
  match (k, c) with
  | Top p, _ | _, Top p -> Top (Df.clip (step :: p))
  | Poly km, Poly cm ->
      let km = if km = [] then [ ([], []) ] else km in
      let cm = if cm = [] then [ ([], []) ] else cm in
      Poly
        (normalize
           (List.concat_map
              (fun (mk, pk) ->
                List.map
                  (fun (mc, pc) ->
                    (sort_mono (mk @ mc), Df.clip ((step :: pk) @ pc)))
                  cm)
              km))

let mult_summary ~step k (s : summary) =
  { host = mult ~step k s.host; charged = mult ~step k s.charged }

(* Witness-blind copy, for lattice property tests: two costs have the
   same shape when their monomial sets agree. *)
let strip = function
  | Top _ -> Top []
  | Poly ms -> Poly (List.map (fun (m, _) -> (m, [])) ms)

let witness_steps = function
  | Top p -> p
  | Poly ms -> ( match ms with (_, p) :: _ -> p | [] -> [])


(* ------------------------------------------------------------------ *)
(* Rendering and the annotation grammar                               *)
(* ------------------------------------------------------------------ *)

let render_mono = function [] -> "1" | m -> String.concat "*" m

let render_cost = function
  | Top _ -> "O(top)"
  | Poly [] -> "O(1)"
  | Poly ms -> "O(" ^ String.concat " + " (List.map (fun (m, _) -> render_mono m) ms) ^ ")"

(* Top with its origin, for the report: names what defeated the
   analysis and where. *)
let render_cost_origin = function
  | Top (s :: _) -> Printf.sprintf "O(top) <- %s at %s:%d" s.Finding.swhat s.sfile s.sline
  | Top [] -> "O(top)"
  | c -> render_cost c

(* First monomial of [inferred] not dominated by [annot], with its
   witness path — what a scan-complexity violation names. *)
let first_violation inferred annot =
  match (inferred, annot) with
  | Top p, _ -> Some ("O(top)", p)
  | Poly _, Top _ -> None
  | Poly ms, Poly am ->
      List.find_opt
        (fun (m, _) -> not (List.exists (fun (m', _) -> mono_le m m') am))
        ms
      |> Option.map (fun (m, p) -> ("O(" ^ render_mono m ^ ")", p))

(* Annotation grammar: "O(" sum ")"; sum = prod ('+' prod)*;
   prod = atom ('*' atom)*; atom = "1" | parameter, where parameters
   accept both the bare and the n_-prefixed spellings. *)
let parse_param s =
  match String.lowercase_ascii (String.trim s) with
  | "active" | "n_active" -> Some "active"
  | "ready" | "n_ready" -> Some "ready"
  | "interests" | "n_interests" -> Some "interests"
  | "conns" | "n_conns" -> Some "conns"
  | "slots" | "n_slots" -> Some "slots"
  | _ -> None

let parse_annot (s : string) : cost option =
  let s = String.trim s in
  let n = String.length s in
  if n < 4 || not (String.equal (String.sub s 0 2) "O(") || s.[n - 1] <> ')' then None
  else begin
    let body = String.sub s 2 (n - 3) in
    let terms = String.split_on_char '+' body in
    let parse_term t =
      let factors = String.split_on_char '*' t in
      List.fold_left
        (fun acc f ->
          match acc with
          | None -> None
          | Some m -> (
              match String.trim f with
              | "1" -> Some m
              | f -> ( match parse_param f with Some p -> Some (p :: m) | None -> None)))
        (Some []) factors
    in
    let monos = List.map parse_term terms in
    if List.exists Option.is_none monos || monos = [] then None
    else Some (of_monos (List.map (fun m -> (Option.get m, [])) monos))
  end

(* ------------------------------------------------------------------ *)
(* The size-class vocabulary                                          *)
(* ------------------------------------------------------------------ *)

(* Exact-name mapping from identifiers, record fields and parameters
   to size classes. The names come from the tree's own conventions
   (DESIGN.md section 7 documents the table). *)
let vocab = function
  | "active" | "acts" | "actives" -> Some "active"
  | "conns" -> Some "conns"
  | "slots" -> Some "slots"
  | "interests" | "entries" | "members" | "table" | "subs" | "bindings" | "read"
  | "write" | "except" | "nfds" | "fds" | "max_fd" | "count" | "total" | "sockets" ->
      Some "interests"
  | "ready" | "results" | "rs" | "events" | "ds" | "max_results" | "max_events"
  | "max" | "waiters" | "wq" | "batch" | "heap" ->
      Some "ready"
  | _ -> None

(* Record fields whose size class is O(1) by axiom: scalar bookkeeping
   (tokens, cursors, generation counters) and the per-socket
   registration slabs of [Socket.Regs], which are bounded by the
   number of backend instances watching one socket — a constant, not a
   population. Checked before [vocab] so [len]/[tok] never read as
   populations. *)
let const_fields =
  [ "len"; "tok"; "next"; "next_seq"; "seq"; "limit"; "slot"; "gen"; "closed"; "sigio" ]

(* ------------------------------------------------------------------ *)
(* Head recognizers                                                   *)
(* ------------------------------------------------------------------ *)

type coll_pos = Pos of int | LastArg

type head_kind =
  | Charge  (** O(1) charge event *)
  | Charge_run  (** charge + run the thunk argument once *)
  | Charge_batch  (** Cost_model.charge_batch ~count *)
  | Iterate of { coll : coll_pos; exits : bool; res_is_coll : bool }
      (** walks the collection; callbacks run once per element *)
  | Length of coll_pos  (** O(1) work whose result has the collection's class *)
  | Const_fn  (** O(1) work, O(1) result class *)
  | Arith  (** O(1) work, result class = join of argument classes *)
  | Unknown

let const_modules =
  [
    "Printf"; "Format"; "String"; "Bytes"; "Buffer"; "Char"; "Int"; "Int32";
    "Int64"; "Float"; "Bool"; "Option"; "Result"; "Either"; "Sys"; "Filename";
    "Fun"; "Stdlib"; "Atomic"; "Random"; "Bigarray"; "Array1"; "Array2";
    "Genarray"; "Nativeint"; "Lazy"; "Printexc"; "Time"; "Pollmask"; "Exn";
  ]

let const_idents =
  [
    "ignore"; "fst"; "snd"; "raise"; "raise_notrace"; "failwith";
    "invalid_arg"; "@@"; "|>"; "^"; "string_of_int"; "int_of_string";
    "float_of_int"; "int_of_float"; "string_of_float"; "print_string";
    "print_endline"; "prerr_endline"; "exit"; "at_exit";
  ]

(* O(1) work whose *result class* is the join of the argument classes:
   arithmetic, comparisons and boolean connectives (so a loop bound
   like [!n < max_events] inherits [max_events]'s class), ref cells,
   and the unqualified pollmask combinators socket.ml uses under
   [open Pollmask]. *)
let arith_idents =
  [
    "+"; "-"; "*"; "/"; "mod"; "min"; "max"; "succ"; "pred"; "abs"; "land";
    "lor"; "lxor"; "lnot"; "lsl"; "lsr"; "asr"; "~-"; "+."; "-."; "*."; "/.";
    "ref"; "!"; ":="; "incr"; "decr"; "@"; "compare"; "="; "<>"; "<"; ">";
    "<="; ">="; "=="; "!="; "not"; "&&"; "||"; "union"; "inter"; "intersects";
    "diff";
  ]

let list_iterators =
  [
    "iter"; "iteri"; "map"; "mapi"; "filter"; "filter_map"; "fold_left";
    "fold_right"; "for_all"; "exists"; "find"; "find_opt"; "find_map";
    "partition"; "concat_map"; "sort"; "sort_uniq"; "stable_sort"; "rev_map";
    "rev_append"; "append"; "length"; "mem"; "memq"; "assoc"; "assoc_opt";
    "mem_assoc"; "rev"; "concat"; "flatten"; "split"; "combine"; "nth";
    "nth_opt"; "filteri"; "iter2"; "map2"; "fold_left2";
  ]

(* Which List functions return something sized like their input. *)
let list_sized_results =
  [
    "map"; "mapi"; "filter"; "filter_map"; "fold_left"; "fold_right"; "sort";
    "sort_uniq"; "stable_sort"; "rev_map"; "rev_append"; "append"; "length";
    "partition"; "concat_map"; "rev"; "concat"; "flatten"; "split"; "combine";
    "filteri"; "map2";
  ]

let head_kind (path : string list) : head_kind =
  match List.rev path with
  | [] -> Unknown
  | [ "enter" ] -> Charge
  | f :: rest -> (
      let m = match rest with m :: _ -> m | [] -> "" in
      match (m, f) with
      | "Host", "charge" | "Cpu", "consume" -> Charge
      | "Host", "charge_run" | "Cpu", "run" -> Charge_run
      | "Cost_model", "charge_batch" -> Charge_batch
      | "List", "init" ->
          Iterate { coll = Pos 0; exits = false; res_is_coll = true }
      | "List", f when List.mem f list_iterators ->
          Iterate
            { coll = LastArg; exits = false; res_is_coll = List.mem f list_sized_results }
      | "Fd_map", ("iter" | "fold" | "to_list") ->
          Iterate { coll = Pos 0; exits = false; res_is_coll = not (String.equal f "iter") }
      | "Fd_map", ("min_key" | "max_key") -> Length (Pos 0)
      | "Fd_map", ("length" | "is_empty") -> Length (Pos 0)
      | "Fd_map", _ -> Const_fn (* find/set/remove/mem/clear/create: O(1) *)
      | "Interest_table", ("iter" | "fold") ->
          Iterate { coll = Pos 0; exits = false; res_is_coll = String.equal f "fold" }
      | "Interest_table", "iter_while" ->
          Iterate { coll = Pos 0; exits = true; res_is_coll = false }
      | "Interest_table", ("length" | "bucket_count" | "mean_bucket_occupancy") ->
          Length (Pos 0)
      | "Interest_table", _ -> Const_fn (* find/set/remove: O(1) amortized *)
      | "Ready_buffer", ("iter" | "fold" | "to_list") ->
          Iterate { coll = Pos 0; exits = false; res_is_coll = not (String.equal f "iter") }
      | "Ready_buffer", ("length" | "is_empty") -> Length (Pos 0)
      | "Ready_buffer", _ -> Const_fn (* push/get/clear/create: O(1) *)
      | "Fd_set", ("iter" | "fold" | "copy" | "clear_all") ->
          Iterate { coll = Pos 0; exits = false; res_is_coll = true }
      | "Fd_set", ("max_fd" | "cardinal" | "is_empty") -> Length (Pos 0)
      | "Fd_set", _ -> Const_fn (* set/clear/mem: O(1) bit ops *)
      | "Hashtbl", ("iter" | "fold" | "filter_map_inplace") ->
          Iterate { coll = LastArg; exits = false; res_is_coll = String.equal f "fold" }
      | "Hashtbl", ("length" | "stats") -> Length LastArg
      | "Hashtbl", _ -> Const_fn
      | "Queue", ("iter" | "fold" | "transfer" | "copy" | "to_seq") ->
          Iterate { coll = LastArg; exits = false; res_is_coll = String.equal f "fold" }
      | "Queue", ("length" | "is_empty") -> Length LastArg
      | "Queue", _ -> Const_fn
      | "Array", "init" ->
          Iterate { coll = Pos 0; exits = false; res_is_coll = true }
      | "Array", ("make" | "blit" | "fill" | "copy") ->
          (* allocation axiom: buffer allocation/moves are amortized
             O(1) (slab growth doubles; the copy amortizes over the
             element writes that filled it) *)
          Const_fn
      | "Array", f
        when List.mem f
               [ "iter"; "iteri"; "map"; "mapi"; "fold_left"; "fold_right";
                 "to_list"; "of_list"; "exists";
                 "for_all"; "mem"; "sort"; "stable_sort" ] ->
          Iterate { coll = LastArg; exits = false; res_is_coll = true }
      | "Array", "length" -> Length (Pos 0)
      | "Array", _ -> Const_fn (* get/set/unsafe_*: O(1) *)
      | "Heap", ("length" | "is_empty") -> Length (Pos 0)
      | "Heap", _ -> Const_fn (* push/pop/peek: O(log pending), below resolution *)
      | "Engine", _ -> Const_fn (* timer registration/cancel *)
      | "Stdlib", f when List.mem f arith_idents -> Arith
      | _, _ when List.mem m const_modules -> Const_fn
      | "", f when List.mem f const_idents -> Const_fn
      | "", f when List.mem f arith_idents -> Arith
      | _ -> Unknown)

(* ------------------------------------------------------------------ *)
(* The abstract interpreter                                           *)
(* ------------------------------------------------------------------ *)

(* A function value tracked through the environment: a syntactic
   lambda (with how its self-recursion, if any, is bounded) or a
   reference to an indexed symbol. *)
type fkind = Plain | Bounded of int | Unbounded

type lfun =
  | Lfun of { fps : function_param list; fb : function_body; kind : fkind; lloc : Location.t; lname : string }
  | Lsym of string  (** symbol uid *)

type value = { cls : cost; fn : lfun option }

type batch_site = {
  bloc : Location.t;
  buid : string;
  bfile : string;
  count_class : cost;
  loop_class : cost;  (** join of enclosing loop classes; const outside loops *)
}

type loop_site = {
  lloc : Location.t;
  luid : string;
  lfile : string;
  lhead : string;
  lclass : cost;
  body_charged : cost;  (** per-iteration charged cost of the body *)
}

type env = {
  index : Symbol_index.t;
  summaries : summary SMap.t;
  classes : cost SMap.t;
      (** symbol uid -> size class of the value the symbol returns,
          iterated to fixpoint alongside [summaries] so a binding like
          [let first = harvest t ~max_events] knows [first] is sized
          O(ready) *)
  scope : string list;
  file : string;
  uid : string;
  vars : value SMap.t ref;
  mutable loop_stack : cost list;
  mutable fuel : int;
  batches : batch_site list ref;
  loops : loop_site list ref;
}

let step_at env (loc : Location.t) what =
  let p = loc.loc_start in
  { Finding.sfile = env.file; sline = p.pos_lnum; scol = p.pos_cnum - p.pos_bol; swhat = what }

let top_at env loc what = top [ step_at env loc what ]
let top_summary env loc what =
  let t = top_at env loc what in
  { host = t; charged = t }

let dotted = String.concat "."

let rec returns_false e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "false"; _ }, None) -> true
  | Pexp_sequence (_, b) -> returns_false b
  | Pexp_let (_, _, b) -> returns_false b
  | Pexp_constraint (b, _) -> returns_false b
  | _ -> false

(* Pure size-class evaluator: what parameter class does this
   expression's *value* scale with? Reads the shared environment but
   performs no accounting. *)
let rec class_of env (e : expression) : cost =
  match e.pexp_desc with
  | Pexp_constant _ -> const
  | Pexp_construct ({ txt = Lident ("[]" | "()" | "true" | "false" | "None"); _ }, _) ->
      const
  | Pexp_construct ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ _; tl ]; _ }) ->
      class_of env tl
  | Pexp_construct (_, Some arg) -> class_of env arg
  | Pexp_construct (_, None) -> const
  | Pexp_variant (_, Some arg) -> class_of env arg
  | Pexp_variant (_, None) -> const
  | Pexp_ident { txt = Lident name; _ } -> (
      match SMap.find_opt name !(env.vars) with
      | Some v -> v.cls
      | None -> (
          match vocab name with
          | Some p -> poly1 p
          | None ->
              top_at env e.pexp_loc
                (Printf.sprintf "identifier %s has no size class" name)))
  | Pexp_ident _ -> const (* a qualified value (Time.zero, ...) is a scalar *)
  | Pexp_field (_, { txt; _ }) -> (
      let fname = match List.rev (Symbol_index.path_of_lid txt) with f :: _ -> f | [] -> "" in
      if List.mem fname const_fields then const
      else
        match vocab fname with
        | Some p -> poly1 p
        | None ->
            top_at env e.pexp_loc (Printf.sprintf "field %s has no size class" fname))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let path = Symbol_index.path_of_lid txt in
      let positional =
        List.filter_map (fun (l, a) -> match l with Nolabel -> Some a | _ -> None) args
      in
      let coll_arg cp =
        match cp with
        | Pos i -> List.nth_opt positional i
        | LastArg -> ( match List.rev positional with a :: _ -> Some a | [] -> None)
      in
      match head_kind path with
      | Length cp | Iterate { coll = cp; res_is_coll = true; _ } -> (
          match coll_arg cp with
          | Some a -> class_of env a
          | None -> const)
      | Iterate { res_is_coll = false; _ } -> const
      | Arith ->
          List.fold_left (fun acc (_, a) -> join acc (class_of env a)) const args
      | Const_fn | Charge | Charge_run | Charge_batch -> const
      | Unknown -> (
          (* an in-tree callee's result class comes from the class
             fixpoint; unresolved calls have no size class *)
          match Symbol_index.resolve_in env.index ~scope:env.scope path with
          | [] ->
              top_at env e.pexp_loc
                (Printf.sprintf "result of call %s has no size class" (dotted path))
          | syms ->
              List.fold_left
                (fun acc (s : Symbol_index.symbol) ->
                  join acc
                    (match SMap.find_opt s.uid env.classes with
                    | Some c -> c
                    | None -> const))
                const syms))
  | Pexp_apply ({ pexp_desc = Pexp_field _; _ }, _) ->
      (* call through a record field: an O(1) lookup/callback whose
         result is a scalar or single element *)
      const
  | Pexp_ifthenelse (_, t, e') ->
      join (class_of env t)
        (match e' with Some x -> class_of env x | None -> const)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.fold_left (fun acc c -> join acc (class_of env c.pc_rhs)) const
        (if cases = [] then [] else cases)
  | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> class_of env b
  | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) -> class_of env b
  | Pexp_open (_, b) | Pexp_letmodule (_, _, b) | Pexp_letexception (_, b) ->
      class_of env b
  | Pexp_tuple es -> List.fold_left (fun acc x -> join acc (class_of env x)) const es
  | Pexp_function _ -> const
  | _ -> top_at env e.pexp_loc "expression has no recognizable size class"

(* Classes of the early-exit conditions in an [iter_while] callback:
   every branch that tail-returns [false] bounds the iteration count
   by its condition's class. *)
let exit_classes env (body : expression) =
  let acc = ref None in
  let add c = acc := Some (match !acc with None -> c | Some x -> join x c) in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ifthenelse (cond, t, e') ->
            if returns_false t || (match e' with Some x -> returns_false x | None -> false)
            then add (class_of env cond)
        | Pexp_match (scrut, cases) ->
            if List.exists (fun c -> returns_false c.pc_rhs) cases then
              add (class_of env scrut)
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !acc

(* [while] bound: walk the condition's boolean structure ([&&], [||],
   [not]) and join the classes of every *recognizable size atom* — a
   comparison (class = join of its operands) or an emptiness/length
   test (class = the collection's). Boolean flags ([!continue],
   [q.sigio]) are not bounds and are skipped; a condition with no
   recognizable atom at all is top. *)
let while_bound env (cond : expression) =
  let cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!=" ] in
  let rec atoms e =
    match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident ("&&" | "||"); _ }; _ }, [ (_, a); (_, b) ]) ->
        atoms a @ atoms b
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "not"; _ }; _ }, [ (_, a) ]) ->
        atoms a
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident op; _ }; _ }, _)
      when List.mem op cmp_ops ->
        [ class_of env e ]
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match head_kind (Symbol_index.path_of_lid txt) with
        | Length _ -> [ class_of env e ]
        | _ -> [])
    | Pexp_constraint (b, _) -> atoms b
    | _ -> []
  in
  match atoms cond with
  | [] -> top_at env cond.pexp_loc "while loop without recognizable bound"
  | cs -> List.fold_left join const cs

(* Local [let rec] groups: only an actual application cycle widens.
   The in-tree wake/arm continuation pairs define mutually-referencing
   lambdas that never call back into themselves — those stay plain.
   A single-member cycle whose every self-call syntactically
   decrements one int parameter ([go acc (n - 1)]) is bounded by that
   parameter's class; anything else cyclic is unbounded. *)
let params_of_lambda (e : expression) =
  match e.pexp_desc with
  | Pexp_function (fps, _, _) ->
      List.filter_map
        (fun fp ->
          match fp.pparam_desc with
          | Pparam_val (_, _, pat) -> Some (Symbol_index.var_name pat)
          | Pparam_newtype _ -> None)
        fps
  | _ -> []

let self_calls name (body : expression) =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }, args)
          when String.equal n name ->
            acc := args :: !acc
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !acc

let applied_names names (body : expression) =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }, _)
          when List.mem n names ->
            acc := n :: !acc
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  List.sort_uniq String.compare !acc

let decrements_param param (arg : expression) =
  match (param, arg.pexp_desc) with
  | Some p, Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "-"; _ }; _ },
                        [ (_, { pexp_desc = Pexp_ident { txt = Lident v; _ }; _ });
                          (_, { pexp_desc = Pexp_constant _; _ }) ]) ->
      String.equal v p
  | Some p, Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "pred"; _ }; _ },
                        [ (_, { pexp_desc = Pexp_ident { txt = Lident v; _ }; _ }) ]) ->
      String.equal v p
  | _ -> false

(* kind of one recursive binding: Bounded i when some parameter index
   i is decremented by every self-application. *)
let rec_kind name (rhs : expression) =
  let ps = params_of_lambda rhs in
  let calls = self_calls name rhs in
  if calls = [] then Plain
  else
    let bounded_at i =
      let p = List.nth_opt ps i |> Option.join in
      List.for_all
        (fun args ->
          let positional =
            List.filter_map (fun (l, a) -> match l with Nolabel -> Some a | _ -> None) args
          in
          match List.nth_opt positional i with
          | Some a -> decrements_param p a
          | None -> false)
        calls
    in
    let rec find i = if i >= List.length ps then None else if bounded_at i then Some i else find (i + 1) in
    match find 0 with Some i -> Bounded i | None -> Unbounded

(* ------------------------------------------------------------------ *)
(* eval                                                               *)
(* ------------------------------------------------------------------ *)

type arg_info = { alabel : arg_label; aexpr : expression; asum : summary; acls : cost; afn : lfun option }

let loop_join env = List.fold_left join const env.loop_stack

let bind env name v = env.vars := SMap.add name v !(env.vars)

let bind_pattern_vocab env pat =
  match Symbol_index.var_name pat with
  | Some n ->
      let cls =
        match vocab n with
        | Some p -> poly1 p
        | None -> top [ { Finding.sfile = env.file; sline = pat.ppat_loc.loc_start.pos_lnum;
                          scol = pat.ppat_loc.loc_start.pos_cnum - pat.ppat_loc.loc_start.pos_bol;
                          swhat = Printf.sprintf "parameter %s has no size class" n } ]
      in
      bind env n { cls; fn = None }
  | None -> ()

let rec eval env (e : expression) : summary * lfun option =
  match e.pexp_desc with
  | Pexp_constant _ -> (unit_summary, None)
  | Pexp_ident { txt; _ } -> (
      let path = Symbol_index.path_of_lid txt in
      match path with
      | [ name ] when SMap.mem name !(env.vars) ->
          (unit_summary, (SMap.find name !(env.vars)).fn)
      | _ -> (
          match Symbol_index.resolve_in env.index ~scope:env.scope path with
          | s :: _ -> (unit_summary, Some (Lsym s.Symbol_index.uid))
          | [] -> (unit_summary, None)))
  | Pexp_function (fps, _, fb) ->
      (unit_summary, Some (Lfun { fps; fb; kind = Plain; lloc = e.pexp_loc; lname = "<fun>" }))
  | Pexp_apply (head, args) -> eval_apply env e head args
  | Pexp_let (Nonrecursive, vbs, body) ->
      let w =
        List.fold_left
          (fun acc vb ->
            let s, fn = eval env vb.pvb_expr in
            (match Symbol_index.var_name vb.pvb_pat with
            | Some n ->
                let computed = class_of env vb.pvb_expr in
                let cls =
                  match computed with
                  | Top _ -> (
                      match vocab n with Some p -> poly1 p | None -> computed)
                  | c -> c
                in
                bind env n { cls; fn }
            | None -> ());
            seq acc s)
          unit_summary vbs
      in
      let s, fn = eval env body in
      (seq w s, fn)
  | Pexp_let (Recursive, vbs, body) ->
      let names = List.filter_map (fun vb -> Symbol_index.var_name vb.pvb_pat) vbs in
      (* application graph within the group; a member is cyclic when it
         can reach itself through applications. *)
      let edges =
        List.filter_map
          (fun vb ->
            match Symbol_index.var_name vb.pvb_pat with
            | Some n -> Some (n, applied_names names vb.pvb_expr)
            | None -> None)
          vbs
      in
      let reaches_self n =
        let rec go visited frontier =
          match frontier with
          | [] -> false
          | x :: rest ->
              if List.mem x visited then go visited rest
              else
                let nexts = try List.assoc x edges with Not_found -> [] in
                if List.mem n nexts then true else go (x :: visited) (nexts @ rest)
        in
        go [] (try List.assoc n edges with Not_found -> [])
      in
      List.iter
        (fun vb ->
          match Symbol_index.var_name vb.pvb_pat with
          | Some n -> (
              match vb.pvb_expr.pexp_desc with
              | Pexp_function (fps, _, fb) ->
                  let kind =
                    if not (reaches_self n) then Plain
                    else
                      match rec_kind n vb.pvb_expr with
                      | Plain | Bounded _ as k -> (
                          (* mutual cycle through others: only trust a
                             direct decrement bound *)
                          match k with Bounded i -> Bounded i | _ -> Unbounded)
                      | Unbounded -> Unbounded
                  in
                  bind env n
                    { cls = const;
                      fn = Some (Lfun { fps; fb; kind; lloc = vb.pvb_loc; lname = n }) }
              | _ ->
                  let s, fn = eval env vb.pvb_expr in
                  ignore s;
                  bind env n { cls = class_of env vb.pvb_expr; fn })
          | None -> ())
        vbs;
      eval env body
  | Pexp_sequence (a, b) ->
      let sa, _ = eval env a in
      let sb, fn = eval env b in
      (seq sa sb, fn)
  | Pexp_ifthenelse (c, t, e') ->
      let sc, _ = eval env c in
      let st, ft = eval env t in
      let se, _ = match e' with Some x -> eval env x | None -> (unit_summary, None) in
      (seq sc (join_summary st se), ft)
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let ss, _ = eval env scrut in
      let sc =
        List.fold_left
          (fun acc c ->
            let sg, _ = match c.pc_guard with Some g -> eval env g | None -> (unit_summary, None) in
            let sb, _ = eval env c.pc_rhs in
            join_summary acc (seq sg sb))
          unit_summary cases
      in
      (seq ss sc, None)
  | Pexp_while (cond, body) ->
      let k = while_bound env cond in
      let step = step_at env e.pexp_loc (Printf.sprintf "while loop, class %s" (render_cost k)) in
      env.loop_stack <- k :: env.loop_stack;
      let sc, _ = eval env cond in
      let sb, _ = eval env body in
      env.loop_stack <- List.tl env.loop_stack;
      let body_sum = seq sc sb in
      env.loops :=
        { lloc = e.pexp_loc; luid = env.uid; lfile = env.file; lhead = "while";
          lclass = k; body_charged = body_sum.charged }
        :: !(env.loops);
      (mult_summary ~step k body_sum, None)
  | Pexp_for (pat, lo, hi, _, body) ->
      let k = join (class_of env lo) (class_of env hi) in
      let step = step_at env e.pexp_loc (Printf.sprintf "for loop, class %s" (render_cost k)) in
      bind_pattern_vocab env pat;
      (match Symbol_index.var_name pat with
      | Some n -> bind env n { cls = const; fn = None }
      | None -> ());
      env.loop_stack <- k :: env.loop_stack;
      let slo, _ = eval env lo in
      let shi, _ = eval env hi in
      let sb, _ = eval env body in
      env.loop_stack <- List.tl env.loop_stack;
      env.loops :=
        { lloc = e.pexp_loc; luid = env.uid; lfile = env.file; lhead = "for";
          lclass = k; body_charged = sb.charged }
        :: !(env.loops);
      (seq (seq slo shi) (mult_summary ~step k sb), None)
  | Pexp_setfield (r, _, v) ->
      let sr, _ = eval env r in
      let sv, _ = eval env v in
      (seq sr sv, None)
  | Pexp_field (r, _) ->
      let s, _ = eval env r in
      (s, None)
  | Pexp_record (fields, base) ->
      let s =
        List.fold_left
          (fun acc (_, fe) ->
            let sf, _ = eval env fe in
            seq acc sf)
          unit_summary fields
      in
      let sb = match base with Some b -> fst (eval env b) | None -> unit_summary in
      (seq s sb, None)
  | Pexp_tuple es | Pexp_array es ->
      ( List.fold_left
          (fun acc x ->
            let s, _ = eval env x in
            seq acc s)
          unit_summary es,
        None )
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
      let s, _ = eval env arg in
      (s, None)
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> (unit_summary, None)
  | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) -> eval env b
  | Pexp_open (_, b) | Pexp_letmodule (_, _, b) | Pexp_letexception (_, b)
  | Pexp_newtype (_, b) | Pexp_lazy b ->
      eval env b
  | Pexp_assert b ->
      let s, _ = eval env b in
      (s, None)
  | _ -> (unit_summary, None)

and eval_args env args : arg_info list =
  List.map
    (fun (alabel, aexpr) ->
      let asum, afn = eval env aexpr in
      let afn =
        match afn with
        | Some _ -> afn
        | None -> (
            (* an ident naming an indexed definition is a callback
               candidate even when shadow-checked above *)
            match aexpr.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                (* partial application: multiply the resolved head's
                   summary when used as a callback *)
                match
                  Symbol_index.resolve_in env.index ~scope:env.scope
                    (Symbol_index.path_of_lid txt)
                with
                | s :: _ when (match head_kind (Symbol_index.path_of_lid txt) with
                               | Unknown -> true
                               | _ -> false) ->
                    Some (Lsym s.Symbol_index.uid)
                | _ -> None)
            | _ -> None)
      in
      { alabel; aexpr; asum; acls = class_of env aexpr; afn })
    args

and apply_lfun env (lf : lfun) (args : arg_info list) : summary =
  match lf with
  | Lsym uid -> (
      match SMap.find_opt uid env.summaries with
      | Some s -> s
      | None -> unit_summary)
  | Lfun { fps; fb; kind; lloc; lname } -> (
      if env.fuel <= 0 then top_summary env lloc "analysis fuel exhausted"
      else begin
        env.fuel <- env.fuel - 1;
        (* bind value parameters positionally *)
        let vparams =
          List.filter_map
            (fun fp ->
              match fp.pparam_desc with
              | Pparam_val (_, _, pat) -> Some pat
              | Pparam_newtype _ -> None)
            fps
        in
        List.iteri
          (fun i pat ->
            match Symbol_index.var_name pat with
            | Some n -> (
                match List.nth_opt args i with
                | Some a -> bind env n { cls = a.acls; fn = a.afn }
                | None -> bind_pattern_vocab env pat)
            | None -> ())
          vparams;
        (* shadow the recursive name during body evaluation: the body
           summary is ONE iteration's cost (the [Bounded]
           multiplication below accounts the count), so self-calls
           inside it are O(1) frame transfers — and must not re-apply
           the lambda until fuel runs out *)
        let saved_self =
          match kind with
          | Bounded _ | Unbounded ->
              let old = SMap.find_opt lname !(env.vars) in
              bind env lname { cls = const; fn = None };
              Some (lname, old)
          | Plain -> None
        in
        let body_sum =
          match fb with
          | Pfunction_body b -> fst (eval env b)
          | Pfunction_cases (cases, _, _) ->
              List.fold_left
                (fun acc c ->
                  let sg = match c.pc_guard with Some g -> fst (eval env g) | None -> unit_summary in
                  join_summary acc (seq sg (fst (eval env c.pc_rhs))))
                unit_summary cases
        in
        (match saved_self with
        | Some (n, Some old) -> bind env n old
        | Some (n, None) -> env.vars := SMap.remove n !(env.vars)
        | None -> ());
        match kind with
        | Plain -> body_sum
        | Unbounded ->
            top_summary env lloc
              (Printf.sprintf "unbounded local recursion %s" lname)
        | Bounded i ->
            let k =
              match List.nth_opt args i with
              | Some a -> a.acls
              | None -> top_at env lloc (Printf.sprintf "recursion bound of %s out of scope" lname)
            in
            let step =
              step_at env lloc
                (Printf.sprintf "bounded recursion %s, class %s" lname (render_cost k))
            in
            mult_summary ~step k body_sum
      end)

and eval_apply env (e : expression) head args : summary * lfun option =
  match head.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let path = Symbol_index.path_of_lid txt in
      (* := / incr / decr: ref accumulation inside a loop promotes the
         target's class to the loop's class. *)
      (match (path, args) with
      | [ ":=" ], (_, { pexp_desc = Pexp_ident { txt = Lident r; _ }; _ }) :: (_, rhs) :: _ -> (
          match SMap.find_opt r !(env.vars) with
          | Some v when env.loop_stack <> [] ->
              bind env r
                { v with cls = join v.cls (join (loop_join env) (class_of env rhs)) }
          | _ -> ())
      | ([ "incr" ] | [ "decr" ]), (_, { pexp_desc = Pexp_ident { txt = Lident r; _ }; _ }) :: _ -> (
          match SMap.find_opt r !(env.vars) with
          | Some v when env.loop_stack <> [] ->
              bind env r { v with cls = join v.cls (loop_join env) }
          | _ -> ())
      | _ -> ());
      match path with
      | [ name ] when SMap.mem name !(env.vars) -> (
          let infos = eval_args env args in
          let args_work = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
          match (SMap.find name !(env.vars)).fn with
          | Some lf ->
              (* a locally-bound function: apply it *)
              (seq args_work (apply_lfun env lf infos), None)
          | None ->
              (* CPS axiom: a parameter-bound function value ([k
                 results], [lookup fd], the waker [f]) applies in O(1)
                 from this frame — continuations end frames, they do
                 not loop, and their bodies are accounted where they
                 are defined *)
              (args_work, None))
      | _ -> (
          match head_kind path with
          | Charge ->
              let infos = eval_args env args in
              let w = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
              (seq w { host = const; charged = const }, None)
          | Charge_run ->
              let infos = eval_args env args in
              let w = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
              let thunks =
                List.filter_map (fun a -> a.afn) infos
                |> List.map (fun lf -> apply_lfun env lf [])
              in
              (List.fold_left seq w thunks, None)
          | Charge_batch ->
              let infos = eval_args env args in
              let w = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
              let count_class =
                match
                  List.find_opt
                    (fun a -> match a.alabel with Labelled "count" -> true | _ -> false)
                    infos
                with
                | Some a -> a.acls
                | None -> top_at env e.pexp_loc "charge_batch without ~count"
              in
              env.batches :=
                { bloc = e.pexp_loc; buid = env.uid; bfile = env.file;
                  count_class; loop_class = loop_join env }
                :: !(env.batches);
              (seq w { host = const; charged = count_class }, None)
          | Iterate { coll; exits; res_is_coll = _ } ->
              eval_iterate env e path args ~coll ~exits
          | Length _ | Const_fn | Arith ->
              (* function-valued args are registered, not run (the
                 registration axiom) — only Charge_run thunks and
                 iterator callbacks are applied *)
              let infos = eval_args env args in
              let w = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
              (w, None)
          | Unknown -> (
              match Symbol_index.resolve_in env.index ~scope:env.scope path with
              | [] ->
                  let infos = eval_args env args in
                  let w = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
                  ( seq w
                      (top_summary env e.pexp_loc
                         (Printf.sprintf "unresolved call %s" (dotted path))),
                    None )
              | syms ->
                  (* function-valued args (continuations, subscription
                     callbacks) are registered, not run: the callee's
                     summary already accounts its own frame, and a
                     stored callback fires on driver edges, not here *)
                  let infos = eval_args env args in
                  let w = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
                  let callee =
                    List.fold_left
                      (fun acc (s : Symbol_index.symbol) ->
                        join_summary acc (apply_lfun env (Lsym s.uid) []))
                      unit_summary syms
                  in
                  (seq w callee, None))))
  | Pexp_field (r, _) ->
      (* axiom: a call through a record field is a stored callback
         ([w.Socket.wake mask]) or the O(1) arena access [t.lookup fd]
         is everywhere in this tree — O(1) from the applying frame *)
      let sr, _ = eval env r in
      let infos = eval_args env args in
      let w = List.fold_left (fun acc a -> seq acc a.asum) sr infos in
      (w, None)
  | _ -> (
      let sh, fh = eval env head in
      let infos = eval_args env args in
      let w = List.fold_left (fun acc a -> seq acc a.asum) sh infos in
      match fh with
      | Some lf -> (seq w (apply_lfun env lf infos), None)
      | None -> (seq w (top_summary env e.pexp_loc "opaque application"), None))

and eval_iterate env (e : expression) path args ~coll ~exits : summary * lfun option =
  let infos = eval_args env args in
  let positional = List.filter (fun a -> a.alabel = Nolabel) infos in
  let coll_info =
    match coll with
    | Pos i -> List.nth_opt positional i
    | LastArg -> ( match List.rev positional with a :: _ -> Some a | [] -> None)
  in
  let coll_class =
    match coll_info with
    | Some a -> a.acls
    | None -> top_at env e.pexp_loc (Printf.sprintf "%s without a collection argument" (dotted path))
  in
  (* callbacks: every function-valued argument other than the
     collection itself runs once per iteration *)
  let callbacks =
    List.filter_map
      (fun a ->
        match a.afn with
        | Some lf when (match coll_info with Some c -> not (c == a) | None -> true) -> Some lf
        | _ -> None)
      infos
  in
  let k =
    if not exits then coll_class
    else
      (* iter_while: the join of recognizable early-exit bounds caps
         the iteration count; none found -> the collection's class *)
      let from_callbacks =
        List.fold_left
          (fun acc lf ->
            match lf with
            | Lfun { fb = Pfunction_body b; _ } -> (
                match exit_classes env b with
                | Some c -> Some (match acc with None -> c | Some x -> join x c)
                | None -> acc)
            | Lfun { fb = Pfunction_cases (cases, _, _); _ } ->
                List.fold_left
                  (fun acc c ->
                    match exit_classes env c.pc_rhs with
                    | Some x -> Some (match acc with None -> x | Some y -> join y x)
                    | None -> acc)
                  acc cases
            | Lsym _ -> acc)
          None callbacks
      in
      match from_callbacks with Some c -> c | None -> coll_class
  in
  let step =
    step_at env e.pexp_loc
      (Printf.sprintf "%s loop, class %s" (dotted path) (render_cost k))
  in
  let args_work = List.fold_left (fun acc a -> seq acc a.asum) unit_summary infos in
  env.loop_stack <- k :: env.loop_stack;
  let body =
    List.fold_left
      (fun acc lf ->
        (* iteration callbacks receive single elements: bind their
           parameters to O(1) *)
        (match lf with
        | Lfun { fps; _ } ->
            List.iter
              (fun fp ->
                match fp.pparam_desc with
                | Pparam_val (_, _, pat) -> (
                    match Symbol_index.var_name pat with
                    | Some n -> bind env n { cls = const; fn = None }
                    | None -> ())
                | Pparam_newtype _ -> ())
              fps
        | Lsym _ -> ());
        seq acc (apply_lfun env lf []))
      unit_summary callbacks
  in
  env.loop_stack <- List.tl env.loop_stack;
  env.loops :=
    { lloc = e.pexp_loc; luid = env.uid; lfile = env.file; lhead = dotted path;
      lclass = k; body_charged = body.charged }
    :: !(env.loops);
  (seq args_work (mult_summary ~step k body), None)

(* ------------------------------------------------------------------ *)
(* Whole-tree fixpoint                                                *)
(* ------------------------------------------------------------------ *)

type result = {
  summaries : summary SMap.t;  (** symbol uid -> summary *)
  batches : batch_site list;  (** every charge_batch site, body order *)
  loops : loop_site list;  (** every recognized loop, body order *)
}

(* uids that can reach themselves through the callgraph: their
   summaries widen to top (module-level recursion has no syntactic
   bound we trust). *)
let recursive_uids (graph : Callgraph.t) =
  List.filter_map
    (fun (n : Callgraph.node) ->
      let rec bfs visited frontier =
        match frontier with
        | [] -> false
        | x :: rest ->
            if List.mem x visited then bfs visited rest
            else
              let nexts = Callgraph.callees graph x in
              if List.mem n.Callgraph.id nexts then true
              else bfs (x :: visited) (nexts @ rest)
      in
      if bfs [] n.callees then Some n.id else None)
    graph.Callgraph.nodes
  |> List.sort_uniq String.compare

let eval_symbol index summaries classes recursive (s : Symbol_index.symbol) =
  let env =
    {
      index;
      summaries;
      classes;
      scope = Symbol_index.scope_of s;
      file = s.file;
      uid = s.uid;
      vars = ref SMap.empty;
      loop_stack = [];
      fuel = 512;
      batches = ref [];
      loops = ref [];
    }
  in
  (* peel the parameter spine: the summary is the cost of one full
     application (or of evaluating the binding, for plain values);
     the result class is the body's class, computed after eval so it
     sees loop-promoted accumulator classes *)
  let rec peel (e : expression) =
    match e.pexp_desc with
    | Pexp_function (fps, _, fb) ->
        List.iter
          (fun fp ->
            match fp.pparam_desc with
            | Pparam_val (_, _, pat) -> bind_pattern_vocab env pat
            | Pparam_newtype _ -> ())
          fps;
        (match fb with
        | Pfunction_body b -> peel b
        | Pfunction_cases (cases, _, _) ->
            List.fold_left
              (fun (acc, accc) c ->
                let sg = match c.pc_guard with Some g -> fst (eval env g) | None -> unit_summary in
                let sb = fst (eval env c.pc_rhs) in
                (join_summary acc (seq sg sb), join accc (class_of env c.pc_rhs)))
              (unit_summary, const) cases)
    | Pexp_constraint (b, _) -> peel b
    | _ ->
        let s = fst (eval env e) in
        (s, class_of env e)
  in
  let sum, cls = peel s.body in
  let sum, cls =
    if List.mem s.uid recursive then
      let stp =
        {
          Finding.sfile = s.file;
          sline = s.line;
          scol = s.col;
          swhat = Printf.sprintf "recursive definition %s" (dotted s.qname);
        }
      in
      ({ host = Top [ stp ]; charged = Top [ stp ] }, Top [ stp ])
    else (sum, cls)
  in
  (sum, cls, List.rev !(env.batches), List.rev !(env.loops))

let max_sweeps = 64

let analyze ?graph (index : Symbol_index.t) : result =
  let graph = match graph with Some g -> g | None -> Callgraph.build index in
  let recursive = recursive_uids graph in
  let rec sweep n summaries classes =
    let batches = ref [] and loops = ref [] in
    let summaries', classes' =
      List.fold_left
        (fun (acc, accc) (s : Symbol_index.symbol) ->
          let sum, cls, bs, ls = eval_symbol index summaries classes recursive s in
          batches := bs :: !batches;
          loops := ls :: !loops;
          (SMap.add s.uid sum acc, SMap.add s.uid cls accc))
        (SMap.empty, SMap.empty) index.Symbol_index.symbols
    in
    if
      n >= max_sweeps
      || (SMap.equal (fun a b -> a = b) summaries summaries'
         && SMap.equal (fun a b -> a = b) classes classes')
    then
      { summaries = summaries';
        batches = List.concat (List.rev !batches);
        loops = List.concat (List.rev !loops) }
    else sweep (n + 1) summaries' classes'
  in
  sweep 1 SMap.empty SMap.empty

(* ------------------------------------------------------------------ *)
(* Entry points and the report                                        *)
(* ------------------------------------------------------------------ *)

(* Backend scan/wait entry points (exact qualified names): every one
   of these must carry a [@complexity] annotation the inferred host
   summary entails. *)
let entry_points =
  [
    [ "Poll"; "scan" ];
    [ "Poll"; "wait" ];
    [ "Poll"; "Pset"; "scan_set" ];
    [ "Poll"; "Pset"; "wait_set" ];
    [ "Select"; "scan" ];
    [ "Select"; "select" ];
    [ "Select"; "Sset"; "scan_sset" ];
    [ "Select"; "Sset"; "wait_sset" ];
    [ "Devpoll"; "scan" ];
    [ "Devpoll"; "dp_poll" ];
    [ "Epoll"; "harvest" ];
    [ "Epoll"; "wait" ];
    [ "Rt_signal"; "take" ];
    [ "Rt_signal"; "wait_general" ];
    [ "Rt_signal"; "sigwaitinfo" ];
    [ "Rt_signal"; "sigtimedwait4" ];
    [ "Kernel"; "poll" ];
    [ "Kernel"; "devpoll_wait" ];
    [ "Kernel"; "sigwaitinfo" ];
    [ "Kernel"; "sigtimedwait4" ];
  ]

let is_entry_point (s : Symbol_index.symbol) = List.mem s.qname entry_points

(* Deterministic whole-tree report: one line per symbol in (file,
   line, qname) order. Committed as test/lint_fixtures/
   complexity_report.txt so asymptotic drift shows up in review. *)
let report (index : Symbol_index.t) (r : result) : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "# sio_lint complexity report — host=structural work, charged=simulated CPU\n";
  Buffer.add_string buf
    "# size classes: ready <= active <= interests; conns, slots incomparable\n";
  let syms =
    List.sort
      (fun (a : Symbol_index.symbol) (b : Symbol_index.symbol) ->
        compare (a.file, a.line, a.col, a.qname) (b.file, b.line, b.col, b.qname))
      index.Symbol_index.symbols
  in
  List.iter
    (fun (s : Symbol_index.symbol) ->
      match SMap.find_opt s.uid r.summaries with
      | None -> ()
      | Some sum ->
          Buffer.add_string buf
            (Printf.sprintf "%s:%d: %s: host=%s charged=%s%s\n" s.file s.line
               (dotted s.qname)
               (render_cost_origin sum.host)
               (render_cost_origin sum.charged)
               (match s.annot with
               | Some a -> Printf.sprintf " annot=%S" a
               | None -> "")))
    syms;
  Buffer.contents buf
