(* Cross-module call graph over the symbol index.

   One node per indexed definition (keyed by the symbol's uid, so two
   files that happen to share a module name stay distinct). An edge
   exists when a definition's body mentions an ident that resolves to
   another indexed definition — mention, not proven application: a
   function passed as a value can still be invoked on the far side, so
   mention-as-edge is the conservative choice for reachability.
   Applications whose head does not resolve (a parameter, a stdlib
   call, a lambda) are kept per-node in [unresolved]: the analyses
   never assume anything about what such a call does. *)

module SMap = Map.Make (String)

type node = {
  id : string;  (** symbol uid, "file#Module.name" *)
  name : string;  (** dotted qualified name for display *)
  file : string;
  line : int;
  callees : string list;  (** sorted uids of resolved mentions *)
  unresolved : string list;  (** sorted call heads that resolve to nothing *)
}

type t = { nodes : node list; by_id : node SMap.t }

let build (index : Symbol_index.t) =
  let nodes =
    List.map
      (fun (s : Symbol_index.symbol) ->
        let scope = Symbol_index.scope_of s in
        let callees =
          s.mentions
          |> List.concat_map (fun p -> Symbol_index.resolve_in index ~scope p)
          |> List.map (fun (c : Symbol_index.symbol) -> c.uid)
          |> List.sort_uniq String.compare
        in
        let unresolved =
          (s.app_heads
          |> List.filter (fun p -> Symbol_index.resolve_in index ~scope p = [])
          |> List.map (String.concat "."))
          @ (if s.has_opaque_call then [ "<fun>" ] else [])
          |> List.sort_uniq String.compare
        in
        {
          id = s.uid;
          name = String.concat "." s.qname;
          file = s.file;
          line = s.line;
          callees;
          unresolved;
        })
      index.symbols
  in
  let by_id = List.fold_left (fun m n -> SMap.add n.id n m) SMap.empty nodes in
  { nodes; by_id }

let find t id = SMap.find_opt id t.by_id
let callees t id = match find t id with Some n -> n.callees | None -> []
let display t id = match find t id with Some n -> n.name | None -> id

let to_json t =
  let node_json n =
    let strings l = String.concat "," (List.map (fun s -> "\"" ^ Finding.json_escape s ^ "\"") l) in
    Printf.sprintf
      {|{"id":"%s","name":"%s","file":"%s","line":%d,"callees":[%s],"unresolved":[%s]}|}
      (Finding.json_escape n.id) (Finding.json_escape n.name) (Finding.json_escape n.file)
      n.line (strings n.callees) (strings n.unresolved)
  in
  "{\"nodes\":[\n" ^ String.concat ",\n" (List.map node_json t.nodes) ^ "\n]}"

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\\n%s:%d\"];\n" n.id n.name n.file n.line))
    t.nodes;
  List.iter
    (fun n ->
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" n.id c))
        n.callees)
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
