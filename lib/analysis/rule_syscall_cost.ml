(* cost-accounting: no syscall is free — now proven interprocedurally.

   Every figure in the paper is a CPU-cost story, so every simulated
   syscall entry point must charge the CPU before running its
   continuation — otherwise a future syscall silently costs nothing
   and the cost model drifts. The rule applies to [kernel.ml] (the
   syscall surface): every top-level function whose first parameter is
   named [proc] must either mention a charging primitive ([enter],
   [Host.charge], [Host.charge_run], [Cpu.consume], [Cpu.run]) in its
   own body, or reach one along the resolved call graph — the analysis
   now *proves* the delegation into [Poll.wait]/[Devpoll.*]/
   [Rt_signal.*] that used to be excused with hand-audited
   [@lint.ignore "charged in ..."] annotations. Unresolved calls
   (parameters, higher-order continuations) are never assumed to
   charge, so the proof stays conservative: delete the charge from a
   delegation target and the entry point's finding names the call path
   that stopped charging. *)

open Ppxlib

let id = "syscall-cost"

let doc =
  "every syscall entry point in kernel.ml (first parameter `proc`) must charge \
   the CPU (enter/Host.charge/Cpu.consume) directly or via a resolved callee"

let applies path = String.equal (Filename.basename path) "kernel.ml"

(* Does the binding define a function whose first value parameter is
   a variable named [proc]? That is the syntactic signature of a
   syscall entry point in kernel.ml. *)
let first_param_is_proc e =
  match e.pexp_desc with
  | Pexp_function (params, _, _) ->
      let rec first = function
        | [] -> false
        | { pparam_desc = Pparam_newtype _; _ } :: rest -> first rest
        | { pparam_desc = Pparam_val (_, _, pat); _ } :: _ ->
            let rec var_is_proc p =
              match p.ppat_desc with
              | Ppat_var { txt = "proc"; _ } -> true
              | Ppat_constraint (p', _) -> var_is_proc p'
              | _ -> false
            in
            var_is_proc pat
      in
      first params
  | _ -> false

let check ~ctx ~path str =
  if not (applies path) then []
  else begin
    let m = Symbol_index.module_of_file path in
    let charging = Context.charging ctx in
    let graph = Context.graph ctx in
    let acc = ref [] in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var name
                  when (ctx.Context.audit || not (Rule.has_ignore vb.pvb_attributes))
                       && first_param_is_proc vb.pvb_expr ->
                    let uid = Symbol_index.uid_of ~file:path ~qname:[ m; name.txt ] in
                    if not (Context.SSet.mem uid charging) then begin
                      let delegations =
                        Callgraph.callees graph uid
                        |> List.map (Callgraph.display graph)
                        |> List.sort_uniq String.compare
                      in
                      let checked =
                        match delegations with
                        | [] -> "no resolved callees to delegate to"
                        | ds ->
                            "delegations checked: "
                            ^ String.concat ", "
                                (List.map (fun d -> name.txt ^ " -> " ^ d) ds)
                      in
                      acc :=
                        Finding.make ~loc:vb.pvb_loc ~rule:id
                          (Printf.sprintf
                             "syscall entry point `%s` never charges the CPU on any \
                              resolved call path (%s); add a charge \
                              (enter/Host.charge/Cpu.consume) or delegate to a callee \
                              that charges."
                             name.txt checked)
                        :: !acc
                    end
                | _ -> ())
              vbs
        | _ -> ())
      str;
    List.rev !acc
  end

let warm ctx =
  ignore (Context.charging ctx);
  ignore (Context.graph ctx)

let rule = { Rule.id; doc; check; warm }
