(* cost-accounting: no syscall is free.

   Every figure in the paper is a CPU-cost story, so every simulated
   syscall entry point must charge the CPU before running its
   continuation — otherwise a future syscall silently costs nothing
   and the cost model drifts. The rule applies to [kernel.ml] (the
   syscall surface): every top-level function whose first parameter is
   named [proc] must mention a charging primitive ([enter],
   [Host.charge], [Host.charge_run], [Cpu.consume], [Cpu.run])
   somewhere in its body. Entry points that delegate to a module that
   charges internally carry [@lint.ignore "charged in ..."] so the
   delegation is audited, not invisible. *)

open Ppxlib

let id = "syscall-cost"

let doc =
  "every syscall entry point in kernel.ml (first parameter `proc`) must charge \
   the CPU (enter/Host.charge/Cpu.consume) before invoking its continuation"

let applies path = String.equal (Filename.basename path) "kernel.ml"

let charge_idents =
  [
    [ "enter" ];
    [ "Host"; "charge" ];
    [ "Host"; "charge_run" ];
    [ "Cpu"; "consume" ];
    [ "Cpu"; "run" ];
  ]

let mentions_charge expr =
  let found = ref false in
  let visitor =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } when List.mem (Rule.path_of_lid txt) charge_idents ->
            found := true
        | _ -> ());
        super#expression e
    end
  in
  visitor#expression expr;
  !found

(* Does the binding define a function whose first value parameter is
   a variable named [proc]? That is the syntactic signature of a
   syscall entry point in kernel.ml. *)
let first_param_is_proc e =
  match e.pexp_desc with
  | Pexp_function (params, _, _) ->
      let rec first = function
        | [] -> false
        | { pparam_desc = Pparam_newtype _; _ } :: rest -> first rest
        | { pparam_desc = Pparam_val (_, _, pat); _ } :: _ ->
            let rec var_is_proc p =
              match p.ppat_desc with
              | Ppat_var { txt = "proc"; _ } -> true
              | Ppat_constraint (p', _) -> var_is_proc p'
              | _ -> false
            in
            var_is_proc pat
      in
      first params
  | _ -> false

let check ~path str =
  if not (applies path) then []
  else
    let acc = ref [] in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var name
                  when (not (Rule.has_ignore vb.pvb_attributes))
                       && first_param_is_proc vb.pvb_expr
                       && not (mentions_charge vb.pvb_expr) ->
                    acc :=
                      Finding.make ~loc:vb.pvb_loc ~rule:id
                        (Printf.sprintf
                           "syscall entry point `%s` never charges the CPU; add a \
                            charge (enter/Host.charge/Cpu.consume) or annotate \
                            [@lint.ignore \"charged in <callee>\"]."
                           name.txt)
                      :: !acc
                | _ -> ())
              vbs
        | _ -> ())
      str;
    List.rev !acc

let rule = { Rule.id; doc; check }
