(* determinism: Hashtbl element order must not escape.

   [Hashtbl.iter]/[Hashtbl.fold] enumerate buckets, so their element
   order is a function of the table's entire insertion/resize history.
   Letting that order drive dispatch, closes, or handoffs couples
   simulation-visible behaviour to incidental history — exactly the
   hazard that broke byte-identity between runs that merely accepted
   connections in a different order. A site is safe when the
   enumerated result is sorted before anything can observe it, or when
   every element is poured straight into an [Fd_map] — the ordered
   container canonicalizes away the enumeration order, so nothing
   downstream can see it. We approximate both syntactically: the call
   must appear inside an application of a sort function, or its
   callback body must be exactly one [Fd_map.set] application, or it
   must carry [@lint.ignore "reason"]. *)

open Ppxlib

let id = "hashtbl-order"

let doc =
  "Hashtbl.iter/fold order depends on insertion history; sort the result \
   immediately (List.sort (Hashtbl.fold ...)), rebuild into an ordered \
   Fd_map, or annotate [@lint.ignore]"

let sort_fns =
  [
    [ "List"; "sort" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ];
    [ "Array"; "sort" ];
  ]

let is_sort_head e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> List.mem (Rule.path_of_lid txt) sort_fns
  | _ -> false

(* Does the path name [Fd_map.set], under any module prefix
   ([Fd_map.set], [Sio_sim.Fd_map.set], ...)? *)
let is_fd_map_set_path p =
  match List.rev p with "set" :: "Fd_map" :: _ -> true | _ -> false

(* A callback that pours each element straight into an Fd_map: after
   peeling the parameters, the body is exactly one [Fd_map.set]
   application. A sequence ([Fd_map.set ...; log fd]) does not
   qualify — the extra code can still observe the order. *)
let is_fd_map_rebuild_callback e =
  let rec body e =
    match e.pexp_desc with
    | Pexp_function (_, _, Pfunction_body b) -> body b
    | _ -> e
  in
  match (body e).pexp_desc with
  | Pexp_apply (fn, _) -> (
      match fn.pexp_desc with
      | Pexp_ident { txt; _ } -> is_fd_map_set_path (Rule.path_of_lid txt)
      | _ -> false)
  | _ -> false

(* A node that establishes "the enumeration order cannot escape":
   a direct sort application, a [|>] / [@@] pipe where one side is a
   (possibly partial) sort application, or a Hashtbl.iter/fold whose
   callback rebuilds into an ordered Fd_map. *)
let is_sort_context e =
  match e.pexp_desc with
  | Pexp_apply (fn, args) ->
      is_sort_head fn
      || (match fn.pexp_desc with
         | Pexp_ident { txt = Lident ("|>" | "@@"); _ } ->
             List.exists
               (fun (_, arg) ->
                 is_sort_head arg
                 ||
                 match arg.pexp_desc with
                 | Pexp_apply (f, _) -> is_sort_head f
                 | _ -> false)
               args
         | _ -> false)
      || (match fn.pexp_desc with
         | Pexp_ident { txt; _ } -> (
             match Rule.path_of_lid txt with
             | [ "Hashtbl"; ("iter" | "fold") ] ->
                 List.exists (fun (_, arg) -> is_fd_map_rebuild_callback arg) args
             | _ -> false)
         | _ -> false)
  | _ -> false

let check ~ctx:_ ~path:_ str =
  let acc = ref [] in
  let visitor =
    object
      inherit Rule.scoped_checker as super_scoped
      val mutable sort_depth = 0

      method! expression e =
        let srt = is_sort_context e in
        if srt then sort_depth <- sort_depth + 1;
        super_scoped#expression e;
        if srt then sort_depth <- sort_depth - 1

      method enter_expression e =
        if sort_depth = 0 then
          match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match Rule.path_of_lid txt with
              | [ "Hashtbl"; (("iter" | "fold") as f) ] ->
                  acc :=
                    Finding.make ~loc:e.pexp_loc ~rule:id
                      (Printf.sprintf
                         "Hashtbl.%s element order can escape into \
                          simulation-visible behaviour; sort the result \
                          immediately, rebuild into an ordered Fd_map, or \
                          annotate [@lint.ignore \"reason\"]."
                         f)
                    :: !acc
              | _ -> ())
          | _ -> ()
    end
  in
  visitor#structure str;
  List.rev !acc

let rule = { Rule.id; doc; check; warm = Rule.warm_nothing }
