(* Rule plumbing shared by every check: the rule record itself, the
   [@lint.ignore "reason"] escape hatch, longident helpers, and a
   traversal class that tracks whether the current node sits under an
   ignore annotation. Every rule receives the whole-program [Context]
   so per-file checks and interprocedural proofs share one signature. *)

open Ppxlib

type t = {
  id : string;  (** stable rule id, used by [--rule] and in reports *)
  doc : string;  (** one-line description for [--list-rules] *)
  check : ctx:Context.t -> path:string -> structure -> Finding.t list;
  warm : Context.t -> unit;
      (** force every shared fixpoint/cache this rule's [check] reads,
          so parallel per-file passes only ever read settled state.
          [warm_nothing] for purely syntactic rules. *)
}

let warm_nothing (_ : Context.t) = ()

(* The escape hatch. An attribute named [lint.ignore] on an
   expression or on a let-binding suppresses every rule for the whole
   subtree it annotates. A reason string is expected by convention:
   [@lint.ignore "why this is safe"]. The stale-ignore rule audits the
   other direction: a suppression masking nothing is itself a finding. *)
let ignore_name = Symbol_index.ignore_name
let has_ignore = Symbol_index.has_ignore
let path_of_lid = Symbol_index.path_of_lid
let lid_string = Symbol_index.lid_string

(* AST iterator that maintains an ignore depth: [suppressed] is true
   whenever an enclosing expression or value binding carries
   [@lint.ignore]. Subclasses implement [enter_expression], called on
   every expression before its children are visited. *)
class virtual scoped_checker =
  object (self)
    inherit Ast_traverse.iter as super
    val mutable ignore_depth = 0
    method suppressed = ignore_depth > 0
    method virtual enter_expression : expression -> unit

    method! expression e =
      let ign = has_ignore e.pexp_attributes in
      if ign then ignore_depth <- ignore_depth + 1;
      if not self#suppressed then self#enter_expression e;
      super#expression e;
      if ign then ignore_depth <- ignore_depth - 1

    method! value_binding vb =
      let ign = has_ignore vb.pvb_attributes in
      if ign then ignore_depth <- ignore_depth + 1;
      super#value_binding vb;
      if ign then ignore_depth <- ignore_depth - 1
  end
