(* Parse .ml files with ppxlib's parser and run the rule set over
   them. Findings are sorted (file, line, col, rule) so output is
   stable no matter how the filesystem enumerates directories. *)

let all_rules =
  [
    Rule_clock.rule;
    Rule_hashtbl_order.rule;
    Rule_domain_state.rule;
    Rule_syscall_cost.rule;
  ]

let find_rule id = List.find_opt (fun r -> String.equal r.Rule.id id) all_rules

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Ppxlib.Parse.implementation lexbuf)

let analyze_file ?(rules = all_rules) path =
  match parse_impl path with
  | str ->
      List.concat_map (fun r -> r.Rule.check ~path str) rules
      |> List.sort Finding.compare
  | exception e ->
      (* A file the linter cannot parse is itself a finding: the tree
         must stay analyzable. *)
      [
        {
          Finding.file = path;
          line = 1;
          col = 0;
          rule = "parse-error";
          message = Printexc.to_string e;
        };
      ]

(* All .ml files under [root], depth-first, in sorted order. Build
   artifacts and VCS metadata are skipped. *)
let rec ml_files acc path =
  if Sys.is_directory path then begin
    let base = Filename.basename path in
    if String.equal base "_build" || String.equal base ".git" then acc
    else
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.fold_left (fun acc name -> ml_files acc (Filename.concat path name)) acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let analyze_paths ?rules paths =
  paths
  |> List.concat_map (fun p -> List.rev (ml_files [] p))
  |> List.concat_map (fun file -> analyze_file ?rules file)
  |> List.sort Finding.compare
