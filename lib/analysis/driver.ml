(* Parse .ml files with ppxlib's parser, build the whole-program
   context (symbol index + call graph + reachability fixpoints) once,
   and run the rule set over every file against it. Findings are
   sorted (file, line, col, rule) so output is stable no matter how
   the filesystem enumerates directories.

   Parallelism ([?jobs]) is deterministic by construction: parsing is
   a per-file map (reads overlap; the lex+parse is mutex-serialized,
   see [parse_mutex]) whose results are merged in path order, and
   before rule passes fan out, every selected rule's [warm] hook
   forces the shared fixpoints it reads — workers then only read
   settled state, and the final sort makes the output byte-identical
   to a sequential run. *)

let base_rules =
  [
    Rule_clock.rule;
    Rule_hashtbl_order.rule;
    Rule_domain_state.rule;
    Rule_syscall_cost.rule;
    Rule_arena_slot.rule;
    Rule_nondet_taint.rule;
    Rule_resource_pairing.rule;
    Rule_scan_complexity.rule;
    Rule_charge_linearity.rule;
  ]

(* stale-ignore shadow-runs the other rules with suppressions
   stripped, so it is parameterised by them rather than registered
   among them. *)
let all_rules = base_rules @ [ Rule_stale_ignore.make ~others:base_rules ]

let find_rule id = List.find_opt (fun r -> String.equal r.Rule.id id) all_rules

(* ppxlib's vendored compiler-libs lexer keeps global mutable state
   (comment/string buffers), so two domains lexing at once corrupt
   each other — only the file reads overlap across the pool; the
   parse itself is serialized. *)
let parse_mutex = Mutex.create ()

let parse_impl path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Mutex.protect parse_mutex (fun () ->
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf path;
      Ppxlib.Parse.implementation lexbuf)

let parse_error_finding path e =
  {
    Finding.file = path;
    line = 1;
    col = 0;
    rule = "parse-error";
    message = Printexc.to_string e;
    flow = [];
  }

(* All .ml files under [root], depth-first, in sorted order. Build
   artifacts and VCS metadata are skipped. *)
let rec ml_files acc path =
  if Sys.is_directory path then begin
    let base = Filename.basename path in
    if String.equal base "_build" || String.equal base ".git" then acc
    else
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.fold_left (fun acc name -> ml_files acc (Filename.concat path name)) acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* Light path normalization so the same tree reached through different
   root spellings ("lib/", "./lib") produces one canonical file name,
   and overlapping roots ("lib lib/kernel") cannot make a file appear
   twice in the analysis (which double-reported every finding in it
   and double-counted its symbols). *)
let normalize_root p =
  let p =
    let rec drop_dot p =
      if String.length p > 2 && String.equal (String.sub p 0 2) "./" then
        drop_dot (String.sub p 2 (String.length p - 2))
      else p
    in
    drop_dot p
  in
  let rec drop_slash p =
    if String.length p > 1 && p.[String.length p - 1] = '/' then
      drop_slash (String.sub p 0 (String.length p - 1))
    else p
  in
  drop_slash p

let files_under paths =
  paths
  |> List.map normalize_root
  |> List.concat_map (fun p -> List.rev (ml_files [] p))
  |> List.sort_uniq String.compare

type loaded = { parsed : (string * Ppxlib.structure) list; errors : Finding.t list }

(* [jobs]: 1 = sequential; 0 = one domain per core minus one (the
   [Domain_pool] default); n > 1 = exactly n domains. *)
let effective_jobs = function
  | Some 1 | None -> 1
  | Some 0 -> Sio_sim.Domain_pool.default_size ()
  | Some n -> n

let pooled ~jobs ~f xs =
  Sio_sim.Domain_pool.with_pool ~size:jobs (fun pool ->
      Sio_sim.Domain_pool.map pool ~f xs)

(* A file the linter cannot parse is itself a finding: the tree must
   stay analyzable. Unparsable files are excluded from the context.
   Parse results are [Result]-wrapped inside the pool so an exception
   becomes the same finding text a sequential run produces instead of
   tearing down the whole map. *)
let load ?jobs paths =
  let files = files_under paths in
  let jobs = effective_jobs jobs in
  let results =
    if jobs <= 1 || List.length files < 2 then
      List.map (fun file -> (file, try Ok (parse_impl file) with e -> Error e)) files
    else
      pooled ~jobs
        ~f:(fun file -> (file, try Ok (parse_impl file) with e -> Error e))
        files
  in
  let parsed, errors =
    List.fold_left
      (fun (ok, errs) (file, r) ->
        match r with
        | Ok str -> ((file, str) :: ok, errs)
        | Error e -> (ok, parse_error_finding file e :: errs))
      ([], []) results
  in
  { parsed = List.rev parsed; errors = List.rev errors }

let run_rules rules ctx (file, str) =
  List.concat_map (fun r -> r.Rule.check ~ctx ~path:file str) rules

let analyze_loaded ?(rules = all_rules) ?jobs { parsed; errors } =
  let ctx = Context.build parsed in
  let jobs = effective_jobs jobs in
  let per_file =
    if jobs <= 1 || List.length parsed < 2 then
      List.concat_map (run_rules rules ctx) parsed
    else begin
      (* settle every shared fixpoint the selected rules read before
         fanning out; the workers then only read *)
      List.iter (fun r -> r.Rule.warm ctx) rules;
      pooled ~jobs ~f:(run_rules rules ctx) parsed |> List.concat
    end
  in
  errors @ per_file |> List.sort Finding.compare

let analyze_paths ?rules ?jobs paths = analyze_loaded ?rules ?jobs (load ?jobs paths)

(* Single-file analysis: the context contains just this file, so the
   interprocedural rules stay conservative about everything outside
   it. Used by the fixture goldens; [analyze_paths] is the real
   entry. *)
let analyze_file ?(rules = all_rules) path =
  match parse_impl path with
  | str ->
      let ctx = Context.of_file path str in
      run_rules rules ctx (path, str) |> List.sort Finding.compare
  | exception e -> [ parse_error_finding path e ]

(* The committed whole-tree complexity report over [paths]. *)
let complexity_report ?jobs paths =
  let { parsed; errors = _ } = load ?jobs paths in
  let ctx = Context.build parsed in
  Complexity.report (Context.index ctx) (Context.complexity ctx)
