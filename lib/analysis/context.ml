(* Shared whole-program analysis state, built once per lint run and
   threaded to every rule.

   Two fixpoints live here because more than one rule (and the
   stale-ignore shadow runs) query them:

   - [charging]: the set of definitions from which a CPU-charging
     primitive is reachable along resolved call edges. Seeds are the
     definitions whose bodies mention a primitive directly; the closure
     walks caller-ward. Unresolved calls contribute nothing — a
     higher-order callee is never assumed to charge.

   - [domain_witness] / [domain_writes]: the definitions reachable from
     a Domain_pool task root (a definition whose body mentions a
     spawning primitive — the task closures live inside those bodies,
     so the whole body over-approximates worker-context), each tagged
     with the root that reaches it, plus every mutation those
     definitions perform on module-level mutable state.

   [audit] flips a run into suppression-audit mode: rules report the
   findings an [@lint.ignore] would have masked, which is how
   stale-ignore decides whether a suppression still earns its keep. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

let charge_primitives =
  [
    [ "enter" ];
    [ "Host"; "charge" ];
    [ "Host"; "charge_run" ];
    [ "Cpu"; "consume" ];
    [ "Cpu"; "run" ];
  ]

let spawn_primitives =
  [
    [ "Domain_pool"; "submit" ];
    [ "Domain_pool"; "map" ];
    [ "Sweep"; "run" ];
    [ "Figures"; "run" ];
    (* Shard-cluster task roots: a cluster run (and the figure drivers
       fanning out over shard counts) puts per-shard simulations on
       pool domains, so everything reachable from these bodies is
       worker-context. *)
    [ "Cluster"; "run" ];
    [ "Figures"; "run_shard_scaling" ];
    [ "Figures"; "run_shard_ablation" ];
  ]

(* A single-segment primitive must match exactly (a bare [enter]);
   qualified primitives match any mention they are a suffix of, so
   [Sio_kernel.Host.charge] still counts as [Host.charge]. *)
let mention_matches prims p =
  let rec prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: xs, y :: ys -> String.equal x y && prefix xs ys
    | _ :: _, [] -> false
  in
  List.exists
    (fun prim ->
      match prim with
      | [ single ] -> ( match p with [ x ] -> String.equal x single | _ -> false)
      | _ -> prefix (List.rev prim) (List.rev p))
    prims

(* One mutation of a module-level mutable binding, performed inside
   domain-task-reachable code. *)
type evidence = {
  writer : string;  (** dotted qname of the writing definition *)
  writer_file : string;
  wline : int;
  wcol : int;
  op : string;
  root : string;  (** uid of the task root that reaches the writer *)
}

type t = {
  files : (string * Ppxlib.structure) list;
      (** the parsed inputs the index was built from; audit-mode rules
          substitute a stripped file and re-derive their state *)
  index : Symbol_index.t Lazy.t;
      (** lazy so AST-only rules ([--rule nondet-clock] on one file)
          never pay for whole-program indexing *)
  graph : Callgraph.t Lazy.t;
  complexity : Complexity.result Lazy.t;
  audit : bool;
  charging : SSet.t Lazy.t;
  domain_witness : string SMap.t Lazy.t;
  domain_writes : evidence list SMap.t Lazy.t;  (** binding uid -> writes *)
}

let build files =
  let index = lazy (Symbol_index.build files) in
  let graph = lazy (Callgraph.build (Lazy.force index)) in
  let complexity =
    lazy (Complexity.analyze ~graph:(Lazy.force graph) (Lazy.force index))
  in
  let charging =
    lazy
      (let g = Lazy.force graph in
       let seeds =
         List.filter_map
           (fun (s : Symbol_index.symbol) ->
             if List.exists (mention_matches charge_primitives) s.mentions then Some s.uid
             else None)
           (Lazy.force index).symbols
       in
       let rec grow set =
         let set' =
           List.fold_left
             (fun acc (n : Callgraph.node) ->
               if SSet.mem n.id acc then acc
               else if List.exists (fun c -> SSet.mem c acc) n.callees then
                 SSet.add n.id acc
               else acc)
             set g.Callgraph.nodes
         in
         if SSet.cardinal set' = SSet.cardinal set then set else grow set'
       in
       grow (SSet.of_list seeds))
  in
  let domain_witness =
    lazy
      (let g = Lazy.force graph in
       let roots =
         List.filter_map
           (fun (s : Symbol_index.symbol) ->
             if List.exists (mention_matches spawn_primitives) s.mentions then Some s.uid
             else None)
           (Lazy.force index).symbols
       in
       Reachability.closure ~succ:(Callgraph.callees g) ~roots)
  in
  let domain_writes =
    lazy
      (let wit = Lazy.force domain_witness in
       let add m (s : Symbol_index.symbol) =
         match SMap.find_opt s.uid wit with
         | None -> m
         | Some root ->
             let scope = Symbol_index.scope_of s in
             List.fold_left
               (fun m (w : Symbol_index.write) ->
                 Symbol_index.resolve_in (Lazy.force index) ~scope w.target
                 |> List.filter (fun (b : Symbol_index.symbol) -> b.mutable_ctor <> None)
                 |> List.fold_left
                      (fun m (b : Symbol_index.symbol) ->
                        let e =
                          {
                            writer = String.concat "." s.qname;
                            writer_file = s.file;
                            wline = w.wline;
                            wcol = w.wcol;
                            op = w.op;
                            root;
                          }
                        in
                        SMap.update b.uid
                          (function None -> Some [ e ] | Some l -> Some (e :: l))
                          m)
                      m)
               m s.writes
       in
       List.fold_left add SMap.empty (Lazy.force index).symbols
       |> SMap.map
            (List.sort (fun a b ->
                 compare
                   (a.writer_file, a.wline, a.wcol, a.op)
                   (b.writer_file, b.wline, b.wcol, b.op))))
  in
  { files; index; graph; complexity; audit = false; charging; domain_witness; domain_writes }

let of_file path str = build [ (path, str) ]
let with_audit t = { t with audit = true }
let index t = Lazy.force t.index
let graph t = Lazy.force t.graph
let complexity t = Lazy.force t.complexity
let charging t = Lazy.force t.charging
let domain_witness t = Lazy.force t.domain_witness
let domain_writes t = Lazy.force t.domain_writes

(* Human name for a uid in report messages: the dotted qname. *)
let display t uid = Callgraph.display (graph t) uid
