type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let default_size () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec take () =
    match Queue.take_opt pool.tasks with
    | Some task -> Some task
    | None ->
        if pool.stopping then None
        else begin
          Condition.wait pool.work_available pool.mutex;
          take ()
        end
  in
  let task = take () in
  Mutex.unlock pool.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop pool

let create ?size () =
  let size = match size with None -> default_size () | Some n -> n in
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      tasks = Queue.create ();
      stopping = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = Array.length pool.workers

let map pool ~f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let first_error = ref None in
    let remaining = ref n in
    let all_done = Condition.create () in
    Mutex.lock pool.mutex;
    if pool.stopping then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Domain_pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add
        (fun () ->
          (match f items.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              Mutex.lock pool.mutex;
              (match !first_error with
              | Some (j, _, _) when j < i -> ()
              | _ -> first_error := Some (i, e, bt));
              Mutex.unlock pool.mutex);
          Mutex.lock pool.mutex;
          decr remaining;
          if !remaining = 0 then Condition.broadcast all_done;
          Mutex.unlock pool.mutex)
        pool.tasks
    done;
    Condition.broadcast pool.work_available;
    while !remaining > 0 do
      Condition.wait all_done pool.mutex
    done;
    Mutex.unlock pool.mutex;
    match !first_error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false (* no error => all set *))
             results)
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.stopping <- true;
  pool.workers <- [||];
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join workers

let with_pool ?size f =
  let pool = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
