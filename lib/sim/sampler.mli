(** Per-interval time series.

    httperf-style measurements need the reply *rate* sampled over fixed
    wall-clock intervals (the paper's min/max/error-bar data comes from
    five-second samples). A sampler counts occurrences and, when asked
    for results, closes out every interval from the first event to the
    supplied end time — including empty intervals, which is exactly
    where an overloaded server shows minima of zero. *)

type t

val create : interval:Time.t -> t
(** Raises [Invalid_argument] if [interval <= 0]. *)

val record : t -> now:Time.t -> unit
(** Counts one occurrence at time [now]. Events must arrive in
    non-decreasing time order. *)

val record_n : t -> now:Time.t -> int -> unit

val rates : t -> until:Time.t -> float list
(** [rates t ~until] is the per-second rate of each complete interval
    between the sampler's start and [until], in time order, including
    zero intervals. Empty if nothing was ever recorded. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds [src]'s per-interval counts into
    [into], aligning buckets by absolute time (the merged origin is
    the earlier of the two). When the origins are not phase-aligned,
    a source bucket lands on the interval its start time falls in —
    at most one bucket early, never dropped. Raises
    [Invalid_argument] if the intervals differ. [src] is unchanged. *)

val interval : t -> Time.t
