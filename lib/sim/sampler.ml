type t = {
  interval : Time.t;
  mutable started : bool;
  mutable origin : Time.t; (* start of interval 0 *)
  mutable counts : int array; (* per-interval counters *)
  mutable last_index : int;
}

let create ~interval =
  if interval <= 0 then invalid_arg "Sampler.create: non-positive interval";
  { interval; started = false; origin = 0; counts = Array.make 64 0; last_index = -1 }

let ensure t i =
  let n = Array.length t.counts in
  if i >= n then begin
    let counts = Array.make (Stdlib.max (i + 1) (2 * n)) 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let record_n t ~now n =
  if not t.started then begin
    t.started <- true;
    t.origin <- now
  end;
  let i = Time.sub now t.origin / t.interval in
  let i = Stdlib.max i t.last_index in
  ensure t i;
  t.counts.(i) <- t.counts.(i) + n;
  t.last_index <- i

let record t ~now = record_n t ~now 1

(* Rebase so interval 0 starts at [origin'] (<= t.origin): existing
   counts slide right by the whole-interval distance. A sub-interval
   remainder is absorbed into the shift's floor — merged counts can
   land one bucket early, never be lost. *)
let rebase t origin' =
  if t.started && origin' < t.origin then begin
    let shift = Time.sub t.origin origin' / t.interval in
    if shift > 0 && t.last_index >= 0 then begin
      ensure t (t.last_index + shift);
      for i = t.last_index downto 0 do
        t.counts.(i + shift) <- t.counts.(i);
        t.counts.(i) <- 0
      done;
      t.last_index <- t.last_index + shift
    end;
    t.origin <- origin'
  end

let merge_into ~into src =
  if into.interval <> src.interval then
    invalid_arg "Sampler.merge_into: interval mismatch";
  if src.started then begin
    if not into.started then begin
      into.started <- true;
      into.origin <- src.origin
    end
    else rebase into (Stdlib.min into.origin src.origin);
    let shift = Time.sub src.origin into.origin / src.interval in
    if src.last_index >= 0 then begin
      ensure into (src.last_index + shift);
      for i = 0 to src.last_index do
        into.counts.(i + shift) <- into.counts.(i + shift) + src.counts.(i)
      done;
      into.last_index <- Stdlib.max into.last_index (src.last_index + shift)
    end
  end

let rates t ~until =
  if not t.started then []
  else begin
    (* [until] can precede the first recorded sample (origin) when a
       measurement window closes before the first slow reply lands —
       e.g. a multi-second first response; there are then no complete
       intervals, not a negative number of them. *)
    let span = Stdlib.max 0 (Time.sub until t.origin) in
    let complete = span / t.interval in
    let scale = 1e9 /. float_of_int t.interval in
    let n = Stdlib.min complete (t.last_index + 1) in
    let n = Stdlib.max n 0 in
    List.init complete (fun i ->
        if i < n && i < Array.length t.counts then float_of_int t.counts.(i) *. scale
        else 0.)
  end

let interval t = t.interval
