(** Deterministic ordered map over small non-negative integer keys.

    The container behind every fd-keyed hot path (event-loop watch
    tables, server connection tables, descriptor tables). Layout is an
    int-radix direct map: a value slot per possible key plus an
    occupancy bitmap, so [find]/[set]/[remove] are O(1) and iteration
    walks keys in ascending order by skipping empty 32-key words —
    amortized O(1) per live entry at the densities fd allocation
    produces, with no per-call snapshot, sort, or allocation.

    Iteration order is intrinsic (ascending key), never a function of
    insertion or resize history: two maps holding the same bindings
    iterate identically regardless of how they got there. This is what
    lets dispatch, sweep, and handoff order escape into
    simulation-visible behaviour without a defensive
    [List.sort (Hashtbl.fold ...)] snapshot per call.

    Cursors are mutation-safe by construction. During [iter]/[fold]:
    removing the current key or any not-yet-visited key is allowed
    (a removed key is simply not visited); adding a key larger than
    the cursor is allowed and the new key {e is} visited, even when
    the addition grows the backing store; adding a key at or below the
    cursor takes effect but is not visited this pass. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t
(** [create ()] is an empty map. [initial_capacity] (default 64)
    pre-sizes the slot array for the largest key expected; the map
    grows transparently past it. *)

val length : 'a t -> int
(** Number of bindings, O(1). *)

val is_empty : 'a t -> bool

val mem : 'a t -> int -> bool
(** O(1). [mem m k] is [false] for negative [k]. *)

val find : 'a t -> int -> 'a option
(** O(1). [None] for absent or negative keys. *)

val set : 'a t -> int -> 'a -> unit
(** [set m k v] binds [k] to [v], replacing any previous binding.
    O(1) amortized (growth doubles the slot array). Raises
    [Invalid_argument] if [k < 0]. *)

val remove : 'a t -> int -> bool
(** [remove m k] deletes the binding for [k]; [true] iff one existed.
    O(1); never shrinks the backing store. *)

val clear : 'a t -> unit
(** Remove every binding, keeping the backing store for reuse. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** [iter m f] applies [f] to every binding in ascending key order.
    Safe under the mutations documented above. *)

val fold : 'a t -> init:'acc -> f:('acc -> int -> 'a -> 'acc) -> 'acc
(** Ascending-key fold. Same mutation-safety as {!iter}. *)

val to_list : 'a t -> (int * 'a) list
(** Bindings in ascending key order (freshly allocated; used by
    snapshot-then-clear call sites and tests). *)

val min_key : 'a t -> int option
(** Smallest bound key, O(capacity/32) worst case. *)

val max_key : 'a t -> int option
(** Largest bound key. *)
