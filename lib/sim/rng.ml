type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let derive ~seed i =
  (* The i-th element of the SplitMix64 stream rooted at [seed]:
     distinct [i] values give distinct (pre-truncation) outputs, so
     derived seeds do not collide the way [seed + i] arithmetic can.
     Shifted into 62 bits to stay a non-negative OCaml int. *)
  let state = Int64.add (Int64.of_int seed) (Int64.mul golden_gamma (Int64.of_int i)) in
  Int64.to_int (Int64.shift_right_logical (mix state) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit
     int; modulo bias is negligible for the bounds used in this
     project (all far below 2^32). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits -> [0,1) *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  scale /. (u ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
