(** Deterministic pseudo-random numbers.

    SplitMix64: fast, high quality for simulation purposes, and easy
    to reproduce from a single 64-bit seed. Every experiment in this
    repository threads an explicit [Rng.t]; nothing draws from global
    state, so a run is a pure function of its seed. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Two generators with the same
    seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing
    [t]. Used to give each subsystem its own stream so that adding
    draws in one subsystem does not perturb another. *)

val derive : seed:int -> int -> int
(** [derive ~seed i] mixes [seed] and the salt [i] into a fresh seed
    (the [i]-th output of the SplitMix64 stream rooted at [seed]).
    Unlike [seed + i], nearby salts give unrelated seeds and distinct
    salts never collide; sweeps use it to give every point its own
    seed without splitting a live generator. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for
    inter-arrival jitter. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto draw (heavy tail); used for modem-latency modelling. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
