type 'a t = {
  leq : 'a -> 'a -> bool;
  initial_capacity : int;
  mutable data : 'a option array; (* physical storage; [size] live slots *)
  mutable size : int;
}
(* Slots at indices >= size are always [None]: [pop] and [clear] erase
   vacated slots so the heap never pins popped elements (Event_queue
   stores action closures here — a stale reference keeps everything the
   closure captured alive until the slot happens to be overwritten). *)

let create ?(initial_capacity = 16) ~leq () =
  let initial_capacity = Stdlib.max 1 initial_capacity in
  { leq; initial_capacity; data = Array.make initial_capacity None; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let get h i = match h.data.(i) with Some x -> x | None -> assert false

let ensure_room h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let data = Array.make (Stdlib.max h.initial_capacity (2 * cap)) None in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

(* Standard sift-up: the freshly pushed element climbs while it
   strictly precedes its parent. *)
let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if not (h.leq (get h parent) (get h i)) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  ensure_room h;
  h.data.(h.size) <- Some x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else h.data.(0)

(* Sift-down after the last element replaces the root: descend toward
   the smaller child until heap order is restored. *)
let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    let smallest = if l < h.size && not (h.leq (get h i) (get h l)) then l else i in
    if r < h.size && not (h.leq (get h smallest) (get h r)) then r else smallest
  in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 1 then sift_down h 0;
    top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0

let to_list h = List.init h.size (get h)
