(* Int-radix direct map: one value slot per possible key plus an
   occupancy bitmap at 32 keys per word. Iteration skips empty words,
   then consults the live slot array bit by bit — reading [data]
   rather than a cached bitmap word is what makes cursors survive
   mutation mid-sweep (a removed key reads [None], an added key reads
   [Some _], both fresh). *)

type 'a t = {
  mutable present : int array; (* occupancy bitmap, 32 keys per word *)
  mutable data : 'a option array; (* slot per key; [None] = absent *)
  mutable count : int;
}

let bits_per_word = 32
let word_of k = k lsr 5
let bit_of k = k land 31

let words_for capacity = (capacity + bits_per_word - 1) / bits_per_word

let create ?(initial_capacity = 64) () =
  let capacity = Stdlib.max 1 initial_capacity in
  {
    present = Array.make (words_for capacity) 0;
    data = Array.make capacity None;
    count = 0;
  }

let length t = t.count
let is_empty t = t.count = 0

let grow t k =
  let cap = ref (Stdlib.max 1 (Array.length t.data)) in
  while !cap <= k do
    cap := 2 * !cap
  done;
  let data = Array.make !cap None in
  Array.blit t.data 0 data 0 (Array.length t.data);
  let present = Array.make (words_for !cap) 0 in
  Array.blit t.present 0 present 0 (Array.length t.present);
  t.data <- data;
  t.present <- present

let mem t k = k >= 0 && k < Array.length t.data && t.data.(k) <> None

let find t k = if k < 0 || k >= Array.length t.data then None else t.data.(k)

let set t k v =
  if k < 0 then invalid_arg "Fd_map.set: negative key";
  if k >= Array.length t.data then grow t k;
  if t.data.(k) = None then begin
    t.count <- t.count + 1;
    let w = word_of k in
    t.present.(w) <- t.present.(w) lor (1 lsl bit_of k)
  end;
  t.data.(k) <- Some v

let remove t k =
  if k < 0 || k >= Array.length t.data || t.data.(k) = None then false
  else begin
    t.data.(k) <- None;
    let w = word_of k in
    t.present.(w) <- t.present.(w) land lnot (1 lsl bit_of k);
    t.count <- t.count - 1;
    true
  end

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  Array.fill t.present 0 (Array.length t.present) 0;
  t.count <- 0

(* The loop bounds re-read [t.present] through [t] on every step, so a
   mid-iteration [set] that grows the backing store swaps in the new
   arrays transparently and keys added past the cursor are reached. *)
let iter t f =
  let w = ref 0 in
  while !w < Array.length t.present do
    if t.present.(!w) <> 0 then begin
      let base = !w * bits_per_word in
      for b = 0 to bits_per_word - 1 do
        (* [data] can be shorter than the bitmap's 32-key granularity
           (capacities under 32), and can grow mid-loop — re-check the
           live length for every slot. *)
        let k = base + b in
        if k < Array.length t.data then
          match t.data.(k) with Some v -> f k v | None -> ()
      done
    end;
    incr w
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let min_key t =
  let found = ref None in
  (try
     iter t (fun k _ ->
         found := Some k;
         raise Exit)
   with Exit -> ());
  !found

let max_key t = fold t ~init:None ~f:(fun _ k _ -> Some k)
