type entry = { time : Time.t; seq : int; slot : int; gen : int; action : unit -> unit }

type handle = int

(* A handle packs the slot index and the slot's generation stamp at
   scheduling time. Slots are reused through a free list; every
   free bumps the generation, so handles to fired or cancelled events
   go stale in O(1) without any hashing or per-event allocation. *)
let gen_bits = 31
let gen_mask = (1 lsl gen_bits) - 1

(* Per-slot cell: [(gen lsl 2) lor state]; state 0 is free. *)
let state_pending = 1
let state_cancelled = 2

type t = {
  heap : entry Heap.t;
  mutable cells : int array; (* slot -> (gen lsl 2) lor state *)
  mutable free : int array; (* stack of reusable slot indices *)
  mutable free_len : int;
  mutable high_water : int; (* slots ever handed out *)
  mutable next_seq : int;
  mutable live : int;
}

let create ?(initial_capacity = 16) () =
  let initial_capacity = Stdlib.max 1 initial_capacity in
  {
    heap =
      Heap.create ~initial_capacity
        ~leq:(fun a b -> a.time < b.time || (a.time = b.time && a.seq <= b.seq))
        ();
    cells = Array.make initial_capacity 0;
    free = Array.make initial_capacity 0;
    free_len = 0;
    high_water = 0;
    next_seq = 0;
    live = 0;
  }

let alloc_slot q =
  if q.free_len > 0 then begin
    q.free_len <- q.free_len - 1;
    q.free.(q.free_len)
  end
  else begin
    let slot = q.high_water in
    let cap = Array.length q.cells in
    if slot = cap then begin
      let cells = Array.make (2 * cap) 0 in
      Array.blit q.cells 0 cells 0 cap;
      q.cells <- cells
    end;
    q.high_water <- slot + 1;
    slot
  end

(* The popped or discarded entry owned its slot: advance the
   generation (staling every outstanding handle to it) and recycle. *)
let free_slot q slot =
  let gen' = ((q.cells.(slot) lsr 2) + 1) land gen_mask in
  q.cells.(slot) <- gen' lsl 2;
  let cap = Array.length q.free in
  if q.free_len = cap then begin
    let free = Array.make (2 * cap) 0 in
    Array.blit q.free 0 free 0 cap;
    q.free <- free
  end;
  q.free.(q.free_len) <- slot;
  q.free_len <- q.free_len + 1

let schedule q ~at action =
  if Time.is_negative at then invalid_arg "Event_queue.schedule: negative time";
  let slot = alloc_slot q in
  let gen = q.cells.(slot) lsr 2 in
  q.cells.(slot) <- (gen lsl 2) lor state_pending;
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  Heap.push q.heap { time = at; seq; slot; gen; action };
  q.live <- q.live + 1;
  (slot lsl gen_bits) lor gen

(* Lazy cancellation: mark the slot; the entry is dropped when it
   reaches the top of the heap. *)
let cancel q h =
  let slot = h lsr gen_bits and gen = h land gen_mask in
  if h >= 0 && slot < q.high_water && q.cells.(slot) = (gen lsl 2) lor state_pending
  then begin
    q.cells.(slot) <- (gen lsl 2) lor state_cancelled;
    q.live <- q.live - 1
  end

let is_pending q h =
  let slot = h lsr gen_bits and gen = h land gen_mask in
  h >= 0 && slot < q.high_water && q.cells.(slot) = (gen lsl 2) lor state_pending

let rec drop_cancelled q =
  match Heap.peek q.heap with
  | Some e when q.cells.(e.slot) land 3 = state_cancelled ->
      let _ = Heap.pop q.heap in
      free_slot q e.slot;
      drop_cancelled q
  | Some _ | None -> ()

let next_time q =
  drop_cancelled q;
  match Heap.peek q.heap with Some e -> Some e.time | None -> None

let pop_due q ~now =
  drop_cancelled q;
  match Heap.peek q.heap with
  | Some e when e.time <= now ->
      let _ = Heap.pop q.heap in
      free_slot q e.slot;
      q.live <- q.live - 1;
      Some e.action
  | Some _ | None -> None

let length q = q.live
let is_empty q = q.live = 0
