type 'a t = {
  initial_capacity : int;
  mutable data : 'a array; (* physical storage; [len] live slots *)
  mutable len : int;
}

let create ?(initial_capacity = 16) () =
  { initial_capacity = Stdlib.max 1 initial_capacity; data = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0

let ensure_room t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let data = Array.make (Stdlib.max t.initial_capacity (2 * cap)) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_room t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ready_buffer.get: index out of bounds";
  t.data.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []
