(** Fixed-size pool of OCaml 5 domains for embarrassingly parallel
    experiment execution.

    Each sweep point is an independent deterministic simulation (its
    own engine, seed, and clock), so the only parallelism the harness
    needs is "run these pure thunks on several cores and give the
    results back in order". The pool is deliberately work-stealing
    free: one mutex-protected FIFO feeds the workers, and {!map}
    returns results indexed by input position, so a parallel run is
    bit-for-bit identical to the sequential one. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1 —
    the submitting domain keeps one core for itself. *)

val create : ?size:int -> unit -> t
(** [create ~size ()] spawns [size] worker domains (default
    {!default_size}). Raises [Invalid_argument] if [size < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map pool ~f xs] evaluates [f x] for every element on the worker
    domains and returns the results in input order. [f] must not
    touch shared mutable state (every simulation in this repository
    is engine-local, so [Experiment.run] qualifies). If any
    application raises, the first exception (in input order) is
    re-raised in the caller after all tasks have settled. Safe to
    call repeatedly; must be called from the domain that owns the
    pool, not from inside a task. *)

val shutdown : t -> unit
(** Joins all workers. Idempotent. Outstanding tasks complete first;
    using the pool after shutdown raises [Invalid_argument]. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, applies [f], and shuts the pool
    down even if [f] raises. *)
