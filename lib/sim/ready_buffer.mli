(** Reusable growable result buffer for scan hot paths.

    Replaces the per-call [cons ... |> List.rev] accumulation pattern
    in readiness scans: the owner keeps one buffer alive, [clear]s it
    at the top of each scan, [push]es results in encounter order, and
    reads them back in that same order. Steady-state scans allocate
    nothing (the backing array is retained across calls); [length] is
    an O(1) field read, not a list traversal.

    Not thread-safe; one buffer per owner. [clear] resets the logical
    length only — slots keep their last values until overwritten, so
    buffers should hold small immutable records, not resources. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t
(** [initial_capacity] (default 16) pre-sizes the first allocation of
    the backing array. *)

val length : 'a t -> int
(** Elements pushed since the last {!clear}, O(1). *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Reset to empty, retaining the backing array for reuse. O(1). *)

val push : 'a t -> 'a -> unit
(** Append, amortized O(1) (growth doubles the backing array). *)

val get : 'a t -> int -> 'a
(** [get b i] is the [i]th pushed element. Raises [Invalid_argument]
    when [i] is out of bounds. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Apply to every element in push order. *)

val fold : 'a t -> init:'acc -> f:('acc -> 'a -> 'acc) -> 'acc
(** Fold in push order. *)

val to_list : 'a t -> 'a list
(** Elements in push order, freshly allocated — the bridge to
    list-shaped APIs at module boundaries. *)
