(** Timed, cancellable events.

    A thin layer over {!Heap} that gives each scheduled event a
    generation-stamped slot in a flat array and FIFO ordering among
    events scheduled for the same instant. Cancellation is lazy: a
    cancelled event stays in the heap until its time comes and is then
    discarded. Cancel and pending checks are O(1) array reads — no
    hashing, and no allocation beyond the heap entry itself. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. A handle goes
    stale the moment its event fires or is cancelled; stale handles
    are harmless (cancel is a no-op, {!is_pending} answers [false]). *)

val create : ?initial_capacity:int -> unit -> t
(** [initial_capacity] (default 16) pre-sizes the heap and the slot
    array for queues whose population is known in advance. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule q ~at f] arranges for [f ()] to run when the queue is
    advanced to time [at]. Events at equal times fire in scheduling
    order. Raises [Invalid_argument] if [at] is negative. *)

val cancel : t -> handle -> unit
(** [cancel q h] prevents the event from firing. Cancelling an event
    that already fired (or was already cancelled) is a no-op. *)

val is_pending : t -> handle -> bool
(** [is_pending q h] is [true] iff the event is still scheduled: not
    cancelled and not yet fired. Events that already fired answer
    [false]. *)

val next_time : t -> Time.t option
(** Time of the earliest live event, skipping cancelled ones. *)

val pop_due : t -> now:Time.t -> (unit -> unit) option
(** [pop_due q ~now] removes and returns the action of the earliest
    live event with time <= [now], if any. *)

val length : t -> int
(** Live (non-cancelled) events still queued. *)

val is_empty : t -> bool
