(** SO_REUSEPORT-style accept steering and stats merge for an N-shard
    server cluster.

    A cluster is N independent shards — each owning its own listener,
    backend event loop, connection-table slice and {!Server_stats} —
    behind a deterministic steering function that assigns every
    connection of the global arrival schedule to exactly one shard.
    Steering is a pure pre-pass over the schedule (a function of
    policy, shard count, client population and seed), which is what
    makes a cluster run reproducible regardless of how the shards are
    simulated afterwards: sequentially or one {!Sio_sim.Domain_pool}
    domain per shard, the same bytes come out.

    The experiment composition (per-shard engines, hosts, servers,
    clients and the merged outcome) lives in [Sio_loadgen.Cluster];
    this module is the server-side model it steers with. *)

open Sio_sim

type policy =
  | Round_robin  (** connection i -> shard i mod N; perfectly balanced *)
  | Hash_tuple
      (** hash of the client 4-tuple mod N (the kernel's SO_REUSEPORT
          default); stateless but inherits client-population skew *)
  | Least_loaded
      (** pick the shard with the fewest estimated outstanding
          connections, lowest index on ties *)

val policy_name : policy -> string
val pp_policy : Format.formatter -> policy -> unit

type population = { tuples : int; skew : float }
(** The client population steering sees. [tuples = 0]: every
    connection arrives from a distinct ephemeral 4-tuple (benchmark
    default). [tuples = k > 0]: k distinct client endpoints, uniform
    when [skew <= 0], Zipf([skew]) popularity otherwise — the NAT/proxy
    scenario where tuple-hashing polarises. *)

val uniform_population : population

val tuple_keys : population:population -> seed:int -> int -> int array
(** [tuple_keys ~population ~seed n] is the tuple key of each of [n]
    connections, deterministic in (population, seed). *)

val route :
  policy:policy ->
  shards:int ->
  ?population:population ->
  ?est_service:Time.t ->
  seed:int ->
  Time.t array ->
  int array
(** [route ~policy ~shards ~seed arrivals] assigns each arrival (the
    global schedule, in non-decreasing time order) a shard index in
    [\[0, shards)]. [est_service] (default 50 ms) is the least-loaded
    balancer's completion estimate. Pure and deterministic. Raises
    [Invalid_argument] if [shards <= 0]. *)

val split_evenly : shards:int -> int -> int array
(** [split_evenly ~shards total] is the per-shard share of [total]
    (idle population, memory partition), remainders to low indices. *)

val shard_counts : shards:int -> int array -> int array
(** Connections per shard under an assignment from {!route}. *)

val merge_stats : Server_stats.t list -> Server_stats.t
(** Deterministic, order-insensitive merge of per-shard stats: counter
    sums plus an absolute-time reply-sampler merge
    ({!Server_stats.merge}). *)
