open Sio_sim
open Sio_kernel

type event = { fd : int; mask : Pollmask.t }

type impl = {
  name : string;
  add : int -> Pollmask.t -> unit;
  modify : int -> Pollmask.t -> unit;
  remove : int -> unit;
  wait : timeout:Time.t option -> k:(event list -> unit) -> unit;
  interest_count : unit -> int;
}

type t = impl

let name t = t.name
let add t fd mask = t.add fd mask
let modify t fd mask = t.modify fd mask
let remove t fd = t.remove fd
let wait t ~timeout ~k = t.wait ~timeout ~k
let interest_count t = t.interest_count ()

let to_events results =
  List.map (fun r -> { fd = r.Poll.fd; mask = r.Poll.revents }) results

let poll proc =
  (* User-space interest set; insertion order preserved so the pollfd
     array looks like thttpd's (listener first, then connections).
     Kept persistent so the host-side scan is O(active); charged costs
     and results are identical to rebuilding the list every call. *)
  let set =
    Poll.Pset.create
      ~host:(Process.host proc)
      ~lookup:(Process.lookup_socket proc)
      ()
  in
  {
    name = "poll";
    add = (fun fd mask -> Poll.Pset.set set fd mask);
    modify = (fun fd mask -> if Poll.Pset.mem set fd then Poll.Pset.set set fd mask);
    remove = (fun fd -> Poll.Pset.remove set fd);
    wait =
      (fun ~timeout ~k -> Poll.Pset.wait_set set ~timeout ~k:(fun rs -> k (to_events rs)));
    interest_count = (fun () -> Poll.Pset.length set);
  }

let devpoll ?(use_mmap = true) ?(max_events = 64) proc =
  match Kernel.devpoll_open proc with
  | Error (`Emfile | `Ebadf | `Eagain | `Einval) -> Error `Emfile
  | Ok dpfd ->
      if use_mmap then
        ignore (Kernel.devpoll_alloc_map proc dpfd ~slots:max_events);
      let count = ref 0 in
      let write entries = ignore (Kernel.devpoll_write proc dpfd entries) in
      Ok
        {
          name = (if use_mmap then "devpoll" else "devpoll-nommap");
          add =
            (fun fd mask ->
              incr count;
              write [ (fd, mask) ]);
          modify = (fun fd mask -> write [ (fd, mask) ]);
          remove =
            (fun fd ->
              decr count;
              write [ (fd, Pollmask.pollremove) ]);
          wait =
            (fun ~timeout ~k ->
              ignore
                (Kernel.devpoll_wait proc dpfd ~max_results:max_events ~timeout
                   ~k:(fun rs -> k (to_events rs))));
          interest_count = (fun () -> !count);
        }

let select proc =
  let set =
    Select.Sset.create
      ~host:(Process.host proc)
      ~lookup:(Process.lookup_socket proc)
      ()
  in
  let to_events result =
    let events = ref [] in
    Fd_set.iter result.Select.except (fun fd ->
        events := { fd; mask = Pollmask.pollerr } :: !events);
    Fd_set.iter result.Select.writable (fun fd ->
        events := { fd; mask = Pollmask.pollout } :: !events);
    Fd_set.iter result.Select.readable (fun fd ->
        match !events with
        | { fd = fd'; mask } :: rest when fd' = fd ->
            events := { fd; mask = Pollmask.union mask Pollmask.pollin } :: rest
        | _ -> events := { fd; mask = Pollmask.pollin } :: !events);
    !events
  in
  let add fd mask = Select.Sset.add set fd mask in
  {
    name = "select";
    add;
    modify = add;
    remove = (fun fd -> Select.Sset.remove set fd);
    wait =
      (fun ~timeout ~k ->
        Select.Sset.wait_sset set ~timeout ~k:(fun result -> k (to_events result)));
    interest_count = (fun () -> Select.Sset.interest_count set);
  }

let epoll ?(max_events = 64) proc =
  let ep = Epoll.create ~host:(Process.host proc) ~lookup:(Process.lookup_socket proc) in
  {
    name = "epoll";
    add =
      (fun fd mask ->
        match Epoll.ctl_add ep ~fd ~events:mask () with
        | Ok () -> ()
        | Error `Eexist -> ignore (Epoll.ctl_mod ep ~fd ~events:mask)
        | Error `Ebadf -> ());
    modify = (fun fd mask -> ignore (Epoll.ctl_mod ep ~fd ~events:mask));
    remove = (fun fd -> ignore (Epoll.ctl_del ep ~fd));
    wait =
      (fun ~timeout ~k ->
        Epoll.wait ep ~max_events ~timeout ~k:(fun rs -> k (to_events rs)));
    interest_count = (fun () -> Epoll.interest_count ep);
  }
