open Sio_sim
open Sio_kernel

type transmit = Copy | Sendfile | Ring | Selective

type config = {
  doc_bytes : int;
  parse_cost : Time.t;
  respond_cost : Time.t;
  read_spin_cost : Time.t;
  fs : Fs.t option;
  transmit : transmit;
}

let not_found_body_bytes = 120

(* One ring slot per hardware page: the per-page map charge models
   get_user_pages on 4 KB pages. *)
let ring_slot_bytes = 4096

let default_config =
  {
    doc_bytes = Http.default_document_bytes;
    parse_cost = Time.us 240;
    respond_cost = Time.us 340;
    read_spin_cost = Time.us 15;
    fs = None;
    transmit = Copy;
  }

(* How a response's bytes reach the wire, resolved once per response:
   the 404 page (and any error body) is user-generated text, never
   page-aligned file data, so it must stay on the copy path no matter
   what [config.transmit] says; and a refused ring attach (memory
   budget) degrades to copy rather than failing the response. *)
type path = P_copy | P_sendfile | P_ring of { copy_bytes : int }

type send_state = {
  path : path;
  total : int;  (* full response size on the wire *)
  mutable sent : int;  (* bytes accepted into the send buffer so far *)
}

type t = {
  fd : int;
  buf : Buffer.t;
  mutable last_activity : Sio_sim.Time.t;
  mutable send : send_state option;
}

let create ~fd ~now =
  { fd; buf = Buffer.create 128; last_activity = now; send = None }

let with_fd t ~fd = { t with fd }

let fd t = t.fd
let last_activity t = t.last_activity
let touch t ~now = t.last_activity <- now
let sending t = t.send <> None

type outcome =
  | Replied of int
  | Again
  | Blocked of int
  | Closed_by_peer

(* Push the pending response forward by one send call. Every exit that
   is not [Blocked] closes the descriptor: HTTP/1.0, no keep-alive. *)
let continue_send proc t st =
  let remaining = st.total - st.sent in
  let result =
    match st.path with
    | P_copy -> Kernel.write proc t.fd ~bytes_len:remaining
    | P_sendfile -> Kernel.sendfile proc t.fd ~bytes_len:remaining
    | P_ring { copy_bytes } ->
        (* Headers drain first (FIFO), so only the not-yet-sent prefix
           of the copied-through region still needs copying. *)
        let copy_now = Stdlib.max 0 (copy_bytes - st.sent) in
        Kernel.ring_send proc t.fd ~bytes_len:remaining ~copy_bytes:copy_now
  in
  match result with
  | Ok n when st.sent + n >= st.total ->
      t.send <- None;
      ignore (Kernel.close proc t.fd);
      Replied n
  | Ok n ->
      st.sent <- st.sent + n;
      Blocked n
  | Error (`Econnreset | `Ebadf | `Emfile | `Eagain | `Einval) ->
      t.send <- None;
      ignore (Kernel.close proc t.fd);
      Closed_by_peer

let resolve_path proc config t ~not_found ~body_bytes =
  if not_found then P_copy
  else
    match config.transmit with
    | Copy -> P_copy
    | Sendfile -> P_sendfile
    | Ring | Selective -> (
        match Kernel.ring_attach proc t.fd ~slot_bytes:ring_slot_bytes with
        | Ok () ->
            let copy_bytes =
              match config.transmit with
              | Selective -> Http.header_bytes ~body_bytes
              | Copy | Sendfile | Ring -> 0
            in
            P_ring { copy_bytes }
        | Error (`Ebadf | `Einval | `Enobufs | `Econnreset) -> P_copy)

let respond proc config t =
  Kernel.compute proc config.parse_cost;
  match Http.parse_request (Buffer.contents t.buf) with
  | Error (`Incomplete | `Malformed) ->
      (* Junk request: drop the connection, as thttpd does. *)
      ignore (Kernel.close proc t.fd);
      Closed_by_peer
  | Ok req ->
      Kernel.compute proc config.respond_cost;
      let body_bytes, not_found =
        match config.fs with
        | None -> (config.doc_bytes, false)
        | Some fs -> (
            match Fs.read_file fs req.Http.path with
            | Ok bytes -> (bytes, false)
            | Error `Enoent -> (not_found_body_bytes, true))
      in
      let total = Http.response_bytes ~body_bytes in
      let path = resolve_path proc config t ~not_found ~body_bytes in
      let st = { path; total; sent = 0 } in
      t.send <- Some st;
      continue_send proc t st

let handle_event proc config t ~now =
  t.last_activity <- now;
  match t.send with
  | Some st ->
      (* A response is in flight: whatever the event bits, the only
         useful work is pushing more of it out. *)
      continue_send proc t st
  | None -> (
      match Kernel.read proc t.fd with
      | Ok (Kernel.Data (text, _bytes)) ->
          Buffer.add_string t.buf text;
          if Http.is_complete (Buffer.contents t.buf) then respond proc config t
          else begin
            Kernel.compute proc config.read_spin_cost;
            Again
          end
      | Ok Kernel.Eagain ->
          Kernel.compute proc config.read_spin_cost;
          Again
      | Ok Kernel.Eof | Ok Kernel.Econnreset ->
          ignore (Kernel.close proc t.fd);
          Closed_by_peer
      | Error (`Ebadf | `Emfile | `Eagain | `Einval) -> Closed_by_peer)
