open Sio_sim

type t = {
  mutable replies : int;
  mutable accepted : int;
  mutable dropped_conns : int;
  mutable timed_out_conns : int;
  mutable stale_events : int;
  mutable overflow_recoveries : int;
  mutable mode_switches : int;
  mutable emfile_drops : int;
  mutable enobufs_drops : int;
  mutable partial_writes : int;
  mutable bytes_sent : int;
  reply_sampler : Sampler.t;
}

let create ?(sample_interval = Time.s 1) () =
  {
    replies = 0;
    accepted = 0;
    dropped_conns = 0;
    timed_out_conns = 0;
    stale_events = 0;
    overflow_recoveries = 0;
    mode_switches = 0;
    emfile_drops = 0;
    enobufs_drops = 0;
    partial_writes = 0;
    bytes_sent = 0;
    reply_sampler = Sampler.create ~interval:sample_interval;
  }

let record_reply t ~now =
  t.replies <- t.replies + 1;
  Sampler.record t.reply_sampler ~now

let reply_rates t ~until = Sampler.rates t.reply_sampler ~until

(* Shard merge. The exhaustive destructure (no wildcard, warning 9 is
   fatal) is the coverage guard the cluster relies on: adding a
   counter to [t] without teaching [add] about it no longer compiles,
   so a new field can never be silently dropped from merged totals. *)
let add ~into src =
  let {
    replies;
    accepted;
    dropped_conns;
    timed_out_conns;
    stale_events;
    overflow_recoveries;
    mode_switches;
    emfile_drops;
    enobufs_drops;
    partial_writes;
    bytes_sent;
    reply_sampler;
  } =
    src
  in
  into.replies <- into.replies + replies;
  into.accepted <- into.accepted + accepted;
  into.dropped_conns <- into.dropped_conns + dropped_conns;
  into.timed_out_conns <- into.timed_out_conns + timed_out_conns;
  into.stale_events <- into.stale_events + stale_events;
  into.overflow_recoveries <- into.overflow_recoveries + overflow_recoveries;
  into.mode_switches <- into.mode_switches + mode_switches;
  into.emfile_drops <- into.emfile_drops + emfile_drops;
  into.enobufs_drops <- into.enobufs_drops + enobufs_drops;
  into.partial_writes <- into.partial_writes + partial_writes;
  into.bytes_sent <- into.bytes_sent + bytes_sent;
  Sampler.merge_into ~into:into.reply_sampler reply_sampler

let merge ?sample_interval ts =
  let into = create ?sample_interval () in
  List.iter (fun src -> add ~into src) ts;
  into

let pp ppf t =
  Fmt.pf ppf
    "replies=%d accepted=%d dropped=%d timed_out=%d stale=%d overflows=%d switches=%d emfile=%d enobufs=%d partial_writes=%d bytes_sent=%d"
    t.replies t.accepted t.dropped_conns t.timed_out_conns t.stale_events
    t.overflow_recoveries t.mode_switches t.emfile_drops t.enobufs_drops
    t.partial_writes t.bytes_sent
