open Sio_sim

type t = {
  mutable replies : int;
  mutable accepted : int;
  mutable dropped_conns : int;
  mutable timed_out_conns : int;
  mutable stale_events : int;
  mutable overflow_recoveries : int;
  mutable mode_switches : int;
  mutable emfile_drops : int;
  mutable enobufs_drops : int;
  mutable partial_writes : int;
  mutable bytes_sent : int;
  reply_sampler : Sampler.t;
}

let create ?(sample_interval = Time.s 1) () =
  {
    replies = 0;
    accepted = 0;
    dropped_conns = 0;
    timed_out_conns = 0;
    stale_events = 0;
    overflow_recoveries = 0;
    mode_switches = 0;
    emfile_drops = 0;
    enobufs_drops = 0;
    partial_writes = 0;
    bytes_sent = 0;
    reply_sampler = Sampler.create ~interval:sample_interval;
  }

let record_reply t ~now =
  t.replies <- t.replies + 1;
  Sampler.record t.reply_sampler ~now

let reply_rates t ~until = Sampler.rates t.reply_sampler ~until

let pp ppf t =
  Fmt.pf ppf
    "replies=%d accepted=%d dropped=%d timed_out=%d stale=%d overflows=%d switches=%d emfile=%d enobufs=%d partial_writes=%d bytes_sent=%d"
    t.replies t.accepted t.dropped_conns t.timed_out_conns t.stale_events
    t.overflow_recoveries t.mode_switches t.emfile_drops t.enobufs_drops
    t.partial_writes t.bytes_sent
