(** Counters every server implementation exposes, plus the per-second
    reply sampler the benchmark harness reads. *)

open Sio_sim

type t = {
  mutable replies : int;
  mutable accepted : int;
  mutable dropped_conns : int;  (** closed before a full request *)
  mutable timed_out_conns : int;  (** closed by the idle sweep *)
  mutable stale_events : int;  (** events naming an unknown/closed fd *)
  mutable overflow_recoveries : int;  (** RT queue overflow episodes *)
  mutable mode_switches : int;  (** hybrid: signals <-> polling *)
  mutable emfile_drops : int;  (** accepts refused for lack of fds *)
  mutable enobufs_drops : int;
      (** accepts refused for lack of modeled kernel memory *)
  mutable partial_writes : int;
      (** send events that left a response partly unsent (short write
          or full buffer), parking the connection on POLLOUT *)
  mutable bytes_sent : int;
      (** response bytes accepted into send buffers, across all
          connections and all chunks of streamed sends *)
  reply_sampler : Sampler.t;
}

val create : ?sample_interval:Time.t -> unit -> t
(** Default sampling interval: 1 s. *)

val record_reply : t -> now:Time.t -> unit

val reply_rates : t -> until:Time.t -> float list
(** Per-interval reply rates (replies/s), including empty intervals. *)

val add : into:t -> t -> unit
(** [add ~into src] accumulates every counter of [src] into [into] and
    merges the reply samplers on an absolute-time grid
    ({!Sampler.merge_into}). Implemented by exhaustive record
    destructure, so adding a field to [t] without extending [add] is a
    compile error — counters cannot be silently dropped from a shard
    merge. [src] is unchanged. *)

val merge : ?sample_interval:Time.t -> t list -> t
(** Fold {!add} over a fresh stats record. Merge is order-insensitive
    for every counter; the sampler grid follows the earliest origin. *)

val pp : Format.formatter -> t -> unit
