open Sio_sim
open Sio_kernel

type config = {
  backlog : int;
  conn : Conn.config;
  idle_timeout : Time.t;
  sweep_period : Time.t;
  sweep_cost_per_conn : Time.t;
  sample_interval : Time.t;
  signo : int;
  conn_table_cost_per_conn : Time.t;
  handoff_cost_per_conn : Time.t;
  rebuild_cost_per_conn : Time.t;
  max_events_per_iter : int;
}

let default_config =
  {
    backlog = 128;
    conn = Conn.default_config;
    idle_timeout = Time.s 60;
    sweep_period = Time.s 10;
    sweep_cost_per_conn = Time.us 2;
    sample_interval = Time.s 1;
    signo = Rt_signal.sigrtmin + 1;
    conn_table_cost_per_conn = Time.ns 1_500;
    handoff_cost_per_conn = Time.us 30;
    rebuild_cost_per_conn = Time.us 3;
    max_events_per_iter = 8;
  }

type mode = Signals | Polling

type t = {
  proc : Process.t; (* the signal worker thread *)
  sibling : Process.t; (* the poll sibling (a Linux thread = own pid) *)
  config : config;
  listener : Socket.t;
  conns : Conn.t Fd_map.t;
  stats : Server_stats.t;
  mutable listen_fd : int; (* moves to the sibling's table on handoff *)
  mutable mode : mode;
  mutable handing_off : bool;
  mutable poll_backend : Backend.t option; (* the sibling's, after overflow *)
  mutable next_sweep : Time.t;
  mutable stopped : bool;
}

(* Which thread is doing the work right now. *)
let cur_proc t = match t.mode with Signals -> t.proc | Polling -> t.sibling

let now t = Host.now (Process.host t.proc)

let drop_conn t fd =
  ignore (Fd_map.remove t.conns fd);
  match t.poll_backend with Some b -> Backend.remove b fd | None -> ()

let handle_conn_event t fd =
  (* The unfinished server's connection bookkeeping walks state that
     grows with every open connection — the cache-pressure cost the
     paper suspects behind Figures 12-13. Charged per handled event,
     in both signal and polling modes. *)
  Kernel.compute (cur_proc t)
    (Time.mul t.config.conn_table_cost_per_conn (Fd_map.length t.conns));
  match Fd_map.find t.conns fd with
  | None ->
      (* A stale RT signal for a connection that is already gone: the
         hazard the paper warns about. It costs a little CPU to look
         up and discard. *)
      t.stats.Server_stats.stale_events <- t.stats.Server_stats.stale_events + 1;
      Kernel.compute (cur_proc t) t.config.conn.Conn.read_spin_cost
  | Some conn -> (
      let was_sending = Conn.sending conn in
      match Conn.handle_event (cur_proc t) t.config.conn conn ~now:(now t) with
      | Conn.Replied n ->
          t.stats.Server_stats.bytes_sent <- t.stats.Server_stats.bytes_sent + n;
          Server_stats.record_reply t.stats ~now:(now t);
          drop_conn t fd
      | Conn.Again -> ()
      | Conn.Blocked n ->
          t.stats.Server_stats.bytes_sent <- t.stats.Server_stats.bytes_sent + n;
          t.stats.Server_stats.partial_writes <-
            t.stats.Server_stats.partial_writes + 1;
          (* In signal mode nothing to do: F_SETSIG delivers POLLOUT
             edges through the same queue. The poll sibling must switch
             its recorded interest to writable. *)
          if not was_sending then (
            match (t.mode, t.poll_backend) with
            | Polling, Some b -> Backend.modify b fd Pollmask.pollout
            | (Signals | Polling), _ -> ())
      | Conn.Closed_by_peer ->
          t.stats.Server_stats.dropped_conns <- t.stats.Server_stats.dropped_conns + 1;
          drop_conn t fd)

(* Data can arrive between the SYN and our F_SETSIG; no signal will
   ever announce it. Real signal-driven servers therefore try an
   immediate non-blocking read on every freshly accepted connection. *)
let accept_pending t =
  let rec go () =
    match Kernel.accept (cur_proc t) t.listen_fd with
    | Ok (fd, _sock) ->
        Fd_map.set t.conns fd (Conn.create ~fd ~now:(now t));
        (match t.mode with
        | Signals -> ignore (Kernel.fcntl_setsig t.proc fd ~signo:t.config.signo)
        | Polling -> (
            match t.poll_backend with
            | Some b -> Backend.add b fd Pollmask.pollin
            | None -> ()));
        t.stats.Server_stats.accepted <- t.stats.Server_stats.accepted + 1;
        handle_conn_event t fd;
        go ()
    | Error `Eagain -> ()
    | Error `Emfile ->
        t.stats.Server_stats.emfile_drops <- t.stats.Server_stats.emfile_drops + 1;
        go ()
    | Error `Enobufs ->
        t.stats.Server_stats.enobufs_drops <- t.stats.Server_stats.enobufs_drops + 1;
        go ()
    | Error (`Ebadf | `Einval) -> ()
  in
  go ()

let sweep t =
  let n = Fd_map.length t.conns in
  Kernel.compute (cur_proc t) (Time.mul t.config.sweep_cost_per_conn n);
  let cutoff = Time.sub (now t) t.config.idle_timeout in
  (* Fd_map iterates in ascending fd order and tolerates removal of
     the current key, so expired connections close in-place — same
     close order as the old snapshot-and-sort, without the snapshot. *)
  Fd_map.iter t.conns (fun fd conn ->
      if Conn.last_activity conn <= cutoff then begin
        ignore (Kernel.close (cur_proc t) fd);
        drop_conn t fd;
        t.stats.Server_stats.timed_out_conns <- t.stats.Server_stats.timed_out_conns + 1
      end);
  t.next_sweep <- Time.add (now t) t.config.sweep_period

(* Move one descriptor from the signal worker's table to the poll
   sibling's: an SCM_RIGHTS message over their UNIX-domain socket pair,
   followed by the sibling growing its pollfd array. The socket itself
   is shared; only the descriptor changes hands (and number). *)
let transfer_fd t ~backend ~mask fd =
  match Fd_table.close (Process.fds t.proc) fd with
  | Some (Process.Sock sock) when Socket.state sock <> Socket.Closed -> (
      match Process.install_socket t.sibling sock with
      | Ok new_fd ->
          Backend.add backend new_fd mask;
          Some (fd, new_fd, sock)
      | Error `Emfile ->
          Socket.reset sock;
          t.stats.Server_stats.emfile_drops <- t.stats.Server_stats.emfile_drops + 1;
          None)
  | Some _ | None -> None

(* Overflow recovery, as the paper describes it (Section 6): flush
   pending signals, then pass every connection — listener included —
   one at a time over a UNIX-domain socket to the poll sibling, which
   rebuilds its pollfd array from scratch. Each transfer takes real CPU
   time during which nobody serves requests: "the added work and
   inefficiency of transferring each connection one at a time … will
   probably result in server meltdown". The server then stays in
   polling mode forever ("Brown never implemented this logic"). *)
let overflow_recovery t ~k =
  t.stats.Server_stats.overflow_recoveries <- t.stats.Server_stats.overflow_recoveries + 1;
  t.stats.Server_stats.mode_switches <- t.stats.Server_stats.mode_switches + 1;
  t.handing_off <- true;
  ignore (Kernel.flush_signals t.proc);
  let backend = Backend.poll t.sibling in
  let host = Process.host t.proc in
  let per_fd = Time.add t.config.handoff_cost_per_conn t.config.rebuild_cost_per_conn in
  (* Handoff in ascending-fd order: each transfer costs simulated CPU,
     so the order is simulation-visible. Fd_map.to_list is already in
     that order; the snapshot survives the clear because transfers
     re-insert under the sibling's fd numbers as they complete. *)
  let entries = Fd_map.to_list t.conns in
  Fd_map.clear t.conns;
  let rec go work =
    match work with
    | [] ->
        t.poll_backend <- Some backend;
        t.mode <- Polling;
        t.handing_off <- false;
        k ()
    | `Listener :: rest ->
        Host.charge_run host ~cost:per_fd (fun () ->
            (match Fd_table.close (Process.fds t.proc) t.listen_fd with
            | Some (Process.Sock sock) -> (
                match Process.install_socket t.sibling sock with
                | Ok new_fd ->
                    t.listen_fd <- new_fd;
                    Backend.add backend new_fd Pollmask.pollin
                | Error `Emfile -> Socket.close sock)
            | Some _ | None -> ());
            go rest)
    | `Conn (fd, conn) :: rest ->
        Host.charge_run host ~cost:per_fd (fun () ->
            (* A connection caught mid-send must come back as a
               writable interest or it stalls after the handoff. *)
            let mask =
              if Conn.sending conn then Pollmask.pollout else Pollmask.pollin
            in
            (match transfer_fd t ~backend ~mask fd with
            | Some (_, new_fd, _) ->
                Fd_map.set t.conns new_fd (Conn.with_fd conn ~fd:new_fd)
            | None -> ());
            go rest)
  in
  go (`Listener :: List.map (fun (fd, conn) -> `Conn (fd, conn)) entries)

let rec loop t =
  if not t.stopped then begin
    let until_sweep = Time.max (Time.ns 1) (Time.sub t.next_sweep (now t)) in
    let continue () =
      if now t >= t.next_sweep then sweep t;
      Kernel.yield (cur_proc t) (fun () -> loop t)
    in
    match t.mode with
    | Signals ->
        (* One event per syscall: sigwaitinfo semantics with the idle
           sweep's timeout. *)
        Kernel.sigtimedwait4 t.proc ~max:1 ~timeout:(Some until_sweep) ~k:(fun ds ->
            if not t.stopped then begin
              match ds with
              | [ Rt_signal.Signal { fd; _ } ] ->
                  if fd = t.listen_fd then accept_pending t else handle_conn_event t fd;
                  continue ()
              | [ Rt_signal.Overflow ] -> overflow_recovery t ~k:continue
              | [] -> continue ()
              | _ :: _ :: _ -> assert false
            end)
    | Polling -> (
        match t.poll_backend with
        | None -> assert false
        | Some backend ->
            Backend.wait backend ~timeout:(Some until_sweep) ~k:(fun events ->
                if not t.stopped then begin
                  let rec take n l =
                    match l with
                    | [] -> []
                    | _ :: _ when n <= 0 -> []
                    | x :: rest -> x :: take (n - 1) rest
                  in
                  List.iter
                    (fun ev ->
                      if ev.Backend.fd = t.listen_fd then accept_pending t
                      else handle_conn_event t ev.Backend.fd)
                    (take t.config.max_events_per_iter events);
                  continue ()
                end))
  end

let start ~proc ?(config = default_config) () =
  match Kernel.listen proc ~backlog:config.backlog with
  | Error (`Emfile | `Ebadf | `Eagain | `Einval) -> Error `Emfile
  | Ok listen_fd ->
      let listener =
        match Process.lookup_socket proc listen_fd with
        | Some s -> s
        | None -> assert false
      in
      let sibling =
        Process.create ~host:(Process.host proc)
          ~fd_limit:(Fd_table.limit (Process.fds proc))
          ~name:(Process.name proc ^ "-poll-sibling")
          ()
      in
      let t =
        {
          proc;
          sibling;
          config;
          listen_fd;
          listener;
          conns = Fd_map.create ~initial_capacity:256 ();
          stats = Server_stats.create ~sample_interval:config.sample_interval ();
          mode = Signals;
          handing_off = false;
          poll_backend = None;
          next_sweep = Time.add (Host.now (Process.host proc)) config.sweep_period;
          stopped = false;
        }
      in
      ignore (Kernel.fcntl_setsig proc listen_fd ~signo:config.signo);
      loop t;
      Ok t

let listener t = t.listener
let stats t = t.stats
let connection_count t = Fd_map.length t.conns
let mode t = t.mode
let is_handing_off t = t.handing_off
let sibling t = t.sibling
let stop t = t.stopped <- true
