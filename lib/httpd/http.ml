type request = { meth : string; path : string }

let build_request ~path =
  Printf.sprintf "GET %s HTTP/1.0\r\nHost: server\r\nUser-Agent: httperf/0.8\r\n\r\n" path

let request_bytes ~path = String.length (build_request ~path)

let terminator = "\r\n\r\n"

let contains_terminator s =
  let n = String.length s and m = String.length terminator in
  let rec at i =
    if i + m > n then false
    else if String.sub s i m = terminator then true
    else at (i + 1)
  in
  at 0

let is_complete = contains_terminator

let parse_request s =
  if not (is_complete s) then Error `Incomplete
  else
    match String.index_opt s '\r' with
    | None -> Error `Malformed
    | Some eol -> (
        let line = String.sub s 0 eol in
        match String.split_on_char ' ' line with
        | [ meth; path; version ]
          when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
            Ok { meth; path }
        | _ -> Error `Malformed)

let response_head_bytes ~body_bytes =
  String.length
    (Printf.sprintf
       "HTTP/1.0 200 OK\r\nServer: thttpd-sim\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n"
       body_bytes)

let header_bytes = response_head_bytes

let response_bytes ~body_bytes = response_head_bytes ~body_bytes + body_bytes

let default_document_bytes = 6144
