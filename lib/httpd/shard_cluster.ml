(* SO_REUSEPORT-style accept steering for an N-shard server.

   The cluster model mirrors how multi-core servers actually scale
   past a single event loop: N independent shards, each with its own
   listener, backend event loop, connection-table slice and
   [Server_stats], behind a steering function that assigns every
   incoming connection to exactly one shard. Steering is a
   deterministic pre-pass over the global arrival schedule — a pure
   function of (policy, shard count, client population, seed) — so a
   cluster run is reproducible no matter how the shards are later
   simulated (sequentially or one domain per shard).

   Three policies, matching the knobs real load balancers expose:

   - [Round_robin]: connection i goes to shard i mod N. Perfectly
     balanced by construction; needs per-packet LB state.
   - [Hash_tuple]: hash of the client 4-tuple mod N — the kernel's
     SO_REUSEPORT default. Stateless, but every connection from one
     tuple pins to one shard, so a skewed client population (NAT
     boxes, proxies) polarises load.
   - [Least_loaded]: the balancer tracks an estimate of each shard's
     outstanding connections (departures modelled as arrival +
     [est_service]) and picks the least-loaded shard, lowest index
     winning ties. *)

open Sio_sim

type policy = Round_robin | Hash_tuple | Least_loaded

let policy_name = function
  | Round_robin -> "round-robin"
  | Hash_tuple -> "hash"
  | Least_loaded -> "least-loaded"

let pp_policy ppf p = Fmt.string ppf (policy_name p)

(* The client population steering sees. [tuples = 0] models the
   benchmark default — every connection arrives from a distinct
   ephemeral 4-tuple, so hashing spreads load near-uniformly.
   [tuples = k] with [skew > 0] models k distinct client endpoints
   with Zipf(skew) popularity: the head tuples carry most of the
   connections, and any tuple-hashing policy inherits that
   imbalance. *)
type population = { tuples : int; skew : float }

let uniform_population = { tuples = 0; skew = 0. }

(* Which tuple does connection i belong to? Drawn once, sequentially,
   from a private SplitMix stream: deterministic in (seed, i). *)
let tuple_keys ~population ~seed n =
  match population.tuples with
  | 0 -> Array.init n (fun i -> i)
  | k when k < 0 -> invalid_arg "Shard_cluster: negative tuple population"
  | k ->
      let rng = Rng.create ~seed:(Rng.derive ~seed 0x7e5) in
      if population.skew <= 0. then Array.init n (fun _ -> Rng.int rng k)
      else begin
        (* Zipf(s) over ranks 1..k via inverse-CDF on the cumulative
           weight table; O(k) setup, O(log k) per draw. *)
        let cum = Array.make k 0. in
        let acc = ref 0. in
        for r = 0 to k - 1 do
          acc := !acc +. (1. /. Float.pow (float_of_int (r + 1)) population.skew);
          cum.(r) <- !acc
        done;
        let total = !acc in
        Array.init n (fun _ ->
            let u = Rng.float rng total in
            let lo = ref 0 and hi = ref (k - 1) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if cum.(mid) > u then hi := mid else lo := mid + 1
            done;
            !lo)
      end

(* Stateless 4-tuple hash: mix the tuple key through SplitMix so
   nearby tuples land on unrelated shards (the kernel hashes the real
   address/port words; the mix stands in for that). *)
let hash_shard ~seed ~shards key =
  Rng.derive ~seed:(Rng.derive ~seed 0x4a11) key land max_int mod shards

let route ~policy ~shards ?(population = uniform_population)
    ?(est_service = Time.ms 50) ~seed arrivals =
  if shards <= 0 then invalid_arg "Shard_cluster.route: shards must be positive";
  let n = Array.length arrivals in
  match policy with
  | Round_robin -> Array.init n (fun i -> i mod shards)
  | Hash_tuple ->
      let keys = tuple_keys ~population ~seed n in
      Array.map (fun key -> hash_shard ~seed ~shards key) keys
  | Least_loaded ->
      (* One pass over the schedule in arrival order: retire modelled
         departures up to each arrival, then pick the emptiest shard. *)
      let load = Array.make shards 0 in
      let departures =
        Heap.create ~leq:(fun (ta, _) (tb, _) -> Time.compare ta tb <= 0) ()
      in
      Array.map
        (fun at ->
          let rec drain () =
            match Heap.peek departures with
            | Some (t, shard) when Time.compare t at <= 0 ->
                ignore (Heap.pop departures);
                load.(shard) <- load.(shard) - 1;
                drain ()
            | Some _ | None -> ()
          in
          drain ();
          let best = ref 0 in
          for s = 1 to shards - 1 do
            if load.(s) < load.(!best) then best := s
          done;
          load.(!best) <- load.(!best) + 1;
          Heap.push departures (Time.add at est_service, !best);
          !best)
        arrivals

(* Even split of an idle population (or any per-shard resource):
   shard s gets the remainder-adjusted share, low indices first. *)
let split_evenly ~shards total =
  if shards <= 0 then invalid_arg "Shard_cluster.split_evenly: shards must be positive";
  Array.init shards (fun s -> (total / shards) + if s < total mod shards then 1 else 0)

let shard_counts ~shards assignment =
  let counts = Array.make shards 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) assignment;
  counts

(* Deterministic merge of per-shard server stats: pure counter sums
   plus an absolute-time sampler merge — order-insensitive, so the
   merged record is identical whether shards simulated sequentially
   or on a Domain_pool. *)
let merge_stats stats = Server_stats.merge stats
