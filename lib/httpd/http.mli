(** Minimal HTTP/1.0, enough for the paper's workload: a static GET of
    a 6 KB document, served and closed. Requests are real text so that
    the servers parse something; response bodies are modelled by size
    only. *)

type request = { meth : string; path : string }

val build_request : path:string -> string
(** A complete HTTP/1.0 GET request, terminated by CRLFCRLF. *)

val request_bytes : path:string -> int
(** [String.length (build_request ~path)]. *)

val is_complete : string -> bool
(** True when the buffered text contains the end-of-headers marker. *)

val parse_request : string -> (request, [ `Incomplete | `Malformed ]) result
(** Parses the first request line out of a complete request buffer. *)

val response_head_bytes : body_bytes:int -> int
(** Size of the status line plus headers for a [body_bytes] response. *)

val header_bytes : body_bytes:int -> int
(** Alias of {!response_head_bytes}: the prefix of a response that the
    selective zero-copy path copies through the send buffer (headers
    are built in user space per request and are not page-aligned file
    data) while the body is mapped into the transmit ring. *)

val response_bytes : body_bytes:int -> int
(** Total wire size of a 200 response with the given body. *)

val default_document_bytes : int
(** 6144 — the paper's 6 Kbyte index.html from the CITI web site. *)
