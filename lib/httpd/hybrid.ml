open Sio_sim
open Sio_kernel

type config = {
  backlog : int;
  conn : Conn.config;
  idle_timeout : Time.t;
  sweep_period : Time.t;
  sweep_cost_per_conn : Time.t;
  sample_interval : Time.t;
  signo : int;
  sigtimedwait4_batch : int;
  switch_streak : int;
  max_events : int;
  low_watermark : int;
}

let default_config =
  {
    backlog = 128;
    conn = Conn.default_config;
    idle_timeout = Time.s 60;
    sweep_period = Time.s 10;
    sweep_cost_per_conn = Time.us 2;
    sample_interval = Time.s 1;
    signo = Rt_signal.sigrtmin + 1;
    sigtimedwait4_batch = 8;
    switch_streak = 4;
    max_events = 64;
    low_watermark = 4;
  }

type mode = Signals | Polling

type t = {
  proc : Process.t;
  config : config;
  listen_fd : int;
  listener : Socket.t;
  backend : Backend.t; (* /dev/poll state, maintained in both modes *)
  conns : Conn.t Fd_map.t;
  stats : Server_stats.t;
  mutable mode : mode;
  mutable full_batch_streak : int;
  mutable next_sweep : Time.t;
  mutable stopped : bool;
}

let now t = Host.now (Process.host t.proc)

let drop_conn t fd =
  ignore (Fd_map.remove t.conns fd);
  Backend.remove t.backend fd

let handle_conn_event t fd =
  match Fd_map.find t.conns fd with
  | None ->
      t.stats.Server_stats.stale_events <- t.stats.Server_stats.stale_events + 1;
      Kernel.compute t.proc t.config.conn.Conn.read_spin_cost
  | Some conn -> (
      let was_sending = Conn.sending conn in
      match Conn.handle_event t.proc t.config.conn conn ~now:(now t) with
      | Conn.Replied n ->
          t.stats.Server_stats.bytes_sent <- t.stats.Server_stats.bytes_sent + n;
          Server_stats.record_reply t.stats ~now:(now t);
          drop_conn t fd
      | Conn.Again -> ()
      | Conn.Blocked n ->
          t.stats.Server_stats.bytes_sent <- t.stats.Server_stats.bytes_sent + n;
          t.stats.Server_stats.partial_writes <-
            t.stats.Server_stats.partial_writes + 1;
          (* The /dev/poll interest set is maintained in both modes, so
             one modify covers polling mode; in signal mode F_SETSIG
             already delivers POLLOUT edges. *)
          if not was_sending then Backend.modify t.backend fd Pollmask.pollout
      | Conn.Closed_by_peer ->
          t.stats.Server_stats.dropped_conns <- t.stats.Server_stats.dropped_conns + 1;
          drop_conn t fd)

(* Data can arrive between the SYN and our F_SETSIG; no signal will
   ever announce it. Real signal-driven servers therefore try an
   immediate non-blocking read on every freshly accepted connection. *)
let accept_pending t =
  let rec go () =
    match Kernel.accept t.proc t.listen_fd with
    | Ok (fd, _sock) ->
        Fd_map.set t.conns fd (Conn.create ~fd ~now:(now t));
        (* Both registrations, kept concurrently: the cheap switch. *)
        ignore (Kernel.fcntl_setsig t.proc fd ~signo:t.config.signo);
        Backend.add t.backend fd Pollmask.pollin;
        t.stats.Server_stats.accepted <- t.stats.Server_stats.accepted + 1;
        handle_conn_event t fd;
        go ()
    | Error `Eagain -> ()
    | Error `Emfile ->
        t.stats.Server_stats.emfile_drops <- t.stats.Server_stats.emfile_drops + 1;
        go ()
    | Error `Enobufs ->
        t.stats.Server_stats.enobufs_drops <- t.stats.Server_stats.enobufs_drops + 1;
        go ()
    | Error (`Ebadf | `Einval) -> ()
  in
  go ()

let handle_fd t fd = if fd = t.listen_fd then accept_pending t else handle_conn_event t fd

let sweep t =
  let n = Fd_map.length t.conns in
  Kernel.compute t.proc (Time.mul t.config.sweep_cost_per_conn n);
  let cutoff = Time.sub (now t) t.config.idle_timeout in
  (* Fd_map iterates in ascending fd order and tolerates removal of
     the current key, so expired connections close in-place — same
     close order as the old snapshot-and-sort, without the snapshot. *)
  Fd_map.iter t.conns (fun fd conn ->
      if Conn.last_activity conn <= cutoff then begin
        ignore (Kernel.close t.proc fd);
        drop_conn t fd;
        t.stats.Server_stats.timed_out_conns <- t.stats.Server_stats.timed_out_conns + 1
      end);
  t.next_sweep <- Time.add (now t) t.config.sweep_period

let switch_to_polling t =
  t.stats.Server_stats.overflow_recoveries <-
    t.stats.Server_stats.overflow_recoveries + 1;
  t.stats.Server_stats.mode_switches <- t.stats.Server_stats.mode_switches + 1;
  (* The interest set already lives in the kernel: recovery is a flush
     plus a mode flag, not a per-connection handoff. *)
  ignore (Kernel.flush_signals t.proc);
  t.mode <- Polling

let switch_to_signals t ~k =
  t.stats.Server_stats.mode_switches <- t.stats.Server_stats.mode_switches + 1;
  ignore (Kernel.flush_signals t.proc);
  (* Drain anything that became ready between the flush and now; its
     edges predate the flush so no signal will ever announce it. *)
  Backend.wait t.backend ~timeout:(Some Time.zero) ~k:(fun events ->
      List.iter (fun ev -> handle_fd t ev.Backend.fd) events;
      t.mode <- Signals;
      k ())

let rec loop t =
  if not t.stopped then begin
    let until_sweep = Time.max (Time.ns 1) (Time.sub t.next_sweep (now t)) in
    let continue () =
      if now t >= t.next_sweep then sweep t;
      Kernel.yield t.proc (fun () -> loop t)
    in
    match t.mode with
    | Signals ->
        Kernel.sigtimedwait4 t.proc ~max:t.config.sigtimedwait4_batch
          ~timeout:(Some until_sweep) ~k:(fun ds ->
            if not t.stopped then begin
              let overflowed =
                List.exists (function Rt_signal.Overflow -> true | Rt_signal.Signal _ -> false) ds
              in
              List.iter
                (function
                  | Rt_signal.Signal { fd; _ } -> handle_fd t fd
                  | Rt_signal.Overflow -> ())
                ds;
              (* A run of full batches means the queue is backing up:
                 switch before it overflows. *)
              if List.length ds >= t.config.sigtimedwait4_batch then
                t.full_batch_streak <- t.full_batch_streak + 1
              else t.full_batch_streak <- 0;
              if overflowed then switch_to_polling t
              else if t.full_batch_streak >= t.config.switch_streak then begin
                t.full_batch_streak <- 0;
                t.stats.Server_stats.mode_switches <-
                  t.stats.Server_stats.mode_switches + 1;
                ignore (Kernel.flush_signals t.proc);
                t.mode <- Polling
              end;
              continue ()
            end)
    | Polling ->
        Backend.wait t.backend ~timeout:(Some until_sweep) ~k:(fun events ->
            if not t.stopped then begin
              List.iter (fun ev -> handle_fd t ev.Backend.fd) events;
              if List.length events < t.config.low_watermark then
                switch_to_signals t ~k:continue
              else continue ()
            end)
  end

let start ~proc ?(config = default_config) () =
  match Kernel.listen proc ~backlog:config.backlog with
  | Error (`Emfile | `Ebadf | `Eagain | `Einval) -> Error `Emfile
  | Ok listen_fd -> (
      match Backend.devpoll ~max_events:config.max_events proc with
      | Error `Emfile -> Error `Emfile
      | Ok backend ->
          let listener =
            match Process.lookup_socket proc listen_fd with
            | Some s -> s
            | None -> assert false
          in
          let t =
            {
              proc;
              config;
              listen_fd;
              listener;
              backend;
              conns = Fd_map.create ~initial_capacity:256 ();
              stats = Server_stats.create ~sample_interval:config.sample_interval ();
              mode = Signals;
              full_batch_streak = 0;
              next_sweep = Time.add (Host.now (Process.host proc)) config.sweep_period;
              stopped = false;
            }
          in
          ignore (Kernel.fcntl_setsig proc listen_fd ~signo:config.signo);
          Backend.add backend listen_fd Pollmask.pollin;
          loop t;
          Ok t)

let listener t = t.listener
let stats t = t.stats
let connection_count t = Fd_map.length t.conns
let mode t = t.mode
let stop t = t.stopped <- true
