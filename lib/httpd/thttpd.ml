open Sio_sim
open Sio_kernel

type config = {
  backlog : int;
  conn : Conn.config;
  idle_timeout : Time.t;
  sweep_period : Time.t;
  sweep_cost_per_conn : Time.t;
  sample_interval : Time.t;
  max_events_per_iter : int;
}

let default_config =
  {
    backlog = 128;
    conn = Conn.default_config;
    idle_timeout = Time.s 60;
    sweep_period = Time.s 10;
    sweep_cost_per_conn = Time.us 2;
    sample_interval = Time.s 1;
    max_events_per_iter = 8;
  }

let rec take n = function
  | [] -> []
  | _ :: _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

type t = {
  proc : Process.t;
  backend : Backend.t;
  config : config;
  listen_fd : int;
  listener : Socket.t;
  conns : Conn.t Fd_map.t;
  stats : Server_stats.t;
  mutable next_sweep : Time.t;
  mutable stopped : bool;
}

let now t = Host.now (Process.host t.proc)

let drop_conn t fd =
  ignore (Fd_map.remove t.conns fd);
  Backend.remove t.backend fd

let accept_pending t =
  let rec go () =
    match Kernel.accept t.proc t.listen_fd with
    | Ok (fd, _sock) ->
        Fd_map.set t.conns fd (Conn.create ~fd ~now:(now t));
        Backend.add t.backend fd Pollmask.pollin;
        t.stats.Server_stats.accepted <- t.stats.Server_stats.accepted + 1;
        go ()
    | Error `Eagain -> ()
    | Error `Emfile ->
        (* Connection was dropped by the kernel; try the next one. *)
        t.stats.Server_stats.emfile_drops <- t.stats.Server_stats.emfile_drops + 1;
        go ()
    | Error `Enobufs ->
        (* Kernel memory exhausted; the connection was dropped. *)
        t.stats.Server_stats.enobufs_drops <- t.stats.Server_stats.enobufs_drops + 1;
        go ()
    | Error (`Ebadf | `Einval) -> ()
  in
  go ()

let handle_conn_event t fd =
  match Fd_map.find t.conns fd with
  | None -> t.stats.Server_stats.stale_events <- t.stats.Server_stats.stale_events + 1
  | Some conn -> (
      let was_sending = Conn.sending conn in
      match Conn.handle_event t.proc t.config.conn conn ~now:(now t) with
      | Conn.Replied n ->
          t.stats.Server_stats.bytes_sent <- t.stats.Server_stats.bytes_sent + n;
          Server_stats.record_reply t.stats ~now:(now t);
          drop_conn t fd
      | Conn.Again -> ()
      | Conn.Blocked n ->
          (* Response bigger than the send buffer: park the connection
             on POLLOUT and keep streaming on writable edges. *)
          t.stats.Server_stats.bytes_sent <- t.stats.Server_stats.bytes_sent + n;
          t.stats.Server_stats.partial_writes <-
            t.stats.Server_stats.partial_writes + 1;
          if not was_sending then Backend.modify t.backend fd Pollmask.pollout
      | Conn.Closed_by_peer ->
          t.stats.Server_stats.dropped_conns <- t.stats.Server_stats.dropped_conns + 1;
          drop_conn t fd)

(* Walk all connections, closing the ones idle past the timeout. This
   is thttpd's periodic timer: its cost scales with the number of open
   connections, active or not. *)
let sweep t =
  let n = Fd_map.length t.conns in
  Kernel.compute t.proc (Time.mul t.config.sweep_cost_per_conn n);
  let cutoff = Time.sub (now t) t.config.idle_timeout in
  (* Fd_map iterates in ascending fd order and tolerates removal of
     the current key, so expired connections close in-place — same
     close order as the old snapshot-and-sort, without the snapshot. *)
  Fd_map.iter t.conns (fun fd conn ->
      if Conn.last_activity conn <= cutoff then begin
        ignore (Kernel.close t.proc fd);
        drop_conn t fd;
        t.stats.Server_stats.timed_out_conns <- t.stats.Server_stats.timed_out_conns + 1
      end);
  t.next_sweep <- Time.add (now t) t.config.sweep_period

let rec loop t =
  if not t.stopped then begin
    let until_sweep = Time.max (Time.ns 1) (Time.sub t.next_sweep (now t)) in
    Backend.wait t.backend ~timeout:(Some until_sweep) ~k:(fun events ->
        if not t.stopped then begin
          (* Bounded per-iteration work: anything beyond the cap stays
             ready and reappears in the next level-triggered scan. *)
          List.iter
            (fun ev ->
              if ev.Backend.fd = t.listen_fd then accept_pending t
              else handle_conn_event t ev.Backend.fd)
            (take t.config.max_events_per_iter events);
          if now t >= t.next_sweep then sweep t;
          Kernel.yield t.proc (fun () -> loop t)
        end)
  end

let start ~proc ~backend ?(config = default_config) () =
  match Kernel.listen proc ~backlog:config.backlog with
  | Error (`Emfile | `Ebadf | `Eagain | `Einval) -> Error `Emfile
  | Ok listen_fd ->
      let listener =
        match Process.lookup_socket proc listen_fd with
        | Some s -> s
        | None -> assert false
      in
      let t =
        {
          proc;
          backend;
          config;
          listen_fd;
          listener;
          conns = Fd_map.create ~initial_capacity:256 ();
          stats = Server_stats.create ~sample_interval:config.sample_interval ();
          next_sweep = Time.add (Host.now (Process.host proc)) config.sweep_period;
          stopped = false;
        }
      in
      Backend.add backend listen_fd Pollmask.pollin;
      loop t;
      Ok t

let listener t = t.listener
let stats t = t.stats
let connection_count t = Fd_map.length t.conns
let config t = t.config
let stop t = t.stopped <- true
