(** Per-connection server state machine.

    Shared by every server in this library: accumulate request text
    until the headers are complete, spend the configured user-space
    CPU parsing and building the response, then stream the response
    out and close (HTTP/1.0, no keep-alive — the paper's workload).

    Responses larger than the socket's send-buffer capacity cannot be
    written in one call: the machine keeps a send state (total bytes,
    bytes accepted so far) and reports {!Blocked} so the server parks
    the connection on POLLOUT and calls {!handle_event} again on each
    writable edge until the response drains. *)

open Sio_sim
open Sio_kernel

(** How response bytes reach the wire. *)
type transmit =
  | Copy  (** write(): two boundary crossings, per-byte copy cost *)
  | Sendfile  (** {!Kernel.sendfile}: one kernel-internal pass *)
  | Ring
      (** {!Kernel.ring_send} with nothing copied: every byte pinned
          into the shared transmit ring, charged per page *)
  | Selective
      (** the Libra-style compromise: headers (user-generated, small,
          unaligned) copy through the buffer, the file body is pinned
          into the ring *)

type config = {
  doc_bytes : int;
      (** response body size when serving synthetically (paper: 6144) *)
  parse_cost : Time.t;  (** user CPU to parse a complete request *)
  respond_cost : Time.t;
      (** user CPU to locate the (cached) document and build headers *)
  read_spin_cost : Time.t;
      (** user CPU for an event that produced no complete request *)
  fs : Fs.t option;
      (** when set, documents come from the filesystem substrate: the
          requested path is stat'ed and read through the page cache,
          and unknown paths get a 404 *)
  transmit : transmit;
      (** send path for file-backed responses. The 404 page always
          takes the copy path — its body is user-generated text, not
          page cache data — and a ring attach refused by the memory
          budget also degrades to copy. *)
}

val not_found_body_bytes : int
(** Size of the 404 page served for unknown paths. *)

val default_config : config
(** Calibrated so one request costs ≈0.9 ms of CPU end to end on the
    default cost model (see DESIGN.md). *)

type t

val create : fd:int -> now:Time.t -> t

val with_fd : t -> fd:int -> t
(** The same connection state rebound to a new descriptor number —
    what happens when a connection is passed to another process over a
    UNIX-domain socket (phhttpd's overflow handoff). *)

val fd : t -> int
val last_activity : t -> Time.t
val touch : t -> now:Time.t -> unit

val sending : t -> bool
(** A response is partly sent: the server must watch POLLOUT (not
    POLLIN) for this descriptor and feed writable edges back into
    {!handle_event}. *)

type outcome =
  | Replied of int
      (** response complete: bytes of the {e final} chunk accepted
          this event (the whole response for single-write sends);
          connection closed *)
  | Again  (** request not complete yet; keep waiting for POLLIN *)
  | Blocked of int
      (** send buffer filled after accepting this many bytes: park the
          connection on POLLOUT and deliver writable edges here *)
  | Closed_by_peer  (** EOF, reset, or error; connection closed *)

val handle_event : Process.t -> config -> t -> now:Time.t -> outcome
(** Drive the state machine on a readiness event. While no response is
    pending this reads and parses; once a response has started, any
    event continues the send. The caller closes the descriptor and
    drops the connection on [Replied] and [Closed_by_peer] outcomes —
    this function has already issued the close() itself; on [Blocked]
    the caller must (on the first block) switch the descriptor's
    interest to POLLOUT and bump {!Server_stats.t.partial_writes}. *)
