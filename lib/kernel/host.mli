(** Per-host kernel context.

    Bundles what every kernel subsystem on one machine shares: the
    simulation engine, the host CPU, the cost model, the wait-queue
    wake policy, and a set of operation counters that the tests and
    ablation benches read (e.g. "how many driver poll callbacks did
    this run perform with and without hints?"). *)

open Sio_sim

type counters = {
  mutable syscalls : int;
  mutable driver_polls : int;  (** device-driver poll callbacks issued *)
  mutable hint_skips : int;
      (** driver callbacks avoided thanks to a hint/cache *)
  mutable wait_queue_wakes : int;
  mutable rt_enqueued : int;
  mutable rt_dropped : int;  (** RT signals lost to queue overflow *)
  mutable rt_overflows : int;  (** SIGIO overflow notifications raised *)
  mutable softirqs : int;
  mutable accepts : int;
  mutable connections_refused : int;
}

type mem_pool
(** A kernel-memory budget shared across several hosts (the shard
    cluster's shared-reservation mode): every {!mem_reserve} on a
    pooled host is admitted against one atomic counter, so the
    combined footprint honours a single limit even when the hosts
    simulate on separate domains. Admission stays all-or-nothing per
    reservation. Note on determinism: concurrent shards racing within
    one reservation of the limit can admit different connections run
    to run; with the limit partitioned per shard (no pool) or with
    shards run sequentially, admission is fully deterministic. *)

val shared_mem_pool : limit:int -> mem_pool
(** Raises [Invalid_argument] if [limit < 0]. *)

val pool_used : mem_pool -> int
val pool_peak : mem_pool -> int

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  costs : Cost_model.t;
  wake_policy : Wait_queue.wake_policy;
  counters : counters;
  hints_by_default : bool;
      (** whether freshly created sockets' drivers participate in
          /dev/poll hinting; the hints ablation switches this off *)
  arena : Conn_arena.t;  (** struct-of-arrays socket state store *)
  mem_limit : int;
      (** modeled kernel-memory budget in bytes; [max_int] = unlimited *)
  mem_pool : mem_pool option;
      (** shared budget this host additionally reserves against *)
  mutable mem_used : int;  (** bytes currently reserved *)
  mutable mem_peak : int;  (** high-water mark of [mem_used] *)
}

val create :
  engine:Engine.t ->
  ?costs:Cost_model.t ->
  ?wake_policy:Wait_queue.wake_policy ->
  ?infinitely_fast:bool ->
  ?hints_by_default:bool ->
  ?mem_limit:int ->
  ?mem_pool:mem_pool ->
  unit ->
  t
(** Defaults: {!Cost_model.default}, [Wake_all] (Linux 2.2 behaviour),
    finite CPU, hinting drivers, unlimited kernel memory, no shared
    pool. With [mem_pool], a reservation must clear both the host's
    own [mem_limit] and the pool. *)

val now : t -> Time.t

val charge : t -> Time.t -> Time.t
(** Charges CPU work, returning its completion time. *)

val charge_run : t -> cost:Time.t -> (unit -> unit) -> unit
(** Charges CPU work and schedules the continuation at completion. *)

val mem_reserve : t -> int -> bool
(** [mem_reserve t n] reserves [n] modeled kernel bytes; [false]
    (nothing reserved) when the budget would be exceeded. *)

val mem_release : t -> int -> unit

val fresh_counters : unit -> counters
