(** Byte-counted socket buffer.

    The simulation moves message *sizes*, not payload bytes, through
    socket buffers; actual request text rides alongside in the socket
    object. A buffer has a capacity and answers the two questions
    event notification cares about: is there anything to read, and is
    there room to write.

    The counter is backed by a Bigarray ring (cells marked on push,
    cleared on drain, head wrapping like a kernel socket buffer's) so
    the occupancy arithmetic is checkable against a real store, and by
    a {!high_water} mark recording the deepest fill ever reached —
    the buffer-sizing signal the streaming send path reads. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if capacity is not positive. *)

val capacity : t -> int
val level : t -> int
val space : t -> int

val push : t -> int -> int
(** [push b n] inserts as much of [n] bytes as fits; returns the
    number accepted. Raises [Invalid_argument] on negative [n]. *)

val drain : t -> int -> int
(** [drain b n] removes up to [n] bytes; returns the number removed. *)

val drain_all : t -> int

val is_empty : t -> bool
val is_full : t -> bool

val high_water : t -> int
(** Deepest [level] the buffer has ever reached. Starts at 0, only
    grows, and is never reset by draining — the signal for sizing
    send buffers against streaming workloads. *)

val occupied_cells : t -> int
(** Number of marked cells in the Bigarray backing store — always
    equal to {!level}; exposed so the model-equivalence tests can hold
    the ring arithmetic to the store, not just the counter. O(capacity). *)
