(* Per-connection shared transmit ring: the paper's mmap'ed DP_POLL
   result-region trick applied to the data plane. User space and the
   kernel share [slots] fixed slots of [slot_bytes]; a send pins its
   payload pages into the ring instead of copying them, so the kernel
   charges per *page* ([Cost_model.page_map_ns]) rather than per byte.

   Accounting is a byte stream chopped into slot-sized pages: [map]
   advances the mapped position, [unmap] the drained position, and a
   page is charged exactly when the mapped position crosses into it.
   The two positions only grow, so map/unmap page counts can never
   drift apart regardless of how sends and transmit completions
   interleave. [pinned] (mapped minus drained) is the ring's live
   footprint; it is bounded by [capacity] because callers pin at most
   what the send buffer accepted and the ring is sized to the send
   buffer.

   The ring's slots are real kernel memory: [create] reserves
   [slots * slot_bytes] against the host's modeled memory limit —
   the same admission control as the per-socket buffers — and refuses
   the attach when the budget is exhausted. [destroy] releases the
   reservation; the resource-pairing lint holds every module that
   mentions [create]/[map] to a live [destroy]/[unmap] mention. *)

type t = {
  host : Host.t;
  slots : int;
  slot_bytes : int;
  mutable mapped : int;  (* cumulative bytes mapped, monotone *)
  mutable drained : int;  (* cumulative bytes unmapped, monotone *)
  mutable pages_mapped : int;  (* cumulative pages charged *)
  mutable high_water : int;  (* max pinned bytes ever *)
  mutable alive : bool;
}

let capacity t = t.slots * t.slot_bytes
let pinned t = t.mapped - t.drained
let high_water t = t.high_water
let pages_mapped t = t.pages_mapped
let slot_bytes t = t.slot_bytes

(* Pages occupied by the first [pos] bytes of the stream. *)
let pages_upto t pos = (pos + t.slot_bytes - 1) / t.slot_bytes

let create ~host ~slots ~slot_bytes =
  if slots <= 0 then invalid_arg "Zc_ring.create: slots must be positive";
  if slot_bytes <= 0 then invalid_arg "Zc_ring.create: slot_bytes must be positive";
  if Host.mem_reserve host (slots * slot_bytes) then
    Some
      {
        host;
        slots;
        slot_bytes;
        mapped = 0;
        drained = 0;
        pages_mapped = 0;
        high_water = 0;
        alive = true;
      }
  else None

let map t ~bytes =
  if bytes < 0 then invalid_arg "Zc_ring.map: negative size";
  if not t.alive then 0
  else begin
    let bytes = Stdlib.min bytes (capacity t - pinned t) in
    let pages = pages_upto t (t.mapped + bytes) - pages_upto t t.mapped in
    t.mapped <- t.mapped + bytes;
    t.pages_mapped <- t.pages_mapped + pages;
    if pinned t > t.high_water then t.high_water <- pinned t;
    pages
  end

let unmap t ~bytes =
  if bytes < 0 then invalid_arg "Zc_ring.unmap: negative size";
  if not t.alive then 0
  else begin
    let bytes = Stdlib.min bytes (pinned t) in
    let pages = pages_upto t (t.drained + bytes) - pages_upto t t.drained in
    t.drained <- t.drained + bytes;
    pages
  end

let destroy t =
  if t.alive then begin
    t.alive <- false;
    Host.mem_release t.host (capacity t)
  end
