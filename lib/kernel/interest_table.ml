type interest = {
  fd : int;
  mutable events : Pollmask.t;
  mutable hint : Pollmask.t;
  mutable cached : Pollmask.t option;
}

type t = { mutable buckets : interest list array; mutable count : int }

let create ?(initial_buckets = 8) () =
  if initial_buckets <= 0 then
    invalid_arg "Interest_table.create: bucket count must be positive";
  { buckets = Array.make initial_buckets []; count = 0 }

let length t = t.count
let bucket_count t = Array.length t.buckets

(* Fibonacci hashing of the fd; good spread for sequential fds. *)
let slot t fd = fd * 0x61c88647 land max_int mod Array.length t.buckets

let find t fd =
  let rec go = function
    | [] -> None
    | i :: rest -> if i.fd = fd then Some i else go rest
  in
  go t.buckets.(slot t fd)

let resize_if_needed t =
  if t.count >= 2 * Array.length t.buckets then begin
    let old = t.buckets in
    t.buckets <- Array.make (2 * Array.length old) [];
    Array.iter
      (fun chain ->
        List.iter
          (fun i ->
            let s = slot t i.fd in
            t.buckets.(s) <- i :: t.buckets.(s))
          chain)
      old
  end

let add_new t fd events =
  let s = slot t fd in
  t.buckets.(s) <- { fd; events; hint = Pollmask.empty; cached = None } :: t.buckets.(s);
  t.count <- t.count + 1;
  resize_if_needed t

let set t ~fd ~events =
  match find t fd with
  | Some i ->
      i.events <- events;
      i.hint <- Pollmask.empty;
      i.cached <- None;
      `Modified
  | None ->
      add_new t fd events;
      `Added

let set_solaris t ~fd ~events =
  match find t fd with
  | Some i ->
      i.events <- Pollmask.union i.events events;
      `Modified
  | None ->
      add_new t fd events;
      `Added

let remove t fd =
  let s = slot t fd in
  let before = List.length t.buckets.(s) in
  t.buckets.(s) <- List.filter (fun i -> i.fd <> fd) t.buckets.(s);
  let removed = before - List.length t.buckets.(s) in
  t.count <- t.count - removed;
  removed > 0

let iter t f = Array.iter (fun chain -> List.iter f chain) t.buckets

let iter_while t ~f =
  let n = Array.length t.buckets in
  let rec go_chain = function [] -> true | i :: rest -> f i && go_chain rest in
  let rec go_bucket b = b >= n || (go_chain t.buckets.(b) && go_bucket (b + 1)) in
  ignore (go_bucket 0)

let fold t ~init ~f =
  Array.fold_left (fun acc chain -> List.fold_left f acc chain) init t.buckets

let mean_bucket_occupancy t = float_of_int t.count /. float_of_int (Array.length t.buckets)
