(* A socket is a thin generation-stamped handle over the host's
   connection arena: the hot scalars (state, buffer levels, flags)
   live in [Conn_arena] columns, and everything pointer-shaped
   (closures, payload text, the accept queue) lives in a lazily
   created cold record hanging off the arena's side table. Closing a
   socket frees its slot, which stales every outstanding handle in
   O(1); stale handles read as [Closed]/POLLNVAL and every mutating
   operation on them is inert. *)

type state = Listening | Established | Peer_closed | Reset | Closed

type t = { host : Host.t; slot : int; gen : int; id : int }

type waiter = { wake : Pollmask.t -> unit }

(* Arena state-column encoding; 0 marks a free slot. *)
let st_listening = 1
let st_established = 2
let st_peer_closed = 3
let st_reset = 4
let st_closed = 5

let int_of_state = function
  | Listening -> st_listening
  | Established -> st_established
  | Peer_closed -> st_peer_closed
  | Reset -> st_reset
  | Closed -> st_closed

let state_of_int = function
  | 1 -> Listening
  | 2 -> Established
  | 3 -> Peer_closed
  | 4 -> Reset
  | _ -> Closed

let flag_hints = 1
let flag_mem = 2

(* Token-addressed registration slabs for observers and watchers.
   Tokens are minted monotonically, entries stay token-sorted, and
   removal marks the entry dead after a binary search — O(log n)
   instead of the old O(n) [List.filter] rebuild — with dead entries
   compacted away before the slab grows. Iteration is newest-first to
   preserve the prepend-list semantics the seed had: additions made
   during a notification are not seen by that notification, removals
   are (entry records are shared between the live slab and a walk in
   progress). *)
module Regs = struct
  type 'f entry = { tok : int; mutable fn : 'f option }

  type 'f t = {
    mutable entries : 'f entry array; (* token-ascending; used prefix [0, len) *)
    mutable len : int;
    mutable count : int; (* live entries *)
    mutable next : int; (* next token to mint *)
  }

  let create () = { entries = [||]; len = 0; count = 0; next = 0 }

  let compact t =
    let j = ref 0 in
    for i = 0 to t.len - 1 do
      let e = t.entries.(i) in
      match e.fn with
      | Some _ ->
          t.entries.(!j) <- e;
          incr j
      | None -> ()
    done;
    t.len <- !j

  let add t f =
    let tok = t.next in
    t.next <- tok + 1;
    if t.len = Array.length t.entries then begin
      if t.count < t.len then compact t;
      if t.len = Array.length t.entries then begin
        let cap = Stdlib.max 4 (2 * Array.length t.entries) in
        let entries = Array.make cap { tok = 0; fn = None } in
        Array.blit t.entries 0 entries 0 t.len;
        t.entries <- entries
      end
    end;
    t.entries.(t.len) <- { tok; fn = Some f };
    t.len <- t.len + 1;
    t.count <- t.count + 1;
    tok

  let remove t tok =
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let e = t.entries.(mid) in
      if e.tok = tok then begin
        (match e.fn with
        | Some _ ->
            e.fn <- None;
            t.count <- t.count - 1
        | None -> ());
        lo := !hi + 1
      end
      else if e.tok < tok then lo := mid + 1
      else hi := mid - 1
    done

  let count t = t.count

  let iter_rev t f =
    let entries = t.entries and len = t.len in
    for i = len - 1 downto 0 do
      match entries.(i).fn with Some g -> f g | None -> ()
    done
end

type cold_rec = {
  accept_q : t Queue.t;
  waitq : waiter Wait_queue.t;
  observers : (Pollmask.t -> unit) Regs.t;
  watchers : (unit -> unit) Regs.t;
  mutable payload : Buffer.t option;
  mutable on_send : int -> unit;
  mutable on_close : unit -> unit;
  mutable ring : Zc_ring.t option;
  (* Per-instance backend state (epoll interest, /dev/poll backmap
     tokens, RT-signal binding), keyed by attach key. Fixed slots
     rather than an assoc list: every lookup sits on certified
     O(ready)/O(active) scan paths, so it must be structurally O(1) —
     and a socket is only ever watched by its process's one backend
     plus at most an RT-signal binding (hybrid's polling mode), so
     three slots never fill. Key 0 = slot empty. Dropped wholesale
     when the arena slot frees. *)
  mutable a0_key : int;
  mutable a0 : Conn_arena.cold;
  mutable a1_key : int;
  mutable a1 : Conn_arena.cold;
  mutable a2_key : int;
  mutable a2 : Conn_arena.cold;
}

type Conn_arena.cold += No_attachment

type Conn_arena.cold += Sock_cold of cold_rec

let arena t = t.host.Host.arena
let live t = Conn_arena.is_live (arena t) ~slot:t.slot ~gen:t.gen

let cold_opt t =
  match (arena t).Conn_arena.cold.(t.slot) with
  | Some (Sock_cold c) -> Some c
  | _ -> None

(* Only called on live handles. *)
let cold t =
  match (arena t).Conn_arena.cold.(t.slot) with
  | Some (Sock_cold c) -> c
  | _ ->
      let c =
        {
          accept_q = Queue.create ();
          waitq = Wait_queue.create ();
          observers = Regs.create ();
          watchers = Regs.create ();
          payload = None;
          on_send = (fun _ -> ());
          on_close = (fun () -> ());
          ring = None;
          a0_key = 0;
          a0 = No_attachment;
          a1_key = 0;
          a1 = No_attachment;
          a2_key = 0;
          a2 = No_attachment;
        }
      in
      (arena t).Conn_arena.cold.(t.slot) <- Some (Sock_cold c);
      c

(* Atomic so experiments running on separate domains (Domain_pool)
   never mint duplicate ids; the values themselves carry no meaning
   beyond identity within one host. *)
let next_id = Atomic.make 0

let make ~host ~backlog st =
  let a = host.Host.arena in
  let slot = Conn_arena.alloc a in
  let id = 1 + Atomic.fetch_and_add next_id 1 in
  a.Conn_arena.st.{slot} <- int_of_state st;
  a.Conn_arena.flags.{slot} <-
    (if host.Host.hints_by_default then flag_hints else 0);
  a.Conn_arena.sock_id.{slot} <- id;
  a.Conn_arena.backlog.{slot} <- backlog;
  a.Conn_arena.rcv_cap.{slot} <- 65536;
  a.Conn_arena.snd_cap.{slot} <- 65536;
  { host; slot; gen = a.Conn_arena.gen.{slot}; id }

let create_listening ~host ~backlog =
  if backlog <= 0 then invalid_arg "Socket.create_listening: backlog must be positive";
  make ~host ~backlog Listening

let create_established ~host = make ~host ~backlog:0 Established

let id t = t.id
let state t = if live t then state_of_int (arena t).Conn_arena.st.{t.slot} else Closed
let host t = t.host

let hints_supported t =
  live t && (arena t).Conn_arena.flags.{t.slot} land flag_hints <> 0

let notify_watchers t =
  match cold_opt t with
  | Some c -> Regs.iter_rev c.watchers (fun f -> f ())
  | None -> ()

(* Toggling hint support invalidates any idle certification a backend
   derived from it, so watchers must re-examine the socket. *)
let set_hints_supported t v =
  if live t then begin
    let a = arena t in
    let f = a.Conn_arena.flags.{t.slot} in
    a.Conn_arena.flags.{t.slot} <-
      (if v then f lor flag_hints else f land lnot flag_hints);
    notify_watchers t
  end

let status t =
  let open Pollmask in
  if not (live t) then pollnval
  else begin
    let a = arena t in
    let slot = t.slot in
    match a.Conn_arena.st.{slot} with
    | 1 (* Listening *) -> (
        match cold_opt t with
        | Some c when not (Queue.is_empty c.accept_q) -> pollin
        | Some _ | None -> empty)
    | 2 (* Established *) ->
        let r = if a.Conn_arena.rcv_level.{slot} = 0 then empty else pollin in
        let w =
          if a.Conn_arena.snd_cap.{slot} - a.Conn_arena.snd_level.{slot} > 0 then
            pollout
          else empty
        in
        union r w
    | 3 (* Peer_closed *) ->
        (* Readable: either buffered bytes or EOF. Half-close still
           allows writing. *)
        let w =
          if a.Conn_arena.snd_cap.{slot} - a.Conn_arena.snd_level.{slot} > 0 then
            pollout
          else empty
        in
        union (union pollin pollhup) w
    | 4 (* Reset *) -> union pollerr pollhup
    | _ (* Closed *) -> pollnval
  end

let driver_poll t =
  let c = t.host.Host.counters in
  c.Host.driver_polls <- c.Host.driver_polls + 1;
  ignore (Host.charge t.host t.host.Host.costs.Cost_model.driver_poll_callback);
  status t

let register_waiter t w = if live t then Wait_queue.register (cold t).waitq w

let unregister_waiter t w =
  match if live t then cold_opt t else None with
  | Some c -> Wait_queue.unregister c.waitq w
  | None -> false

let subscribe t f =
  if not (live t) then 0
  else begin
    let tok = Regs.add (cold t).observers f in
    (arena t).Conn_arena.obs_next.{t.slot} <- tok + 1;
    tok
  end

let unsubscribe t token =
  if live t then
    match cold_opt t with Some c -> Regs.remove c.observers token | None -> ()

let add_watcher t f =
  if not (live t) then 0
  else begin
    let tok = Regs.add (cold t).watchers f in
    (arena t).Conn_arena.watch_next.{t.slot} <- tok + 1;
    tok
  end

let remove_watcher t token =
  if live t then
    match cold_opt t with Some c -> Regs.remove c.watchers token | None -> ()

let waiter_count t =
  match if live t then cold_opt t else None with
  | Some c -> Wait_queue.length c.waitq
  | None -> 0

let observer_count t =
  match if live t then cold_opt t else None with
  | Some c -> Regs.count c.observers
  | None -> 0

(* Post a readiness edge: wake classic-poll sleepers (charging wake
   cost per task) and notify observers (charging the backmap read lock
   when the driver participates in hinting). Only ever called on a
   live socket. *)
let post t mask =
  match cold_opt t with
  | None -> ()
  | Some c ->
      let costs = t.host.Host.costs in
      let counters = t.host.Host.counters in
      Regs.iter_rev c.watchers (fun f -> f ());
      let woken =
        Wait_queue.wake c.waitq ~policy:t.host.Host.wake_policy (fun w ->
            counters.Host.wait_queue_wakes <- counters.Host.wait_queue_wakes + 1;
            ignore (Host.charge t.host costs.Cost_model.wait_queue_wake);
            w.wake mask)
      in
      ignore woken;
      if Regs.count c.observers > 0 then begin
        if hints_supported t then
          ignore (Host.charge t.host costs.Cost_model.backmap_read_lock);
        Regs.iter_rev c.observers (fun f -> f mask)
      end

let deliver t ~bytes_len ~payload =
  if bytes_len < 0 then invalid_arg "Sock_buf.push: negative size";
  if not (live t) then 0
  else begin
    let a = arena t in
    let slot = t.slot in
    match a.Conn_arena.st.{slot} with
    | 2 | 3 ->
        let costs = t.host.Host.costs in
        let counters = t.host.Host.counters in
        counters.Host.softirqs <- counters.Host.softirqs + 1;
        ignore (Host.charge t.host costs.Cost_model.softirq_per_packet);
        let level = a.Conn_arena.rcv_level.{slot} in
        let was_empty = level = 0 in
        let accepted = Stdlib.min bytes_len (a.Conn_arena.rcv_cap.{slot} - level) in
        a.Conn_arena.rcv_level.{slot} <- level + accepted;
        if String.length payload > 0 then begin
          let c = cold t in
          let buf =
            match c.payload with
            | Some b -> b
            | None ->
                let b = Buffer.create 64 in
                c.payload <- Some b;
                b
          in
          Buffer.add_string buf payload
        end;
        if accepted > 0 && was_empty then post t Pollmask.pollin;
        accepted
    | _ -> 0
  end

let enqueue_accept t peer =
  if not (live t) then false
  else begin
    let a = arena t in
    match a.Conn_arena.st.{t.slot} with
    | 1 ->
        let c = cold t in
        if Queue.length c.accept_q >= a.Conn_arena.backlog.{t.slot} then begin
          let counters = t.host.Host.counters in
          counters.Host.connections_refused <-
            counters.Host.connections_refused + 1;
          false
        end
        else begin
          let was_empty = Queue.is_empty c.accept_q in
          Queue.add peer c.accept_q;
          if was_empty then post t Pollmask.pollin;
          true
        end
    | _ -> false
  end

let peer_closed t =
  if live t then begin
    let a = arena t in
    match a.Conn_arena.st.{t.slot} with
    | 2 ->
        a.Conn_arena.st.{t.slot} <- st_peer_closed;
        post t (Pollmask.union Pollmask.pollin Pollmask.pollhup)
    | _ -> ()
  end

let reset t =
  if live t then begin
    let a = arena t in
    match a.Conn_arena.st.{t.slot} with
    | 1 | 2 | 3 ->
        a.Conn_arena.st.{t.slot} <- st_reset;
        post t Pollmask.pollerr
    | _ -> ()
  end

let release_send_space t n =
  if n > 0 && live t then begin
    let a = arena t in
    let slot = t.slot in
    let level = a.Conn_arena.snd_level.{slot} in
    let was_full = a.Conn_arena.snd_cap.{slot} - level = 0 in
    let level' = level - Stdlib.min n level in
    a.Conn_arena.snd_level.{slot} <- level';
    (* Transmit completion unpins ring pages the wire has carried.
       The send buffer drains FIFO and copied-through bytes (the
       selective mode's headers) sit in front of mapped ones, so
       keeping [pinned <= level'] unpins exactly the mapped bytes
       that have left the buffer. *)
    (match cold_opt t with
    | Some { ring = Some r; _ } ->
        let pinned = Zc_ring.pinned r in
        if pinned > level' then ignore (Zc_ring.unmap r ~bytes:(pinned - level'))
    | Some _ | None -> ());
    match a.Conn_arena.st.{slot} with
    | 2 | 3 -> if was_full then post t Pollmask.pollout
    | _ -> ()
  end

let set_transport t ~on_send ~on_close =
  if live t then begin
    let c = cold t in
    c.on_send <- on_send;
    c.on_close <- on_close
  end

let transport_send t n =
  match if live t then cold_opt t else None with
  | Some c -> c.on_send n
  | None -> ()

let read_all t =
  if not (live t) then (0, "")
  else begin
    let a = arena t in
    let bytes = a.Conn_arena.rcv_level.{t.slot} in
    a.Conn_arena.rcv_level.{t.slot} <- 0;
    let text =
      match cold_opt t with
      | Some { payload = Some b; _ } ->
          let s = Buffer.contents b in
          Buffer.clear b;
          s
      | Some _ | None -> ""
    in
    (bytes, text)
  end

let write_reserve t n =
  if n < 0 then invalid_arg "Sock_buf.push: negative size";
  if not (live t) then 0
  else begin
    let a = arena t in
    let slot = t.slot in
    match a.Conn_arena.st.{slot} with
    | 2 | 3 ->
        let level = a.Conn_arena.snd_level.{slot} in
        let accepted = Stdlib.min n (a.Conn_arena.snd_cap.{slot} - level) in
        a.Conn_arena.snd_level.{slot} <- level + accepted;
        accepted
    | _ -> 0
  end

(* Shared-ring transmit. The ring is sized to the send buffer (one
   slot-page granule at a time, [snd_cap] total), so a successful
   [ring_reserve] can always pin what the buffer accepted. This module
   owns both halves of the ring's lifecycle pairs: [ring_attach]
   creates ([Zc_ring.create]) and [close]/[discard] destroy
   ([Zc_ring.destroy]); [ring_reserve] maps and [release_send_space]
   unmaps. *)
let ring_attach t ~slot_bytes =
  if slot_bytes <= 0 then invalid_arg "Socket.ring_attach: slot_bytes must be positive";
  if not (live t) then false
  else begin
    let a = arena t in
    match a.Conn_arena.st.{t.slot} with
    | 2 | 3 -> (
        let c = cold t in
        match c.ring with
        | Some _ -> true
        | None ->
            let cap = a.Conn_arena.snd_cap.{t.slot} in
            let slots = Stdlib.max 1 ((cap + slot_bytes - 1) / slot_bytes) in
            (match Zc_ring.create ~host:t.host ~slots ~slot_bytes with
            | Some r ->
                c.ring <- Some r;
                true
            | None -> false))
    | _ -> false
  end

let ring t =
  match if live t then cold_opt t else None with
  | Some c -> c.ring
  | None -> None

(* Like [write_reserve], but the accepted bytes beyond the first
   [copy_bytes] are pinned into the transmit ring; returns the bytes
   accepted and the pages freshly occupied (for the caller to charge).
   [None] when no ring is attached. *)
let ring_reserve t n ~copy_bytes =
  if n < 0 || copy_bytes < 0 then invalid_arg "Socket.ring_reserve: negative size";
  match if live t then cold_opt t else None with
  | None | Some { ring = None; _ } -> None
  | Some { ring = Some r; _ } ->
      let a = arena t in
      let slot = t.slot in
      (match a.Conn_arena.st.{slot} with
      | 2 | 3 ->
          let level = a.Conn_arena.snd_level.{slot} in
          let accepted = Stdlib.min n (a.Conn_arena.snd_cap.{slot} - level) in
          a.Conn_arena.snd_level.{slot} <- level + accepted;
          let mapped = Stdlib.max 0 (accepted - copy_bytes) in
          let pages = Zc_ring.map r ~bytes:mapped in
          Some (accepted, pages)
      | _ -> Some (0, 0))

let accept_pop t =
  if live t && (arena t).Conn_arena.st.{t.slot} = st_listening then
    match cold_opt t with Some c -> Queue.take_opt c.accept_q | None -> None
  else None

let accept_queue_length t =
  match if live t then cold_opt t else None with
  | Some c -> Queue.length c.accept_q
  | None -> 0

(* Kernel-memory accounting (modeled): accept() reserves the fixed
   socket struct plus both buffer capacities; close/discard release
   it. The charged flag makes release idempotent. The resource-pairing
   lint rule holds every [Host.mem_reserve] caller outside Host to the
   matching [Host.mem_release]: this module satisfies the obligation
   because both [close] and [discard] funnel through
   [release_kernel_memory], and those release sites must stay live —
   a release reachable only from dead code does not discharge it. *)
let reserve_kernel_memory t =
  if not (live t) then false
  else begin
    let a = arena t in
    let slot = t.slot in
    if a.Conn_arena.flags.{slot} land flag_mem <> 0 then true
    else begin
      let bytes =
        t.host.Host.costs.Cost_model.sock_struct_bytes
        + a.Conn_arena.rcv_cap.{slot}
        + a.Conn_arena.snd_cap.{slot}
      in
      if Host.mem_reserve t.host bytes then begin
        a.Conn_arena.flags.{slot} <- a.Conn_arena.flags.{slot} lor flag_mem;
        a.Conn_arena.mem_bytes.{slot} <- bytes;
        true
      end
      else false
    end
  end

let release_kernel_memory t =
  let a = arena t in
  let slot = t.slot in
  if a.Conn_arena.flags.{slot} land flag_mem <> 0 then begin
    a.Conn_arena.flags.{slot} <- a.Conn_arena.flags.{slot} land lnot flag_mem;
    Host.mem_release t.host a.Conn_arena.mem_bytes.{slot};
    a.Conn_arena.mem_bytes.{slot} <- 0
  end

let kernel_memory_bytes t =
  if live t then (arena t).Conn_arena.mem_bytes.{t.slot} else 0

(* Arena-native per-connection backend state. Each kernel facility
   that used to keep a side table of records (epoll's interest table,
   /dev/poll's backmap subscriptions, the RT-signal bindings) mints
   one key per instance and hangs its per-connection record off the
   socket's cold slot instead; freeing the slot drops every
   attachment with it, so backend state can never outlive the
   connection it describes. *)
let next_attach_key = Atomic.make 0
let new_attach_key () = 1 + Atomic.fetch_and_add next_attach_key 1

let attach t ~key v =
  if live t then begin
    let c = cold t in
    if c.a0_key = key || c.a0_key = 0 then begin
      c.a0_key <- key;
      c.a0 <- v
    end
    else if c.a1_key = key || c.a1_key = 0 then begin
      c.a1_key <- key;
      c.a1 <- v
    end
    else if c.a2_key = key || c.a2_key = 0 then begin
      c.a2_key <- key;
      c.a2 <- v
    end
    else invalid_arg "Socket.attach: attachment slots exhausted"
  end

let attachment t ~key =
  match if live t then cold_opt t else None with
  | Some c ->
      if c.a0_key = key then Some c.a0
      else if c.a1_key = key then Some c.a1
      else if c.a2_key = key then Some c.a2
      else None
  | None -> None

let detach t ~key =
  if live t then
    match cold_opt t with
    | Some c ->
        if c.a0_key = key then begin
          c.a0_key <- 0;
          c.a0 <- No_attachment
        end
        else if c.a1_key = key then begin
          c.a1_key <- 0;
          c.a1 <- No_attachment
        end
        else if c.a2_key = key then begin
          c.a2_key <- 0;
          c.a2 <- No_attachment
        end
    | None -> ()

let set_tcp_link t cid = if live t then (arena t).Conn_arena.tcp_id.{t.slot} <- cid
let tcp_link t = if live t then (arena t).Conn_arena.tcp_id.{t.slot} else 0

(* Reclaim a connection that never reached an application fd (refused
   handshake, accept-path drop) with zero observable behaviour: no
   edge is posted, no hook runs, no cost is charged — only the memory
   reservation and the slot come back. *)
let release_ring t =
  match cold_opt t with
  | Some ({ ring = Some r; _ } as c) ->
      Zc_ring.destroy r;
      c.ring <- None
  | Some _ | None -> ()

let discard t =
  if live t then begin
    release_ring t;
    release_kernel_memory t;
    Conn_arena.free (arena t) t.slot
  end

let close t =
  if live t then begin
    let a = arena t in
    match a.Conn_arena.st.{t.slot} with
    | 5 -> ()
    | _ ->
        a.Conn_arena.st.{t.slot} <- st_closed;
        a.Conn_arena.rcv_level.{t.slot} <- 0;
        a.Conn_arena.snd_level.{t.slot} <- 0;
        let on_close =
          match cold_opt t with
          | Some c ->
              (match c.payload with Some b -> Buffer.clear b | None -> ());
              Queue.clear c.accept_q;
              c.on_close
          | None -> fun () -> ()
        in
        post t Pollmask.pollnval;
        on_close ();
        (* Release everything the connection pinned: the transmit
           ring, the memory reservation, the cold record (closures,
           payload buffer) and the slot itself. Outstanding handles go
           stale and read as [Closed]. *)
        release_ring t;
        release_kernel_memory t;
        Conn_arena.free a t.slot
  end

let pp_state ppf = function
  | Listening -> Fmt.string ppf "LISTENING"
  | Established -> Fmt.string ppf "ESTABLISHED"
  | Peer_closed -> Fmt.string ppf "PEER_CLOSED"
  | Reset -> Fmt.string ppf "RESET"
  | Closed -> Fmt.string ppf "CLOSED"
