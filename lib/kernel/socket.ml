
type state = Listening | Established | Peer_closed | Reset | Closed

type t = {
  host : Host.t;
  id : int;
  backlog : int;
  mutable state : state;
  rcv : Sock_buf.t;
  snd : Sock_buf.t;
  accept_queue : t Queue.t;
  wait_queue : waiter Wait_queue.t;
  mutable observers : (int * (Pollmask.t -> unit)) list;
  mutable next_observer : int;
  (* Host-only bookkeeping channel: ready-set maintainers learn that
     this socket may have changed state, at zero modeled cost. Invoked
     before the wait queue wakes so a sleeper's synchronous rescan
     already sees fresh activity marks. *)
  mutable watchers : (int * (unit -> unit)) list;
  mutable next_watcher : int;
  mutable hints_supported : bool;
  mutable payload : Buffer.t;
  mutable on_send : int -> unit;
  mutable on_close : unit -> unit;
}

and waiter = { wake : Pollmask.t -> unit }

(* Atomic so experiments running on separate domains (Domain_pool)
   never mint duplicate ids; the values themselves carry no meaning
   beyond identity within one host. *)
let next_id = Atomic.make 0

let make ~host ~backlog state =
  {
    host;
    id = 1 + Atomic.fetch_and_add next_id 1;
    backlog;
    state;
    rcv = Sock_buf.create ~capacity:65536;
    snd = Sock_buf.create ~capacity:65536;
    accept_queue = Queue.create ();
    wait_queue = Wait_queue.create ();
    observers = [];
    next_observer = 0;
    watchers = [];
    next_watcher = 0;
    hints_supported = host.Host.hints_by_default;
    payload = Buffer.create 64;
    on_send = (fun _ -> ());
    on_close = (fun () -> ());
  }

let create_listening ~host ~backlog =
  if backlog <= 0 then invalid_arg "Socket.create_listening: backlog must be positive";
  make ~host ~backlog Listening

let create_established ~host = make ~host ~backlog:0 Established

let id t = t.id
let state t = t.state
let host t = t.host
let hints_supported t = t.hints_supported

let notify_watchers t = List.iter (fun (_, f) -> f ()) t.watchers

(* Toggling hint support invalidates any idle certification a backend
   derived from it, so watchers must re-examine the socket. *)
let set_hints_supported t v =
  t.hints_supported <- v;
  notify_watchers t

let status t =
  let open Pollmask in
  match t.state with
  | Listening -> if Queue.is_empty t.accept_queue then empty else pollin
  | Established ->
      let r = if Sock_buf.is_empty t.rcv then empty else pollin in
      let w = if Sock_buf.space t.snd > 0 then pollout else empty in
      union r w
  | Peer_closed ->
      (* Readable: either buffered bytes or EOF. Half-close still
         allows writing. *)
      let w = if Sock_buf.space t.snd > 0 then pollout else empty in
      union (union pollin pollhup) w
  | Reset -> union Pollmask.pollerr Pollmask.pollhup
  | Closed -> pollnval

let driver_poll t =
  let c = t.host.Host.counters in
  c.Host.driver_polls <- c.Host.driver_polls + 1;
  ignore (Host.charge t.host t.host.Host.costs.Cost_model.driver_poll_callback);
  status t

let register_waiter t w = Wait_queue.register t.wait_queue w
let unregister_waiter t w = Wait_queue.unregister t.wait_queue w

let subscribe t f =
  let token = t.next_observer in
  t.next_observer <- token + 1;
  t.observers <- (token, f) :: t.observers;
  token

let unsubscribe t token =
  t.observers <- List.filter (fun (tok, _) -> tok <> token) t.observers

let add_watcher t f =
  let token = t.next_watcher in
  t.next_watcher <- token + 1;
  t.watchers <- (token, f) :: t.watchers;
  token

let remove_watcher t token =
  t.watchers <- List.filter (fun (tok, _) -> tok <> token) t.watchers

let waiter_count t = Wait_queue.length t.wait_queue
let observer_count t = List.length t.observers

(* Post a readiness edge: wake classic-poll sleepers (charging wake
   cost per task) and notify observers (charging the backmap read lock
   when the driver participates in hinting). *)
let post t mask =
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  notify_watchers t;
  let woken =
    Wait_queue.wake t.wait_queue ~policy:t.host.Host.wake_policy (fun w ->
        counters.Host.wait_queue_wakes <- counters.Host.wait_queue_wakes + 1;
        ignore (Host.charge t.host costs.Cost_model.wait_queue_wake);
        w.wake mask)
  in
  ignore woken;
  match t.observers with
  | [] -> ()
  | observers ->
      if t.hints_supported then
        ignore (Host.charge t.host costs.Cost_model.backmap_read_lock);
      List.iter (fun (_, f) -> f mask) observers

let deliver t ~bytes_len ~payload =
  match t.state with
  | Established | Peer_closed ->
      let costs = t.host.Host.costs in
      let counters = t.host.Host.counters in
      counters.Host.softirqs <- counters.Host.softirqs + 1;
      ignore (Host.charge t.host costs.Cost_model.softirq_per_packet);
      let was_empty = Sock_buf.is_empty t.rcv in
      let accepted = Sock_buf.push t.rcv bytes_len in
      if String.length payload > 0 then Buffer.add_string t.payload payload;
      if accepted > 0 && was_empty then post t Pollmask.pollin;
      accepted
  | Listening | Reset | Closed -> 0

let enqueue_accept t peer =
  match t.state with
  | Listening ->
      if Queue.length t.accept_queue >= t.backlog then begin
        let counters = t.host.Host.counters in
        counters.Host.connections_refused <- counters.Host.connections_refused + 1;
        false
      end
      else begin
        let was_empty = Queue.is_empty t.accept_queue in
        Queue.add peer t.accept_queue;
        if was_empty then post t Pollmask.pollin;
        true
      end
  | Established | Peer_closed | Reset | Closed -> false

let peer_closed t =
  match t.state with
  | Established ->
      t.state <- Peer_closed;
      post t (Pollmask.union Pollmask.pollin Pollmask.pollhup)
  | Listening | Peer_closed | Reset | Closed -> ()

let reset t =
  match t.state with
  | Established | Peer_closed | Listening ->
      t.state <- Reset;
      post t Pollmask.pollerr
  | Reset | Closed -> ()

let release_send_space t n =
  if n > 0 then begin
    let was_full = Sock_buf.space t.snd = 0 in
    let _ = Sock_buf.drain t.snd n in
    match t.state with
    | Established | Peer_closed -> if was_full then post t Pollmask.pollout
    | Listening | Reset | Closed -> ()
  end

let set_transport t ~on_send ~on_close =
  t.on_send <- on_send;
  t.on_close <- on_close

let transport_send t n = t.on_send n

let read_all t =
  let bytes = Sock_buf.drain_all t.rcv in
  let text = Buffer.contents t.payload in
  Buffer.clear t.payload;
  (bytes, text)

let write_reserve t n =
  match t.state with
  | Established | Peer_closed -> Sock_buf.push t.snd n
  | Listening | Reset | Closed -> 0

let accept_pop t =
  match t.state with
  | Listening -> Queue.take_opt t.accept_queue
  | Established | Peer_closed | Reset | Closed -> None

let accept_queue_length t = Queue.length t.accept_queue

let close t =
  match t.state with
  | Closed -> ()
  | Listening | Established | Peer_closed | Reset ->
      t.state <- Closed;
      let _ = Sock_buf.drain_all t.rcv in
      let _ = Sock_buf.drain_all t.snd in
      Buffer.clear t.payload;
      Queue.clear t.accept_queue;
      post t Pollmask.pollnval;
      t.on_close ()

let pp_state ppf = function
  | Listening -> Fmt.string ppf "LISTENING"
  | Established -> Fmt.string ppf "ESTABLISHED"
  | Peer_closed -> Fmt.string ppf "PEER_CLOSED"
  | Reset -> Fmt.string ppf "RESET"
  | Closed -> Fmt.string ppf "CLOSED"
