(* Struct-of-arrays connection arena.

   Hot per-connection scalar state lives in Bigarray columns indexed
   by a dense slot; slots are recycled through a free-list stack and a
   per-slot generation stamp (the [Event_queue] idiom), so a handle
   {slot, gen} to a freed connection goes stale in O(1). An idle
   established connection then costs ~90 bytes of column storage plus
   one [cold] pointer word instead of a dozen heap blocks.

   The arena knows nothing about sockets: [Socket] extends [cold] with
   its lazily-populated cold record (closures, payload buffer, accept
   queue) and interprets the columns. Column loads/stores are plain
   Bigarray accesses — callers index with a slot they validated
   against [gen]; raw slots must never outlive the handle that minted
   them (see the arena-slot lint rule). *)

open Bigarray

type int_col = (int, int_elt, c_layout) Array1.t
type byte_col = (int, int8_unsigned_elt, c_layout) Array1.t

type cold = ..

type t = {
  (* Columns are parallel: index [slot < high_water]. *)
  mutable st : byte_col;  (* 0 = free; else Socket state enum 1..5 *)
  mutable flags : byte_col;  (* bit0 hints_supported, bit1 mem charged *)
  mutable gen : int_col;  (* generation stamp; bumped on free *)
  mutable sock_id : int_col;
  mutable backlog : int_col;
  mutable rcv_level : int_col;
  mutable rcv_cap : int_col;
  mutable snd_level : int_col;
  mutable snd_cap : int_col;
  mutable mem_bytes : int_col;  (* modeled kernel bytes charged to Host *)
  mutable tcp_id : int_col;  (* owning Tcp connection id; 0 = none *)
  mutable obs_next : int_col;  (* observer registration counter *)
  mutable watch_next : int_col;  (* watcher registration counter *)
  mutable cold : cold option array;
  mutable free : int array;  (* stack of reusable slot indices *)
  mutable free_len : int;
  mutable high_water : int;  (* slots ever handed out *)
  mutable live : int;
}

let make_int_col n = Array1.create int c_layout n
let make_byte_col n =
  let a = Array1.create int8_unsigned c_layout n in
  Array1.fill a 0;
  a

let create ?(initial_capacity = 64) () =
  let cap = Stdlib.max 1 initial_capacity in
  {
    st = make_byte_col cap;
    flags = make_byte_col cap;
    gen = (let a = make_int_col cap in Array1.fill a 0; a);
    sock_id = make_int_col cap;
    backlog = make_int_col cap;
    rcv_level = make_int_col cap;
    rcv_cap = make_int_col cap;
    snd_level = make_int_col cap;
    snd_cap = make_int_col cap;
    mem_bytes = make_int_col cap;
    tcp_id = make_int_col cap;
    obs_next = make_int_col cap;
    watch_next = make_int_col cap;
    cold = Array.make cap None;
    free = Array.make cap 0;
    free_len = 0;
    high_water = 0;
    live = 0;
  }

let capacity t = Array1.dim t.st

let grow_int_col col cap =
  let c = make_int_col (2 * cap) in
  Array1.blit col (Array1.sub c 0 cap);
  c

let grow_byte_col col cap =
  let c = make_byte_col (2 * cap) in
  Array1.blit col (Array1.sub c 0 cap);
  c

let grow t =
  let cap = capacity t in
  t.st <- grow_byte_col t.st cap;
  t.flags <- grow_byte_col t.flags cap;
  t.gen <- grow_int_col t.gen cap;
  t.sock_id <- grow_int_col t.sock_id cap;
  t.backlog <- grow_int_col t.backlog cap;
  t.rcv_level <- grow_int_col t.rcv_level cap;
  t.rcv_cap <- grow_int_col t.rcv_cap cap;
  t.snd_level <- grow_int_col t.snd_level cap;
  t.snd_cap <- grow_int_col t.snd_cap cap;
  t.mem_bytes <- grow_int_col t.mem_bytes cap;
  t.tcp_id <- grow_int_col t.tcp_id cap;
  t.obs_next <- grow_int_col t.obs_next cap;
  t.watch_next <- grow_int_col t.watch_next cap;
  let cold = Array.make (2 * cap) None in
  Array.blit t.cold 0 cold 0 cap;
  t.cold <- cold

(* Hands back a slot with every column zeroed except [gen], which
   survives recycling (staleness depends on it). The caller stamps the
   state/capacity columns and packs {slot, gen} into its handle before
   the slot can escape. *)
let alloc t =
  let slot =
    if t.free_len > 0 then begin
      t.free_len <- t.free_len - 1;
      t.free.(t.free_len)
    end
    else begin
      let slot = t.high_water in
      if slot = capacity t then grow t;
      t.high_water <- slot + 1;
      slot
    end
  in
  t.st.{slot} <- 0;
  t.flags.{slot} <- 0;
  t.sock_id.{slot} <- 0;
  t.backlog.{slot} <- 0;
  t.rcv_level.{slot} <- 0;
  t.rcv_cap.{slot} <- 0;
  t.snd_level.{slot} <- 0;
  t.snd_cap.{slot} <- 0;
  t.mem_bytes.{slot} <- 0;
  t.tcp_id.{slot} <- 0;
  t.obs_next.{slot} <- 0;
  t.watch_next.{slot} <- 0;
  t.live <- t.live + 1;
  slot

(* Bumping the generation stales every outstanding handle in O(1). *)
let free t slot =
  t.gen.{slot} <- t.gen.{slot} + 1;
  t.st.{slot} <- 0;
  t.cold.(slot) <- None;
  let cap = Array.length t.free in
  if t.free_len = cap then begin
    let free = Array.make (2 * cap) 0 in
    Array.blit t.free 0 free 0 cap;
    t.free <- free
  end;
  t.free.(t.free_len) <- slot;
  t.free_len <- t.free_len + 1;
  t.live <- t.live - 1

let is_live t ~slot ~gen = t.gen.{slot} = gen

let live_count t = t.live
let high_water t = t.high_water
