open Sio_sim

type result = { readable : Fd_set.t; writable : Fd_set.t; except : Fd_set.t }

(* select copies three bitmaps in and out and walks descriptors
   0..nfds-1 regardless of membership; we charge the bitmap walk at a
   third of the pollfd copy cost per fd (three dense bits vs an 8-byte
   struct) plus the driver callback for members. *)
let scan_cost ~host ~nfds =
  let costs = host.Host.costs in
  Time.mul (Time.div costs.Cost_model.poll_copyin_per_fd 3) nfds

let[@complexity "O(interests)"] scan ~host ~lookup ~read ~write ~except =
  let costs = host.Host.costs in
  let nfds =
    1 + Stdlib.max (Fd_set.max_fd read) (Stdlib.max (Fd_set.max_fd write) (Fd_set.max_fd except))
  in
  ignore (Host.charge host (scan_cost ~host ~nfds));
  let r = Fd_set.create () and w = Fd_set.create () and e = Fd_set.create () in
  let ready = ref 0 in
  let consult fd =
    match lookup fd with
    | None ->
        (* Bad descriptor: report as exceptional condition. *)
        if Fd_set.mem except fd || Fd_set.mem read fd || Fd_set.mem write fd then begin
          Fd_set.set e fd;
          incr ready
        end;
        Pollmask.empty
    | Some sock -> Socket.driver_poll sock
  in
  ignore costs;
  for fd = 0 to nfds - 1 do
    if Fd_set.mem read fd || Fd_set.mem write fd || Fd_set.mem except fd then begin
      let st = consult fd in
      if
        Fd_set.mem read fd
        && Pollmask.intersects st
             (Pollmask.union Pollmask.readable Pollmask.pollhup)
      then begin
        Fd_set.set r fd;
        incr ready
      end;
      if Fd_set.mem write fd && Pollmask.intersects st Pollmask.pollout then begin
        Fd_set.set w fd;
        incr ready
      end;
      if
        Fd_set.mem except fd
        && Pollmask.intersects st (Pollmask.union Pollmask.pollerr Pollmask.pollpri)
      then begin
        Fd_set.set e fd;
        incr ready
      end
    end
  done;
  ({ readable = r; writable = w; except = e }, !ready)

let[@complexity "O(interests)"] select ~host ~lookup ~read ~write ~except ~timeout ~k =
  let costs = host.Host.costs in
  let counters = host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge host costs.Cost_model.syscall_entry);
  let finish result = Host.charge_run host ~cost:Time.zero (fun () -> k result) in
  (* Dedup against the bitmaps already in hand (O(1) per fd) instead
     of a List.mem walk over the accumulator (O(members²)). *)
  let members () =
    let fds = ref [] in
    Fd_set.iter read (fun fd -> fds := fd :: !fds);
    Fd_set.iter write (fun fd -> if not (Fd_set.mem read fd) then fds := fd :: !fds);
    Fd_set.iter except (fun fd ->
        if not (Fd_set.mem read fd || Fd_set.mem write fd) then fds := fd :: !fds);
    List.filter_map lookup !fds
  in
  let first, ready = scan ~host ~lookup ~read ~write ~except in
  if ready > 0 then finish first
  else
    match timeout with
    | Some t when t <= Time.zero -> finish first
    | _ ->
        let sockets = members () in
        let n = List.length sockets in
        ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
        let timer = ref None in
        let waiter_ref = ref None in
        let cleanup () =
          (match !waiter_ref with
          | Some wtr -> List.iter (fun s -> ignore (Socket.unregister_waiter s wtr)) sockets
          | None -> ());
          ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_unregister n));
          match !timer with
          | Some h ->
              Engine.cancel host.Host.engine h;
              timer := None
          | None -> ()
        in
        let rec on_wake _mask =
          cleanup ();
          let result, ready = scan ~host ~lookup ~read ~write ~except in
          if ready > 0 then finish result
          else begin
            let wtr = { Socket.wake = on_wake } in
            waiter_ref := Some wtr;
            List.iter (fun s -> Socket.register_waiter s wtr) sockets;
            ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
            arm_timer ()
          end
        and arm_timer () =
          match timeout with
          | None -> ()
          | Some t ->
              timer :=
                Some
                  (Engine.after host.Host.engine t (fun () ->
                       timer := None;
                       cleanup ();
                       let result, _ = scan ~host ~lookup ~read ~write ~except in
                       finish result))
        in
        let wtr = { Socket.wake = on_wake } in
        waiter_ref := Some wtr;
        List.iter (fun s -> Socket.register_waiter s wtr) sockets;
        arm_timer ()

(* A stateful select set, mirroring how thttpd actually uses select():
   the same three bitmaps (except aliased to read) are re-submitted on
   every loop iteration. Kept between calls so the host-side walk is
   O(active) while charged costs, counters, and the returned bitmaps
   stay identical to [select] over the same bitmaps. *)
module Sset = struct
  type member = { fd : int; mutable bound : (Socket.t * int) option }

  type sset = {
    host : Host.t;
    lookup : int -> Socket.t option;
    read : Fd_set.t; (* also the except set, as thttpd passes it *)
    write : Fd_set.t;
    members : member Fd_map.t; (* every fd with a read or write bit *)
    active : member Fd_map.t;
        (* Conservative superset of members whose probe might set a
           result bit. Everything outside it was last seen reporting
           nothing on a live, watcher-bound socket, so its probe is
           exactly one driver callback with no bits set. *)
  }

  let create ~host ~lookup () =
    {
      host;
      lookup;
      read = Fd_set.create ();
      write = Fd_set.create ();
      members = Fd_map.create ~initial_capacity:64 ();
      active = Fd_map.create ~initial_capacity:64 ();
    }

  let unbind m =
    match m.bound with
    | Some (sock, wtoken) ->
        Socket.remove_watcher sock wtoken;
        m.bound <- None
    | None -> ()

  let remove s fd =
    Fd_set.clear s.read fd;
    Fd_set.clear s.write fd;
    (match Fd_map.find s.members fd with
    | Some m ->
        unbind m;
        ignore (Fd_map.remove s.members fd)
    | None -> ());
    ignore (Fd_map.remove s.active fd)

  (* Same bit discipline as thttpd's backend: readable interest sets
     the read bit, POLLOUT interest the write bit; a mask with neither
     leaves the fd out of the set entirely. Any change re-activates
     the fd (its next probe may answer differently). *)
  let add s fd mask =
    if Pollmask.intersects mask Pollmask.readable then Fd_set.set s.read fd
    else Fd_set.clear s.read fd;
    if Pollmask.intersects mask Pollmask.pollout then Fd_set.set s.write fd
    else Fd_set.clear s.write fd;
    if Fd_set.mem s.read fd || Fd_set.mem s.write fd then begin
      let m =
        match Fd_map.find s.members fd with
        | Some m -> m
        | None ->
            let m = { fd; bound = None } in
            Fd_map.set s.members fd m;
            m
      in
      Fd_map.set s.active fd m
    end
    else remove s fd

  let mem s fd = Fd_map.mem s.members fd
  let interest_count s = Fd_set.cardinal s.read
  let active_fds s = List.map fst (Fd_map.to_list s.active)

  (* O(active) scan: the bitmap-walk cost over 0..nfds-1 was already
     analytic; idle members are charged one batched driver callback
     each (they all have live sockets, else the except bit would have
     kept them active), active members run the per-fd body of [scan]
     verbatim, in the same ascending-fd order. *)
  let[@complexity "O(active)"] scan_sset s =
    let host = s.host in
    let costs = host.Host.costs in
    let counters = host.Host.counters in
    let read = s.read and write = s.write in
    let except = s.read in
    let nfds =
      1
      + Stdlib.max (Fd_set.max_fd read)
          (Stdlib.max (Fd_set.max_fd write) (Fd_set.max_fd except))
    in
    ignore (Host.charge host (scan_cost ~host ~nfds));
    let r = Fd_set.create () and w = Fd_set.create () and e = Fd_set.create () in
    let ready = ref 0 in
    let idle = Fd_map.length s.members - Fd_map.length s.active in
    if idle > 0 then begin
      ignore
        (Cost_model.charge_batch host.Host.cpu ~cost:costs.Cost_model.driver_poll_callback
           ~count:idle);
      counters.Host.driver_polls <- counters.Host.driver_polls + idle
    end;
    Fd_map.iter s.active (fun fd m ->
        let any = ref false in
        (match s.lookup fd with
        | None ->
            if Fd_set.mem except fd || Fd_set.mem read fd || Fd_set.mem write fd then begin
              Fd_set.set e fd;
              incr ready;
              any := true
            end
        | Some sock ->
            (match m.bound with
            | Some (s0, _) when Socket.id s0 = Socket.id sock -> ()
            | Some _ | None ->
                unbind m;
                let wtoken =
                  Socket.add_watcher sock (fun () -> Fd_map.set s.active m.fd m)
                in
                m.bound <- Some (sock, wtoken));
            let st = Socket.driver_poll sock in
            if
              Fd_set.mem read fd
              && Pollmask.intersects st (Pollmask.union Pollmask.readable Pollmask.pollhup)
            then begin
              Fd_set.set r fd;
              incr ready;
              any := true
            end;
            if Fd_set.mem write fd && Pollmask.intersects st Pollmask.pollout then begin
              Fd_set.set w fd;
              incr ready;
              any := true
            end;
            if
              Fd_set.mem except fd
              && Pollmask.intersects st (Pollmask.union Pollmask.pollerr Pollmask.pollpri)
            then begin
              Fd_set.set e fd;
              incr ready;
              any := true
            end;
            if not !any then ignore (Fd_map.remove s.active fd)));
    ({ readable = r; writable = w; except = e }, !ready)

  (* select() over the persistent set: charge-for-charge the same call
     sequence as [select], including the rescan at timeout expiry. *)
  let[@complexity "O(interests)"] wait_sset s ~timeout ~k =
    let host = s.host in
    let costs = host.Host.costs in
    let counters = host.Host.counters in
    counters.Host.syscalls <- counters.Host.syscalls + 1;
    ignore (Host.charge host costs.Cost_model.syscall_entry);
    let finish result = Host.charge_run host ~cost:Time.zero (fun () -> k result) in
    let first, ready = scan_sset s in
    if ready > 0 then finish first
    else
      match timeout with
      | Some t when t <= Time.zero -> finish first
      | _ ->
          let sockets =
            Fd_map.fold s.members ~init:[] ~f:(fun acc fd _ ->
                match s.lookup fd with Some sock -> sock :: acc | None -> acc)
          in
          let n = List.length sockets in
          ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
          let timer = ref None in
          let waiter_ref = ref None in
          let cleanup () =
            (match !waiter_ref with
            | Some wtr ->
                List.iter (fun sock -> ignore (Socket.unregister_waiter sock wtr)) sockets
            | None -> ());
            ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_unregister n));
            match !timer with
            | Some h ->
                Engine.cancel host.Host.engine h;
                timer := None
            | None -> ()
          in
          let rec on_wake _mask =
            cleanup ();
            let result, ready = scan_sset s in
            if ready > 0 then finish result
            else begin
              let wtr = { Socket.wake = on_wake } in
              waiter_ref := Some wtr;
              List.iter (fun sock -> Socket.register_waiter sock wtr) sockets;
              ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
              arm_timer ()
            end
          and arm_timer () =
            match timeout with
            | None -> ()
            | Some t ->
                timer :=
                  Some
                    (Engine.after host.Host.engine t (fun () ->
                         timer := None;
                         cleanup ();
                         let result, _ = scan_sset s in
                         finish result))
          in
          let wtr = { Socket.wake = on_wake } in
          waiter_ref := Some wtr;
          List.iter (fun sock -> Socket.register_waiter sock wtr) sockets;
          arm_timer ()
end
