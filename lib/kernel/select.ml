open Sio_sim

type result = { readable : Fd_set.t; writable : Fd_set.t; except : Fd_set.t }

(* select copies three bitmaps in and out and walks descriptors
   0..nfds-1 regardless of membership; we charge the bitmap walk at a
   third of the pollfd copy cost per fd (three dense bits vs an 8-byte
   struct) plus the driver callback for members. *)
let scan_cost ~host ~nfds =
  let costs = host.Host.costs in
  Time.mul (Time.div costs.Cost_model.poll_copyin_per_fd 3) nfds

let scan ~host ~lookup ~read ~write ~except =
  let costs = host.Host.costs in
  let nfds =
    1 + Stdlib.max (Fd_set.max_fd read) (Stdlib.max (Fd_set.max_fd write) (Fd_set.max_fd except))
  in
  ignore (Host.charge host (scan_cost ~host ~nfds));
  let r = Fd_set.create () and w = Fd_set.create () and e = Fd_set.create () in
  let ready = ref 0 in
  let consult fd =
    match lookup fd with
    | None ->
        (* Bad descriptor: report as exceptional condition. *)
        if Fd_set.mem except fd || Fd_set.mem read fd || Fd_set.mem write fd then begin
          Fd_set.set e fd;
          incr ready
        end;
        Pollmask.empty
    | Some sock -> Socket.driver_poll sock
  in
  ignore costs;
  for fd = 0 to nfds - 1 do
    if Fd_set.mem read fd || Fd_set.mem write fd || Fd_set.mem except fd then begin
      let st = consult fd in
      if
        Fd_set.mem read fd
        && Pollmask.intersects st
             (Pollmask.union Pollmask.readable Pollmask.pollhup)
      then begin
        Fd_set.set r fd;
        incr ready
      end;
      if Fd_set.mem write fd && Pollmask.intersects st Pollmask.pollout then begin
        Fd_set.set w fd;
        incr ready
      end;
      if
        Fd_set.mem except fd
        && Pollmask.intersects st (Pollmask.union Pollmask.pollerr Pollmask.pollpri)
      then begin
        Fd_set.set e fd;
        incr ready
      end
    end
  done;
  ({ readable = r; writable = w; except = e }, !ready)

let select ~host ~lookup ~read ~write ~except ~timeout ~k =
  let costs = host.Host.costs in
  let counters = host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge host costs.Cost_model.syscall_entry);
  let finish result = Host.charge_run host ~cost:Time.zero (fun () -> k result) in
  (* Dedup against the bitmaps already in hand (O(1) per fd) instead
     of a List.mem walk over the accumulator (O(members²)). *)
  let members () =
    let fds = ref [] in
    Fd_set.iter read (fun fd -> fds := fd :: !fds);
    Fd_set.iter write (fun fd -> if not (Fd_set.mem read fd) then fds := fd :: !fds);
    Fd_set.iter except (fun fd ->
        if not (Fd_set.mem read fd || Fd_set.mem write fd) then fds := fd :: !fds);
    List.filter_map lookup !fds
  in
  let first, ready = scan ~host ~lookup ~read ~write ~except in
  if ready > 0 then finish first
  else
    match timeout with
    | Some t when t <= Time.zero -> finish first
    | _ ->
        let sockets = members () in
        let n = List.length sockets in
        ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
        let timer = ref None in
        let waiter_ref = ref None in
        let cleanup () =
          (match !waiter_ref with
          | Some wtr -> List.iter (fun s -> ignore (Socket.unregister_waiter s wtr)) sockets
          | None -> ());
          ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_unregister n));
          match !timer with
          | Some h ->
              Engine.cancel host.Host.engine h;
              timer := None
          | None -> ()
        in
        let rec on_wake _mask =
          cleanup ();
          let result, ready = scan ~host ~lookup ~read ~write ~except in
          if ready > 0 then finish result
          else begin
            let wtr = { Socket.wake = on_wake } in
            waiter_ref := Some wtr;
            List.iter (fun s -> Socket.register_waiter s wtr) sockets;
            ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
            arm_timer ()
          end
        and arm_timer () =
          match timeout with
          | None -> ()
          | Some t ->
              timer :=
                Some
                  (Engine.after host.Host.engine t (fun () ->
                       timer := None;
                       cleanup ();
                       let result, _ = scan ~host ~lookup ~read ~write ~except in
                       finish result))
        in
        let wtr = { Socket.wake = on_wake } in
        waiter_ref := Some wtr;
        List.iter (fun s -> Socket.register_waiter s wtr) sockets;
        arm_timer ()
