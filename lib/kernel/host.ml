open Sio_sim

type counters = {
  mutable syscalls : int;
  mutable driver_polls : int;
  mutable hint_skips : int;
  mutable wait_queue_wakes : int;
  mutable rt_enqueued : int;
  mutable rt_dropped : int;
  mutable rt_overflows : int;
  mutable softirqs : int;
  mutable accepts : int;
  mutable connections_refused : int;
}

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  costs : Cost_model.t;
  wake_policy : Wait_queue.wake_policy;
  counters : counters;
  hints_by_default : bool;
  arena : Conn_arena.t;
  mem_limit : int;
  mutable mem_used : int;
  mutable mem_peak : int;
}

let fresh_counters () =
  {
    syscalls = 0;
    driver_polls = 0;
    hint_skips = 0;
    wait_queue_wakes = 0;
    rt_enqueued = 0;
    rt_dropped = 0;
    rt_overflows = 0;
    softirqs = 0;
    accepts = 0;
    connections_refused = 0;
  }

let create ~engine ?(costs = Cost_model.default)
    ?(wake_policy = Wait_queue.Wake_all) ?(infinitely_fast = false)
    ?(hints_by_default = true) ?(mem_limit = max_int) () =
  let cpu =
    if infinitely_fast then Cpu.infinitely_fast ~engine else Cpu.create ~engine
  in
  {
    engine;
    cpu;
    costs;
    wake_policy;
    counters = fresh_counters ();
    hints_by_default;
    arena = Conn_arena.create ();
    mem_limit;
    mem_used = 0;
    mem_peak = 0;
  }

let now t = Engine.now t.engine
let charge t cost = Cpu.consume t.cpu cost
let charge_run t ~cost k = Cpu.run t.cpu ~cost k

(* Modeled kernel memory: admission either fully reserves or refuses;
   no partial grants, so [mem_used] is always a sum of whole
   per-connection reservations. *)
let mem_reserve t n =
  if n < 0 then invalid_arg "Host.mem_reserve: negative size";
  if t.mem_used > t.mem_limit - n then false
  else begin
    t.mem_used <- t.mem_used + n;
    if t.mem_used > t.mem_peak then t.mem_peak <- t.mem_used;
    true
  end

let mem_release t n = t.mem_used <- t.mem_used - n
