open Sio_sim

type counters = {
  mutable syscalls : int;
  mutable driver_polls : int;
  mutable hint_skips : int;
  mutable wait_queue_wakes : int;
  mutable rt_enqueued : int;
  mutable rt_dropped : int;
  mutable rt_overflows : int;
  mutable softirqs : int;
  mutable accepts : int;
  mutable connections_refused : int;
}

(* A kernel-memory budget shared by several hosts (the shard cluster's
   shared-reservation mode): admission happens against one atomic
   counter, so the shards' combined footprint honours one limit even
   when they simulate on separate domains. Reservation is a
   fetch-and-add with rollback — never a lock — and the peak is a
   monotonic CAS race upward. *)
type mem_pool = {
  pool_limit : int;
  pool_used : int Atomic.t;
  pool_peak : int Atomic.t;
}

let shared_mem_pool ~limit =
  if limit < 0 then invalid_arg "Host.shared_mem_pool: negative limit";
  { pool_limit = limit; pool_used = Atomic.make 0; pool_peak = Atomic.make 0 }

let pool_used p = Atomic.get p.pool_used
let pool_peak p = Atomic.get p.pool_peak

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  costs : Cost_model.t;
  wake_policy : Wait_queue.wake_policy;
  counters : counters;
  hints_by_default : bool;
  arena : Conn_arena.t;
  mem_limit : int;
  mem_pool : mem_pool option;
  mutable mem_used : int;
  mutable mem_peak : int;
}

let fresh_counters () =
  {
    syscalls = 0;
    driver_polls = 0;
    hint_skips = 0;
    wait_queue_wakes = 0;
    rt_enqueued = 0;
    rt_dropped = 0;
    rt_overflows = 0;
    softirqs = 0;
    accepts = 0;
    connections_refused = 0;
  }

let create ~engine ?(costs = Cost_model.default)
    ?(wake_policy = Wait_queue.Wake_all) ?(infinitely_fast = false)
    ?(hints_by_default = true) ?(mem_limit = max_int) ?mem_pool () =
  let cpu =
    if infinitely_fast then Cpu.infinitely_fast ~engine else Cpu.create ~engine
  in
  {
    engine;
    cpu;
    costs;
    wake_policy;
    counters = fresh_counters ();
    hints_by_default;
    arena = Conn_arena.create ();
    mem_limit;
    mem_pool;
    mem_used = 0;
    mem_peak = 0;
  }

let now t = Engine.now t.engine
let charge t cost = Cpu.consume t.cpu cost
let charge_run t ~cost k = Cpu.run t.cpu ~cost k

(* Modeled kernel memory: admission either fully reserves or refuses;
   no partial grants, so [mem_used] is always a sum of whole
   per-connection reservations. *)
let pool_reserve p n =
  let before = Atomic.fetch_and_add p.pool_used n in
  if before > p.pool_limit - n then begin
    ignore (Atomic.fetch_and_add p.pool_used (-n));
    false
  end
  else begin
    let after = before + n in
    let rec bump () =
      let peak = Atomic.get p.pool_peak in
      if after > peak && not (Atomic.compare_and_set p.pool_peak peak after) then
        bump ()
    in
    bump ();
    true
  end

let mem_reserve t n =
  if n < 0 then invalid_arg "Host.mem_reserve: negative size";
  if t.mem_used > t.mem_limit - n then false
  else begin
    let admitted =
      match t.mem_pool with Some p -> pool_reserve p n | None -> true
    in
    if admitted then begin
      t.mem_used <- t.mem_used + n;
      if t.mem_used > t.mem_peak then t.mem_peak <- t.mem_used;
      true
    end
    else false
  end

let mem_release t n =
  t.mem_used <- t.mem_used - n;
  match t.mem_pool with
  | Some p -> ignore (Atomic.fetch_and_add p.pool_used (-n))
  | None -> ()
