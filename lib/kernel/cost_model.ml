open Sio_sim

type t = {
  syscall_entry : Time.t;
  poll_copyin_per_fd : Time.t;
  poll_copyout_per_ready : Time.t;
  driver_poll_callback : Time.t;
  hint_check : Time.t;
  wait_queue_register : Time.t;
  wait_queue_unregister : Time.t;
  wait_queue_wake : Time.t;
  devpoll_write_per_change : Time.t;
  interest_hash_op : Time.t;
  backmap_read_lock : Time.t;
  backmap_write_lock : Time.t;
  mmap_setup : Time.t;
  rt_enqueue : Time.t;
  rt_dequeue : Time.t;
  sigwait_call : Time.t;
  fcntl_call : Time.t;
  softirq_per_packet : Time.t;
  accept_syscall : Time.t;
  read_syscall : Time.t;
  write_syscall : Time.t;
  close_syscall : Time.t;
  copy_per_byte_ns : float;
  sendfile_per_byte_ns : float;
  page_map_ns : float;
  sock_struct_bytes : int;
}

(* Calibration notes: a 400 MHz K6-2 executes ~2-3 us of kernel path
   per light syscall. The 6 KB document of the paper's workload then
   costs: accept (~30us incl. socket setup) + read+parse (~50us) +
   write 6KB (~2us + 6144B * 25ns = ~155us) + close (~20us) + the
   server's own user-space work (charged by the HTTP layer, ~500us on
   this class of hardware) ~= 0.9ms -> peak ~1100 replies/s. *)
let default =
  {
    syscall_entry = Time.ns 2_000;
    poll_copyin_per_fd = Time.ns 3_000;
    poll_copyout_per_ready = Time.ns 180;
    driver_poll_callback = Time.ns 12_000;
    hint_check = Time.ns 300;
    wait_queue_register = Time.ns 500;
    wait_queue_unregister = Time.ns 300;
    wait_queue_wake = Time.ns 700;
    devpoll_write_per_change = Time.ns 400;
    interest_hash_op = Time.ns 900;
    backmap_read_lock = Time.ns 60;
    backmap_write_lock = Time.ns 180;
    mmap_setup = Time.us 12;
    rt_enqueue = Time.ns 350;
    rt_dequeue = Time.ns 1_000;
    sigwait_call = Time.ns 28_000;
    fcntl_call = Time.ns 400;
    softirq_per_packet = Time.us 6;
    accept_syscall = Time.us 28;
    read_syscall = Time.us 4;
    write_syscall = Time.us 4;
    close_syscall = Time.us 18;
    copy_per_byte_ns = 25.0;
    sendfile_per_byte_ns = 12.0;
    (* Pinning and mapping one 4 KB page into a shared transmit ring
       (get_user_pages + PTE edit + TLB maintenance) on the same
       hardware class: ~30 us, i.e. ~7.3 ns/byte amortized — cheaper
       per byte than sendfile's 12 and copy's 25, but a whole page is
       charged no matter how few bytes land in it, and ring_attach
       pays [mmap_setup] once per connection. That fixed overhead is
       what puts the response-size figure's crossover between 1 KB
       and 4 KB. *)
    page_map_ns = 30_000.0;
    (* struct sock + sk_buff head room etc. on the paper's 2.2-era
       kernel; the dominant term is the socket buffers, charged
       separately from the live capacities. *)
    sock_struct_bytes = 1_024;
  }

let copy_cost t ~bytes_len =
  Time.ns (int_of_float (t.copy_per_byte_ns *. float_of_int bytes_len))

let sendfile_cost t ~bytes_len =
  Time.ns (int_of_float (t.sendfile_per_byte_ns *. float_of_int bytes_len))

let page_map_cost t ~pages =
  Time.ns (int_of_float (t.page_map_ns *. float_of_int pages))

let zero =
  {
    syscall_entry = Time.zero;
    poll_copyin_per_fd = Time.zero;
    poll_copyout_per_ready = Time.zero;
    driver_poll_callback = Time.zero;
    hint_check = Time.zero;
    wait_queue_register = Time.zero;
    wait_queue_unregister = Time.zero;
    wait_queue_wake = Time.zero;
    devpoll_write_per_change = Time.zero;
    interest_hash_op = Time.zero;
    backmap_read_lock = Time.zero;
    backmap_write_lock = Time.zero;
    mmap_setup = Time.zero;
    rt_enqueue = Time.zero;
    rt_dequeue = Time.zero;
    sigwait_call = Time.zero;
    fcntl_call = Time.zero;
    softirq_per_packet = Time.zero;
    accept_syscall = Time.zero;
    read_syscall = Time.zero;
    write_syscall = Time.zero;
    close_syscall = Time.zero;
    copy_per_byte_ns = 0.;
    sendfile_per_byte_ns = 0.;
    page_map_ns = 0.;
    sock_struct_bytes = 0;
  }

(* Analytic bulk charge: [count] repetitions of one constant-cost
   operation in a single consume. This is exact, not approximate —
   [Time.t] is integer nanoseconds and [Cpu.consume] is additive, so
   consuming [count * cost] leaves [busy_until] and [total_busy]
   precisely where [count] consecutive consumes would. Callers that
   replace a per-item loop with this must advance the matching [Host]
   operation counters by the same [count] (DESIGN.md section 5). *)
let charge_batch cpu ~cost ~count =
  if count < 0 then invalid_arg "Cost_model.charge_batch: negative count";
  Cpu.consume cpu (Time.mul cost count)
