(** The /dev/poll interest-set hash table.

    Faithful to the paper's description: open hashing over file
    descriptors, where "for simplicity, when the average bucket size
    is two, the number of buckets in the hash table is doubled. The
    hash table is never shrunk."

    Each interest carries the subscribed event mask plus the two
    pieces of per-interest state the hinting scheme needs: the hint
    bits posted by drivers since the last scan, and the cached result
    of the last driver poll callback. *)

type interest = {
  fd : int;
  mutable events : Pollmask.t;  (** subscribed events *)
  mutable hint : Pollmask.t;  (** driver-posted bits since last scan *)
  mutable cached : Pollmask.t option;
      (** last driver callback result, if still considered valid *)
}

type t

val create : ?initial_buckets:int -> unit -> t
(** Default 8 buckets. Raises [Invalid_argument] if not positive. *)

val length : t -> int
val bucket_count : t -> int

val find : t -> int -> interest option

val set : t -> fd:int -> events:Pollmask.t -> [ `Added | `Modified ]
(** Insert or replace. Following the paper's Linux semantics, the new
    events mask {e replaces} the previous one (Solaris ORs instead);
    replacing resets hint and cache, since the driver must be
    re-consulted. Doubles the bucket array when mean occupancy
    reaches 2. *)

val set_solaris : t -> fd:int -> events:Pollmask.t -> [ `Added | `Modified ]
(** Solaris-compatible variant: ORs into the existing mask. *)

val remove : t -> int -> bool
(** False when the fd was not present. *)

val iter : t -> (interest -> unit) -> unit
(** Iterates in unspecified order. *)

val iter_while : t -> f:(interest -> bool) -> unit
(** [iter_while t ~f] visits interests (same order as {!iter}) until
    [f] answers [false] — the early exit DP_POLL needs once its
    result buffer is full, instead of walking the rest of the table. *)

val fold : t -> init:'a -> f:('a -> interest -> 'a) -> 'a
val mean_bucket_occupancy : t -> float
