(** Struct-of-arrays connection arena.

    Per-connection hot scalar state (socket state enum, buffer levels
    and capacities, hint flags, registration counters, tcp linkage)
    lives in parallel Bigarray columns indexed by a dense slot. Slots
    are recycled through a free list; every {!free} bumps the slot's
    generation stamp so outstanding {slot, gen} handles go stale in
    O(1) — the {!Sio_sim.Event_queue} pattern.

    Cold state (closures, payload buffers, accept queues) hangs off
    the [cold] side table, populated lazily by {!Socket} only for
    connections that need it; an idle established connection costs
    roughly 90 column bytes plus one pointer word.

    Discipline for raw slot indices: a slot is only meaningful next to
    the generation read at {!alloc} time. Pack both into an immutable
    handle immediately; never use a raw slot as a [Hashtbl] key or
    store one in mutable state across a close (enforced by the
    [arena-slot] lint rule). *)

open Bigarray

type int_col = (int, int_elt, c_layout) Array1.t
type byte_col = (int, int8_unsigned_elt, c_layout) Array1.t

type cold = ..
(** Extension point for per-connection cold state. [Socket] adds its
    own constructor; the arena only stores and drops the values. *)

type t = {
  mutable st : byte_col;  (** 0 = free slot; else state enum 1..5 *)
  mutable flags : byte_col;
      (** bit0 = hints_supported, bit1 = kernel memory charged *)
  mutable gen : int_col;  (** generation stamp, bumped on {!free} *)
  mutable sock_id : int_col;
  mutable backlog : int_col;
  mutable rcv_level : int_col;
  mutable rcv_cap : int_col;
  mutable snd_level : int_col;
  mutable snd_cap : int_col;
  mutable mem_bytes : int_col;
      (** modeled kernel bytes reserved against {!Host} *)
  mutable tcp_id : int_col;  (** owning TCP connection id; 0 = none *)
  mutable obs_next : int_col;  (** observer registration counter *)
  mutable watch_next : int_col;  (** watcher registration counter *)
  mutable cold : cold option array;
  mutable free : int array;
  mutable free_len : int;
  mutable high_water : int;
  mutable live : int;
}

val create : ?initial_capacity:int -> unit -> t

val alloc : t -> int
(** Returns a slot with all columns except [gen] zeroed. The caller
    must read [gen.{slot}] and pack both into its handle before the
    slot escapes. *)

val free : t -> int -> unit
(** Bumps the slot's generation (staling every outstanding handle),
    drops its cold state, and recycles the slot. *)

val is_live : t -> slot:int -> gen:int -> bool
(** Whether a handle's generation still matches the slot's. *)

val live_count : t -> int
val high_water : t -> int
val capacity : t -> int
