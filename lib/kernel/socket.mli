(** Simulated TCP sockets.

    A socket is the object the three event-notification mechanisms of
    the paper observe. Status changes (bytes arriving, a connection
    entering the accept queue, a peer FIN or RST, send-buffer space
    opening up) are posted as edges; each edge wakes the socket's wait
    queue (classic poll sleepers) and notifies registered observers
    (the /dev/poll backmap hint path and the RT-signal path register
    themselves here).

    Payload strings ride alongside byte counts so the HTTP layer can
    parse real request text while buffer occupancy stays a cheap
    integer.

    Representation: a socket is a thin immutable handle (arena slot +
    generation stamp) over {!Host.t}'s {!Conn_arena}; closing frees
    the slot and stales every outstanding handle, which then reads as
    [Closed]/POLLNVAL while all mutating operations on it are inert.
    Handle identity is physical and unique: the record minted at
    creation is the one stored in accept queues and fd tables, so
    [==] comparisons keep working. *)


type state =
  | Listening
  | Established
  | Peer_closed  (** peer sent FIN; reads return EOF after the buffer drains *)
  | Reset  (** connection error; reads/writes fail *)
  | Closed  (** this endpoint closed the socket *)

type t

type waiter = { wake : Pollmask.t -> unit }
(** A sleeping task registered on the socket's wait queue. Identity is
    physical: the same record must be passed to unregister. *)

val create_listening : host:Host.t -> backlog:int -> t
val create_established : host:Host.t -> t

val id : t -> int
(** Unique per-process-lifetime socket id (not the fd). *)

val state : t -> state
val host : t -> Host.t

val hints_supported : t -> bool
val set_hints_supported : t -> bool -> unit
(** Whether this socket's device driver participates in the /dev/poll
    hinting scheme (the paper lets drivers opt in so only network
    drivers need modification). Default true. *)

(** {1 Readiness} *)

val status : t -> Pollmask.t
(** Current readiness, computed for free — used internally and by
    tests. Kernel paths that model the expense of asking the driver
    must use {!driver_poll}. *)

val driver_poll : t -> Pollmask.t
(** Same answer as {!status} but charges the driver-callback cost and
    bumps the host's [driver_polls] counter. *)

(** {1 Wait queue and observers} *)

val register_waiter : t -> waiter -> unit
val unregister_waiter : t -> waiter -> bool

val subscribe : t -> (Pollmask.t -> unit) -> int
(** [subscribe s f] registers [f] to be called on each posted edge
    with the edge's event bits; returns a token for {!unsubscribe}.
    Observers model the backmapping list: posting to them charges the
    backmap read-lock cost when hints are supported. *)

val unsubscribe : t -> int -> unit

val add_watcher : t -> (unit -> unit) -> int
(** [add_watcher s f] registers a host-only callback invoked whenever
    the socket's readiness may have changed: at the top of every posted
    edge (before the wait queue wakes, so a sleeper's synchronous
    rescan already sees the watcher's effects) and when hint support is
    toggled. Watchers carry zero modeled cost — they exist so backends
    can maintain incremental ready sets without touching the charged
    observer path. Returns a token for {!remove_watcher}. *)

val remove_watcher : t -> int -> unit

val waiter_count : t -> int
val observer_count : t -> int

(** {1 Network-facing operations} (called by the TCP layer) *)

val deliver : t -> bytes_len:int -> payload:string -> int
(** Bytes arriving from the wire: fills the receive buffer (returns
    bytes accepted), appends payload text, charges softirq cost, posts
    POLLIN. *)

val enqueue_accept : t -> t -> bool
(** [enqueue_accept listener peer] adds an established socket to the
    listener's accept queue; false (refused) when the backlog is
    full. Posts POLLIN on success. *)

val peer_closed : t -> unit
(** FIN from the peer: posts POLLIN|POLLHUP. *)

val reset : t -> unit
(** RST: posts POLLERR. *)

val release_send_space : t -> int -> unit
(** The wire consumed [n] bytes of the send buffer; posts POLLOUT when
    space reappears from a full buffer. *)

(** {1 Transport hooks} (installed by the TCP layer) *)

val set_transport : t -> on_send:(int -> unit) -> on_close:(unit -> unit) -> unit
(** [on_send n] is invoked when the application commits [n] bytes to
    the send buffer (the TCP layer then puts them on the wire and
    later calls {!release_send_space}); [on_close] when the
    application closes the socket (the TCP layer emits the FIN). *)

val transport_send : t -> int -> unit
(** Invokes the [on_send] hook; used by the syscall layer. *)

(** {1 Application-facing operations} (called by the syscall layer) *)

val read_all : t -> int * string
(** Drains the receive buffer: (bytes, accumulated payload). On a
    [Peer_closed] socket with an empty buffer this is [(0, "")] — EOF. *)

val write_reserve : t -> int -> int
(** Claims send-buffer space; returns bytes accepted (0 when full or
    not writable). *)

(** {1 Shared-ring transmit} (see {!Zc_ring}) *)

val ring_attach : t -> slot_bytes:int -> bool
(** Attaches a transmit ring sized to the send buffer
    ([snd_cap / slot_bytes] slots), reserving its pages against the
    host's memory budget; [false] when the budget refuses or the
    socket is not connected. Idempotent — a second attach on a live
    ring succeeds without reserving again. The ring is destroyed (and
    its reservation released) by {!close} and {!discard}. *)

val ring : t -> Zc_ring.t option

val ring_reserve : t -> int -> copy_bytes:int -> (int * int) option
(** Like {!write_reserve}, but the accepted bytes beyond the first
    [copy_bytes] (the selective mode's copied-through headers) are
    pinned into the attached ring. Returns [(accepted, fresh_pages)]
    — the caller charges {!Cost_model.page_map_cost} for
    [fresh_pages] — or [None] when no ring is attached. Pinned pages
    are unpinned by {!release_send_space} as the wire drains them. *)

val accept_pop : t -> t option
val accept_queue_length : t -> int

val close : t -> unit
(** Marks [Closed], empties buffers, posts POLLNVAL so sleepers
    re-evaluate, then releases everything the connection pinned: the
    kernel-memory reservation, observer/watcher closures, the payload
    buffer, and the arena slot itself. *)

val discard : t -> unit
(** Reclaims a connection that never reached an application fd (a
    refused handshake, an accept-path drop) with zero observable
    behaviour: no edge, no hook, no charge — only the memory
    reservation and the arena slot come back. *)

(** {1 Kernel memory} (modeled; see {!Cost_model.t.sock_struct_bytes}) *)

val reserve_kernel_memory : t -> bool
(** Reserves [sock_struct_bytes + rcv_cap + snd_cap] against the
    host's memory budget; [false] when the budget would be exceeded
    (the accept path then refuses the connection). Idempotent. *)

val kernel_memory_bytes : t -> int
(** Bytes currently reserved for this connection (0 when none). *)

(** {1 Arena-native backend attachments}

    Kernel facilities that keep per-connection records (an epoll
    interest, a /dev/poll backmap subscription, an RT-signal binding)
    store them here instead of in private side tables: the record
    lives in the connection's {!Conn_arena} cold slot, keyed by a
    per-instance attach key, and is dropped automatically when the
    slot frees. All three operations are inert on stale handles. *)

val new_attach_key : unit -> int
(** Mints a process-unique key (one per backend instance). *)

val attach : t -> key:int -> Conn_arena.cold -> unit
(** Stores (or replaces) this key's attachment on the socket. O(1):
    attachments live in three fixed slots (a socket is only ever
    watched by its process's one backend plus at most an RT-signal
    binding). Raises [Invalid_argument] if a fourth distinct key is
    attached to one socket. *)

val attachment : t -> key:int -> Conn_arena.cold option

val detach : t -> key:int -> unit

(** {1 TCP linkage} *)

val set_tcp_link : t -> int -> unit
(** Records the owning {!Tcp} connection id in the arena. *)

val tcp_link : t -> int
(** The owning TCP connection id, or 0. *)

val pp_state : Format.formatter -> state -> unit
