open Sio_sim

type 'a t = {
  limit : int;
  slots : 'a Fd_map.t;
  mutable search_from : int; (* lower bound on the lowest free slot *)
}

let create ?(limit = 1024) () =
  if limit <= 0 then invalid_arg "Fd_table.create: limit must be positive";
  { limit; slots = Fd_map.create ~initial_capacity:64 (); search_from = 0 }

let limit t = t.limit

let alloc t v =
  if Fd_map.length t.slots >= t.limit then Error `Emfile
  else begin
    (* search_from is maintained as a lower bound: it only moves back
       on close, so this scan is amortized O(1). *)
    let rec find_free fd = if Fd_map.mem t.slots fd then find_free (fd + 1) else fd in
    let fd = find_free t.search_from in
    Fd_map.set t.slots fd v;
    t.search_from <- fd + 1;
    Ok fd
  end

let alloc_exn t v =
  match alloc t v with
  | Ok fd -> fd
  | Error `Emfile -> failwith "Fd_table.alloc_exn: out of descriptors"

let find t fd = Fd_map.find t.slots fd

let find_exn t fd =
  match find t fd with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Fd_table.find_exn: fd %d not open" fd)

let set t fd v =
  if not (Fd_map.mem t.slots fd) then
    invalid_arg (Printf.sprintf "Fd_table.set: fd %d not open" fd)
  else Fd_map.set t.slots fd v

let close t fd =
  match Fd_map.find t.slots fd with
  | None -> None
  | Some v ->
      ignore (Fd_map.remove t.slots fd);
      if fd < t.search_from then t.search_from <- fd;
      Some v

let is_open t fd = Fd_map.mem t.slots fd
let count t = Fd_map.length t.slots

(* Fd_map iterates in ascending fd order — a function of the open set
   alone, never of allocation history — so letting the order escape to
   callers is deterministic by construction. *)
let iter t f = Fd_map.iter t.slots f
let fold t ~init ~f = Fd_map.fold t.slots ~init ~f:(fun acc fd v -> f acc fd v)
