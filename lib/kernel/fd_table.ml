type 'a t = {
  limit : int;
  slots : (int, 'a) Hashtbl.t;
  mutable search_from : int; (* lower bound on the lowest free slot *)
}

let create ?(limit = 1024) () =
  if limit <= 0 then invalid_arg "Fd_table.create: limit must be positive";
  { limit; slots = Hashtbl.create 64; search_from = 0 }

let limit t = t.limit

let alloc t v =
  if Hashtbl.length t.slots >= t.limit then Error `Emfile
  else begin
    (* search_from is maintained as a lower bound: it only moves back
       on close, so this scan is amortized O(1). *)
    let rec find_free fd = if Hashtbl.mem t.slots fd then find_free (fd + 1) else fd in
    let fd = find_free t.search_from in
    Hashtbl.replace t.slots fd v;
    t.search_from <- fd + 1;
    Ok fd
  end

let alloc_exn t v =
  match alloc t v with
  | Ok fd -> fd
  | Error `Emfile -> failwith "Fd_table.alloc_exn: out of descriptors"

let find t fd = Hashtbl.find_opt t.slots fd

let find_exn t fd =
  match find t fd with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Fd_table.find_exn: fd %d not open" fd)

let set t fd v =
  if not (Hashtbl.mem t.slots fd) then
    invalid_arg (Printf.sprintf "Fd_table.set: fd %d not open" fd)
  else Hashtbl.replace t.slots fd v

let close t fd =
  match Hashtbl.find_opt t.slots fd with
  | None -> None
  | Some v ->
      Hashtbl.remove t.slots fd;
      if fd < t.search_from then t.search_from <- fd;
      Some v

let is_open t fd = Hashtbl.mem t.slots fd
let count t = Hashtbl.length t.slots
(* [iter]/[fold] expose Hashtbl bucket order to their callers: any
   caller that lets the order escape into simulation-visible
   behaviour must sort first (the linter flags raw Hashtbl use at the
   call sites that matter). *)
let iter t f =
  (Hashtbl.iter f t.slots
  [@lint.ignore "order-exposing wrapper; callers must sort before order escapes"])

let fold t ~init ~f =
  (Hashtbl.fold (fun fd v acc -> f acc fd v) t.slots init
  [@lint.ignore "order-exposing wrapper; callers must sort before order escapes"])
