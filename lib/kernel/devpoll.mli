(** The paper's /dev/poll character device.

    One value of type [t] corresponds to one open of /dev/poll: an
    interest set kept in the kernel ({!Interest_table}), maintained
    incrementally with {!write}, and queried with {!dp_poll}
    (ioctl(DP_POLL)). The three optimizations of the paper's Section 3
    are all here:

    - {e state in the kernel}: only changes cross the user/kernel
      boundary, so a DP_POLL never pays per-interest copy-in;
    - {e device driver hints}: sockets whose drivers support hinting
      post status-change bits into the interest's hint field through a
      backmap subscription; a scan consults the hint and a cached
      driver result before paying for a driver callback. A cached
      "ready" result is always revalidated (hints do not report
      ready-to-not-ready transitions); a cached "not ready" result
      with no hint is trusted.
    - {e shared result mapping}: after {!alloc_result_map}
      (ioctl(DP_ALLOC) + mmap()), results are deposited in the shared
      area and the per-ready copy-out cost disappears.

    A process may open /dev/poll several times for independent
    interest sets. *)

open Sio_sim

type t

val create : host:Host.t -> lookup:(int -> Socket.t option) -> t
(** [lookup] resolves fds against the owning process's descriptor
    table at scan time, so descriptor reuse behaves as it would in the
    kernel (the interest silently applies to the new file). *)

val write : t -> (int * Pollmask.t) list -> unit
(** write(2) on /dev/poll: a list of pollfd entries. An entry whose
    events contain [POLLREMOVE] deletes the interest; otherwise the
    entry adds or replaces (Linux semantics; see
    {!Interest_table.set}). Charges syscall entry plus a per-change
    cost and the backmap write lock. *)

val alloc_result_map : t -> slots:int -> unit
(** ioctl(DP_ALLOC) followed by mmap(): subsequent polls report
    through the shared mapping. Raises [Invalid_argument] if [slots]
    is not positive or a mapping already exists. *)

val release_result_map : t -> unit
(** munmap(): back to copy-out reporting. *)

val has_result_map : t -> bool

val dp_poll :
  t ->
  max_results:int ->
  timeout:Time.t option ->
  k:(Poll.result list -> unit) ->
  unit
(** ioctl(DP_POLL): scan the interest set and return up to
    [max_results] ready descriptors; sleep when none are ready
    ([timeout] as in {!Poll.wait}). *)

val interest_count : t -> int
val find_interest : t -> int -> Interest_table.interest option

val active_count : t -> int
(** Size of the incremental ready set: interests not currently
    idle-certified. Everything else is charged analytically by scans
    (host cost O(active), identical charged nanoseconds). *)

val active_fds : t -> int list
(** The non-idle-certified fds in ascending order; test hook for the
    churn equivalence property. *)

val close : t -> unit
(** Releases the interest set and all backmap subscriptions. *)

val is_closed : t -> bool
