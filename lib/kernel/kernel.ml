open Sio_sim

type read_result = Data of string * int | Eof | Eagain | Econnreset

type 'a syscall_result = ('a, [ `Ebadf | `Emfile | `Eagain | `Einval ]) result

type write_error = [ `Ebadf | `Emfile | `Eagain | `Einval | `Econnreset ]

let enter proc extra =
  let host = Process.host proc in
  let costs = host.Host.costs in
  let counters = host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge host (Time.add costs.Cost_model.syscall_entry extra));
  host

let listen proc ~backlog =
  if backlog <= 0 then Error `Einval
  else begin
    let host = enter proc Time.zero in
    let sock = Socket.create_listening ~host ~backlog in
    match Process.install_socket proc sock with
    | Ok fd -> Ok fd
    | Error `Emfile -> Error `Emfile
  end

let accept proc fd =
  let host = enter proc Time.zero in
  let costs = host.Host.costs in
  match Process.lookup_socket proc fd with
  | None -> Error `Ebadf
  | Some listener -> (
      match Socket.accept_pop listener with
      | None -> Error `Eagain
      | Some sock ->
          if not (Socket.reserve_kernel_memory sock) then begin
            (* Modeled kernel memory exhausted: the connection is
               dropped before an fd is minted (the RST surfaces
               through the socket's observers). *)
            Socket.reset sock;
            Socket.discard sock;
            Error `Enobufs
          end
          else begin
            ignore (Host.charge host costs.Cost_model.accept_syscall);
            host.Host.counters.Host.accepts <- host.Host.counters.Host.accepts + 1;
            match Process.install_socket proc sock with
            | Ok newfd -> Ok (newfd, sock)
            | Error `Emfile ->
                (* Out of descriptors: the connection is dropped and
                   its arena slot reclaimed. *)
                Socket.reset sock;
                Socket.discard sock;
                Error `Emfile
          end)

let read proc fd =
  let host = enter proc Time.zero in
  let costs = host.Host.costs in
  ignore (Host.charge host costs.Cost_model.read_syscall);
  match Process.lookup_socket proc fd with
  | None -> Error `Ebadf
  | Some sock -> (
      match Socket.state sock with
      | Socket.Reset -> Ok Econnreset
      | Socket.Closed -> Error `Ebadf
      | Socket.Listening -> Error `Einval
      | Socket.Established | Socket.Peer_closed ->
          let bytes, text = Socket.read_all sock in
          if bytes > 0 then begin
            ignore (Host.charge host (Cost_model.copy_cost costs ~bytes_len:bytes));
            Ok (Data (text, bytes))
          end
          else if Socket.state sock = Socket.Peer_closed then Ok Eof
          else Ok Eagain)

let write proc fd ~bytes_len =
  if bytes_len < 0 then Error `Einval
  else begin
    let host = enter proc Time.zero in
    let costs = host.Host.costs in
    ignore (Host.charge host costs.Cost_model.write_syscall);
    match Process.lookup_socket proc fd with
    | None -> Error `Ebadf
    | Some sock ->
        if Socket.state sock = Socket.Reset then Error `Econnreset
        else begin
          let accepted = Socket.write_reserve sock bytes_len in
          if accepted > 0 then begin
            ignore (Host.charge host (Cost_model.copy_cost costs ~bytes_len:accepted));
            Socket.transport_send sock accepted
          end;
          Ok accepted
        end
  end

let sendfile proc fd ~bytes_len =
  if bytes_len < 0 then Error `Einval
  else begin
    let host = enter proc Time.zero in
    let costs = host.Host.costs in
    ignore (Host.charge host costs.Cost_model.write_syscall);
    match Process.lookup_socket proc fd with
    | None -> Error `Ebadf
    | Some sock ->
        if Socket.state sock = Socket.Reset then Error `Econnreset
        else begin
          let accepted = Socket.write_reserve sock bytes_len in
          if accepted > 0 then begin
            ignore
              (Host.charge host (Cost_model.sendfile_cost costs ~bytes_len:accepted));
            Socket.transport_send sock accepted
          end;
          Ok accepted
        end
  end

let ring_attach proc fd ~slot_bytes =
  if slot_bytes <= 0 then Error `Einval
  else begin
    let host = enter proc Time.zero in
    let costs = host.Host.costs in
    match Process.lookup_socket proc fd with
    | None -> Error `Ebadf
    | Some sock -> (
        match Socket.state sock with
        | Socket.Established | Socket.Peer_closed ->
            (* Same one-time setup as the /dev/poll result region:
               allocating the ring and mapping it into user space. *)
            ignore (Host.charge host costs.Cost_model.mmap_setup);
            if Socket.ring_attach sock ~slot_bytes then Ok ()
            else Error `Enobufs
        | Socket.Reset -> Error `Econnreset
        | Socket.Listening | Socket.Closed -> Error `Einval)
  end

let ring_send proc fd ~bytes_len ~copy_bytes =
  if bytes_len < 0 || copy_bytes < 0 || copy_bytes > bytes_len then Error `Einval
  else begin
    let host = enter proc Time.zero in
    let costs = host.Host.costs in
    ignore (Host.charge host costs.Cost_model.write_syscall);
    match Process.lookup_socket proc fd with
    | None -> Error `Ebadf
    | Some sock ->
        if Socket.state sock = Socket.Reset then Error `Econnreset
        else begin
          match Socket.ring_reserve sock bytes_len ~copy_bytes with
          | None -> Error `Einval
          | Some (accepted, pages) ->
              if accepted > 0 then begin
                (* Selective mode copies the first [copy_bytes] through
                   the buffer (headers); everything past them was pinned
                   into the ring and is charged per page, not per byte. *)
                let copied = Stdlib.min accepted copy_bytes in
                if copied > 0 then
                  ignore
                    (Host.charge host (Cost_model.copy_cost costs ~bytes_len:copied));
                if pages > 0 then
                  ignore (Host.charge host (Cost_model.page_map_cost costs ~pages));
                Socket.transport_send sock accepted
              end;
              Ok accepted
        end
  end

let close proc fd =
  let host = enter proc Time.zero in
  let costs = host.Host.costs in
  match Fd_table.close (Process.fds proc) fd with
  | None -> Error `Ebadf
  | Some (Process.Sock sock) ->
      ignore (Host.charge host costs.Cost_model.close_syscall);
      Socket.close sock;
      Ok ()
  | Some (Process.Dev dev) ->
      ignore (Host.charge host costs.Cost_model.close_syscall);
      Devpoll.close dev;
      Ok ()

let fcntl_setsig
    proc fd ~signo =
  match Process.lookup_socket proc fd with
  | None -> Error `Ebadf
  | Some sock ->
      Rt_signal.set_signal (Process.rt_queue proc) ~socket:sock ~fd ~signo;
      Ok ()

let fcntl_clearsig
    proc fd =
  match Process.lookup_socket proc fd with
  | None -> Error `Ebadf
  | Some sock ->
      Rt_signal.clear_signal (Process.rt_queue proc) ~socket:sock ~fd;
      Ok ()

let[@complexity "O(interests)"] poll proc
    ~interests ~timeout ~k =
  Poll.wait ~host:(Process.host proc)
    ~lookup:(Process.lookup_socket proc)
    ~interests ~timeout ~k

let devpoll_open proc =
  let host = enter proc Time.zero in
  let dev = Devpoll.create ~host ~lookup:(Process.lookup_socket proc) in
  match Fd_table.alloc (Process.fds proc) (Process.Dev dev) with
  | Ok fd -> Ok fd
  | Error `Emfile -> Error `Emfile

let devpoll_write
    proc fd entries =
  match Process.lookup_devpoll proc fd with
  | None -> Error `Ebadf
  | Some dev ->
      Devpoll.write dev entries;
      Ok ()

let devpoll_alloc_map
    proc fd ~slots =
  match Process.lookup_devpoll proc fd with
  | None -> Error `Ebadf
  | Some dev ->
      Devpoll.alloc_result_map dev ~slots;
      Ok ()

let[@complexity "O(active)"] devpoll_wait
    proc fd ~max_results ~timeout ~k =
  match Process.lookup_devpoll proc fd with
  | None -> Error `Ebadf
  | Some dev ->
      Devpoll.dp_poll dev ~max_results ~timeout ~k;
      Ok ()

let[@complexity "O(ready)"] sigwaitinfo
    proc ~k =
  Rt_signal.sigwaitinfo (Process.rt_queue proc) ~k

let[@complexity "O(ready)"] sigtimedwait4
    proc ~max ~timeout ~k =
  Rt_signal.sigtimedwait4 (Process.rt_queue proc) ~max ~timeout ~k

(* Flushing the queue is a syscall like any other (the real server
   does it with a signal-mask round trip); it was the one entry point
   that cost nothing. *)
let flush_signals proc =
  ignore (enter proc Time.zero);
  Rt_signal.flush (Process.rt_queue proc)

let compute proc cost = ignore (Host.charge (Process.host proc) cost)

let yield proc k = Host.charge_run (Process.host proc) ~cost:Time.zero k
