(** The syscall layer.

    Servers talk to the simulated kernel exclusively through this
    module. Calls return their results synchronously (the simulation
    knows the answer immediately) while their CPU costs are charged to
    the host's single CPU, pushing its completion horizon forward;
    server loops schedule their next step at that horizon via
    {!Host.charge_run}. Blocking calls ({!poll}, {!devpoll_wait},
    {!sigwaitinfo}, {!sigtimedwait4}) take continuations instead. *)

open Sio_sim

type read_result =
  | Data of string * int  (** payload text and byte count *)
  | Eof  (** orderly shutdown by the peer *)
  | Eagain  (** nothing buffered *)
  | Econnreset

type 'a syscall_result = ('a, [ `Ebadf | `Emfile | `Eagain | `Einval ]) result

type write_error = [ `Ebadf | `Emfile | `Eagain | `Einval | `Econnreset ]
(** Send-path errors: the plain {!type-syscall_result} set plus
    [`Econnreset] for a send attempted after the peer reset the
    connection (previously indistinguishable from a full buffer's
    0-byte short write). *)

(** {1 Socket calls} *)

val listen : Process.t -> backlog:int -> int syscall_result
(** socket() + bind() + listen(): a listening descriptor. *)

val accept :
  Process.t ->
  int ->
  (int * Socket.t, [ `Ebadf | `Emfile | `Eagain | `Einval | `Enobufs ]) result
(** [`Eagain] when the accept queue is empty; [`Emfile] when the
    process is out of descriptors; [`Enobufs] when the host's modeled
    kernel-memory budget ({!Host.t.mem_limit}) cannot fit another
    connection. In both drop cases the connection is reset and its
    arena slot reclaimed, as the real kernel does. *)

val read : Process.t -> int -> read_result syscall_result

val write : Process.t -> int -> bytes_len:int -> (int, write_error) result
(** Returns bytes accepted into the send buffer (possibly short; 0
    when full — the caller should wait for POLLOUT). *)

val sendfile : Process.t -> int -> bytes_len:int -> (int, write_error) result
(** Like {!write} but through the zero-copy path: the payload moves
    once inside the kernel instead of crossing the user boundary
    twice. The paper's Section 6 flags sendfile() as the natural
    companion to the new event models. *)

val ring_attach :
  Process.t ->
  int ->
  slot_bytes:int ->
  (unit, [ `Ebadf | `Einval | `Enobufs | `Econnreset ]) result
(** Attaches a shared transmit ring ({!Zc_ring}) to the connection,
    charging the one-time {!Cost_model.t.mmap_setup} cost. The ring is
    sized to the socket's send-buffer capacity and its slots are
    reserved against the host's memory budget; [`Enobufs] when that
    budget refuses. Idempotent on an already-attached socket (the
    setup cost is charged again — the caller is expected to attach
    once per connection). *)

val ring_send :
  Process.t -> int -> bytes_len:int -> copy_bytes:int -> (int, write_error) result
(** Like {!write}, but payload beyond the first [copy_bytes] is pinned
    into the attached ring and charged per freshly occupied page
    ({!Cost_model.t.page_map_ns}) instead of per byte; the first
    [copy_bytes] (selective mode's headers) still pay
    {!Cost_model.t.copy_per_byte_ns}. [`Einval] when no ring is
    attached or [copy_bytes] is out of range. Pure zero-copy is
    [~copy_bytes:0]. *)

val close : Process.t -> int -> unit syscall_result

val fcntl_setsig : Process.t -> int -> signo:int -> unit syscall_result
(** Routes the descriptor's I/O completion events to the process's RT
    signal queue. [signo] must be at least {!Rt_signal.sigrtmin}. *)

val fcntl_clearsig : Process.t -> int -> unit syscall_result

(** {1 poll()} *)

val poll :
  Process.t ->
  interests:(int * Pollmask.t) list ->
  timeout:Time.t option ->
  k:(Poll.result list -> unit) ->
  unit

(** {1 /dev/poll} *)

val devpoll_open : Process.t -> int syscall_result
val devpoll_write : Process.t -> int -> (int * Pollmask.t) list -> unit syscall_result
val devpoll_alloc_map : Process.t -> int -> slots:int -> unit syscall_result

val devpoll_wait :
  Process.t ->
  int ->
  max_results:int ->
  timeout:Time.t option ->
  k:(Poll.result list -> unit) ->
  (unit, [ `Ebadf ]) result

(** {1 RT signals} *)

val sigwaitinfo : Process.t -> k:(Rt_signal.delivery -> unit) -> unit

val sigtimedwait4 :
  Process.t ->
  max:int ->
  timeout:Time.t option ->
  k:(Rt_signal.delivery list -> unit) ->
  unit

val flush_signals : Process.t -> int

(** {1 User-space work} *)

val compute : Process.t -> Time.t -> unit
(** Charges application CPU time (request parsing, response
    formatting) to the host CPU. *)

val yield : Process.t -> (unit -> unit) -> unit
(** Schedules [k] at the CPU's current completion horizon: the point
    where all work charged so far has finished. *)
