open Sio_sim

type result = { fd : int; revents : Pollmask.t }

(* Bits always reported regardless of subscription. *)
let forced = Pollmask.union Pollmask.pollerr (Pollmask.union Pollmask.pollhup Pollmask.pollnval)

let scan_cost ~host ~n_interests =
  let costs = host.Host.costs in
  Time.mul
    (Time.add costs.Cost_model.poll_copyin_per_fd costs.Cost_model.driver_poll_callback)
    n_interests

(* One pass over the interest list, asking each driver for status.
   The driver-callback cost is charged inside [Socket.driver_poll];
   missing descriptors only cost the copy-in. Results accumulate into
   the caller's reusable buffer (cleared here), so the rescan-per-wake
   loop below allocates nothing per pass. *)
let scan ~host ~lookup ~interests ~ready =
  let costs = host.Host.costs in
  Ready_buffer.clear ready;
  List.iter
    (fun (fd, events) ->
      ignore (Host.charge host costs.Cost_model.poll_copyin_per_fd);
      let revents =
        match lookup fd with
        | None -> Pollmask.pollnval
        | Some sock ->
            Pollmask.inter (Socket.driver_poll sock) (Pollmask.union events forced)
      in
      if not (Pollmask.is_empty revents) then Ready_buffer.push ready { fd; revents })
    interests;
  Ready_buffer.length ready

let wait ~host ~lookup ~interests ~timeout ~k =
  let costs = host.Host.costs in
  let counters = host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge host costs.Cost_model.syscall_entry);
  let ready = Ready_buffer.create ~initial_capacity:16 () in
  let finish results =
    ignore
      (Host.charge host
         (Time.mul costs.Cost_model.poll_copyout_per_ready (List.length results)));
    Host.charge_run host ~cost:Time.zero (fun () -> k results)
  in
  let finish_ready () = finish (Ready_buffer.to_list ready) in
  if scan ~host ~lookup ~interests ~ready > 0 then finish_ready ()
  else
    match timeout with
    | Some t when t <= Time.zero -> finish []
    | _ ->
        (* Sleep: register on every socket's wait queue. *)
        let sockets = List.filter_map (fun (fd, _) -> lookup fd) interests in
        let n = List.length interests in
        ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
        let timer = ref None in
        let waiter_ref = ref None in
        let cleanup () =
          (match !waiter_ref with
          | Some w -> List.iter (fun s -> ignore (Socket.unregister_waiter s w)) sockets
          | None -> ());
          ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_unregister n));
          match !timer with
          | Some h ->
              Engine.cancel host.Host.engine h;
              timer := None
          | None -> ()
        in
        let rec on_wake _mask =
          cleanup ();
          (* Wakeup rescans the whole set, as Linux 2.2 does. *)
          if scan ~host ~lookup ~interests ~ready > 0 then finish_ready ()
          else begin
            (* Spurious wakeup (event consumed elsewhere): sleep again. *)
            let w = { Socket.wake = on_wake } in
            waiter_ref := Some w;
            List.iter (fun s -> Socket.register_waiter s w) sockets;
            ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
            arm_timer ()
          end
        and arm_timer () =
          match timeout with
          | None -> ()
          | Some t ->
              timer :=
                Some
                  (Engine.after host.Host.engine t (fun () ->
                       timer := None;
                       cleanup ();
                       finish []))
        in
        let w = { Socket.wake = on_wake } in
        waiter_ref := Some w;
        List.iter (fun s -> Socket.register_waiter s w) sockets;
        arm_timer ()
