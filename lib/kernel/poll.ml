open Sio_sim

type result = { fd : int; revents : Pollmask.t }

(* Bits always reported regardless of subscription. *)
let forced = Pollmask.union Pollmask.pollerr (Pollmask.union Pollmask.pollhup Pollmask.pollnval)

let scan_cost ~host ~n_interests =
  let costs = host.Host.costs in
  Time.mul
    (Time.add costs.Cost_model.poll_copyin_per_fd costs.Cost_model.driver_poll_callback)
    n_interests

(* One pass over the interest list, asking each driver for status.
   The driver-callback cost is charged inside [Socket.driver_poll];
   missing descriptors only cost the copy-in. Results accumulate into
   the caller's reusable buffer (cleared here), so the rescan-per-wake
   loop below allocates nothing per pass. *)
let[@complexity "O(interests)"] scan ~host ~lookup ~interests ~ready =
  let costs = host.Host.costs in
  Ready_buffer.clear ready;
  List.iter
    (fun (fd, events) ->
      ignore (Host.charge host costs.Cost_model.poll_copyin_per_fd);
      let revents =
        match lookup fd with
        | None -> Pollmask.pollnval
        | Some sock ->
            Pollmask.inter (Socket.driver_poll sock) (Pollmask.union events forced)
      in
      if not (Pollmask.is_empty revents) then Ready_buffer.push ready { fd; revents })
    interests;
  Ready_buffer.length ready

let[@complexity "O(interests)"] wait ~host ~lookup ~interests ~timeout ~k =
  let costs = host.Host.costs in
  let counters = host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge host costs.Cost_model.syscall_entry);
  let ready = Ready_buffer.create ~initial_capacity:16 () in
  let finish results =
    ignore
      (Host.charge host
         (Time.mul costs.Cost_model.poll_copyout_per_ready (List.length results)));
    Host.charge_run host ~cost:Time.zero (fun () -> k results)
  in
  let finish_ready () = finish (Ready_buffer.to_list ready) in
  if scan ~host ~lookup ~interests ~ready > 0 then finish_ready ()
  else
    match timeout with
    | Some t when t <= Time.zero -> finish []
    | _ ->
        (* Sleep: register on every socket's wait queue. *)
        let sockets = List.filter_map (fun (fd, _) -> lookup fd) interests in
        let n = List.length interests in
        ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
        let timer = ref None in
        let waiter_ref = ref None in
        let cleanup () =
          (match !waiter_ref with
          | Some w -> List.iter (fun s -> ignore (Socket.unregister_waiter s w)) sockets
          | None -> ());
          ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_unregister n));
          match !timer with
          | Some h ->
              Engine.cancel host.Host.engine h;
              timer := None
          | None -> ()
        in
        let rec on_wake _mask =
          cleanup ();
          (* Wakeup rescans the whole set, as Linux 2.2 does. *)
          if scan ~host ~lookup ~interests ~ready > 0 then finish_ready ()
          else begin
            (* Spurious wakeup (event consumed elsewhere): sleep again. *)
            let w = { Socket.wake = on_wake } in
            waiter_ref := Some w;
            List.iter (fun s -> Socket.register_waiter s w) sockets;
            ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
            arm_timer ()
          end
        and arm_timer () =
          match timeout with
          | None -> ()
          | Some t ->
              timer :=
                Some
                  (Engine.after host.Host.engine t (fun () ->
                       timer := None;
                       cleanup ();
                       finish []))
        in
        let w = { Socket.wake = on_wake } in
        waiter_ref := Some w;
        List.iter (fun s -> Socket.register_waiter s w) sockets;
        arm_timer ()

(* A persistent poll set: the interest list a server passes to poll()
   on every loop iteration, kept between calls so the host-side scan
   can be O(active) while charging the classic O(n) costs analytically
   (DESIGN.md §5: charged nanoseconds and counters are unchanged; only
   the host container changed). Results still come back in interest
   insertion order, exactly as [wait] reports them. *)
module Pset = struct
  type entry = {
    fd : int;
    order : int; (* insertion rank; re-adding after remove re-ranks *)
    mutable events : Pollmask.t;
    mutable bound : (Socket.t * int) option; (* watched socket, token *)
  }

  type pset = {
    host : Host.t;
    lookup : int -> Socket.t option;
    entries : entry Fd_map.t;
    active : entry Fd_map.t;
        (* Conservative superset of entries whose probe might report
           readiness. Everything outside it was last seen not-ready on
           a live, watcher-bound socket, so its probe charges exactly
           copy-in + driver callback and reports nothing. *)
    ready : result Ready_buffer.t;
    mutable next_order : int;
  }

  let create ~host ~lookup () =
    {
      host;
      lookup;
      entries = Fd_map.create ~initial_capacity:64 ();
      active = Fd_map.create ~initial_capacity:64 ();
      ready = Ready_buffer.create ~initial_capacity:16 ();
      next_order = 0;
    }

  let unbind e =
    match e.bound with
    | Some (sock, wtoken) ->
        Socket.remove_watcher sock wtoken;
        e.bound <- None
    | None -> ()

  let set s fd events =
    match Fd_map.find s.entries fd with
    | Some e ->
        e.events <- events;
        Fd_map.set s.active fd e
    | None ->
        let e = { fd; order = s.next_order; events; bound = None } in
        s.next_order <- s.next_order + 1;
        Fd_map.set s.entries fd e;
        Fd_map.set s.active fd e

  let remove s fd =
    match Fd_map.find s.entries fd with
    | None -> ()
    | Some e ->
        unbind e;
        ignore (Fd_map.remove s.entries fd);
        ignore (Fd_map.remove s.active fd)

  let mem s fd = Fd_map.mem s.entries fd
  let length s = Fd_map.length s.entries
  let active_fds s = List.map fst (Fd_map.to_list s.active)

  (* One charged probe, identical to the per-fd body of [scan]. Binds
     the watcher to the entry's current socket (descriptor reuse
     rebinds) and re-certifies the entry idle on a not-ready result. *)
  let probe s e =
    let costs = s.host.Host.costs in
    ignore (Host.charge s.host costs.Cost_model.poll_copyin_per_fd);
    match s.lookup e.fd with
    | None -> Pollmask.pollnval (* stays active: POLLNVAL is always reported *)
    | Some sock ->
        (match e.bound with
        | Some (s0, _) when Socket.id s0 = Socket.id sock -> ()
        | Some _ | None ->
            unbind e;
            let wtoken = Socket.add_watcher sock (fun () -> Fd_map.set s.active e.fd e) in
            e.bound <- Some (sock, wtoken));
        let revents = Pollmask.inter (Socket.driver_poll sock) (Pollmask.union e.events forced) in
        if Pollmask.is_empty revents then ignore (Fd_map.remove s.active e.fd);
        revents

  (* O(active) scan: idle entries are charged in one batch (each would
     cost copy-in + driver callback and bump driver_polls — they all
     have live sockets, else they could not be idle-certified), active
     entries are probed individually in insertion order so results
     match [scan] byte for byte. *)
  let[@complexity "O(active)"] scan_set s =
    let costs = s.host.Host.costs in
    let counters = s.host.Host.counters in
    Ready_buffer.clear s.ready;
    let idle = Fd_map.length s.entries - Fd_map.length s.active in
    if idle > 0 then begin
      ignore
        (Cost_model.charge_batch s.host.Host.cpu
           ~cost:
             (Time.add costs.Cost_model.poll_copyin_per_fd
                costs.Cost_model.driver_poll_callback)
           ~count:idle);
      counters.Host.driver_polls <- counters.Host.driver_polls + idle
    end;
    let acts = Fd_map.fold s.active ~init:[] ~f:(fun acc _ e -> e :: acc) in
    let acts = List.sort (fun a b -> compare a.order b.order) acts in
    List.iter
      (fun e ->
        let revents = probe s e in
        if not (Pollmask.is_empty revents) then Ready_buffer.push s.ready { fd = e.fd; revents })
      acts;
    Ready_buffer.length s.ready

  (* poll() over the persistent set: charge-for-charge the same call
     sequence as [wait] — syscall entry, scan, sleep registration on
     every interest's socket, full rescan per wake, copy-out per ready. *)
  let[@complexity "O(interests)"] wait_set s ~timeout ~k =
    let host = s.host in
    let costs = host.Host.costs in
    let counters = host.Host.counters in
    counters.Host.syscalls <- counters.Host.syscalls + 1;
    ignore (Host.charge host costs.Cost_model.syscall_entry);
    let finish results =
      ignore
        (Host.charge host
           (Time.mul costs.Cost_model.poll_copyout_per_ready (List.length results)));
      Host.charge_run host ~cost:Time.zero (fun () -> k results)
    in
    let finish_ready () = finish (Ready_buffer.to_list s.ready) in
    if scan_set s > 0 then finish_ready ()
    else
      match timeout with
      | Some t when t <= Time.zero -> finish []
      | _ ->
          let sockets =
            Fd_map.fold s.entries ~init:[] ~f:(fun acc fd _ ->
                match s.lookup fd with Some sock -> sock :: acc | None -> acc)
          in
          let n = Fd_map.length s.entries in
          ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
          let timer = ref None in
          let waiter_ref = ref None in
          let cleanup () =
            (match !waiter_ref with
            | Some w -> List.iter (fun sock -> ignore (Socket.unregister_waiter sock w)) sockets
            | None -> ());
            ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_unregister n));
            match !timer with
            | Some h ->
                Engine.cancel host.Host.engine h;
                timer := None
            | None -> ()
          in
          let rec on_wake _mask =
            cleanup ();
            if scan_set s > 0 then finish_ready ()
            else begin
              let w = { Socket.wake = on_wake } in
              waiter_ref := Some w;
              List.iter (fun sock -> Socket.register_waiter sock w) sockets;
              ignore (Host.charge host (Time.mul costs.Cost_model.wait_queue_register n));
              arm_timer ()
            end
          and arm_timer () =
            match timeout with
            | None -> ()
            | Some t ->
                timer :=
                  Some
                    (Engine.after host.Host.engine t (fun () ->
                         timer := None;
                         cleanup ();
                         finish []))
          in
          let w = { Socket.wake = on_wake } in
          waiter_ref := Some w;
          List.iter (fun sock -> Socket.register_waiter sock w) sockets;
          arm_timer ()
end
