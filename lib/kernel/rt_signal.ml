open Sio_sim

type siginfo = { signo : int; fd : int; band : Pollmask.t }
type delivery = Signal of siginfo | Overflow

let sigrtmin = 32

type entry = { info : siginfo; seq : int }

(* The observer token of an F_SETSIG binding is arena-native: it
   lives in the bound socket's {!Conn_arena} cold slot under this
   queue's attach key; the queue keeps only an fd -> socket-handle
   index so rebinds and clears can find the old socket. *)
type Conn_arena.cold += Rt_binding of { token : int }

type queue = {
  host : Host.t;
  limit : int;
  heap : entry Heap.t; (* min by (signo, seq): POSIX delivery order *)
  mutable next_seq : int;
  mutable sigio : bool;
  key : int; (* attach key naming this queue's bindings *)
  bindings : Socket.t Fd_map.t; (* fd -> socket the signal is bound on *)
  waiters : (delivery list -> unit) Queue.t; (* blocked sigwait callers *)
  mutable waiter_max : int Queue.t; (* parallel queue of batch sizes *)
}

let entry_leq a b =
  a.info.signo < b.info.signo || (a.info.signo = b.info.signo && a.seq <= b.seq)

let create_queue ~host ?(limit = 1024) () =
  if limit <= 0 then invalid_arg "Rt_signal.create_queue: limit must be positive";
  {
    host;
    limit;
    heap = Heap.create ~leq:entry_leq ();
    next_seq = 0;
    sigio = false;
    key = Socket.new_attach_key ();
    bindings = Fd_map.create ~initial_capacity:64 ();
    waiters = Queue.create ();
    waiter_max = Queue.create ();
  }

let pending q = Heap.length q.heap
let sigio_pending q = q.sigio
let limit q = q.limit

(* Dequeue up to [max] deliveries; assumes something is available. *)
let[@complexity "O(ready)"] take q max =
  let costs = q.host.Host.costs in
  let rec go acc n =
    if n = 0 then List.rev acc
    else if q.sigio then begin
      (* SIGIO is a classic signal: numerically below SIGRTMIN, so it
         is delivered before any queued RT signal. *)
      q.sigio <- false;
      ignore (Host.charge q.host costs.Cost_model.rt_dequeue);
      go (Overflow :: acc) (n - 1)
    end
    else
      match Heap.pop q.heap with
      | Some e ->
          ignore (Host.charge q.host costs.Cost_model.rt_dequeue);
          go (Signal e.info :: acc) (n - 1)
      | None -> List.rev acc
  in
  go [] max

let service_waiters q =
  while
    (not (Queue.is_empty q.waiters)) && (q.sigio || not (Heap.is_empty q.heap))
  do
    let k = Queue.take q.waiters in
    let max = Queue.take q.waiter_max in
    let ds = take q max in
    Host.charge_run q.host ~cost:Time.zero (fun () -> k ds)
  done

let enqueue q info =
  let costs = q.host.Host.costs in
  let counters = q.host.Host.counters in
  if Heap.length q.heap >= q.limit then begin
    (* Queue exhausted: drop the signal; raise SIGIO once. *)
    counters.Host.rt_dropped <- counters.Host.rt_dropped + 1;
    if not q.sigio then begin
      q.sigio <- true;
      counters.Host.rt_overflows <- counters.Host.rt_overflows + 1
    end
  end
  else begin
    counters.Host.rt_enqueued <- counters.Host.rt_enqueued + 1;
    ignore (Host.charge q.host costs.Cost_model.rt_enqueue);
    Heap.push q.heap { info; seq = q.next_seq };
    q.next_seq <- q.next_seq + 1
  end;
  service_waiters q

let set_signal q ~socket ~fd ~signo =
  if signo < sigrtmin then invalid_arg "Rt_signal.set_signal: signo below SIGRTMIN";
  let costs = q.host.Host.costs in
  let counters = q.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge q.host costs.Cost_model.syscall_entry);
  ignore (Host.charge q.host costs.Cost_model.fcntl_call);
  (match Fd_map.find q.bindings fd with
  | Some old_sock ->
      (match Socket.attachment old_sock ~key:q.key with
      | Some (Rt_binding { token }) ->
          Socket.unsubscribe old_sock token;
          Socket.detach old_sock ~key:q.key
      | Some _ | None -> ());
      ignore (Fd_map.remove q.bindings fd)
  | None -> ());
  let token =
    Socket.subscribe socket (fun mask -> enqueue q { signo; fd; band = mask })
  in
  Socket.attach socket ~key:q.key (Rt_binding { token });
  Fd_map.set q.bindings fd socket

let clear_signal q ~socket ~fd =
  let costs = q.host.Host.costs in
  let counters = q.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge q.host costs.Cost_model.syscall_entry);
  ignore (Host.charge q.host costs.Cost_model.fcntl_call);
  match Fd_map.find q.bindings fd with
  | Some bound_sock when bound_sock == socket ->
      (match Socket.attachment bound_sock ~key:q.key with
      | Some (Rt_binding { token }) ->
          Socket.unsubscribe bound_sock token;
          Socket.detach bound_sock ~key:q.key
      | Some _ | None -> ());
      ignore (Fd_map.remove q.bindings fd)
  | Some _ | None -> ()

let[@complexity "O(ready)"] wait_general q ~max ~timeout ~k =
  let costs = q.host.Host.costs in
  let counters = q.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge q.host costs.Cost_model.syscall_entry);
  ignore (Host.charge q.host costs.Cost_model.sigwait_call);
  if q.sigio || not (Heap.is_empty q.heap) then begin
    let ds = take q max in
    Host.charge_run q.host ~cost:Time.zero (fun () -> k ds)
  end
  else
    match timeout with
    | Some t when t <= Time.zero -> Host.charge_run q.host ~cost:Time.zero (fun () -> k [])
    | _ ->
        Queue.add k q.waiters;
        Queue.add max q.waiter_max;
        (match timeout with
        | None -> ()
        | Some t ->
            ignore
              (Engine.after q.host.Host.engine t (fun () ->
                   (* If still waiting, deliver an empty result. This
                      linear removal only runs on timeouts, which are
                      rare in every workload we model. *)
                   let still_waiting = ref false in
                   let ks = Queue.to_seq q.waiters |> List.of_seq in
                   let ms = Queue.to_seq q.waiter_max |> List.of_seq in
                   Queue.clear q.waiters;
                   Queue.clear q.waiter_max;
                   List.iter2
                     (fun k' m ->
                       if k' == k then still_waiting := true
                       else begin
                         Queue.add k' q.waiters;
                         Queue.add m q.waiter_max
                       end)
                     ks ms;
                   if !still_waiting then k [])))

let[@complexity "O(ready)"] sigwaitinfo q ~k =
  wait_general q ~max:1 ~timeout:None ~k:(fun ds ->
      match ds with
      | [ d ] -> k d
      | [] | _ :: _ :: _ -> assert false)

let[@complexity "O(ready)"] sigtimedwait4 q ~max ~timeout ~k =
  if max <= 0 then invalid_arg "Rt_signal.sigtimedwait4: max must be positive";
  wait_general q ~max ~timeout ~k

let flush q =
  let dropped = Heap.length q.heap in
  Heap.clear q.heap;
  q.sigio <- false;
  dropped
