type key = { file_id : int; page : int }

(* Doubly linked LRU list over nodes indexed by a hash table. *)
type node = {
  key : key;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (key, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity_pages =
  if capacity_pages <= 0 then invalid_arg "Page_cache.create: capacity must be positive";
  { capacity = capacity_pages; table = Hashtbl.create 256; head = None; tail = None;
    hits = 0; misses = 0 }

let capacity t = t.capacity
let resident t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key

let touch t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      `Hit
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { key; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      `Miss

let contains t key = Hashtbl.mem t.table key
let hits t = t.hits
let misses t = t.misses

let invalidate_file t ~file_id =
  (* All victims are unlinked and removed below; the resulting cache
     state (and the returned count) is the same whatever order the
     table enumerates them in. *)
  let victims =
    (Hashtbl.fold
       (fun key node acc -> if key.file_id = file_id then (key, node) :: acc else acc)
       t.table []
    [@lint.ignore "every victim is removed; final LRU state is order-independent"])
  in
  List.iter
    (fun (key, node) ->
      unlink t node;
      Hashtbl.remove t.table key)
    victims;
  List.length victims
