open Sio_sim
open Sio_net

type t = {
  net : Network.t;
  listener : Socket.t;
  extra_latency : Time.t;
  handlers : client_handlers;
  id : int;
  mutable server_sock : Socket.t option;
  mutable client_open : bool;
}

and client_handlers = {
  on_established : t -> unit;
  on_refused : t -> unit;
  on_bytes : t -> int -> unit;
  on_server_fin : t -> unit;
  on_reset : t -> unit;
}

let null_handlers =
  {
    on_established = (fun _ -> ());
    on_refused = (fun _ -> ());
    on_bytes = (fun _ _ -> ());
    on_server_fin = (fun _ -> ());
    on_reset = (fun _ -> ());
  }

let segment_overhead = 40 (* TCP/IP header bytes: SYN, FIN, RST *)

(* Atomic for the same reason as [Socket.next_id]: parallel sweeps
   must not mint duplicate connection ids across domains. *)
let next_id = Atomic.make 0

let charge_softirq host =
  let counters = host.Host.counters in
  counters.Host.softirqs <- counters.Host.softirqs + 1;
  ignore (Host.charge host host.Host.costs.Cost_model.softirq_per_packet)

let connect ~net ~listener ?(extra_latency = Time.zero) ~handlers () =
  let conn =
    {
      net;
      listener;
      extra_latency;
      handlers;
      id = 1 + Atomic.fetch_and_add next_id 1;
      server_sock = None;
      client_open = true;
    }
  in
  let host = Socket.host listener in
  (* SYN travels up; the server's softirq handler either queues the
     new connection or answers with RST. *)
  Network.send_to_server net ~extra_latency ~bytes_len:segment_overhead (fun () ->
      charge_softirq host;
      let refuse () =
        Network.send_to_client net ~extra_latency ~bytes_len:segment_overhead
          (fun () -> if conn.client_open then handlers.on_refused conn)
      in
      match Socket.state listener with
      | Socket.Listening ->
          let sock = Socket.create_established ~host in
          Socket.set_tcp_link sock conn.id;
          Socket.set_transport sock
            ~on_send:(fun n ->
              (* Response bytes toward the client; buffer space is
                 reclaimed when the wire has carried them. *)
              Network.send_to_client net ~extra_latency ~bytes_len:n (fun () ->
                  Socket.release_send_space sock n;
                  if conn.client_open then handlers.on_bytes conn n))
            ~on_close:(fun () ->
              Network.send_to_client net ~extra_latency ~bytes_len:segment_overhead
                (fun () -> if conn.client_open then handlers.on_server_fin conn));
          (* A server-side reset (e.g. accept with a full descriptor
             table) must surface as an RST at the client. *)
          ignore
            (Socket.subscribe sock (fun mask ->
                 if Pollmask.mem Pollmask.pollerr mask then
                   Network.send_to_client net ~extra_latency
                     ~bytes_len:segment_overhead (fun () ->
                       if conn.client_open then begin
                         conn.client_open <- false;
                         handlers.on_reset conn
                       end))
            [@lint.ignore
              "socket-lifetime subscription: Socket.close reclaims every observer \
               registration with the connection's arena slot, so no per-subscription \
               unsubscribe exists"]);
          if Socket.enqueue_accept listener sock then begin
            conn.server_sock <- Some sock;
            Network.send_to_client net ~extra_latency ~bytes_len:segment_overhead
              (fun () -> if conn.client_open then handlers.on_established conn)
          end
          else begin
            refuse ();
            (* The backlog refused it: nothing holds this socket, so
               its arena slot would leak across a reopen storm. *)
            Socket.discard sock
          end
      | Socket.Established | Socket.Peer_closed | Socket.Reset | Socket.Closed ->
          let counters = host.Host.counters in
          counters.Host.connections_refused <- counters.Host.connections_refused + 1;
          refuse ());
  conn

let id t = t.id
let server_socket t = t.server_sock

let client_send t ~bytes_len ~payload =
  if bytes_len < 0 then invalid_arg "Tcp.client_send: negative length";
  Network.send_to_server t.net ~extra_latency:t.extra_latency
    ~bytes_len:(bytes_len + segment_overhead) (fun () ->
      match t.server_sock with
      | Some sock -> ignore (Socket.deliver sock ~bytes_len ~payload)
      | None -> ())

let client_close t =
  if t.client_open then begin
    t.client_open <- false;
    Network.send_to_server t.net ~extra_latency:t.extra_latency
      ~bytes_len:segment_overhead (fun () ->
        match t.server_sock with
        | Some sock ->
            charge_softirq (Socket.host sock);
            Socket.peer_closed sock
        | None -> ())
  end

let client_abort t =
  if t.client_open then begin
    t.client_open <- false;
    Network.send_to_server t.net ~extra_latency:t.extra_latency
      ~bytes_len:segment_overhead (fun () ->
        match t.server_sock with
        | Some sock ->
            charge_softirq (Socket.host sock);
            Socket.reset sock
        | None -> ())
  end

let is_client_open t = t.client_open
