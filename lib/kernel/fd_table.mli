(** Per-process file descriptor table.

    POSIX semantics: allocation always returns the lowest free
    descriptor, tables have a hard size limit (the paper wrestles with
    httperf's 1024-fd assumption), and closing frees the slot for
    immediate reuse — which is precisely what makes stale RT signals
    dangerous: a new connection can receive an old connection's fd. *)

type 'a t

val create : ?limit:int -> unit -> 'a t
(** Default limit 1024, as on Linux 2.2. Raises [Invalid_argument] if
    the limit is not positive. *)

val limit : 'a t -> int

val alloc : 'a t -> 'a -> (int, [ `Emfile ]) result
(** Lowest-numbered free descriptor, or [`Emfile] when the table is
    full. *)

val alloc_exn : 'a t -> 'a -> int
(** Raises [Failure] when full; for callers that have checked. *)

val find : 'a t -> int -> 'a option
val find_exn : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
(** Replaces the resource at an open descriptor. Raises
    [Invalid_argument] if the descriptor is not open. *)

val close : 'a t -> int -> 'a option
(** Frees the descriptor, returning the resource that occupied it. *)

val is_open : 'a t -> int -> bool
val count : 'a t -> int

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visits open descriptors in ascending fd order (backed by
    {!Sio_sim.Fd_map}): deterministic, a function of the open set
    alone. Removal of the current or any later descriptor from inside
    the callback is well-defined. *)

val fold : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Ascending-fd fold; same ordering guarantee as {!iter}. *)
