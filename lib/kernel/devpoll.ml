open Sio_sim

type sub = { sock_id : int; socket : Socket.t; token : int }

type t = {
  host : Host.t;
  lookup : int -> Socket.t option;
  table : Interest_table.t;
  subs : sub Fd_map.t; (* fd -> backmap subscription *)
  wq : Socket.waiter Wait_queue.t; (* sleepers inside dp_poll *)
  ready : Poll.result Ready_buffer.t; (* reused by every scan *)
  mutable result_slots : int option;
  mutable closed : bool;
}

let create ~host ~lookup =
  {
    host;
    lookup;
    table = Interest_table.create ();
    subs = Fd_map.create ~initial_capacity:64 ();
    wq = Wait_queue.create ();
    ready = Ready_buffer.create ~initial_capacity:64 ();
    result_slots = None;
    closed = false;
  }

let check_open t = if t.closed then invalid_arg "Devpoll: instance is closed"

(* Wake any task sleeping in dp_poll on this instance. *)
let wake_sleepers t mask =
  let costs = t.host.Host.costs in
  ignore
    (Wait_queue.wake t.wq ~policy:t.host.Host.wake_policy (fun w ->
         let counters = t.host.Host.counters in
         counters.Host.wait_queue_wakes <- counters.Host.wait_queue_wakes + 1;
         ignore (Host.charge t.host costs.Cost_model.wait_queue_wake);
         w.Socket.wake mask))

(* Install the backmap subscription for fd on its current socket: the
   driver posts hints into the interest record and wakes sleepers. *)
let subscribe t fd (sock : Socket.t) =
  let token =
    Socket.subscribe sock (fun mask ->
        (match Interest_table.find t.table fd with
        | Some interest ->
            interest.Interest_table.hint <- Pollmask.union interest.Interest_table.hint mask
        | None -> ());
        wake_sleepers t mask)
  in
  Fd_map.set t.subs fd { sock_id = Socket.id sock; socket = sock; token }

let unsubscribe t fd =
  match Fd_map.find t.subs fd with
  | None -> ()
  | Some sub ->
      Socket.unsubscribe sub.socket sub.token;
      ignore (Fd_map.remove t.subs fd)

let write t entries =
  check_open t;
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  ignore (Host.charge t.host costs.Cost_model.backmap_write_lock);
  List.iter
    (fun (fd, events) ->
      ignore (Host.charge t.host costs.Cost_model.devpoll_write_per_change);
      if Pollmask.mem Pollmask.pollremove events then begin
        unsubscribe t fd;
        ignore (Interest_table.remove t.table fd)
      end
      else begin
        ignore (Interest_table.set t.table ~fd ~events);
        match t.lookup fd with
        | Some sock -> (
            match Fd_map.find t.subs fd with
            | Some sub when sub.sock_id = Socket.id sock -> ()
            | Some _ ->
                unsubscribe t fd;
                subscribe t fd sock
            | None -> subscribe t fd sock)
        | None -> unsubscribe t fd
      end)
    entries

let alloc_result_map t ~slots =
  check_open t;
  if slots <= 0 then invalid_arg "Devpoll.alloc_result_map: slots must be positive";
  if t.result_slots <> None then
    invalid_arg "Devpoll.alloc_result_map: mapping already exists";
  let costs = t.host.Host.costs in
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  ignore (Host.charge t.host costs.Cost_model.mmap_setup);
  t.result_slots <- Some slots

let release_result_map t =
  check_open t;
  t.result_slots <- None

let has_result_map t = t.result_slots <> None

let forced = Pollmask.union Pollmask.pollerr (Pollmask.union Pollmask.pollhup Pollmask.pollnval)

(* Examine one interest, spending as little as the hints allow. *)
let probe t (interest : Interest_table.interest) =
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  ignore (Host.charge t.host costs.Cost_model.interest_hash_op);
  let fd = interest.Interest_table.fd in
  match t.lookup fd with
  | None -> Pollmask.pollnval
  | Some sock ->
      (* Descriptor reuse: rebind the backmap to the new socket. *)
      (match Fd_map.find t.subs fd with
      | Some sub when sub.sock_id = Socket.id sock -> ()
      | Some _ | None ->
          unsubscribe t fd;
          subscribe t fd sock;
          interest.Interest_table.hint <- Pollmask.empty;
          interest.Interest_table.cached <- None);
      let consult_driver () =
        let st = Socket.driver_poll sock in
        interest.Interest_table.cached <- Some st;
        interest.Interest_table.hint <- Pollmask.empty;
        st
      in
      let st =
        if not (Socket.hints_supported sock) then consult_driver ()
        else begin
          ignore (Host.charge t.host costs.Cost_model.hint_check);
          if not (Pollmask.is_empty interest.Interest_table.hint) then consult_driver ()
          else
            match interest.Interest_table.cached with
            | Some cached
              when Pollmask.is_empty
                     (Pollmask.inter cached
                        (Pollmask.union interest.Interest_table.events forced)) ->
                (* Cached "not ready" with no hint: trust it. *)
                counters.Host.hint_skips <- counters.Host.hint_skips + 1;
                cached
            | Some _ ->
                (* Cached "ready" must be revalidated: hints never
                   report ready-to-not-ready transitions. *)
                consult_driver ()
            | None -> consult_driver ()
        end
      in
      Pollmask.inter st (Pollmask.union interest.Interest_table.events forced)

(* Fill the reusable result buffer, stopping — probes and table walk
   both — the moment it is full. Returns the ready count; the buffer
   stays valid until the next scan on this instance. *)
let scan t ~max_results =
  Ready_buffer.clear t.ready;
  Interest_table.iter_while t.table ~f:(fun interest ->
      if Ready_buffer.length t.ready >= max_results then false
      else begin
        let revents = probe t interest in
        if not (Pollmask.is_empty revents) then
          Ready_buffer.push t.ready { Poll.fd = interest.Interest_table.fd; revents };
        true
      end);
  Ready_buffer.length t.ready

let dp_poll t ~max_results ~timeout ~k =
  check_open t;
  if max_results <= 0 then invalid_arg "Devpoll.dp_poll: max_results must be positive";
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  let finish results =
    (* With the shared mapping there is nothing to copy out. *)
    if t.result_slots = None then
      ignore
        (Host.charge t.host
           (Time.mul costs.Cost_model.poll_copyout_per_ready (List.length results)));
    Host.charge_run t.host ~cost:Time.zero (fun () -> k results)
  in
  (* The reusable buffer must be materialized before [finish] hands
     control away: the continuation may re-enter dp_poll and rescan. *)
  let finish_ready () = finish (Ready_buffer.to_list t.ready) in
  let cap =
    match t.result_slots with
    | Some slots -> Stdlib.min max_results slots
    | None -> max_results
  in
  if scan t ~max_results:cap > 0 then finish_ready ()
  else
    match timeout with
    | Some x when x <= Time.zero -> finish []
    | _ ->
        let timer = ref None in
        let waiter_ref = ref None in
        let cleanup () =
          (match !waiter_ref with
          | Some w -> ignore (Wait_queue.unregister t.wq w)
          | None -> ());
          match !timer with
          | Some h ->
              Engine.cancel t.host.Host.engine h;
              timer := None
          | None -> ()
        in
        let rec on_wake _mask =
          cleanup ();
          if scan t ~max_results:cap > 0 then finish_ready ()
          else begin
            let w = { Socket.wake = on_wake } in
            waiter_ref := Some w;
            Wait_queue.register t.wq w;
            arm_timer ()
          end
        and arm_timer () =
          match timeout with
          | None -> ()
          | Some x ->
              timer :=
                Some
                  (Engine.after t.host.Host.engine x (fun () ->
                       timer := None;
                       cleanup ();
                       finish []))
        in
        let w = { Socket.wake = on_wake } in
        waiter_ref := Some w;
        Wait_queue.register t.wq w;
        ignore (Host.charge t.host costs.Cost_model.wait_queue_register);
        arm_timer ()

let interest_count t = Interest_table.length t.table
let find_interest t fd = Interest_table.find t.table fd

let close t =
  if not t.closed then begin
    Fd_map.iter t.subs (fun _ sub -> Socket.unsubscribe sub.socket sub.token);
    Fd_map.clear t.subs;
    t.closed <- true
  end

let is_closed t = t.closed
