open Sio_sim

type sub = { token : int; wtoken : int }

(* The subscription tokens are arena-native: they live in the
   subscribed socket's {!Conn_arena} cold slot under this instance's
   attach key and vanish with the connection. The instance keeps an
   fd -> socket-handle index so descriptor reuse is detectable (the
   handle remembers which socket the backmap was installed on). *)
type Conn_arena.cold += Dp_sub of sub

type t = {
  host : Host.t;
  lookup : int -> Socket.t option;
  key : int; (* attach key naming this instance's subscriptions *)
  table : Interest_table.t;
  subs : Socket.t Fd_map.t; (* fd -> socket the backmap is installed on *)
  active : Interest_table.interest Fd_map.t;
      (* Conservative superset of the interests whose next probe might
         do more than a hint-check skip. Everything outside it is
         idle-certified: socket present and backmapped, hints
         supported, hint empty, cached status not ready — so a probe
         would charge exactly interest_hash_op + hint_check and bump
         hint_skips. Scans visit only this set on the host and charge
         the idle majority analytically. *)
  wq : Socket.waiter Wait_queue.t; (* sleepers inside dp_poll *)
  ready : Poll.result Ready_buffer.t; (* reused by every scan *)
  mutable result_slots : int option;
  mutable closed : bool;
}

let create ~host ~lookup =
  {
    host;
    lookup;
    key = Socket.new_attach_key ();
    table = Interest_table.create ();
    subs = Fd_map.create ~initial_capacity:64 ();
    active = Fd_map.create ~initial_capacity:64 ();
    wq = Wait_queue.create ();
    ready = Ready_buffer.create ~initial_capacity:64 ();
    result_slots = None;
    closed = false;
  }

let check_open t = if t.closed then invalid_arg "Devpoll: instance is closed"

(* Wake any task sleeping in dp_poll on this instance. *)
let wake_sleepers t mask =
  let costs = t.host.Host.costs in
  ignore
    (Wait_queue.wake t.wq ~policy:t.host.Host.wake_policy (fun w ->
         let counters = t.host.Host.counters in
         counters.Host.wait_queue_wakes <- counters.Host.wait_queue_wakes + 1;
         ignore (Host.charge t.host costs.Cost_model.wait_queue_wake);
         w.Socket.wake mask))

let mark_active t fd =
  match Interest_table.find t.table fd with
  | Some interest -> Fd_map.set t.active fd interest
  | None -> ()

(* Install the backmap subscription for fd on its current socket: the
   driver posts hints into the interest record and wakes sleepers. The
   uncharged watcher rides along to invalidate idle certification on
   any readiness edge (or hint-support toggle). *)
let subscribe t fd (sock : Socket.t) =
  let token =
    Socket.subscribe sock (fun mask ->
        (match Interest_table.find t.table fd with
        | Some interest ->
            interest.Interest_table.hint <- Pollmask.union interest.Interest_table.hint mask
        | None -> ());
        wake_sleepers t mask)
  in
  let wtoken = Socket.add_watcher sock (fun () -> mark_active t fd) in
  Socket.attach sock ~key:t.key (Dp_sub { token; wtoken });
  Fd_map.set t.subs fd sock

let sub_of t sock =
  match Socket.attachment sock ~key:t.key with
  | Some (Dp_sub s) -> Some s
  | Some _ | None -> None

let unsubscribe t fd =
  match Fd_map.find t.subs fd with
  | None -> ()
  | Some sock ->
      (match sub_of t sock with
      | Some sub ->
          Socket.unsubscribe sock sub.token;
          Socket.remove_watcher sock sub.wtoken;
          Socket.detach sock ~key:t.key
      | None -> ());
      ignore (Fd_map.remove t.subs fd)

let write t entries =
  check_open t;
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  ignore (Host.charge t.host costs.Cost_model.backmap_write_lock);
  List.iter
    (fun (fd, events) ->
      ignore (Host.charge t.host costs.Cost_model.devpoll_write_per_change);
      if Pollmask.mem Pollmask.pollremove events then begin
        unsubscribe t fd;
        ignore (Interest_table.remove t.table fd);
        ignore (Fd_map.remove t.active fd)
      end
      else begin
        ignore (Interest_table.set t.table ~fd ~events);
        (* New or modified interests must be re-probed: [set] resets
           hint and cache, so idle certification no longer holds. *)
        mark_active t fd;
        match t.lookup fd with
        | Some sock -> (
            match Fd_map.find t.subs fd with
            | Some installed when Socket.id installed = Socket.id sock -> ()
            | Some _ ->
                unsubscribe t fd;
                subscribe t fd sock
            | None -> subscribe t fd sock)
        | None -> unsubscribe t fd
      end)
    entries

let alloc_result_map t ~slots =
  check_open t;
  if slots <= 0 then invalid_arg "Devpoll.alloc_result_map: slots must be positive";
  if t.result_slots <> None then
    invalid_arg "Devpoll.alloc_result_map: mapping already exists";
  let costs = t.host.Host.costs in
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  ignore (Host.charge t.host costs.Cost_model.mmap_setup);
  t.result_slots <- Some slots

let release_result_map t =
  check_open t;
  t.result_slots <- None

let has_result_map t = t.result_slots <> None

let forced = Pollmask.union Pollmask.pollerr (Pollmask.union Pollmask.pollhup Pollmask.pollnval)

(* Examine one interest, spending as little as the hints allow. *)
let probe t (interest : Interest_table.interest) =
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  ignore (Host.charge t.host costs.Cost_model.interest_hash_op);
  let fd = interest.Interest_table.fd in
  match t.lookup fd with
  | None -> Pollmask.pollnval
  | Some sock ->
      (* Descriptor reuse: rebind the backmap to the new socket. *)
      (match Fd_map.find t.subs fd with
      | Some installed when Socket.id installed = Socket.id sock -> ()
      | Some _ | None ->
          unsubscribe t fd;
          subscribe t fd sock;
          interest.Interest_table.hint <- Pollmask.empty;
          interest.Interest_table.cached <- None);
      let consult_driver () =
        let st = Socket.driver_poll sock in
        interest.Interest_table.cached <- Some st;
        interest.Interest_table.hint <- Pollmask.empty;
        st
      in
      let st =
        if not (Socket.hints_supported sock) then consult_driver ()
        else begin
          ignore (Host.charge t.host costs.Cost_model.hint_check);
          if not (Pollmask.is_empty interest.Interest_table.hint) then consult_driver ()
          else
            match interest.Interest_table.cached with
            | Some cached
              when Pollmask.is_empty
                     (Pollmask.inter cached
                        (Pollmask.union interest.Interest_table.events forced)) ->
                (* Cached "not ready" with no hint: trust it. *)
                counters.Host.hint_skips <- counters.Host.hint_skips + 1;
                cached
            | Some _ ->
                (* Cached "ready" must be revalidated: hints never
                   report ready-to-not-ready transitions. *)
                consult_driver ()
            | None -> consult_driver ()
        end
      in
      let revents = Pollmask.inter st (Pollmask.union interest.Interest_table.events forced) in
      (* Idle certification: a not-ready result under hinting leaves
         hint empty and cache not-ready, so until the socket's watcher
         fires, re-probing would be exactly hash + hint-check + skip. *)
      if Pollmask.is_empty revents && Socket.hints_supported sock then
        ignore (Fd_map.remove t.active fd);
      revents

(* Charge [count] idle-certified interests in bulk: each would probe
   as interest_hash_op + hint_check and bump hint_skips (see [active]
   above for why that is exact, not an estimate). *)
let charge_idle t count =
  if count > 0 then begin
    let costs = t.host.Host.costs in
    let counters = t.host.Host.counters in
    ignore
      (Cost_model.charge_batch t.host.Host.cpu
         ~cost:(Time.add costs.Cost_model.interest_hash_op costs.Cost_model.hint_check)
         ~count);
    counters.Host.hint_skips <- counters.Host.hint_skips + count
  end

(* Fill the reusable result buffer, stopping — probes and table walk
   both — the moment it is full. Returns the ready count; the buffer
   stays valid until the next scan on this instance.

   Host cost is O(active): when nothing is active the whole table is
   one analytic charge; otherwise the walk skips idle-certified
   entries (counting them for the bulk charge) and exits as soon as
   the last active interest has been probed, charging the unvisited
   tail in bulk. Charged nanoseconds and counters are identical to the
   full walk — only the charge *order* within the scan differs, and
   Cpu.consume is additive with no engine interleaving mid-scan. *)
let[@complexity "O(active)"] scan t ~max_results =
  Ready_buffer.clear t.ready;
  let total = Interest_table.length t.table in
  if Fd_map.length t.active = 0 then begin
    charge_idle t total;
    0
  end
  else begin
    let remaining = ref (Fd_map.length t.active) in
    let visited = ref 0 in
    let idle_seen = ref 0 in
    Interest_table.iter_while t.table ~f:(fun interest ->
        if Ready_buffer.length t.ready >= max_results then false
        else if !remaining = 0 then false
        else begin
          incr visited;
          if Fd_map.mem t.active interest.Interest_table.fd then begin
            (* Count before probing: probe may re-certify this entry
               idle, but never touches other entries' marks. *)
            decr remaining;
            let revents = probe t interest in
            if not (Pollmask.is_empty revents) then
              Ready_buffer.push t.ready { Poll.fd = interest.Interest_table.fd; revents }
          end
          else incr idle_seen;
          true
        end);
    (* The unvisited tail is all idle — but only charge it if the
       buffer has room: a full buffer stops the real walk cold. *)
    if Ready_buffer.length t.ready < max_results then
      idle_seen := !idle_seen + (total - !visited);
    charge_idle t !idle_seen;
    Ready_buffer.length t.ready
  end

let[@complexity "O(active)"] dp_poll t ~max_results ~timeout ~k =
  check_open t;
  if max_results <= 0 then invalid_arg "Devpoll.dp_poll: max_results must be positive";
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  let finish results =
    (* With the shared mapping there is nothing to copy out. *)
    if t.result_slots = None then
      ignore
        (Host.charge t.host
           (Time.mul costs.Cost_model.poll_copyout_per_ready (List.length results)));
    Host.charge_run t.host ~cost:Time.zero (fun () -> k results)
  in
  (* The reusable buffer must be materialized before [finish] hands
     control away: the continuation may re-enter dp_poll and rescan. *)
  let finish_ready () = finish (Ready_buffer.to_list t.ready) in
  let cap =
    match t.result_slots with
    | Some slots -> Stdlib.min max_results slots
    | None -> max_results
  in
  if scan t ~max_results:cap > 0 then finish_ready ()
  else
    match timeout with
    | Some x when x <= Time.zero -> finish []
    | _ ->
        let timer = ref None in
        let waiter_ref = ref None in
        let cleanup () =
          (match !waiter_ref with
          | Some w -> ignore (Wait_queue.unregister t.wq w)
          | None -> ());
          match !timer with
          | Some h ->
              Engine.cancel t.host.Host.engine h;
              timer := None
          | None -> ()
        in
        let rec on_wake _mask =
          cleanup ();
          if scan t ~max_results:cap > 0 then finish_ready ()
          else begin
            let w = { Socket.wake = on_wake } in
            waiter_ref := Some w;
            Wait_queue.register t.wq w;
            arm_timer ()
          end
        and arm_timer () =
          match timeout with
          | None -> ()
          | Some x ->
              timer :=
                Some
                  (Engine.after t.host.Host.engine x (fun () ->
                       timer := None;
                       cleanup ();
                       finish []))
        in
        let w = { Socket.wake = on_wake } in
        waiter_ref := Some w;
        Wait_queue.register t.wq w;
        ignore (Host.charge t.host costs.Cost_model.wait_queue_register);
        arm_timer ()

let interest_count t = Interest_table.length t.table
let find_interest t fd = Interest_table.find t.table fd
let active_count t = Fd_map.length t.active
let active_fds t = List.map fst (Fd_map.to_list t.active)

let close t =
  if not t.closed then begin
    Fd_map.iter t.subs (fun _ sock ->
        match sub_of t sock with
        | Some sub ->
            Socket.unsubscribe sock sub.token;
            Socket.remove_watcher sock sub.wtoken;
            Socket.detach sock ~key:t.key
        | None -> ());
    Fd_map.clear t.subs;
    Fd_map.clear t.active;
    t.closed <- true
  end

let is_closed t = t.closed
