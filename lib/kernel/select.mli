(** select(2), the oldest of the interfaces in the paper's lineage.

    Semantically equivalent to {!Poll.wait} over read/write/except
    sets, but with select's own pathologies: the kernel scans every
    descriptor from 0 to [nfds - 1] whether or not it is in a set
    (charging the per-fd copy for the three bitmaps), and nothing
    above {!Fd_set.fd_setsize} can be watched at all — the 1024-fd
    wall the paper's httperf had to be modified around. Provided so
    the benches can show the full select → poll → /dev/poll
    progression. *)

open Sio_sim

type result = { readable : Fd_set.t; writable : Fd_set.t; except : Fd_set.t }

val select :
  host:Host.t ->
  lookup:(int -> Socket.t option) ->
  read:Fd_set.t ->
  write:Fd_set.t ->
  except:Fd_set.t ->
  timeout:Time.t option ->
  k:(result -> unit) ->
  unit
(** Pass {!Fd_set.create}[ ()] for sets you do not care about. The result sets contain the
    ready descriptors (select's destructive-update semantics, returned
    functionally). Closed descriptors are reported in [except], the
    closest select analogue of POLLNVAL. *)

val scan_cost : host:Host.t -> nfds:int -> Time.t
(** Deterministic cost of one select scan with [nfds = max_fd + 1]. *)

(** A stateful select set mirroring thttpd's usage (one read set that
    doubles as the except set, one write set, re-submitted every loop
    iteration), kept between calls so the host-side walk is O(active)
    while the charged costs, operation counters, and returned bitmaps
    stay identical to {!select} over the same bitmaps. Idle members
    (last seen reporting nothing on a live socket) are charged
    analytically via {!Cost_model.charge_batch}; socket watchers
    re-activate them on any readiness edge. *)
module Sset : sig
  type sset

  val create : host:Host.t -> lookup:(int -> Socket.t option) -> unit -> sset

  val add : sset -> int -> Pollmask.t -> unit
  (** Readable interest sets the fd's read (= except) bit, POLLOUT
      interest its write bit; a mask with neither removes the fd. *)

  val remove : sset -> int -> unit
  val mem : sset -> int -> bool

  val interest_count : sset -> int
  (** Cardinality of the read set (thttpd's interest-count proxy). *)

  val active_fds : sset -> int list
  (** Non-idle-certified fds, ascending; test hook for the churn
      equivalence property. *)

  val scan_sset : sset -> result * int
  (** One charged scan pass (exposed for cost-equivalence tests). *)

  val wait_sset : sset -> timeout:Time.t option -> k:(result -> unit) -> unit
  (** One select() call over the set; contract as {!select}. *)
end
