(** Per-connection shared transmit ring for the zero-copy data plane.

    A fixed set of slot-sized pages shared between user space and the
    kernel. Sends pin payload into the ring ({!map}) instead of
    copying it, and transmit completions unpin it ({!unmap}); the
    syscall layer charges {!Cost_model.t.page_map_ns} per freshly
    occupied page in place of the per-byte copy cost.

    The slots are modeled kernel memory: {!create} reserves
    [slots * slot_bytes] against {!Host.t.mem_limit} (the same
    admission control as socket buffers) and returns [None] when the
    budget is exhausted; {!destroy} releases the reservation. The
    resource-pairing lint rule enforces that any module mentioning
    [create]/[map] also has a live [destroy]/[unmap] mention. *)

type t

val create : host:Host.t -> slots:int -> slot_bytes:int -> t option
(** [None] when the host's modeled memory budget refuses the
    reservation. Raises [Invalid_argument] on non-positive sizes. *)

val destroy : t -> unit
(** Releases the memory reservation; idempotent. A destroyed ring
    accepts no further maps. *)

val map : t -> bytes:int -> int
(** [map r ~bytes] pins [bytes] more payload (clamped to the free
    capacity) and returns the number of pages newly occupied — the
    count the caller must charge {!Cost_model.page_map_cost} for. *)

val unmap : t -> bytes:int -> int
(** [unmap r ~bytes] unpins [bytes] drained payload (clamped to
    {!pinned}) and returns the pages freed. Not separately charged:
    unpinning rides the transmit-completion interrupt path. *)

val capacity : t -> int
val slot_bytes : t -> int

val pinned : t -> int
(** Live pinned bytes: mapped minus drained. *)

val high_water : t -> int
(** Maximum {!pinned} ever observed. *)

val pages_mapped : t -> int
(** Cumulative pages charged over the ring's lifetime. *)
