(* A byte-count ring over a Bigarray backing store. The simulation
   moves message *sizes*, not payload text, so correctness only needs
   the level counter — but backing the counter with a real ring keeps
   the model honest: occupied cells are marked on push and cleared on
   drain, head/tail wrap like a kernel socket buffer's, and the
   invariant "level = number of marked cells" is what the
   model-equivalence test suite checks against the pure int-level
   reference. The Bigarray lives outside the OCaml heap, like the
   arena columns, so a buffer's backing store adds no GC pressure. *)

type t = {
  data : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
  capacity : int;
  mutable head : int;  (* next cell to drain, in [0, capacity) *)
  mutable level : int;
  mutable high_water : int;
}

let occupied = '\xff'
let vacant = '\x00'

let create ~capacity =
  if capacity <= 0 then invalid_arg "Sock_buf.create: capacity must be positive";
  let data = Bigarray.Array1.create Bigarray.char Bigarray.c_layout capacity in
  Bigarray.Array1.fill data vacant;
  { data; capacity; head = 0; level = 0; high_water = 0 }

let capacity t = t.capacity
let level t = t.level
let space t = t.capacity - t.level
let high_water t = t.high_water

(* Mark/clear [n] cells starting at [from], wrapping once at most
   (n <= capacity always holds at the call sites). *)
let set_range t ~from ~n byte =
  let first = Stdlib.min n (t.capacity - from) in
  if first > 0 then Bigarray.Array1.fill (Bigarray.Array1.sub t.data from first) byte;
  let rest = n - first in
  if rest > 0 then Bigarray.Array1.fill (Bigarray.Array1.sub t.data 0 rest) byte

let push t n =
  if n < 0 then invalid_arg "Sock_buf.push: negative size";
  let accepted = Stdlib.min n (space t) in
  set_range t ~from:((t.head + t.level) mod t.capacity) ~n:accepted occupied;
  t.level <- t.level + accepted;
  if t.level > t.high_water then t.high_water <- t.level;
  accepted

let drain t n =
  if n < 0 then invalid_arg "Sock_buf.drain: negative size";
  let removed = Stdlib.min n t.level in
  set_range t ~from:t.head ~n:removed vacant;
  t.head <- (t.head + removed) mod t.capacity;
  t.level <- t.level - removed;
  removed

let drain_all t =
  let n = t.level in
  set_range t ~from:t.head ~n vacant;
  t.head <- (t.head + n) mod t.capacity;
  t.level <- 0;
  n

let is_empty t = t.level = 0
let is_full t = t.level >= t.capacity

(* Test-only invariant hook: the number of marked cells in the backing
   store, which model equivalence requires to equal [level]. *)
let occupied_cells t =
  let n = ref 0 in
  for i = 0 to t.capacity - 1 do
    if Bigarray.Array1.get t.data i = occupied then incr n
  done;
  !n
