(** CPU costs charged by the simulated kernel.

    Every kernel operation the paper's analysis depends on has an
    explicit cost here, in simulated nanoseconds on the server host
    (the paper's 400 MHz AMD K6-2). The defaults are calibrated so
    that a 6 KB static HTTP request costs roughly 0.9 ms of CPU end to
    end, putting the server's ideal peak near 1000-1100 replies/s --
    the plateau visible in all of the paper's figures. The *relative*
    costs follow the paper's analysis: poll() pays per-interest copy
    and driver-callback costs, /dev/poll pays per-change and per-ready
    costs plus cheap hint checks, RT signals pay per-event syscall
    costs.

    Experiments never mutate a model; they build a record with the
    fields they want to ablate. *)

open Sio_sim

type t = {
  syscall_entry : Time.t;
      (** fixed cost of crossing the user/kernel boundary, any syscall *)
  poll_copyin_per_fd : Time.t;
      (** copying + parsing one pollfd struct on poll() entry *)
  poll_copyout_per_ready : Time.t;
      (** copying one result pollfd back to user space *)
  driver_poll_callback : Time.t;
      (** one call into a device driver's poll op to sample status *)
  hint_check : Time.t;
      (** inspecting a /dev/poll backmap hint for one interest *)
  wait_queue_register : Time.t;
      (** adding the process to one file's wait queue before sleeping *)
  wait_queue_unregister : Time.t;
  wait_queue_wake : Time.t;  (** waking one sleeping process *)
  devpoll_write_per_change : Time.t;
      (** one add/modify/remove processed by a write() to /dev/poll *)
  interest_hash_op : Time.t;
      (** one hash-table lookup during a DP_POLL scan *)
  backmap_read_lock : Time.t;  (** hint post: read-side lock + mark *)
  backmap_write_lock : Time.t;
      (** interest-set update: write-side lock + list edit *)
  mmap_setup : Time.t;  (** ioctl(DP_ALLOC) + mmap() one-time cost *)
  rt_enqueue : Time.t;  (** queueing one RT signal in the kernel *)
  rt_dequeue : Time.t;  (** dequeueing one siginfo into user space *)
  sigwait_call : Time.t;
      (** fixed cost of one sigwaitinfo/sigtimedwait4 call beyond the
          generic syscall entry: signal-mask manipulation and the
          sleep/wake bookkeeping of the signal wait path. This is the
          overhead the paper's proposed batching syscall amortizes. *)
  fcntl_call : Time.t;  (** F_SETSIG / F_SETFL beyond syscall entry *)
  softirq_per_packet : Time.t;
      (** network interrupt work per arriving message *)
  accept_syscall : Time.t;  (** accept() beyond syscall entry *)
  read_syscall : Time.t;  (** read() fixed part beyond syscall entry *)
  write_syscall : Time.t;  (** write() fixed part beyond syscall entry *)
  close_syscall : Time.t;
  copy_per_byte_ns : float;
      (** user<->kernel copy + checksum cost per payload byte *)
  sendfile_per_byte_ns : float;
      (** per-byte cost of the zero-copy sendfile() path (one
          kernel-internal pass instead of two crossings); the paper's
          Section 6 suggests studying sendfile with the new event
          models *)
  page_map_ns : float;
      (** per-page cost of pinning and mapping payload into a shared
          transmit ring ({!Zc_ring}): get_user_pages, PTE edit and TLB
          maintenance for one page. Charged by {!Kernel.ring_send} for
          every ring page a send newly occupies, *instead of*
          [copy_per_byte_ns]; unpinning on transmit completion rides
          the interrupt path and is not charged separately. *)
  sock_struct_bytes : int;
      (** modeled kernel bytes of fixed per-socket state (struct sock
          and friends) beyond the receive/send buffer capacities;
          accept() reserves [sock_struct_bytes + rcv_cap + snd_cap]
          against the host's memory limit *)
}

val default : t
(** The calibrated model described above. *)

val copy_cost : t -> bytes_len:int -> Time.t
(** [copy_cost m ~bytes_len] is the per-byte cost of moving a payload
    through the kernel once. *)

val sendfile_cost : t -> bytes_len:int -> Time.t
(** The cheaper sendfile() equivalent. *)

val page_map_cost : t -> pages:int -> Time.t
(** [page_map_cost m ~pages] is the cost of pinning [pages] fresh
    pages into a transmit ring. *)

val zero : t
(** All-zero costs; used by unit tests that check pure semantics. *)

val charge_batch : Cpu.t -> cost:Time.t -> count:int -> Time.t
(** [charge_batch cpu ~cost ~count] consumes [count * cost] in one
    O(1) operation and returns the finish time, exactly equivalent to
    [count] consecutive [Cpu.consume cpu cost] calls (integer-ns
    costs are additive). Raises [Invalid_argument] on negative
    [count]. Callers replacing a per-item loop must bump the matching
    {!Host} operation counters by the same [count]. *)
