(** Classic poll() semantics with the classic costs.

    Every invocation pays for what the paper's Section 3 criticizes:
    the whole interest set is copied into the kernel (per-fd copy-in
    cost), every descriptor's device driver is asked for its status
    (per-fd driver callback), the process registers on every wait
    queue before sleeping, and on wakeup the entire set is scanned
    again. Results are copied back per ready descriptor. *)

open Sio_sim

type result = { fd : int; revents : Pollmask.t }

val wait :
  host:Host.t ->
  lookup:(int -> Socket.t option) ->
  interests:(int * Pollmask.t) list ->
  timeout:Time.t option ->
  k:(result list -> unit) ->
  unit
(** [wait ~host ~lookup ~interests ~timeout ~k] performs one poll()
    call. [lookup] resolves an fd to its socket ([None] yields
    POLLNVAL in the results, like a closed descriptor). [timeout]:
    [Some 0] never sleeps; [None] sleeps forever. [k] receives the
    descriptors with non-empty [revents], in interest order, at the
    simulated time the syscall returns. Error and hangup conditions
    are always reported, whether or not subscribed, per POSIX. *)

val scan_cost : host:Host.t -> n_interests:int -> Time.t
(** The deterministic CPU cost of one scan pass over [n] interests
    (copy-in plus driver callbacks), exposed for the cost-model
    tests. *)

(** A persistent poll set (the interest list a server re-submits every
    loop iteration), kept between calls so the host-side scan is
    O(active) while the charged costs, operation counters, result
    contents, and result order stay identical to {!wait} over the same
    interests in insertion order. Idle descriptors (last seen
    not-ready on a live socket) are charged analytically via
    {!Cost_model.charge_batch}; socket watchers re-activate them on
    any readiness edge. *)
module Pset : sig
  type pset

  val create : host:Host.t -> lookup:(int -> Socket.t option) -> unit -> pset

  val set : pset -> int -> Pollmask.t -> unit
  (** Add or replace an interest. A new fd appends to the insertion
      order (re-adding a removed fd re-ranks it last, matching a list
      rebuilt the same way); a replaced fd keeps its rank. *)

  val remove : pset -> int -> unit
  val mem : pset -> int -> bool
  val length : pset -> int

  val active_fds : pset -> int list
  (** Non-idle-certified fds, ascending; test hook for the churn
      equivalence property. *)

  val scan_set : pset -> int
  (** One charged scan pass (exposed for cost-equivalence tests). *)

  val wait_set :
    pset -> timeout:Time.t option -> k:(result list -> unit) -> unit
  (** One poll() call over the set; contract as {!wait}. *)
end
