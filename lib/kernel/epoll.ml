open Sio_sim

type trigger = Level | Edge

type interest = {
  fd : int;
  mutable events : Pollmask.t;
  trigger : trigger;
  mutable queued : bool; (* already on the ready list *)
  mutable pending : Pollmask.t; (* accumulated edges (edge mode) *)
  mutable token : int; (* observer subscription *)
}

(* The interest record is arena-native: it lives in the socket's
   {!Conn_arena} cold slot under this instance's attach key, so
   closing the connection drops it (and its observer registration)
   with the slot. The instance keeps only an fd -> socket-handle
   index, needed because epoll is keyed by descriptor and must keep
   reporting POLLNVAL for descriptors that vanish from the fd table
   while their interest is still registered. *)
type Conn_arena.cold += Ep_interest of interest

type t = {
  host : Host.t;
  lookup : int -> Socket.t option;
  key : int; (* attach key naming this instance's interests *)
  watched : Socket.t Fd_map.t; (* fd -> socket at registration time *)
  ready : int Queue.t;
  wq : Socket.waiter Wait_queue.t;
  mutable closed : bool;
}

let create ~host ~lookup =
  {
    host;
    lookup;
    key = Socket.new_attach_key ();
    watched = Fd_map.create ~initial_capacity:64 ();
    ready = Queue.create ();
    wq = Wait_queue.create ();
    closed = false;
  }

let interest_of t socket =
  match Socket.attachment socket ~key:t.key with
  | Some (Ep_interest i) -> Some i
  | Some _ | None -> None

let forced = Pollmask.union Pollmask.pollerr (Pollmask.union Pollmask.pollhup Pollmask.pollnval)

let wake_sleepers t mask =
  let costs = t.host.Host.costs in
  ignore
    (Wait_queue.wake t.wq ~policy:t.host.Host.wake_policy (fun w ->
         let counters = t.host.Host.counters in
         counters.Host.wait_queue_wakes <- counters.Host.wait_queue_wakes + 1;
         ignore (Host.charge t.host costs.Cost_model.wait_queue_wake);
         w.Socket.wake mask))

(* The hint path: O(1) append to the ready list. *)
let enqueue_ready t interest mask =
  let costs = t.host.Host.costs in
  ignore (Host.charge t.host costs.Cost_model.backmap_read_lock);
  interest.pending <- Pollmask.union interest.pending mask;
  if (not interest.queued) && Pollmask.intersects mask (Pollmask.union interest.events forced)
  then begin
    interest.queued <- true;
    Queue.add interest.fd t.ready
  end;
  wake_sleepers t mask

let charge_ctl t =
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  ignore (Host.charge t.host costs.Cost_model.interest_hash_op)

let ctl_add t ~fd ~events ?(trigger = Level) () =
  charge_ctl t;
  if Fd_map.mem t.watched fd then Error `Eexist
  else
    match t.lookup fd with
    | None -> Error `Ebadf
    | Some socket ->
        let interest =
          { fd; events; trigger; queued = false; pending = Pollmask.empty; token = 0 }
        in
        interest.token <- Socket.subscribe socket (fun mask -> enqueue_ready t interest mask);
        Socket.attach socket ~key:t.key (Ep_interest interest);
        Fd_map.set t.watched fd socket;
        (* No lost startup events: if already ready, queue now. *)
        let st = Socket.status socket in
        if Pollmask.intersects st (Pollmask.union events forced) then begin
          interest.pending <- st;
          interest.queued <- true;
          Queue.add fd t.ready
        end;
        Ok ()

let ctl_mod t ~fd ~events =
  charge_ctl t;
  match Fd_map.find t.watched fd with
  | None -> Error `Enoent
  | Some socket -> (
      match interest_of t socket with
      | None -> Ok () (* connection already freed; nothing to retarget *)
      | Some interest ->
          interest.events <- events;
          (* A newly interesting condition may already hold. *)
          let st = Socket.status socket in
          if
            (not interest.queued)
            && Pollmask.intersects st (Pollmask.union events forced)
          then begin
            interest.queued <- true;
            Queue.add fd t.ready
          end;
          Ok ())

let ctl_del t ~fd =
  charge_ctl t;
  match Fd_map.find t.watched fd with
  | None -> Error `Enoent
  | Some socket ->
      (match interest_of t socket with
      | Some interest -> Socket.unsubscribe socket interest.token
      | None -> ());
      Socket.detach socket ~key:t.key;
      ignore (Fd_map.remove t.watched fd);
      (* A stale ready-list entry is dropped lazily at the next wait. *)
      Ok ()

(* Pop up to [max] valid ready entries, validating each against the
   driver: O(ready), never O(interests). *)
let[@complexity "O(ready)"] harvest t ~max_events =
  let results = ref [] in
  let n = ref 0 in
  let requeue = ref [] in
  let continue = ref true in
  while !continue && !n < max_events && not (Queue.is_empty t.ready) do
    let fd = Queue.take t.ready in
    match Fd_map.find t.watched fd with
    | None -> () (* deleted while queued *)
    | Some registered -> (
        (match interest_of t registered with
        | Some interest -> interest.queued <- false
        | None -> ());
        match t.lookup fd with
        | None ->
            (* Descriptor closed while queued: report NVAL once. *)
            results := { Poll.fd; revents = Pollmask.pollnval } :: !results;
            incr n
        | Some sock when Socket.id sock <> Socket.id registered ->
            (* fd reused by a different socket; epoll keys on the open
               file, so the old interest is dead. *)
            (match interest_of t registered with
            | Some interest -> Socket.unsubscribe registered interest.token
            | None -> ());
            Socket.detach registered ~key:t.key;
            ignore (Fd_map.remove t.watched fd)
        | Some sock -> (
            match interest_of t sock with
            | None -> ()
            | Some interest ->
                let st = Socket.driver_poll sock in
                let revents =
                  match interest.trigger with
                  | Level -> Pollmask.inter st (Pollmask.union interest.events forced)
                  | Edge ->
                      Pollmask.inter
                        (Pollmask.union interest.pending st)
                        (Pollmask.union interest.events forced)
                in
                interest.pending <- Pollmask.empty;
                if Pollmask.is_empty revents then () (* stale: readiness evaporated *)
                else begin
                  results := { Poll.fd; revents } :: !results;
                  incr n;
                  (* Level-triggered and still ready: stays on the list. *)
                  if interest.trigger = Level then requeue := interest :: !requeue
                end))
  done;
  List.iter
    (fun interest ->
      if not interest.queued then begin
        interest.queued <- true;
        Queue.add interest.fd t.ready
      end)
    !requeue;
  List.rev !results

let[@complexity "O(ready)"] wait t ~max_events ~timeout ~k =
  if t.closed then invalid_arg "Epoll.wait: closed";
  if max_events <= 0 then invalid_arg "Epoll.wait: max_events must be positive";
  let costs = t.host.Host.costs in
  let counters = t.host.Host.counters in
  counters.Host.syscalls <- counters.Host.syscalls + 1;
  ignore (Host.charge t.host costs.Cost_model.syscall_entry);
  let finish results =
    ignore
      (Host.charge t.host
         (Time.mul costs.Cost_model.poll_copyout_per_ready (List.length results)));
    Host.charge_run t.host ~cost:Time.zero (fun () -> k results)
  in
  let first = harvest t ~max_events in
  if first <> [] then finish first
  else
    match timeout with
    | Some x when x <= Time.zero -> finish []
    | _ ->
        let timer = ref None in
        let waiter_ref = ref None in
        let cleanup () =
          (match !waiter_ref with
          | Some w -> ignore (Wait_queue.unregister t.wq w)
          | None -> ());
          match !timer with
          | Some h ->
              Engine.cancel t.host.Host.engine h;
              timer := None
          | None -> ()
        in
        let rec on_wake _mask =
          cleanup ();
          let results = harvest t ~max_events in
          if results <> [] then finish results
          else begin
            let w = { Socket.wake = on_wake } in
            waiter_ref := Some w;
            Wait_queue.register t.wq w;
            arm_timer ()
          end
        and arm_timer () =
          match timeout with
          | None -> ()
          | Some x ->
              timer :=
                Some
                  (Engine.after t.host.Host.engine x (fun () ->
                       timer := None;
                       cleanup ();
                       finish []))
        in
        let w = { Socket.wake = on_wake } in
        waiter_ref := Some w;
        Wait_queue.register t.wq w;
        arm_timer ()

let interest_count t = Fd_map.length t.watched
let ready_count t = Queue.length t.ready

let close t =
  if not t.closed then begin
    Fd_map.iter t.watched (fun _ socket ->
        (match interest_of t socket with
        | Some interest -> Socket.unsubscribe socket interest.token
        | None -> ());
        Socket.detach socket ~key:t.key);
    Fd_map.clear t.watched;
    Queue.clear t.ready;
    t.closed <- true
  end
