(** N-shard cluster experiments: {!Sio_httpd.Shard_cluster} steering
    composed with the {!Experiment} harness.

    A cluster run is N independent single-shard simulations — each
    shard owns its own engine, host, network, server and client slice
    — stitched together by a deterministic steering pre-pass (split
    the global arrival schedule, partition the idle population and
    memory budget) and a deterministic, order-insensitive merge of
    per-shard outcomes. Running the shards on a {!Sio_sim.Domain_pool}
    therefore yields byte-identical results to the sequential run
    (with [Partitioned] memory; see {!mem_mode}). *)

type mem_mode =
  | Partitioned
      (** each shard's host gets [kernel_mem_limit / shards] of its
          own: fully deterministic, the figure default *)
  | Shared
      (** all shards draw from one atomic {!Sio_kernel.Host.mem_pool}
          of [kernel_mem_limit] bytes: models a shared kernel memory
          budget, but parallel shards racing within one reservation of
          the limit can admit different connections run to run *)

type config = {
  base : Experiment.config;
      (** the cluster-wide experiment; [workload.request_rate],
          [total_connections] and [inactive_connections] describe the
          aggregate load the steering pass splits across shards *)
  shards : int;
  policy : Sio_httpd.Shard_cluster.policy;
  population : Sio_httpd.Shard_cluster.population;
  mem_mode : mem_mode;
}

val default_config : base:Experiment.config -> shards:int -> config
(** Hash steering over a uniform (all-distinct-tuples) population with
    partitioned memory — the faithful SO_REUSEPORT default. *)

type outcome = {
  merged : Experiment.outcome;
      (** cluster-wide view: counters and histograms summed/merged,
          reply-rate statistics computed over the element-wise sum of
          the per-shard rate series on the common sampling grid *)
  per_shard : Experiment.outcome array;
  shard_conns : int array;  (** connections steered to each shard *)
}

val run : ?pool:Sio_sim.Domain_pool.t -> config -> outcome
(** Run the cluster. With [pool], shards simulate in parallel (one
    pool task per shard) — do not call from inside a pool task.
    Raises [Invalid_argument] if [shards <= 0]. *)
