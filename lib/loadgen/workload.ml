open Sio_sim
open Sio_net

type t = {
  request_rate : int;
  total_connections : int;
  inactive_connections : int;
  document_path : string;
  doc_bytes : int;
  client_timeout : Time.t;
  client_fd_limit : int;
  ephemeral_ports : int;
  time_wait : Time.t;
  inactive_latency : Latency_profile.t;
  active_latency : Latency_profile.t;
  inactive_reopen_delay : Time.t;
  inactive_open_window : Time.t;
}

let default =
  {
    request_rate = 700;
    total_connections = 35_000;
    inactive_connections = 1;
    document_path = "/index.html";
    doc_bytes = Sio_httpd.Http.default_document_bytes;
    client_timeout = Time.s 5;
    client_fd_limit = 20_000;
    ephemeral_ports = 60_000;
    time_wait = Time.s 60;
    inactive_latency = Latency_profile.Wan { base = Time.ms 80; jitter = Time.ms 60 };
    active_latency = Latency_profile.Lan;
    inactive_reopen_delay = Time.ms 500;
    inactive_open_window = Time.ms 500;
  }

let scaled w f =
  if f <= 0. then invalid_arg "Workload.scaled: factor must be positive";
  let n = int_of_float (float_of_int w.total_connections *. f) in
  { w with total_connections = Stdlib.max 100 n }

let generation_duration w =
  if w.request_rate <= 0 then invalid_arg "Workload.generation_duration: rate must be positive";
  Time.of_sec_f (float_of_int w.total_connections /. float_of_int w.request_rate)

let pp ppf w =
  Fmt.pf ppf "rate=%d/s conns=%d inactive=%d doc=%dB timeout=%a" w.request_rate
    w.total_connections w.inactive_connections w.doc_bytes Time.pp w.client_timeout
